package sim

import (
	"testing"

	"cocoa/internal/checkpoint"
)

// HashState / HashTree fingerprint the full generator state: equal seeds
// and draw histories hash equal; any draw or derived stream moves the
// tree digest.
func TestRNGHashTree(t *testing.T) {
	tree := func(g *RNG) uint64 {
		h := checkpoint.NewHasher()
		g.HashTree(h)
		return h.Sum()
	}
	a, b := NewRNG(1), NewRNG(1)
	if tree(a) != tree(b) {
		t.Fatal("identical fresh roots hash differently")
	}
	if tree(NewRNG(2)) == tree(a) {
		t.Fatal("different seeds hash equal")
	}
	// Deriving a stream registers it on the root's tree.
	as := a.Stream("mac")
	if tree(a) == tree(b) {
		t.Fatal("deriving a stream did not change the tree digest")
	}
	bs := b.Stream("mac")
	if tree(a) != tree(b) {
		t.Fatal("same derivation produced different tree digests")
	}
	// A draw anywhere in the tree moves the root's digest.
	as.Float64()
	if tree(a) == tree(b) {
		t.Fatal("a draw did not change the tree digest")
	}
	bs.Float64()
	if tree(a) != tree(b) {
		t.Fatal("same draw history produced different tree digests")
	}
	// HashState on the child alone distinguishes drawn from fresh.
	state := func(g *RNG) uint64 {
		h := checkpoint.NewHasher()
		g.HashState(h)
		return h.Sum()
	}
	before := state(as)
	as.Intn(10)
	if state(as) == before {
		t.Fatal("Intn did not change the stream digest")
	}
}
