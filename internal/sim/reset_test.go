package sim

import "testing"

// Reset must rewind the simulator to a fresh-constructed state: clock at
// zero, empty calendar, and a second run over the recycled storage behaves
// exactly like a first run.
func TestSimulatorReset(t *testing.T) {
	s := New()
	runOnce := func() (fired []Time, processed uint64) {
		for _, at := range []Time{3, 1, 2} {
			at := at
			s.At(at, func() { fired = append(fired, at) })
		}
		// One canceled event and one event left beyond the horizon, so
		// Reset has both kinds of leftover state to clear.
		s.Cancel(s.At(1.5, func() { t.Error("canceled event fired") }))
		s.At(100, func() { t.Error("beyond-horizon event fired") })
		s.RunUntil(10)
		return fired, s.Processed()
	}

	fired1, proc1 := runOnce()
	if s.Now() != 10 || s.Pending() != 1 {
		t.Fatalf("pre-reset: now=%v pending=%d, want 10 and 1", s.Now(), s.Pending())
	}

	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Processed() != 0 {
		t.Fatalf("post-reset: now=%v pending=%d processed=%d, want all zero",
			s.Now(), s.Pending(), s.Processed())
	}

	fired2, proc2 := runOnce()
	if len(fired1) != 3 || len(fired2) != 3 {
		t.Fatalf("fired %d then %d events, want 3 and 3", len(fired1), len(fired2))
	}
	for i := range fired1 {
		if fired1[i] != fired2[i] {
			t.Fatalf("firing order diverged after reset: %v vs %v", fired1, fired2)
		}
	}
	if proc1 != proc2 {
		t.Fatalf("processed %d then %d, want equal", proc1, proc2)
	}
}

// A reset simulator reuses its arena chunk: scheduling after Reset must not
// allocate a fresh chunk until the retained one is exhausted.
func TestSimulatorResetReusesArena(t *testing.T) {
	s := New()
	s.At(1, func() {})
	chunk0 := &s.arena[0]
	s.Run()
	s.Reset()
	e := s.At(2, func() {})
	if e != chunk0 {
		t.Fatal("first event after Reset not allocated from the retained chunk")
	}
}
