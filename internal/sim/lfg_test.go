package sim

import (
	"math/rand"
	"testing"
)

// schrageSeedrand is the stdlib's original Schrage-decomposition step,
// kept as the reference the fast Mersenne fold must match.
func schrageSeedrand(x int32) int32 {
	hi := x / 44488
	lo := x % 44488
	x = 48271*lo - 3399*hi
	if x < 0 {
		x += 1<<31 - 1
	}
	return x
}

func TestSeedrandMatchesSchrage(t *testing.T) {
	// Boundaries plus a dense random sweep of the Lehmer state space.
	for _, x := range []int32{1, 2, 44487, 44488, 44489, seedZero, lehmerM - 1} {
		if got, want := seedrand(x), schrageSeedrand(x); got != want {
			t.Fatalf("seedrand(%d) = %d, want %d", x, got, want)
		}
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2_000_000; i++ {
		x := int32(r.Int63n(lehmerM-1)) + 1
		if got, want := seedrand(x), schrageSeedrand(x); got != want {
			t.Fatalf("seedrand(%d) = %d, want %d", x, got, want)
		}
	}
}

// TestLFGMatchesStdlib is the bit-compatibility contract: for a spread of
// seeds (including the degenerate and negative cases the stdlib
// canonicalizes), the in-package source must reproduce rand.NewSource's
// stream exactly, via both Uint64 and Int63.
func TestLFGMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, -42, 89482311, lehmerM, lehmerM + 1,
		-9223372036854775808, 9223372036854775807, 123456789012345}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		seeds = append(seeds, int64(r.Uint64()))
	}
	for _, seed := range seeds {
		ref, ok := rand.NewSource(seed).(rand.Source64)
		if !ok {
			t.Fatal("stdlib source is not a Source64")
		}
		got := newSource(seed)
		for i := 0; i < 1500; i++ { // > lfgLen: crosses the tap/feed wrap
			if g, w := got.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, g, w)
			}
		}
		ref = rand.NewSource(seed).(rand.Source64)
		got.Seed(seed) // exercises the template-cache path
		for i := 0; i < 700; i++ {
			if g, w := got.Int63(), ref.Int63(); g != w {
				t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, g, w)
			}
		}
	}
}

// TestLFGDistributionsMatchStdlib checks the composed rand.Rand draws the
// simulation actually uses (Float64, NormFloat64, ExpFloat64, Intn, Perm)
// are bit-identical, not just the raw source words.
func TestLFGDistributionsMatchStdlib(t *testing.T) {
	for _, seed := range []int64{3, 1234567, -987654321} {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(newSource(seed))
		for i := 0; i < 2000; i++ {
			if g, w := got.Float64(), ref.Float64(); g != w {
				t.Fatalf("seed %d: Float64 diverges at draw %d", seed, i)
			}
			if g, w := got.NormFloat64(), ref.NormFloat64(); g != w {
				t.Fatalf("seed %d: NormFloat64 diverges at draw %d", seed, i)
			}
			if g, w := got.ExpFloat64(), ref.ExpFloat64(); g != w {
				t.Fatalf("seed %d: ExpFloat64 diverges at draw %d", seed, i)
			}
			if g, w := got.Intn(97), ref.Intn(97); g != w {
				t.Fatalf("seed %d: Intn diverges at draw %d", seed, i)
			}
		}
		gp, wp := got.Perm(25), ref.Perm(25)
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("seed %d: Perm diverges at %d", seed, i)
			}
		}
	}
}

// TestLFGSeedCacheConcurrent hammers the shared seed-template cache from
// many goroutines; run under -race this proves stream construction is safe
// in the parallel experiment engine.
func TestLFGSeedCacheConcurrent(t *testing.T) {
	var want [8]uint64
	for s := range want {
		want[s] = newSource(int64(1000 + s)).Uint64()
	}
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				s := (g + i) % 8
				if got := newSource(int64(1000 + s)).Uint64(); got != want[s] {
					done <- errTestMismatch
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errTestMismatch = errorString("cached seed produced a different stream")

type errorString string

func (e errorString) Error() string { return string(e) }

func BenchmarkNewSourceStdlib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = rand.NewSource(int64(i))
	}
}

func BenchmarkNewSourceLFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = newSource(int64(i % (2 * seedVecsLimit))) // mixes cold and cached seeds
	}
}

func BenchmarkStreamDerive(b *testing.B) {
	root := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = root.StreamN("bench", i%64)
	}
}
