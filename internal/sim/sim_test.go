package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if got := s.Now(); got != 0 {
		t.Fatalf("Now = %v, want 0", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(2.5, func() { fired = append(fired, s.Now()) })
	s.Schedule(1.0, func() { fired = append(fired, s.Now()) })
	s.Run()
	if len(fired) != 2 || fired[0] != 1.0 || fired[1] != 2.5 {
		t.Fatalf("fired = %v, want [1 2.5]", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", s.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestAtBeforeNowPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for At in the past")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New()
	e := s.Schedule(1, func() {})
	s.Run()
	s.Cancel(e) // must not panic or corrupt the heap
	s.Schedule(1, func() {})
	s.Run()
	if s.Now() != 2 {
		t.Fatalf("Now = %v, want 2", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 5; i++ {
		s.Schedule(float64(i+1), func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	s.Run() // resumes
	if count != 5 {
		t.Fatalf("count after resume = %d, want 5", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 4, 5} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v, want 5 events", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want clock advanced to horizon 10", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(1, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v, want [1 2]", times)
	}
}

func TestEachTick(t *testing.T) {
	s := New()
	var ticks []Time
	stop := s.EachTick(0.5, 1.0, func(tk Time) { ticks = append(ticks, tk) })
	s.RunUntil(5)
	stop()
	s.RunUntil(10)
	want := []Time{0.5, 1.5, 2.5, 3.5, 4.5}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEachTickBadInterval(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive interval")
		}
	}()
	s.EachTick(0, 0, func(Time) {})
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(float64(i), func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed())
	}
}

// Property: regardless of the insertion order of random delays, events fire
// in non-decreasing time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var fired []Time
		for _, r := range raw {
			d := Time(r) / 100
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestArenaChunkBoundaries schedules far more events than one arena chunk
// holds, interleaving cancels and nested scheduling, and checks every
// surviving event fires exactly once in order.
func TestArenaChunkBoundaries(t *testing.T) {
	s := New()
	const n = 10 * arenaChunk
	var fired []int
	events := make([]*Event, n)
	for i := 0; i < n; i++ {
		i := i
		events[i] = s.Schedule(float64(i), func() { fired = append(fired, i) })
	}
	for i := 0; i < n; i += 3 {
		s.Cancel(events[i])
	}
	s.Run()
	want := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			continue
		}
		if want >= len(fired) || fired[want] != i {
			t.Fatalf("fired[%d] wrong: got %v", want, fired[want])
		}
		want++
	}
	if want != len(fired) {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
	for _, e := range events {
		s.Cancel(e) // cancel after fire must stay a no-op across chunks
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Stream("channel")
	b := NewRNG(42).Stream("channel")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverge")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	root := NewRNG(42)
	a := root.Stream("mobility")
	b := root.Stream("odometry")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams look correlated: %d identical draws", same)
	}
}

func TestRNGStreamN(t *testing.T) {
	root := NewRNG(7)
	a := root.StreamN("node", 1)
	b := root.StreamN("node", 2)
	a2 := NewRNG(7).StreamN("node", 1)
	if a.Float64() == b.Float64() {
		t.Error("different indices produced identical first draw")
	}
	a.r = nil // ensure no reuse below
	if got, want := a2.Float64(), NewRNG(7).StreamN("node", 1).Float64(); got != want {
		t.Errorf("StreamN not deterministic: %v vs %v", got, want)
	}
}

func TestRNGDistributionsSanity(t *testing.T) {
	g := NewRNG(1)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Errorf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}

	var uSum float64
	for i := 0; i < n; i++ {
		u := g.Uniform(2, 4)
		if u < 2 || u >= 4 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		uSum += u
	}
	if got := uSum / n; math.Abs(got-3) > 0.05 {
		t.Errorf("Uniform mean = %v, want ~3", got)
	}

	var rSum float64
	for i := 0; i < n; i++ {
		r := g.Rayleigh(3)
		if r < 0 {
			t.Fatalf("Rayleigh negative: %v", r)
		}
		rSum += r
	}
	wantMean := 3 * math.Sqrt(math.Pi/2)
	if got := rSum / n; math.Abs(got-wantMean) > 0.15 {
		t.Errorf("Rayleigh mean = %v, want ~%v", got, wantMean)
	}

	var eSum float64
	for i := 0; i < n; i++ {
		eSum += g.Exp(4)
	}
	if got := eSum / n; math.Abs(got-4) > 0.25 {
		t.Errorf("Exp mean = %v, want ~4", got)
	}
}

func TestRNGBool(t *testing.T) {
	g := NewRNG(3)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.03 {
		t.Errorf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestRNGPerm(t *testing.T) {
	g := NewRNG(9)
	p := g.Perm(10)
	seen := make(map[int]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}
