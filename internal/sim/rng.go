package sim

import (
	"hash/fnv"
	"math"
	"math/rand"

	"cocoa/internal/checkpoint"
)

// RNG wraps math/rand with the distributions the CoCoA models need and with
// named sub-streams, so that independent parts of the simulation (mobility,
// channel noise, odometry noise, MAC backoff) draw from decorrelated
// sequences. Two runs with the same root seed are bit-identical.
type RNG struct {
	seed uint64
	r    *rand.Rand
	// src is the stream's lagged-Fibonacci source, retained so HashState
	// can fingerprint the full generator state (rand.Rand keeps no state
	// of its own beyond the source for the distributions used here).
	src *lfgSource
	// pool, when non-nil, is the RNGPool this stream and every stream
	// derived from it draw their storage from.
	pool *RNGPool
	// root points at the run's root stream (nil on a root itself), and a
	// root's streams lists every stream derived under it in creation
	// order. Stream creation order is a pure function of the run config,
	// so HashTree fingerprints the whole tree deterministically.
	root    *RNG
	streams []*RNG
}

// NewRNG returns a root random stream for the given seed. The underlying
// source is the in-package lagged-Fibonacci reimplementation (see lfg.go),
// bit-identical to rand.NewSource but ~10× cheaper to construct.
func NewRNG(seed int64) *RNG {
	src := newSource(seed)
	return &RNG{seed: uint64(seed), r: rand.New(src), src: src}
}

// HashState folds this stream's full generator state — the derivation seed
// plus the lagged-Fibonacci feedback vector and taps — into h.
func (g *RNG) HashState(h *checkpoint.Hasher) {
	h.U64(g.seed)
	h.Int(g.src.tap)
	h.Int(g.src.feed)
	for _, v := range g.src.vec {
		h.I64(v)
	}
}

// HashTree folds the state of this root stream and of every stream derived
// under it, in creation order. Call it on the run's root stream to
// fingerprint the complete randomness state of a run.
func (g *RNG) HashTree(h *checkpoint.Hasher) {
	g.HashState(h)
	h.Int(len(g.streams))
	for _, c := range g.streams {
		c.HashState(h)
	}
}

// streamSeed derives the sub-stream seed for Stream: FNV-64a over the parent
// seed bytes followed by the stream name. The derivation depends only on
// (seed, name), so streams are stable across code changes that reorder draw
// sites.
func streamSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}

// streamSeedN derives the sub-stream seed for StreamN: streamSeed's hash
// extended with the index bytes.
func streamSeedN(seed uint64, name string, n int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(name))
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(n) >> (8 * i))
	}
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// make materializes a stream for the derived seed s, drawing storage from
// the parent's pool when it has one, and registers it on the run's root
// stream so HashTree covers it.
func (g *RNG) make(s uint64) *RNG {
	root := g
	if g.root != nil {
		root = g.root
	}
	var child *RNG
	if g.pool != nil {
		child = g.pool.get(s)
	} else {
		src := newSource(int64(s))
		child = &RNG{seed: s, r: rand.New(src), src: src}
	}
	child.root = root
	root.streams = append(root.streams, child)
	return child
}

// Stream derives an independent named sub-stream. The derivation hashes the
// root seed with the name, so streams are stable across code changes that
// reorder draw sites.
func (g *RNG) Stream(name string) *RNG {
	return g.make(streamSeed(g.seed, name))
}

// StreamN derives an independent sub-stream keyed by name and an index,
// typically a node ID.
func (g *RNG) StreamN(name string, n int) *RNG {
	return g.make(streamSeedN(g.seed, name, n))
}

// RNGPool recycles RNG streams across consecutive runs. A run's streams are
// its single largest construction allocation (each lagged-Fibonacci source
// carries a ~5 KB state vector, and a team creates several streams per
// robot), yet a reseed is a complete state reset: rand.Rand.Seed clears the
// Rand's cached values and lfgSource.Seed rewrites the whole feedback
// vector. The pool therefore keeps every stream it ever handed out and, on
// Recycle, simply marks them all free; the next run's derivations reseed
// them in place, producing sequences bit-identical to freshly constructed
// streams.
//
// A pool serves one run at a time: Recycle must not be called while any
// stream from the previous handout can still draw. The zero value is not
// usable; construct with NewRNGPool.
type RNGPool struct {
	all  []*RNG
	used int
}

// NewRNGPool returns an empty stream pool.
func NewRNGPool() *RNGPool {
	return &RNGPool{}
}

// Root returns the pool-backed equivalent of NewRNG(seed): a root stream
// whose derived sub-streams also draw from the pool. The recycled stream's
// registry is truncated so the new run's stream tree starts empty.
func (p *RNGPool) Root(seed int64) *RNG {
	g := p.get(uint64(seed))
	g.root = nil
	for i := range g.streams {
		g.streams[i] = nil
	}
	g.streams = g.streams[:0]
	return g
}

// get hands out the next free pooled stream reseeded to s, growing the pool
// when every retained stream is in use.
func (p *RNGPool) get(s uint64) *RNG {
	if p.used < len(p.all) {
		g := p.all[p.used]
		p.used++
		g.seed = s
		g.r.Seed(int64(s))
		return g
	}
	src := newSource(int64(s))
	g := &RNG{seed: s, r: rand.New(src), src: src, pool: p}
	p.all = append(p.all, g)
	p.used++
	return g
}

// Recycle returns every handed-out stream to the pool. The caller must
// guarantee that no stream from the previous handout is drawn from again.
func (p *RNGPool) Recycle() {
	p.used = 0
}

// Size returns the number of streams the pool retains (free and in use),
// for diagnostics and tests.
func (p *RNGPool) Size() int { return len(p.all) }

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation. The paper's odometry and RSSI noise are both zero-mean
// Gaussians of this form.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Rayleigh returns a Rayleigh-distributed sample with the given scale
// parameter sigma. Rayleigh fading models the multipath amplitude
// fluctuation the paper observes past 40 m (Figure 1(b)).
func (g *RNG) Rayleigh(sigma float64) float64 {
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return sigma * math.Sqrt(-2*math.Log(1-u))
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
