package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the CoCoA models need and with
// named sub-streams, so that independent parts of the simulation (mobility,
// channel noise, odometry noise, MAC backoff) draw from decorrelated
// sequences. Two runs with the same root seed are bit-identical.
type RNG struct {
	seed uint64
	r    *rand.Rand
}

// NewRNG returns a root random stream for the given seed. The underlying
// source is the in-package lagged-Fibonacci reimplementation (see lfg.go),
// bit-identical to rand.NewSource but ~10× cheaper to construct.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: uint64(seed), r: rand.New(newSource(seed))}
}

// Stream derives an independent named sub-stream. The derivation hashes the
// root seed with the name, so streams are stable across code changes that
// reorder draw sites.
func (g *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(g.seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(name))
	s := h.Sum64()
	return &RNG{seed: s, r: rand.New(newSource(int64(s)))}
}

// StreamN derives an independent sub-stream keyed by name and an index,
// typically a node ID.
func (g *RNG) StreamN(name string, n int) *RNG {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(g.seed >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(name))
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(n) >> (8 * i))
	}
	_, _ = h.Write(b[:])
	s := h.Sum64()
	return &RNG{seed: s, r: rand.New(newSource(int64(s)))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation. The paper's odometry and RSSI noise are both zero-mean
// Gaussians of this form.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Rayleigh returns a Rayleigh-distributed sample with the given scale
// parameter sigma. Rayleigh fading models the multipath amplitude
// fluctuation the paper observes past 40 m (Figure 1(b)).
func (g *RNG) Rayleigh(sigma float64) float64 {
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return sigma * math.Sqrt(-2*math.Log(1-u))
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
