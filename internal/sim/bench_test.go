package sim

import "testing"

// BenchmarkEventLoop measures raw schedule+dispatch throughput.
func BenchmarkEventLoop(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(1, func() {})
		s.Step()
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	g := NewRNG(1).Stream("bench")
	for i := 0; i < b.N; i++ {
		_ = g.Normal(0, 1)
	}
}
