package sim

import "testing"

// BenchmarkEventLoop measures raw schedule+dispatch throughput.
func BenchmarkEventLoop(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(1, func() {})
		s.Step()
	}
}

// BenchmarkEventChurn measures allocation pressure of a realistic
// schedule/cancel/fire mix; with arena allocation, allocs/op amortize to
// ~1/arenaChunk per event.
func BenchmarkEventChurn(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e1 := s.Schedule(1, func() {})
		s.Schedule(2, func() {})
		s.Cancel(e1)
		s.Step()
	}
	for s.Step() {
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	g := NewRNG(1).Stream("bench")
	for i := 0; i < b.N; i++ {
		_ = g.Normal(0, 1)
	}
}
