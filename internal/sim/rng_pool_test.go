package sim

import "testing"

// drawSome exercises every distribution once and returns the samples, so a
// pooled stream can be compared draw-for-draw against a fresh one.
func drawSome(g *RNG) [6]float64 {
	return [6]float64{
		g.Float64(),
		g.Uniform(-3, 9),
		float64(g.Intn(1000)),
		g.Normal(1, 2),
		g.Exp(5),
		g.Rayleigh(2),
	}
}

// A pooled root and its derived streams must be bit-identical to freshly
// constructed ones — the property the scratch reuse path rests on.
func TestRNGPoolBitIdenticalToFresh(t *testing.T) {
	p := NewRNGPool()
	for round, seed := range []int64{42, -7, 42} {
		p.Recycle()
		fresh := NewRNG(seed)
		pooled := p.Root(seed)
		if got, want := drawSome(pooled), drawSome(fresh); got != want {
			t.Fatalf("round %d: root draws %v, want %v", round, got, want)
		}
		for _, name := range []string{"mac", "team"} {
			if got, want := drawSome(pooled.Stream(name)), drawSome(fresh.Stream(name)); got != want {
				t.Fatalf("round %d: stream %q draws %v, want %v", round, name, got, want)
			}
		}
		for n := 0; n < 3; n++ {
			if got, want := drawSome(pooled.StreamN("odometry", n)), drawSome(fresh.StreamN("odometry", n)); got != want {
				t.Fatalf("round %d: streamN %d draws %v, want %v", round, n, got, want)
			}
		}
	}
}

// Recycling must reuse the retained streams instead of growing the pool,
// and a partial second handout leaves the unclaimed streams untouched.
func TestRNGPoolRecycleReuses(t *testing.T) {
	p := NewRNGPool()
	root := p.Root(1)
	for i := 0; i < 5; i++ {
		root.StreamN("s", i)
	}
	size := p.Size()
	if size != 6 {
		t.Fatalf("pool retains %d streams after first handout, want 6", size)
	}
	p.Recycle()
	root = p.Root(2)
	root.Stream("only")
	if p.Size() != size {
		t.Fatalf("pool grew to %d on reuse, want %d", p.Size(), size)
	}
	p.Recycle()
	for i := 0; i < 10; i++ {
		p.Root(3)
	}
	if p.Size() != 10 {
		t.Fatalf("pool size %d after over-demand, want 10", p.Size())
	}
}

// Derived streams of a pooled RNG must themselves be pool-backed — a
// pooled team that derives hundreds of per-robot streams should allocate
// none of them on reuse.
func TestRNGPoolDerivedStreamsPooled(t *testing.T) {
	p := NewRNGPool()
	root := p.Root(7)
	s := root.Stream("a")
	if s.pool != p {
		t.Fatal("derived stream not pool-backed")
	}
	p.Recycle()
	root2 := p.Root(7)
	if root2 != root {
		t.Fatal("recycled root is a different object")
	}
	if s2 := root2.Stream("a"); s2 != s {
		t.Fatal("recycled derived stream is a different object")
	}
}
