package sim

// This file reimplements math/rand's additive lagged-Fibonacci source
// (Mitchell & Reeds: vec[feed] += vec[tap] over 607 int64 words, tap
// distance 273) so that stream construction is cheap. The stdlib source is
// bit-exact but pays dearly at Seed time: 1841 Schrage-style Lehmer steps,
// each with two integer divisions, behind a function call. CoCoA derives a
// fresh named stream per robot per noise source — profiling shows close to
// half of a small scenario's wall clock inside rngSource.Seed — so seeding
// is a hot path here even though it is a one-off cost for typical users.
//
// Two changes make it fast while keeping every draw bit-identical:
//
//  1. seedrand computes 48271·x mod (2³¹−1) with a 64-bit multiply and a
//     Mersenne fold instead of Schrage's two divisions.
//  2. A bounded cache maps seed → fully-seeded state vector, so re-deriving
//     a stream someone already paid for (replications, sweeps over configs
//     at a fixed seed, benchmark loops) is a 607-word copy.
//
// The seeding constants (math/rand's rngCooked table) are not copied from
// the stdlib source file: they are recovered algebraically at init by
// draining one stdlib generator and inverting the recurrence, then verified
// against a second stdlib stream. Bit-equality with math/rand is therefore
// checked at process start and again, across many seeds, in the tests.

import (
	"math/rand"
	"sync"
)

const (
	lfgLen   = 607
	lfgTap   = 273
	lfgFeed  = lfgLen - lfgTap // 334
	lfgMask  = 1<<63 - 1
	lehmerM  = 1<<31 - 1 // 2³¹−1, the Mersenne modulus of the seeding LCG
	lehmerA  = 48271
	seedZero = 89482311 // stdlib's replacement for the degenerate seed 0
)

// seedCooked holds math/rand's rngCooked seeding table, recovered at init
// by recoverCooked. Stored in the XOR domain as uint64.
var seedCooked [lfgLen]uint64

// seedrand advances the seeding LCG: x ← 48271·x mod (2³¹−1). The stdlib
// uses Schrage's decomposition to stay within 32-bit intermediates; with a
// 64-bit multiply available, reducing modulo a Mersenne number is a fold:
// for p = q·2³¹ + r, p ≡ q + r (mod 2³¹−1). q < 48271 so one conditional
// subtraction canonicalizes. Agreement with the Schrage form is exhaustive-
// randomly tested in lfg_test.go.
func seedrand(x int32) int32 {
	p := uint64(x) * lehmerA
	v := (p & lehmerM) + (p >> 31)
	if v >= lehmerM {
		v -= lehmerM
	}
	return int32(v)
}

// lfgSource is a drop-in replacement for the value returned by
// rand.NewSource, emitting the identical stream for every seed.
type lfgSource struct {
	tap, feed int
	vec       [lfgLen]int64
}

var _ rand.Source64 = (*lfgSource)(nil)

// seedVecs caches fully-seeded state vectors by seed. Entries are immutable
// once stored; sources copy out of the cache. Bounded so pathological seed
// diversity cannot grow memory without limit (each entry is ~4.9 KB).
var seedVecs struct {
	sync.Mutex
	m map[int64]*[lfgLen]int64
}

const seedVecsLimit = 1024

// newSource returns a Source64 seeded like rand.NewSource(seed).
func newSource(seed int64) *lfgSource {
	s := &lfgSource{}
	s.Seed(seed)
	return s
}

// Seed resets the source to the canonical stream for seed.
func (s *lfgSource) Seed(seed int64) {
	s.tap = 0
	s.feed = lfgFeed

	seedVecs.Lock()
	if v, ok := seedVecs.m[seed]; ok {
		seedVecs.Unlock()
		s.vec = *v
		return
	}
	seedVecs.Unlock()

	x := int32(seed % lehmerM)
	if x < 0 {
		x += lehmerM
	}
	if x == 0 {
		x = seedZero
	}
	for i := -20; i < lfgLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := uint64(x) << 40
			x = seedrand(x)
			u ^= uint64(x) << 20
			x = seedrand(x)
			u ^= uint64(x)
			u ^= seedCooked[i]
			s.vec[i] = int64(u)
		}
	}

	v := s.vec // copy: the cached template must not alias live state
	seedVecs.Lock()
	if seedVecs.m == nil {
		seedVecs.m = make(map[int64]*[lfgLen]int64)
	}
	if len(seedVecs.m) >= seedVecsLimit {
		for k := range seedVecs.m { // evict an arbitrary entry
			delete(seedVecs.m, k)
			break
		}
	}
	seedVecs.m[seed] = &v
	seedVecs.Unlock()
}

// Uint64 returns the next 64-bit word of the lagged-Fibonacci stream.
func (s *lfgSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += lfgLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += lfgLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 returns the low 63 bits of the next word, matching rngSource.
func (s *lfgSource) Int63() int64 {
	return int64(s.Uint64() & lfgMask)
}

// recoverCooked reconstructs the stdlib's rngCooked seeding table without
// copying it: drain 607 outputs from a stdlib source and invert the
// generator. The k-th output (k = 1…) reads positions feed = 334−k and
// tap = 607−k (mod 607) and overwrites the feed slot, so with out[k] the
// k-th output and vec[] the post-Seed state (all arithmetic in wrapping
// uint64):
//
//	k ∈ [335,607]: feed slot 941−k is still pristine and the tap slot was
//	               overwritten at step k−273, so vec[941−k] = out[k] − out[k−273]
//	k ∈ [274,334]: same shape on the low side: vec[334−k] = out[k] − out[k−273]
//	k ∈ [  1,273]: both operands pristine: vec[334−k] = out[k] − vec[607−k]
//
// That yields the full post-Seed vector for the probe seed; XORing away the
// seeding LCG's contribution (the u-triples above) leaves rngCooked.
func recoverCooked() {
	const probeSeed = 1
	src, ok := rand.NewSource(probeSeed).(rand.Source64)
	if !ok {
		panic("sim: math/rand source does not implement Source64")
	}
	var out [lfgLen + 1]uint64 // 1-indexed
	for k := 1; k <= lfgLen; k++ {
		out[k] = src.Uint64()
	}
	var vec [lfgLen]uint64
	for k := 335; k <= lfgLen; k++ {
		vec[941-k] = out[k] - out[k-273]
	}
	for k := 274; k <= 334; k++ {
		vec[334-k] = out[k] - out[k-273]
	}
	for k := 1; k <= 273; k++ {
		vec[334-k] = out[k] - vec[607-k]
	}

	// Strip the seeding LCG stream for the probe seed, leaving the table.
	x := int32(probeSeed)
	for i := -20; i < lfgLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := uint64(x) << 40
			x = seedrand(x)
			u ^= uint64(x) << 20
			x = seedrand(x)
			u ^= uint64(x)
			seedCooked[i] = vec[i] ^ u
		}
	}

	// Self-check before anything trusts the table: a fresh lfgSource must
	// continue the drained stdlib stream after skipping the probe draws,
	// and must agree with a second stdlib source on an unrelated seed.
	probe := &lfgSource{}
	probe.seedUncached(probeSeed)
	for k := 1; k <= lfgLen; k++ {
		if probe.Uint64() != out[k] {
			panic("sim: lagged-Fibonacci table recovery failed self-check")
		}
	}
	ref, _ := rand.NewSource(20240527).(rand.Source64)
	probe.seedUncached(20240527)
	for i := 0; i < 64; i++ {
		if probe.Uint64() != ref.Uint64() {
			panic("sim: lagged-Fibonacci source diverges from math/rand")
		}
	}
}

// seedUncached is Seed without the template cache, for the init self-check
// (the cache must not be populated before the table is validated).
func (s *lfgSource) seedUncached(seed int64) {
	s.tap = 0
	s.feed = lfgFeed
	x := int32(seed % lehmerM)
	if x < 0 {
		x += lehmerM
	}
	if x == 0 {
		x = seedZero
	}
	for i := -20; i < lfgLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := uint64(x) << 40
			x = seedrand(x)
			u ^= uint64(x) << 20
			x = seedrand(x)
			u ^= uint64(x)
			u ^= seedCooked[i]
			s.vec[i] = int64(u)
		}
	}
}

func init() {
	recoverCooked()
}
