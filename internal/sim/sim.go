// Package sim implements the deterministic discrete-event simulation engine
// underlying the CoCoA reproduction. It plays the role Glomosim plays in the
// paper: a virtual clock, an event calendar, and seeded random-number
// streams so that an entire scenario is a pure function of (config, seed).
//
// Virtual time is expressed in float64 seconds, the convention of wireless
// network simulators (ns-2, Glomosim), because the physics of the models
// (speeds in m/s, power in W) are naturally continuous.
package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"cocoa/internal/telemetry"
)

// Telemetry instruments (no-ops until the telemetry registry is enabled).
// The engine only records — nothing here feeds back into scheduling — so
// runs are byte-identical with telemetry on or off.
var (
	telScheduled = telemetry.Default.Counter("sim.events_scheduled")
	telDispatch  = telemetry.Default.Counter("sim.events_dispatched")
	telCanceled  = telemetry.Default.Counter("sim.events_canceled")
	telChunks    = telemetry.Default.Counter("sim.arena_chunks")
	telHeapDepth = telemetry.Default.Histogram("sim.heap_depth",
		[]float64{0, 8, 64, 512, 4096, 32768})
)

// Time is a point in virtual time, in seconds since the simulation start.
type Time = float64

// ErrNegativeDelay is returned (via panic recovery paths in callers) when an
// event is scheduled in the past; the engine refuses to rewind the clock.
var ErrNegativeDelay = errors.New("sim: event scheduled in the past")

// Event is a scheduled callback. The zero value is invalid; events are
// created through Simulator.Schedule or Simulator.At.
type Event struct {
	time     Time
	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
	fn       func()
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.time }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue is a min-heap ordered by (time, seq). The sequence number makes
// event ordering fully deterministic for simultaneous events: ties fire in
// scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return // cannot happen: Push is only reached via heap.Push(*Event)
	}
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// arenaChunk is how many Events each arena block holds. Events are
// allocated from chunks rather than individually: a busy scenario schedules
// hundreds of thousands of short-lived events (MAC timers, delivery
// callbacks, ticks), and one heap allocation per event dominated the
// engine's allocation profile. Chunks are never reused for new events
// within a run — callers hold *Event across firing (Cancel after fire must
// stay a no-op) — but Reset rewinds the retained chunk list so consecutive
// runs on one simulator recycle their event storage.
const arenaChunk = 256

// maxRetainedChunks caps the chunk list a simulator keeps for Reset reuse
// (256 chunks = 65536 events ≈ 3 MB). Runs that schedule more events than
// that fall back to the historical drop-for-GC behavior for the excess, so
// a pathological endless simulation cannot grow its footprint without
// bound.
const maxRetainedChunks = 256

// Simulator owns the virtual clock and the event calendar.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool

	// arena is the current Event allocation block; arenaPos indexes the
	// next free slot. chunks retains allocated blocks for reuse after
	// Reset: arena aliases chunks[chunkIdx] while chunkIdx is in range
	// (-1 before the first block), and overflow blocks past
	// maxRetainedChunks stay untracked.
	arena    []Event
	arenaPos int
	chunks   [][]Event
	chunkIdx int

	// processed counts events executed, for diagnostics and tests.
	processed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{chunkIdx: -1}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Reset rewinds the simulator to its initial state — clock at zero, empty
// calendar — while retaining the allocated event storage: the calendar
// heap's backing array and the current arena chunk are kept for the next
// run instead of being reallocated.
//
// Reuse contract: Reset recycles Event slots, so it must only be called
// once no *Event obtained from the previous run can be used again (the
// Cancel-after-fire no-op guarantee does not survive a Reset). The scratch
// reuse path upholds this by resetting only after the previous run's team
// has been discarded.
func (s *Simulator) Reset() {
	// Drop queued events (and their closures) but keep the heap's capacity.
	for i := range s.queue {
		s.queue[i] = nil
	}
	s.queue = s.queue[:0]
	// Clear every retained chunk so no stale closure or heap index
	// survives into the slots the next run will hand out, then rewind the
	// arena to the first one. An untracked overflow block (past the
	// retention cap) is simply dropped here.
	for _, c := range s.chunks {
		for i := range c {
			c[i] = Event{}
		}
	}
	s.chunkIdx = -1
	s.arena = nil
	if len(s.chunks) > 0 {
		s.chunkIdx = 0
		s.arena = s.chunks[0]
	}
	s.arenaPos = 0
	s.now = 0
	s.seq = 0
	s.processed = 0
	s.stopped = false
}

// Pending returns the number of events waiting in the calendar, including
// canceled events that have not yet been drained.
func (s *Simulator) Pending() int { return len(s.queue) }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Schedule arranges for fn to run delay seconds from now. A zero delay runs
// the event after all events already scheduled for the current instant.
// It panics on negative delay: that is always a programming error in a
// discrete-event model, never a recoverable runtime condition.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v: %v", delay, ErrNegativeDelay))
	}
	return s.At(s.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t (>= Now).
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: time %v before now %v: %v", t, s.now, ErrNegativeDelay))
	}
	if s.arenaPos == len(s.arena) {
		s.chunkIdx++
		switch {
		case s.chunkIdx < len(s.chunks):
			// A retained chunk from a previous run; its slots are fully
			// overwritten below at hand-out time.
			s.arena = s.chunks[s.chunkIdx]
		case len(s.chunks) < maxRetainedChunks:
			s.arena = make([]Event, arenaChunk)
			s.chunks = append(s.chunks, s.arena)
			telChunks.Inc()
		default:
			// Past the retention cap: untracked, dropped for the GC when
			// the next block replaces it (the pre-reuse behavior).
			s.arena = make([]Event, arenaChunk)
			telChunks.Inc()
		}
		s.arenaPos = 0
	}
	e := &s.arena[s.arenaPos]
	s.arenaPos++
	*e = Event{time: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	telScheduled.Inc()
	telHeapDepth.ObserveInt(len(s.queue))
	return e
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	e.fn = nil // release the closure; canceled events never fire
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
	telCanceled.Inc()
}

// Stop makes the current Run call return after the in-flight event
// completes. The calendar is preserved; Run may be called again.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single next event, advancing the clock to its time.
// It returns false when the calendar is empty.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			return false // cannot happen: the queue only holds *Event
		}
		if e.canceled {
			continue
		}
		s.now = e.time
		s.processed++
		telDispatch.Inc()
		e.canceled = true // mark fired so Cancel after firing is a no-op
		fn := e.fn
		e.fn = nil // let the GC reclaim the closure before the chunk dies
		fn()
		return true
	}
	return false
}

// Run executes events until the calendar empties or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with time <= horizon, then sets the clock to the
// horizon. Events scheduled beyond the horizon stay queued.
func (s *Simulator) RunUntil(horizon Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 || s.queue[0].time > horizon {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// EachTick schedules fn to run every interval seconds starting at start,
// until the returned stop function is called or the simulation ends. fn
// receives the tick time. This is the engine-level building block for the
// paper's per-second metric sampling and the beacon-period timeline.
func (s *Simulator) EachTick(start, interval Time, fn func(t Time)) (stop func()) {
	if interval <= 0 {
		panic("sim: EachTick interval must be positive")
	}
	stopped := false
	var schedule func(t Time)
	schedule = func(t Time) {
		s.At(t, func() {
			if stopped {
				return
			}
			fn(t)
			if !stopped {
				schedule(t + interval)
			}
		})
	}
	schedule(start)
	return func() { stopped = true }
}
