package odometry

import (
	"math"
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/mobility"
	"cocoa/internal/sim"
)

// zeroNoise makes the reckoner deterministic.
type zeroNoise struct{}

func (zeroNoise) Normal(mean, _ float64) float64 { return mean }

// scriptedNoise returns canned draws.
type scriptedNoise struct {
	draws []float64
	i     int
}

func (s *scriptedNoise) Normal(mean, stddev float64) float64 {
	if s.i >= len(s.draws) {
		return mean
	}
	v := mean + stddev*s.draws[s.i]
	s.i++
	return v
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.DispSigmaPerSec != 0.1 {
		t.Errorf("DispSigmaPerSec = %v, want 0.1", c.DispSigmaPerSec)
	}
	if math.Abs(geom.Degrees(c.AngleSigmaRad)-10) > 1e-9 {
		t.Errorf("AngleSigma = %v deg, want 10", geom.Degrees(c.AngleSigmaRad))
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	for _, c := range []Config{
		{DispSigmaPerSec: -1},
		{AngleSigmaRad: -1},
		{TurnThresholdRad: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
}

func TestNoNoiseTracksPerfectly(t *testing.T) {
	d, err := NewDeadReckoner(DefaultConfig(), zeroNoise{}, geom.Vec2{X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Walk a square.
	steps := []geom.Vec2{{X: 10}, {Y: 10}, {X: -10}, {Y: -10}}
	truth := geom.Vec2{X: 1, Y: 2}
	for _, s := range steps {
		d.Step(s, 1)
		truth = truth.Add(s)
		if got := d.Estimate(); got.Dist(truth) > 1e-9 {
			t.Fatalf("estimate %v, truth %v", got, truth)
		}
	}
}

func TestStationaryDoesNotDrift(t *testing.T) {
	rng := sim.NewRNG(1).Stream("odo")
	d, err := NewDeadReckoner(DefaultConfig(), rng, geom.Vec2{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d.Step(geom.Vec2{}, 1)
	}
	if got := d.Estimate(); got != (geom.Vec2{X: 5, Y: 5}) {
		t.Errorf("stationary estimate moved to %v", got)
	}
}

func TestTurnIncursHeadingError(t *testing.T) {
	// Draw order per Step: [turn (if turning)], drift, displacement.
	// Step 1 (first leg): drift=0, disp=0. Step 2 (turn): turn=1,
	// drift=0, disp=0.
	n := &scriptedNoise{draws: []float64{0, 0, 1, 0, 0}}
	cfg := DefaultConfig()
	d, err := NewDeadReckoner(cfg, n, geom.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	d.Step(geom.Vec2{X: 10}, 1) // first leg, no turn registered
	if d.HeadingBias() != 0 {
		t.Fatalf("bias after first leg = %v, want 0", d.HeadingBias())
	}
	d.Step(geom.Vec2{Y: 10}, 1) // 90-degree turn
	if got, want := d.HeadingBias(), cfg.AngleSigmaRad; math.Abs(got-want) > 1e-12 {
		t.Fatalf("bias after turn = %v, want %v", got, want)
	}
	// The second leg is rotated by the bias.
	est := d.Estimate()
	want := geom.Vec2{X: 10}.Add(geom.FromPolar(10, math.Pi/2+cfg.AngleSigmaRad))
	if est.Dist(want) > 1e-9 {
		t.Fatalf("estimate %v, want %v", est, want)
	}
}

func TestStraightLineNoTurnError(t *testing.T) {
	n := &scriptedNoise{draws: []float64{0, 0, 0, 0, 0, 0}}
	d, err := NewDeadReckoner(DefaultConfig(), n, geom.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.Step(geom.Vec2{X: 2}, 1)
	}
	if d.HeadingBias() != 0 {
		t.Errorf("straight line accrued heading bias %v", d.HeadingBias())
	}
}

func TestNegativeMeasuredDistanceClamped(t *testing.T) {
	// drift=0, then a huge negative displacement noise.
	n := &scriptedNoise{draws: []float64{0, -100}}
	d, err := NewDeadReckoner(DefaultConfig(), n, geom.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	d.Step(geom.Vec2{X: 0.01}, 1)
	if got := d.Estimate().Len(); got != 0 {
		t.Errorf("estimate moved backwards: %v", got)
	}
}

func TestReset(t *testing.T) {
	n := &scriptedNoise{draws: []float64{0, 0, 1, 0, 0}}
	d, err := NewDeadReckoner(DefaultConfig(), n, geom.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	d.Step(geom.Vec2{X: 10}, 1)
	d.Step(geom.Vec2{Y: 10}, 1) // the turn accrues bias
	bias := d.HeadingBias()
	if bias == 0 {
		t.Fatal("test setup: no bias accrued")
	}
	d.Reset(geom.Vec2{X: 1, Y: 1})
	if got := d.Estimate(); got != (geom.Vec2{X: 1, Y: 1}) {
		t.Errorf("Reset estimate = %v", got)
	}
	if d.HeadingBias() != bias {
		t.Error("Reset cleared heading bias; a bare position fix must not recalibrate heading")
	}
}

func TestReanchorClearsAllState(t *testing.T) {
	n := &scriptedNoise{draws: []float64{0, 0, 1, 0, 0}}
	d, err := NewDeadReckoner(DefaultConfig(), n, geom.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	d.Step(geom.Vec2{X: 10}, 1)
	d.Step(geom.Vec2{Y: 10}, 1)
	if d.HeadingBias() == 0 {
		t.Fatal("test setup: no bias accrued")
	}
	d.Reanchor(geom.Vec2{X: 2, Y: 3})
	if got := d.Estimate(); got != (geom.Vec2{X: 2, Y: 3}) {
		t.Errorf("Reanchor estimate = %v", got)
	}
	if d.HeadingBias() != 0 {
		t.Error("Reanchor kept heading bias; CoCoA fixes restart odometry from scratch")
	}
}

func TestHeadingDriftAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	rng := sim.NewRNG(5).Stream("drift")
	d, err := NewDeadReckoner(cfg, rng, geom.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	// A long straight walk: no turns, but gyro drift still accrues.
	for i := 0; i < 1800; i++ {
		d.Step(geom.Vec2{X: 1}, 1)
	}
	if d.HeadingBias() == 0 {
		t.Error("no drift accumulated over 30 straight minutes")
	}
	// The drift magnitude should be on the order of
	// HeadingDriftRadPerSqrtS * sqrt(1800), not wildly larger.
	if math.Abs(d.HeadingBias()) > 6*cfg.HeadingDriftRadPerSqrtS*math.Sqrt(1800) {
		t.Errorf("drift %v implausibly large", d.HeadingBias())
	}
}

func TestBadDtPanics(t *testing.T) {
	d, err := NewDeadReckoner(DefaultConfig(), zeroNoise{}, geom.Vec2{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dt <= 0")
		}
	}()
	d.Step(geom.Vec2{X: 1}, 0)
}

// Integration with the mobility model: over the paper's 30-minute run the
// odometry-only error must accumulate substantially (Figure 4 reaches
// >100 m); averaged over robots it must far exceed the RF-fix scale (~6 m).
func TestErrorAccumulatesOverPaperRun(t *testing.T) {
	const robots = 20
	var finalSum float64
	for r := 0; r < robots; r++ {
		rng := sim.NewRNG(int64(100 + r))
		w, err := mobility.NewWaypoint(mobility.DefaultConfig(2.0), rng.Stream("mob"))
		if err != nil {
			t.Fatal(err)
		}
		start := w.Position(0)
		d, err := NewDeadReckoner(DefaultConfig(), rng.Stream("odo"), start)
		if err != nil {
			t.Fatal(err)
		}
		prev := start
		for now := 1.0; now <= 1800; now++ {
			cur := w.Position(now)
			d.Step(cur.Sub(prev), 1)
			prev = cur
		}
		finalSum += d.Estimate().Dist(prev)
	}
	avg := finalSum / robots
	if avg < 30 {
		t.Errorf("average 30-min odometry error = %.1f m, want large (paper >100 m)", avg)
	}
}

// The error at 60 s must be far smaller than at 1800 s (monotone growth in
// expectation), which is what motivates CoCoA's periodic RF fixes.
func TestErrorGrowthShape(t *testing.T) {
	const robots = 20
	errAt := func(horizon float64) float64 {
		var sum float64
		for r := 0; r < robots; r++ {
			rng := sim.NewRNG(int64(200 + r))
			w, err := mobility.NewWaypoint(mobility.DefaultConfig(2.0), rng.Stream("mob"))
			if err != nil {
				t.Fatal(err)
			}
			start := w.Position(0)
			d, err := NewDeadReckoner(DefaultConfig(), rng.Stream("odo"), start)
			if err != nil {
				t.Fatal(err)
			}
			prev := start
			for now := 1.0; now <= horizon; now++ {
				cur := w.Position(now)
				d.Step(cur.Sub(prev), 1)
				prev = cur
			}
			sum += d.Estimate().Dist(prev)
		}
		return sum / robots
	}
	early, late := errAt(60), errAt(1800)
	if late < 5*early {
		t.Errorf("error growth too flat: 60s=%.2f m, 1800s=%.2f m", early, late)
	}
}
