package odometry

import (
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

func BenchmarkStep(b *testing.B) {
	d, err := NewDeadReckoner(DefaultConfig(), sim.NewRNG(1).Stream("bench"), geom.Vec2{})
	if err != nil {
		b.Fatal(err)
	}
	delta := geom.Vec2{X: 1.1, Y: 0.3}
	for i := 0; i < b.N; i++ {
		d.Step(delta, 1)
	}
}
