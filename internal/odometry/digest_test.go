package odometry

import (
	"testing"

	"cocoa/internal/checkpoint"
	"cocoa/internal/geom"
)

// HashState fingerprints the reckoner: stable on equal states, moved by
// steps and by re-anchoring.
func TestHashState(t *testing.T) {
	sum := func(d *DeadReckoner) uint64 {
		h := checkpoint.NewHasher()
		d.HashState(h)
		return h.Sum()
	}
	mk := func() *DeadReckoner {
		d, err := NewDeadReckoner(DefaultConfig(), zeroNoise{}, geom.Vec2{X: 1, Y: 2})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := mk(), mk()
	if sum(a) != sum(b) {
		t.Fatal("identical fresh reckoners hash differently")
	}
	a.Step(geom.Vec2{X: 1, Y: 0}, 1)
	if sum(a) == sum(b) {
		t.Fatal("a step did not change the digest")
	}
	b.Step(geom.Vec2{X: 1, Y: 0}, 1)
	if sum(a) != sum(b) {
		t.Fatal("same step produced a different digest")
	}
	a.Reanchor(geom.Vec2{X: 9, Y: 9})
	if sum(a) == sum(b) {
		t.Fatal("re-anchoring did not change the digest")
	}
}
