// Package odometry implements the paper's dead-reckoning model: the robot
// integrates noisy wheel-encoder displacement and heading measurements to
// maintain a position estimate. Both error sources follow the paper's
// simulation model:
//
//   - displacement error: zero-mean Gaussian, standard deviation 0.1 m/s;
//   - angular error: zero-mean Gaussian, standard deviation 10 degrees,
//     incurred whenever the robot turns.
//
// Heading errors accumulate as a random walk over turns (Figure 5), which
// is why odometry-only localization diverges past 100 m within half an
// hour (Figure 4).
package odometry

import (
	"cocoa/internal/checkpoint"
	"fmt"
	"math"

	"cocoa/internal/geom"
)

// Config holds the error-model parameters.
type Config struct {
	// DispSigmaPerSec is the displacement error standard deviation in
	// meters per second of travel (paper: 0.1 m/s).
	DispSigmaPerSec float64
	// AngleSigmaRad is the per-turn heading error standard deviation in
	// radians (paper: 10 degrees).
	AngleSigmaRad float64
	// TurnThresholdRad is the smallest true heading change registered as
	// a turn.
	TurnThresholdRad float64
	// HeadingDriftRadPerSqrtS is the gyro-style heading random walk: the
	// heading estimate additionally drifts by N(0, drift*sqrt(dt)) per
	// step while moving. The paper's Figure 4 error magnitudes (>100 m
	// after 30 minutes for both speeds) require this continuous component
	// on top of the per-turn error; see DESIGN.md.
	HeadingDriftRadPerSqrtS float64
}

// DefaultConfig returns the paper's odometry error parameters.
func DefaultConfig() Config {
	return Config{
		DispSigmaPerSec:         0.1,
		AngleSigmaRad:           geom.Radians(10),
		TurnThresholdRad:        geom.Radians(1),
		HeadingDriftRadPerSqrtS: geom.Radians(2.2),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.DispSigmaPerSec < 0 || c.AngleSigmaRad < 0 || c.TurnThresholdRad < 0 ||
		c.HeadingDriftRadPerSqrtS < 0 {
		return fmt.Errorf("odometry: negative sigma or threshold: %+v", c)
	}
	return nil
}

// noiseSource is the subset of sim.RNG the dead reckoner draws from.
type noiseSource interface {
	Normal(mean, stddev float64) float64
}

// DeadReckoner integrates noisy motion measurements into a position
// estimate. Feed it the robot's true per-step displacement; it applies the
// error model and accumulates the estimated pose.
type DeadReckoner struct {
	cfg Config
	rng noiseSource

	est         geom.Vec2
	headingBias float64
	lastHeading float64
	moved       bool
}

// NewDeadReckoner builds a reckoner whose initial estimate is est (the
// paper provides odometry-only robots with their true initial position).
func NewDeadReckoner(cfg Config, rng noiseSource, est geom.Vec2) (*DeadReckoner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DeadReckoner{cfg: cfg, rng: rng, est: est}, nil
}

// Step consumes the true displacement over the last dt seconds and updates
// the estimate with measurement noise. Steps with (near) zero displacement
// leave the estimate unchanged: stationary odometers do not drift.
func (d *DeadReckoner) Step(trueDelta geom.Vec2, dt float64) {
	d.StepScaled(trueDelta, dt, 1)
}

// StepScaled is Step with every noise sigma multiplied by noiseScale for
// this step — the hook the terrain model uses to degrade odometry on
// rough ground (the paper's "uneven surfaces" concern).
func (d *DeadReckoner) StepScaled(trueDelta geom.Vec2, dt, noiseScale float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("odometry: non-positive dt %v", dt))
	}
	if noiseScale < 0 {
		panic(fmt.Sprintf("odometry: negative noise scale %v", noiseScale))
	}
	dist := trueDelta.Len()
	if dist < 1e-12 {
		return
	}
	heading := trueDelta.Heading()
	if !d.moved {
		d.moved = true
		d.lastHeading = heading
	} else if math.Abs(geom.AngleDiff(d.lastHeading, heading)) > d.cfg.TurnThresholdRad {
		// A turn: the gyro/encoder heading measurement carries fresh
		// Gaussian error that persists until the next turn.
		d.headingBias += d.rng.Normal(0, noiseScale*d.cfg.AngleSigmaRad)
		d.lastHeading = heading
	}
	// Continuous gyro drift while moving.
	if d.cfg.HeadingDriftRadPerSqrtS > 0 {
		d.headingBias += d.rng.Normal(0, noiseScale*d.cfg.HeadingDriftRadPerSqrtS*math.Sqrt(dt))
	}
	measured := dist + d.rng.Normal(0, noiseScale*d.cfg.DispSigmaPerSec*dt)
	if measured < 0 {
		measured = 0
	}
	d.est = d.est.Add(geom.FromPolar(measured, heading+d.headingBias))
}

// Estimate returns the current dead-reckoned position estimate.
func (d *DeadReckoner) Estimate() geom.Vec2 { return d.est }

// Reset replaces the position estimate only. The accumulated heading bias
// is retained: a bare position fix does not recalibrate the robot's
// heading sensor.
func (d *DeadReckoner) Reset(est geom.Vec2) { d.est = est }

// Reanchor discards the whole dead-reckoning state and restarts from est:
// position, heading bias, and turn tracking. This is CoCoA's semantics —
// the paper's robots "throw away their currently estimated positions" at
// each transmit period, restarting odometry from the fresh RF fix.
func (d *DeadReckoner) Reanchor(est geom.Vec2) {
	d.est = est
	d.headingBias = 0
	d.moved = false
	d.lastHeading = 0
}

// HeadingBias returns the accumulated heading error in radians, exposed
// for tests and diagnostics.
func (d *DeadReckoner) HeadingBias() float64 { return d.headingBias }

// HashState folds the reckoner's estimate and heading-error state into h,
// for checkpoint digests.
func (d *DeadReckoner) HashState(h *checkpoint.Hasher) {
	h.F64(d.est.X)
	h.F64(d.est.Y)
	h.F64(d.headingBias)
	h.F64(d.lastHeading)
	h.Bool(d.moved)
}
