package eventlog

import (
	"bytes"
	"math"
	"testing"
	"unicode/utf8"

	"cocoa/internal/cocoa"
	"cocoa/internal/geom"
)

// isFinite reports whether v survives JSON encoding (NaN and Inf do not).
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// FuzzEventlogRoundTrip drives two properties at once:
//
//  1. Read never panics, whatever bytes it is fed — truncated lines,
//     corrupt JSON, binary garbage. It returns events or an error.
//  2. For encodable events, Writer -> Read is lossless field-by-field;
//     for non-encodable ones (non-finite floats) the writer reports the
//     error from Flush and counts nothing.
func FuzzEventlogRoundTrip(f *testing.F) {
	f.Add(1.5, "fix", 3, 10.0, 20.0, 2.25, 4, []byte(`{"timeS":1,"kind":"fix"}`))
	f.Add(0.0, "window-start", -1, 0.0, 0.0, 0.0, 0, []byte(``))
	f.Add(99.75, "beacon-sent", 7, -5.5, 199.9, 0.0, 0, []byte("{\"timeS\": 1}\nnot json\n"))
	f.Add(3.0, "crash", 11, 1.0, 2.0, 0.0, 0, []byte("{\"timeS\":"))
	f.Add(math.NaN(), "wake", 2, math.Inf(1), 0.0, -1.0, -3, []byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, timeS float64, kind string, robot int,
		px, py, errM float64, beacons int, raw []byte) {
		// Property 1: the decoder never panics on arbitrary input.
		if events, err := Read(bytes.NewReader(raw)); err == nil {
			for _, e := range events {
				_ = e // decoded events are plain data; nothing to check
			}
		}

		e := cocoa.Event{
			TimeS:   timeS,
			Kind:    cocoa.EventKind(kind),
			Robot:   robot,
			Pos:     geom.Vec2{X: px, Y: py},
			ErrM:    errM,
			Beacons: beacons,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Observer()(e)

		encodable := isFinite(timeS) && isFinite(px) && isFinite(py) && isFinite(errM)
		if !encodable {
			// Property 2b: the swallowed encode error surfaces at Flush.
			if err := w.Flush(); err == nil {
				t.Fatalf("non-finite event %+v flushed cleanly", e)
			}
			if w.Count() != 0 {
				t.Fatalf("Count = %d after failed encode", w.Count())
			}
			return
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if w.Count() != 1 {
			t.Fatalf("Count = %d, want 1", w.Count())
		}
		// Property 2a: decode returns the event unchanged.
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if len(back) != 1 {
			t.Fatalf("round-trip produced %d events", len(back))
		}
		if !utf8.ValidString(kind) {
			// encoding/json replaces invalid UTF-8 with U+FFFD; the kind
			// cannot round-trip exactly. Everything else still must.
			back[0].Kind = e.Kind
		}
		if back[0] != e {
			t.Fatalf("round trip mutated the event:\n in: %+v\nout: %+v", e, back[0])
		}
	})
}
