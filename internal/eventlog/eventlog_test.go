package eventlog

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"cocoa/internal/cocoa"
)

// observedRun executes a small deployment with an event log attached.
func observedRun(t *testing.T) ([]cocoa.Event, *cocoa.Result) {
	t.Helper()
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.BeaconPeriodS = 30
	cfg.DurationS = 120
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000

	team, err := cocoa.NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	team.Observe(w.Observer())
	res, err := team.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != w.Count() {
		t.Fatalf("read %d events, wrote %d", len(events), w.Count())
	}
	return events, res
}

func TestEventStreamStructure(t *testing.T) {
	events, res := observedRun(t)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	stats := Stats(events)

	// Four windows in 120 s at T=30.
	if got := stats[cocoa.EventWindowStart]; got != 4 {
		t.Errorf("window-start count = %d, want 4", got)
	}
	if got := stats[cocoa.EventWindowEnd]; got != 4 {
		t.Errorf("window-end count = %d, want 4", got)
	}
	// Beacons: at most 4 equipped x 3 beacons x 4 windows.
	if got := stats[cocoa.EventBeaconSent]; got == 0 || got > 48 {
		t.Errorf("beacon-sent count = %d, want in (0, 48]", got)
	}
	// Every fix event must agree with the result's counter.
	if got := stats[cocoa.EventFix]; got != res.Fixes {
		t.Errorf("fix events = %d, result says %d", got, res.Fixes)
	}
	if got := stats[cocoa.EventFixMissed]; got != res.MissedWindows {
		t.Errorf("fix-missed events = %d, result says %d", got, res.MissedWindows)
	}
	if stats[cocoa.EventSleep] == 0 || stats[cocoa.EventWake] == 0 {
		t.Error("no sleep/wake events under coordination")
	}
	if got := stats[cocoa.EventSyncRecv]; got != res.SyncsReceived {
		t.Errorf("sync events = %d, result says %d", got, res.SyncsReceived)
	}
}

func TestEventsTimeOrdered(t *testing.T) {
	events, _ := observedRun(t)
	times := make([]float64, len(events))
	for i, e := range events {
		times[i] = e.TimeS
	}
	if !sort.Float64sAreSorted(times) {
		t.Error("events out of virtual-time order")
	}
}

func TestFixEventsCarryMeasurements(t *testing.T) {
	events, _ := observedRun(t)
	found := false
	for _, e := range events {
		if e.Kind != cocoa.EventFix {
			continue
		}
		found = true
		if e.Beacons < 3 {
			t.Errorf("fix with %d beacons violates the >=3 rule", e.Beacons)
		}
		if e.ErrM < 0 || e.ErrM > 300 {
			t.Errorf("implausible fix error %v", e.ErrM)
		}
		if e.Robot < 4 || e.Robot > 7 {
			t.Errorf("fix from equipped robot %d", e.Robot)
		}
	}
	if !found {
		t.Fatal("no fix events")
	}
}

// A non-encodable event (NaN is not valid JSON) must poison the writer:
// later events are dropped, Count stays at the successes, and the error
// that Observer() swallowed surfaces from Flush and Close alike.
func TestEncodeErrorStickyAndCounted(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	obs := w.Observer()

	obs(cocoa.Event{TimeS: 1, Kind: cocoa.EventFix, Robot: 3, ErrM: 2.5})
	obs(cocoa.Event{TimeS: 2, Kind: cocoa.EventFix, ErrM: math.NaN()}) // unencodable
	obs(cocoa.Event{TimeS: 3, Kind: cocoa.EventFix, Robot: 4})         // after poison

	if w.Count() != 1 {
		t.Errorf("Count = %d, want 1 (only the pre-error event)", w.Count())
	}
	ferr := w.Flush()
	if ferr == nil {
		t.Fatal("Flush returned nil after a failed encode")
	}
	if cerr := w.Close(); !errors.Is(cerr, ferr) && cerr.Error() != ferr.Error() {
		t.Errorf("Close error %v differs from Flush error %v", cerr, ferr)
	}
	// The surviving stream holds exactly the successfully encoded prefix.
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].TimeS != 1 {
		t.Errorf("stream = %+v, want only the first event", events)
	}
}

// failWriter errors on every write, standing in for a full disk.
type failWriter struct{ writes int }

var errDiskFull = errors.New("disk full")

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	return 0, errDiskFull
}

// A failing sink surfaces from Flush and stays sticky on repeat calls.
func TestFlushErrorSticky(t *testing.T) {
	fw := &failWriter{}
	w := NewWriter(fw)
	w.Observer()(cocoa.Event{TimeS: 1, Kind: cocoa.EventWake})
	if w.Count() != 1 {
		t.Errorf("Count = %d, want 1 (buffered encode succeeded)", w.Count())
	}
	if err := w.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("Flush error = %v, want errDiskFull", err)
	}
	if err := w.Close(); !errors.Is(err, errDiskFull) {
		t.Errorf("Close after failed Flush = %v, want sticky errDiskFull", err)
	}
	if fw.writes != 1 {
		t.Errorf("sink written to %d times after the first failure", fw.writes)
	}
}

func TestCloseFlushesCleanStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Observer()(cocoa.Event{TimeS: 1, Kind: cocoa.EventSleep, Robot: 2})
	if buf.Len() != 0 {
		t.Error("event bypassed the buffer before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Robot != 2 {
		t.Errorf("events = %+v", events)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"timeS\": 1}\nnot json\n")); err == nil {
		t.Error("accepted malformed JSONL")
	}
}

func TestEmptyStream(t *testing.T) {
	events, err := Read(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("got %d events from empty stream", len(events))
	}
	if len(Stats(nil)) != 0 {
		t.Error("Stats(nil) not empty")
	}
}
