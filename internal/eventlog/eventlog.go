// Package eventlog serializes CoCoA run events to JSON Lines for offline
// analysis: one JSON object per event, in virtual-time order. It plugs
// into the Team's Observer hook.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cocoa/internal/cocoa"
)

// Writer streams events as JSONL. It buffers internally; call Flush (or
// Close) when the run completes.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewWriter wraps w. The caller retains ownership of any underlying file.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Observer returns the function to register with Team.Observe.
func (w *Writer) Observer() cocoa.Observer {
	return func(e cocoa.Event) {
		if w.err != nil {
			return
		}
		if err := w.enc.Encode(e); err != nil {
			w.err = err
			return
		}
		w.n++
	}
}

// Count returns the number of events written so far.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer and reports the first error the writer hit —
// a failed event encode inside Observer() (which otherwise stays invisible
// until here) or the drain itself. The error is sticky: every later Flush
// or Close reports it again.
func (w *Writer) Flush() error {
	// Drain even after a failed encode: the encoder marshals before it
	// writes, so the buffer only ever holds complete event lines — the
	// valid prefix still reaches the sink.
	ferr := w.bw.Flush()
	if w.err == nil {
		w.err = ferr
	}
	return w.err
}

// Close finalizes the log by flushing. It does not close the underlying
// writer — the caller retains ownership (NewWriter's contract). It exists
// so callers can defer one cleanup call and still see a swallowed encode
// error.
func (w *Writer) Close() error { return w.Flush() }

// Read parses a JSONL event stream back into events, for tooling and
// tests.
func Read(r io.Reader) ([]cocoa.Event, error) {
	var events []cocoa.Event
	dec := json.NewDecoder(r)
	for {
		var e cocoa.Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("eventlog: event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}

// Stats aggregates an event stream into per-kind counts.
func Stats(events []cocoa.Event) map[cocoa.EventKind]int {
	out := make(map[cocoa.EventKind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}
