// Package eventlog serializes CoCoA run events to JSON Lines for offline
// analysis: one JSON object per event, in virtual-time order. It plugs
// into the Team's Observer hook.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"cocoa/internal/cocoa"
)

// Writer streams events as JSONL. It buffers internally; call Flush (or
// Close) when the run completes.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewWriter wraps w. The caller retains ownership of any underlying file.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Observer returns the function to register with Team.Observe.
func (w *Writer) Observer() cocoa.Observer {
	return func(e cocoa.Event) {
		if w.err != nil {
			return
		}
		if err := w.enc.Encode(e); err != nil {
			w.err = err
			return
		}
		w.n++
	}
}

// Count returns the number of events written so far.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer and reports any write error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Read parses a JSONL event stream back into events, for tooling and
// tests.
func Read(r io.Reader) ([]cocoa.Event, error) {
	var events []cocoa.Event
	dec := json.NewDecoder(r)
	for {
		var e cocoa.Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("eventlog: event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}

// Stats aggregates an event stream into per-kind counts.
func Stats(events []cocoa.Event) map[cocoa.EventKind]int {
	out := make(map[cocoa.EventKind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}
