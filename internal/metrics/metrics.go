// Package metrics provides the measurement primitives behind the paper's
// evaluation: time series of localization error, summary statistics, and
// empirical CDFs (Figure 8).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// TimeSeries is an append-only (time, value) sequence.
type TimeSeries struct {
	Times  []float64
	Values []float64
}

// Add appends a sample. Times must be non-decreasing.
func (ts *TimeSeries) Add(t, v float64) {
	if n := len(ts.Times); n > 0 && t < ts.Times[n-1] {
		panic(fmt.Sprintf("metrics: time went backwards: %v < %v", t, ts.Times[n-1]))
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Mean returns the arithmetic mean of the values (NaN when empty).
func (ts *TimeSeries) Mean() float64 { return mean(ts.Values) }

// Max returns the maximum value (NaN when empty).
func (ts *TimeSeries) Max() float64 {
	if len(ts.Values) == 0 {
		return math.NaN()
	}
	m := ts.Values[0]
	for _, v := range ts.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ValueAt returns the value of the sample closest to time t (NaN when
// empty).
func (ts *TimeSeries) ValueAt(t float64) float64 {
	if len(ts.Times) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(ts.Times, t)
	if i == len(ts.Times) {
		return ts.Values[len(ts.Values)-1]
	}
	if i > 0 && t-ts.Times[i-1] < ts.Times[i]-t {
		i--
	}
	return ts.Values[i]
}

// Downsample returns every k-th sample, for compact reporting.
func (ts *TimeSeries) Downsample(k int) *TimeSeries {
	if k <= 1 {
		return &TimeSeries{Times: append([]float64(nil), ts.Times...),
			Values: append([]float64(nil), ts.Values...)}
	}
	out := &TimeSeries{}
	for i := 0; i < len(ts.Times); i += k {
		out.Add(ts.Times[i], ts.Values[i])
	}
	return out
}

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P90  float64
	P95  float64
}

// Summarize computes a Summary. An empty input yields a zero Summary with
// NaN statistics.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Min: nan, Max: nan, P50: nan, P90: nan, P95: nan}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:    len(xs),
		Mean: mean(xs),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  quantileSorted(sorted, 0.50),
		P90:  quantileSorted(sorted, 0.90),
		P95:  quantileSorted(sorted, 0.95),
	}
}

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// FractionBelow returns P(X <= x).
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile (0 <= p <= 1) by linear interpolation.
// Out-of-range p clamps to the extremes; a NaN p or an empty sample set
// yields NaN rather than an index panic.
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	return quantileSorted(c.sorted, p)
}

// Points returns (value, cumulative probability) pairs suitable for
// plotting the CDF curve.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	xs = append([]float64(nil), c.sorted...)
	ps = make([]float64, n)
	for i := range ps {
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// quantileSorted interpolates the p-quantile of an ascending slice.
func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
