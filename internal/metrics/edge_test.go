package metrics

import (
	"math"
	"testing"
)

// Quantile must never panic: NaN p used to reach quantileSorted, where
// int(math.Floor(NaN)) produced a wild negative index.
func TestQuantileEdges(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64 // NaN means "want NaN"
	}{
		{"empty any p", nil, 0.5, math.NaN()},
		{"empty NaN p", nil, math.NaN(), math.NaN()},
		{"singleton mid", []float64{7}, 0.5, 7},
		{"singleton p=0", []float64{7}, 0, 7},
		{"singleton p=1", []float64{7}, 1, 7},
		{"singleton NaN p", []float64{7}, math.NaN(), math.NaN()},
		{"NaN p multi", []float64{1, 2, 3}, math.NaN(), math.NaN()},
		{"p below range clamps", []float64{1, 2, 3}, -0.5, 1},
		{"p above range clamps", []float64{1, 2, 3}, 1.5, 3},
		{"interpolates", []float64{0, 10}, 0.25, 2.5},
		{"exact index", []float64{0, 10, 20}, 0.5, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NewCDF(tc.xs).Quantile(tc.p)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Errorf("Quantile(%v) = %v, want NaN", tc.p, got)
				}
				return
			}
			if got != tc.want {
				t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestDownsampleEdges(t *testing.T) {
	series := func(n int) *TimeSeries {
		ts := &TimeSeries{}
		for i := 0; i < n; i++ {
			ts.Add(float64(i), float64(i)*10)
		}
		return ts
	}
	cases := []struct {
		name      string
		n, k      int
		wantLen   int
		wantFirst float64 // first value, when wantLen > 0
	}{
		{"empty k>1", 0, 3, 0, 0},
		{"empty k<=1", 0, 0, 0, 0},
		{"singleton k>1", 1, 5, 1, 0},
		{"singleton copy", 1, 1, 1, 0},
		{"negative k copies", 4, -2, 4, 0},
		{"k larger than series", 3, 10, 1, 0},
		{"every other", 4, 2, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := series(tc.n)
			out := in.Downsample(tc.k)
			if len(out.Times) != tc.wantLen || len(out.Values) != tc.wantLen {
				t.Fatalf("Downsample(%d) kept %d/%d points, want %d",
					tc.k, len(out.Times), len(out.Values), tc.wantLen)
			}
			if tc.wantLen > 0 && out.Values[0] != tc.wantFirst {
				t.Errorf("first value = %v, want %v", out.Values[0], tc.wantFirst)
			}
			// Downsample returns an independent copy: mutating it must
			// not write through to the source.
			if tc.wantLen > 0 {
				out.Values[0] = -1
				if tc.n > 0 && in.Values[0] == -1 {
					t.Error("Downsample aliases the source series")
				}
			}
		})
	}
}
