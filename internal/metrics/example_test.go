package metrics_test

import (
	"fmt"

	"cocoa/internal/metrics"
)

// ExampleCDF builds the empirical distribution behind the paper's Figure 8.
func ExampleCDF() {
	errorsM := []float64{2, 3, 4, 5, 6, 7, 8, 9, 11, 14}
	cdf := metrics.NewCDF(errorsM)
	fmt.Printf("P(err <= 10 m) = %.0f%%\n", 100*cdf.FractionBelow(10))
	fmt.Printf("P90 = %.1f m\n", cdf.Quantile(0.9))
	// Output:
	// P(err <= 10 m) = 80%
	// P90 = 11.3 m
}
