package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeSeriesBasics(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(1, 3)
	ts.Add(2, 5)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if got := ts.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
	if got := ts.Max(); got != 5 {
		t.Errorf("Max = %v", got)
	}
}

func TestTimeSeriesBackwardsPanics(t *testing.T) {
	var ts TimeSeries
	ts.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ts.Add(4, 1)
}

func TestTimeSeriesEmptyStats(t *testing.T) {
	var ts TimeSeries
	if !math.IsNaN(ts.Mean()) || !math.IsNaN(ts.Max()) || !math.IsNaN(ts.ValueAt(1)) {
		t.Error("empty series stats must be NaN")
	}
}

func TestValueAt(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 10)
	ts.Add(10, 20)
	ts.Add(20, 30)
	tests := []struct{ t, want float64 }{
		{0, 10}, {4, 10}, {6, 20}, {10, 20}, {19, 30}, {100, 30}, {-5, 10},
	}
	for _, tt := range tests {
		if got := ts.ValueAt(tt.t); got != tt.want {
			t.Errorf("ValueAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestDownsample(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(float64(i), float64(i))
	}
	d := ts.Downsample(3)
	if d.Len() != 4 {
		t.Fatalf("downsampled len = %d, want 4", d.Len())
	}
	if d.Times[1] != 3 {
		t.Errorf("Times[1] = %v", d.Times[1])
	}
	same := ts.Downsample(1)
	if same.Len() != ts.Len() {
		t.Error("k=1 must copy")
	}
	same.Values[0] = 999
	if ts.Values[0] == 999 {
		t.Error("Downsample(1) aliases the original")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.P90 != 4.6 { // interpolated
		t.Errorf("P90 = %v, want 4.6", s.P90)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 {
		t.Errorf("single-sample summary = %+v", one)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.FractionBelow(5); got != 0.5 {
		t.Errorf("FractionBelow(5) = %v", got)
	}
	if got := c.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v", got)
	}
	if got := c.FractionBelow(100); got != 1 {
		t.Errorf("FractionBelow(100) = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); got != 5.5 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	xs, ps := c.Points()
	if len(xs) != 10 || ps[9] != 1 || ps[0] != 0.1 {
		t.Errorf("Points = %v %v", xs, ps)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.FractionBelow(1)) || !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF must return NaN")
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	c := NewCDF(in)
	if in[0] != 3 {
		t.Error("NewCDF sorted the caller's slice")
	}
	_ = c
}

// Property: FractionBelow is monotone and Quantile is its rough inverse.
func TestCDFProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		// Monotonicity over a sweep.
		prev := -1.0
		for x := 0.0; x <= 65535; x += 8191 {
			p := c.FractionBelow(x)
			if p < prev {
				return false
			}
			prev = p
		}
		// Quantile within sample range and monotone.
		sort.Float64s(xs)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			q := c.Quantile(p)
			if q < xs[0]-1e-9 || q > xs[len(xs)-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
