// Package viz renders run results as self-contained SVG documents: a
// deployment snapshot (true positions, believed positions, error vectors)
// and Figure 5-style path comparisons. Everything is stdlib string
// building; the output opens in any browser.
package viz

import (
	"fmt"
	"strings"

	"cocoa/internal/cocoa"
	"cocoa/internal/geom"
)

// palette used across renderings.
const (
	colEquipped  = "#1f77b4" // blue squares: robots with localization devices
	colTrue      = "#2ca02c" // green dots: true positions
	colEstimate  = "#d62728" // red crosses: believed positions
	colError     = "#999999" // gray segments: error vectors
	colTruePath  = "#2ca02c"
	colEstPath   = "#d62728"
	colBackdrop  = "#fbfbf8"
	colGridLines = "#e0e0da"
)

// svgDoc accumulates a document with a fixed world-to-pixel transform.
type svgDoc struct {
	b      strings.Builder
	scale  float64
	margin float64
	area   geom.Rect
}

func newDoc(area geom.Rect, pixels float64) *svgDoc {
	d := &svgDoc{margin: 30, area: area}
	d.scale = pixels / area.Width()
	w := pixels + 2*d.margin
	h := area.Height()*d.scale + 2*d.margin
	fmt.Fprintf(&d.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		w, h, w, h)
	fmt.Fprintf(&d.b, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="%s"/>`, w, h, colBackdrop)
	// 50 m grid lines.
	for x := area.Min.X; x <= area.Max.X+1e-9; x += 50 {
		px, _ := d.pt(geom.Vec2{X: x, Y: area.Min.Y})
		fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`,
			px, d.margin, px, h-d.margin, colGridLines)
	}
	for y := area.Min.Y; y <= area.Max.Y+1e-9; y += 50 {
		_, py := d.pt(geom.Vec2{X: area.Min.X, Y: y})
		fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`,
			d.margin, py, w-d.margin, py, colGridLines)
	}
	return d
}

// pt converts world meters to pixel coordinates (SVG y grows downward).
func (d *svgDoc) pt(p geom.Vec2) (x, y float64) {
	x = d.margin + (p.X-d.area.Min.X)*d.scale
	y = d.margin + (d.area.Max.Y-p.Y)*d.scale
	return x, y
}

func (d *svgDoc) line(a, b geom.Vec2, stroke string, width float64) {
	x1, y1 := d.pt(a)
	x2, y2 := d.pt(b)
	fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`,
		x1, y1, x2, y2, stroke, width)
}

func (d *svgDoc) circle(p geom.Vec2, r float64, fill string) {
	x, y := d.pt(p)
	fmt.Fprintf(&d.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`, x, y, r, fill)
}

func (d *svgDoc) square(p geom.Vec2, half float64, fill string) {
	x, y := d.pt(p)
	fmt.Fprintf(&d.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
		x-half, y-half, 2*half, 2*half, fill)
}

func (d *svgDoc) cross(p geom.Vec2, half float64, stroke string) {
	x, y := d.pt(p)
	fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5"/>`,
		x-half, y-half, x+half, y+half, stroke)
	fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5"/>`,
		x-half, y+half, x+half, y-half, stroke)
}

func (d *svgDoc) polyline(pts []geom.Vec2, stroke string) {
	var sb strings.Builder
	for _, p := range pts {
		x, y := d.pt(p)
		fmt.Fprintf(&sb, "%.1f,%.1f ", x, y)
	}
	fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
		strings.TrimSpace(sb.String()), stroke)
}

func (d *svgDoc) text(px, py float64, s string) {
	fmt.Fprintf(&d.b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12">%s</text>`,
		px, py, s)
}

func (d *svgDoc) finish() string {
	d.b.WriteString(`</svg>`)
	return d.b.String()
}

// DeploymentSVG renders a run's final state: equipped robots as blue
// squares, unequipped true positions as green dots, believed positions as
// red crosses, and gray error vectors joining them.
func DeploymentSVG(res *cocoa.Result, pixels float64) (string, error) {
	if len(res.FinalTruePositions) == 0 {
		return "", fmt.Errorf("viz: result carries no final positions")
	}
	d := newDoc(res.Config.Area, pixels)
	for i, truth := range res.FinalTruePositions {
		if res.Equipped[i] {
			d.square(truth, 4, colEquipped)
			continue
		}
		est := res.FinalEstimates[i]
		d.line(truth, est, colError, 1)
		d.circle(truth, 3, colTrue)
		d.cross(est, 4, colEstimate)
	}
	d.text(d.margin, 18, fmt.Sprintf(
		"CoCoA deployment after %.0f s — squares: equipped, dots: true, crosses: believed (mean err %.1f m)",
		res.Times[len(res.Times)-1], res.MeanError()))
	return d.finish(), nil
}

// PathSVG renders a Figure 5-style comparison of a robot's true and
// dead-reckoned paths.
func PathSVG(truePath, estPath []geom.Vec2, area geom.Rect, pixels float64) (string, error) {
	if len(truePath) == 0 || len(truePath) != len(estPath) {
		return "", fmt.Errorf("viz: path lengths %d vs %d", len(truePath), len(estPath))
	}
	d := newDoc(area, pixels)
	d.polyline(truePath, colTruePath)
	d.polyline(estPath, colEstPath)
	d.circle(truePath[0], 4, colTruePath)
	d.cross(estPath[len(estPath)-1], 5, colEstPath)
	d.circle(truePath[len(truePath)-1], 4, colTruePath)
	gap := truePath[len(truePath)-1].Dist(estPath[len(estPath)-1])
	d.text(d.margin, 18, fmt.Sprintf(
		"odometry drift — green: real path, red: dead-reckoned (final gap %.1f m)", gap))
	return d.finish(), nil
}
