package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"cocoa/internal/cocoa"
	"cocoa/internal/geom"
)

func smallRun(t *testing.T) *cocoa.Result {
	t.Helper()
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.BeaconPeriodS = 30
	cfg.DurationS = 90
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000
	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestDeploymentSVG(t *testing.T) {
	res := smallRun(t)
	svg, err := DeploymentSVG(res, 600)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	// 4 equipped squares (plus the backdrop rect).
	if got := strings.Count(svg, "<rect"); got != 4+1 {
		t.Errorf("rect count = %d, want 5", got)
	}
	// 4 unequipped robots: one green circle each.
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("circle count = %d, want 4", got)
	}
	if !strings.Contains(svg, "mean err") {
		t.Error("caption missing")
	}
}

func TestDeploymentSVGEmptyResult(t *testing.T) {
	if _, err := DeploymentSVG(&cocoa.Result{}, 600); err == nil {
		t.Error("empty result accepted")
	}
}

func TestPathSVG(t *testing.T) {
	truePath := []geom.Vec2{{X: 10, Y: 10}, {X: 50, Y: 60}, {X: 120, Y: 80}}
	estPath := []geom.Vec2{{X: 10, Y: 10}, {X: 52, Y: 55}, {X: 110, Y: 95}}
	svg, err := PathSVG(truePath, estPath, geom.Square(200), 600)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
	if !strings.Contains(svg, "final gap") {
		t.Error("caption missing")
	}
}

func TestPathSVGValidation(t *testing.T) {
	if _, err := PathSVG(nil, nil, geom.Square(200), 600); err == nil {
		t.Error("empty paths accepted")
	}
	if _, err := PathSVG([]geom.Vec2{{}}, []geom.Vec2{{}, {}}, geom.Square(200), 600); err == nil {
		t.Error("mismatched paths accepted")
	}
}

// World-to-pixel mapping: the area corners land inside the canvas and the
// Y axis is flipped (SVG grows downward).
func TestCoordinateTransform(t *testing.T) {
	d := newDoc(geom.Square(200), 600)
	x0, y0 := d.pt(geom.Vec2{X: 0, Y: 0})
	x1, y1 := d.pt(geom.Vec2{X: 200, Y: 200})
	if x0 >= x1 {
		t.Errorf("x axis inverted: %v >= %v", x0, x1)
	}
	if y0 <= y1 {
		t.Errorf("y axis not flipped: %v <= %v", y0, y1)
	}
	if x0 != d.margin || y1 != d.margin {
		t.Errorf("margins wrong: %v %v", x0, y1)
	}
}
