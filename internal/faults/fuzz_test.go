package faults

import (
	"math"
	"testing"

	"cocoa/internal/sim"
)

// FuzzGilbertElliott drives the loss chain with arbitrary (clamped)
// parameters and checks the invariants every parameterization must hold:
// observed loss and bad-state occupancy stay in [0, 1], the analytic
// steady state stays in [0, 1], and the drop sequence is a pure function
// of the seed.
func FuzzGilbertElliott(f *testing.F) {
	f.Add(int64(1), 0.1, 0.25, 0.0, 1.0, uint(500))
	f.Add(int64(42), 0.05, 0.0, 0.0, 1.0, uint(100))
	f.Add(int64(-7), 1.0, 1.0, 1.0, 1.0, uint(64))
	f.Add(int64(0), 0.0, 0.0, 0.0, 0.0, uint(10))
	f.Add(int64(99), 0.5, 0.01, 0.3, 0.9, uint(2000))
	f.Fuzz(func(t *testing.T, seed int64, pGB, pBG, lossG, lossB float64, n uint) {
		clamp := func(p float64) float64 {
			if !(p >= 0) { // also catches NaN
				return 0
			}
			if p > 1 {
				return 1
			}
			return p
		}
		cfg := GEConfig{
			PGoodToBad: clamp(pGB),
			PBadToGood: clamp(pBG),
			LossGood:   clamp(lossG),
			LossBad:    clamp(lossB),
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("clamped config invalid: %v", err)
		}
		if ss := cfg.SteadyStateLoss(); ss < 0 || ss > 1 || math.IsNaN(ss) {
			t.Fatalf("SteadyStateLoss %v out of [0,1] for %+v", ss, cfg)
		}
		if occ := cfg.BadOccupancy(); occ < 0 || occ > 1 || math.IsNaN(occ) {
			t.Fatalf("BadOccupancy %v out of [0,1] for %+v", occ, cfg)
		}

		steps := int(n%2048) + 1
		run := func() []bool {
			ge := NewGilbertElliott(cfg, sim.NewRNG(seed).Stream("fuzz-ge"))
			out := make([]bool, steps)
			for i := range out {
				out[i] = ge.Drop()
				if l := ge.ObservedLoss(); l < 0 || l > 1 {
					t.Fatalf("observed loss %v out of [0,1]", l)
				}
				if o := ge.ObservedBadOccupancy(); o < 0 || o > 1 {
					t.Fatalf("occupancy %v out of [0,1]", o)
				}
			}
			if ge.Frames() != steps {
				t.Fatalf("frames %d, want %d", ge.Frames(), steps)
			}
			if ge.Dropped() > steps {
				t.Fatalf("dropped %d exceeds frames %d", ge.Dropped(), steps)
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same seed diverged at frame %d", i)
			}
		}
	})
}
