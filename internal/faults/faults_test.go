package faults

import (
	"math"
	"testing"

	"cocoa/internal/sim"
)

func TestBurstyMatchesTargetLossRate(t *testing.T) {
	for _, rate := range []float64{0.1, 0.25, 0.5} {
		cfg := Bursty(rate, 4)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Bursty(%v) invalid: %v", rate, err)
		}
		if got := cfg.SteadyStateLoss(); math.Abs(got-rate) > 1e-12 {
			t.Errorf("Bursty(%v).SteadyStateLoss() = %v", rate, got)
		}
		ge := NewGilbertElliott(cfg, sim.NewRNG(7).Stream("ge"))
		const n = 200000
		for i := 0; i < n; i++ {
			ge.Drop()
		}
		if got := ge.ObservedLoss(); math.Abs(got-rate) > 0.02 {
			t.Errorf("empirical loss %v, want ~%v", got, rate)
		}
		if occ := ge.ObservedBadOccupancy(); occ < 0 || occ > 1 {
			t.Errorf("occupancy %v out of [0,1]", occ)
		}
	}
}

func TestBurstyZeroRateDisabled(t *testing.T) {
	cfg := Bursty(0, 4)
	if cfg.Enabled() {
		t.Error("Bursty(0) should be disabled")
	}
	if (Config{GE: cfg}).Enabled() {
		t.Error("Config with zero-rate GE should be disabled")
	}
}

func TestGilbertElliottSeedDeterministic(t *testing.T) {
	cfg := Bursty(0.3, 4)
	run := func(seed int64) []bool {
		ge := NewGilbertElliott(cfg, sim.NewRNG(seed).Stream("ge"))
		out := make([]bool, 500)
		for i := range out {
			out[i] = ge.Drop()
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at frame %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical drop sequences")
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// With LossBad = 1 and LossGood = 0, every drop run is one bad burst;
	// the mean burst length must track 1/PBadToGood.
	cfg := Bursty(0.3, 6)
	ge := NewGilbertElliott(cfg, sim.NewRNG(11).Stream("ge"))
	bursts, cur := []int{}, 0
	for i := 0; i < 100000; i++ {
		if ge.Drop() {
			cur++
		} else if cur > 0 {
			bursts = append(bursts, cur)
			cur = 0
		}
	}
	if len(bursts) == 0 {
		t.Fatal("no bursts observed")
	}
	var sum int
	for _, b := range bursts {
		sum += b
	}
	mean := float64(sum) / float64(len(bursts))
	if mean < 4.5 || mean > 7.5 {
		t.Errorf("mean burst length %v, want ~6", mean)
	}
}

func TestLinkDropsAndSpikes(t *testing.T) {
	const beaconKind = 1
	cfg := Config{
		GE:            Bursty(0.5, 4),
		OutlierProb:   1,
		OutlierMeanDB: 10,
	}
	root := sim.NewRNG(3)
	l := NewLink(cfg, root.Stream("loss"), root.Stream("outlier"), beaconKind)
	delivered, spiked := 0, 0
	for i := 0; i < 2000; i++ {
		rssi, drop := l.Incoming(beaconKind, -70)
		if drop {
			continue
		}
		delivered++
		if rssi != -70 {
			spiked++
		}
	}
	if l.Drops() == 0 || delivered == 0 {
		t.Fatalf("drops=%d delivered=%d, want both positive", l.Drops(), delivered)
	}
	// OutlierProb 1: every surviving beacon is spiked.
	if spiked != delivered || l.Outliers() != delivered {
		t.Errorf("spiked %d of %d delivered (counter %d)", spiked, delivered, l.Outliers())
	}
	// Non-beacon kinds are never spiked, still subject to loss.
	rssi, drop := l.Incoming(beaconKind+1, -70)
	for drop {
		rssi, drop = l.Incoming(beaconKind+1, -70)
	}
	if rssi != -70 {
		t.Errorf("non-beacon frame RSSI perturbed to %v", rssi)
	}
}

func TestLinkLossOnlyNoOutlierDraws(t *testing.T) {
	cfg := Config{GE: Bursty(0.2, 4)}
	root := sim.NewRNG(5)
	l := NewLink(cfg, root.Stream("loss"), root.Stream("outlier"), 0)
	for i := 0; i < 100; i++ {
		if rssi, _ := l.Incoming(1, -60); rssi != -60 {
			t.Fatalf("RSSI perturbed with outliers disabled: %v", rssi)
		}
	}
	if l.Outliers() != 0 {
		t.Errorf("outlier counter %d with outliers disabled", l.Outliers())
	}
}

func TestCrashSchedule(t *testing.T) {
	cfg := Config{CrashFraction: 0.2, CrashMeanDownS: 120}
	plan := CrashSchedule(cfg, 50, 0, 1800, sim.NewRNG(9).Stream("crash"))
	if len(plan) != 10 {
		t.Fatalf("got %d outages, want 10", len(plan))
	}
	seen := map[int]bool{}
	for _, o := range plan {
		if o.Robot == 0 {
			t.Error("Sync robot scheduled to crash")
		}
		if o.Robot < 0 || o.Robot >= 50 {
			t.Errorf("robot %d out of range", o.Robot)
		}
		if seen[o.Robot] {
			t.Errorf("robot %d crashes twice", o.Robot)
		}
		seen[o.Robot] = true
		if o.StartS < 0.1*1800 || o.StartS > 0.9*1800 {
			t.Errorf("crash at %v outside the middle 80%%", o.StartS)
		}
		if o.EndS <= o.StartS {
			t.Errorf("outage [%v, %v) empty", o.StartS, o.EndS)
		}
	}

	// Deterministic: same stream, same plan.
	again := CrashSchedule(cfg, 50, 0, 1800, sim.NewRNG(9).Stream("crash"))
	for i := range plan {
		if plan[i] != again[i] {
			t.Fatalf("plan not deterministic at %d: %+v vs %+v", i, plan[i], again[i])
		}
	}
}

func TestCrashSchedulePermanentAndEmpty(t *testing.T) {
	perm := CrashSchedule(Config{CrashFraction: 0.5}, 10, 0, 600, sim.NewRNG(1).Stream("crash"))
	if len(perm) != 5 {
		t.Fatalf("got %d outages, want 5", len(perm))
	}
	for _, o := range perm {
		if !math.IsInf(o.EndS, 1) {
			t.Errorf("zero CrashMeanDownS should be permanent, got end %v", o.EndS)
		}
	}
	if got := CrashSchedule(Config{}, 10, 0, 600, sim.NewRNG(1).Stream("crash")); got != nil {
		t.Errorf("zero fraction produced %d outages", len(got))
	}
	if got := CrashSchedule(Config{CrashFraction: 1}, 1, 0, 600, sim.NewRNG(1).Stream("crash")); got != nil {
		t.Errorf("single-robot team produced %d outages", len(got))
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		GE:            Bursty(0.25, 4),
		OutlierProb:   0.1,
		CrashFraction: 0.2,
		SkewMaxS:      1.5,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{OutlierProb: -0.1},
		{OutlierProb: 1.5},
		{OutlierMeanDB: -1, OutlierProb: 0.5},
		{CrashFraction: -0.2},
		{CrashFraction: 2},
		{CrashMeanDownS: -5},
		{SkewMaxS: -1},
		{GE: GEConfig{PGoodToBad: 1.2}},
		{GE: GEConfig{LossBad: -0.5}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if (Config{}).LinkEnabled() {
		t.Error("zero config reports link enabled")
	}
	if !(Config{SkewMaxS: 1}).Enabled() {
		t.Error("skew-only config reports disabled")
	}
	if (Config{SkewMaxS: 1}).LinkEnabled() {
		t.Error("skew-only config reports link enabled")
	}
}
