package faults

import (
	"testing"

	"cocoa/internal/checkpoint"
	"cocoa/internal/sim"
)

// HashState covers both link shapes (with and without a Gilbert–Elliott
// chain) and must move with every frame the chain consumes.
func TestLinkHashState(t *testing.T) {
	sum := func(l *Link) uint64 {
		h := checkpoint.NewHasher()
		l.HashState(h)
		return h.Sum()
	}
	mk := func(seed int64) *Link {
		root := sim.NewRNG(seed)
		return NewLink(Config{GE: Bursty(0.2, 4)}, root.Stream("loss"), root.Stream("outlier"), 1)
	}
	a, b := mk(1), mk(1)
	if sum(a) != sum(b) {
		t.Fatal("identical fresh links hash differently")
	}
	for i := 0; i < 50; i++ {
		a.Incoming(1, -70)
	}
	if sum(a) == sum(b) {
		t.Fatal("frame traffic did not change the digest")
	}
	for i := 0; i < 50; i++ {
		b.Incoming(1, -70)
	}
	if sum(a) != sum(b) {
		t.Fatal("same traffic produced a different digest")
	}
	// A chain-less link hashes its counters only.
	root := sim.NewRNG(2)
	plain := NewLink(Config{OutlierProb: 0.5}, root.Stream("loss"), root.Stream("outlier"), 1)
	before := sum(plain)
	for i := 0; i < 50; i++ {
		plain.Incoming(1, -70)
	}
	if sum(plain) == before {
		t.Fatal("outlier counting did not change the chain-less digest")
	}
}
