package faults

import (
	"fmt"

	"cocoa/internal/sim"
)

// GEConfig parameterizes a Gilbert–Elliott two-state loss channel: a
// Markov chain alternating between a good and a bad state, with a
// per-frame drop probability in each. The chain advances once per
// delivered frame, so burst lengths are geometric in frames — the
// classic model for the correlated losses real multipath channels show.
type GEConfig struct {
	// PGoodToBad is the per-frame probability of entering the bad state.
	PGoodToBad float64
	// PBadToGood is the per-frame probability of leaving the bad state;
	// its inverse is the mean burst length in frames.
	PBadToGood float64
	// LossGood is the frame-drop probability while in the good state.
	LossGood float64
	// LossBad is the frame-drop probability while in the bad state.
	LossBad float64
}

// DefaultBurstFrames is the mean bad-burst length Bursty uses when the
// caller passes a non-positive burst length.
const DefaultBurstFrames = 4.0

// Bursty derives the standard sweep parameterization from a target
// steady-state loss rate: the bad state always drops (LossBad = 1), the
// good state never does, the mean burst lasts meanBurstFrames frames, and
// PGoodToBad is solved so the chain's stationary bad-state occupancy —
// hence the long-run loss fraction — equals lossRate.
func Bursty(lossRate, meanBurstFrames float64) GEConfig {
	if lossRate <= 0 {
		return GEConfig{}
	}
	if lossRate >= 1 {
		lossRate = 0.99
	}
	if meanBurstFrames <= 1 {
		meanBurstFrames = DefaultBurstFrames
	}
	pBG := 1 / meanBurstFrames
	return GEConfig{
		PGoodToBad: lossRate * pBG / (1 - lossRate),
		PBadToGood: pBG,
		LossGood:   0,
		LossBad:    1,
	}
}

// Enabled reports whether the channel can ever drop a frame.
func (c GEConfig) Enabled() bool {
	return c.LossGood > 0 || (c.LossBad > 0 && c.PGoodToBad > 0)
}

// Validate reports whether the parameters are probabilities.
func (c GEConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", c.PGoodToBad},
		{"PBadToGood", c.PBadToGood},
		{"LossGood", c.LossGood},
		{"LossBad", c.LossBad},
	} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("faults: GE %s %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// BadOccupancy returns the chain's stationary probability of the bad
// state. A chain that can never leave the good state reports zero.
func (c GEConfig) BadOccupancy() float64 {
	denom := c.PGoodToBad + c.PBadToGood
	if denom <= 0 {
		return 0
	}
	return c.PGoodToBad / denom
}

// SteadyStateLoss returns the long-run frame-loss fraction the chain
// converges to.
func (c GEConfig) SteadyStateLoss() float64 {
	pi := c.BadOccupancy()
	return (1-pi)*c.LossGood + pi*c.LossBad
}

// GilbertElliott is one running loss process. Each robot's receive path
// owns its own instance over a dedicated RNG stream.
type GilbertElliott struct {
	cfg GEConfig
	rng *sim.RNG
	bad bool

	frames    int
	badFrames int
	dropped   int
}

// NewGilbertElliott starts the process in the good state.
func NewGilbertElliott(cfg GEConfig, rng *sim.RNG) *GilbertElliott {
	return &GilbertElliott{cfg: cfg, rng: rng}
}

// Drop advances the chain one frame and reports whether that frame is
// lost. The state transition is evaluated before the loss draw, so a
// frame arriving right as the channel degrades is already at risk.
func (g *GilbertElliott) Drop() bool {
	if g.bad {
		if g.rng.Bool(g.cfg.PBadToGood) {
			g.bad = false
		}
	} else if g.rng.Bool(g.cfg.PGoodToBad) {
		g.bad = true
	}
	g.frames++
	p := g.cfg.LossGood
	if g.bad {
		g.badFrames++
		p = g.cfg.LossBad
	}
	if g.rng.Bool(p) {
		g.dropped++
		return true
	}
	return false
}

// Frames returns the number of frames the process has judged.
func (g *GilbertElliott) Frames() int { return g.frames }

// Dropped returns the number of frames lost so far.
func (g *GilbertElliott) Dropped() int { return g.dropped }

// ObservedBadOccupancy returns the fraction of judged frames that met the
// bad state — an empirical estimate of BadOccupancy, always in [0, 1].
func (g *GilbertElliott) ObservedBadOccupancy() float64 {
	if g.frames == 0 {
		return 0
	}
	return float64(g.badFrames) / float64(g.frames)
}

// ObservedLoss returns the fraction of judged frames dropped so far,
// always in [0, 1].
func (g *GilbertElliott) ObservedLoss() float64 {
	if g.frames == 0 {
		return 0
	}
	return float64(g.dropped) / float64(g.frames)
}
