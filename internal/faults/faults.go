// Package faults is the deterministic fault-injection layer for the CoCoA
// simulation: it models the unreliable regimes the paper's evaluation
// leaves out — bursty link loss (a Gilbert–Elliott two-state channel on
// every robot's receive path), robot crash/recovery outages, RSSI outlier
// spikes ahead of the Bayesian update, and per-robot clock skew on the
// beacon-window schedule.
//
// Every fault source draws from its own named sim.RNG stream, so a faulty
// run is exactly as bit-reproducible as a clean one at any parallelism.
// The zero Config disables every fault: no RNG stream is consumed and no
// hook is installed, which keeps fault-free runs byte-identical to builds
// without this package wired in.
package faults

import (
	"cocoa/internal/checkpoint"
	"fmt"
	"math"
	"sort"

	"cocoa/internal/sim"
	"cocoa/internal/telemetry"
)

// Telemetry instruments: injected-fault activity by fault kind. The
// network layer separately attributes fault drops to frame kinds; these
// count what each fault *source* did.
var (
	telLossDrops = telemetry.Default.Counter("faults.drops.loss")
	telOutliers  = telemetry.Default.Counter("faults.outliers")
)

// Config enables and parameterizes each fault source. The zero value
// injects nothing.
type Config struct {
	// GE is the bursty frame-loss process applied independently to each
	// robot's incoming frames (beacons, MRMM floods, SYNC, unicast alike:
	// everything crosses the same NIC delivery path).
	GE GEConfig

	// OutlierProb is the per-beacon probability that the reported RSSI is
	// perturbed by a spike before the Bayesian update sees it.
	OutlierProb float64
	// OutlierMeanDB is the mean spike magnitude in dB (exponentially
	// distributed, random sign). Zero selects DefaultOutlierMeanDB.
	OutlierMeanDB float64

	// CrashFraction of the team (rounded, Sync robot excluded) crashes
	// once mid-run: radio powered off, no beacons, no forwarding, no
	// energy draw — while odometry keeps drifting.
	CrashFraction float64
	// CrashMeanDownS is the mean outage duration in seconds (exponentially
	// distributed, floored at one second). Zero means crashed robots never
	// recover.
	CrashMeanDownS float64

	// SkewMaxS bootstraps each robot (except the Sync robot) with a clock
	// offset drawn uniformly from [-SkewMaxS, +SkewMaxS], applied to its
	// beacon-window timers until a SYNC message resynchronizes it.
	SkewMaxS float64
}

// DefaultOutlierMeanDB is the spike magnitude used when Config.OutlierProb
// is set but OutlierMeanDB is left zero.
const DefaultOutlierMeanDB = 12.0

// Enabled reports whether any fault source is configured.
func (c Config) Enabled() bool {
	return c.GE.Enabled() || c.OutlierProb > 0 || c.CrashFraction > 0 || c.SkewMaxS > 0
}

// LinkEnabled reports whether the per-NIC receive-path filter (loss or
// RSSI outliers) is needed.
func (c Config) LinkEnabled() bool {
	return c.GE.Enabled() || c.OutlierProb > 0
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.GE.Validate(); err != nil {
		return err
	}
	switch {
	case c.OutlierProb < 0 || c.OutlierProb > 1:
		return fmt.Errorf("faults: OutlierProb %v out of [0,1]", c.OutlierProb)
	case c.OutlierMeanDB < 0:
		return fmt.Errorf("faults: negative OutlierMeanDB %v", c.OutlierMeanDB)
	case c.CrashFraction < 0 || c.CrashFraction > 1:
		return fmt.Errorf("faults: CrashFraction %v out of [0,1]", c.CrashFraction)
	case c.CrashMeanDownS < 0:
		return fmt.Errorf("faults: negative CrashMeanDownS %v", c.CrashMeanDownS)
	case c.SkewMaxS < 0:
		return fmt.Errorf("faults: negative SkewMaxS %v", c.SkewMaxS)
	}
	return nil
}

// outlierMean returns the effective spike magnitude.
func (c Config) outlierMean() float64 {
	if c.OutlierMeanDB > 0 {
		return c.OutlierMeanDB
	}
	return DefaultOutlierMeanDB
}

// Link filters one robot's incoming frames: the Gilbert–Elliott process
// decides frame drops, and surviving frames of the configured kind may get
// an RSSI outlier spike. It satisfies the network layer's fault-filter
// hook without importing it.
type Link struct {
	ge          *GilbertElliott // nil when loss is disabled
	outlierProb float64
	outlierMean float64
	outlierKind int // frame kind eligible for spikes; 0 means all kinds
	rng         *sim.RNG

	drops    int
	outliers int
}

// NewLink builds the receive-path filter for one robot. lossRng drives the
// Gilbert–Elliott chain and outlierRng the spikes; they must be dedicated
// streams (typically StreamN-derived per robot). outlierKind restricts
// spikes to one frame kind (the localization beacon); zero spikes every
// kind.
func NewLink(cfg Config, lossRng, outlierRng *sim.RNG, outlierKind int) *Link {
	l := &Link{
		outlierProb: cfg.OutlierProb,
		outlierMean: cfg.outlierMean(),
		outlierKind: outlierKind,
		rng:         outlierRng,
	}
	if cfg.GE.Enabled() {
		l.ge = NewGilbertElliott(cfg.GE, lossRng)
	}
	return l
}

// Incoming decides the fate of one delivered frame: the returned RSSI may
// carry an outlier spike, and drop reports whether the frame is lost to
// the bursty channel.
func (l *Link) Incoming(kind int, rssiDBm float64) (float64, bool) {
	if l.ge != nil && l.ge.Drop() {
		l.drops++
		telLossDrops.Inc()
		return rssiDBm, true
	}
	if l.outlierProb > 0 && (l.outlierKind == 0 || kind == l.outlierKind) {
		if l.rng.Bool(l.outlierProb) {
			spike := l.rng.Exp(l.outlierMean)
			if l.rng.Bool(0.5) {
				spike = -spike
			}
			l.outliers++
			telOutliers.Inc()
			return rssiDBm + spike, false
		}
	}
	return rssiDBm, false
}

// Drops returns the number of frames the bursty channel ate.
func (l *Link) Drops() int { return l.drops }

// Outliers returns the number of RSSI spikes injected.
func (l *Link) Outliers() int { return l.outliers }

// Outage is one robot's crash interval: the robot is down in
// [StartS, EndS). EndS past the run duration means it never recovers.
type Outage struct {
	Robot  int
	StartS float64
	EndS   float64
}

// CrashSchedule draws the crash plan: round(CrashFraction * n) robots,
// never spareID (the Sync robot — the schedule must survive), each crash
// once at a uniform instant in the middle 80% of the run for an
// exponentially distributed outage of mean CrashMeanDownS seconds
// (permanent when zero). The plan is sorted by robot ID so event
// scheduling order is stable.
func CrashSchedule(c Config, n, spareID int, durationS float64, rng *sim.RNG) []Outage {
	k := int(c.CrashFraction*float64(n) + 0.5)
	if k <= 0 || n <= 1 || durationS <= 0 {
		return nil
	}
	candidates := make([]int, 0, n-1)
	for id := 0; id < n; id++ {
		if id != spareID {
			candidates = append(candidates, id)
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	perm := rng.Perm(len(candidates))
	chosen := make([]int, k)
	for i := 0; i < k; i++ {
		chosen[i] = candidates[perm[i]]
	}
	sort.Ints(chosen)
	out := make([]Outage, k)
	for i, id := range chosen {
		start := rng.Uniform(0.1*durationS, 0.9*durationS)
		end := math.Inf(1)
		if c.CrashMeanDownS > 0 {
			down := rng.Exp(c.CrashMeanDownS)
			if down < 1 {
				down = 1
			}
			end = start + down
		}
		out[i] = Outage{Robot: id, StartS: start, EndS: end}
	}
	return out
}

// HashState folds the link filter's state — the Gilbert–Elliott chain
// position and the drop/outlier counters — into h, for checkpoint
// digests. The driving RNG streams are digested through the run's stream
// tree.
func (l *Link) HashState(h *checkpoint.Hasher) {
	h.Bool(l.ge != nil)
	if l.ge != nil {
		h.Bool(l.ge.bad)
		h.Int(l.ge.frames)
		h.Int(l.ge.badFrames)
		h.Int(l.ge.dropped)
	}
	h.Int(l.drops)
	h.Int(l.outliers)
}
