package ekf

import (
	"math"
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
)

func newFilter(t *testing.T) *Filter {
	t.Helper()
	f, err := New(DefaultConfig(geom.Square(200)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(geom.Square(200)).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Area: geom.Rect{}, InitStdM: 1, MinRangeStdM: 1},
		{Area: geom.Square(10), InitStdM: 0, MinRangeStdM: 1},
		{Area: geom.Square(10), InitStdM: 1, MinRangeStdM: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestResetState(t *testing.T) {
	f := newFilter(t)
	if f.Ready() {
		t.Error("Ready before beacons")
	}
	if got := f.Estimate(); got != geom.Square(200).Center() {
		t.Errorf("reset estimate = %v, want area center", got)
	}
	if f.Uncertainty() <= 100 {
		t.Errorf("reset uncertainty = %v, want wide", f.Uncertainty())
	}
}

func TestTrilateration(t *testing.T) {
	f := newFilter(t)
	truth := geom.Vec2{X: 70, Y: 120}
	anchors := []geom.Vec2{
		{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60},
		{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60}, // second round refines
	}
	for _, a := range anchors {
		f.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 2})
	}
	if !f.Ready() {
		t.Fatal("not Ready after 6 beacons")
	}
	if err := f.Estimate().Dist(truth); err > 8 {
		t.Errorf("EKF trilateration error = %.2f m, want < 8", err)
	}
	if f.Uncertainty() > 50 {
		t.Errorf("uncertainty did not shrink: %v", f.Uncertainty())
	}
}

func TestUncertaintyShrinksWithBeacons(t *testing.T) {
	f := newFilter(t)
	truth := geom.Vec2{X: 100, Y: 100}
	anchors := []geom.Vec2{{X: 60, Y: 80}, {X: 140, Y: 90}, {X: 95, Y: 150}}
	var prev float64 = math.Inf(1)
	for round := 0; round < 3; round++ {
		for _, a := range anchors {
			f.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 3})
		}
		if cur := f.Uncertainty(); cur > prev+1e-9 {
			t.Errorf("round %d: uncertainty grew %v -> %v", round, prev, cur)
		} else {
			prev = cur
		}
	}
}

func TestEstimateStaysInArea(t *testing.T) {
	f := newFilter(t)
	area := geom.Square(200)
	// Contradictory long ranges try to push the state outside.
	for i := 0; i < 20; i++ {
		f.ApplyBeacon(geom.Vec2{X: 5, Y: 5}, caltable.GaussianPDF{Mu: 250, Sigma: 2})
	}
	if est := f.Estimate(); !area.Contains(est) {
		t.Errorf("estimate escaped the arena: %v", est)
	}
}

func TestNonMomentPDFIgnored(t *testing.T) {
	f := newFilter(t)
	f.ApplyBeacon(geom.Vec2{X: 10, Y: 10}, densityOnly{})
	if f.BeaconCount() != 0 {
		t.Error("moment-less PDF was counted")
	}
}

// densityOnly implements bayes.DistanceDensity without moments.
type densityOnly struct{}

func (densityOnly) Density(float64) float64 { return 1 }

func TestAnchorCoincidence(t *testing.T) {
	f := newFilter(t)
	// Beacons at the exact current state must not produce NaNs.
	center := geom.Square(200).Center()
	for i := 0; i < 5; i++ {
		f.ApplyBeacon(center, caltable.GaussianPDF{Mu: 1, Sigma: 1})
	}
	est := f.Estimate()
	if math.IsNaN(est.X) || math.IsNaN(est.Y) {
		t.Fatal("NaN estimate from coincident anchor")
	}
}

func TestResetClearsBootstrap(t *testing.T) {
	f := newFilter(t)
	truth := geom.Vec2{X: 70, Y: 120}
	for _, a := range []geom.Vec2{{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60}} {
		f.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 2})
	}
	f.Reset()
	if f.BeaconCount() != 0 || f.Ready() {
		t.Error("Reset did not clear beacon state")
	}
	if got := f.Estimate(); got != geom.Square(200).Center() {
		t.Errorf("post-reset estimate = %v", got)
	}
}

func TestMinRangeStdFloor(t *testing.T) {
	cfg := DefaultConfig(geom.Square(200))
	cfg.MinRangeStdM = 5
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.Vec2{X: 100, Y: 100}
	anchors := []geom.Vec2{{X: 60, Y: 80}, {X: 140, Y: 90}, {X: 95, Y: 150}}
	// Absurdly overconfident PDFs (sigma 0.01): the floor keeps the
	// covariance from collapsing on the first round.
	for round := 0; round < 2; round++ {
		for _, a := range anchors {
			f.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 0.01})
		}
	}
	if f.Uncertainty() < 0.5 {
		t.Errorf("covariance collapsed below the floor: %v", f.Uncertainty())
	}
}
