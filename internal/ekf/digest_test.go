package ekf

import (
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/checkpoint"
	"cocoa/internal/geom"
)

// HashState must distinguish any change to the filter's mean, covariance,
// or bootstrap buffer, and be deterministic on equal states.
func TestHashState(t *testing.T) {
	sum := func(f *Filter) uint64 {
		h := checkpoint.NewHasher()
		f.HashState(h)
		return h.Sum()
	}
	mk := func() *Filter {
		f, err := New(DefaultConfig(geom.Square(200)))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := mk(), mk()
	if sum(a) != sum(b) {
		t.Fatal("identical fresh filters hash differently")
	}
	a.ApplyBeacon(geom.Vec2{X: 60, Y: 60}, caltable.GaussianPDF{Mu: 30, Sigma: 2})
	if sum(a) == sum(b) {
		t.Fatal("beacon update did not change the digest")
	}
	b.ApplyBeacon(geom.Vec2{X: 60, Y: 60}, caltable.GaussianPDF{Mu: 30, Sigma: 2})
	if sum(a) != sum(b) {
		t.Fatal("same update sequence produced a different digest")
	}
}
