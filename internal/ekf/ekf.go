// Package ekf implements an extended Kalman filter position estimator as a
// third RF localization backend for CoCoA. The paper's related work covers
// Kalman-filter multi-robot localization (Roumeliotis & Bekey's Collective
// Localization) and stresses that CoCoA hosts any technique; this backend
// consumes the same calibrated RSSI distance PDFs, reading each beacon as
// a range measurement z = E[d | RSSI] with variance Var[d | RSSI] and
// linearizing the range observation model around the current estimate.
//
// Kalman filtering assumes a unimodal (Gaussian) posterior, which is
// exactly where it differs from the paper's grid approach: a single
// beacon's ring-shaped likelihood violates the assumption, so the EKF
// needs a sane initialization (here: the first beacon round's centroid)
// and more beacons to converge. The ablation in internal/scenario
// quantifies the difference.
package ekf

import (
	"cocoa/internal/checkpoint"
	"fmt"
	"math"

	"cocoa/internal/bayes"
	"cocoa/internal/geom"
)

// moments is the parametric view of a distance PDF the EKF needs. The
// calibration table's PDFs satisfy it.
type moments interface {
	Mean() float64
	Std() float64
}

// Config parameterizes the filter.
type Config struct {
	// Area bounds estimates; the filter clamps to it.
	Area geom.Rect
	// InitStdM is the prior standard deviation after Reset, spanning the
	// deployment area.
	InitStdM float64
	// MinRangeStdM floors the per-measurement noise so a sharply
	// calibrated PDF cannot collapse the covariance in one update.
	MinRangeStdM float64
}

// DefaultConfig covers the paper's 200 m x 200 m arena.
func DefaultConfig(area geom.Rect) Config {
	return Config{
		Area:         area,
		InitStdM:     area.Diagonal() / 2,
		MinRangeStdM: 1.0,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Area.Width() <= 0 || c.Area.Height() <= 0:
		return fmt.Errorf("ekf: degenerate area")
	case c.InitStdM <= 0:
		return fmt.Errorf("ekf: InitStdM must be positive")
	case c.MinRangeStdM <= 0:
		return fmt.Errorf("ekf: MinRangeStdM must be positive")
	}
	return nil
}

// Filter is a 2-state (x, y) extended Kalman filter over range
// measurements to known anchors. It satisfies the cocoa.Localizer
// contract.
type Filter struct {
	cfg Config

	x, y float64
	// Covariance matrix [[pxx, pxy], [pxy, pyy]].
	pxx, pxy, pyy float64
	beacons       int

	// First-round bootstrap: an EKF cannot start from a uniform belief,
	// so the first few anchors are buffered and the state initializes at
	// their centroid with a wide covariance.
	bootAnchors []geom.Vec2
	booted      bool
}

// New builds a filter in its reset (uninitialized) state.
func New(cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Filter{cfg: cfg}
	f.Reset()
	return f, nil
}

// Reset returns the filter to the uninformed prior.
func (f *Filter) Reset() {
	c := f.cfg.Area.Center()
	f.x, f.y = c.X, c.Y
	v := f.cfg.InitStdM * f.cfg.InitStdM
	f.pxx, f.pyy, f.pxy = v, v, 0
	f.beacons = 0
	f.bootAnchors = f.bootAnchors[:0]
	f.booted = false
}

// BeaconCount returns the measurements applied since the last Reset.
func (f *Filter) BeaconCount() int { return f.beacons }

// Ready reports whether the paper's >=3 beacon rule is met.
func (f *Filter) Ready() bool { return f.beacons >= bayes.MinBeacons }

// ApplyBeacon folds one beacon into the state. The pdf must come from the
// calibration table (anything exposing Mean/Std works); PDFs without
// moments are ignored.
func (f *Filter) ApplyBeacon(beaconPos geom.Vec2, pdf bayes.DistanceDensity) {
	m, ok := pdf.(moments)
	if !ok {
		return
	}
	z := m.Mean()
	r := m.Std()
	if r < f.cfg.MinRangeStdM {
		r = f.cfg.MinRangeStdM
	}

	if !f.booted {
		f.bootAnchors = append(f.bootAnchors, beaconPos)
		f.beacons++
		if len(f.bootAnchors) >= bayes.MinBeacons {
			f.bootstrap()
		}
		return
	}
	f.update(beaconPos, z, r)
	f.beacons++
}

// bootstrap initializes the state at the buffered anchors' centroid with a
// covariance wide enough to cover them, then folds the buffered ranges in
// as regular updates. Without this, the linearization point of the first
// update would be the arena center, which is often on the wrong side of
// the anchor.
func (f *Filter) bootstrap() {
	var cx, cy float64
	for _, a := range f.bootAnchors {
		cx += a.X
		cy += a.Y
	}
	n := float64(len(f.bootAnchors))
	f.x, f.y = cx/n, cy/n
	v := f.cfg.InitStdM * f.cfg.InitStdM
	f.pxx, f.pyy, f.pxy = v, v, 0
	f.booted = true
	// The buffered anchors' measurements were consumed for the centroid;
	// re-deriving their exact (z, r) here would need storage. Instead the
	// centroid itself is the prior and subsequent beacons refine it. With
	// k=3 beacons per anchor per window, plenty follow.
}

// update performs one EKF measurement update with range z (std r) to the
// anchor.
func (f *Filter) update(anchor geom.Vec2, z, r float64) {
	dx := f.x - anchor.X
	dy := f.y - anchor.Y
	d := math.Hypot(dx, dy)
	if d < 1e-6 {
		// Linearization undefined at the anchor; nudge outward.
		d = 1e-6
		dx = d
	}
	// H = [dx/d, dy/d]; S = H P H^T + r^2; K = P H^T / S.
	hx, hy := dx/d, dy/d
	phx := f.pxx*hx + f.pxy*hy
	phy := f.pxy*hx + f.pyy*hy
	s := hx*phx + hy*phy + r*r
	kx := phx / s
	ky := phy / s

	innov := z - d
	f.x += kx * innov
	f.y += ky * innov

	// P = (I - K H) P, in symmetric form.
	pxx := f.pxx - kx*phx
	pxy := f.pxy - kx*phy
	pyy := f.pyy - ky*phy
	f.pxx, f.pxy, f.pyy = pxx, pxy, pyy

	p := f.cfg.Area.Clamp(geom.Vec2{X: f.x, Y: f.y})
	f.x, f.y = p.X, p.Y
}

// Estimate returns the current state estimate.
func (f *Filter) Estimate() geom.Vec2 { return geom.Vec2{X: f.x, Y: f.y} }

// Uncertainty returns the standard deviation of the estimate (the root of
// the covariance trace), for diagnostics.
func (f *Filter) Uncertainty() float64 {
	return math.Sqrt(math.Max(0, f.pxx+f.pyy))
}

// HashState folds the filter state — mean, covariance, bootstrap buffer —
// into h, for checkpoint digests.
func (f *Filter) HashState(h *checkpoint.Hasher) {
	h.F64(f.x)
	h.F64(f.y)
	h.F64(f.pxx)
	h.F64(f.pxy)
	h.F64(f.pyy)
	h.Int(f.beacons)
	h.Bool(f.booted)
	h.Int(len(f.bootAnchors))
	for _, a := range f.bootAnchors {
		h.F64(a.X)
		h.F64(a.Y)
	}
}
