package mrmm

import (
	"math"
	"testing"

	"cocoa/internal/energy"
	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/network"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// meshBed wires N static nodes with NICs and MRMM instances.
type meshBed struct {
	sim   *sim.Simulator
	med   *mac.Medium
	nics  []*network.NIC
	prots []*Protocol
}

func newMeshBed(t *testing.T, seed int64, positions []geom.Vec2, model radio.Model, pruning bool) *meshBed {
	t.Helper()
	s := sim.New()
	root := sim.NewRNG(seed)
	med, err := mac.NewMedium(s, mac.DefaultConfig(model), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	b := &meshBed{sim: s, med: med}
	for i, pos := range positions {
		pos := pos
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return pos })
		cfg := DefaultConfig(model.MeanRange())
		cfg.UsePruning = pruning
		p, err := New(s, nic, cfg, root.StreamN("mrmm", i), func() MobilityInfo {
			return MobilityInfo{Pos: pos}
		})
		if err != nil {
			t.Fatal(err)
		}
		p.SetMember(true)
		b.nics = append(b.nics, nic)
		b.prots = append(b.prots, p)
	}
	return b
}

// line topology spaced so only adjacent nodes hear each other: forces
// multi-hop forwarding.
func lineTopology(n int, spacing float64) []geom.Vec2 {
	out := make([]geom.Vec2, n)
	for i := range out {
		out[i] = geom.Vec2{X: float64(i) * spacing}
	}
	return out
}

// shortRangeModel shrinks the radio range and removes channel randomness so
// topology is exact.
func shortRangeModel() radio.Model {
	m := radio.DefaultModel()
	m.ShadowSigmaDB = 0.01
	m.DeepFadeProb = 0
	m.MultipathSigmaDB = 0
	m.SensitivityDBm = -75 // range ~ 27 m
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(160).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MaxHops = 0 },
		func(c *Config) { c.FGTimeoutS = 0 },
		func(c *Config) { c.ReplyDelayMinS = -1 },
		func(c *Config) { c.ReplyDelayMaxS = 0; c.ReplyDelayMinS = 1 },
		func(c *Config) { c.ForwardJitterMaxS = -1 },
		func(c *Config) { c.LinkRangeM = 0 },
		func(c *Config) { c.DataBytes = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(160)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestSingleHopDelivery(t *testing.T) {
	model := shortRangeModel()
	b := newMeshBed(t, 1, []geom.Vec2{{X: 0}, {X: 20}}, model, true)

	var got []Data
	b.prots[1].OnData(func(d Data, _ float64) { got = append(got, d) })

	if err := b.prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	b.sim.Schedule(0.5, func() {
		if err := b.prots[0].SendData("sync-1"); err != nil {
			t.Error(err)
		}
	})
	b.sim.RunUntil(2)

	if len(got) != 1 || got[0].Payload != "sync-1" {
		t.Fatalf("member got %v", got)
	}
}

// Multi-hop: a 4-node line with ~27 m range and 20 m spacing. Data from
// node 0 must reach node 3 via forwarding-group members 1 and 2.
func TestMultiHopDelivery(t *testing.T) {
	model := shortRangeModel()
	b := newMeshBed(t, 2, lineTopology(4, 20), model, true)

	delivered := make([]int, 4)
	for i := 1; i < 4; i++ {
		i := i
		b.prots[i].OnData(func(Data, float64) { delivered[i]++ })
	}

	if err := b.prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	b.sim.Schedule(0.5, func() {
		if err := b.prots[0].SendData("sync"); err != nil {
			t.Error(err)
		}
	})
	b.sim.RunUntil(2)

	for i := 1; i < 4; i++ {
		if delivered[i] != 1 {
			t.Errorf("node %d delivered %d, want 1", i, delivered[i])
		}
	}
	// Middle nodes must have joined the forwarding group.
	if !b.prots[1].InForwardingGroup() || !b.prots[2].InForwardingGroup() {
		t.Error("relay nodes not in forwarding group")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	model := shortRangeModel()
	b := newMeshBed(t, 3, lineTopology(3, 20), model, true)

	count := 0
	b.prots[2].OnData(func(Data, float64) { count++ })

	if err := b.prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	// Send the same logical payload twice: two data packets, each must be
	// delivered exactly once despite mesh redundancy.
	b.sim.Schedule(0.5, func() { _ = b.prots[0].SendData("a") })
	b.sim.Schedule(0.7, func() { _ = b.prots[0].SendData("b") })
	b.sim.RunUntil(2)

	if count != 2 {
		t.Fatalf("delivered %d, want exactly 2", count)
	}
}

func TestNonMemberDoesNotDeliver(t *testing.T) {
	model := shortRangeModel()
	b := newMeshBed(t, 4, []geom.Vec2{{X: 0}, {X: 20}}, model, true)
	b.prots[1].SetMember(false)
	called := false
	b.prots[1].OnData(func(Data, float64) { called = true })

	if err := b.prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	b.sim.Schedule(0.5, func() { _ = b.prots[0].SendData("x") })
	b.sim.RunUntil(2)
	if called {
		t.Error("non-member delivered data")
	}
	if b.prots[1].Stats().DataDelivered != 0 {
		t.Error("non-member counted a delivery")
	}
}

func TestMaxHopsBoundsFlood(t *testing.T) {
	model := shortRangeModel()
	positions := lineTopology(6, 20)
	s := sim.New()
	root := sim.NewRNG(5)
	med, err := mac.NewMedium(s, mac.DefaultConfig(model), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	var prots []*Protocol
	for i, pos := range positions {
		pos := pos
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return pos })
		cfg := DefaultConfig(model.MeanRange())
		cfg.MaxHops = 2 // queries die after two hops
		p, err := New(s, nic, cfg, root.StreamN("mrmm", i), func() MobilityInfo {
			return MobilityInfo{Pos: pos}
		})
		if err != nil {
			t.Fatal(err)
		}
		p.SetMember(true)
		prots = append(prots, p)
	}
	if err := prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2)
	// Node 5 (5 hops away) must never have seen the query, so it has no
	// upstream and never replied.
	if prots[5].Stats().RepliesSent != 0 {
		t.Error("query escaped the MaxHops bound")
	}
}

func TestFGTimeoutExpires(t *testing.T) {
	model := shortRangeModel()
	b := newMeshBed(t, 6, lineTopology(3, 20), model, true)
	if err := b.prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	b.sim.RunUntil(1)
	if !b.prots[1].InForwardingGroup() {
		t.Fatal("relay not in FG after query round")
	}
	b.sim.RunUntil(1 + float64(DefaultConfig(100).FGTimeoutS) + 1)
	if b.prots[1].InForwardingGroup() {
		t.Error("FG membership did not expire")
	}
}

// The MRMM pruning policy must prefer the candidate with the longest
// predicted link lifetime; ODMRP must keep the first arrival.
func TestChooseUpstreamPolicies(t *testing.T) {
	cands := []candidate{
		{prevHop: 1, hops: 1, lifetime: 5, order: 0},
		{prevHop: 2, hops: 2, lifetime: 500, order: 1},
		{prevHop: 3, hops: 1, lifetime: 500, order: 2},
	}
	pruned := &Protocol{cfg: Config{UsePruning: true}}
	if got := pruned.chooseUpstream(cands); got.prevHop != 3 {
		t.Errorf("pruning chose %d, want 3 (fewest hops among stable, longest lifetime)", got.prevHop)
	}
	odmrp := &Protocol{cfg: Config{UsePruning: false}}
	if got := odmrp.chooseUpstream(cands); got.prevHop != 1 {
		t.Errorf("ODMRP chose %d, want 1 (first arrival)", got.prevHop)
	}

	// With a stability floor, the short-lived 1-hop candidate is pruned
	// even though it has the fewest hops among all candidates.
	floored := &Protocol{cfg: Config{UsePruning: true, MinLifetimeS: 120}}
	if got := floored.chooseUpstream(cands); got.prevHop != 3 {
		t.Errorf("floored pruning chose %d, want 3", got.prevHop)
	}
	// The floor excludes candidate 1; among stable ones, fewer hops wins
	// even against a longer lifetime.
	cands2 := []candidate{
		{prevHop: 1, hops: 1, lifetime: 5, order: 0},
		{prevHop: 2, hops: 2, lifetime: 900, order: 1},
		{prevHop: 3, hops: 3, lifetime: 5000, order: 2},
	}
	if got := floored.chooseUpstream(cands2); got.prevHop != 2 {
		t.Errorf("floored pruning chose %d, want 2 (fewest hops among stable)", got.prevHop)
	}
	// Nothing stable: fall back to the longest-lived candidate.
	cands3 := []candidate{
		{prevHop: 1, hops: 1, lifetime: 5, order: 0},
		{prevHop: 2, hops: 2, lifetime: 80, order: 1},
	}
	if got := floored.chooseUpstream(cands3); got.prevHop != 2 {
		t.Errorf("fallback chose %d, want 2 (longest lifetime)", got.prevHop)
	}
}

func TestLinkLifetimePrediction(t *testing.T) {
	self := MobilityInfo{Pos: geom.Vec2{}, Vel: geom.Vec2{}}
	p := &Protocol{cfg: Config{LinkRangeM: 100}, mobility: func() MobilityInfo { return self }}

	// Static neighbor in range: infinite lifetime.
	if got := p.linkLifetime(MobilityInfo{Pos: geom.Vec2{X: 50}}); !math.IsInf(got, 1) {
		t.Errorf("static lifetime = %v, want +Inf", got)
	}
	// Neighbor out of range: zero.
	if got := p.linkLifetime(MobilityInfo{Pos: geom.Vec2{X: 150}}); got != 0 {
		t.Errorf("out-of-range lifetime = %v, want 0", got)
	}
	// Neighbor at 50 m moving directly away at 10 m/s: (100-50)/10 = 5 s.
	got := p.linkLifetime(MobilityInfo{Pos: geom.Vec2{X: 50}, Vel: geom.Vec2{X: 10}})
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("receding lifetime = %v, want 5", got)
	}
	// Neighbor moving toward us crosses and exits the far side:
	// position 50, velocity -10: solves (50-10t)^2=100^2 -> t=15.
	got = p.linkLifetime(MobilityInfo{Pos: geom.Vec2{X: 50}, Vel: geom.Vec2{X: -10}})
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("approaching lifetime = %v, want 15", got)
	}
}

// Pruning picks stable relays: with a resting relay and a fast-moving
// relay both available, the member's chosen upstream must be the rester.
func TestPruningPrefersStableRelay(t *testing.T) {
	model := shortRangeModel()
	s := sim.New()
	root := sim.NewRNG(7)
	med, err := mac.NewMedium(s, mac.DefaultConfig(model), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	// Diamond: source 0 at x=0; relays 1 (moving fast) and 2 (static)
	// both at x=20 (different y, both hear 0 and 3); member 3 at x=40.
	type nodeDef struct {
		pos geom.Vec2
		vel geom.Vec2
	}
	defs := []nodeDef{
		{pos: geom.Vec2{X: 0}},
		{pos: geom.Vec2{X: 20, Y: 8}, vel: geom.Vec2{X: 5, Y: 5}},
		{pos: geom.Vec2{X: 20, Y: -8}},
		{pos: geom.Vec2{X: 40}},
	}
	var prots []*Protocol
	for i, def := range defs {
		def := def
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return def.pos })
		cfg := DefaultConfig(model.MeanRange())
		p, err := New(s, nic, cfg, root.StreamN("mrmm", i), func() MobilityInfo {
			return MobilityInfo{Pos: def.pos, Vel: def.vel}
		})
		if err != nil {
			t.Fatal(err)
		}
		p.SetMember(true)
		prots = append(prots, p)
	}
	if err := prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2)

	if up := prots[3].upstream[0]; up != 2 {
		t.Errorf("member upstream = %d, want 2 (the static relay)", up)
	}
	if !prots[2].InForwardingGroup() {
		t.Error("static relay not recruited")
	}
}

func TestStaleQueryIgnored(t *testing.T) {
	model := shortRangeModel()
	b := newMeshBed(t, 8, []geom.Vec2{{X: 0}, {X: 20}}, model, true)
	// Two rounds: the second query supersedes the first.
	if err := b.prots[0].SendQuery(); err != nil {
		t.Fatal(err)
	}
	b.sim.Schedule(0.5, func() { _ = b.prots[0].SendQuery() })
	b.sim.RunUntil(2)
	// The member replied twice (once per round).
	if got := b.prots[1].Stats().RepliesSent; got != 2 {
		t.Errorf("RepliesSent = %d, want 2", got)
	}
}

// The headline MRMM property: with pruning, the mesh needs no more data
// transmissions than plain ODMRP on the same topology (usually fewer).
func TestPruningForwardingEfficiency(t *testing.T) {
	run := func(pruning bool) int {
		// A dense random-ish grid where many relays are redundant.
		var positions []geom.Vec2
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				positions = append(positions, geom.Vec2{X: float64(i) * 12, Y: float64(j) * 12})
			}
		}
		b := newMeshBed(t, 9, positions, shortRangeModel(), pruning)
		if err := b.prots[0].SendQuery(); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			d := 1.0 + float64(k)*0.2
			b.sim.Schedule(d, func() { _ = b.prots[0].SendData("s") })
		}
		b.sim.RunUntil(4)
		total := 0
		for _, p := range b.prots {
			total += p.Stats().DataSent
		}
		return total
	}
	withPruning, without := run(true), run(false)
	if withPruning > without {
		t.Errorf("pruned mesh sent %d data frames, plain ODMRP %d; pruning must not inflate traffic",
			withPruning, without)
	}
}
