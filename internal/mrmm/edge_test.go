package mrmm

import (
	"math"
	"strings"
	"testing"

	"cocoa/internal/energy"
	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/network"
	"cocoa/internal/sim"
)

func TestValidateTable(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		cfg := DefaultConfig(30)
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"default ok", DefaultConfig(30), ""},
		{"zero max hops", mutate(func(c *Config) { c.MaxHops = 0 }), "MaxHops"},
		{"zero fg timeout", mutate(func(c *Config) { c.FGTimeoutS = 0 }), "FGTimeoutS"},
		{"negative reply min", mutate(func(c *Config) { c.ReplyDelayMinS = -1 }), "reply delay"},
		{"inverted reply range", mutate(func(c *Config) { c.ReplyDelayMaxS = c.ReplyDelayMinS / 2 }), "reply delay"},
		{"negative jitter", mutate(func(c *Config) { c.ForwardJitterMaxS = -0.1 }), "jitter"},
		{"zero link range", mutate(func(c *Config) { c.LinkRangeM = 0 }), "LinkRangeM"},
		{"negative min lifetime", mutate(func(c *Config) { c.MinLifetimeS = -1 }), "MinLifetimeS"},
		{"zero data bytes", mutate(func(c *Config) { c.DataBytes = 0 }), "DataBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %v, want error mentioning %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	s := sim.New()
	root := sim.NewRNG(1)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	nic := network.NewNIC(s, med, energy.DefaultParams(), 0, func() geom.Vec2 { return geom.Vec2{} })
	bad := DefaultConfig(30)
	bad.MaxHops = 0
	if _, err := New(s, nic, bad, root.Stream("mrmm"), func() MobilityInfo {
		return MobilityInfo{}
	}); err == nil {
		t.Error("New accepted an invalid config")
	}
}

// linkLifetime's analytic cases: out of range, relatively static, moving
// apart, and converging — exercised table-driven through one node whose
// own mobility is pinned at the origin.
func TestLinkLifetimeTable(t *testing.T) {
	s := sim.New()
	root := sim.NewRNG(1)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	nic := network.NewNIC(s, med, energy.DefaultParams(), 0, func() geom.Vec2 { return geom.Vec2{} })
	cfg := DefaultConfig(30)
	cfg.LinkRangeM = 100
	p, err := New(s, nic, cfg, root.Stream("mrmm"), func() MobilityInfo {
		return MobilityInfo{Pos: geom.Vec2{}, Vel: geom.Vec2{}}
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		other MobilityInfo
		check func(float64) bool
		want  string
	}{
		{
			"out of range", MobilityInfo{Pos: geom.Vec2{X: 150}},
			func(v float64) bool { return v == 0 }, "0",
		},
		{
			"static pair", MobilityInfo{Pos: geom.Vec2{X: 50}},
			func(v float64) bool { return math.IsInf(v, 1) }, "+Inf",
		},
		{
			"receding at 10 m/s", MobilityInfo{Pos: geom.Vec2{X: 50}, Vel: geom.Vec2{X: 10}},
			// 50 m of range margin at 10 m/s.
			func(v float64) bool { return math.Abs(v-5) < 1e-9 }, "5",
		},
		{
			"approaching then receding", MobilityInfo{Pos: geom.Vec2{X: 50}, Vel: geom.Vec2{X: -10}},
			// Crosses the origin region first: 150 m of travel before
			// the link breaks on the far side.
			func(v float64) bool { return math.Abs(v-15) < 1e-9 }, "15",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.linkLifetime(tc.other); !tc.check(got) {
				t.Errorf("linkLifetime = %v, want %s", got, tc.want)
			}
		})
	}
}
