// Package mrmm implements MRMM (Mobile Robot Mesh Multicast), the
// ODMRP-derived multicast protocol CoCoA uses to disseminate SYNC messages
// (Das et al., ICRA 2005; Section 2.3 of the CoCoA paper).
//
// Like ODMRP, the protocol has two phases:
//
//   - Mesh construction and maintenance: the source floods a JOIN QUERY;
//     group members answer with JOIN REPLYs that travel back toward the
//     source, recruiting the nodes they traverse into the forwarding group
//     (the mesh).
//
//   - Data delivery: data packets are broadcast; forwarding-group members
//     rebroadcast unseen packets so every member receives them.
//
// MRMM extends ODMRP with mesh pruning driven by the mobility knowledge
// available in robot networks (the paper's d_rest, v and t): when a member
// chooses its upstream node from the JOIN QUERY copies it heard, it picks
// the neighbor whose radio link is predicted to survive longest, instead
// of the first copy to arrive. Longer-lived upstreams concentrate the
// forwarding group on stable robots, producing a sparser mesh (P ⊆ F),
// fewer rebroadcasts, and better forwarding efficiency.
package mrmm

import (
	"fmt"
	"math"

	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/network"
	"cocoa/internal/sim"
)

// MobilityInfo is the mobility knowledge piggybacked on control packets:
// position, commanded velocity, and remaining rest time at the current
// spot.
type MobilityInfo struct {
	Pos  geom.Vec2
	Vel  geom.Vec2
	Rest sim.Time
}

// Packet sizes in bytes, counting IP/UDP headers like the paper's beacons.
const (
	joinQueryBytes = network.IPHeaderBytes + network.UDPHeaderBytes + 44
	joinReplyBytes = network.IPHeaderBytes + network.UDPHeaderBytes + 48
)

// JoinQuery is the mesh-construction flood packet.
type JoinQuery struct {
	Source  int
	Seq     int
	Hops    int
	PrevHop int
	Info    MobilityInfo // mobility knowledge of the rebroadcasting node
}

// JoinReply activates the reverse path: the node named NextHop joins the
// forwarding group.
type JoinReply struct {
	Member  int
	Source  int
	Seq     int
	NextHop int
}

// Data is a multicast payload delivered over the mesh.
type Data struct {
	Source  int
	Seq     int
	Payload any
}

// Config holds protocol parameters.
type Config struct {
	// MaxHops bounds JOIN QUERY flooding.
	MaxHops int
	// FGTimeoutS is how long forwarding-group membership persists after
	// the last JOIN REPLY named this node.
	FGTimeoutS sim.Time
	// ReplyDelayMinS and ReplyDelayMaxS bound the jitter members wait
	// before answering a query, letting duplicate queries arrive so the
	// pruning step can compare candidate upstreams.
	ReplyDelayMinS sim.Time
	ReplyDelayMaxS sim.Time
	// ForwardJitterMaxS randomizes rebroadcast times to avoid
	// synchronized collisions.
	ForwardJitterMaxS sim.Time
	// LinkRangeM is the assumed radio range for link-lifetime prediction.
	LinkRangeM float64
	// MinLifetimeS is the pruning policy's stability floor: among
	// upstream candidates whose predicted link lifetime meets the floor,
	// the member picks the fewest-hop one (preserving ODMRP's short
	// paths); only when no candidate is stable enough does raw lifetime
	// decide. This matches the paper's goal of maximizing mesh lifetime
	// "without greatly affecting the redundancy and path lengths".
	MinLifetimeS float64
	// UsePruning selects MRMM behaviour; false degrades to plain ODMRP
	// (first-copy upstream selection) for the ablation benchmark.
	UsePruning bool
	// DataBytes is the payload size of mesh data packets on the air.
	DataBytes int
}

// DefaultConfig returns parameters tuned for the paper's 50-robot network.
func DefaultConfig(linkRange float64) Config {
	return Config{
		MaxHops:           8,
		FGTimeoutS:        400,
		ReplyDelayMinS:    0.02,
		ReplyDelayMaxS:    0.05,
		ForwardJitterMaxS: 0.01,
		LinkRangeM:        linkRange,
		MinLifetimeS:      120,
		UsePruning:        true,
		DataBytes:         network.IPHeaderBytes + network.UDPHeaderBytes + 24,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.MaxHops <= 0:
		return fmt.Errorf("mrmm: MaxHops must be positive")
	case c.FGTimeoutS <= 0:
		return fmt.Errorf("mrmm: FGTimeoutS must be positive")
	case c.ReplyDelayMinS < 0 || c.ReplyDelayMaxS < c.ReplyDelayMinS:
		return fmt.Errorf("mrmm: bad reply delay range")
	case c.ForwardJitterMaxS < 0:
		return fmt.Errorf("mrmm: negative forward jitter")
	case c.LinkRangeM <= 0:
		return fmt.Errorf("mrmm: LinkRangeM must be positive")
	case c.MinLifetimeS < 0:
		return fmt.Errorf("mrmm: MinLifetimeS must be non-negative")
	case c.DataBytes <= 0:
		return fmt.Errorf("mrmm: DataBytes must be positive")
	}
	return nil
}

// Stats counts per-node protocol activity.
type Stats struct {
	QueriesSent     int // JOIN QUERY (re)broadcasts
	RepliesSent     int // JOIN REPLY broadcasts
	DataSent        int // data (re)broadcasts
	DataDelivered   int // data packets delivered to the member application
	BecameForwarder int // times this node (re)entered the forwarding group
}

// DataHandler consumes mesh data delivered to a group member.
type DataHandler func(d Data, rssiDBm float64)

// candidate is one overheard upstream option for a (source, seq) query.
type candidate struct {
	prevHop  int
	hops     int
	lifetime float64
	order    int // arrival order, for the ODMRP (no-pruning) policy
}

// queryState tracks the best upstream per query round.
type queryState struct {
	seq        int
	candidates []candidate
	replied    bool
}

// Protocol is one node's MRMM instance.
type Protocol struct {
	id  int
	sim *sim.Simulator
	nic *network.NIC
	cfg Config
	rng *sim.RNG

	mobility func() MobilityInfo
	onData   DataHandler

	member  bool
	seq     int // source-side query sequence counter
	dataSeq int // source-side data sequence counter
	fgUntil sim.Time

	queries  map[int]*queryState // per source
	seenData map[int]int         // highest seq delivered per source
	upstream map[int]int         // chosen upstream per source

	stats Stats
}

// New attaches an MRMM instance to the NIC. mobility supplies this node's
// own mobility knowledge for control packets.
func New(s *sim.Simulator, nic *network.NIC, cfg Config, rng *sim.RNG,
	mobility func() MobilityInfo) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Protocol{
		id:       nic.ID(),
		sim:      s,
		nic:      nic,
		cfg:      cfg,
		rng:      rng,
		mobility: mobility,
		queries:  make(map[int]*queryState),
		seenData: make(map[int]int),
		upstream: make(map[int]int),
	}
	nic.Handle(network.KindJoinQuery, p.onJoinQuery)
	nic.Handle(network.KindJoinReply, p.onJoinReply)
	nic.Handle(network.KindSync, p.onDataFrame)
	return p, nil
}

// SetMember marks this node as a multicast group member (all CoCoA robots
// are members of the SYNC group).
func (p *Protocol) SetMember(m bool) { p.member = m }

// OnData registers the member application's data handler.
func (p *Protocol) OnData(h DataHandler) { p.onData = h }

// InForwardingGroup reports whether this node currently forwards data.
func (p *Protocol) InForwardingGroup() bool { return p.sim.Now() < p.fgUntil }

// Stats returns a copy of this node's counters.
func (p *Protocol) Stats() Stats { return p.stats }

// SendQuery floods a fresh JOIN QUERY from this node as the multicast
// source, starting a mesh-refresh round.
func (p *Protocol) SendQuery() error {
	p.seq++
	q := JoinQuery{Source: p.id, Seq: p.seq, Hops: 0, PrevHop: p.id, Info: p.mobility()}
	p.stats.QueriesSent++
	return p.nic.Send(network.KindJoinQuery, joinQueryBytes, q)
}

// SendData multicasts a payload from this node over the mesh.
func (p *Protocol) SendData(payload any) error {
	p.dataSeq++
	d := Data{Source: p.id, Seq: p.dataSeq, Payload: payload}
	p.seenData[p.id] = p.dataSeq
	p.stats.DataSent++
	return p.nic.Send(network.KindSync, p.cfg.DataBytes, d)
}

// onJoinQuery handles a JOIN QUERY copy: records the upstream candidate,
// rebroadcasts the first copy, and schedules the member's JOIN REPLY.
func (p *Protocol) onJoinQuery(f mac.Frame, _ float64) {
	q, ok := f.Payload.(JoinQuery)
	if !ok || q.Source == p.id {
		return
	}
	st := p.queries[q.Source]
	fresh := st == nil || st.seq < q.Seq
	if fresh {
		// One queryState per source, recycled across rounds: a new round
		// rewinds the candidate list in place. Pending sendReply closures
		// from the superseded round carry their own seq and bail out when
		// it no longer matches (the recycled-state equivalent of the old
		// pointer-replacement check).
		if st == nil {
			st = &queryState{}
			p.queries[q.Source] = st
		}
		st.seq = q.Seq
		st.candidates = st.candidates[:0]
		st.replied = false
	} else if st.seq > q.Seq {
		return // stale round
	}

	st.candidates = append(st.candidates, candidate{
		prevHop:  q.PrevHop,
		hops:     q.Hops,
		lifetime: p.linkLifetime(q.Info),
		order:    len(st.candidates),
	})

	if !fresh {
		return // duplicate: candidate recorded, no rebroadcast
	}

	// Rebroadcast the query with our own mobility knowledge.
	if q.Hops+1 < p.cfg.MaxHops {
		fwd := q
		fwd.Hops++
		fwd.PrevHop = p.id
		fwd.Info = p.mobility()
		p.sim.Schedule(p.rng.Uniform(0, float64(p.cfg.ForwardJitterMaxS)), func() {
			if p.nic.Send(network.KindJoinQuery, joinQueryBytes, fwd) == nil {
				p.stats.QueriesSent++
			}
		})
	}

	// Members answer after a jitter window that lets duplicates arrive,
	// so upstream selection can compare candidates.
	if p.member {
		delay := p.rng.Uniform(float64(p.cfg.ReplyDelayMinS), float64(p.cfg.ReplyDelayMaxS))
		p.sim.Schedule(delay, func() { p.sendReply(q.Source, st, q.Seq) })
	}
}

// sendReply emits this node's JOIN REPLY for the round identified by seq,
// choosing the upstream by predicted link lifetime (MRMM) or arrival order
// (ODMRP).
func (p *Protocol) sendReply(source int, st *queryState, seq int) {
	if st.replied || len(st.candidates) == 0 || st.seq != seq {
		return // already answered, or a newer round superseded this one
	}
	st.replied = true
	best := p.chooseUpstream(st.candidates)
	p.upstream[source] = best.prevHop
	r := JoinReply{Member: p.id, Source: source, Seq: st.seq, NextHop: best.prevHop}
	if p.nic.Send(network.KindJoinReply, joinReplyBytes, r) == nil {
		p.stats.RepliesSent++
	}
}

// chooseUpstream implements the MRMM pruning policy: among candidates
// whose predicted link lifetime meets the stability floor, pick the
// fewest hops (then the longest lifetime); if no candidate is stable,
// fall back to the longest-lived one. Without pruning (plain ODMRP) the
// first-received copy wins.
func (p *Protocol) chooseUpstream(cands []candidate) candidate {
	if !p.cfg.UsePruning {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.order < best.order {
				best = c
			}
		}
		return best
	}

	stableBetter := func(a, b candidate) bool {
		if a.hops != b.hops {
			return a.hops < b.hops
		}
		if a.lifetime != b.lifetime {
			return a.lifetime > b.lifetime
		}
		return a.order < b.order
	}

	var havestable bool
	var best candidate
	for _, c := range cands {
		if c.lifetime < p.cfg.MinLifetimeS {
			continue
		}
		if !havestable || stableBetter(c, best) {
			best, havestable = c, true
		}
	}
	if havestable {
		return best
	}
	// No candidate survives long enough: take the longest-lived.
	best = cands[0]
	for _, c := range cands[1:] {
		if c.lifetime > best.lifetime ||
			(c.lifetime == best.lifetime && c.hops < best.hops) {
			best = c
		}
	}
	return best
}

// onJoinReply handles a JOIN REPLY: if it names this node as the next hop,
// the node joins the forwarding group and propagates a reply of its own
// toward the source.
func (p *Protocol) onJoinReply(f mac.Frame, _ float64) {
	r, ok := f.Payload.(JoinReply)
	if !ok || r.NextHop != p.id || r.Source == p.id {
		return
	}
	if !p.InForwardingGroup() {
		p.stats.BecameForwarder++
	}
	p.fgUntil = p.sim.Now() + p.cfg.FGTimeoutS

	// Propagate mesh activation toward the source (once per round).
	st := p.queries[r.Source]
	if st == nil || st.seq != r.Seq || st.replied {
		return
	}
	p.sendReply(r.Source, st, r.Seq)
}

// onDataFrame handles mesh data: deliver to the member application and
// rebroadcast if this node is part of the forwarding group.
func (p *Protocol) onDataFrame(f mac.Frame, rssi float64) {
	d, ok := f.Payload.(Data)
	if !ok || d.Source == p.id {
		return
	}
	if last, seen := p.seenData[d.Source]; seen && last >= d.Seq {
		return // duplicate
	}
	p.seenData[d.Source] = d.Seq

	if p.member {
		p.stats.DataDelivered++
		if p.onData != nil {
			p.onData(d, rssi)
		}
	}
	if p.InForwardingGroup() {
		p.sim.Schedule(p.rng.Uniform(0, float64(p.cfg.ForwardJitterMaxS)), func() {
			if p.nic.Send(network.KindSync, p.cfg.DataBytes, d) == nil {
				p.stats.DataSent++
			}
		})
	}
}

// linkLifetime predicts how long the radio link between this node and a
// neighbor with the given mobility knowledge will last, assuming both keep
// their current velocities (a resting robot contributes zero velocity for
// its rest duration, which is what makes resting robots attractive mesh
// members — the paper's d_rest knowledge).
func (p *Protocol) linkLifetime(other MobilityInfo) float64 {
	self := p.mobility()
	rel := other.Pos.Sub(self.Pos)
	vel := other.Vel.Sub(self.Vel)
	r := p.cfg.LinkRangeM

	dist := rel.Len()
	if dist > r {
		return 0
	}
	speed2 := vel.Dot(vel)
	if speed2 < 1e-12 {
		return math.Inf(1)
	}
	// Solve |rel + vel*t| = r for the positive root.
	b := rel.Dot(vel)
	c := rel.Dot(rel) - r*r
	disc := b*b - speed2*c
	if disc < 0 {
		return 0
	}
	t := (-b + math.Sqrt(disc)) / speed2
	if t < 0 {
		return 0
	}
	return t
}
