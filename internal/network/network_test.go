package network

import (
	"math"
	"testing"

	"cocoa/internal/energy"
	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

type testBed struct {
	sim *sim.Simulator
	med *mac.Medium
}

func newBed(t *testing.T, seed int64) *testBed {
	t.Helper()
	s := sim.New()
	med, err := mac.NewMedium(s, mac.DefaultConfig(radio.DefaultModel()), sim.NewRNG(seed).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	return &testBed{sim: s, med: med}
}

func (b *testBed) nic(id int, pos geom.Vec2) *NIC {
	return NewNIC(b.sim, b.med, energy.DefaultParams(), id, func() geom.Vec2 { return pos })
}

func TestBeaconBytesMatchesPaper(t *testing.T) {
	// The paper: IP and UDP headers (20 bytes each) plus coordinates.
	if BeaconBytes != 56 {
		t.Errorf("BeaconBytes = %d, want 56", BeaconBytes)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeOff: "off", ModeSleep: "sleep", ModeAwake: "awake", Mode(9): "Mode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestSendDeliverRoundTrip(t *testing.T) {
	b := newBed(t, 1)
	a := b.nic(0, geom.Vec2{})
	c := b.nic(1, geom.Vec2{X: 15})

	var got []any
	var rssis []float64
	c.Handle(KindBeacon, func(f mac.Frame, rssi float64) {
		got = append(got, f.Payload)
		rssis = append(rssis, rssi)
	})

	if err := a.Send(KindBeacon, BeaconBytes, "hello"); err != nil {
		t.Fatal(err)
	}
	b.sim.Run()

	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("delivered = %v", got)
	}
	if rssis[0] > -30 || rssis[0] < -98 {
		t.Errorf("implausible RSSI %v", rssis[0])
	}
	if a.Sent() != 1 || c.Received() != 1 {
		t.Errorf("counters: sent=%d received=%d", a.Sent(), c.Received())
	}
}

func TestUnhandledKindDropped(t *testing.T) {
	b := newBed(t, 2)
	a := b.nic(0, geom.Vec2{})
	c := b.nic(1, geom.Vec2{X: 15})
	c.Handle(KindSync, func(mac.Frame, float64) { t.Error("wrong handler called") })
	if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
		t.Fatal(err)
	}
	b.sim.Run()
	if c.Received() != 1 {
		t.Errorf("Received = %d, want 1 (counted even if unhandled)", c.Received())
	}
}

func TestSendWhileAsleepFails(t *testing.T) {
	b := newBed(t, 3)
	a := b.nic(0, geom.Vec2{})
	a.Sleep()
	if err := a.Send(KindBeacon, BeaconBytes, nil); err == nil {
		t.Fatal("send while asleep succeeded")
	}
	if a.SendErrors() != 1 {
		t.Errorf("SendErrors = %d, want 1", a.SendErrors())
	}
	a.PowerOff()
	if err := a.Send(KindBeacon, BeaconBytes, nil); err == nil {
		t.Fatal("send while off succeeded")
	}
}

func TestSleepingNICReceivesNothing(t *testing.T) {
	b := newBed(t, 4)
	a := b.nic(0, geom.Vec2{})
	c := b.nic(1, geom.Vec2{X: 15})
	c.Sleep()
	delivered := false
	c.Handle(KindBeacon, func(mac.Frame, float64) { delivered = true })
	if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
		t.Fatal(err)
	}
	b.sim.Run()
	if delivered {
		t.Fatal("sleeping NIC received a frame")
	}
}

func TestWakeRestoresReception(t *testing.T) {
	b := newBed(t, 5)
	a := b.nic(0, geom.Vec2{})
	c := b.nic(1, geom.Vec2{X: 15})
	c.Sleep()
	count := 0
	c.Handle(KindBeacon, func(mac.Frame, float64) { count++ })

	if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
		t.Fatal(err)
	}
	b.sim.Schedule(1, func() { c.Wake() })
	b.sim.Schedule(2, func() {
		if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
			t.Error(err)
		}
	})
	b.sim.Run()
	if count != 1 {
		t.Fatalf("received %d frames, want exactly the post-wake one", count)
	}
}

func TestEnergyAccountingAcrossSchedule(t *testing.T) {
	b := newBed(t, 6)
	p := energy.DefaultParams()
	a := b.nic(0, geom.Vec2{})

	// 10 s idle, sleep for 80 s, wake, idle 10 s.
	b.sim.Schedule(10, a.Sleep)
	b.sim.Schedule(90, a.Wake)
	b.sim.Schedule(100, func() {})
	b.sim.Run()
	a.Meter().Flush(b.sim.Now())

	want := 20*p.IdleW + 80*p.SleepW + 2*p.TransitionJ
	if got := a.Meter().TotalJ(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalJ = %v, want %v", got, want)
	}
	if got := a.Meter().Duration(energy.Sleep); got != 80 {
		t.Errorf("sleep duration = %v, want 80", got)
	}
}

func TestTxRxEnergyStates(t *testing.T) {
	b := newBed(t, 7)
	a := b.nic(0, geom.Vec2{})
	c := b.nic(1, geom.Vec2{X: 15})
	if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
		t.Fatal(err)
	}
	b.sim.Run()
	a.Meter().Flush(b.sim.Now())
	c.Meter().Flush(b.sim.Now())

	if a.Meter().Duration(energy.Tx) <= 0 {
		t.Error("sender accrued no Tx time")
	}
	if c.Meter().Duration(energy.Rx) <= 0 {
		t.Error("receiver accrued no Rx time")
	}
	// Tx time equals preamble + airtime of 56+34 bytes at 2 Mbps.
	cfg := b.med.Config()
	wantTx := cfg.PreambleS + cfg.Model.Airtime(BeaconBytes+cfg.OverheadBytes)
	if got := a.Meter().Duration(energy.Tx); math.Abs(got-wantTx) > 1e-12 {
		t.Errorf("Tx duration = %v, want %v", got, wantTx)
	}
}

func TestListeningSemantics(t *testing.T) {
	b := newBed(t, 8)
	a := b.nic(0, geom.Vec2{})
	if !a.Listening() {
		t.Error("awake NIC not listening")
	}
	a.BeginTx()
	if a.Listening() {
		t.Error("transmitting NIC still listening")
	}
	a.EndTx()
	a.Sleep()
	if a.Listening() {
		t.Error("sleeping NIC listening")
	}
	a.Wake()
	a.BeginRx()
	if !a.Listening() {
		t.Error("receiving NIC must keep listening (collision modeling)")
	}
	a.EndRx()
}

// scriptedFilter drops every frame whose index is in drop and adds rssiAdd
// to the rest — a deterministic stand-in for the faults layer.
type scriptedFilter struct {
	n       int
	drop    map[int]bool
	rssiAdd float64
}

func (f *scriptedFilter) Incoming(kind int, rssi float64) (float64, bool) {
	i := f.n
	f.n++
	if f.drop[i] {
		return rssi, true
	}
	return rssi + f.rssiAdd, false
}

func TestFaultFilterInterceptsDelivery(t *testing.T) {
	b := newBed(t, 10)
	a := b.nic(0, geom.Vec2{})
	c := b.nic(1, geom.Vec2{X: 15})
	c.SetFaultFilter(&scriptedFilter{drop: map[int]bool{0: true}, rssiAdd: 7})

	var rssis []float64
	c.Handle(KindBeacon, func(_ mac.Frame, rssi float64) { rssis = append(rssis, rssi) })

	// Two sends, spaced so they do not collide; the filter eats the first.
	if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
		t.Fatal(err)
	}
	b.sim.Schedule(1, func() {
		if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
			t.Error(err)
		}
	})
	b.sim.Run()

	if len(rssis) != 1 {
		t.Fatalf("delivered %d frames, want 1 (first dropped)", len(rssis))
	}
	if c.FaultDrops() != 1 {
		t.Errorf("FaultDrops = %d, want 1", c.FaultDrops())
	}
	if c.Received() != 1 {
		t.Errorf("Received = %d, want 1 (drops are not receptions)", c.Received())
	}
	if rssis[0] > -30+7 || rssis[0] < -98+7 {
		t.Errorf("perturbed RSSI %v outside shifted plausible band", rssis[0])
	}
}

func TestNilFaultFilterIsTransparent(t *testing.T) {
	b := newBed(t, 11)
	a := b.nic(0, geom.Vec2{})
	c := b.nic(1, geom.Vec2{X: 15})
	c.SetFaultFilter(nil)
	got := 0
	c.Handle(KindBeacon, func(mac.Frame, float64) { got++ })
	if err := a.Send(KindBeacon, BeaconBytes, nil); err != nil {
		t.Fatal(err)
	}
	b.sim.Run()
	if got != 1 || c.FaultDrops() != 0 {
		t.Errorf("nil filter: delivered=%d drops=%d", got, c.FaultDrops())
	}
}

func TestModeTransitionsIdempotent(t *testing.T) {
	b := newBed(t, 9)
	a := b.nic(0, geom.Vec2{})
	a.Sleep()
	a.Sleep() // no double transition cost
	b.sim.Schedule(10, func() {})
	b.sim.Run()
	a.Meter().Flush(10)
	if got := a.Meter().Transitions(); got != 1 {
		t.Errorf("transitions = %d, want 1", got)
	}
	if a.Mode() != ModeSleep {
		t.Errorf("mode = %v", a.Mode())
	}
}
