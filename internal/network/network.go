// Package network implements the per-robot network interface card (NIC):
// the glue between the MAC medium, the energy meter, and the protocol
// layers above (beaconing, MRMM, CoCoA coordination).
//
// The NIC owns the radio power state. CoCoA's coordination layer drives
// Sleep and Wake; the MAC drives the transient Tx/Rx states; the energy
// meter observes every change. A sleeping NIC neither receives nor sends.
package network

import (
	"fmt"

	"cocoa/internal/energy"
	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/sim"
	"cocoa/internal/telemetry"
)

// Telemetry instruments: deliveries up the stack and fault-filter drops,
// the latter broken down by frame kind so a lossy run shows *what* the
// bursty channel ate (beacons vs SYNC vs unicast data).
var (
	telSent       = telemetry.Default.Counter("network.sent")
	telDelivered  = telemetry.Default.Counter("network.delivered")
	telSendErrs   = telemetry.Default.Counter("network.send_errors")
	telFaultDrops = telemetry.Default.Counter("network.fault_drops")
	// telDropsByKind is indexed by frame kind (KindBeacon..KindAck);
	// index 0 catches unknown kinds.
	telDropsByKind = [...]*telemetry.Counter{
		telemetry.Default.Counter("network.fault_drops.other"),
		telemetry.Default.Counter("network.fault_drops.beacon"),
		telemetry.Default.Counter("network.fault_drops.join_query"),
		telemetry.Default.Counter("network.fault_drops.join_reply"),
		telemetry.Default.Counter("network.fault_drops.sync"),
		telemetry.Default.Counter("network.fault_drops.data"),
		telemetry.Default.Counter("network.fault_drops.hello"),
		telemetry.Default.Counter("network.fault_drops.unicast"),
		telemetry.Default.Counter("network.fault_drops.ack"),
	}
)

// Frame kinds used across the CoCoA stack. They share one registry so the
// NIC can dispatch received frames to the right protocol handler.
const (
	KindBeacon    = 1 // RF localization beacon (equipped robots)
	KindJoinQuery = 2 // MRMM mesh construction flood
	KindJoinReply = 3 // MRMM forwarding-group activation
	KindSync      = 4 // CoCoA SYNC message carried over the MRMM mesh
	KindData      = 5 // application payload
	KindHello     = 6 // geounicast neighbor discovery
	KindUnicast   = 7 // geounicast data packet (greedy geographic forwarding)
	KindAck       = 8 // geounicast hop-by-hop acknowledgement
)

// Sizes in bytes of the paper's packets: each beacon carries IP and UDP
// headers (20 bytes each) plus the sender's coordinates.
const (
	IPHeaderBytes  = 20
	UDPHeaderBytes = 20
	CoordBytes     = 16 // two float64 coordinates
	// BeaconBytes is the on-air UDP broadcast beacon payload size.
	BeaconBytes = IPHeaderBytes + UDPHeaderBytes + CoordBytes
)

// Mode is the NIC's commanded power mode, orthogonal to the transient
// Tx/Rx activity driven by the MAC.
type Mode int

// NIC power modes.
const (
	ModeOff Mode = iota + 1
	ModeSleep
	ModeAwake
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeSleep:
		return "sleep"
	case ModeAwake:
		return "awake"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Handler consumes a delivered frame along with its received signal
// strength in dBm — the input to the RF localization algorithm.
type Handler func(f mac.Frame, rssiDBm float64)

// FaultFilter intercepts frames after MAC decode and before handler
// dispatch: the fault-injection layer drops frames (bursty link loss) and
// perturbs the reported RSSI (outlier spikes) here, so every protocol
// above the NIC — beaconing, MRMM, SYNC, geographic unicast — sees the
// same unreliable channel. It returns the (possibly perturbed) RSSI and
// whether the frame is lost.
type FaultFilter interface {
	Incoming(kind int, rssiDBm float64) (rssi float64, drop bool)
}

// NIC is one robot's radio interface.
type NIC struct {
	id    int
	sim   *sim.Simulator
	med   *mac.Medium
	meter *energy.Meter
	pos   func() geom.Vec2

	mode     Mode
	txDepth  int
	rxDepth  int
	handlers map[int]Handler
	faults   FaultFilter

	sent       int
	received   int
	sendErrs   int
	faultDrops int
}

var _ mac.Endpoint = (*NIC)(nil)

// NewNIC creates a NIC for node id, attaches it to the medium, and starts
// it awake/idle at the simulator's current time. pos must return the
// robot's true position (the MAC needs it for propagation).
func NewNIC(s *sim.Simulator, med *mac.Medium, params energy.Params, id int, pos func() geom.Vec2) *NIC {
	n := &NIC{
		id:       id,
		sim:      s,
		med:      med,
		meter:    energy.NewMeter(params, s.Now(), energy.Idle),
		pos:      pos,
		mode:     ModeAwake,
		handlers: make(map[int]Handler),
	}
	med.Attach(id, n)
	return n
}

// ID returns the node ID.
func (n *NIC) ID() int { return n.id }

// Mode returns the commanded power mode.
func (n *NIC) Mode() Mode { return n.mode }

// Meter exposes the NIC's energy ledger.
func (n *NIC) Meter() *energy.Meter { return n.meter }

// Handle registers the protocol handler for a frame kind, replacing any
// previous handler.
func (n *NIC) Handle(kind int, h Handler) { n.handlers[kind] = h }

// SetFaultFilter installs the receive-path fault injector; nil (the
// default) delivers every decoded frame untouched. The energy meter still
// bills the reception of a fault-dropped frame: the radio spent the Rx
// power before the corrupted payload failed its checksum.
func (n *NIC) SetFaultFilter(f FaultFilter) { n.faults = f }

// FaultDrops reports frames eaten by the fault filter after MAC decode.
func (n *NIC) FaultDrops() int { return n.faultDrops }

// Sleep puts the radio into sleep mode. Frames arriving while asleep are
// lost; Send fails.
func (n *NIC) Sleep() { n.setMode(ModeSleep) }

// Wake returns the radio to awake/idle.
func (n *NIC) Wake() { n.setMode(ModeAwake) }

// PowerOff turns the card off entirely.
func (n *NIC) PowerOff() { n.setMode(ModeOff) }

func (n *NIC) setMode(m Mode) {
	if n.mode == m {
		return
	}
	n.mode = m
	n.updateMeter()
}

// Send broadcasts a frame of the given kind and payload size. It fails when
// the radio is not awake: the coordination layer must wake the radio first.
func (n *NIC) Send(kind, payloadBytes int, payload any) error {
	if n.mode != ModeAwake {
		n.sendErrs++
		telSendErrs.Inc()
		return fmt.Errorf("nic %d: send while %v", n.id, n.mode)
	}
	n.sent++
	telSent.Inc()
	return n.med.Send(n.id, mac.Frame{Kind: kind, Bytes: payloadBytes, Payload: payload})
}

// Sent and Received report per-NIC frame counters.
func (n *NIC) Sent() int { return n.sent }

// Received reports the number of frames delivered up the stack.
func (n *NIC) Received() int { return n.received }

// SendErrors reports sends rejected because the radio was not awake.
func (n *NIC) SendErrors() int { return n.sendErrs }

// Position implements mac.Endpoint.
func (n *NIC) Position() geom.Vec2 { return n.pos() }

// Listening implements mac.Endpoint: awake and not transmitting. Multiple
// concurrent receptions are allowed (that is how collisions happen).
func (n *NIC) Listening() bool { return n.mode == ModeAwake && n.txDepth == 0 }

// BeginTx implements mac.Endpoint.
func (n *NIC) BeginTx() {
	n.txDepth++
	n.updateMeter()
}

// EndTx implements mac.Endpoint.
func (n *NIC) EndTx() {
	n.txDepth--
	n.updateMeter()
}

// BeginRx implements mac.Endpoint.
func (n *NIC) BeginRx() {
	n.rxDepth++
	n.updateMeter()
}

// EndRx implements mac.Endpoint.
func (n *NIC) EndRx() {
	n.rxDepth--
	n.updateMeter()
}

// Deliver implements mac.Endpoint: dispatch to the registered handler,
// after the fault filter (when installed) has had its say.
func (n *NIC) Deliver(f mac.Frame, rssiDBm float64) {
	if n.faults != nil {
		rssi, drop := n.faults.Incoming(f.Kind, rssiDBm)
		if drop {
			n.faultDrops++
			telFaultDrops.Inc()
			k := f.Kind
			if k < 0 || k >= len(telDropsByKind) {
				k = 0
			}
			telDropsByKind[k].Inc()
			return
		}
		rssiDBm = rssi
	}
	n.received++
	telDelivered.Inc()
	if h, ok := n.handlers[f.Kind]; ok {
		h(f, rssiDBm)
	}
}

// updateMeter recomputes the energy state from (mode, txDepth, rxDepth).
func (n *NIC) updateMeter() {
	now := n.sim.Now()
	switch {
	case n.mode == ModeOff:
		n.meter.SetState(now, energy.Off)
	case n.mode == ModeSleep:
		n.meter.SetState(now, energy.Sleep)
	case n.txDepth > 0:
		n.meter.SetState(now, energy.Tx)
	case n.rxDepth > 0:
		n.meter.SetState(now, energy.Rx)
	default:
		n.meter.SetState(now, energy.Idle)
	}
}
