// Package geom provides the 2D geometry primitives used throughout the
// CoCoA simulation: vectors, rectangles (deployment areas), and angle
// helpers. All coordinates are in meters and all angles in radians unless
// stated otherwise.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2D point or displacement in meters.
type Vec2 struct {
	X float64
	Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Len returns the Euclidean norm of v. Coordinates are bounded by the
// deployment area (hundreds of meters), so the plain sqrt form cannot
// overflow and is several times cheaper than math.Hypot's scaled algorithm;
// Len/Dist sit on the per-tick mobility and odometry hot paths.
func (v Vec2) Len() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 {
	dx, dy := v.X-w.X, v.Y-w.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between v and w. It is the
// exact radicand of Dist (same expression, same rounding), so
// math.Sqrt(v.Dist2(w)) == v.Dist(w) bitwise — callers use it to defer or
// skip the square root on range-check paths.
func (v Vec2) Dist2(w Vec2) float64 {
	dx, dy := v.X-w.X, v.Y-w.Y
	return dx*dx + dy*dy
}

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Heading returns the angle of v in radians in (-pi, pi], measured
// counter-clockwise from the positive X axis. The zero vector has heading 0.
func (v Vec2) Heading() float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	return math.Atan2(v.Y, v.X)
}

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vec2) Unit() Vec2 {
	l := v.Len()
	if l == 0 {
		return Vec2{}
	}
	return Vec2{v.X / l, v.Y / l}
}

// Rotate returns v rotated counter-clockwise by theta radians.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.2f, %.2f)", v.X, v.Y) }

// FromPolar builds a vector with the given length and heading (radians).
func FromPolar(length, heading float64) Vec2 {
	s, c := math.Sincos(heading)
	return Vec2{length * c, length * s}
}

// Rect is an axis-aligned rectangle [Min.X, Max.X] x [Min.Y, Max.Y]. It
// represents the robot deployment area in the paper (40000 m^2 by default).
type Rect struct {
	Min Vec2
	Max Vec2
}

// NewRect returns the rectangle spanning (x0,y0)-(x1,y1), normalizing the
// corner order so that Min <= Max on both axes.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Vec2{x0, y0}, Max: Vec2{x1, y1}}
}

// Square returns a side x side rectangle anchored at the origin.
func Square(side float64) Rect { return NewRect(0, 0, side, side) }

// Width returns the extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent along Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area in square meters.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Vec2 {
	return Vec2{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Vec2) Vec2 {
	return Vec2{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Diagonal returns the length of the rectangle's diagonal, which bounds the
// largest possible localization error inside the area.
func (r Rect) Diagonal() float64 { return r.Min.Dist(r.Max) }

// NormalizeAngle wraps theta into (-pi, pi].
func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	switch {
	case theta > math.Pi:
		theta -= 2 * math.Pi
	case theta <= -math.Pi:
		theta += 2 * math.Pi
	}
	return theta
}

// AngleDiff returns the signed smallest rotation from a to b in (-pi, pi].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(b - a) }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
