package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Vec2
		want Vec2
	}{
		{"add", Vec2{1, 2}.Add(Vec2{3, -4}), Vec2{4, -2}},
		{"sub", Vec2{1, 2}.Sub(Vec2{3, -4}), Vec2{-2, 6}},
		{"scale", Vec2{1, -2}.Scale(2.5), Vec2{2.5, -5}},
		{"scale zero", Vec2{1, -2}.Scale(0), Vec2{0, 0}},
		{"unit of zero", Vec2{}.Unit(), Vec2{}},
		{"unit", Vec2{3, 4}.Unit(), Vec2{0.6, 0.8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEqual(tt.got.X, tt.want.X, eps) || !almostEqual(tt.got.Y, tt.want.Y, eps) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecLenDist(t *testing.T) {
	if got := (Vec2{3, 4}).Len(); !almostEqual(got, 5, eps) {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := (Vec2{1, 1}).Dist(Vec2{4, 5}); !almostEqual(got, 5, eps) {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := (Vec2{2, 3}).Dot(Vec2{4, 5}); !almostEqual(got, 23, eps) {
		t.Errorf("Dot = %v, want 23", got)
	}
}

func TestHeading(t *testing.T) {
	tests := []struct {
		v    Vec2
		want float64
	}{
		{Vec2{1, 0}, 0},
		{Vec2{0, 1}, math.Pi / 2},
		{Vec2{-1, 0}, math.Pi},
		{Vec2{0, -1}, -math.Pi / 2},
		{Vec2{}, 0},
	}
	for _, tt := range tests {
		if got := tt.v.Heading(); !almostEqual(got, tt.want, eps) {
			t.Errorf("Heading(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestRotate(t *testing.T) {
	got := Vec2{1, 0}.Rotate(math.Pi / 2)
	if !almostEqual(got.X, 0, eps) || !almostEqual(got.Y, 1, eps) {
		t.Errorf("Rotate = %v, want (0,1)", got)
	}
}

func TestFromPolar(t *testing.T) {
	v := FromPolar(2, math.Pi/4)
	want := math.Sqrt2
	if !almostEqual(v.X, want, eps) || !almostEqual(v.Y, want, eps) {
		t.Errorf("FromPolar = %v, want (%v,%v)", v, want, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(10, 20, 0, 0) // reversed corners must normalize
	if r.Min != (Vec2{0, 0}) || r.Max != (Vec2{10, 20}) {
		t.Fatalf("NewRect did not normalize: %+v", r)
	}
	if got := r.Width(); got != 10 {
		t.Errorf("Width = %v", got)
	}
	if got := r.Height(); got != 20 {
		t.Errorf("Height = %v", got)
	}
	if got := r.Area(); got != 200 {
		t.Errorf("Area = %v", got)
	}
	if got := r.Center(); got != (Vec2{5, 10}) {
		t.Errorf("Center = %v", got)
	}
	if got := r.Diagonal(); !almostEqual(got, math.Hypot(10, 20), eps) {
		t.Errorf("Diagonal = %v", got)
	}
}

func TestSquareIsPaperArea(t *testing.T) {
	// The paper's deployment area is 40000 m^2; a 200 m square.
	r := Square(200)
	if got := r.Area(); got != 40000 {
		t.Errorf("Area = %v, want 40000", got)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Square(100)
	tests := []struct {
		p        Vec2
		contains bool
		clamped  Vec2
	}{
		{Vec2{50, 50}, true, Vec2{50, 50}},
		{Vec2{0, 0}, true, Vec2{0, 0}},
		{Vec2{100, 100}, true, Vec2{100, 100}},
		{Vec2{-5, 50}, false, Vec2{0, 50}},
		{Vec2{105, -3}, false, Vec2{100, 0}},
		{Vec2{50, 200}, false, Vec2{50, 100}},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.contains {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.contains)
		}
		if got := r.Clamp(tt.p); got != tt.clamped {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.clamped)
		}
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEqual(got, tt.want, eps) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); !almostEqual(got, -0.2, eps) {
		t.Errorf("AngleDiff = %v, want -0.2", got)
	}
	// Crossing the wrap point picks the short way round.
	if got := AngleDiff(math.Pi-0.1, -math.Pi+0.1); !almostEqual(got, 0.2, eps) {
		t.Errorf("AngleDiff across wrap = %v, want 0.2", got)
	}
}

func TestDegreesRadians(t *testing.T) {
	if got := Degrees(math.Pi); !almostEqual(got, 180, eps) {
		t.Errorf("Degrees = %v", got)
	}
	if got := Radians(90); !almostEqual(got, math.Pi/2, eps) {
		t.Errorf("Radians = %v", got)
	}
}

// Property: Clamp always lands inside the rectangle.
func TestClampAlwaysInside(t *testing.T) {
	r := Square(200)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		return r.Contains(r.Clamp(Vec2{x, y}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rotation preserves vector length.
func TestRotatePreservesLength(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		// Limit magnitude to keep floating-point error proportional.
		v := Vec2{math.Mod(x, 1e6), math.Mod(y, 1e6)}
		th := math.Mod(theta, 2*math.Pi)
		return almostEqual(v.Rotate(th).Len(), v.Len(), 1e-6*(1+v.Len()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeAngle output is always in (-pi, pi].
func TestNormalizeAngleRange(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		got := NormalizeAngle(math.Mod(theta, 1e9))
		return got > -math.Pi-eps && got <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FromPolar(l, h) has length |l| and, for positive l, heading h.
func TestFromPolarRoundTrip(t *testing.T) {
	f := func(l, h float64) bool {
		if math.IsNaN(l) || math.IsNaN(h) || math.IsInf(l, 0) || math.IsInf(h, 0) {
			return true
		}
		length := 1 + math.Abs(math.Mod(l, 1e3))
		heading := NormalizeAngle(math.Mod(h, 2*math.Pi))
		v := FromPolar(length, heading)
		return almostEqual(v.Len(), length, 1e-9*length) &&
			math.Abs(AngleDiff(v.Heading(), heading)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
