package terrain

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0, 1); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := New(1, 25, -1); err == nil {
		t.Error("negative amplitude accepted")
	}
	if _, err := New(1, 25, 0); err != nil {
		t.Errorf("flat terrain rejected: %v", err)
	}
}

func TestFlatTerrainIsOne(t *testing.T) {
	f, err := New(1, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]float64{{0, 0}, {13.7, 99.2}, {-40, 250}} {
		if got := f.RoughnessAt(p[0], p[1]); got != 1 {
			t.Errorf("flat roughness at %v = %v, want 1", p, got)
		}
	}
}

func TestRoughnessRange(t *testing.T) {
	f, err := New(7, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		r := f.RoughnessAt(math.Mod(x, 1e6), math.Mod(y, 1e6))
		return r >= 1 && r <= 1+f.Amplitude()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(42, 25, 2)
	b, _ := New(42, 25, 2)
	for x := 0.0; x < 200; x += 7.3 {
		if a.RoughnessAt(x, x*1.7) != b.RoughnessAt(x, x*1.7) {
			t.Fatal("same-seed fields differ")
		}
	}
	c, _ := New(43, 25, 2)
	same := 0
	for x := 0.0; x < 200; x += 7.3 {
		if a.RoughnessAt(x, x*1.7) == c.RoughnessAt(x, x*1.7) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds look identical at %d points", same)
	}
}

// The field must be smooth: nearby points have nearby roughness.
func TestSmoothness(t *testing.T) {
	f, _ := New(5, 25, 3)
	var maxJump float64
	for x := 0.0; x < 500; x += 0.5 {
		a := f.RoughnessAt(x, 100)
		b := f.RoughnessAt(x+0.5, 100)
		if j := math.Abs(a - b); j > maxJump {
			maxJump = j
		}
	}
	// A 0.5 m step across 25 m features cannot jump more than a small
	// fraction of the amplitude.
	if maxJump > 0.3 {
		t.Errorf("max 0.5m jump = %v, field not smooth", maxJump)
	}
}

// The field must actually vary — a constant field would make the terrain
// experiment vacuous.
func TestVariation(t *testing.T) {
	f, _ := New(5, 25, 3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for x := 0.0; x < 1000; x += 11 {
		for y := 0.0; y < 1000; y += 13 {
			r := f.RoughnessAt(x, y)
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
	}
	if hi-lo < 1.5 {
		t.Errorf("field range [%v, %v] too flat for amplitude 3", lo, hi)
	}
}
