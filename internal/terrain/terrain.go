// Package terrain models uneven ground as a smooth deterministic
// roughness field. The paper's introduction motivates it directly: "the
// localization error is likely to be exacerbated by the uneven surfaces
// encountered in many application scenarios". Rough patches multiply the
// robots' odometry noise (wheel slip, attitude changes), which is exactly
// the regime where CoCoA's periodic RF fixes pay off the most.
//
// The field is value noise: a hash assigns each lattice point a stable
// pseudo-random roughness and positions in between interpolate bilinearly,
// so the field is smooth, deterministic in (seed, position), and needs no
// stored state.
package terrain

import (
	"fmt"
	"math"
)

// Field is a deterministic roughness field over the plane. RoughnessAt
// returns a multiplier in [1, 1+Amplitude] applied to odometry noise.
type Field struct {
	seed      int64
	cellM     float64
	amplitude float64
}

// New builds a field. cellM is the terrain feature size in meters;
// amplitude is the maximum extra roughness (0 = perfectly smooth ground,
// 3 = worst patches quadruple the odometry noise).
func New(seed int64, cellM, amplitude float64) (*Field, error) {
	if cellM <= 0 {
		return nil, fmt.Errorf("terrain: cell size %v must be positive", cellM)
	}
	if amplitude < 0 {
		return nil, fmt.Errorf("terrain: negative amplitude %v", amplitude)
	}
	return &Field{seed: seed, cellM: cellM, amplitude: amplitude}, nil
}

// Amplitude returns the configured maximum extra roughness.
func (f *Field) Amplitude() float64 { return f.amplitude }

// RoughnessAt returns the odometry-noise multiplier at position (x, y).
func (f *Field) RoughnessAt(x, y float64) float64 {
	if f.amplitude == 0 {
		return 1
	}
	gx := x / f.cellM
	gy := y / f.cellM
	x0 := math.Floor(gx)
	y0 := math.Floor(gy)
	tx := smooth(gx - x0)
	ty := smooth(gy - y0)

	v00 := f.lattice(int64(x0), int64(y0))
	v10 := f.lattice(int64(x0)+1, int64(y0))
	v01 := f.lattice(int64(x0), int64(y0)+1)
	v11 := f.lattice(int64(x0)+1, int64(y0)+1)

	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return 1 + f.amplitude*(top+(bot-top)*ty)
}

// smooth is the Perlin smoothstep easing, keeping the field C1-continuous
// across cell boundaries.
func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// lattice hashes a lattice point to a stable value in [0, 1).
func (f *Field) lattice(ix, iy int64) float64 {
	h := uint64(f.seed)
	h ^= uint64(ix) * 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= uint64(iy) * 0x94d049bb133111eb
	h = (h ^ (h >> 27)) * 0x2545f4914f6cdd1d
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
