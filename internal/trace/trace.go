// Package trace serializes run results for external analysis: the
// per-second error series as CSV (ready for gnuplot/pandas) and a stable
// JSON summary schema for dashboards and regression tracking. Both formats
// round-trip, so downstream tooling can be tested against this package.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cocoa/internal/cocoa"
	"cocoa/internal/metrics"
)

// Summary is the stable JSON schema describing one run.
type Summary struct {
	Mode             string  `json:"mode"`
	Localizer        string  `json:"localizer"`
	NumRobots        int     `json:"numRobots"`
	NumEquipped      int     `json:"numEquipped"`
	VMaxMps          float64 `json:"vmaxMps"`
	BeaconPeriodS    float64 `json:"beaconPeriodS"`
	TransmitPeriodS  float64 `json:"transmitPeriodS"`
	BeaconsPerWindow int     `json:"beaconsPerWindow"`
	DurationS        float64 `json:"durationS"`
	Seed             int64   `json:"seed"`
	Coordinated      bool    `json:"coordinated"`

	MeanErrorM     float64 `json:"meanErrorM"`
	MaxAvgErrorM   float64 `json:"maxAvgErrorM"`
	FixRate        float64 `json:"fixRate"`
	Fixes          int     `json:"fixes"`
	MissedWindows  int     `json:"missedWindows"`
	BeaconsApplied int     `json:"beaconsApplied"`
	SyncsReceived  int     `json:"syncsReceived"`

	TotalEnergyJ   float64 `json:"totalEnergyJ"`
	NoSleepEnergyJ float64 `json:"noSleepEnergyJ"`
	EnergySavings  float64 `json:"energySavings"`

	ReportsSent      int     `json:"reportsSent"`
	ReportsDelivered int     `json:"reportsDelivered"`
	ReportDelivery   float64 `json:"reportDelivery,omitempty"`

	MACFramesSent    int `json:"macFramesSent"`
	MACDelivered     int `json:"macDelivered"`
	MACCollided      int `json:"macCollided"`
	MACMissedAsleep  int `json:"macMissedAsleep"`
	MRMMDataSent     int `json:"mrmmDataSent"`
	MRMMForwarders   int `json:"mrmmForwarders"`
	MRMMQueriesSent  int `json:"mrmmQueriesSent"`
	MRMMDataDelivers int `json:"mrmmDataDelivers"`
}

// Summarize extracts the stable summary from a run result.
func Summarize(res *cocoa.Result) Summary {
	cfg := res.Config
	return Summary{
		Mode:             cfg.Mode.String(),
		Localizer:        cfg.Localizer.String(),
		NumRobots:        cfg.NumRobots,
		NumEquipped:      cfg.NumEquipped,
		VMaxMps:          cfg.VMax,
		BeaconPeriodS:    float64(cfg.BeaconPeriodS),
		TransmitPeriodS:  float64(cfg.TransmitPeriodS),
		BeaconsPerWindow: cfg.BeaconsPerWindow,
		DurationS:        float64(cfg.DurationS),
		Seed:             cfg.Seed,
		Coordinated:      cfg.Coordinated,

		MeanErrorM:     res.MeanError(),
		MaxAvgErrorM:   res.MaxAvgError(),
		FixRate:        res.FixRate(),
		Fixes:          res.Fixes,
		MissedWindows:  res.MissedWindows,
		BeaconsApplied: res.BeaconsApplied,
		SyncsReceived:  res.SyncsReceived,

		TotalEnergyJ:   res.TotalEnergyJ,
		NoSleepEnergyJ: res.NoSleepEnergyJ,
		EnergySavings:  res.EnergySavings(),

		ReportsSent:      res.ReportsSent,
		ReportsDelivered: res.ReportsDelivered,
		ReportDelivery:   reportDelivery(res),

		MACFramesSent:    res.MAC.Sent,
		MACDelivered:     res.MAC.Delivered,
		MACCollided:      res.MAC.Collided,
		MACMissedAsleep:  res.MAC.MissedAsleep,
		MRMMDataSent:     res.MRMM.DataSent,
		MRMMForwarders:   res.MRMM.BecameForwarder,
		MRMMQueriesSent:  res.MRMM.QueriesSent,
		MRMMDataDelivers: res.MRMM.DataDelivered,
	}
}

// reportDelivery returns the delivery rate, or 0 when reporting was off
// (the JSON field is omitted in that case).
func reportDelivery(res *cocoa.Result) float64 {
	if res.ReportsSent == 0 {
		return 0
	}
	return float64(res.ReportsDelivered) / float64(res.ReportsSent)
}

// WriteSummaryJSON writes the run summary as indented JSON.
func WriteSummaryJSON(w io.Writer, res *cocoa.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Summarize(res))
}

// ReadSummaryJSON parses a summary written by WriteSummaryJSON.
func ReadSummaryJSON(r io.Reader) (Summary, error) {
	var s Summary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Summary{}, fmt.Errorf("trace: decode summary: %w", err)
	}
	return s, nil
}

// WriteSeriesCSV writes the team-average error time series as CSV with a
// header row.
func WriteSeriesCSV(w io.Writer, res *cocoa.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "avg_error_m"}); err != nil {
		return err
	}
	for i := range res.Times {
		rec := []string{
			strconv.FormatFloat(res.Times[i], 'f', 3, 64),
			strconv.FormatFloat(res.AvgError[i], 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV parses a series written by WriteSeriesCSV.
func ReadSeriesCSV(r io.Reader) (*metrics.TimeSeries, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read series: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty series file")
	}
	if len(records[0]) != 2 || records[0][0] != "time_s" {
		return nil, fmt.Errorf("trace: unexpected header %v", records[0])
	}
	ts := &metrics.TimeSeries{}
	for i, rec := range records[1:] {
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", i+1, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d value: %w", i+1, err)
		}
		ts.Add(t, v)
	}
	return ts, nil
}

// WritePerRobotCSV writes the per-robot error matrix: one row per sample
// instant, one column per tracked robot, for CDF-style post-processing.
func WritePerRobotCSV(w io.Writer, res *cocoa.Result) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(res.TrackedIDs)+1)
	header = append(header, "time_s")
	for _, id := range res.TrackedIDs {
		header = append(header, "robot_"+strconv.Itoa(id))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for k := range res.Times {
		rec := make([]string, 0, len(header))
		rec = append(rec, strconv.FormatFloat(res.Times[k], 'f', 3, 64))
		for i := range res.TrackedIDs {
			rec = append(rec, strconv.FormatFloat(res.PerRobot[i][k], 'f', 6, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PerRobotMatrix is the parsed form of a WritePerRobotCSV file: the
// sample instants, the tracked robot IDs in column order, and Errors
// indexed [robot][sample] to mirror Result.PerRobot.
type PerRobotMatrix struct {
	Times  []float64
	IDs    []int
	Errors [][]float64
}

// ReadPerRobotCSV parses a matrix written by WritePerRobotCSV, verifying
// the header shape and that every row is rectangular.
func ReadPerRobotCSV(r io.Reader) (*PerRobotMatrix, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read per-robot matrix: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty per-robot file")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "time_s" {
		return nil, fmt.Errorf("trace: unexpected header %v", header)
	}
	m := &PerRobotMatrix{IDs: make([]int, len(header)-1)}
	for c, col := range header[1:] {
		idStr, ok := strings.CutPrefix(col, "robot_")
		if !ok {
			return nil, fmt.Errorf("trace: header column %d: %q is not robot_<id>", c+1, col)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, fmt.Errorf("trace: header column %d: %w", c+1, err)
		}
		m.IDs[c] = id
	}
	m.Errors = make([][]float64, len(m.IDs))
	for i, rec := range records[1:] {
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", i+1, err)
		}
		m.Times = append(m.Times, t)
		for c, cell := range rec[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d robot_%d: %w", i+1, m.IDs[c], err)
			}
			m.Errors[c] = append(m.Errors[c], v)
		}
	}
	return m, nil
}
