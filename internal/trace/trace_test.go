package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cocoa/internal/cocoa"
)

// smallRun executes one reduced deployment shared by the tests.
func smallRun(t *testing.T) *cocoa.Result {
	t.Helper()
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.BeaconPeriodS = 30
	cfg.DurationS = 120
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000
	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	res := smallRun(t)
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummaryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Summarize(res)
	if got != want {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Mode != "cocoa" || got.Localizer != "grid" {
		t.Errorf("summary identity fields: %+v", got)
	}
	if got.MeanErrorM <= 0 || math.IsNaN(got.MeanErrorM) {
		t.Errorf("MeanErrorM = %v", got.MeanErrorM)
	}
}

func TestReadSummaryJSONErrors(t *testing.T) {
	if _, err := ReadSummaryJSON(strings.NewReader("{not json")); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	res := smallRun(t)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	ts, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != len(res.Times) {
		t.Fatalf("round trip length %d, want %d", ts.Len(), len(res.Times))
	}
	for i := range res.Times {
		if math.Abs(ts.Times[i]-res.Times[i]) > 1e-3 {
			t.Fatalf("time[%d] = %v, want %v", i, ts.Times[i], res.Times[i])
		}
		if math.Abs(ts.Values[i]-res.AvgError[i]) > 1e-6 {
			t.Fatalf("value[%d] = %v, want %v", i, ts.Values[i], res.AvgError[i])
		}
	}
}

func TestReadSeriesCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n1,2\n",
		"time_s,avg_error_m\nnot-a-number,2\n",
		"time_s,avg_error_m\n1,not-a-number\n",
	}
	for i, in := range cases {
		if _, err := ReadSeriesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted malformed CSV %q", i, in)
		}
	}
}

func TestPerRobotCSVShape(t *testing.T) {
	res := smallRun(t)
	var buf bytes.Buffer
	if err := WritePerRobotCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Times)+1 {
		t.Fatalf("%d lines, want %d", len(lines), len(res.Times)+1)
	}
	header := strings.Split(lines[0], ",")
	if len(header) != len(res.TrackedIDs)+1 {
		t.Fatalf("header %v, want %d robot columns", header, len(res.TrackedIDs))
	}
	if header[0] != "time_s" || !strings.HasPrefix(header[1], "robot_") {
		t.Errorf("header = %v", header)
	}
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Fatalf("row %d has %d fields, want %d", i, got, len(header))
		}
	}
}

func TestSummaryCarriesReporting(t *testing.T) {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.BeaconPeriodS = 30
	cfg.DurationS = 120
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 40000
	cfg.EnableReporting = true
	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res)
	if s.ReportsSent == 0 {
		t.Fatal("summary lost the reporting counters")
	}
	if s.ReportDelivery <= 0 || s.ReportDelivery > 1 {
		t.Errorf("ReportDelivery = %v", s.ReportDelivery)
	}
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"reportsSent"`) {
		t.Error("JSON missing reportsSent")
	}
}

func TestPerRobotCSVRoundTrip(t *testing.T) {
	res := smallRun(t)
	var buf bytes.Buffer
	if err := WritePerRobotCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	m, err := ReadPerRobotCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.IDs) != len(res.TrackedIDs) {
		t.Fatalf("%d robot columns, want %d", len(m.IDs), len(res.TrackedIDs))
	}
	for i, id := range res.TrackedIDs {
		if m.IDs[i] != id {
			t.Fatalf("IDs[%d] = %d, want %d", i, m.IDs[i], id)
		}
	}
	if len(m.Times) != len(res.Times) {
		t.Fatalf("%d samples, want %d", len(m.Times), len(res.Times))
	}
	for k := range res.Times {
		if math.Abs(m.Times[k]-res.Times[k]) > 1e-3 {
			t.Fatalf("time[%d] = %v, want %v", k, m.Times[k], res.Times[k])
		}
	}
	for i := range m.IDs {
		if len(m.Errors[i]) != len(res.Times) {
			t.Fatalf("Errors[%d] has %d samples, want %d", i, len(m.Errors[i]), len(res.Times))
		}
		for k := range res.Times {
			if math.Abs(m.Errors[i][k]-res.PerRobot[i][k]) > 1e-6 {
				t.Fatalf("Errors[%d][%d] = %v, want %v", i, k, m.Errors[i][k], res.PerRobot[i][k])
			}
		}
	}
}

func TestReadPerRobotCSVErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty per-robot file"},
		{"wrong first column", "wrong,robot_0\n1,2\n", "unexpected header"},
		{"no robot columns", "time_s\n1\n", "unexpected header"},
		{"bad column name", "time_s,bot_0\n1,2\n", "is not robot_<id>"},
		{"non-numeric robot id", "time_s,robot_x\n1,2\n", "header column 1"},
		{"bad time", "time_s,robot_0\nnope,2\n", "row 1 time"},
		{"bad cell", "time_s,robot_3\n1,nope\n", "row 1 robot_3"},
		{"ragged row", "time_s,robot_0,robot_1\n1,2\n", "read per-robot matrix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadPerRobotCSV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted malformed CSV %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
