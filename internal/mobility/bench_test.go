package mobility

import (
	"testing"

	"cocoa/internal/sim"
)

func BenchmarkAdvance(b *testing.B) {
	w, err := NewWaypoint(DefaultConfig(2.0), sim.NewRNG(1).Stream("bench"))
	if err != nil {
		b.Fatal(err)
	}
	now := 0.0
	for i := 0; i < b.N; i++ {
		now += 1
		_ = w.Position(now)
	}
}
