package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

func newTestWaypoint(t *testing.T, vmax float64, seed int64) *Waypoint {
	t.Helper()
	w, err := NewWaypoint(DefaultConfig(vmax), sim.NewRNG(seed).Stream("mob"))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDefaultConfigValid(t *testing.T) {
	for _, vmax := range []float64{0.5, 2.0} {
		if err := DefaultConfig(vmax).Validate(); err != nil {
			t.Errorf("vmax=%v: %v", vmax, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"degenerate area", func(c *Config) { c.Area = geom.Rect{} }},
		{"zero vmin", func(c *Config) { c.VMin = 0 }},
		{"vmax below vmin", func(c *Config) { c.VMax = 0.05 }},
		{"negative rest", func(c *Config) { c.RestMin = -1 }},
		{"rest range inverted", func(c *Config) { c.RestMin = 5; c.RestMax = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig(2)
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("accepted invalid config")
			}
		})
	}
}

func TestStaysInsideArea(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 1)
	area := DefaultConfig(2.0).Area
	for now := 0.0; now <= 1800; now += 0.5 {
		if p := w.Position(now); !area.Contains(p) {
			t.Fatalf("position %v at t=%v outside area", p, now)
		}
	}
}

func TestSpeedBounds(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 2)
	prev := w.Position(0)
	for now := 1.0; now <= 1800; now++ {
		cur := w.Position(now)
		step := cur.Dist(prev)
		// One second of movement can straddle a waypoint (turn), so the
		// displacement can be shorter than the slowest speed but never
		// faster than vmax.
		if step > 2.0+1e-9 {
			t.Fatalf("moved %v m in 1 s, above vmax", step)
		}
		prev = cur
	}
}

func TestMovementActuallyProgresses(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 3)
	start := w.Position(0)
	end := w.Position(300)
	if start.Dist(end) == 0 && w.Legs() < 2 {
		t.Fatal("robot did not move in 300 s")
	}
	if w.Legs() < 1 {
		t.Fatal("no movement commands issued")
	}
}

func TestArrivalIssuesNewCommand(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 4)
	legs0 := w.Legs()
	// Long enough that several legs complete at up to 2 m/s across a
	// 200 m square (max leg ~283 m -> ~142 s).
	w.Position(1800)
	if w.Legs() <= legs0 {
		t.Fatalf("legs did not increase: %d", w.Legs())
	}
}

func TestVelocityConsistentWithDisplacement(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 5)
	w.Position(10)
	v := w.Velocity()
	if v.Len() == 0 {
		t.Skip("robot at rest at t=10 for this seed")
	}
	p0 := w.Position(10)
	p1 := w.Position(10.1)
	moved := p1.Sub(p0)
	// Unless a waypoint was crossed, displacement ~ velocity * dt.
	if w.Legs() == 1 && moved.Sub(v.Scale(0.1)).Len() > 1e-6 {
		t.Errorf("displacement %v inconsistent with velocity %v", moved, v)
	}
}

func TestHeadingMatchesVelocity(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 6)
	w.Position(5)
	v := w.Velocity()
	if v.Len() > 0 {
		if got, want := w.Heading(), v.Heading(); math.Abs(geom.AngleDiff(got, want)) > 1e-12 {
			t.Errorf("Heading = %v, velocity heading %v", got, want)
		}
	}
}

func TestRestSemantics(t *testing.T) {
	cfg := DefaultConfig(2.0)
	cfg.RestMin, cfg.RestMax = 10, 10
	w, err := NewWaypoint(cfg, sim.NewRNG(7).Stream("mob"))
	if err != nil {
		t.Fatal(err)
	}
	// Drive until the first arrival.
	var arriveT sim.Time
	prev := w.Position(0)
	for now := 1.0; now < 600; now++ {
		cur := w.Position(now)
		if cur == prev && w.RestRemaining(now) > 0 {
			arriveT = now
			break
		}
		prev = cur
	}
	if arriveT == 0 {
		t.Fatal("never observed a rest in 600 s")
	}
	if v := w.Velocity(); v.Len() != 0 {
		t.Errorf("velocity during rest = %v, want zero", v)
	}
	rem := w.RestRemaining(arriveT)
	if rem <= 0 || rem > 10 {
		t.Errorf("RestRemaining = %v, want (0,10]", rem)
	}
	// After the rest the robot moves again.
	pRest := w.Position(arriveT)
	pLater := w.Position(arriveT + 15)
	if pRest.Dist(pLater) == 0 {
		t.Error("robot did not resume after rest")
	}
}

func TestNoRestByDefault(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 8)
	for now := 0.0; now < 1800; now += 1 {
		w.Position(now)
		if w.RestRemaining(now) != 0 {
			t.Fatalf("unexpected rest at t=%v with zero rest config", now)
		}
	}
}

func TestHoldUntil(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 20)
	p10 := w.Position(10)
	w.HoldUntil(10, 60)
	if got := w.Position(40); got != p10 {
		t.Errorf("moved during hold: %v -> %v", p10, got)
	}
	if w.RestRemaining(40) != 20 {
		t.Errorf("RestRemaining = %v, want 20", w.RestRemaining(40))
	}
	if v := w.Velocity(); v.Len() != 0 {
		t.Errorf("velocity during hold = %v", v)
	}
	// Movement resumes after the hold.
	if got := w.Position(120); got == p10 {
		t.Error("robot did not resume after hold")
	}
}

func TestHoldUntilExtendsRest(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 21)
	w.Position(5)
	w.HoldUntil(5, 30)
	w.HoldUntil(10, 20) // shorter hold must not cut the existing one
	if got := w.RestRemaining(10); got != 20 {
		t.Errorf("RestRemaining = %v, want 20 (until t=30)", got)
	}
	w.HoldUntil(12, 50) // longer hold extends
	if got := w.RestRemaining(12); got != 38 {
		t.Errorf("RestRemaining = %v, want 38", got)
	}
}

func TestHoldUntilPastIsNoop(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 22)
	w.Position(10)
	w.HoldUntil(10, 5)
	if w.RestRemaining(10) != 0 {
		t.Error("hold in the past took effect")
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	w := newTestWaypoint(t, 2.0, 9)
	w.Position(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time reversal")
		}
	}()
	w.Position(5)
}

func TestNewWaypointAt(t *testing.T) {
	cfg := DefaultConfig(1.0)
	start := geom.Vec2{X: 50, Y: 60}
	w, err := NewWaypointAt(cfg, sim.NewRNG(10).Stream("mob"), start)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Position(0); got != start {
		t.Errorf("start position = %v, want %v", got, start)
	}
	// Out-of-area start positions are clamped.
	w2, err := NewWaypointAt(cfg, sim.NewRNG(11).Stream("mob"), geom.Vec2{X: -50, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Position(0); !cfg.Area.Contains(got) {
		t.Errorf("clamped start %v outside area", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := newTestWaypoint(t, 2.0, 42)
	b := newTestWaypoint(t, 2.0, 42)
	for now := 0.0; now < 500; now += 3.7 {
		if a.Position(now) != b.Position(now) {
			t.Fatalf("same-seed trajectories diverge at t=%v", now)
		}
	}
}

// Property: for any monotone query schedule, positions remain in the area
// and per-query displacement respects vmax.
func TestWaypointProperty(t *testing.T) {
	cfg := DefaultConfig(2.0)
	f := func(seed int64, steps []uint8) bool {
		w, err := NewWaypoint(cfg, sim.NewRNG(seed).Stream("mob"))
		if err != nil {
			return false
		}
		now := 0.0
		prev := w.Position(0)
		for _, s := range steps {
			dt := float64(s%100)/10 + 0.1
			now += dt
			cur := w.Position(now)
			if !cfg.Area.Contains(cur) {
				return false
			}
			if cur.Dist(prev) > cfg.VMax*dt*(1+1e-9)+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
