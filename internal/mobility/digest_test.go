package mobility

import (
	"testing"

	"cocoa/internal/checkpoint"
	"cocoa/internal/sim"
)

// HashState fingerprints the walker's kinematic state: stable on equal
// walkers, moved by advancing along the trajectory.
func TestHashState(t *testing.T) {
	sum := func(w *Waypoint) uint64 {
		h := checkpoint.NewHasher()
		w.HashState(h)
		return h.Sum()
	}
	mk := func(seed int64) *Waypoint {
		w, err := NewWaypoint(DefaultConfig(2), sim.NewRNG(seed).Stream("mob"))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := mk(5), mk(5)
	if sum(a) != sum(b) {
		t.Fatal("identical fresh walkers hash differently")
	}
	a.Position(500) // long enough to cross at least one leg boundary
	if sum(a) == sum(b) {
		t.Fatal("advancing did not change the digest")
	}
	b.Position(500)
	if sum(a) != sum(b) {
		t.Fatal("same advance produced a different digest")
	}
}
