// Package mobility implements the paper's robot movement model: as the
// simulation starts each robot is given a random command to move to a
// random destination in the deployment area at a speed chosen uniformly
// between 0.1 m/s and vmax; on arrival it receives a new random command.
// An optional rest period at each destination models the robot performing
// a task there; MRMM's mesh pruning consumes the resulting mobility
// knowledge (destination, speed, rest time).
package mobility

import (
	"cocoa/internal/checkpoint"
	"fmt"

	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// Config parameterizes the waypoint model.
type Config struct {
	// Area is the deployment area (paper: 40000 m^2).
	Area geom.Rect
	// VMin and VMax bound the uniformly drawn leg speed in m/s
	// (paper: 0.1 .. vmax with vmax in {0.5, 2.0}).
	VMin float64
	VMax float64
	// RestMin and RestMax bound the uniformly drawn pause at each
	// destination, in seconds. Zero models continuous movement.
	RestMin sim.Time
	RestMax sim.Time
}

// DefaultConfig returns the paper's movement parameters for the given
// maximum speed.
func DefaultConfig(vmax float64) Config {
	return Config{
		Area: geom.Square(200),
		VMin: 0.1,
		VMax: vmax,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Area.Width() <= 0 || c.Area.Height() <= 0:
		return fmt.Errorf("mobility: degenerate area %+v", c.Area)
	case c.VMin <= 0 || c.VMax < c.VMin:
		return fmt.Errorf("mobility: bad speed range [%v, %v]", c.VMin, c.VMax)
	case c.RestMin < 0 || c.RestMax < c.RestMin:
		return fmt.Errorf("mobility: bad rest range [%v, %v]", c.RestMin, c.RestMax)
	}
	return nil
}

// Waypoint is one robot's movement process. It is advanced lazily: callers
// ask for the position at a virtual time and the model replays any leg
// completions and new commands in between. Times must be non-decreasing.
//
// Positions are computed analytically from the current leg's origin
// (origin + direction * speed * elapsed), never accumulated across
// queries, so the trajectory is a pure function of the RNG stream and the
// query times' leg crossings: observing a robot's position at extra
// instants cannot perturb where it later is, to the last bit. The MAC's
// spatial index relies on this — it skips position queries for pruned
// receivers, which must not change the robots' paths (DESIGN.md §12).
type Waypoint struct {
	cfg Config
	rng *sim.RNG

	pos       geom.Vec2
	lastT     sim.Time
	origin    geom.Vec2 // position when the current leg began
	legT      sim.Time  // when the current leg began
	dest      geom.Vec2
	speed     float64
	restUntil sim.Time
	resting   bool
	legs      int

	// Cached leg constants, computed once per command: the leg length, the
	// arrival time, and the unit direction. They are pure functions of
	// (origin, dest, speed, legT), which are immutable for the leg's
	// lifetime, so caching them cannot change any position bit — it only
	// hoists a sqrt and a division out of every mid-leg query.
	legD   float64
	arrive sim.Time
	ux, uy float64
}

// NewWaypoint builds a movement process starting at a uniformly random
// position with its first command already issued.
func NewWaypoint(cfg Config, rng *sim.RNG) (*Waypoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Waypoint{cfg: cfg, rng: rng}
	w.pos = w.randomPoint()
	w.newCommand()
	return w, nil
}

// NewWaypointAt is NewWaypoint with a caller-chosen start position.
func NewWaypointAt(cfg Config, rng *sim.RNG, start geom.Vec2) (*Waypoint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Waypoint{cfg: cfg, rng: rng, pos: cfg.Area.Clamp(start)}
	w.newCommand()
	return w, nil
}

func (w *Waypoint) randomPoint() geom.Vec2 {
	return geom.Vec2{
		X: w.rng.Uniform(w.cfg.Area.Min.X, w.cfg.Area.Max.X),
		Y: w.rng.Uniform(w.cfg.Area.Min.Y, w.cfg.Area.Max.Y),
	}
}

// newCommand issues the next random movement command, anchoring the new
// leg at the robot's current position and time.
func (w *Waypoint) newCommand() {
	w.origin = w.pos
	w.legT = w.lastT
	w.dest = w.randomPoint()
	w.speed = w.rng.Uniform(w.cfg.VMin, w.cfg.VMax)
	w.resting = false
	w.legs++

	// Freeze the leg constants. The unit vector reuses legD: Dist and Len
	// share the same radicand (negation is exact), so dividing by legD is
	// bit-identical to Unit() and saves its second square root. legD == 0
	// legs never read ux/uy — arrival fires immediately.
	w.legD = w.origin.Dist(w.dest)
	w.arrive = w.legT + sim.Time(w.legD/w.speed)
	v := w.dest.Sub(w.origin)
	w.ux, w.uy = v.X/w.legD, v.Y/w.legD
}

// Position returns the robot's true position at time now, advancing the
// model. now must not precede a previously queried time.
func (w *Waypoint) Position(now sim.Time) geom.Vec2 {
	w.advance(now)
	return w.pos
}

// advance replays movement up to now.
func (w *Waypoint) advance(now sim.Time) {
	if now < w.lastT {
		panic(fmt.Sprintf("mobility: time went backwards: %v < %v", now, w.lastT))
	}
	for w.lastT < now {
		if w.resting {
			if now < w.restUntil {
				w.lastT = now
				return
			}
			w.lastT = w.restUntil
			w.newCommand()
			continue
		}
		// The leg's arrival time depends only on its origin, destination,
		// and speed — never on where along it the robot was last observed.
		if w.arrive <= now {
			w.pos = w.dest
			w.lastT = w.arrive
			rest := w.rng.Uniform(w.cfg.RestMin, w.cfg.RestMax)
			if rest > 0 {
				w.resting = true
				w.restUntil = w.lastT + rest
			} else {
				w.newCommand()
			}
			continue
		}
		// Mid-leg: recompute analytically from the frozen leg constants
		// (see newCommand). legD > 0 because legD == 0 would have taken
		// the arrival branch above.
		u := geom.Vec2{X: w.ux, Y: w.uy}
		w.pos = w.origin.Add(u.Scale(w.speed * (now - w.legT)))
		w.lastT = now
	}
}

// Velocity returns the robot's current velocity vector at the last advanced
// time (zero while resting or upon arrival).
func (w *Waypoint) Velocity() geom.Vec2 {
	if w.resting || w.pos == w.dest {
		return geom.Vec2{}
	}
	// The cached unit direction is bit-identical to Unit() (see newCommand).
	return geom.Vec2{X: w.ux, Y: w.uy}.Scale(w.speed)
}

// Heading returns the current movement heading in radians.
func (w *Waypoint) Heading() float64 { return w.Velocity().Heading() }

// Destination returns the current movement target — part of the mobility
// knowledge MRMM exploits.
func (w *Waypoint) Destination() geom.Vec2 { return w.dest }

// Speed returns the current commanded speed in m/s.
func (w *Waypoint) Speed() float64 { return w.speed }

// RestRemaining returns how much longer the robot will rest at its current
// position (zero when moving): the paper's d_rest.
func (w *Waypoint) RestRemaining(now sim.Time) sim.Time {
	if !w.resting || now >= w.restUntil {
		return 0
	}
	return w.restUntil - now
}

// Legs returns the number of movement commands issued so far.
func (w *Waypoint) Legs() int { return w.legs }

// HoldUntil commands the robot to stop where it is (as of now) and stay
// put until the given time, after which normal waypoint movement resumes
// with a fresh command. Cooperative-positioning schemes use this to park
// half the team as landmarks. Holding an already-resting robot extends
// its rest.
func (w *Waypoint) HoldUntil(now, until sim.Time) {
	w.advance(now)
	if until <= now {
		return
	}
	w.resting = true
	if !(w.restUntil > until) {
		w.restUntil = until
	}
}

// HashState folds the walker's full kinematic state — current position,
// leg endpoints and cached leg constants, rest timer — into h, for
// checkpoint digests.
func (w *Waypoint) HashState(h *checkpoint.Hasher) {
	h.F64(w.pos.X)
	h.F64(w.pos.Y)
	h.F64(float64(w.lastT))
	h.F64(w.origin.X)
	h.F64(w.origin.Y)
	h.F64(float64(w.legT))
	h.F64(w.dest.X)
	h.F64(w.dest.Y)
	h.F64(w.speed)
	h.F64(float64(w.restUntil))
	h.Bool(w.resting)
	h.Int(w.legs)
	h.F64(w.legD)
	h.F64(float64(w.arrive))
	h.F64(w.ux)
	h.F64(w.uy)
}
