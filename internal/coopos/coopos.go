// Package coopos implements the Cooperative Positioning baseline of
// Kurazume, Nagata and Hirose (ICRA 1994), the classic alternative the
// paper's related work describes: no robot carries a localization device;
// instead the team splits into two groups that alternate roles. While one
// group moves (dead-reckoning with odometry), the other stays put and acts
// as landmarks; at the end of each phase the movers re-fix their positions
// by ranging off the landmarks' *estimated* positions, then the roles
// swap. As the paper notes, "obviously this adds accumulated errors" —
// every fix inherits the landmarks' own drift, so unlike CoCoA the error
// grows without bound. This package quantifies that comparison.
//
// The exchange of range measurements at phase boundaries is modeled at the
// protocol level (direct calibrated-RSSI sampling between stationary
// robots) rather than through the contention MAC: the baseline's error
// dynamics are governed by the geometry and the ranging noise, not by
// channel contention among a handful of stationary nodes.
package coopos

import (
	"fmt"
	"math"

	"cocoa/internal/bayes"
	"cocoa/internal/caltable"
	"cocoa/internal/geom"
	"cocoa/internal/mobility"
	"cocoa/internal/odometry"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// Config describes one Cooperative Positioning run.
type Config struct {
	// NumRobots is the team size, split evenly into the two role groups.
	NumRobots int
	// Area is the deployment area.
	Area geom.Rect
	// VMax is the movers' maximum speed (speeds drawn as in the paper's
	// movement model).
	VMax float64
	// PhaseS is the movement-phase length before roles swap.
	PhaseS sim.Time
	// DurationS is the run length.
	DurationS sim.Time
	// SampleIntervalS is the metric cadence.
	SampleIntervalS sim.Time
	// GridCellM is the trilateration grid resolution.
	GridCellM float64
	// MaxRangeM is the ranging radius; landmarks beyond it contribute no
	// measurement.
	MaxRangeM float64
	// Seed drives all randomness.
	Seed int64

	// Radio, Odometry and Calibration default when zero-valued.
	Radio       radio.Model
	Odometry    odometry.Config
	Calibration caltable.Options
}

// DefaultConfig mirrors the CoCoA evaluation scale so the two systems are
// directly comparable.
func DefaultConfig() Config {
	return Config{
		NumRobots:       50,
		Area:            geom.Square(200),
		VMax:            2.0,
		PhaseS:          50,
		DurationS:       1800,
		SampleIntervalS: 1,
		GridCellM:       2,
		MaxRangeM:       160,
		Seed:            1,
		Radio:           radio.DefaultModel(),
		Odometry:        odometry.DefaultConfig(),
		Calibration:     caltable.DefaultOptions(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumRobots < 6:
		return fmt.Errorf("coopos: need at least 6 robots (3 landmarks per group)")
	case c.Area.Width() <= 0 || c.Area.Height() <= 0:
		return fmt.Errorf("coopos: degenerate area")
	case c.VMax <= 0.1:
		return fmt.Errorf("coopos: VMax must exceed 0.1 m/s")
	case c.PhaseS <= 0:
		return fmt.Errorf("coopos: PhaseS must be positive")
	case c.DurationS <= 0:
		return fmt.Errorf("coopos: DurationS must be positive")
	case c.SampleIntervalS <= 0:
		return fmt.Errorf("coopos: SampleIntervalS must be positive")
	case c.GridCellM <= 0:
		return fmt.Errorf("coopos: GridCellM must be positive")
	case c.MaxRangeM <= 0:
		return fmt.Errorf("coopos: MaxRangeM must be positive")
	}
	if err := c.Radio.Validate(); err != nil {
		return err
	}
	if err := c.Odometry.Validate(); err != nil {
		return err
	}
	return c.Calibration.Validate()
}

// Result holds the baseline's measurements in the same shape as a CoCoA
// run, so figures can overlay them.
type Result struct {
	Times    []float64
	AvgError []float64
	Fixes    int
	NoFixes  int // phase boundaries where a mover saw <3 landmarks
}

// MeanError returns the time-averaged team error.
func (r *Result) MeanError() float64 {
	if len(r.AvgError) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range r.AvgError {
		s += v
	}
	return s / float64(len(r.AvgError))
}

// FinalError returns the last sampled team error.
func (r *Result) FinalError() float64 {
	if len(r.AvgError) == 0 {
		return math.NaN()
	}
	return r.AvgError[len(r.AvgError)-1]
}

// cpRobot is one baseline team member.
type cpRobot struct {
	way   *mobility.Waypoint
	reck  *odometry.DeadReckoner
	est   geom.Vec2
	group int
}

// Run executes the Cooperative Positioning baseline.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	table, err := caltable.Shared(cfg.Radio, cfg.Calibration, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	chanRng := root.Stream("channel")

	mobCfg := mobility.Config{Area: cfg.Area, VMin: 0.1, VMax: cfg.VMax}
	robots := make([]*cpRobot, cfg.NumRobots)
	for i := range robots {
		way, err := mobility.NewWaypoint(mobCfg, root.StreamN("mobility", i))
		if err != nil {
			return nil, err
		}
		start := way.Position(0)
		reck, err := odometry.NewDeadReckoner(cfg.Odometry, root.StreamN("odometry", i), start)
		if err != nil {
			return nil, err
		}
		robots[i] = &cpRobot{way: way, reck: reck, est: start, group: i % 2}
	}

	grid, err := bayes.NewGrid(cfg.Area, cfg.GridCellM)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	dt := float64(cfg.SampleIntervalS)
	phase := 0
	nextSwap := cfg.PhaseS
	lastPos := make([]geom.Vec2, len(robots))
	for i, r := range robots {
		lastPos[i] = r.way.Position(0)
		// Group 1 holds first while group 0 moves.
		if r.group != phase%2 {
			r.way.HoldUntil(0, nextSwap)
		}
	}

	for now := dt; now <= float64(cfg.DurationS); now += dt {
		// Advance movement and dead reckoning.
		for i, r := range robots {
			cur := r.way.Position(now)
			r.reck.Step(cur.Sub(lastPos[i]), dt)
			lastPos[i] = cur
			r.est = r.reck.Estimate()
		}

		// Phase boundary: movers fix off the stationary group, then swap.
		if now >= float64(nextSwap) {
			movers := phase % 2
			fixMovers(cfg, robots, movers, now, grid, table, chanRng, res)
			phase++
			nextSwap += cfg.PhaseS
			for _, r := range robots {
				if r.group != phase%2 {
					// New landmarks: park where they are.
					r.way.HoldUntil(now, nextSwap)
				} else {
					// New movers resume; ensure any residual hold ends.
					r.way.HoldUntil(now, now)
				}
			}
		}

		// Sample team error.
		var sum float64
		for i, r := range robots {
			sum += r.est.Dist(lastPos[i])
		}
		res.Times = append(res.Times, now)
		res.AvgError = append(res.AvgError, sum/float64(len(robots)))
	}
	return res, nil
}

// fixMovers re-localizes every robot in the moving group by ranging off
// the stationary group's estimated positions.
func fixMovers(cfg Config, robots []*cpRobot, movers int, now float64,
	grid *bayes.Grid, table *caltable.Table, chanRng *sim.RNG, res *Result) {
	for _, r := range robots {
		if r.group != movers {
			continue
		}
		grid.Reset()
		truePos := r.way.Position(now)
		applied := 0
		for _, lm := range robots {
			if lm.group == movers {
				continue
			}
			d := truePos.Dist(lm.way.Position(now))
			if d > cfg.MaxRangeM {
				continue
			}
			rssi := cfg.Radio.SampleRSSI(d, chanRng)
			pdf, ok := table.Lookup(rssi)
			if !ok {
				continue
			}
			// The landmark advertises its own (drifted) estimate, not
			// its true position: this is where Cooperative Positioning
			// accumulates error.
			grid.ApplyBeacon(lm.est, pdf)
			applied++
		}
		if applied >= bayes.MinBeacons {
			fix := grid.Estimate()
			r.est = fix
			r.reck.Reanchor(fix)
			res.Fixes++
		} else {
			res.NoFixes++
		}
	}
}
