package coopos

import (
	"math"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumRobots = 16
	cfg.DurationS = 400
	cfg.PhaseS = 40
	cfg.GridCellM = 4
	cfg.Calibration.Samples = 60000
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few robots", func(c *Config) { c.NumRobots = 4 }},
		{"degenerate area", func(c *Config) { c.Area.Max = c.Area.Min }},
		{"vmax floor", func(c *Config) { c.VMax = 0.05 }},
		{"zero phase", func(c *Config) { c.PhaseS = 0 }},
		{"zero duration", func(c *Config) { c.DurationS = 0 }},
		{"zero sampling", func(c *Config) { c.SampleIntervalS = 0 }},
		{"zero grid", func(c *Config) { c.GridCellM = 0 }},
		{"zero range", func(c *Config) { c.MaxRangeM = 0 }},
		{"bad radio", func(c *Config) { c.Radio.BitrateBps = 0 }},
		{"bad odometry", func(c *Config) { c.Odometry.DispSigmaPerSec = -1 }},
		{"bad calibration", func(c *Config) { c.Calibration.Samples = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("accepted invalid config")
			}
		})
	}
}

func TestRunProducesFixes(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixes == 0 {
		t.Fatal("no cooperative fixes in 10 phases")
	}
	if len(res.Times) == 0 || len(res.Times) != len(res.AvgError) {
		t.Fatalf("series malformed: %d/%d", len(res.Times), len(res.AvgError))
	}
	for i, v := range res.AvgError {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("degenerate error %v at %d", v, i)
		}
	}
}

// The defining property of Cooperative Positioning: fixes inherit the
// landmarks' drift, so the team's error accumulates over phases — in
// contrast to CoCoA, whose anchors never drift. The accumulation is a
// common-mode random walk, strongest with few landmarks, so the test uses
// a small team and averages over seeds.
func TestErrorAccumulatesAcrossPhases(t *testing.T) {
	var early, late float64
	const seeds = 3
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := testConfig()
		cfg.NumRobots = 10
		cfg.DurationS = 1800
		cfg.PhaseS = 30
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		early += windowMean(res, 100, 400)
		late += windowMean(res, 1400, 1800)
	}
	early /= seeds
	late /= seeds
	if late <= 1.3*early {
		t.Errorf("error did not accumulate: early %.2f m, late %.2f m", early, late)
	}
}

// Landmark averaging suppresses the common-mode drift: a large team
// accumulates far slower than a small one.
func TestMoreLandmarksSlowAccumulation(t *testing.T) {
	lateFor := func(n int) float64 {
		var sum float64
		const seeds = 3
		for seed := int64(1); seed <= seeds; seed++ {
			cfg := testConfig()
			cfg.NumRobots = n
			cfg.DurationS = 1800
			cfg.PhaseS = 30
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sum += windowMean(res, 1400, 1800)
		}
		return sum / seeds
	}
	small, large := lateFor(10), lateFor(50)
	if large >= small {
		t.Errorf("50-robot late error %.1f m not below 10-robot %.1f m", large, small)
	}
}

func windowMean(res *Result, lo, hi float64) float64 {
	var s float64
	n := 0
	for i, t := range res.Times {
		if t >= lo && t <= hi {
			s += res.AvgError[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// Cooperative Positioning starts from known positions, so it beats
// odometry-only early on: the first fixes keep error near the ranging
// noise instead of pure dead-reckoning drift.
func TestBetterThanNothingEarly(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if early := windowMean(res, 50, 150); early > 30 {
		t.Errorf("early error %.1f m implausibly high for a scheme with true initial positions", early)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanError() != b.MeanError() {
		t.Errorf("same seed diverged: %v vs %v", a.MeanError(), b.MeanError())
	}
}

func TestResultHelpers(t *testing.T) {
	empty := &Result{}
	if !math.IsNaN(empty.MeanError()) || !math.IsNaN(empty.FinalError()) {
		t.Error("empty result stats must be NaN")
	}
	r := &Result{Times: []float64{1, 2}, AvgError: []float64{2, 4}}
	if r.MeanError() != 3 || r.FinalError() != 4 {
		t.Errorf("helpers: mean=%v final=%v", r.MeanError(), r.FinalError())
	}
}
