package cocoa

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"

	"cocoa/internal/checkpoint"
	"cocoa/internal/sim"
)

// CheckpointSpec configures mid-run snapshotting (Config.Checkpoint).
//
// A snapshot is taken after every EveryTicks-th sampling tick and
// atomically replaces Dir/latest.ckpt, so the file always holds the most
// recent consistent capture point. Resume replays the run from tick zero
// and verifies the replayed state against the snapshot's digests at the
// capture tick (see internal/checkpoint and DESIGN.md §14) — byte-identity
// of the resumed Result holds by construction, and a digest mismatch
// surfaces as a *checkpoint.DivergenceError instead of silently wrong
// numbers.
//
// The spec is deliberately excluded from the Config's JSON form (and
// therefore from Result bytes and from the snapshot's embedded config):
// where and how often a run checkpoints is an operational property of the
// process executing it, not of the experiment, so two runs differing only
// here stay byte-identical and a resumed run re-checkpoints only if its
// operator asks again.
type CheckpointSpec struct {
	// EveryTicks is the snapshot cadence in sampling ticks; 0 with a
	// non-empty Dir means DefaultCheckpointEveryTicks.
	EveryTicks int
	// Dir is the directory holding latest.ckpt; created on first write.
	Dir string
}

// Enabled reports whether the spec asks for snapshotting.
func (s CheckpointSpec) Enabled() bool { return s.EveryTicks != 0 || s.Dir != "" }

const (
	// DefaultCheckpointEveryTicks is the snapshot cadence when a spec
	// names a directory but no cadence.
	DefaultCheckpointEveryTicks = 60
	// CheckpointFile is the file name the default sink maintains in
	// CheckpointSpec.Dir.
	CheckpointFile = "latest.ckpt"
)

// OnCheckpoint arms a custom checkpoint sink on a team that has not run
// yet: after every everyTicks-th sampling tick (minimum 1) a snapshot is
// captured and handed to fn. It overrides Config.Checkpoint's default
// file sink. fn runs on the event loop; returning an error stops the run
// and RunContext returns that error — returning checkpoint.ErrStop is the
// idiomatic "stop here, the snapshot is the output" (the differential
// harness's interrupt model).
func (t *Team) OnCheckpoint(everyTicks int, fn func(*checkpoint.Snapshot) error) {
	if everyTicks < 1 {
		everyTicks = 1
	}
	t.ckptEvery = everyTicks
	t.ckptHook = fn
}

// SetCheckpointLabel attaches free-form provenance (a job ID, an
// experiment name) to every snapshot this team captures.
func (t *Team) SetCheckpointLabel(label string) { t.ckptLabel = label }

// armCheckpoints resolves Config.Checkpoint into the default file sink.
// A sink installed through OnCheckpoint wins.
func (t *Team) armCheckpoints() {
	if t.ckptHook != nil || !t.cfg.Checkpoint.Enabled() {
		return
	}
	spec := t.cfg.Checkpoint
	every := spec.EveryTicks
	if every <= 0 {
		every = DefaultCheckpointEveryTicks
	}
	path := filepath.Join(spec.Dir, CheckpointFile)
	t.ckptEvery = every
	t.ckptHook = func(s *checkpoint.Snapshot) error {
		return checkpoint.WriteFile(path, s)
	}
}

// maxSampleTicks is how many sampling ticks a run of cfg executes (ticks
// fire at SampleIntervalS, 2·SampleIntervalS, …, up to DurationS
// inclusive).
func maxSampleTicks(cfg Config) int {
	return int(math.Floor(float64(cfg.DurationS)/float64(cfg.SampleIntervalS) + 1e-9))
}

// onSampleTick runs the checkpoint machinery at the end of every sampling
// tick: first verify a pending resume snapshot if this is its tick, then
// capture if the cadence says so. Any error stops the event loop and is
// surfaced by RunContext.
func (t *Team) onSampleTick(res *Result, now sim.Time) {
	t.ticks++
	if t.verify != nil && t.ticks == t.verify.TickIndex {
		snap := t.verify
		t.verify = nil
		if err := t.verifyDigests(snap, res); err != nil {
			t.ckptErr = err
			t.sim.Stop()
			return
		}
	}
	if t.ckptHook != nil && t.ckptEvery > 0 && t.ticks%t.ckptEvery == 0 {
		if err := t.capture(res, now); err != nil {
			t.ckptErr = err
			t.sim.Stop()
		}
	}
}

// capture takes a snapshot at the current tick and hands it to the sink.
func (t *Team) capture(res *Result, now sim.Time) error {
	snap, err := t.snapshotAt(res, now)
	if err != nil {
		return err
	}
	if t.tracer != nil {
		t.tracer.Instant(0, "checkpoint", float64(now), map[string]any{
			"tick": t.ticks, "label": t.ckptLabel,
		})
	}
	return t.ckptHook(snap)
}

// snapshotAt materializes the snapshot for the just-completed tick.
func (t *Team) snapshotAt(res *Result, now sim.Time) (*checkpoint.Snapshot, error) {
	cfgJSON, err := json.Marshal(t.cfg)
	if err != nil {
		return nil, fmt.Errorf("cocoa: checkpoint config: %w", err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("cocoa: checkpoint result: %w", err)
	}
	return &checkpoint.Snapshot{
		TickIndex:  t.ticks,
		SimNowS:    float64(now),
		Label:      t.ckptLabel,
		ConfigJSON: cfgJSON,
		ResultJSON: resJSON,
		Digests:    t.digests(res),
	}, nil
}

// stateHasher is the capability every digestable subsystem implements.
type stateHasher interface {
	HashState(h *checkpoint.Hasher)
}

// digests fingerprints every deterministic subsystem at a tick boundary,
// in a fixed order. All HashState implementations are side-effect free, so
// taking a snapshot cannot perturb the run. The set is chosen for
// bisection power, not completeness — resume correctness comes from
// deterministic replay, and state not digested individually (e.g. the
// geounicast agents' neighbor caches) still reflects into the rng, mac,
// and result digests through its effects.
func (t *Team) digests(res *Result) []checkpoint.Digest {
	ds := make([]checkpoint.Digest, 0, 10)
	add := func(name string, fn func(h *checkpoint.Hasher)) {
		h := checkpoint.NewHasher()
		fn(h)
		ds = append(ds, checkpoint.Digest{Name: name, Sum: h.Sum()})
	}
	add("sim", func(h *checkpoint.Hasher) {
		h.F64(float64(t.sim.Now()))
		h.U64(t.sim.Processed())
		h.Int(t.sim.Pending())
	})
	add("rng", t.root.HashTree)
	add("mobility", func(h *checkpoint.Hasher) {
		for _, r := range t.robots {
			r.way.HashState(h)
		}
	})
	add("odometry", func(h *checkpoint.Hasher) {
		for _, r := range t.robots {
			r.reckoner.HashState(h)
		}
	})
	add("localizer", func(h *checkpoint.Hasher) {
		for _, r := range t.robots {
			hs, ok := r.loc.(stateHasher)
			h.Bool(ok)
			if ok {
				hs.HashState(h)
			}
		}
	})
	add("robots", func(h *checkpoint.Hasher) {
		for _, r := range t.robots {
			h.F64(r.estimate.X)
			h.F64(r.estimate.Y)
			h.Bool(r.haveFix)
			h.Bool(r.scheduleKnown)
			h.F64(r.clockErr)
			h.Bool(r.syncedThisPeriod)
			h.Bool(r.failed)
			h.Bool(r.crashed)
			h.F64(r.lastSyncPos.X)
			h.F64(r.lastSyncPos.Y)
			h.Bool(r.haveSyncPos)
			h.F64(r.lastTruePos.X)
			h.F64(r.lastTruePos.Y)
			h.Int(len(r.pending))
			for i := range r.pending {
				h.F64(r.pending[i].pos.X)
				h.F64(r.pending[i].pos.Y)
			}
			h.Int(r.fixes)
			h.Int(r.missedWindows)
			h.Int(r.beaconsApplied)
			h.Int(r.syncsReceived)
		}
		h.Int(t.reportsSent)
		h.Int(t.reportsDelivered)
		h.Int(t.reportHops)
		h.Int(t.crashes)
	})
	add("mac", t.med.HashState)
	add("energy", func(h *checkpoint.Hasher) {
		for _, r := range t.robots {
			r.nic.Meter().HashState(h)
		}
	})
	add("faults", func(h *checkpoint.Hasher) {
		h.Int(len(t.links))
		for _, l := range t.links {
			l.HashState(h)
		}
	})
	add("result", func(h *checkpoint.Hasher) {
		h.Int(len(res.Times))
		for i := range res.Times {
			h.F64(res.Times[i])
			h.F64(res.AvgError[i])
		}
		for i := range res.PerRobot {
			for _, v := range res.PerRobot[i] {
				h.F64(v)
			}
		}
	})
	return ds
}

// verifyDigests compares the replayed state against the snapshot at its
// capture tick. A digest-set shape difference (another code revision wrote
// the snapshot) reports the pseudo-subsystem "layout".
func (t *Team) verifyDigests(snap *checkpoint.Snapshot, res *Result) error {
	live := t.digests(res)
	layoutOK := len(live) == len(snap.Digests)
	if layoutOK {
		for i := range live {
			if live[i].Name != snap.Digests[i].Name {
				layoutOK = false
				break
			}
		}
	}
	if !layoutOK {
		return &checkpoint.DivergenceError{Tick: t.ticks, Subsystems: []string{"layout"}}
	}
	var bad []string
	for i := range live {
		if live[i].Sum != snap.Digests[i].Sum {
			bad = append(bad, live[i].Name)
		}
	}
	if len(bad) > 0 {
		return &checkpoint.DivergenceError{Tick: t.ticks, Subsystems: bad}
	}
	return nil
}

// ConfigFromSnapshot decodes and validates the run configuration embedded
// in snap. Malformed snapshots fail with a *checkpoint.FormatError
// (wrapping checkpoint.ErrCorrupt); configurations that decode but fail
// validation surface the usual *ConfigError.
func ConfigFromSnapshot(snap *checkpoint.Snapshot) (Config, error) {
	if snap == nil {
		return Config{}, &checkpoint.FormatError{Reason: "nil snapshot"}
	}
	if err := snap.Validate(); err != nil {
		return Config{}, err
	}
	var cfg Config
	if err := json.Unmarshal(snap.ConfigJSON, &cfg); err != nil {
		return Config{}, &checkpoint.FormatError{Reason: fmt.Sprintf("decode config: %v", err)}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// ResumeTeamScratch builds the replay team continuing snap under cfg on a
// reusable run slot (nil sc degenerates to a fresh team). cfg is normally
// ConfigFromSnapshot's output, optionally with operational fields (e.g.
// Checkpoint) overridden; semantic divergence from the snapshot's config
// is caught by digest verification at the capture tick, so a tampered cfg
// cannot silently masquerade as a resumed run. Running the returned team
// replays from tick zero, verifies against the snapshot at its tick, and
// continues to completion with a Result byte-identical to an uninterrupted
// run's.
func ResumeTeamScratch(cfg Config, snap *checkpoint.Snapshot, sc *Scratch) (*Team, error) {
	if snap == nil {
		return nil, &checkpoint.FormatError{Reason: "nil snapshot"}
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if max := maxSampleTicks(cfg); snap.TickIndex > max {
		return nil, &checkpoint.FormatError{
			Reason: fmt.Sprintf("snapshot tick %d beyond the run's %d sampling ticks", snap.TickIndex, max),
		}
	}
	team, err := NewTeamScratch(cfg, sc)
	if err != nil {
		return nil, err
	}
	team.verify = snap
	return team, nil
}

// ResumeTeam is ResumeTeamScratch without a scratch.
func ResumeTeam(cfg Config, snap *checkpoint.Snapshot) (*Team, error) {
	return ResumeTeamScratch(cfg, snap, nil)
}

// ResumeFrom continues the run captured in snap to completion under ctx:
// the embedded config is decoded, the run is replayed deterministically
// from tick zero, the replayed state is verified against the snapshot's
// digests at its capture tick (mismatch: *checkpoint.DivergenceError), and
// the completed Result — byte-identical to an uninterrupted run of the
// same config — is returned.
func ResumeFrom(ctx context.Context, snap *checkpoint.Snapshot) (*Result, error) {
	cfg, err := ConfigFromSnapshot(snap)
	if err != nil {
		return nil, err
	}
	team, err := ResumeTeam(cfg, snap)
	if err != nil {
		return nil, err
	}
	return team.RunContext(ctx)
}
