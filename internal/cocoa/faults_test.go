package cocoa

import (
	"math"
	"testing"

	"cocoa/internal/faults"
)

// Fault-injection integration: the faults layer composed with the full
// stack (NIC filter, crash outages, RSSI outliers, clock skew).

// A constructed-but-disabled fault config must be indistinguishable from
// the zero value: no filter installed, no RNG stream consumed, every
// counter and metric identical to the clean run.
func TestDisabledFaultConfigIsNoOp(t *testing.T) {
	clean, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Faults.GE = faults.Bursty(0, 6) // zero rate -> disabled channel
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanError() != clean.MeanError() {
		t.Errorf("disabled faults changed error: %v vs %v", res.MeanError(), clean.MeanError())
	}
	if res.TotalEnergyJ != clean.TotalEnergyJ {
		t.Errorf("disabled faults changed energy: %v vs %v", res.TotalEnergyJ, clean.TotalEnergyJ)
	}
	if res.Fixes != clean.Fixes || res.MAC.Sent != clean.MAC.Sent {
		t.Errorf("disabled faults changed counters: fixes %d vs %d, sent %d vs %d",
			res.Fixes, clean.Fixes, res.MAC.Sent, clean.MAC.Sent)
	}
	if res.FaultDrops != 0 || res.RSSIOutliers != 0 || res.Crashes != 0 {
		t.Errorf("fault counters nonzero on a clean run: %+v", res)
	}
}

// Bursty loss must eat frames and cost fixes, but the run completes with
// finite, bounded errors — graceful degradation, not collapse.
func TestBurstyLossDegradesCoverage(t *testing.T) {
	clean, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Faults.GE = faults.Bursty(0.5, 4)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultDrops == 0 {
		t.Fatal("50% bursty loss dropped nothing")
	}
	if res.FixRate() >= clean.FixRate() {
		t.Errorf("fix rate did not degrade under loss: %v vs clean %v",
			res.FixRate(), clean.FixRate())
	}
	for i, v := range res.AvgError {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("degenerate error %v at sample %d", v, i)
		}
	}
}

// Crash outages: the configured fraction crashes (never the Sync robot),
// recoveries follow, and the team localizes worse while members are dark.
func TestCrashRecoveryCycle(t *testing.T) {
	clean, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Faults.CrashFraction = 0.25
	cfg.Faults.CrashMeanDownS = 60
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashes, recovers := map[int]int{}, map[int]int{}
	team.Observe(func(e Event) {
		switch e.Kind {
		case EventCrash:
			crashes[e.Robot]++
		case EventRecover:
			recovers[e.Robot]++
		}
	})
	res, err := team.Run()
	if err != nil {
		t.Fatal(err)
	}

	wantK := 3 // round(0.25 * 12)
	if res.Crashes != wantK || len(crashes) != wantK {
		t.Errorf("crashes = %d (robots %v), want %d", res.Crashes, crashes, wantK)
	}
	if crashes[0] != 0 {
		t.Error("the Sync robot crashed; the schedule must survive")
	}
	for id, n := range crashes {
		if n != 1 {
			t.Errorf("robot %d crashed %d times, want once", id, n)
		}
		if recovers[id] > 1 {
			t.Errorf("robot %d recovered %d times", id, recovers[id])
		}
	}
	if res.MissedWindows <= clean.MissedWindows {
		t.Errorf("crashed windows not counted as missed: %d <= clean %d",
			res.MissedWindows, clean.MissedWindows)
	}
}

// With CrashMeanDownS zero, crashed robots stay down for good: no recover
// events, and the outage shows up in the energy ledger as Off time.
func TestPermanentCrashes(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.CrashFraction = 0.25
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	team.Observe(func(e Event) {
		if e.Kind == EventRecover {
			recovered++
		}
	})
	res, err := team.Run()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Errorf("%d permanent crashes recovered", recovered)
	}
	if res.Crashes != 3 {
		t.Errorf("crashes = %d, want 3", res.Crashes)
	}
}

// RSSI outlier spikes feed corrupted measurements into the Bayesian
// update; the estimator must absorb them without NaNs or unbounded error.
func TestOutlierSpikesSurvivable(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.OutlierProb = 0.4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RSSIOutliers == 0 {
		t.Fatal("no outliers injected at p=0.4")
	}
	if res.FaultDrops != 0 {
		t.Errorf("outlier-only config dropped %d frames", res.FaultDrops)
	}
	diag := cfg.Area.Diagonal()
	for i, v := range res.AvgError {
		if math.IsNaN(v) || v < 0 || v > diag {
			t.Fatalf("degenerate error %v at sample %d", v, i)
		}
	}
}

// Initial clock skew delays beacons and sleep timers, but the SYNC
// machinery heals it; with SYNC disabled the skew persists and coverage
// must be no better.
func TestClockSkewHealedBySync(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.SkewMaxS = 1.5
	synced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableSync = true
	unsynced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if synced.FixRate() < unsynced.FixRate() {
		t.Errorf("SYNC-healed skew fixed less than persistent skew: %v < %v",
			synced.FixRate(), unsynced.FixRate())
	}
	if synced.SyncsReceived == 0 {
		t.Error("no SYNC messages received in the healing run")
	}
}

// The acceptance scenario: 50% burst loss and 20% of the team crashed at
// once. The run must complete, and both headline robustness metrics must
// be strictly worse than the clean run.
func TestSevereFaultsGracefulDegradation(t *testing.T) {
	clean, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Faults.GE = faults.Bursty(0.5, 4)
	cfg.Faults.CrashFraction = 0.2
	cfg.Faults.CrashMeanDownS = 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanError() <= clean.MeanError() {
		t.Errorf("mean error did not degrade: faulty %v <= clean %v",
			res.MeanError(), clean.MeanError())
	}
	if res.UncoveredFraction() <= clean.UncoveredFraction() {
		t.Errorf("uncovered fraction did not degrade: faulty %v <= clean %v",
			res.UncoveredFraction(), clean.UncoveredFraction())
	}
	if res.Crashes == 0 || res.FaultDrops == 0 {
		t.Errorf("fault machinery idle: crashes=%d drops=%d", res.Crashes, res.FaultDrops)
	}
}

// Faulty runs are as reproducible as clean ones: every fault source draws
// from its own named stream.
func TestFaultDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Faults.GE = faults.Bursty(0.3, 5)
	cfg.Faults.OutlierProb = 0.2
	cfg.Faults.CrashFraction = 0.25
	cfg.Faults.CrashMeanDownS = 45
	cfg.Faults.SkewMaxS = 0.5

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanError() != b.MeanError() || a.TotalEnergyJ != b.TotalEnergyJ {
		t.Errorf("same seed, different results: %v/%v vs %v/%v",
			a.MeanError(), a.TotalEnergyJ, b.MeanError(), b.TotalEnergyJ)
	}
	if a.FaultDrops != b.FaultDrops || a.RSSIOutliers != b.RSSIOutliers || a.Crashes != b.Crashes {
		t.Errorf("fault counters diverged: %d/%d/%d vs %d/%d/%d",
			a.FaultDrops, a.RSSIOutliers, a.Crashes,
			b.FaultDrops, b.RSSIOutliers, b.Crashes)
	}
}

// UncoveredFraction is 1 - FixRate and NaN without opportunities.
func TestUncoveredFraction(t *testing.T) {
	r := &Result{Fixes: 30, MissedWindows: 10}
	if got := r.UncoveredFraction(); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("UncoveredFraction = %v, want 0.25", got)
	}
	if got := (&Result{}).UncoveredFraction(); !math.IsNaN(got) {
		t.Errorf("empty result UncoveredFraction = %v, want NaN", got)
	}
}
