package cocoa

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cocoa/internal/checkpoint"
)

// ckptTestConfig is a small, fast deployment for checkpoint-machinery
// tests: 12 sampling ticks, full CoCoA pipeline.
func ckptTestConfig() Config {
	cfg := DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 3
	cfg.DurationS = 120
	cfg.SampleIntervalS = 10
	cfg.GridCellM = 4
	cfg.Calibration.Samples = 20000
	return cfg
}

func TestCheckpointSpecEnabled(t *testing.T) {
	if (CheckpointSpec{}).Enabled() {
		t.Fatalf("zero spec enabled")
	}
	if !(CheckpointSpec{Dir: "x"}).Enabled() || !(CheckpointSpec{EveryTicks: 3, Dir: "x"}).Enabled() {
		t.Fatalf("non-zero spec not enabled")
	}
}

func TestConfigValidateCheckpoint(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.Checkpoint = CheckpointSpec{EveryTicks: -1}
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("negative EveryTicks: err=%v", err)
	}
	cfg.Checkpoint = CheckpointSpec{EveryTicks: 5}
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("EveryTicks without Dir: err=%v", err)
	}
	cfg.Checkpoint = CheckpointSpec{EveryTicks: 5, Dir: t.TempDir()}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestCheckpointSpecExcludedFromJSON pins the design decision that
// checkpointing is operational, not experimental: the spec must not leak
// into the config's JSON form, or resumed/checkpointed runs would stop
// being byte-comparable to plain ones.
func TestCheckpointSpecExcludedFromJSON(t *testing.T) {
	cfg := ckptTestConfig()
	plain, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = CheckpointSpec{EveryTicks: 1, Dir: "/somewhere"}
	withSpec, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != string(withSpec) {
		t.Fatalf("Checkpoint spec leaks into config JSON")
	}
}

// TestErrStopInterruptsRun exercises the harness's interrupt model: a hook
// returning checkpoint.ErrStop stops the run at the snapshot, and the
// snapshot resumes to a byte-identical result.
func TestErrStopInterruptsRun(t *testing.T) {
	cfg := ckptTestConfig()
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracleBytes, _ := json.Marshal(oracle)

	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap *checkpoint.Snapshot
	team.OnCheckpoint(5, func(s *checkpoint.Snapshot) error {
		snap = s
		return checkpoint.ErrStop
	})
	res, err := team.RunContext(context.Background())
	if res != nil || !errors.Is(err, checkpoint.ErrStop) {
		t.Fatalf("res=%v err=%v, want nil + ErrStop", res, err)
	}
	if snap == nil || snap.TickIndex != 5 {
		t.Fatalf("snapshot not captured at tick 5: %+v", snap)
	}
	resumed, err := ResumeFrom(context.Background(), snap)
	if err != nil {
		t.Fatalf("ResumeFrom: %v", err)
	}
	resumedBytes, _ := json.Marshal(resumed)
	if string(resumedBytes) != string(oracleBytes) {
		t.Fatalf("resume after ErrStop interrupt diverged from oracle")
	}
}

// TestFileSink drives the Config.Checkpoint path end to end: the run
// maintains Dir/latest.ckpt, and the final file resumes byte-identically.
func TestFileSink(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptTestConfig()
	oracle, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracleBytes, _ := json.Marshal(oracle)

	cfg.Checkpoint = CheckpointSpec{EveryTicks: 4, Dir: dir}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resBytes, _ := json.Marshal(res)
	if string(resBytes) != string(oracleBytes) {
		t.Fatalf("checkpointing to a file sink perturbed the run")
	}

	snap, err := checkpoint.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		t.Fatalf("read latest.ckpt: %v", err)
	}
	// latest.ckpt holds the last cadence hit: tick 12 for EveryTicks=4
	// over 12 ticks.
	if snap.TickIndex != 12 {
		t.Fatalf("latest.ckpt at tick %d, want 12", snap.TickIndex)
	}
	resumed, err := ResumeFrom(context.Background(), snap)
	if err != nil {
		t.Fatalf("ResumeFrom(latest.ckpt): %v", err)
	}
	resumedBytes, _ := json.Marshal(resumed)
	if string(resumedBytes) != string(oracleBytes) {
		t.Fatalf("resume from file sink snapshot diverged from oracle")
	}
}

// TestFileSinkDefaultCadence: a spec naming only a directory snapshots at
// the default cadence — which exceeds this short run's 12 ticks, so no
// file appears, and that is the documented behavior (long runs are the
// target of the default).
func TestFileSinkDefaultCadence(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptTestConfig()
	cfg.Checkpoint = CheckpointSpec{Dir: dir}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, CheckpointFile)); !os.IsNotExist(err) {
		t.Fatalf("12-tick run hit the %d-tick default cadence", DefaultCheckpointEveryTicks)
	}
}

// TestDivergenceDetection tampers with one digest of a real snapshot; the
// resume must fail with a DivergenceError naming exactly that subsystem.
func TestDivergenceDetection(t *testing.T) {
	cfg := ckptTestConfig()
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap *checkpoint.Snapshot
	team.OnCheckpoint(6, func(s *checkpoint.Snapshot) error {
		snap = s
		return checkpoint.ErrStop
	})
	if _, err := team.RunContext(context.Background()); !errors.Is(err, checkpoint.ErrStop) {
		t.Fatal(err)
	}
	for i := range snap.Digests {
		if snap.Digests[i].Name == "mac" {
			snap.Digests[i].Sum ^= 1
		}
	}
	_, err = ResumeFrom(context.Background(), snap)
	var de *checkpoint.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("err=%v, want *DivergenceError", err)
	}
	if de.Tick != 6 || len(de.Subsystems) != 1 || de.Subsystems[0] != "mac" {
		t.Fatalf("divergence report %+v, want tick 6 subsystem [mac]", de)
	}
}

// TestLayoutDivergence: a snapshot whose digest set has a different shape
// (another code revision) reports the "layout" pseudo-subsystem.
func TestLayoutDivergence(t *testing.T) {
	cfg := ckptTestConfig()
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap *checkpoint.Snapshot
	team.OnCheckpoint(3, func(s *checkpoint.Snapshot) error {
		snap = s
		return checkpoint.ErrStop
	})
	if _, err := team.RunContext(context.Background()); !errors.Is(err, checkpoint.ErrStop) {
		t.Fatal(err)
	}
	snap.Digests = append(snap.Digests, checkpoint.Digest{Name: "extra", Sum: 1})
	_, err = ResumeFrom(context.Background(), snap)
	var de *checkpoint.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("err=%v, want *DivergenceError", err)
	}
	if len(de.Subsystems) != 1 || de.Subsystems[0] != "layout" {
		t.Fatalf("divergence report %+v, want [layout]", de)
	}
}

// TestResumeValidation covers the rejection paths of the resume entry
// points.
func TestResumeValidation(t *testing.T) {
	if _, err := ConfigFromSnapshot(nil); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("nil snapshot: %v", err)
	}
	if _, err := ResumeTeam(ckptTestConfig(), nil); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("nil snapshot team: %v", err)
	}

	bad := &checkpoint.Snapshot{TickIndex: 0}
	if _, err := ResumeFrom(context.Background(), bad); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("invalid snapshot: %v", err)
	}

	// Config JSON that does not decode.
	junk := &checkpoint.Snapshot{
		TickIndex: 1, SimNowS: 10,
		ConfigJSON: []byte(`{"NumRobots":"many"}`),
		Digests:    []checkpoint.Digest{{Name: "sim"}},
	}
	if _, err := ConfigFromSnapshot(junk); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("undecodable config: %v", err)
	}

	// Config that decodes but fails validation.
	cfg := ckptTestConfig()
	cfg.NumRobots = 0
	cfgJSON, _ := json.Marshal(cfg)
	invalid := &checkpoint.Snapshot{
		TickIndex: 1, SimNowS: 10,
		ConfigJSON: cfgJSON,
		Digests:    []checkpoint.Digest{{Name: "sim"}},
	}
	if _, err := ConfigFromSnapshot(invalid); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("invalid embedded config: %v", err)
	}

	// Snapshot tick beyond what the run can reach.
	good := ckptTestConfig()
	goodJSON, _ := json.Marshal(good)
	beyond := &checkpoint.Snapshot{
		TickIndex: maxSampleTicks(good) + 1, SimNowS: 10,
		ConfigJSON: goodJSON,
		Digests:    []checkpoint.Digest{{Name: "sim"}},
	}
	if _, err := ResumeTeam(good, beyond); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("tick beyond run: %v", err)
	}
}

// TestResumeTeamScratch proves the replication path resumes on a recycled
// slot with the same bytes as a fresh resume.
func TestResumeTeamScratch(t *testing.T) {
	cfg := ckptTestConfig()
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap *checkpoint.Snapshot
	team.OnCheckpoint(7, func(s *checkpoint.Snapshot) error {
		snap = s
		return checkpoint.ErrStop
	})
	if _, err := team.RunContext(context.Background()); !errors.Is(err, checkpoint.ErrStop) {
		t.Fatal(err)
	}

	fresh, err := ResumeFrom(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	freshBytes, _ := json.Marshal(fresh)

	sc := NewScratch()
	// Recycle the scratch through an unrelated run first so the resume
	// sees a dirty slot.
	if _, err := RunScratch(context.Background(), cfg, sc); err != nil {
		t.Fatal(err)
	}
	rcfg, err := ConfigFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	rteam, err := ResumeTeamScratch(rcfg, snap, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rteam.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resBytes, _ := json.Marshal(res)
	if string(resBytes) != string(freshBytes) {
		t.Fatalf("scratch resume diverged from fresh resume")
	}
}

// TestVerifyTickNeverReached: resuming under a config whose run ends
// before the snapshot's tick (validation passes, replay falls short) must
// fail loudly instead of returning an unverified result.
func TestVerifyTickNeverReached(t *testing.T) {
	cfg := ckptTestConfig()
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap *checkpoint.Snapshot
	team.OnCheckpoint(12, func(s *checkpoint.Snapshot) error {
		snap = s
		return checkpoint.ErrStop
	})
	if _, err := team.RunContext(context.Background()); !errors.Is(err, checkpoint.ErrStop) {
		t.Fatal(err)
	}
	// Shorten the run under the caller-supplied config: 12 ticks become
	// 11.999… → 11, so tick 12 never fires, but ResumeTeam's up-front
	// check uses the same maxSampleTicks and rejects it immediately.
	short := cfg
	short.DurationS = 115
	if _, err := ResumeTeam(short, snap); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("tick-beyond-short-run: %v", err)
	}
}

// TestCheckpointLabelCarried: the label survives the wire round trip.
func TestCheckpointLabelCarried(t *testing.T) {
	cfg := ckptTestConfig()
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wire []byte
	team.SetCheckpointLabel("job-000042")
	team.OnCheckpoint(2, func(s *checkpoint.Snapshot) error {
		b, err := checkpoint.Marshal(s)
		if err != nil {
			return err
		}
		wire = b
		return checkpoint.ErrStop
	})
	if _, err := team.RunContext(context.Background()); !errors.Is(err, checkpoint.ErrStop) {
		t.Fatal(err)
	}
	snap, err := checkpoint.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "job-000042" {
		t.Fatalf("label %q lost", snap.Label)
	}
}
