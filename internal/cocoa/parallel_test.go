package cocoa

import (
	"fmt"
	"reflect"
	"testing"

	"cocoa/internal/faults"
)

// Intra-run parallelism must be invisible: per-robot localizer state is
// disjoint and each robot's beacon queue is applied FIFO by one goroutine,
// so a run's Result — every sample, counter, and energy figure — must be
// byte-identical at any UpdateWorkers setting.

func parallelCases() map[string]Config {
	cases := map[string]Config{}

	cases["combined"] = testConfig()

	rf := testConfig()
	rf.Mode = ModeRFOnly
	cases["rf-only"] = rf

	sec := testConfig()
	sec.SecondaryBeacons = true
	sec.TerrainAmplitude = 1.5
	sec.ClockDriftSigmaS = 0.2
	cases["secondary+terrain+drift"] = sec

	flt := testConfig()
	flt.Faults.GE = faults.Bursty(0.3, 4)
	flt.Faults.CrashFraction = 0.2
	flt.Faults.CrashMeanDownS = 40
	cases["faults"] = flt

	mcl := testConfig()
	mcl.Localizer = LocalizerParticle
	mcl.Particles = 300
	cases["particle"] = mcl

	return cases
}

func TestUpdateWorkersByteIdentical(t *testing.T) {
	for name, cfg := range parallelCases() {
		t.Run(name, func(t *testing.T) {
			var ref *Result
			for _, workers := range []int{1, 3, 0} { // serial, bounded, auto
				c := cfg
				c.UpdateWorkers = workers
				res, err := Run(c)
				if err != nil {
					t.Fatal(err)
				}
				// The stored Config differs by construction; everything
				// else must match bit-for-bit.
				res.Config.UpdateWorkers = 0
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(ref, res) {
					t.Errorf("UpdateWorkers=%d diverges from serial run", workers)
					if ref.MeanError() != res.MeanError() {
						t.Errorf("  mean error %v vs %v", ref.MeanError(), res.MeanError())
					}
					if ref.Fixes != res.Fixes {
						t.Errorf("  fixes %d vs %d", ref.Fixes, res.Fixes)
					}
				}
			}
		})
	}
}

func TestUpdateWorkersValidate(t *testing.T) {
	cfg := testConfig()
	cfg.UpdateWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative UpdateWorkers accepted")
	}
	for _, w := range []int{0, 1, 8} {
		cfg.UpdateWorkers = w
		if err := cfg.Validate(); err != nil {
			t.Errorf("UpdateWorkers=%d rejected: %v", w, err)
		}
	}
}

// The queue must be empty at every localizer readout: a run that ends
// mid-window (beacons queued, no endWindow) still applies them in finish.
func TestPendingBeaconsFlushedAtFinish(t *testing.T) {
	cfg := testConfig()
	// End the run one second into a transmit window.
	cfg.DurationS = cfg.BeaconPeriodS*4 + 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BeaconsApplied == 0 {
		t.Fatal("no beacons applied")
	}
}

func ExampleConfig_updateWorkers() {
	cfg := DefaultConfig()
	cfg.UpdateWorkers = 1 // force serial grid updates
	fmt.Println(cfg.Validate())
	// Output: <nil>
}
