package cocoa

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cocoa/internal/bayes"
	"cocoa/internal/caltable"
	"cocoa/internal/checkpoint"
	"cocoa/internal/ekf"
	"cocoa/internal/faults"
	"cocoa/internal/geom"
	"cocoa/internal/geounicast"
	"cocoa/internal/mac"
	"cocoa/internal/mcl"
	"cocoa/internal/mobility"
	"cocoa/internal/mrmm"
	"cocoa/internal/network"
	"cocoa/internal/obs"
	"cocoa/internal/odometry"
	"cocoa/internal/sim"
	"cocoa/internal/telemetry"
	"cocoa/internal/terrain"
)

// Telemetry instruments for the coordination layer: beacon traffic into
// the localizers, the worker-pool flush shape, crash lifecycle, and a
// virtual-clock span measuring each beacon window in *simulated* seconds.
var (
	telBeaconsSent    = telemetry.Default.Counter("cocoa.beacons_sent")
	telBeaconsQueued  = telemetry.Default.Counter("cocoa.beacons_queued")
	telBeaconsApplied = telemetry.Default.Counter("cocoa.beacons_applied")
	telFixes          = telemetry.Default.Counter("cocoa.fixes")
	telFixMisses      = telemetry.Default.Counter("cocoa.fix_misses")
	telSyncs          = telemetry.Default.Counter("cocoa.syncs_received")
	telCrashes        = telemetry.Default.Counter("cocoa.crashes")
	telRecoveries     = telemetry.Default.Counter("cocoa.recoveries")
	telFlushes        = telemetry.Default.Counter("cocoa.flushes")
	// cocoa.flush_busy_robots is the number of robots with queued beacons
	// at each flush point — the worker pool's fan-out width.
	telFlushBusy = telemetry.Default.Histogram("cocoa.flush_busy_robots",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64})
	// cocoa.beacon_queue_depth is the per-robot queue length drained by a
	// flush.
	telQueueDepth = telemetry.Default.Histogram("cocoa.beacon_queue_depth",
		[]float64{0, 1, 2, 4, 8, 16, 32})
	// cocoa.window_sim measures each beacon window in simulated time: with
	// clock skew and crashes the *effective* window a run experienced is an
	// observable, not a config echo.
	telWindowSim = telemetry.Default.Span("cocoa.window_sim")
)

// Team is one assembled deployment, ready to run.
type Team struct {
	cfg      Config
	sim      *sim.Simulator
	med      *mac.Medium
	table    *caltable.Table
	robots   []*robot
	rng      *sim.RNG
	clockRng *sim.RNG
	syncID   int
	ran      bool

	observers []Observer
	terrain   *terrain.Field

	// updateWorkers is the resolved Config.UpdateWorkers (0 -> GOMAXPROCS):
	// the pool bound for fanning per-robot beacon applications at flush
	// points.
	updateWorkers int

	// Fault injection (Config.Faults). links holds the per-robot channel
	// filters so finish can collect their counters; outages is the crash
	// schedule armed in Run.
	links   []*faults.Link
	outages []faults.Outage
	crashes int

	// scratch is the run slot this team was built on (nil for fresh
	// construction); RunContext recycles Result buffers through it.
	scratch *Scratch

	// Checkpoint machinery (see checkpoint.go). root is the run's root RNG
	// stream, retained so digests can fingerprint the whole stream tree;
	// ticks counts completed sampling ticks; ckptHook receives a snapshot
	// every ckptEvery ticks; verify holds the snapshot a resumed run must
	// match at its capture tick; ckptErr carries a capture/verify failure
	// out of the event loop.
	root      *sim.RNG
	ticks     int
	ckptEvery int
	ckptHook  func(*checkpoint.Snapshot) error
	ckptLabel string
	verify    *checkpoint.Snapshot
	ckptErr   error

	// Controller-reporting counters (Config.EnableReporting).
	reportsSent      int
	reportsDelivered int
	reportHops       int

	// Observability taps (Config.Progress / Config.Trace). Both are
	// write-only for the run — nothing below reads them back — so they
	// cannot steer results; nil disables each at one pointer check per
	// record site.
	progress *obs.Progress
	tracer   *obs.Trace
}

// NewTeam assembles a deployment from the configuration. The calibration
// phase (PDF Table construction) runs here, before the mission starts,
// exactly as the paper's offline calibration does.
func NewTeam(cfg Config) (*Team, error) {
	return NewTeamScratch(cfg, nil)
}

// NewTeamScratch assembles a deployment on a reusable run slot: the
// simulator, the RNG streams, and the belief grids come from the scratch,
// recycled from the previous run built through it. The assembled team is
// byte-identical in behavior to a NewTeam one — reuse only changes where
// the memory comes from. Building a team on a scratch invalidates the
// previous team built on the same scratch (see Scratch). A nil scratch
// degenerates to NewTeam exactly.
func NewTeamScratch(cfg Config, sc *Scratch) (*Team, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var root *sim.RNG
	var s *sim.Simulator
	if sc != nil {
		s, root = sc.begin(cfg.Seed)
	} else {
		root = sim.NewRNG(cfg.Seed)
		s = sim.New()
	}

	macCfg := mac.DefaultConfig(cfg.Radio)
	if cfg.NeighborIndex != "scan" {
		// Spatial neighbor index (the default): stepRobots re-indexes every
		// position once per sampling tick, so no station ever drifts more
		// than VMax * SampleIntervalS from its bucketed position — the
		// slack that keeps the indexed medium byte-identical to the scan.
		macCfg.NeighborIndex = mac.IndexGrid
		macCfg.IndexSlackM = cfg.VMax * float64(cfg.SampleIntervalS)
	}
	med, err := mac.NewMedium(s, macCfg, root.Stream("mac"))
	if err != nil {
		return nil, err
	}

	t := &Team{
		cfg:      cfg,
		sim:      s,
		med:      med,
		rng:      root.Stream("team"),
		clockRng: root.Stream("clock"),
		scratch:  sc,
		root:     root,
		progress: cfg.Progress,
		tracer:   cfg.Trace,
	}
	t.updateWorkers = cfg.UpdateWorkers
	if t.updateWorkers == 0 {
		t.updateWorkers = runtime.GOMAXPROCS(0)
	}

	if cfg.TerrainAmplitude > 0 {
		field, err := terrain.New(cfg.Seed, cfg.TerrainCellM, cfg.TerrainAmplitude)
		if err != nil {
			return nil, err
		}
		t.terrain = field
	}

	needRF := cfg.Mode != ModeOdometryOnly
	if needRF {
		// Shared derives the same "calibration" stream from cfg.Seed that
		// a direct Calibrate call here used, so identical configs across a
		// sweep reuse one immutable table instead of re-sounding the
		// channel per run.
		table, err := caltable.Shared(cfg.Radio, cfg.Calibration, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("calibration: %w", err)
		}
		t.table = table
	}

	mobCfg := cfg.mobilityConfig()
	center := cfg.Area.Center()
	for id := 0; id < cfg.NumRobots; id++ {
		way, err := mobility.NewWaypoint(mobCfg, root.StreamN("mobility", id))
		if err != nil {
			return nil, err
		}
		r := &robot{
			id:       id,
			equipped: id < cfg.NumEquipped,
			way:      way,
			estimate: center,
		}
		r.lastTruePos = way.Position(0)

		// Odometry anchor: the paper's odometry-only experiment provides
		// robots with their true initial coordinates; RF modes start the
		// reckoner at the uniform-prior mean (the area center) because no
		// initial position is given.
		anchor := center
		if cfg.Mode == ModeOdometryOnly {
			anchor = r.lastTruePos
		}
		r.reckoner, err = odometry.NewDeadReckoner(cfg.Odometry, root.StreamN("odometry", id), anchor)
		if err != nil {
			return nil, err
		}

		r.nic = network.NewNIC(s, med, cfg.Energy, id, func() geom.Vec2 {
			return r.way.Position(s.Now())
		})

		if !needRF {
			// Odometry-only robots do not use the radio at all.
			r.nic.PowerOff()
			t.robots = append(t.robots, r)
			continue
		}

		if !r.equipped {
			r.loc, err = newLocalizer(cfg, root, id, sc)
			if err != nil {
				return nil, err
			}
			r.nic.Handle(network.KindBeacon, func(f mac.Frame, rssi float64) {
				r.onBeacon(f, rssi, t.lookupPDF)
			})
		}

		r.proto, err = mrmm.New(s, r.nic, cfg.mrmmConfig(), root.StreamN("mrmm", id),
			func() mrmm.MobilityInfo {
				return mrmm.MobilityInfo{
					Pos:  r.way.Position(s.Now()),
					Vel:  r.way.Velocity(),
					Rest: r.way.RestRemaining(s.Now()),
				}
			})
		if err != nil {
			return nil, err
		}
		r.proto.SetMember(true)
		r.proto.OnData(func(d mrmm.Data, _ float64) {
			if sp, ok := d.Payload.(SyncPayload); ok {
				r.scheduleKnown = true
				r.syncsReceived++
				telSyncs.Inc()
				// Resynchronize the robot's timers to the Sync robot.
				r.syncedThisPeriod = true
				r.clockErr = 0
				r.lastSyncPos = sp.SyncPos
				r.haveSyncPos = true
				t.emitSimple(EventSyncRecv, r.id)
			}
		})
		if cfg.DisableSync {
			// Preprogrammed schedule: every robot knows T and t from
			// deployment, but nothing ever corrects its clock.
			r.scheduleKnown = true
		}

		if cfg.EnableReporting {
			r.agent, err = geounicast.New(s, r.nic, geounicast.DefaultConfig(),
				root.StreamN("unicast", id), func() geom.Vec2 {
					return r.currentEstimate(cfg.Mode, s.Now())
				})
			if err != nil {
				return nil, err
			}
			if id == t.syncID {
				r.agent.OnDeliver(func(p geounicast.Packet) {
					t.reportsDelivered++
					t.reportHops += p.Hops
				})
			}
		}

		t.robots = append(t.robots, r)
	}

	// The Sync robot is the first equipped robot. It defines the team's
	// time base, so its own clock is error-free by definition.
	t.syncID = 0
	if needRF && t.robots[t.syncID].equipped {
		t.robots[t.syncID].scheduleKnown = true
	}

	// Fault injection. Every source draws from its own named stream, so
	// enabling one fault kind never perturbs another — and the zero config
	// touches no stream at all, keeping fault-free runs byte-identical.
	if needRF && cfg.Faults.Enabled() {
		if cfg.Faults.LinkEnabled() {
			for _, r := range t.robots {
				link := faults.NewLink(cfg.Faults,
					root.StreamN("fault-loss", r.id),
					root.StreamN("fault-outlier", r.id),
					network.KindBeacon)
				r.nic.SetFaultFilter(link)
				t.links = append(t.links, link)
			}
		}
		if cfg.Faults.SkewMaxS > 0 {
			for _, r := range t.robots {
				if r.id == t.syncID {
					continue // the Sync robot defines the time base
				}
				r.clockErr = root.StreamN("fault-skew", r.id).
					Uniform(-cfg.Faults.SkewMaxS, cfg.Faults.SkewMaxS)
			}
		}
		t.outages = faults.CrashSchedule(cfg.Faults, cfg.NumRobots, t.syncID,
			float64(cfg.DurationS), root.Stream("fault-crash"))
	}
	return t, nil
}

// newLocalizer builds the configured RF estimation backend for one robot.
// Grid localizers draw from the scratch's grid arena when sc is non-nil.
func newLocalizer(cfg Config, root *sim.RNG, id int, sc *Scratch) (Localizer, error) {
	switch cfg.Localizer {
	case LocalizerParticle:
		mc := mcl.DefaultConfig(cfg.Area)
		mc.Particles = cfg.Particles
		return mcl.New(mc, root.StreamN("mcl", id))
	case LocalizerEKF:
		return ekf.New(ekf.DefaultConfig(cfg.Area))
	default:
		var g *bayes.Grid
		var err error
		if sc != nil {
			g, err = sc.grid(cfg)
		} else {
			g, err = bayes.NewGrid(cfg.Area, cfg.GridCellM)
		}
		if err != nil {
			return nil, err
		}
		if cfg.GridStats == "eager" {
			g.SetStatsMode(bayes.StatsEager)
		}
		return g, nil
	}
}

// lookupPDF adapts the calibration table to the bayes consumer interface.
func (t *Team) lookupPDF(rssiDBm float64) (bayes.DistanceDensity, bool) {
	pdf, ok := t.table.Lookup(rssiDBm)
	if !ok {
		return nil, false
	}
	return pdf, true
}

// Table exposes the calibrated PDF table (nil in odometry-only mode), used
// by the Figure 1 experiment.
func (t *Team) Table() *caltable.Table { return t.table }

// Run executes the deployment and collects the result. A team can run only
// once. Run is RunContext with a background context.
func (t *Team) Run() (*Result, error) {
	return t.RunContext(context.Background())
}

// RunContext executes the deployment under ctx and collects the result. A
// team can run only once.
//
// Cancellation is observed cooperatively at every metric-sampling tick (one
// simulated SampleIntervalS, microseconds of wall time): the event loop
// stops and ctx.Err() is returned, discarding the partial run. The check
// reads ctx without touching the event calendar or any RNG stream, so a run
// that is never canceled is byte-identical to one executed without a
// context — the service path and the direct path produce the same Result.
func (t *Team) RunContext(ctx context.Context) (*Result, error) {
	if t.ran {
		return nil, fmt.Errorf("cocoa: team already ran")
	}
	t.ran = true
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := t.cfg

	tracked := t.trackedIDs()
	var res *Result
	if t.scratch != nil {
		res = t.scratch.takeResult(cfg, tracked)
	}
	if res == nil {
		res = newResult(cfg, tracked)
	}

	if cfg.Mode != ModeOdometryOnly {
		t.scheduleWindow(0)
	}

	// Failure injection: the configured number of equipped robots die at
	// the configured instant (the Sync robot, id 0, is never chosen so
	// the schedule survives).
	if cfg.FailEquippedCount > 0 {
		t.sim.At(cfg.FailAtS, func() {
			for i := 0; i < cfg.FailEquippedCount; i++ {
				t.failRobot(t.sim.Now(), t.robots[cfg.NumEquipped-1-i])
			}
		})
	}

	// Crash/recovery outages from the fault schedule (Config.Faults).
	for _, o := range t.outages {
		o := o
		t.sim.At(sim.Time(o.StartS), func() { t.crashRobot(t.robots[o.Robot]) })
		if o.EndS < float64(cfg.DurationS) {
			t.sim.At(sim.Time(o.EndS), func() { t.recoverRobot(t.robots[o.Robot]) })
		}
	}

	// Metric sampling and odometry stepping, once per sample interval. The
	// same tick doubles as the cancellation point: checking ctx here adds
	// no events and consumes no randomness, so an uncanceled run cannot
	// diverge from a context-free one.
	done := ctx.Done()
	dt := float64(cfg.SampleIntervalS)
	t.armCheckpoints()
	// Live progress: the loop owns its own tick counter (t.ticks only
	// advances when checkpoint machinery is armed) and publishes position
	// with one atomic store per tick — write-only, so it cannot perturb
	// the run.
	totalTicks := maxSampleTicks(cfg)
	progressTick := 0
	t.progress.SetTicks(0, totalTicks)
	if t.tracer != nil {
		t.tracer.SetThreadName(0, "event-loop")
		t.tracer.Begin(0, "run", 0, map[string]any{
			"seed": cfg.Seed, "robots": cfg.NumRobots, "duration_s": int(cfg.DurationS),
		})
	}
	t.sim.EachTick(cfg.SampleIntervalS, cfg.SampleIntervalS, func(now sim.Time) {
		if done != nil && ctx.Err() != nil {
			t.sim.Stop()
			return
		}
		t.stepRobots(now, dt)
		// Refresh the MAC's spatial index with the tick's new positions
		// (no-op under the scan path; consumes no randomness either way).
		t.med.UpdatePositions()
		t.sample(res, now)
		progressTick++
		t.progress.SetTicks(progressTick, totalTicks)
		// Checkpoint machinery: verify a pending resume snapshot at its
		// tick, then capture on the configured cadence. Both read state
		// without mutating it (digests are side-effect free), so runs
		// with checkpointing on, off, or resumed stay byte-identical.
		if t.verify != nil || t.ckptHook != nil {
			t.onSampleTick(res, now)
		}
	})

	t.sim.RunUntil(cfg.DurationS)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if t.ckptErr != nil {
		return nil, t.ckptErr
	}
	if t.verify != nil {
		// The run ended before reaching the snapshot's tick — the snapshot
		// does not belong to this configuration.
		return nil, &checkpoint.FormatError{
			Reason: fmt.Sprintf("snapshot tick %d never reached (run sampled %d ticks)", t.verify.TickIndex, t.ticks),
		}
	}
	t.finish(res)
	// Close the run span (and any sampling-window whose scheduled end fell
	// past DurationS) so every exported trace is balanced.
	t.tracer.CloseOpen(float64(t.sim.Now()))
	return res, nil
}

// trackedIDs returns the robots whose localization error the experiment
// reports: all robots in odometry-only mode, the unequipped ones otherwise
// (the paper reports error only for robots without localization devices).
func (t *Team) trackedIDs() []int {
	var ids []int
	for _, r := range t.robots {
		if t.cfg.Mode == ModeOdometryOnly || !r.equipped {
			ids = append(ids, r.id)
		}
	}
	return ids
}

// stepRobots advances dead reckoning for every robot that uses it. The
// waypoint position is evaluated once per robot per tick; the cached
// lastTruePos then serves the metric sampler in the same tick.
func (t *Team) stepRobots(now sim.Time, dt float64) {
	for _, r := range t.robots {
		cur := r.truePos(now)
		scale := 1.0
		if t.terrain != nil {
			scale = t.terrain.RoughnessAt(cur.X, cur.Y)
		}
		switch {
		case t.cfg.Mode == ModeOdometryOnly:
			r.stepOdometry(cur, dt, scale)
		case t.cfg.Mode == ModeCombined && !r.equipped:
			r.stepOdometry(cur, dt, scale)
		default:
			// RF-only robots do not dead-reckon; still advance the
			// mobility process so positions stay current.
			r.lastTruePos = cur
		}
	}
}

// sample records per-robot localization error at time now. stepRobots just
// refreshed every robot's lastTruePos for this tick, so the waypoint model
// is not re-evaluated here.
func (t *Team) sample(res *Result, now sim.Time) {
	var sum float64
	n := 0
	for i, id := range res.TrackedIDs {
		r := t.robots[id]
		err := r.currentEstimate(t.cfg.Mode, now).Dist(r.lastTruePos)
		res.PerRobot[i] = append(res.PerRobot[i], err)
		sum += err
		n++
	}
	res.Times = append(res.Times, float64(now))
	res.AvgError = append(res.AvgError, sum/float64(n))
}

// scheduleWindow arms the events of the beacon period starting at w.
func (t *Team) scheduleWindow(w sim.Time) {
	cfg := t.cfg
	if w >= cfg.DurationS {
		return
	}
	t.sim.At(w, func() { t.startWindow(w) })
	t.sim.At(w+cfg.TransmitPeriodS, func() { t.endWindow(w) })
	t.scheduleWindow(w + cfg.BeaconPeriodS)
}

// startWindow wakes the team, refreshes the MRMM mesh, disseminates SYNC,
// and schedules the window's beacons.
func (t *Team) startWindow(w sim.Time) {
	cfg := t.cfg
	t.tracer.Begin(0, "sampling-window", float64(w), nil)
	t.emitSimple(EventWindowStart, -1)
	// Punctual and early robots are awake by now (their wake timers fired
	// at w+clockErr <= w); late robots wake when their skewed timer fires.
	for _, r := range t.robots {
		if !r.failed && !r.crashed && r.clockErr <= 0 {
			r.nic.Wake()
		}
	}

	// Sync robot: mesh refresh, then the SYNC message over the mesh.
	if !cfg.DisableSync {
		syncRobot := t.robots[t.syncID]
		if err := syncRobot.proto.SendQuery(); err == nil {
			t.sim.Schedule(0.1, func() {
				_ = syncRobot.proto.SendData(SyncPayload{
					PeriodS:      cfg.BeaconPeriodS,
					TransmitS:    cfg.TransmitPeriodS,
					WindowStartS: w,
					SyncPos:      syncRobot.truePos(t.sim.Now()),
				})
			})
		}
	}

	// Beacons: k per equipped robot, spread over the window after a
	// short guard for SYNC dissemination. Each sender schedules on its
	// own (possibly skewed) clock.
	const guard = 0.3
	usable := float64(cfg.TransmitPeriodS) - guard - 0.05
	if usable <= 0 {
		usable = float64(cfg.TransmitPeriodS) * 0.5
	}
	for _, r := range t.robots {
		r := r
		if r.failed || r.crashed {
			continue
		}
		secondary := cfg.SecondaryBeacons && !r.equipped && r.haveFix
		if !r.equipped && !secondary {
			continue
		}
		skew := r.clockErr
		if skew < 0 {
			skew = 0 // cannot transmit in the past
		}
		for j := 0; j < cfg.BeaconsPerWindow; j++ {
			slot := usable * (float64(j) + t.rng.Float64()) / float64(cfg.BeaconsPerWindow)
			t.sim.Schedule(skew+guard+slot, func() { t.sendBeacon(r) })
		}
	}

	if cfg.EnableReporting {
		t.scheduleReporting(usable, guard)
	}
}

// scheduleReporting arms this window's HELLO exchange and the localized
// robots' status reports toward the Sync robot.
func (t *Team) scheduleReporting(usable, guard float64) {
	for _, r := range t.robots {
		r := r
		if r.failed || r.crashed || r.agent == nil {
			continue
		}
		skew := r.clockErr
		if skew < 0 {
			skew = 0
		}
		t.sim.Schedule(skew+guard+usable*t.rng.Float64(), func() {
			_ = r.agent.SendHello()
		})
		// Reports go out mid-window (everyone is awake) and carry the
		// robot's previous fix; the Sync robot does not report to itself.
		if r.id == t.syncID || r.equipped || !r.haveFix || !r.haveSyncPos {
			continue
		}
		t.sim.Schedule(skew+guard+usable*(0.5+0.5*t.rng.Float64()), func() {
			t.reportsSent++
			r.agent.Send(t.syncID, r.lastSyncPos, "status-report")
		})
	}
}

// sendBeacon broadcasts one localization beacon from robot r.
func (t *Team) sendBeacon(r *robot) {
	if r.failed || r.crashed {
		return // crashed after this beacon was scheduled
	}
	now := t.sim.Now()
	pos := r.truePos(now)
	payload := BeaconPayload{Sender: r.id, Pos: pos}
	if !r.equipped {
		// Secondary beacon: advertise the estimate, not the truth — the
		// robot does not know its true position.
		payload.Pos = r.reckoner.Estimate()
		payload.Secondary = true
	}
	if r.nic.Send(network.KindBeacon, network.BeaconBytes, payload) == nil {
		telBeaconsSent.Inc()
		// Guard the args map: building it unconditionally would allocate
		// even when tracing is off.
		if t.tracer != nil {
			t.tracer.Instant(0, "mac-frame", float64(now), map[string]any{
				"robot": r.id, "secondary": payload.Secondary,
			})
		}
		t.emit(EventBeaconSent, r.id, payload.Pos, 0, 0)
	}
}

// flushBeaconQueues applies every robot's queued beacon observations,
// fanning robots with pending work across a bounded worker pool. Per-robot
// localizer state is disjoint, each queue is applied FIFO by exactly one
// goroutine, and no RNG stream is shared across robots, so the grids a
// flush produces are byte-identical at any worker count — the pool only
// changes which OS thread does the arithmetic.
func (t *Team) flushBeaconQueues() {
	var busy []*robot
	for _, r := range t.robots {
		if len(r.pending) > 0 {
			telQueueDepth.ObserveInt(len(r.pending))
			busy = append(busy, r)
		}
	}
	telFlushes.Inc()
	telFlushBusy.ObserveInt(len(busy))
	// Trace the belief updates serially, before the worker fan-out: the
	// robots' queue depths are still intact here, and emitting from the
	// single-threaded event loop keeps the event order deterministic at
	// any worker count.
	if t.tracer != nil {
		nowS := float64(t.sim.Now())
		for _, r := range busy {
			t.tracer.Complete(1+r.id, "belief-update", nowS, 0, map[string]any{
				"beacons": len(r.pending),
			})
		}
	}
	workers := t.updateWorkers
	if workers > len(busy) {
		workers = len(busy)
	}
	if workers <= 1 {
		for _, r := range busy {
			r.applyPending()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(busy) {
					return
				}
				busy[i].applyPending()
			}
		}()
	}
	wg.Wait()
}

// endWindow finalizes RF fixes, advances each robot's clock model, and
// arms the per-robot sleep and wake timers for the next period.
func (t *Team) endWindow(w sim.Time) {
	cfg := t.cfg
	now := t.sim.Now()
	telWindowSim.StartSim(float64(w)).EndSim(float64(now))
	t.emitSimple(EventWindowEnd, -1)
	// Apply the window's queued beacons before any localizer readout below.
	t.flushBeaconQueues()
	t.tracer.End(0, float64(now))
	for _, r := range t.robots {
		if r.failed {
			continue
		}
		if !r.equipped {
			beacons := r.loc.BeaconCount()
			fixed := r.loc.Ready()
			r.finalizeWindow()
			if len(t.observers) > 0 {
				if fixed {
					t.emit(EventFix, r.id, r.estimate,
						r.estimate.Dist(r.truePos(now)), beacons)
				} else {
					t.emit(EventFixMissed, r.id, geom.Vec2{}, 0, beacons)
				}
			}
		}

		// Clock model: a SYNC this period resynchronized the robot;
		// otherwise its timer error random-walks. The Sync robot defines
		// the time base and never drifts.
		if r.id != t.syncID {
			if !r.syncedThisPeriod && cfg.ClockDriftSigmaS > 0 {
				r.clockErr += t.clockRng.Normal(0, cfg.ClockDriftSigmaS)
			}
		}
		r.syncedThisPeriod = false

		if r.crashed {
			// An outage spans this window: the radio is off, so no sleep
			// or wake timers — recovery re-wakes it directly. The clock
			// kept drifting above; the missed fix was counted above.
			continue
		}
		if !cfg.Coordinated || !r.scheduleKnown {
			continue // stays awake; no timers to arm
		}
		r := r
		sleepAt := float64(w+cfg.TransmitPeriodS) + r.clockErr
		if sleepAt < now {
			sleepAt = now
		}
		t.sim.At(sleepAt, func() {
			if r.failed || r.crashed {
				return
			}
			r.nic.Sleep()
			t.emitSimple(EventSleep, r.id)
		})
		wakeAt := float64(w+cfg.BeaconPeriodS) + r.clockErr
		if wakeAt <= sleepAt {
			wakeAt = sleepAt
		}
		if wakeAt < float64(cfg.DurationS) {
			t.sim.At(wakeAt, func() {
				if r.failed || r.crashed {
					return
				}
				r.nic.Wake()
				t.emitSimple(EventWake, r.id)
			})
		}
	}
}

// finish flushes energy meters and aggregates counters into the result.
func (t *Team) finish(res *Result) {
	// Beacons delivered after the last window end (MAC delivery delay can
	// push them past the endWindow event) would previously have been folded
	// into the grid immediately; apply them so the localizer state matches.
	t.flushBeaconQueues()
	now := t.sim.Now()
	for _, r := range t.robots {
		res.FinalTruePositions = append(res.FinalTruePositions, r.truePos(now))
		res.FinalEstimates = append(res.FinalEstimates, r.currentEstimate(t.cfg.Mode, now))
		res.Equipped = append(res.Equipped, r.equipped)
		m := r.nic.Meter()
		m.Flush(now)
		res.PerRobotEnergyJ = append(res.PerRobotEnergyJ, m.TotalJ())
		res.TotalEnergyJ += m.TotalJ()
		res.NoSleepEnergyJ += m.CounterfactualNoSleepJ()
		res.Fixes += r.fixes
		res.MissedWindows += r.missedWindows
		res.BeaconsApplied += r.beaconsApplied
		res.SyncsReceived += r.syncsReceived
		if r.loc != nil && !r.haveFix {
			res.NeverFixed++
		}
		if r.proto != nil {
			s := r.proto.Stats()
			res.MRMM.QueriesSent += s.QueriesSent
			res.MRMM.RepliesSent += s.RepliesSent
			res.MRMM.DataSent += s.DataSent
			res.MRMM.DataDelivered += s.DataDelivered
			res.MRMM.BecameForwarder += s.BecameForwarder
		}
	}
	res.MAC = t.med.Stats()
	res.ReportsSent = t.reportsSent
	res.ReportsDelivered = t.reportsDelivered
	res.ReportHopsTotal = t.reportHops
	res.Crashes = t.crashes
	for _, l := range t.links {
		res.FaultDrops += l.Drops()
		res.RSSIOutliers += l.Outliers()
	}
}

// Run is the package-level convenience: assemble and run in one call.
// It is RunContext with a background context.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext assembles and runs a deployment in one call under ctx.
// Cancellation and deadlines are observed between the assembly phase and
// the run, and cooperatively at every sampling tick inside the run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	team, err := NewTeam(cfg)
	if err != nil {
		return nil, err
	}
	return team.RunContext(ctx)
}
