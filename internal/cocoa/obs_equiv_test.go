package cocoa

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"cocoa/internal/obs"
	"cocoa/internal/telemetry"
)

// The observability layer inherits telemetry's prime directive: progress
// publication and span tracing record, they never steer. Attaching both
// must not perturb a single bit of any Result — nor any telemetry
// counter — at any intra-run worker count. (make check runs this under
// -race, which also exercises the progress gauge against concurrent
// readers of the serve layer's shape.)
func TestObsProgressTraceOnOffByteIdentical(t *testing.T) {
	wasEnabled := telemetry.Default.Enabled()
	defer telemetry.Default.SetEnabled(wasEnabled)
	telemetry.Default.SetEnabled(true)

	type outcome struct {
		result     *Result
		resultJSON string
		counters   map[string]int64
	}
	run := func(workers int, withObs bool) outcome {
		cfg := testConfig()
		cfg.UpdateWorkers = workers
		var progress *obs.Progress
		if withObs {
			progress = &obs.Progress{}
			cfg.Progress = progress
			cfg.Trace = obs.NewTrace()
		}
		before := telemetry.Default.Snapshot()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := telemetry.Diff(before, telemetry.Default.Snapshot())
		counters := map[string]int64{}
		for _, c := range d.Counters {
			counters[c.Name] = c.Value
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if withObs {
			// The run must have actually published and recorded.
			tick, total := progress.Ticks()
			if total == 0 || tick != total {
				t.Errorf("workers=%d: progress ended at %d/%d, want full", workers, tick, total)
			}
			if cfg.Trace.Len() == 0 {
				t.Errorf("workers=%d: trace recorded no events", workers)
			}
			var buf bytes.Buffer
			if err := cfg.Trace.WriteJSON(&buf); err != nil {
				t.Fatalf("workers=%d: WriteJSON: %v", workers, err)
			}
			if _, err := obs.ReadTrace(&buf); err != nil {
				t.Errorf("workers=%d: trace does not round-trip balanced: %v", workers, err)
			}
		}
		return outcome{result: res, resultJSON: string(b), counters: counters}
	}

	for _, workers := range []int{1, 8} {
		off := run(workers, false)
		on := run(workers, true)
		if off.resultJSON != on.resultJSON {
			t.Errorf("UpdateWorkers=%d: Result differs with progress+tracing attached", workers)
		}
		// Stronger than the JSON check: the archived Config must not retain
		// the Progress/Trace handles (scrubObservers), so the whole struct
		// compares equal too.
		if !reflect.DeepEqual(off.result, on.result) {
			t.Errorf("UpdateWorkers=%d: Result structs differ with progress+tracing attached (observer handles leaked into Result.Config?)", workers)
		}
		for name, v := range off.counters {
			if on.counters[name] != v {
				t.Errorf("UpdateWorkers=%d: counter %s: off=%d on=%d", workers, name, v, on.counters[name])
			}
		}
		for name, v := range on.counters {
			if _, ok := off.counters[name]; !ok {
				t.Errorf("UpdateWorkers=%d: counter %s: off=absent on=%d", workers, name, v)
			}
		}
	}
}

// Identical runs must record identical traces: the recorder works on the
// simulation's virtual clock and the event loop's deterministic order, so
// the exported JSON is byte-for-byte reproducible, at any worker count.
func TestObsTraceDeterministic(t *testing.T) {
	traceJSON := func(workers int) []byte {
		cfg := testConfig()
		cfg.UpdateWorkers = workers
		cfg.Trace = obs.NewTrace()
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Trace.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := traceJSON(1)
	for _, workers := range []int{1, 8} {
		if got := traceJSON(workers); !bytes.Equal(base, got) {
			t.Errorf("UpdateWorkers=%d: trace differs from serial baseline", workers)
		}
	}
}
