package cocoa

import (
	"math"
	"testing"
)

// testConfig returns a reduced-scale configuration that keeps the cocoa
// package tests fast while exercising the full stack.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumRobots = 12
	cfg.NumEquipped = 6
	cfg.DurationS = 300
	cfg.BeaconPeriodS = 50
	cfg.GridCellM = 4
	cfg.Calibration.Samples = 60000
	return cfg
}

func TestModeString(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{ModeOdometryOnly, "odometry-only"},
		{ModeRFOnly, "rf-only"},
		{ModeCombined, "cocoa"},
		{Mode(9), "Mode(9)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumRobots != 50 || cfg.NumEquipped != 25 {
		t.Errorf("robots = %d/%d, want 50/25", cfg.NumRobots, cfg.NumEquipped)
	}
	if got := cfg.Area.Area(); got != 40000 {
		t.Errorf("area = %v m^2, want 40000", got)
	}
	if cfg.TransmitPeriodS != 3 || cfg.BeaconsPerWindow != 3 {
		t.Errorf("t = %v, k = %d; want 3, 3", cfg.TransmitPeriodS, cfg.BeaconsPerWindow)
	}
	if cfg.DurationS != 1800 {
		t.Errorf("duration = %v, want 1800", cfg.DurationS)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero robots", func(c *Config) { c.NumRobots = 0 }},
		{"equipped above robots", func(c *Config) { c.NumEquipped = 99 }},
		{"negative equipped", func(c *Config) { c.NumEquipped = -1 }},
		{"rf without equipped", func(c *Config) { c.NumEquipped = 0 }},
		{"degenerate area", func(c *Config) { c.Area.Max = c.Area.Min }},
		{"vmax at floor", func(c *Config) { c.VMax = 0.1 }},
		{"zero period", func(c *Config) { c.BeaconPeriodS = 0 }},
		{"window above period", func(c *Config) { c.TransmitPeriodS = c.BeaconPeriodS + 1 }},
		{"zero beacons", func(c *Config) { c.BeaconsPerWindow = 0 }},
		{"zero grid", func(c *Config) { c.GridCellM = 0 }},
		{"bad mode", func(c *Config) { c.Mode = Mode(0) }},
		{"zero duration", func(c *Config) { c.DurationS = 0 }},
		{"zero sampling", func(c *Config) { c.SampleIntervalS = 0 }},
		{"bad radio", func(c *Config) { c.Radio.BitrateBps = 0 }},
		{"bad energy", func(c *Config) { c.Energy.IdleW = -1 }},
		{"bad odometry", func(c *Config) { c.Odometry.DispSigmaPerSec = -1 }},
		{"bad calibration", func(c *Config) { c.Calibration.Samples = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("accepted invalid config")
			}
		})
	}
}

func TestOdometryOnlyDoesNotNeedEquipped(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModeOdometryOnly
	cfg.NumEquipped = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("odometry-only with zero equipped rejected: %v", err)
	}
}

func TestCombinedRunEndToEnd(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) == 0 || len(res.AvgError) != len(res.Times) {
		t.Fatalf("series lengths: %d times, %d errors", len(res.Times), len(res.AvgError))
	}
	if got := len(res.TrackedIDs); got != 6 {
		t.Errorf("tracked %d robots, want the 6 unequipped", got)
	}
	if res.Fixes == 0 {
		t.Error("no RF fixes in 300 s with T=50")
	}
	if res.SyncsReceived == 0 {
		t.Error("no SYNC messages delivered over MRMM")
	}
	if res.BeaconsApplied == 0 {
		t.Error("no beacons reached the Bayesian grids")
	}
	if res.TotalEnergyJ <= 0 {
		t.Error("no energy accounted")
	}
	if s := res.EnergySavings(); s <= 1 {
		t.Errorf("energy savings = %v, want > 1 with coordination", s)
	}
	// Steady-state accuracy: after the first couple of windows the
	// average error must be far below the uniform-prior baseline (~77 m).
	series := res.Series()
	if got := series.ValueAt(250); got > 30 {
		t.Errorf("steady-state avg error = %.1f m, want well below 30", got)
	}
	if rate := res.FixRate(); rate < 0.5 {
		t.Errorf("fix rate = %v, want most windows to fix", rate)
	}
}

func TestOdometryOnlyRun(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModeOdometryOnly
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.TrackedIDs); got != cfg.NumRobots {
		t.Errorf("tracked %d, want all %d robots", got, cfg.NumRobots)
	}
	if res.MAC.Sent != 0 {
		t.Errorf("odometry-only sent %d frames, want 0", res.MAC.Sent)
	}
	// The only radio energy is the one-time power-off transition per card.
	maxOff := float64(cfg.NumRobots) * cfg.Energy.TransitionJ
	if res.TotalEnergyJ > maxOff+1e-9 {
		t.Errorf("odometry-only consumed %v J of radio energy, want <= %v (power-off only)",
			res.TotalEnergyJ, maxOff)
	}
	// Error starts near zero (true initial position) and grows.
	if first := res.AvgError[0]; first > 2 {
		t.Errorf("initial odometry error = %v, want ~0", first)
	}
	last := res.AvgError[len(res.AvgError)-1]
	if last < res.AvgError[0] {
		t.Error("odometry error did not grow")
	}
}

func TestRFOnlyRun(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModeRFOnly
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixes == 0 {
		t.Fatal("RF-only produced no fixes")
	}
	// Before the first window the estimate is the uniform-prior mean;
	// after fixes it must improve dramatically.
	if early, late := res.AvgError[0], res.Series().ValueAt(260); late >= early {
		t.Errorf("RF-only error did not improve: t0=%.1f, t260=%.1f", early, late)
	}
}

// The paper's central comparison (Figure 7): CoCoA beats RF-only, and both
// beat odometry-only at the end of a long run.
func TestModeOrdering(t *testing.T) {
	meanTail := func(mode Mode) float64 {
		cfg := testConfig()
		cfg.Mode = mode
		cfg.DurationS = 600
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Average the second half, past the cold start.
		var s float64
		n := 0
		for i, ti := range res.Times {
			if ti > 300 {
				s += res.AvgError[i]
				n++
			}
		}
		return s / float64(n)
	}
	cocoaErr := meanTail(ModeCombined)
	rfErr := meanTail(ModeRFOnly)
	odoErr := meanTail(ModeOdometryOnly)
	if cocoaErr >= rfErr {
		t.Errorf("CoCoA %.1f m not better than RF-only %.1f m", cocoaErr, rfErr)
	}
	if rfErr >= odoErr {
		t.Errorf("RF-only %.1f m not better than odometry-only %.1f m at 10 min", rfErr, odoErr)
	}
}

func TestUncoordinatedNoSavings(t *testing.T) {
	cfg := testConfig()
	cfg.Coordinated = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.EnergySavings(); math.Abs(s-1) > 1e-9 {
		t.Errorf("savings without coordination = %v, want exactly 1", s)
	}
	if res.MAC.MissedAsleep != 0 {
		t.Errorf("frames missed asleep without coordination: %d", res.MAC.MissedAsleep)
	}
}

func TestCoordinationSavesEnergy(t *testing.T) {
	base := testConfig()
	coord, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	uncfg := base
	uncfg.Coordinated = false
	uncoord, err := Run(uncfg)
	if err != nil {
		t.Fatal(err)
	}
	if coord.TotalEnergyJ >= uncoord.TotalEnergyJ {
		t.Errorf("coordinated %.0f J >= uncoordinated %.0f J", coord.TotalEnergyJ, uncoord.TotalEnergyJ)
	}
	// The counterfactual from the coordinated run should approximate the
	// real uncoordinated measurement (same schedule, no sleeping).
	ratio := coord.NoSleepEnergyJ / uncoord.TotalEnergyJ
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("counterfactual %.0f J vs measured %.0f J (ratio %.2f)",
			coord.NoSleepEnergyJ, uncoord.TotalEnergyJ, ratio)
	}
}

func TestSecondaryBeaconsRun(t *testing.T) {
	cfg := testConfig()
	cfg.SecondaryBeacons = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixes == 0 {
		t.Fatal("no fixes with secondary beacons")
	}
	// Secondary beacons add traffic: more beacons must be applied than in
	// the baseline run.
	baseRes, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BeaconsApplied <= baseRes.BeaconsApplied {
		t.Errorf("secondary beacons did not add beacon traffic: %d <= %d",
			res.BeaconsApplied, baseRes.BeaconsApplied)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanError() != b.MeanError() {
		t.Errorf("same seed, different results: %v vs %v", a.MeanError(), b.MeanError())
	}
	if a.TotalEnergyJ != b.TotalEnergyJ {
		t.Errorf("same seed, different energy: %v vs %v", a.TotalEnergyJ, b.TotalEnergyJ)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := testConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 999
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanError() == b.MeanError() {
		t.Error("different seeds produced identical results")
	}
}

func TestTeamRunsOnce(t *testing.T) {
	team, err := NewTeam(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := team.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := team.Run(); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestTableExposed(t *testing.T) {
	team, err := NewTeam(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if team.Table() == nil {
		t.Error("no calibration table in RF mode")
	}
	cfg := testConfig()
	cfg.Mode = ModeOdometryOnly
	odoTeam, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if odoTeam.Table() != nil {
		t.Error("odometry-only mode built a calibration table")
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m := res.MeanError(); math.IsNaN(m) || m <= 0 {
		t.Errorf("MeanError = %v", m)
	}
	if m := res.MaxAvgError(); m < res.MeanError() {
		t.Errorf("MaxAvgError %v below mean %v", m, res.MeanError())
	}
	cdf, err := res.ErrorCDFAt(250)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Len() != len(res.TrackedIDs) {
		t.Errorf("CDF over %d robots, want %d", cdf.Len(), len(res.TrackedIDs))
	}
	if q := cdf.Quantile(0.5); math.IsNaN(q) || q < 0 {
		t.Errorf("median error = %v", q)
	}
}

func TestLocalizerKindString(t *testing.T) {
	tests := []struct {
		k    LocalizerKind
		want string
	}{
		{LocalizerGrid, "grid"},
		{LocalizerParticle, "particle"},
		{LocalizerKind(7), "LocalizerKind(7)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestParticleBackendRun(t *testing.T) {
	cfg := testConfig()
	cfg.Localizer = LocalizerParticle
	cfg.Particles = 800
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixes == 0 {
		t.Fatal("particle backend produced no fixes")
	}
	// Both backends consume the same beacons and should land in the same
	// accuracy regime.
	gridRes, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanError() > 3*gridRes.MeanError()+10 {
		t.Errorf("particle error %.1f m wildly above grid %.1f m",
			res.MeanError(), gridRes.MeanError())
	}
}

func TestParticleBackendNeedsParticles(t *testing.T) {
	cfg := testConfig()
	cfg.Localizer = LocalizerParticle
	cfg.Particles = 0
	if err := cfg.Validate(); err == nil {
		t.Error("accepted particle backend without particles")
	}
}

func TestClockDriftWithoutSyncDegrades(t *testing.T) {
	// Preprogrammed schedule + drifting clocks: over enough periods the
	// timer error exceeds the window and robots miss beacons. SYNC
	// prevents that on the same drift.
	base := testConfig()
	base.DurationS = 600
	base.ClockDriftSigmaS = 1.5

	noSync := base
	noSync.DisableSync = true
	resNoSync, err := Run(noSync)
	if err != nil {
		t.Fatal(err)
	}
	resSync, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if resSync.FixRate() < resNoSync.FixRate() {
		t.Errorf("SYNC did not help under drift: with=%.2f without=%.2f",
			resSync.FixRate(), resNoSync.FixRate())
	}
	if resNoSync.FixRate() > 0.95 {
		t.Errorf("drift without SYNC barely hurt (fix rate %.2f); the "+
			"synchronization machinery would be pointless", resNoSync.FixRate())
	}
}

func TestDisableSyncZeroDriftStillWorks(t *testing.T) {
	cfg := testConfig()
	cfg.DisableSync = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncsReceived != 0 {
		t.Errorf("SYNCs delivered despite DisableSync: %d", res.SyncsReceived)
	}
	if res.FixRate() < 0.9 {
		t.Errorf("preprogrammed schedule with perfect clocks should work: %.2f", res.FixRate())
	}
	if s := res.EnergySavings(); s <= 1 {
		t.Errorf("preprogrammed robots must still sleep: savings %v", s)
	}
}

func TestNegativeClockDriftRejected(t *testing.T) {
	cfg := testConfig()
	cfg.ClockDriftSigmaS = -1
	if err := cfg.Validate(); err == nil {
		t.Error("accepted negative drift")
	}
}

func TestEmptyResultHelpers(t *testing.T) {
	r := newResult(testConfig(), []int{6, 7})
	if !math.IsNaN(r.MeanError()) || !math.IsNaN(r.MaxAvgError()) {
		t.Error("empty result stats must be NaN")
	}
	if !math.IsNaN(r.FixRate()) {
		t.Error("empty FixRate must be NaN")
	}
	if !math.IsNaN(r.EnergySavings()) {
		t.Error("zero-energy savings must be NaN")
	}
	if _, err := r.ErrorCDFAt(10); err == nil {
		t.Error("ErrorCDFAt on empty result succeeded")
	}
}
