package cocoa

import (
	"cocoa/internal/bayes"
	"cocoa/internal/geom"
	"cocoa/internal/geounicast"
	"cocoa/internal/mac"
	"cocoa/internal/mobility"
	"cocoa/internal/mrmm"
	"cocoa/internal/network"
	"cocoa/internal/odometry"
	"cocoa/internal/sim"
)

// BeaconPayload is the localization beacon's content: the sender and the
// coordinates its localization device reports (true position for equipped
// robots, the current estimate under the SecondaryBeacons extension).
type BeaconPayload struct {
	Sender int
	Pos    geom.Vec2
	// Secondary marks beacons from unequipped-but-localized robots
	// (the paper's future-work extension).
	Secondary bool
}

// SyncPayload is the SYNC message the Sync robot multicasts over MRMM at
// the start of every beacon period: the periods T and t, plus the absolute
// start time of the current period so receivers can align their timers.
// SyncPos carries the Sync robot's own coordinates so robots can address
// controller reports geographically (Config.EnableReporting).
type SyncPayload struct {
	PeriodS      sim.Time
	TransmitS    sim.Time
	WindowStartS sim.Time
	SyncPos      geom.Vec2
}

// Localizer abstracts the per-robot RF position estimator so CoCoA can
// host different localization techniques — the paper: "CoCoA is not tied
// to a specific localization technique ... other approaches could be
// integrated in CoCoA as well". bayes.Grid (the paper's technique),
// mcl.Filter (Monte Carlo localization), and ekf.Filter all satisfy it.
type Localizer interface {
	// ApplyBeacon folds one beacon observation into the posterior.
	ApplyBeacon(beaconPos geom.Vec2, pdf bayes.DistanceDensity)
	// BeaconCount returns the observations since the last Reset.
	BeaconCount() int
	// Ready reports whether the paper's >=3 beacon rule is met.
	Ready() bool
	// Estimate returns the current point estimate.
	Estimate() geom.Vec2
	// Reset restarts from the uniform prior.
	Reset()
}

var (
	_ Localizer = (*bayes.Grid)(nil)
)

// robot is one team member's full state.
type robot struct {
	id       int
	equipped bool

	way      *mobility.Waypoint
	nic      *network.NIC
	proto    *mrmm.Protocol
	loc      Localizer // nil for equipped robots and odometry-only mode
	reckoner *odometry.DeadReckoner

	// estimate is the robot's current believed position; haveFix reports
	// whether an RF fix ever succeeded.
	estimate geom.Vec2
	haveFix  bool

	// scheduleKnown flips when the first SYNC arrives; only then may the
	// radio sleep (a robot cannot honor a schedule it has not heard).
	scheduleKnown bool
	// clockErr is the robot's timer error relative to true time; SYNC
	// reception zeroes it, otherwise it random-walks per period.
	clockErr float64
	// syncedThisPeriod records whether a SYNC arrived since the last
	// window ended.
	syncedThisPeriod bool
	// failed marks a robot that died mid-run (failure injection).
	failed bool
	// crashed marks a robot inside a fault-injection outage: radio off,
	// no beacons, no timers — but mobility and dead reckoning continue,
	// so its odometry keeps drifting until recovery brings RF fixes back.
	crashed bool

	// Controller reporting (Config.EnableReporting).
	agent       *geounicast.Agent
	lastSyncPos geom.Vec2
	haveSyncPos bool

	// lastTruePos supports odometry stepping; stepRobots refreshes it
	// every sample tick, so within a tick it doubles as a cached
	// truePos(now) for the metric sampler.
	lastTruePos geom.Vec2

	// pending queues beacon observations between flush points. Nothing
	// reads loc between beacon deliveries (only endWindow and finish do,
	// and both flush first), so applications can be deferred and fanned
	// across robots without changing any observable state.
	pending []pendingBeacon

	// Diagnostics.
	fixes          int
	missedWindows  int // windows that ended with fewer than MinBeacons beacons
	beaconsApplied int
	syncsReceived  int
}

// truePos returns the robot's actual position now.
func (r *robot) truePos(now sim.Time) geom.Vec2 { return r.way.Position(now) }

// currentEstimate returns the robot's believed position under the given
// mode. Equipped robots always know their position (their localization
// device provides it).
func (r *robot) currentEstimate(mode Mode, now sim.Time) geom.Vec2 {
	if r.equipped && mode != ModeOdometryOnly {
		return r.truePos(now)
	}
	switch mode {
	case ModeOdometryOnly:
		return r.reckoner.Estimate()
	case ModeRFOnly:
		return r.estimate
	default: // ModeCombined
		return r.reckoner.Estimate()
	}
}

// stepOdometry advances dead reckoning by one sample interval; cur is the
// robot's true position now (computed once by the caller) and noiseScale
// carries the terrain roughness there.
func (r *robot) stepOdometry(cur geom.Vec2, dt, noiseScale float64) {
	r.reckoner.StepScaled(cur.Sub(r.lastTruePos), dt, noiseScale)
	r.lastTruePos = cur
}

// pendingBeacon is one queued beacon observation: the sender's advertised
// position and the distance density already resolved from the calibration
// table (the lookup happens at enqueue time, on the event loop, so worker
// goroutines never touch the shared table).
type pendingBeacon struct {
	pos geom.Vec2
	pdf bayes.DistanceDensity
}

// onBeacon queues a received beacon for the RF position estimator. The
// expensive grid update runs later, at the next flush point, possibly on a
// worker goroutine (Team.flushBeaconQueues).
func (r *robot) onBeacon(f mac.Frame, rssiDBm float64, lookup func(float64) (bayes.DistanceDensity, bool)) {
	b, ok := f.Payload.(BeaconPayload)
	if !ok || r.loc == nil {
		return
	}
	pdf, ok := lookup(rssiDBm)
	if !ok {
		return
	}
	r.pending = append(r.pending, pendingBeacon{pos: b.Pos, pdf: pdf})
	r.beaconsApplied++
	telBeaconsQueued.Inc()
}

// applyPending folds the queued beacons into the localizer in arrival
// (FIFO) order. Each robot's queue is applied by exactly one goroutine, so
// the posterior a robot reaches is independent of the worker count.
func (r *robot) applyPending() {
	telBeaconsApplied.Add(int64(len(r.pending)))
	for i := range r.pending {
		r.loc.ApplyBeacon(r.pending[i].pos, r.pending[i].pdf)
		r.pending[i] = pendingBeacon{} // release the PDF reference
	}
	r.pending = r.pending[:0]
}

// finalizeWindow closes a transmit window: if the paper's >=3 beacon rule
// is met, the robot throws away its current estimate and adopts the fresh
// RF fix (resetting odometry to it); otherwise it continues with the old
// estimate. The grid always restarts from the uniform prior.
func (r *robot) finalizeWindow() {
	if r.loc == nil {
		return
	}
	if r.loc.Ready() {
		fix := r.loc.Estimate()
		r.estimate = fix
		r.reckoner.Reanchor(fix)
		r.haveFix = true
		r.fixes++
		telFixes.Inc()
	} else {
		r.missedWindows++
		telFixMisses.Inc()
	}
	r.loc.Reset()
}
