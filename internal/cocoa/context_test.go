package cocoa

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// quickCfg is a small, fast deployment shared by the context tests.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.NumRobots = 10
	cfg.NumEquipped = 5
	cfg.DurationS = 120
	cfg.Calibration.Samples = 40000
	cfg.GridCellM = 8
	return cfg
}

func TestValidateReturnsConfigError(t *testing.T) {
	cases := []struct {
		name  string
		field string
		mut   func(*Config)
	}{
		{"robots", "NumRobots", func(c *Config) { c.NumRobots = 0 }},
		{"equipped", "NumEquipped", func(c *Config) { c.NumEquipped = c.NumRobots + 1 }},
		{"period", "BeaconPeriodS", func(c *Config) { c.BeaconPeriodS = 0 }},
		{"duration", "DurationS", func(c *Config) { c.DurationS = -1 }},
		{"grid", "GridCellM", func(c *Config) { c.GridCellM = 0 }},
		{"radio", "Radio", func(c *Config) { c.Radio.PathLossExp = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("errors.Is(err, ErrInvalidConfig) = false for %v", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("errors.As(*ConfigError) = false for %v", err)
			}
			if ce.Field != tc.field {
				t.Errorf("Field = %q, want %q (err: %v)", ce.Field, tc.field, err)
			}
			if ce.Reason == "" {
				t.Error("empty Reason")
			}
		})
	}
}

func TestConfigErrorMessageNamesField(t *testing.T) {
	err := (&ConfigError{Field: "VMax", Reason: "too slow"}).Error()
	for _, want := range []string{"invalid config", "VMax", "too slow"} {
		if !containsStr(err, want) {
			t.Errorf("message %q missing %q", err, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// RunContext under a context that never fires must be byte-identical to the
// context-free path: the cancellation check reads ctx without touching the
// event calendar or any RNG stream.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := quickCfg()
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	viaCtx, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", viaCtx), fmt.Sprintf("%#v", direct); got != want {
		t.Error("RunContext result differs from Run for the same config")
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, quickCfg()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadlineMidRun(t *testing.T) {
	cfg := DefaultConfig() // paper scale: tens of milliseconds of wall time
	team, err := NewTeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := team.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Error("canceled run returned a partial result")
	}
}

func TestTeamRunsOnlyOnce(t *testing.T) {
	team, err := NewTeam(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := team.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := team.RunContext(context.Background()); err == nil {
		t.Fatal("second RunContext accepted")
	}
}

func TestRunContextNilContext(t *testing.T) {
	res, err := RunContext(nil, quickCfg()) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
}
