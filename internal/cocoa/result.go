package cocoa

import (
	"fmt"
	"math"

	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/metrics"
	"cocoa/internal/mrmm"
)

// Result holds everything a run measured: the localization-error time
// series (per robot and team-averaged), the energy ledger, and protocol
// counters.
type Result struct {
	Config Config

	// Times and AvgError form the error-over-time series the paper plots
	// (Figures 4, 6, 7, 9a, 10): the average over tracked robots at each
	// sample instant.
	Times    []float64
	AvgError []float64
	// PerRobot[i][k] is tracked robot i's error at Times[k], retained so
	// CDF snapshots (Figure 8) can be cut at any instant.
	PerRobot   [][]float64
	TrackedIDs []int

	// Energy ledger (Figure 9b). NoSleepEnergyJ is the counterfactual
	// "without coordination" total computed from the same run: every
	// sleep interval re-priced at idle power.
	TotalEnergyJ    float64
	NoSleepEnergyJ  float64
	PerRobotEnergyJ []float64

	// Protocol diagnostics.
	MAC            mac.Stats
	MRMM           mrmm.Stats
	Fixes          int
	MissedWindows  int
	BeaconsApplied int
	SyncsReceived  int

	// Controller-reporting outcome (Config.EnableReporting).
	ReportsSent      int
	ReportsDelivered int
	ReportHopsTotal  int

	// Fault-injection outcome (Config.Faults). All zero on clean runs.
	Crashes      int // crash events that fired
	FaultDrops   int // frames eaten by the bursty channel after MAC decode
	RSSIOutliers int // beacons whose RSSI carried an injected spike
	NeverFixed   int // tracked robots that finished without ever fixing

	// Final state for every robot (indexed by robot ID): where it really
	// ended and where it believed it was. Downstream consumers (e.g. the
	// geographic-routing example) build on these.
	FinalTruePositions []geom.Vec2
	FinalEstimates     []geom.Vec2
	Equipped           []bool
}

// scrubObservers strips the process-level observability handles before a
// Config is archived inside a Result. The Result is a record of the
// experiment, and Progress/Trace describe how the hosting process watched
// this particular run — retaining them would keep the recorder alive past
// the run and make otherwise-identical Results compare unequal.
func scrubObservers(cfg Config) Config {
	cfg.Progress = nil
	cfg.Trace = nil
	return cfg
}

func newResult(cfg Config, tracked []int) *Result {
	return &Result{
		Config:     scrubObservers(cfg),
		TrackedIDs: tracked,
		PerRobot:   make([][]float64, len(tracked)),
	}
}

// reset rewinds a recycled Result to the state newResult returns, keeping
// every slice's backing array so the run that adopts it appends without
// reallocating. Counters and aggregates are zeroed wholesale by value
// assignment; only the slices are carried over.
func (r *Result) reset(cfg Config, tracked []int) {
	per := r.PerRobot
	if cap(per) >= len(tracked) {
		// Re-extend over the full capacity first so inner backing arrays
		// parked beyond the previous length are reclaimed too, then cut to
		// size after the truncation loop below empties every row.
		per = per[:cap(per)]
	} else {
		fresh := make([][]float64, len(tracked))
		copy(fresh, per[:cap(per)])
		per = fresh
	}
	for i := range per {
		per[i] = per[i][:0]
	}
	per = per[:len(tracked)]
	*r = Result{
		Config:             scrubObservers(cfg),
		TrackedIDs:         tracked,
		Times:              r.Times[:0],
		AvgError:           r.AvgError[:0],
		PerRobot:           per,
		PerRobotEnergyJ:    r.PerRobotEnergyJ[:0],
		FinalTruePositions: r.FinalTruePositions[:0],
		FinalEstimates:     r.FinalEstimates[:0],
		Equipped:           r.Equipped[:0],
	}
}

// MeanError returns the localization error averaged over robots and time —
// the paper's "average localization error over time" headline metric.
func (r *Result) MeanError() float64 {
	if len(r.AvgError) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range r.AvgError {
		s += v
	}
	return s / float64(len(r.AvgError))
}

// MaxAvgError returns the worst team-averaged error over time.
func (r *Result) MaxAvgError() float64 {
	if len(r.AvgError) == 0 {
		return math.NaN()
	}
	m := r.AvgError[0]
	for _, v := range r.AvgError[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Series returns the average-error time series.
func (r *Result) Series() *metrics.TimeSeries {
	ts := &metrics.TimeSeries{}
	for i := range r.Times {
		ts.Add(r.Times[i], r.AvgError[i])
	}
	return ts
}

// ErrorCDFAt returns the CDF of per-robot error at the sample instant
// closest to t — Figure 8's three snapshots.
func (r *Result) ErrorCDFAt(t float64) (*metrics.CDF, error) {
	if len(r.Times) == 0 {
		return nil, fmt.Errorf("cocoa: result has no samples")
	}
	k := 0
	best := math.Inf(1)
	for i, ti := range r.Times {
		if d := math.Abs(ti - t); d < best {
			best, k = d, i
		}
	}
	xs := make([]float64, 0, len(r.PerRobot))
	for _, series := range r.PerRobot {
		if k < len(series) {
			xs = append(xs, series[k])
		}
	}
	return metrics.NewCDF(xs), nil
}

// ReportDeliveryRate returns the fraction of controller reports that
// reached the Sync robot (NaN when reporting was off or nothing was sent).
func (r *Result) ReportDeliveryRate() float64 {
	if r.ReportsSent == 0 {
		return math.NaN()
	}
	return float64(r.ReportsDelivered) / float64(r.ReportsSent)
}

// EnergySavings returns the paper's Figure 9(b) ratio: energy without
// coordination over energy with coordination.
func (r *Result) EnergySavings() float64 {
	if r.TotalEnergyJ == 0 {
		return math.NaN()
	}
	return r.NoSleepEnergyJ / r.TotalEnergyJ
}

// FixRate returns the fraction of (robot, window) opportunities that ended
// in a successful RF fix.
func (r *Result) FixRate() float64 {
	total := r.Fixes + r.MissedWindows
	if total == 0 {
		return math.NaN()
	}
	return float64(r.Fixes) / float64(total)
}

// UncoveredFraction returns the fraction of (robot, window) localization
// opportunities that ended without a fix — the robustness sweep's
// coverage metric. Windows a robot spends crashed count as uncovered: a
// silent robot is exactly what the fault model is probing. Runs without
// RF windows return NaN.
func (r *Result) UncoveredFraction() float64 {
	total := r.Fixes + r.MissedWindows
	if total == 0 {
		return math.NaN()
	}
	return float64(r.MissedWindows) / float64(total)
}
