package cocoa

import (
	"reflect"
	"runtime"
	"testing"

	"cocoa/internal/faults"
)

// scratchVariants is the configuration matrix the byte-identity suite runs:
// every localizer backend plus the modes whose state differs structurally
// (odometry-only allocates no grids at all, faults arm extra streams).
func scratchVariants() map[string]Config {
	base := testConfig()
	base.DurationS = 150

	eager := base
	eager.GridStats = "eager"

	ekf := base
	ekf.Localizer = LocalizerEKF

	mcl := base
	mcl.Localizer = LocalizerParticle
	mcl.Particles = 400

	odo := base
	odo.Mode = ModeOdometryOnly

	hostile := base
	hostile.SecondaryBeacons = true
	hostile.EnableReporting = true
	hostile.Faults.GE = faults.Bursty(0.5, faults.DefaultBurstFrames)
	hostile.Faults.CrashFraction = 0.25
	hostile.Faults.CrashMeanDownS = 40
	hostile.Faults.OutlierProb = 0.05

	return map[string]Config{
		"grid": base, "grid-eager": eager, "ekf": ekf, "mcl": mcl,
		"odometry-only": odo, "hostile": hostile,
	}
}

// A scratch-built run must be byte-identical to a fresh run of the same
// config — including when the scratch is warm from a run of a *different*
// config, so recycled streams, grids, and result buffers all carry state
// that must be fully overwritten.
func TestScratchByteIdentity(t *testing.T) {
	warm := testConfig()
	warm.NumRobots = 8
	warm.NumEquipped = 4
	warm.DurationS = 100
	warm.GridCellM = 8 // grid geometry mismatch: forces the allocate path next run
	warm.Seed = 99

	sc := NewScratch()
	for name, cfg := range scratchVariants() {
		t.Run(name, func(t *testing.T) {
			fresh, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunScratch(nil, warm, sc); err != nil {
				t.Fatal(err)
			}
			got, err := RunScratch(nil, cfg, sc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, got) {
				t.Errorf("scratch-built result differs from fresh run")
			}
			// Second pass on the now-warm scratch with a released result:
			// exercises grid reuse (matching geometry) and result recycling.
			sc.ReleaseResult(got)
			again, err := RunScratch(nil, cfg, sc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, again) {
				t.Errorf("second scratch reuse diverged from fresh run")
			}
		})
	}
}

// A released Result's buffers must actually be recycled: the next run on
// the scratch writes into the same backing arrays.
func TestScratchRecyclesResultBuffers(t *testing.T) {
	cfg := testConfig()
	cfg.DurationS = 100
	sc := NewScratch()
	res, err := RunScratch(nil, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) == 0 || len(res.PerRobot) == 0 || len(res.PerRobot[0]) == 0 {
		t.Fatal("run produced no samples")
	}
	times0 := &res.Times[0]
	per0 := &res.PerRobot[0][0]
	sc.ReleaseResult(res)
	res2, err := RunScratch(nil, cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Fatal("released Result not recycled")
	}
	if &res2.Times[0] != times0 || &res2.PerRobot[0][0] != per0 {
		t.Error("recycled Result reallocated its buffers")
	}
}

// allocBytesPerRun measures the average heap bytes one call of f allocates.
// TotalAlloc is monotonic (GC never decreases it), so the measurement is
// stable without disabling collection.
func allocBytesPerRun(f func()) float64 {
	const runs = 5
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / runs
}

// The scratch's reason to exist: replications through a warm scratch must
// allocate less than fresh runs — fewer objects, and a small fraction of
// the bytes (the savings concentrate in few-but-large allocations: belief
// grids and the ~5 KB lagged-Fibonacci state vector behind every stream).
// The pins are ratios, not absolute counts, so they stay meaningful as the
// engine evolves.
func TestScratchReuseAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.DurationS = 100
	sc := NewScratch()
	// Warm everything the comparison should not see: the process-wide
	// calibration cache, the scratch's pools, and the runtime itself.
	if _, err := RunScratch(nil, cfg, sc); err != nil {
		t.Fatal(err)
	}

	freshAllocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	reusedAllocs := testing.AllocsPerRun(3, func() {
		res, err := RunScratch(nil, cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		sc.ReleaseResult(res)
	})
	if reusedAllocs >= freshAllocs {
		t.Errorf("scratch run allocates %.0f objects, fresh %.0f: reuse saves nothing", reusedAllocs, freshAllocs)
	}

	freshBytes := allocBytesPerRun(func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	reusedBytes := allocBytesPerRun(func() {
		res, err := RunScratch(nil, cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		sc.ReleaseResult(res)
	})
	if reusedBytes > freshBytes/3 {
		t.Errorf("scratch run allocates %.0f B, fresh %.0f B: want at least a 3x drop",
			reusedBytes, freshBytes)
	}
}
