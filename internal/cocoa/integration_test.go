package cocoa

import (
	"math"
	"testing"
)

// Failure injection and stress scenarios across the full stack.

// With a severely shortened radio range and very few equipped robots, the
// network is coverage-limited: some robots miss whole windows. The system
// must degrade gracefully — lower fix rate, no panics, bounded error.
func TestCoverageGapsDegradeGracefully(t *testing.T) {
	cfg := testConfig()
	cfg.NumRobots = 16
	cfg.NumEquipped = 2
	cfg.DurationS = 400
	// Shrink the decodable range to ~60 m in a 200 m arena.
	cfg.Radio.SensitivityDBm = -85

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissedWindows == 0 {
		t.Error("expected missed windows in a coverage-limited deployment")
	}
	if rate := res.FixRate(); !(rate > 0 && rate < 1) {
		t.Errorf("fix rate = %v, want partial coverage (0,1)", rate)
	}
	for i, v := range res.AvgError {
		if math.IsNaN(v) || v < 0 || v > 300 {
			t.Fatalf("degenerate error %v at sample %d", v, i)
		}
	}
}

// Heavy channel contention: short periods, large k. Collisions must occur
// and the stack must survive them.
func TestHeavyContention(t *testing.T) {
	cfg := testConfig()
	cfg.BeaconPeriodS = 5
	cfg.TransmitPeriodS = 3
	cfg.BeaconsPerWindow = 8
	cfg.DurationS = 120

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAC.Collided == 0 {
		t.Error("expected collisions under heavy contention")
	}
	if res.Fixes == 0 {
		t.Error("no fixes despite k=8 redundancy")
	}
}

// A transmit window so short that the SYNC guard consumes it exercises the
// fallback beacon spreading path.
func TestTinyTransmitWindow(t *testing.T) {
	cfg := testConfig()
	cfg.TransmitPeriodS = 0.3
	cfg.BeaconPeriodS = 20
	cfg.DurationS = 100

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAC.Sent == 0 {
		t.Error("no frames sent with a tiny window")
	}
}

// All-equipped teams have nobody to localize; the config must be rejected
// rather than dividing by zero at sampling time.
func TestAllEquippedRejected(t *testing.T) {
	cfg := testConfig()
	cfg.NumEquipped = cfg.NumRobots
	if err := cfg.Validate(); err == nil {
		t.Fatal("accepted all-equipped RF configuration")
	}
	// Odometry-only mode does not care.
	cfg.Mode = ModeOdometryOnly
	if err := cfg.Validate(); err != nil {
		t.Fatalf("odometry-only rejected: %v", err)
	}
}

// One single equipped robot cannot give three distinct beacons' geometry
// much diversity, but k=3 beacons still satisfy the >=3 rule; the estimate
// is poor yet bounded (ring ambiguity collapses to the beacon ring).
func TestSingleAnchorBoundedError(t *testing.T) {
	cfg := testConfig()
	cfg.NumRobots = 6
	cfg.NumEquipped = 1
	cfg.DurationS = 300

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diag := cfg.Area.Diagonal()
	for i, v := range res.AvgError {
		if v > diag {
			t.Fatalf("error %v at sample %d exceeds the arena diagonal", v, i)
		}
	}
}

// Long-duration stability: no leaks of pending events, no error blowup
// after many periods.
func TestManyPeriodsStable(t *testing.T) {
	cfg := testConfig()
	cfg.BeaconPeriodS = 10
	cfg.DurationS = 900 // 90 periods

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Series().ValueAt(100)
	last := res.Series().ValueAt(890)
	if last > 5*first+20 {
		t.Errorf("error drifted across periods: t=100 %.1f m, t=890 %.1f m", first, last)
	}
}

// Uncoordinated mode must never miss frames to sleeping radios, even with
// drifting clocks (nobody sleeps).
func TestUncoordinatedImmuneToDrift(t *testing.T) {
	cfg := testConfig()
	cfg.Coordinated = false
	cfg.ClockDriftSigmaS = 3
	cfg.DisableSync = true
	cfg.DurationS = 300

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAC.MissedAsleep != 0 {
		t.Errorf("uncoordinated run missed %d frames asleep", res.MAC.MissedAsleep)
	}
	if res.FixRate() < 0.9 {
		t.Errorf("uncoordinated fix rate = %v", res.FixRate())
	}
}

// The particle backend must also hold up under the stress scenario.
func TestParticleBackendUnderStress(t *testing.T) {
	cfg := testConfig()
	cfg.Localizer = LocalizerParticle
	cfg.Particles = 500
	cfg.BeaconPeriodS = 10
	cfg.DurationS = 200

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.AvgError {
		if math.IsNaN(v) {
			t.Fatalf("NaN error at sample %d", i)
		}
	}
	if res.Fixes == 0 {
		t.Error("no fixes from the particle backend")
	}
}

// Controller reporting: localized robots unicast status reports to the
// Sync robot by greedy geographic forwarding over their CoCoA estimates.
func TestControllerReporting(t *testing.T) {
	cfg := testConfig()
	cfg.EnableReporting = true
	cfg.DurationS = 400
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReportsSent == 0 {
		t.Fatal("no reports sent")
	}
	rate := res.ReportDeliveryRate()
	if rate < 0.7 {
		t.Errorf("report delivery rate = %.2f, want most reports through "+
			"(sent %d, delivered %d)", rate, res.ReportsSent, res.ReportsDelivered)
	}
	if res.ReportsDelivered > 0 && res.ReportHopsTotal < res.ReportsDelivered {
		t.Errorf("hops %d below delivered %d", res.ReportHopsTotal, res.ReportsDelivered)
	}
}

func TestReportingOffByDefault(t *testing.T) {
	res, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ReportsSent != 0 || res.ReportsDelivered != 0 {
		t.Errorf("reporting traffic without EnableReporting: %+v", res.ReportsSent)
	}
	if !math.IsNaN(res.ReportDeliveryRate()) {
		t.Error("delivery rate must be NaN when reporting is off")
	}
}
