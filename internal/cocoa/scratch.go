package cocoa

import (
	"context"

	"cocoa/internal/bayes"
	"cocoa/internal/sim"
	"cocoa/internal/telemetry"
)

// telScratchReuse counts teams assembled on a warm scratch — each increment
// is one replication that recycled the previous run's simulator, RNG
// streams, and belief grids instead of reallocating them.
var telScratchReuse = telemetry.Default.Counter("cocoa.scratch_reuse")

// Scratch is the reusable memory of one run slot. A sweep worker that
// executes replications back to back creates one Scratch and builds every
// team through it (NewTeamScratch / RunScratch); each new team then recycles
// the previous run's expensive state instead of reallocating it:
//
//   - the discrete-event simulator (calendar heap and event arena),
//   - every named RNG stream (each carries a ~5 KB lagged-Fibonacci state
//     vector, reseeded in place — see sim.RNGPool),
//   - the per-robot belief grids (reused via bayes.Grid.Reset whenever the
//     area and cell size match),
//   - Result buffers, for callers that explicitly return them with
//     ReleaseResult once a run's numbers have been extracted.
//
// Reuse is invisible in the results: a reseed is a complete stream reset and
// Grid.Reset restores the exact uniform prior, so a scratch-built run is
// byte-identical to a fresh one (pinned by TestScratchByteIdentity).
//
// A Scratch serves one live team at a time. Building a new team through a
// scratch invalidates the previous team built through it; the caller must
// be done with that team (though not with its Result — Results are only
// recycled via ReleaseResult). A Scratch is not safe for concurrent use.
type Scratch struct {
	sim  *sim.Simulator
	rngs *sim.RNGPool

	// grids is the belief-grid arena: grids[:gridsUsed] are handed out to
	// the current team, the rest are free for reuse.
	grids     []*bayes.Grid
	gridsUsed int

	// results holds Result values returned through ReleaseResult, ready to
	// be recycled by the next run.
	results []*Result

	// runs counts teams built through this scratch, to tell a cold first
	// use from a warm reuse.
	runs int
}

// NewScratch returns an empty run slot. The first team built through it
// allocates as a fresh run would; subsequent teams recycle.
func NewScratch() *Scratch {
	return &Scratch{sim: sim.New(), rngs: sim.NewRNGPool()}
}

// begin opens a new run slot: it recycles the simulator, the stream pool,
// and the grid arena, and returns the simulator plus the root RNG for the
// run's seed.
func (sc *Scratch) begin(seed int64) (*sim.Simulator, *sim.RNG) {
	if sc.runs > 0 {
		telScratchReuse.Inc()
	}
	sc.runs++
	sc.sim.Reset()
	sc.rngs.Recycle()
	sc.gridsUsed = 0
	return sc.sim, sc.rngs.Root(seed)
}

// grid hands out a belief grid for the given geometry, reusing a retained
// one when its dimensions match (Grid.Reset restores the exact uniform
// prior a fresh grid starts from) and allocating otherwise. The handed-out
// grid is always in StatsIncremental mode, NewGrid's default; the caller
// re-applies any config override.
func (sc *Scratch) grid(cfg Config) (*bayes.Grid, error) {
	for i := sc.gridsUsed; i < len(sc.grids); i++ {
		g := sc.grids[i]
		if g.Area() == cfg.Area && g.CellSize() == cfg.GridCellM {
			sc.grids[i] = sc.grids[sc.gridsUsed]
			sc.grids[sc.gridsUsed] = g
			sc.gridsUsed++
			g.SetStatsMode(bayes.StatsIncremental)
			g.Reset()
			return g, nil
		}
	}
	g, err := bayes.NewGrid(cfg.Area, cfg.GridCellM)
	if err != nil {
		return nil, err
	}
	sc.grids = append(sc.grids, g)
	last := len(sc.grids) - 1
	sc.grids[last] = sc.grids[sc.gridsUsed]
	sc.grids[sc.gridsUsed] = g
	sc.gridsUsed++
	return g, nil
}

// ReleaseResult returns a Result's buffers to the scratch for reuse by a
// later run. Call it only once nothing will read the Result again: the next
// run built through this scratch overwrites it in place. Releasing to a nil
// scratch or releasing a nil Result is a no-op.
func (sc *Scratch) ReleaseResult(res *Result) {
	if sc == nil || res == nil {
		return
	}
	sc.results = append(sc.results, res)
}

// takeResult pops a recycled Result if one is available, rewound to empty
// with its buffer capacities intact.
func (sc *Scratch) takeResult(cfg Config, tracked []int) *Result {
	n := len(sc.results)
	if n == 0 {
		return nil
	}
	res := sc.results[n-1]
	sc.results[n-1] = nil
	sc.results = sc.results[:n-1]
	res.reset(cfg, tracked)
	return res
}

// RunScratch assembles a deployment on the scratch and runs it under ctx —
// the replication-loop equivalent of RunContext. A nil scratch degenerates
// to RunContext exactly.
func RunScratch(ctx context.Context, cfg Config, sc *Scratch) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	team, err := NewTeamScratch(cfg, sc)
	if err != nil {
		return nil, err
	}
	return team.RunContext(ctx)
}
