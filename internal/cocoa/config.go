// Package cocoa implements the CoCoA system itself: the coordinated
// cooperative localization architecture of the paper. It assembles the
// substrates (simulator, radio, MAC, NIC, mobility, odometry, calibration,
// Bayesian grid, MRMM) into a robot team that follows the paper's
// timeline:
//
//   - time is divided into beacon periods T with a transmit window t at the
//     start of each;
//   - robots with localization devices broadcast k RF beacons carrying
//     their coordinates during each window;
//   - robots without devices localize from the beacons with Bayesian
//     inference, then dead-reckon with odometry until the next window;
//   - a designated Sync robot disseminates SYNC messages over the MRMM
//     mesh at the start of every period, and — when coordination is
//     enabled — every robot sleeps its radio between windows.
package cocoa

import (
	"errors"
	"fmt"

	"cocoa/internal/caltable"
	"cocoa/internal/energy"
	"cocoa/internal/faults"
	"cocoa/internal/geom"
	"cocoa/internal/mobility"
	"cocoa/internal/mrmm"
	"cocoa/internal/obs"
	"cocoa/internal/odometry"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// Mode selects the localization strategy, matching the paper's three
// evaluated approaches.
type Mode int

// Localization modes.
const (
	// ModeOdometryOnly: robots know their initial position and rely on
	// dead reckoning only (Section 4.1).
	ModeOdometryOnly Mode = iota + 1
	// ModeRFOnly: robots localize from beacons only; estimates stay
	// frozen between transmit windows (Section 4.2).
	ModeRFOnly
	// ModeCombined is CoCoA: RF fixes at each window, odometry in
	// between (Section 4.3).
	ModeCombined
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOdometryOnly:
		return "odometry-only"
	case ModeRFOnly:
		return "rf-only"
	case ModeCombined:
		return "cocoa"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// LocalizerKind selects the RF position-estimation backend.
type LocalizerKind int

// Localization backends.
const (
	// LocalizerGrid is the paper's technique: Bayesian inference on a
	// discretized position grid (Sichitiu & Ramadurai).
	LocalizerGrid LocalizerKind = iota + 1
	// LocalizerParticle is Monte Carlo localization, demonstrating the
	// paper's claim that other techniques integrate into CoCoA.
	LocalizerParticle
	// LocalizerEKF is an extended Kalman filter over calibrated range
	// measurements (the related work's Kalman family).
	LocalizerEKF
)

// String implements fmt.Stringer.
func (k LocalizerKind) String() string {
	switch k {
	case LocalizerGrid:
		return "grid"
	case LocalizerParticle:
		return "particle"
	case LocalizerEKF:
		return "ekf"
	default:
		return fmt.Sprintf("LocalizerKind(%d)", int(k))
	}
}

// Config describes one simulated deployment. DefaultConfig reproduces the
// paper's Section 4 setup.
type Config struct {
	// NumRobots is the team size (paper: 50).
	NumRobots int
	// NumEquipped is how many robots carry localization devices
	// (paper default: half).
	NumEquipped int
	// Area is the deployment area (paper: 40000 m^2).
	Area geom.Rect
	// VMax is the maximum robot speed in m/s (paper: 0.5 or 2.0).
	VMax float64

	// BeaconPeriodS is T, the beacon period in seconds.
	BeaconPeriodS sim.Time
	// TransmitPeriodS is t, the transmit window (paper: 3 s).
	TransmitPeriodS sim.Time
	// BeaconsPerWindow is k, the per-window beacon redundancy (paper: 3).
	BeaconsPerWindow int

	// GridCellM is the Bayesian grid resolution in meters.
	GridCellM float64
	// Localizer selects the RF estimation backend; the zero value means
	// LocalizerGrid (the paper's technique).
	Localizer LocalizerKind
	// Particles sizes the Monte Carlo backend (ignored by the grid).
	Particles int

	// Mode selects odometry-only / RF-only / CoCoA.
	Mode Mode
	// Coordinated controls whether radios sleep between windows. With
	// false the radios idle instead — the paper's "without coordination"
	// energy baseline.
	Coordinated bool
	// SecondaryBeacons enables the paper's future-work extension:
	// unequipped robots that have localized also beacon, advertising
	// their estimated coordinates.
	SecondaryBeacons bool

	// DurationS is the simulated time (paper: 30 minutes).
	DurationS sim.Time
	// SampleIntervalS is the metric sampling cadence (paper plots per
	// second).
	SampleIntervalS sim.Time

	// Seed makes the run reproducible.
	Seed int64

	// Radio, Energy, Odometry and Calibration override the substrate
	// models; zero values select the defaults.
	Radio       radio.Model
	Energy      energy.Params
	Odometry    odometry.Config
	Calibration caltable.Options

	// RestMinS and RestMaxS optionally add task pauses at waypoints.
	RestMinS sim.Time
	RestMaxS sim.Time

	// ClockDriftSigmaS models the robots' imperfect clocks: each robot's
	// timer error grows by N(0, sigma) per beacon period unless a SYNC
	// message resynchronizes it. Zero (the default) models perfect
	// coarse synchronization.
	ClockDriftSigmaS float64
	// DisableSync removes the SYNC dissemination: robots rely on a
	// preprogrammed schedule instead. Combined with ClockDriftSigmaS this
	// quantifies why CoCoA's MRMM-based synchronization exists.
	DisableSync bool

	// FailEquippedCount robots with localization devices die (power off,
	// stop moving) at FailAtS — failure injection for the paper's
	// disaster scenarios. The Sync robot never fails.
	FailEquippedCount int
	FailAtS           sim.Time

	// TerrainAmplitude models uneven ground (paper introduction): the
	// worst patches multiply odometry noise by 1+TerrainAmplitude. Zero
	// (default) is smooth ground. TerrainCellM is the feature size.
	TerrainAmplitude float64
	TerrainCellM     float64

	// EnableReporting turns on the paper-conclusion data path: during
	// each transmit window the robots exchange geographic HELLOs and
	// every localized unequipped robot unicasts a status report toward
	// the Sync robot ("the controller") by greedy geographic forwarding
	// over CoCoA coordinates.
	EnableReporting bool

	// MRMMPruning toggles MRMM's mobility-aware mesh pruning (false
	// degrades SYNC dissemination to plain ODMRP) for the ablation.
	MRMMPruning bool

	// NeighborIndex selects how the MAC medium finds each frame's
	// candidate receivers: "grid" (also the "" default) buckets stations
	// in a uniform spatial hash sized from the radio's plausibility
	// radius, so swarm-scale teams pay per-frame cost proportional to the
	// local neighborhood instead of the team size; "scan" forces the O(n)
	// reference path. The team re-indexes positions every sampling tick
	// and detaches crashed or powered-off robots, so results are
	// byte-identical under either setting (see DESIGN.md §12) — the index
	// is strictly a performance device.
	NeighborIndex string

	// UpdateWorkers bounds the worker pool that fans per-robot grid
	// updates within a single run. Per-robot localizer state is disjoint
	// and each robot's queued beacons are applied in arrival order by one
	// goroutine, so results are byte-identical at any worker count. 0 (the
	// default) sizes the pool to GOMAXPROCS; 1 forces serial application.
	UpdateWorkers int

	// GridStats selects how the Bayesian grid computes its statistics
	// readouts (estimate, entropy, total probability): "incremental" (also
	// the "" default) maintains running accumulators updated by each
	// beacon's touched cells with a drift-bounded full re-sum backstop;
	// "eager" forces the full-grid scans, the slow reference the
	// incremental path is equivalence-checked against at 1e-9 (see
	// DESIGN.md §13). Only the grid localizer reads this knob.
	GridStats string

	// Checkpoint enables mid-run snapshotting: after every EveryTicks-th
	// sampling tick the run's state is captured and atomically written to
	// Dir/latest.ckpt, ready for ResumeFrom. The zero value disables
	// snapshotting entirely. The field is excluded from JSON — and hence
	// from Result bytes and from the config embedded in snapshots —
	// because checkpoint placement is an operational property of the
	// process running the simulation, not of the experiment: two runs
	// differing only here are byte-identical (see DESIGN.md §14).
	Checkpoint CheckpointSpec `json:"-"`

	// Progress, when non-nil, receives the run's live position: the
	// simulation loop publishes (sampling tick, total ticks) through one
	// atomic store per tick. Like Checkpoint it is excluded from JSON —
	// it describes how the hosting process watches the run, not the
	// experiment — and it is strictly write-only for the simulation, so
	// runs with and without it are byte-identical (DESIGN.md §15).
	Progress *obs.Progress `json:"-"`

	// Trace, when non-nil, records the run's span timeline (run →
	// sampling-window → {mac-frame, belief-update, checkpoint}) on the
	// simulation's virtual clock for export as Chrome trace-event JSON.
	// Excluded from JSON for the same reason as Progress; the recorder is
	// append-only and nothing in the run reads it back, so tracing never
	// steers results (DESIGN.md §15).
	Trace *obs.Trace `json:"-"`

	// Faults injects unreliable-network conditions: bursty link loss,
	// robot crash/recovery outages, RSSI outlier spikes, and per-robot
	// clock skew. The zero value (the default) injects nothing and leaves
	// every RNG stream untouched, so fault-free runs are byte-identical
	// to configurations predating the faults layer. Faults apply to the
	// RF modes only; odometry-only robots have no radio to degrade.
	Faults faults.Config
}

// DefaultConfig returns the paper's evaluation setup: 50 robots in a
// 200 m x 200 m area, half equipped, T = 100 s, t = 3 s, k = 3, 30-minute
// runs, coordinated sleeping, CoCoA mode.
func DefaultConfig() Config {
	return Config{
		NumRobots:        50,
		NumEquipped:      25,
		Area:             geom.Square(200),
		VMax:             2.0,
		BeaconPeriodS:    100,
		TransmitPeriodS:  3,
		BeaconsPerWindow: 3,
		GridCellM:        2,
		Localizer:        LocalizerGrid,
		Particles:        2000,
		Mode:             ModeCombined,
		Coordinated:      true,
		DurationS:        1800,
		SampleIntervalS:  1,
		Seed:             1,
		Radio:            radio.DefaultModel(),
		Energy:           energy.DefaultParams(),
		Odometry:         odometry.DefaultConfig(),
		Calibration:      caltable.DefaultOptions(),
		TerrainCellM:     25,
		MRMMPruning:      true,
	}
}

// ErrInvalidConfig is the sentinel every configuration-validation failure
// wraps: errors.Is(err, ErrInvalidConfig) classifies an error as a caller
// mistake (an HTTP 400, not a 500) without string matching. The concrete
// detail travels in the *ConfigError it is wrapped by.
var ErrInvalidConfig = errors.New("cocoa: invalid config")

// ConfigError reports which Config field failed validation and why. It
// wraps ErrInvalidConfig, so both errors.Is(err, ErrInvalidConfig) and
// errors.As(err, &cfgErr) work on anything Validate returns.
type ConfigError struct {
	// Field is the offending Config field, e.g. "NumRobots" or
	// "Radio" for a substrate model that failed its own validation.
	Field string
	// Reason is the human-readable explanation.
	Reason string
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("cocoa: invalid config: %s: %s", e.Field, e.Reason)
}

// Unwrap ties every ConfigError to the ErrInvalidConfig sentinel.
func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// configErrorf builds a *ConfigError with a formatted reason.
func configErrorf(field, format string, args ...any) *ConfigError {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate reports whether the configuration is usable. Every failure is a
// *ConfigError wrapping ErrInvalidConfig.
func (c Config) Validate() error {
	switch {
	case c.NumRobots <= 0:
		return configErrorf("NumRobots", "must be positive")
	case c.NumEquipped < 0 || c.NumEquipped > c.NumRobots:
		return configErrorf("NumEquipped", "%d out of [0, %d]", c.NumEquipped, c.NumRobots)
	case c.Mode != ModeOdometryOnly && c.NumEquipped == 0:
		return configErrorf("NumEquipped", "RF localization needs at least one equipped robot")
	case c.Mode != ModeOdometryOnly && c.NumEquipped == c.NumRobots:
		return configErrorf("NumEquipped", "RF localization needs at least one unequipped robot to localize")
	case c.Area.Width() <= 0 || c.Area.Height() <= 0:
		return configErrorf("Area", "degenerate area")
	case c.VMax <= 0.1:
		return configErrorf("VMax", "%v must exceed the paper's 0.1 m/s floor", c.VMax)
	case c.BeaconPeriodS <= 0:
		return configErrorf("BeaconPeriodS", "must be positive")
	case c.TransmitPeriodS <= 0 || c.TransmitPeriodS >= c.BeaconPeriodS:
		return configErrorf("TransmitPeriodS", "must be in (0, T)")
	case c.BeaconsPerWindow <= 0:
		return configErrorf("BeaconsPerWindow", "must be positive")
	case c.GridCellM <= 0:
		return configErrorf("GridCellM", "must be positive")
	case c.Localizer != 0 && (c.Localizer < LocalizerGrid || c.Localizer > LocalizerEKF):
		return configErrorf("Localizer", "invalid localizer %d", int(c.Localizer))
	case c.Localizer == LocalizerParticle && c.Particles <= 0:
		return configErrorf("Particles", "must be positive for the particle backend")
	case c.Mode < ModeOdometryOnly || c.Mode > ModeCombined:
		return configErrorf("Mode", "invalid mode %d", int(c.Mode))
	case c.DurationS <= 0:
		return configErrorf("DurationS", "must be positive")
	case c.SampleIntervalS <= 0:
		return configErrorf("SampleIntervalS", "must be positive")
	case c.ClockDriftSigmaS < 0:
		return configErrorf("ClockDriftSigmaS", "negative clock drift")
	case c.FailEquippedCount < 0 || c.FailEquippedCount >= c.NumEquipped && c.FailEquippedCount > 0:
		return configErrorf("FailEquippedCount", "%d must leave the Sync robot alive", c.FailEquippedCount)
	case c.FailAtS < 0:
		return configErrorf("FailAtS", "negative FailAtS")
	case c.TerrainAmplitude < 0:
		return configErrorf("TerrainAmplitude", "negative TerrainAmplitude")
	case c.TerrainAmplitude > 0 && c.TerrainCellM <= 0:
		return configErrorf("TerrainCellM", "must be positive with terrain enabled")
	case c.UpdateWorkers < 0:
		return configErrorf("UpdateWorkers", "negative UpdateWorkers")
	case c.NeighborIndex != "" && c.NeighborIndex != "grid" && c.NeighborIndex != "scan":
		return configErrorf("NeighborIndex", "%q must be \"grid\" or \"scan\"", c.NeighborIndex)
	case c.GridStats != "" && c.GridStats != "incremental" && c.GridStats != "eager":
		return configErrorf("GridStats", "%q must be \"incremental\" or \"eager\"", c.GridStats)
	case c.Checkpoint.EveryTicks < 0:
		return configErrorf("Checkpoint", "negative EveryTicks")
	case c.Checkpoint.EveryTicks > 0 && c.Checkpoint.Dir == "":
		return configErrorf("Checkpoint", "EveryTicks set without Dir")
	}
	if err := c.Radio.Validate(); err != nil {
		return &ConfigError{Field: "Radio", Reason: err.Error()}
	}
	if err := c.Energy.Validate(); err != nil {
		return &ConfigError{Field: "Energy", Reason: err.Error()}
	}
	if err := c.Odometry.Validate(); err != nil {
		return &ConfigError{Field: "Odometry", Reason: err.Error()}
	}
	if c.Mode != ModeOdometryOnly {
		if err := c.Calibration.Validate(); err != nil {
			return &ConfigError{Field: "Calibration", Reason: err.Error()}
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return &ConfigError{Field: "Faults", Reason: err.Error()}
	}
	return nil
}

// mobilityConfig derives the waypoint model configuration.
func (c Config) mobilityConfig() mobility.Config {
	return mobility.Config{
		Area:    c.Area,
		VMin:    0.1,
		VMax:    c.VMax,
		RestMin: c.RestMinS,
		RestMax: c.RestMaxS,
	}
}

// mrmmConfig derives the MRMM configuration.
func (c Config) mrmmConfig() mrmm.Config {
	mc := mrmm.DefaultConfig(c.Radio.MeanRange())
	mc.UsePruning = c.MRMMPruning
	// Keep forwarding-group state alive across beacon periods so the
	// mesh survives the sleep phase.
	mc.FGTimeoutS = 3 * c.BeaconPeriodS
	return mc
}
