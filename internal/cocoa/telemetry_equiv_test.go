package cocoa

import (
	"encoding/json"
	"testing"

	"cocoa/internal/telemetry"
)

// Telemetry records, it never steers: enabling the registry must not
// perturb a single bit of any Result, at any intra-run worker count.
// (make check runs this under -race, which also exercises the shared
// process-global instruments against concurrent grid workers.)
func TestTelemetryOnOffByteIdentical(t *testing.T) {
	wasEnabled := telemetry.Default.Enabled()
	defer telemetry.Default.SetEnabled(wasEnabled)

	resultJSON := func(workers int) []byte {
		cfg := testConfig()
		cfg.UpdateWorkers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for _, workers := range []int{1, 2, 8} {
		telemetry.Default.SetEnabled(false)
		off := resultJSON(workers)
		telemetry.Default.SetEnabled(true)
		on := resultJSON(workers)
		if string(off) != string(on) {
			t.Errorf("UpdateWorkers=%d: Result differs with telemetry enabled", workers)
		}
	}
}

// A run with telemetry enabled must actually populate the stack's
// instruments — the registry names the ISSUE pins across sim, mac, and
// cocoa must move during a plain CoCoA run.
func TestTelemetryCountersPopulated(t *testing.T) {
	wasEnabled := telemetry.Default.Enabled()
	defer telemetry.Default.SetEnabled(wasEnabled)
	telemetry.Default.SetEnabled(true)

	before := telemetry.Default.Snapshot()
	if _, err := Run(testConfig()); err != nil {
		t.Fatal(err)
	}
	d := telemetry.Diff(before, telemetry.Default.Snapshot())
	counters := map[string]int64{}
	for _, c := range d.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"sim.events_dispatched",
		"mac.sent",
		"mac.delivered",
		"network.delivered",
		"cocoa.beacons_sent",
		"cocoa.beacons_applied",
		"cocoa.fixes",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %s = 0 after a run, want > 0", name)
		}
	}
}
