package cocoa

import "testing"

// benchConfig is a mid-size deployment: big enough that beacon application
// dominates, small enough that one iteration stays in milliseconds.
func benchConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.NumRobots = 20
	cfg.NumEquipped = 10
	cfg.DurationS = 200
	cfg.BeaconPeriodS = 50
	cfg.GridCellM = 2
	cfg.Calibration.Samples = 60000
	cfg.UpdateWorkers = workers
	return cfg
}

func benchRun(b *testing.B, cfg Config) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Fixes == 0 {
			b.Fatal("no fixes")
		}
	}
}

// BenchmarkTeamStepSerial pins the beacon worker pool to one goroutine —
// the baseline the parallel variant is judged against.
func BenchmarkTeamStepSerial(b *testing.B) {
	benchRun(b, benchConfig(1))
}

// BenchmarkTeamStepParallel uses the default auto-sized pool (GOMAXPROCS
// workers), exercising the fan-out path end to end.
func BenchmarkTeamStepParallel(b *testing.B) {
	benchRun(b, benchConfig(0))
}
