package cocoa

import (
	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// Event is one observable occurrence in a run. Observers receive every
// event in virtual-time order; the event log in internal/eventlog
// serializes them to JSONL for offline analysis.
type Event struct {
	TimeS float64   `json:"timeS"`
	Kind  EventKind `json:"kind"`
	Robot int       `json:"robot"`
	// Pos is the event's associated position: the fix for EventFix, the
	// advertised coordinates for EventBeaconSent.
	Pos geom.Vec2 `json:"pos"`
	// ErrM is the localization error at fix time (EventFix only).
	ErrM float64 `json:"errM,omitempty"`
	// Beacons is the count applied to the fix (EventFix) or received in
	// the closing window (EventWindowEnd).
	Beacons int `json:"beacons,omitempty"`
}

// EventKind enumerates observable occurrences.
type EventKind string

// Event kinds.
const (
	EventWindowStart EventKind = "window-start"
	EventWindowEnd   EventKind = "window-end"
	EventBeaconSent  EventKind = "beacon-sent"
	EventFix         EventKind = "fix"
	EventFixMissed   EventKind = "fix-missed"
	EventSleep       EventKind = "sleep"
	EventWake        EventKind = "wake"
	EventSyncRecv    EventKind = "sync-received"
	EventFailure     EventKind = "failure"
	EventCrash       EventKind = "crash"
	EventRecover     EventKind = "recover"
)

// Observer consumes run events. Implementations must be fast; they run
// inline with the simulation.
type Observer func(Event)

// Observe registers an observer before Run. Multiple observers are called
// in registration order.
func (t *Team) Observe(o Observer) {
	t.observers = append(t.observers, o)
}

// emit delivers an event to all observers. The zero-observer case is the
// common one and costs only a nil check.
func (t *Team) emit(kind EventKind, robot int, pos geom.Vec2, errM float64, beacons int) {
	if len(t.observers) == 0 {
		return
	}
	e := Event{
		TimeS:   float64(t.sim.Now()),
		Kind:    kind,
		Robot:   robot,
		Pos:     pos,
		ErrM:    errM,
		Beacons: beacons,
	}
	for _, o := range t.observers {
		o(e)
	}
}

// emitSimple is emit without position or measurements.
func (t *Team) emitSimple(kind EventKind, robot int) {
	t.emit(kind, robot, geom.Vec2{}, 0, 0)
}

// failRobot powers a robot off mid-run: it stops beaconing, forwarding,
// and moving (a dead robot in the rubble). Localization state freezes. The
// medium detaches the robot entirely: a dead radio is not a receiver, so
// the MAC neither visits nor counts it for the rest of the run.
func (t *Team) failRobot(now sim.Time, r *robot) {
	if r.failed {
		return
	}
	r.failed = true
	r.way.HoldUntil(now, t.cfg.DurationS+1)
	r.nic.PowerOff()
	t.med.Detach(r.id)
	t.emitSimple(EventFailure, r.id)
}

// crashRobot starts a fault-injection outage: the radio powers off (no
// beacons, no forwarding, no energy draw), but unlike failRobot the robot
// keeps driving — its odometry drifts uncorrected until recovery.
func (t *Team) crashRobot(r *robot) {
	if r.failed || r.crashed {
		return
	}
	r.crashed = true
	t.crashes++
	telCrashes.Inc()
	r.nic.PowerOff()
	// Compaction: a crashed radio is detached from the medium so surviving
	// robots' frames stop paying (and stop drawing per-receiver noise for)
	// a station that cannot receive. Recovery re-attaches it.
	t.med.Detach(r.id)
	t.emitSimple(EventCrash, r.id)
}

// recoverRobot ends an outage: the radio comes back awake and the robot
// stays up until the next window end re-arms its sleep schedule (it never
// un-learned the schedule; its clock just kept drifting while down).
func (t *Team) recoverRobot(r *robot) {
	if r.failed || !r.crashed {
		return
	}
	r.crashed = false
	telRecoveries.Inc()
	t.med.Attach(r.id, r.nic)
	r.nic.Wake()
	t.emitSimple(EventRecover, r.id)
}
