package serve

// The HTTP surface of the service. Error taxonomy maps onto status codes:
//
//	400  invalid config (field + reason) or malformed request
//	404  unknown job ID
//	409  result requested before the job reached the done state
//	429  queue full (Retry-After hints when to resubmit)
//	503  draining after SIGTERM (Retry-After; try another replica)
//
// The events endpoint streams newline-delimited JSON status snapshots —
// one line per state or progress change — until the job is terminal or
// the client goes away.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cocoa"
	"cocoa/internal/obs"
	"cocoa/internal/runner"
	"cocoa/internal/telemetry"
)

// Handler returns the service's public API mux, wrapped in the request-ID
// and access-log middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/telemetry", s.handleTelemetry)
	mux.Handle("GET /metrics", obs.Handler(telemetry.Default, s.metricSamples))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return s.withRequestLog(mux)
}

// statusWriter captures the response code for the access log, forwarding
// Flush so the NDJSON events stream keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRequestLog assigns every request a process-unique ID (echoed as
// X-Request-ID) and emits one structured access record per request.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Debug("request",
			"request_id", reqID, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration_ms", time.Since(start).Milliseconds())
	})
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error  string `json:"error"`
	Field  string `json:"field,omitempty"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) retryAfter() string {
	d := s.cfg.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		var ce *cocoa.ConfigError
		switch {
		case errors.As(err, &ce):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Field: ce.Field, Reason: ce.Reason})
		case errors.Is(err, ErrBadRequest):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		case errors.Is(err, runner.ErrQueueFull):
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	b, ready := j.Result()
	if !ready {
		st := j.Status()
		code := http.StatusConflict
		writeJSON(w, code, errorBody{Error: "job " + st.ID + " is " + string(st.State) + ", not done", Reason: st.Error})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// handleTrace serves a done job's recorded span timeline as Chrome
// trace-event JSON (load it in Perfetto or chrome://tracing). 409 while
// the job is live, 404 when the submission did not request tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	b, ready := j.Trace()
	if !ready {
		st := j.Status()
		if !st.State.Terminal() {
			writeJSON(w, http.StatusConflict, errorBody{Error: "job " + st.ID + " is " + string(st.State) + ", trace not ready"})
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: "job " + st.ID + " has no trace (submit with \"trace\": true)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.Status())
}

// eventsTickInterval paces live-progress re-reads on the events stream:
// state and run transitions still stream immediately via the watch
// channel, but per-tick progress (which can change thousands of times a
// second and deliberately does not fire the channel) is sampled on this
// coarse ticker, keeping the stream's line rate bounded.
const eventsTickInterval = 250 * time.Millisecond

// handleEvents streams NDJSON status snapshots until the job terminates
// or the client disconnects. Each distinct snapshot produces exactly one
// line: lines are emitted on state/run changes and whenever a ticker
// re-read observes different live progress, never for identical statuses.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(eventsTickInterval)
	defer ticker.Stop()
	var last JobStatus
	emitted := false
	for {
		st, changed := j.Watch()
		if !emitted || st != last {
			if err := enc.Encode(st); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			last, emitted = st, true
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-changed:
		case <-ticker.C:
		case <-r.Context().Done():
			return
		}
	}
}

// experimentInfo is one registry entry on the wire.
type experimentInfo struct {
	Name  string `json:"name"`
	Flag  string `json:"flag"`
	Title string `json:"title"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	ds := cocoa.Experiments()
	out := make([]experimentInfo, len(ds))
	for i, d := range ds {
		out[i] = experimentInfo{Name: d.Name, Flag: d.Flag, Title: d.Title}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.Default.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"queued":   st.Queued,
		"inflight": st.InFlight,
		"workers":  st.Workers,
		"capacity": st.Capacity,
	})
}
