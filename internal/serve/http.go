package serve

// The HTTP surface of the service. Error taxonomy maps onto status codes:
//
//	400  invalid config (field + reason) or malformed request
//	404  unknown job ID
//	409  result requested before the job reached the done state
//	429  queue full (Retry-After hints when to resubmit)
//	503  draining after SIGTERM (Retry-After; try another replica)
//
// The events endpoint streams newline-delimited JSON status snapshots —
// one line per state or progress change — until the job is terminal or
// the client goes away.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"cocoa"
	"cocoa/internal/runner"
	"cocoa/internal/telemetry"
)

// Handler returns the service's public API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error  string `json:"error"`
	Field  string `json:"field,omitempty"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) retryAfter() string {
	d := s.cfg.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		var ce *cocoa.ConfigError
		switch {
		case errors.As(err, &ce):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Field: ce.Field, Reason: ce.Reason})
		case errors.Is(err, ErrBadRequest):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		case errors.Is(err, runner.ErrQueueFull):
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", s.retryAfter())
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	b, ready := j.Result()
	if !ready {
		st := j.Status()
		code := http.StatusConflict
		writeJSON(w, code, errorBody{Error: "job " + st.ID + " is " + string(st.State) + ", not done", Reason: st.Error})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams NDJSON status snapshots until the job terminates
// or the client disconnects. Each change produces exactly one line.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for {
		st, changed := j.Watch()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// experimentInfo is one registry entry on the wire.
type experimentInfo struct {
	Name  string `json:"name"`
	Flag  string `json:"flag"`
	Title string `json:"title"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	ds := cocoa.Experiments()
	out := make([]experimentInfo, len(ds))
	for i, d := range ds {
		out[i] = experimentInfo{Name: d.Name, Flag: d.Flag, Title: d.Title}
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.Default.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"queued":   st.Queued,
		"inflight": st.InFlight,
		"workers":  st.Workers,
		"capacity": st.Capacity,
	})
}
