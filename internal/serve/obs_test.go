package serve

// Tests for the observability surface: the Prometheus exposition
// endpoint, live progress and ETA in job statuses, the span-trace
// round-trip through the HTTP API, and the structured service log.

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cocoa/internal/obs"
)

// scrape fetches /metrics and returns the linted exposition.
func scrape(t *testing.T, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	exp, err := obs.LintReader(resp.Body)
	if err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	return exp
}

func TestMetricsEndpointLintsClean(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	var st JobStatus
	cfg := quickCfg(31)
	postJob(t, ts, JobRequest{Config: &cfg}, &st)
	waitTerminal(t, ts, st.ID)

	exp := scrape(t, ts.URL)
	for _, fam := range []string{"cocoad_jobs", "cocoad_pool_workers",
		"cocoad_pool_queued", "cocoad_draining", "go_goroutines"} {
		if _, ok := exp.Families[fam]; !ok {
			t.Errorf("missing family %q", fam)
		}
	}
	// All six job states appear as labeled points; the terminal job counts
	// under state="done".
	jobs := exp.Families["cocoad_jobs"]
	states := map[string]float64{}
	for _, p := range jobs.Points {
		states[p.Labels["state"]] = p.Value
	}
	if len(states) != 6 {
		t.Fatalf("cocoad_jobs states = %v, want all 6", states)
	}
	if states["done"] < 1 {
		t.Errorf("cocoad_jobs{state=done} = %v, want >= 1", states["done"])
	}
}

func TestRequestIDHeaderAssigned(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(id, "req-") {
		t.Errorf("X-Request-ID = %q, want req-NNNNNN", id)
	}
}

func TestTraceJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	var st JobStatus
	cfg := quickCfg(32)
	postJob(t, ts, JobRequest{Config: &cfg, Trace: true}, &st)
	end := waitTerminal(t, ts, st.ID)
	if end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}
	if !end.TraceAvailable {
		t.Fatal("terminal status does not advertise the trace")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	events, err := obs.ReadTrace(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("served trace fails the strict decoder: %v", err)
	}
	var sawRun bool
	for _, e := range events {
		if e.Name == "run" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Errorf("trace with %d events has no run span", len(events))
	}

	// Progress reached the end: the status reports the final tick.
	if end.Tick == 0 || end.Tick != end.TicksTotal {
		t.Errorf("terminal ticks %d/%d, want full", end.Tick, end.TicksTotal)
	}
	if end.EtaS != 0 {
		t.Errorf("terminal status carries ETA %v", end.EtaS)
	}
}

func TestTraceEndpointErrorStates(t *testing.T) {
	s, ts, started, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})
	var st JobStatus
	postJob(t, ts, JobRequest{Experiment: "fig9"}, &st)
	<-started

	// Live job: 409 regardless of trace.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("trace of running job: status %d, want 409", resp.StatusCode)
	}

	// While the job runs, its live gauges appear on /metrics. Drive the
	// gauge directly (the runFn seam bypasses the simulation) so the ETA
	// series has a defined value too.
	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	j.progress.Start(time.Now().Add(-10 * time.Second))
	j.progress.SetTicks(50, 100)
	exp := scrape(t, ts.URL)
	found := map[string]bool{}
	for _, fam := range []string{"cocoad_job_tick", "cocoad_job_runs_done", "cocoad_job_eta_seconds"} {
		if f, ok := exp.Families[fam]; ok {
			for _, p := range f.Points {
				if p.Labels["job"] == st.ID {
					found[fam] = true
				}
			}
		}
	}
	for _, fam := range []string{"cocoad_job_tick", "cocoad_job_runs_done", "cocoad_job_eta_seconds"} {
		if !found[fam] {
			t.Errorf("live job missing %s{job=%s} series", fam, st.ID)
		}
	}

	// The half-done gauge also surfaces in the status. setRunning already
	// stamped the start time (Start is first-wins), so elapsed wall time —
	// and with it the rounded ETA — is near zero here; the ETA's presence
	// is what the cocoad_job_eta_seconds assertion above proves.
	mid := j.Status()
	if mid.Tick != 50 || mid.TicksTotal != 100 {
		t.Fatalf("live ticks %d/%d, want 50/100", mid.Tick, mid.TicksTotal)
	}
	if mid.EtaS < 0 {
		t.Errorf("EtaS = %v, want >= 0", mid.EtaS)
	}

	close(release)
	end := waitTerminal(t, ts, st.ID)
	if end.State != StateDone {
		t.Fatalf("job ended %s", end.State)
	}

	// Done without tracing: 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of untraced job: status %d, want 404", resp.StatusCode)
	}
}

func TestTraceRejectedForExperimentJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var body errorBody
	resp := postJob(t, ts, JobRequest{Experiment: "fig9", Trace: true}, &body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(body.Error, "trace") {
		t.Errorf("error %q does not mention trace", body.Error)
	}
}

// logBuf is a goroutine-safe sink for the service logger.
type logBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestServiceLogCarriesJobLifecycle(t *testing.T) {
	buf := &logBuf{}
	logger := slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})
	var st JobStatus
	cfg := quickCfg(33)
	postJob(t, ts, JobRequest{Config: &cfg}, &st)
	end := waitTerminal(t, ts, st.ID)
	if end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}
	out := buf.String()
	for _, want := range []string{
		`msg="job accepted" job=` + st.ID,
		`msg="job started"`,
		`msg="job done"`,
		`msg=request`,
		"request_id=req-",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("service log missing %q:\n%s", want, out)
		}
	}
}
