// Package serve implements the cocoad batch simulation service: a bounded
// job queue over the experiment engine, exposed as an HTTP/JSON API.
//
// Callers submit either a raw cocoa.Config or a named registry experiment
// and get back a job ID; jobs execute on a fixed worker pool with a
// bounded waiting queue, so overload turns into explicit backpressure
// (HTTP 429 + Retry-After) instead of unbounded memory growth. Each job
// runs under its own context with an optional deadline; cancellation is
// cooperative all the way down to the simulation's sampling tick.
//
// Determinism is preserved end to end: a result served over HTTP is the
// JSON encoding of exactly what the equivalent direct cocoa.Run call
// returns, at any worker count and queue occupancy — the service adds
// scheduling, never semantics.
//
// Shutdown is a drain, not a kill: Shutdown stops intake (submissions get
// HTTP 503), lets every accepted job finish, then returns. A deadline on
// the drain context hard-cancels the remaining jobs cooperatively.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cocoa"
	"cocoa/internal/obs"
	"cocoa/internal/runner"
	"cocoa/internal/telemetry"
)

// Service admission errors beyond the pool's own.
var (
	// ErrDraining reports a submission after Shutdown began; an HTTP
	// frontend maps it to 503.
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrBadRequest wraps malformed submissions that are not config
	// validation failures (no payload, unknown experiment, both kinds set).
	ErrBadRequest = errors.New("serve: bad request")
)

// Telemetry instruments for the service layer. The queue/inflight gauges
// live in the runner pool (runner.pool_queued, runner.pool_inflight).
var (
	telAccepted         = telemetry.Default.Counter("serve.jobs_accepted")
	telRejectedFull     = telemetry.Default.Counter("serve.jobs_rejected_full")
	telRejectedDraining = telemetry.Default.Counter("serve.jobs_rejected_draining")
	telRejectedInvalid  = telemetry.Default.Counter("serve.jobs_rejected_invalid")
	telCompleted        = telemetry.Default.Counter("serve.jobs_completed")
	telFailed           = telemetry.Default.Counter("serve.jobs_failed")
	telCanceled         = telemetry.Default.Counter("serve.jobs_canceled")
)

// Config sizes the service.
type Config struct {
	// Workers is the number of jobs executing concurrently; <= 0 means 1.
	// Results are byte-identical at any value.
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// beyond it submissions are rejected with runner.ErrQueueFull. < 0
	// means 0 (admission only via an idle worker's queue slot).
	QueueDepth int
	// DefaultTimeout applies to jobs that request none; 0 means no limit.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested per-job timeout; 0 means no cap.
	MaxTimeout time.Duration
	// RetryAfter is the backpressure hint returned with 429/503 responses;
	// 0 means 1 second.
	RetryAfter time.Duration
	// StateDir, when non-empty, makes jobs durable: every accepted job's
	// request is persisted beneath it at submission, raw-config jobs
	// additionally checkpoint their simulation state there while running
	// (see cocoa.CheckpointSpec), and a restarted daemon re-enqueues the
	// survivors with RecoverJobs — resuming raw-config jobs from their
	// snapshots instead of tick zero. Empty keeps the service fully
	// in-memory, exactly as before.
	StateDir string
	// CheckpointEveryTicks is the snapshot cadence (sampling ticks) for
	// durable raw-config jobs; <= 0 means cocoa.DefaultCheckpointEveryTicks.
	CheckpointEveryTicks int
	// Logger receives the service's structured log records (job lifecycle,
	// request access lines). nil discards them — the service never falls
	// back to the process-global logger.
	Logger *slog.Logger
}

// State is a job's lifecycle position. Transitions are strictly
// queued -> running -> {done, failed}, with canceled reachable from
// queued (never ran) or running (stopped cooperatively). A job recovered
// from a previous process enters resumed instead of running — the same
// position in the lifecycle, distinguished so clients can tell a
// continued job from a first execution.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateResumed  State = "resumed"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobOptions mirrors the JSON-safe subset of cocoa.ExperimentOptions for
// named-experiment jobs (the Progress callback is wired by the service).
type JobOptions struct {
	Seed               int64   `json:"seed,omitempty"`
	DurationS          float64 `json:"duration_s,omitempty"`
	NumRobots          int     `json:"num_robots,omitempty"`
	CalibrationSamples int     `json:"calibration_samples,omitempty"`
	GridCellM          float64 `json:"grid_cell_m,omitempty"`
	Parallelism        int     `json:"parallelism,omitempty"`
}

// JobRequest is one submission: exactly one of Config (a raw deployment,
// result is the full cocoa.Result) or Experiment (a registry name, result
// is that experiment's row type) must be set.
type JobRequest struct {
	Config     *cocoa.Config `json:"config,omitempty"`
	Experiment string        `json:"experiment,omitempty"`
	Options    *JobOptions   `json:"options,omitempty"`
	// TimeoutS bounds the job's total lifetime (queue wait included);
	// 0 uses the service default.
	TimeoutS float64 `json:"timeout_s,omitempty"`
	// Trace records the run's span timeline for GET /v1/jobs/{id}/trace
	// (Chrome trace-event JSON). Raw-config jobs only — experiment sweeps
	// reject it. Tracing never changes result bytes (DESIGN.md §15).
	Trace bool `json:"trace,omitempty"`
}

// JobStatus is the wire representation of a job's current state.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "config" or the experiment name
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// RunsDone/RunsTotal track per-run progress inside the job's sweep;
	// a raw-config job is a single run.
	RunsDone  int `json:"runs_done"`
	RunsTotal int `json:"runs_total"`
	// Tick/TicksTotal expose the executing run's live position inside its
	// simulation loop (the obs.Progress gauge); zero until a run starts
	// publishing.
	Tick       int `json:"tick,omitempty"`
	TicksTotal int `json:"ticks_total,omitempty"`
	// EtaS projects the job's remaining wall-clock seconds from elapsed
	// time and published progress, rounded to whole seconds (so the events
	// stream is not churned by sub-second drift). Omitted until the job
	// has progress to extrapolate from.
	EtaS float64 `json:"eta_s,omitempty"`
	// Resumed marks a job recovered from a previous process's state
	// directory (its execution state is "resumed" while it replays).
	Resumed bool `json:"resumed,omitempty"`
	// TraceAvailable reports that the job recorded a span trace, served at
	// GET /v1/jobs/{id}/trace once the job is done.
	TraceAvailable bool `json:"trace_available,omitempty"`
}

// Job is one tracked submission.
type Job struct {
	id   string
	kind string

	// resumed marks a job recovered by RecoverJobs; stateDir is the job's
	// persistence directory ("" for an in-memory job). Both are fixed
	// before the job is enqueued and never change.
	resumed  bool
	stateDir string

	mu         sync.Mutex
	state      State
	errMsg     string
	result     []byte
	done       int
	total      int
	userCancel bool
	changed    chan struct{}
	traceJSON  []byte

	// progress is the job's live gauge: the simulation loop (raw-config
	// jobs) or the sweep engine (experiment jobs) publishes through it
	// lock-free; Status reads it on demand. trace is the span recorder for
	// JobRequest.Trace jobs, serialized into traceJSON on success. log
	// carries the job's ID and kind as pre-bound attrs.
	progress *obs.Progress
	trace    *obs.Trace
	log      *slog.Logger

	handle *runner.Handle[[]byte]
}

// ID returns the job's unique identifier.
func (j *Job) ID() string { return j.id }

// logger returns the job's bound logger, discarding when none was wired
// (jobs constructed outside a Server, as some tests do).
func (j *Job) logger() *slog.Logger {
	if j.log == nil {
		return obs.NopLogger()
	}
	return j.log
}

// statusLocked assembles the wire snapshot; callers hold j.mu. The live
// tick position and ETA come from the lock-free progress gauge — reading
// them takes atomic loads only, never blocks the simulation. The ETA is
// rounded to whole seconds so equal-looking statuses compare equal and
// the events stream is not churned by sub-second drift.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: j.state, Error: j.errMsg,
		RunsDone: j.done, RunsTotal: j.total, Resumed: j.resumed,
		TraceAvailable: j.traceJSON != nil,
	}
	st.Tick, st.TicksTotal = j.progress.Ticks()
	if !j.state.Terminal() {
		if eta, ok := j.progress.ETA(time.Now()); ok {
			st.EtaS = math.Round(eta.Seconds())
		}
	}
	return st
}

// Status returns a point-in-time snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// Watch returns the current snapshot plus a channel closed on the next
// change — the poll-free primitive behind the events stream. Per-tick
// progress does not fire the channel (that would wake watchers thousands
// of times per run); the events handler re-reads on a coarse ticker
// instead.
func (j *Job) Watch() (JobStatus, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), j.changed
}

// Trace returns the job's recorded span trace (Chrome trace-event JSON)
// once the job is done; ok is false while the job is live or when the
// submission did not request tracing.
func (j *Job) Trace() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceJSON, j.traceJSON != nil
}

// setTrace stores the serialized trace; called by the execution closure
// just before the job settles.
func (j *Job) setTrace(b []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.traceJSON = b
}

// Cancel asks the job to stop; safe on terminal jobs. A user cancel also
// releases the job's persisted state — an explicitly abandoned job is not
// resumed after a restart.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.userCancel = true
	j.mu.Unlock()
	j.handle.Cancel()
}

// userCanceled reports whether Cancel was called on this job.
func (j *Job) userCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancel
}

// Result returns the stored result bytes once the job is done.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// broadcast wakes watchers; callers hold j.mu.
func (j *Job) broadcast() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *Job) setRunning() {
	j.progress.Start(time.Now())
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateRunning
		if j.resumed {
			j.state = StateResumed
		}
		j.broadcast()
		j.logger().Info("job started", "state", string(j.state))
	}
}

func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done, j.total = done, total
	j.broadcast()
}

// finalize records the outcome exactly once, classifying context errors:
// Canceled means the caller asked; DeadlineExceeded is a failure.
func (j *Job) finalize(b []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = b
		j.done = j.total
		telCompleted.Inc()
		j.logger().Info("job done", "runs", j.total, "result_bytes", len(b))
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.errMsg = "canceled"
		telCanceled.Inc()
		j.logger().Info("job canceled")
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		telFailed.Inc()
		j.logger().Warn("job failed", "error", j.errMsg)
	}
	j.broadcast()
}

// Server is the job-queue service. Create with New; serve its HTTP API
// via Handler.
type Server struct {
	cfg  Config
	pool *runner.Pool[[]byte]

	// root is the parent of every job context; rootCancel is the
	// drain-deadline hard stop.
	root       context.Context
	rootCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	seq      int
	draining bool

	// settlers tracks the per-job goroutines that record terminal states;
	// Shutdown waits for them so every job is terminal when it returns.
	settlers sync.WaitGroup

	// runFn, when non-nil, replaces job execution — a test seam for
	// controllable blocking/failing jobs. Never set in production.
	runFn func(ctx context.Context, j *Job) ([]byte, error)

	// log is the service logger (Config.Logger or a no-op); reqSeq numbers
	// HTTP requests for the access-log middleware.
	log    *slog.Logger
	reqSeq atomic.Int64
}

// New starts a service with cfg's worker pool. Call Shutdown to drain.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	root, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		pool:       runner.NewPool[[]byte](cfg.Workers, cfg.QueueDepth),
		root:       root,
		rootCancel: cancel,
		jobs:       make(map[string]*Job),
		log:        log,
	}
}

// experimentOptions converts wire options to scenario options with the
// job's progress callback, live gauge, and logger attached.
func experimentOptions(o *JobOptions, j *Job) cocoa.ExperimentOptions {
	var opts cocoa.ExperimentOptions
	if o != nil {
		opts.Seed = o.Seed
		opts.DurationS = o.DurationS
		opts.NumRobots = o.NumRobots
		opts.CalibrationSamples = o.CalibrationSamples
		opts.GridCellM = o.GridCellM
		opts.Parallelism = o.Parallelism
	}
	opts.Progress = func(done, total int) {
		j.setProgress(done, total)
		j.logger().Debug("run complete", "run", done, "runs_total", total)
	}
	opts.Gauge = j.progress
	return opts
}

// findExperiment resolves a registry name.
func findExperiment(name string) (cocoa.ExperimentDescriptor, bool) {
	for _, d := range cocoa.Experiments() {
		if d.Name == name {
			return d, true
		}
	}
	return cocoa.ExperimentDescriptor{}, false
}

// timeout resolves a request's effective deadline under service policy.
func (s *Server) timeout(req JobRequest) time.Duration {
	d := time.Duration(req.TimeoutS * float64(time.Second))
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

// buildExec validates req and constructs the job's execution closure,
// setting j.kind. The closure may read j.id and j.stateDir: both are fixed
// before the job reaches the pool.
func (s *Server) buildExec(req JobRequest, j *Job) (func(ctx context.Context) ([]byte, error), error) {
	switch {
	case s.runFn != nil:
		j.kind = req.Experiment
		if req.Config != nil {
			j.kind = "config"
		}
		return func(ctx context.Context) ([]byte, error) { return s.runFn(ctx, j) }, nil
	case req.Config != nil:
		cfg := *req.Config
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if req.Trace {
			j.trace = obs.NewTrace()
		}
		return func(ctx context.Context) ([]byte, error) {
			return s.runConfig(ctx, cfg, j)
		}, nil
	default:
		if req.Trace {
			return nil, fmt.Errorf("%w: trace is only supported for raw-config jobs", ErrBadRequest)
		}
		d, ok := findExperiment(req.Experiment)
		if !ok {
			return nil, fmt.Errorf("%w: unknown experiment %q", ErrBadRequest, req.Experiment)
		}
		j.kind = d.Name
		opts := experimentOptions(req.Options, j)
		return func(ctx context.Context) ([]byte, error) {
			v, err := d.Run(ctx, opts)
			if err != nil {
				return nil, err
			}
			return json.Marshal(v)
		}, nil
	}
}

// Submit validates req and enqueues it. Error taxonomy: *cocoa.ConfigError
// (wrapping cocoa.ErrInvalidConfig) for bad configs, ErrBadRequest for
// malformed submissions, runner.ErrQueueFull under backpressure,
// ErrDraining during shutdown.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	if (req.Config == nil) == (req.Experiment == "") {
		telRejectedInvalid.Inc()
		return nil, fmt.Errorf("%w: exactly one of config or experiment must be set", ErrBadRequest)
	}
	j := &Job{kind: "config", state: StateQueued, total: 1,
		changed: make(chan struct{}), progress: &obs.Progress{}}
	exec, err := s.buildExec(req, j)
	if err != nil {
		telRejectedInvalid.Inc()
		return nil, err
	}
	return s.enqueue(req, j, exec, "")
}

// enqueue admits a prepared job under the service's backpressure and drain
// policy. fixedID is empty for fresh submissions (the job gets the next
// sequence ID and, with a StateDir, its request is persisted) and a
// recovered job's existing ID during RecoverJobs (its directory is already
// on disk).
func (s *Server) enqueue(req JobRequest, j *Job, exec func(ctx context.Context) ([]byte, error), fixedID string) (*Job, error) {
	jctx := s.root
	var cancelTimeout context.CancelFunc
	if d := s.timeout(req); d > 0 {
		jctx, cancelTimeout = context.WithTimeout(s.root, d)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		if cancelTimeout != nil {
			cancelTimeout()
		}
		telRejectedDraining.Inc()
		return nil, ErrDraining
	}
	persisted := false
	if fixedID == "" {
		s.seq++
		j.id = fmt.Sprintf("job-%06d", s.seq)
		if s.cfg.StateDir != "" {
			j.stateDir = filepath.Join(s.cfg.StateDir, j.id)
			if err := writeJobRecord(j.stateDir, jobRecord{ID: j.id, Request: req}); err != nil {
				s.seq--
				s.mu.Unlock()
				if cancelTimeout != nil {
					cancelTimeout()
				}
				telRejectedInvalid.Inc()
				return nil, fmt.Errorf("serve: persist job: %w", err)
			}
			persisted = true
		}
	} else {
		j.id = fixedID
		j.stateDir = filepath.Join(s.cfg.StateDir, j.id)
	}
	// Bind the job logger before the closure can run on a pool worker.
	j.log = s.log.With("job", j.id, "kind", j.kind)
	h, err := s.pool.TrySubmit(jctx, func(ctx context.Context) ([]byte, error) {
		j.setRunning()
		return exec(ctx)
	})
	if err != nil {
		if fixedID == "" {
			s.seq--
		}
		if persisted {
			os.RemoveAll(j.stateDir)
		}
		s.mu.Unlock()
		if cancelTimeout != nil {
			cancelTimeout()
		}
		if errors.Is(err, runner.ErrPoolClosed) {
			telRejectedDraining.Inc()
			return nil, ErrDraining
		}
		telRejectedFull.Inc()
		return nil, err
	}
	j.handle = h
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	telAccepted.Inc()
	j.logger().Info("job accepted", "resumed", j.resumed, "trace", j.trace != nil)

	// The settler owns the job's terminal transition; it exits as soon as
	// the handle completes (drain waits for exactly these).
	s.settlers.Add(1)
	go func() {
		defer s.settlers.Done()
		b, err := h.Result()
		j.finalize(b, err)
		s.finishState(j, err)
		if cancelTimeout != nil {
			cancelTimeout()
		}
	}()
	return j, nil
}

// Job returns a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every tracked job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// metricSamples is the /metrics collector for service-level state the
// telemetry registry does not carry: per-state job gauges (every state
// always present, so dashboards see explicit zeros), pool occupancy, the
// drain flag, and per-live-job progress/ETA gauges. Invoked per scrape.
func (s *Server) metricSamples() []obs.Sample {
	states := []State{StateQueued, StateRunning, StateResumed, StateDone, StateFailed, StateCanceled}
	counts := make(map[State]int, len(states))
	var live []JobStatus
	s.mu.Lock()
	draining := s.draining
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		st := j.Status()
		counts[st.State]++
		if !st.State.Terminal() {
			live = append(live, st)
		}
	}

	samples := make([]obs.Sample, 0, len(states)+8+3*len(live))
	for _, st := range states {
		samples = append(samples, obs.Sample{
			Name: "cocoad_jobs", Type: "gauge",
			Help:   "Tracked jobs by lifecycle state.",
			Labels: []obs.Label{{Key: "state", Value: string(st)}},
			Value:  float64(counts[st]),
		})
	}
	ps := s.pool.Stats()
	samples = append(samples,
		obs.Sample{Name: "cocoad_pool_workers", Type: "gauge",
			Help: "Configured worker count.", Value: float64(ps.Workers)},
		obs.Sample{Name: "cocoad_pool_queue_capacity", Type: "gauge",
			Help: "Bounded queue capacity.", Value: float64(ps.Capacity)},
		obs.Sample{Name: "cocoad_pool_queued", Type: "gauge",
			Help: "Jobs waiting for a worker.", Value: float64(ps.Queued)},
		obs.Sample{Name: "cocoad_pool_inflight", Type: "gauge",
			Help: "Jobs executing right now.", Value: float64(ps.InFlight)},
		obs.Sample{Name: "cocoad_draining", Type: "gauge",
			Help: "1 while Shutdown drains the service.", Value: boolGauge(draining)},
	)
	now := time.Now()
	for _, st := range live {
		labels := []obs.Label{{Key: "job", Value: st.ID}}
		samples = append(samples, obs.Sample{
			Name: "cocoad_job_runs_done", Type: "gauge",
			Help: "Completed runs of a live job's sweep.", Labels: labels,
			Value: float64(st.RunsDone),
		}, obs.Sample{
			Name: "cocoad_job_tick", Type: "gauge",
			Help: "Current sampling tick of a live job's executing run.", Labels: labels,
			Value: float64(st.Tick),
		})
		if j, ok := s.Job(st.ID); ok {
			if eta, ok := j.progress.ETA(now); ok {
				samples = append(samples, obs.Sample{
					Name: "cocoad_job_eta_seconds", Type: "gauge",
					Help: "Projected remaining wall-clock seconds of a live job.", Labels: labels,
					Value: eta.Seconds(),
				})
			}
		}
	}
	return samples
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats exposes the pool occupancy for health endpoints.
func (s *Server) Stats() runner.PoolStats { return s.pool.Stats() }

// Shutdown drains the service: intake stops immediately (Submit returns
// ErrDraining), accepted jobs run to completion, then Shutdown returns.
// If ctx expires first, the remaining jobs are canceled cooperatively and
// Shutdown still waits for them to settle before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.pool.Close()
		s.settlers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.rootCancel() // hard-cancel stragglers; they settle via their contexts
		<-drained
		return ctx.Err()
	}
}

// runConfig executes a raw-config job. With a state directory the run
// checkpoints into it, and — when a snapshot from a previous process is
// already there — resumes from that snapshot instead of tick zero. Every
// resume is digest-verified replay (see internal/checkpoint), so a stale
// or tampered snapshot fails loudly rather than silently diverging; any
// other resume-path problem (missing/corrupt snapshot file) falls back to
// a fresh run, which is always correct, just slower.
func (s *Server) runConfig(ctx context.Context, cfg cocoa.Config, j *Job) ([]byte, error) {
	// Observability taps: the run publishes its tick position through the
	// job's gauge, and records spans when the submission asked for a
	// trace. Both are write-only for the simulation — attaching them never
	// changes result bytes (DESIGN.md §15).
	cfg.Progress = j.progress
	cfg.Trace = j.trace
	if j.trace != nil {
		j.trace.SetProcessName(j.id)
	}
	finish := func(res *cocoa.Result) ([]byte, error) {
		if j.trace != nil {
			var buf bytes.Buffer
			if err := j.trace.WriteJSON(&buf); err != nil {
				return nil, fmt.Errorf("serve: serialize trace: %w", err)
			}
			j.setTrace(buf.Bytes())
		}
		return json.Marshal(res)
	}
	if j.stateDir != "" {
		cfg.Checkpoint = cocoa.CheckpointSpec{
			EveryTicks: s.cfg.CheckpointEveryTicks,
			Dir:        j.stateDir,
		}
		if snap, err := cocoa.ReadSnapshot(filepath.Join(j.stateDir, cocoa.CheckpointFile)); err == nil {
			rcfg, cerr := cocoa.ConfigFromSnapshot(snap)
			if cerr == nil {
				rcfg.Checkpoint = cfg.Checkpoint
				rcfg.Progress = cfg.Progress
				rcfg.Trace = cfg.Trace
				team, terr := cocoa.ResumeTeam(rcfg, snap)
				if terr == nil {
					j.logger().Info("resuming from snapshot", "tick", snap.TickIndex)
					res, rerr := team.RunContext(ctx)
					if rerr != nil {
						return nil, rerr
					}
					return finish(res)
				}
			}
		}
	}
	res, err := cocoa.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return finish(res)
}

// finishState applies the durable-state retention policy when a job
// settles. Jobs that ended on their own terms — done, failed on a real
// error, or canceled by the user — release their directory. Jobs killed
// by the process (drain hard-cancel) or by their deadline keep it, so a
// restarted daemon can pick them back up where the snapshot left off.
func (s *Server) finishState(j *Job, err error) {
	if j.stateDir == "" {
		return
	}
	interrupted := errors.Is(err, context.DeadlineExceeded) ||
		(errors.Is(err, context.Canceled) && !j.userCanceled())
	if !interrupted {
		os.RemoveAll(j.stateDir)
	}
}

// jobRecord is the durable form of an accepted job: enough to re-create
// the submission verbatim after a restart.
type jobRecord struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
}

// writeJobRecord persists rec into dir as job.json, wiping any stale
// contents first — a fresh submission must never inherit a previous
// process's snapshot under a recycled job ID.
func writeJobRecord(dir string, rec jobRecord) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".job.json.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "job.json"))
}

// readJobRecord loads dir/job.json.
func readJobRecord(dir string) (jobRecord, error) {
	var rec jobRecord
	b, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(b, &rec); err != nil {
		return rec, err
	}
	return rec, nil
}

// RecoverJobs re-enqueues the jobs a previous process left behind in
// StateDir, in job-ID order, and returns the recovered IDs. Raw-config
// jobs resume from their latest snapshot (digest-verified); experiment
// jobs rerun from their persisted request. The sequence counter is
// restored above the highest recovered ID so new submissions never
// collide with recovered directories. Unreadable entries are discarded.
// If the queue fills mid-recovery, recovery stops and the remaining
// directories stay on disk for the next restart.
func (s *Server) RecoverJobs() ([]string, error) {
	if s.cfg.StateDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	maxSeq := 0
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "job-") {
			continue
		}
		ids = append(ids, e.Name())
		var n int
		if _, err := fmt.Sscanf(e.Name(), "job-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	sort.Strings(ids)
	s.mu.Lock()
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	s.mu.Unlock()

	var recovered []string
	for _, id := range ids {
		dir := filepath.Join(s.cfg.StateDir, id)
		rec, err := readJobRecord(dir)
		if err != nil || rec.ID != id {
			os.RemoveAll(dir)
			continue
		}
		j := &Job{kind: "config", state: StateQueued, total: 1,
			changed: make(chan struct{}), resumed: true, progress: &obs.Progress{}}
		exec, err := s.buildExec(rec.Request, j)
		if err != nil {
			os.RemoveAll(dir)
			continue
		}
		if _, err := s.enqueue(rec.Request, j, exec, id); err != nil {
			if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, ErrDraining) {
				return recovered, nil
			}
			os.RemoveAll(dir)
			continue
		}
		recovered = append(recovered, id)
	}
	return recovered, nil
}
