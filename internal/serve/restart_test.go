package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cocoa"
)

// slowCfg is a deployment heavy enough (dense grid, 40 robots) that its
// tick loop runs for hundreds of milliseconds — wide enough to interrupt
// reliably — while still finishing fast enough for a test suite.
func slowCfg(seed int64) cocoa.Config {
	cfg := cocoa.DefaultConfig()
	cfg.Seed = seed
	cfg.NumRobots = 40
	cfg.NumEquipped = 20
	cfg.DurationS = 1800
	cfg.Calibration.Samples = 40000
	cfg.GridCellM = 2
	return cfg
}

// waitJobTerminal polls a job through the in-process API until it
// settles, asserting every observed pre-terminal state is one of allowed.
func waitJobTerminal(t *testing.T, j *Job, allowed ...State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := j.Status()
		if st.State.Terminal() {
			return st
		}
		ok := false
		for _, a := range allowed {
			if st.State == a {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("job %s in unexpected pre-terminal state %s", st.ID, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitGone polls until path no longer exists (the settler releases state
// directories after the terminal transition is published).
func waitGone(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s still exists", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The restart guarantee end to end, in-process: a daemon hard-stopped
// mid-job leaves a snapshot behind; a new daemon over the same state
// directory recovers the job, resumes it from the snapshot, and serves
// result bytes identical to an uninterrupted direct run — with no
// goroutine left behind by either instance.
func TestRestartResumesDrainKilledJob(t *testing.T) {
	before := runtime.NumGoroutine()
	stateDir := t.TempDir()
	cfg := slowCfg(7)

	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	// Instance A: accept the job, wait for its first snapshot, then
	// hard-stop (an already-expired drain context cancels in-flight work,
	// exactly what a deadline-killed daemon does on SIGTERM).
	a := New(Config{Workers: 1, QueueDepth: 2, StateDir: stateDir, CheckpointEveryTicks: 40})
	j, err := a.Submit(JobRequest{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(stateDir, j.ID(), cocoa.CheckpointFile)
	for deadline := time.Now().Add(60 * time.Second); ; {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot at %s", ckpt)
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	cancel()
	_ = a.Shutdown(expired)
	st := j.Status()
	if st.State != StateCanceled {
		t.Fatalf("after hard drain: state %s (%s), want canceled", st.State, st.Error)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain-killed job lost its state: %v", err)
	}

	// Instance B: recover, resume, finish.
	b := New(Config{Workers: 1, QueueDepth: 2, StateDir: stateDir, CheckpointEveryTicks: 40})
	ids, err := b.RecoverJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != j.ID() {
		t.Fatalf("recovered %v, want [%s]", ids, j.ID())
	}
	rj, ok := b.Job(j.ID())
	if !ok {
		t.Fatalf("recovered job %s not tracked", j.ID())
	}
	// A recovered job executes as "resumed", never plain "running".
	rst := waitJobTerminal(t, rj, StateQueued, StateResumed)
	if rst.State != StateDone {
		t.Fatalf("recovered job: state %s (%s)", rst.State, rst.Error)
	}
	if !rst.Resumed {
		t.Fatal("recovered job not marked resumed")
	}
	got, ok := rj.Result()
	if !ok {
		t.Fatal("no result on recovered job")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed result differs from uninterrupted direct run")
	}
	waitGone(t, filepath.Join(stateDir, j.ID()))

	// The restored sequence counter keeps new IDs clear of recovered ones.
	q := quickCfg(1)
	j2, err := b.Submit(JobRequest{Config: &q})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() <= j.ID() {
		t.Fatalf("new job ID %s not above recovered %s", j2.ID(), j.ID())
	}
	ctx, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	http.DefaultClient.CloseIdleConnections()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// State-directory retention: jobs that end on their own terms release
// their directory; only process-interrupted jobs keep it.
func TestStateDirLifecycle(t *testing.T) {
	stateDir := t.TempDir()
	s := New(Config{Workers: 2, QueueDepth: 8, StateDir: stateDir, CheckpointEveryTicks: 40})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	t.Run("done releases", func(t *testing.T) {
		cfg := quickCfg(3)
		j, err := s.Submit(JobRequest{Config: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitJobTerminal(t, j, StateQueued, StateRunning); st.State != StateDone {
			t.Fatalf("state %s (%s)", st.State, st.Error)
		}
		waitGone(t, filepath.Join(stateDir, j.ID()))
	})

	t.Run("user cancel releases", func(t *testing.T) {
		cfg := slowCfg(4)
		j, err := s.Submit(JobRequest{Config: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(stateDir, j.ID(), "job.json")); err != nil {
			t.Fatalf("accepted job not persisted: %v", err)
		}
		j.Cancel()
		if st := waitJobTerminal(t, j, StateQueued, StateRunning); st.State != StateCanceled {
			t.Fatalf("state %s (%s)", st.State, st.Error)
		}
		waitGone(t, filepath.Join(stateDir, j.ID()))
	})

	t.Run("deadline retains", func(t *testing.T) {
		cfg := slowCfg(5)
		j, err := s.Submit(JobRequest{Config: &cfg, TimeoutS: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		st := waitJobTerminal(t, j, StateQueued, StateRunning)
		if st.State != StateFailed {
			t.Fatalf("state %s (%s)", st.State, st.Error)
		}
		// Retention is decided by the settler after the terminal
		// transition; give it a moment before asserting presence.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := os.Stat(filepath.Join(stateDir, j.ID(), "job.json")); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("deadline-killed job lost its state directory")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// RecoverJobs housekeeping: garbage directories are discarded, unrelated
// entries are untouched, the sequence counter clears every job-<n> name
// ever seen, and a stateless service recovers nothing.
func TestRecoverJobsHousekeeping(t *testing.T) {
	t.Run("stateless no-op", func(t *testing.T) {
		s := New(Config{Workers: 1})
		ids, err := s.RecoverJobs()
		if err != nil || ids != nil {
			t.Fatalf("got %v, %v", ids, err)
		}
	})

	stateDir := t.TempDir()
	// job-000007: directory without a record (the process died between
	// MkdirAll and the record write) — discarded, but its number still
	// advances the sequence.
	if err := os.MkdirAll(filepath.Join(stateDir, "job-000007"), 0o755); err != nil {
		t.Fatal(err)
	}
	// job-000002: record whose ID disagrees with its directory.
	if err := writeJobRecord(filepath.Join(stateDir, "job-000002"),
		jobRecord{ID: "job-000001", Request: JobRequest{Experiment: "nope"}}); err != nil {
		t.Fatal(err)
	}
	// job-000003: well-formed record for an experiment that no longer
	// exists — discarded via the normal validation path.
	if err := writeJobRecord(filepath.Join(stateDir, "job-000003"),
		jobRecord{ID: "job-000003", Request: JobRequest{Experiment: "no-such-experiment"}}); err != nil {
		t.Fatal(err)
	}
	// Entries RecoverJobs must ignore entirely.
	if err := os.MkdirAll(filepath.Join(stateDir, "notajob"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stateDir, "job-file"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1, QueueDepth: 2, StateDir: stateDir})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	ids, err := s.RecoverJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("recovered %v from garbage", ids)
	}
	for _, gone := range []string{"job-000007", "job-000002", "job-000003"} {
		if _, err := os.Stat(filepath.Join(stateDir, gone)); !os.IsNotExist(err) {
			t.Errorf("%s not discarded", gone)
		}
	}
	for _, kept := range []string{"notajob", "job-file"} {
		if _, err := os.Stat(filepath.Join(stateDir, kept)); err != nil {
			t.Errorf("unrelated entry %s disturbed: %v", kept, err)
		}
	}
	cfg := quickCfg(1)
	j, err := s.Submit(JobRequest{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("job-%06d", 8); j.ID() != want {
		t.Fatalf("first post-recovery ID %s, want %s", j.ID(), want)
	}
}
