package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"cocoa"
)

// submitJob is postJob without t.Fatal, safe to call from soak goroutines.
func submitJob(ts *httptest.Server, req JobRequest) (JobStatus, int, error) {
	var st JobStatus
	b, err := json.Marshal(req)
	if err != nil {
		return st, 0, err
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		return st, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return st, resp.StatusCode, err
		}
	}
	return st, resp.StatusCode, nil
}

// TestSwarmScaleSoak drives cocoad the way a swarm-experiment client would:
// eight concurrent `scale` sweeps against a two-worker service with a
// two-slot queue, retrying through 429 backpressure, with a batch of
// mid-flight cancellations — then verifies every job reached a terminal
// state, surviving results decode to the expected sweep, the service
// observed real backpressure, and no goroutines leak after drain. `make
// check` runs this under -race, where the soak doubles as a data-race
// probe of the scale path (spatial index included) under the runner's
// worker pool.
func TestSwarmScaleSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 2, QueueDepth: 2, RetryAfter: time.Second})
	ts := httptest.NewServer(s.Handler())

	// Keeper jobs run a light sweep so the soak stays fast; self-canceling
	// jobs run the full 1000-robot sweep, which cannot finish before a
	// cancel issued microseconds after acceptance takes effect at the next
	// cooperative check.
	light := JobRequest{
		Experiment: "scale",
		Options: &JobOptions{
			Seed:               1,
			DurationS:          120,
			NumRobots:          250, // caps the sweep at [25, 100, 250]
			CalibrationSamples: 40000,
		},
	}
	heavy := JobRequest{
		Experiment: "scale",
		Options: &JobOptions{
			Seed:               1,
			DurationS:          120,
			NumRobots:          1000,
			CalibrationSamples: 40000,
		},
	}

	const jobs = 8
	// Submissions 1, 4 and 6 cancel themselves the moment they are
	// accepted — at that instant the job is queued or freshly running, so
	// the cancel is genuinely mid-flight, not a race against completion.
	selfCancel := map[int]bool{1: true, 4: true, 6: true}
	var (
		mu       sync.Mutex
		ids      []string
		canceled = map[string]bool{}
		rejected int
	)
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := light
			if selfCancel[i] {
				req = heavy
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				st, code, err := submitJob(ts, req)
				if err != nil {
					errs <- err
					return
				}
				switch code {
				case http.StatusAccepted:
					mu.Lock()
					ids = append(ids, st.ID)
					mu.Unlock()
					if selfCancel[i] {
						resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
						if err != nil {
							errs <- err
							return
						}
						resp.Body.Close()
						switch resp.StatusCode {
						case http.StatusAccepted:
							mu.Lock()
							canceled[st.ID] = true
							mu.Unlock()
						case http.StatusConflict: // lost the race: already terminal
						default:
							errs <- fmt.Errorf("cancel %s: status %d", st.ID, resp.StatusCode)
						}
					}
					return
				case http.StatusTooManyRequests:
					mu.Lock()
					rejected++
					mu.Unlock()
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("still 429 after 60s")
						return
					}
					time.Sleep(10 * time.Millisecond)
				default:
					errs <- fmt.Errorf("submit status %d", code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(ids) != jobs {
		t.Fatalf("accepted %d jobs, want %d", len(ids), jobs)
	}
	// Eight near-simultaneous sweeps against four admission slots: the
	// storm itself must have produced backpressure.
	if rejected == 0 {
		t.Error("no submission saw 429 backpressure during the storm")
	}

	done, midflight := 0, 0
	for _, id := range ids {
		st := waitTerminal(t, ts, id)
		switch st.State {
		case StateDone:
			done++
			var rows []cocoa.ScaleRow
			if resp := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &rows); resp.StatusCode != http.StatusOK {
				t.Fatalf("result %s: status %d", id, resp.StatusCode)
			}
			if len(rows) != 3 || rows[0].Robots != 25 || rows[1].Robots != 100 || rows[2].Robots != 250 {
				t.Fatalf("job %s: unexpected sweep %+v", id, rows)
			}
		case StateCanceled:
			midflight++
			if !canceled[id] {
				t.Errorf("job %s canceled without a cancel request", id)
			}
		default:
			t.Errorf("job %s ended %s (error %q)", id, st.State, st.Error)
		}
	}
	t.Logf("soak: %d done, %d canceled mid-flight, %d submissions saw 429", done, midflight, rejected)
	if done < jobs-len(canceled) {
		t.Errorf("%d jobs done, want at least %d", done, jobs-len(canceled))
	}
	// Every self-cancel targets a sweep far too heavy to finish first, so
	// each one must have interrupted its job while queued or running.
	if midflight != len(selfCancel) {
		t.Errorf("%d of %d cancels landed mid-flight", midflight, len(selfCancel))
	}

	// Drain and hold the package's goroutine-leak bound at swarm configs.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after soak: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
