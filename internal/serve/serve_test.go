package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cocoa"
)

// quickCfg is a small deployment that completes in tens of milliseconds.
func quickCfg(seed int64) cocoa.Config {
	cfg := cocoa.DefaultConfig()
	cfg.Seed = seed
	cfg.NumRobots = 10
	cfg.NumEquipped = 5
	cfg.DurationS = 120
	cfg.Calibration.Samples = 40000
	cfg.GridCellM = 8
	return cfg
}

// postJob submits a request and decodes the response body into out.
func postJob(t *testing.T, ts *httptest.Server, req JobRequest, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

// getJSON fetches a URL and decodes it.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// waitTerminal polls a job over HTTP until it leaves the active states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// The headline determinism guarantee: results fetched over HTTP under
// concurrency are byte-identical to direct cocoa.Run calls.
func TestServedResultsByteIdenticalUnderConcurrency(t *testing.T) {
	const jobs = 8
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: jobs})

	want := make([][]byte, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cocoa.Run(quickCfg(int64(i + 1)))
			if err != nil {
				t.Error(err)
				return
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Error(err)
				return
			}
			want[i] = b
		}(i)
	}
	wg.Wait()

	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		cfg := quickCfg(int64(i + 1))
		var st JobStatus
		resp := postJob(t, ts, JobRequest{Config: &cfg}, &st)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st := waitTerminal(t, ts, id)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: status %d", id, resp.StatusCode)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("job %d: served result differs from direct cocoa.Run bytes", i)
		}
	}
}

func TestExperimentJobRunsRegistryEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	var st JobStatus
	resp := postJob(t, ts, JobRequest{
		Experiment: "fig9",
		Options: &JobOptions{
			Seed: 1, DurationS: 120, NumRobots: 10,
			CalibrationSamples: 40000, GridCellM: 8, Parallelism: 2,
		},
	}, &st)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st.Kind != "fig9" {
		t.Errorf("kind = %q, want fig9", st.Kind)
	}
	end := waitTerminal(t, ts, st.ID)
	if end.State != StateDone {
		t.Fatalf("state %s: %s", end.State, end.Error)
	}
	if end.RunsTotal == 0 || end.RunsDone != end.RunsTotal {
		t.Errorf("progress %d/%d, want complete with nonzero total", end.RunsDone, end.RunsTotal)
	}
	var rows []cocoa.Fig9Row
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", &rows)
	if len(rows) != 4 {
		t.Errorf("fig9 rows = %d, want 4", len(rows))
	}
}

func TestSubmitErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	bad := quickCfg(1)
	bad.NumRobots = 0
	cfg := quickCfg(1)
	cases := []struct {
		name      string
		req       JobRequest
		code      int
		wantField string
		wantErr   string
	}{
		{"invalid config", JobRequest{Config: &bad}, http.StatusBadRequest, "NumRobots", ""},
		{"neither", JobRequest{}, http.StatusBadRequest, "", "exactly one"},
		{"both", JobRequest{Config: &cfg, Experiment: "fig9"}, http.StatusBadRequest, "", "exactly one"},
		{"unknown experiment", JobRequest{Experiment: "fig99"}, http.StatusBadRequest, "", "unknown experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body errorBody
			resp := postJob(t, ts, tc.req, &body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.code)
			}
			if body.Field != tc.wantField {
				t.Errorf("field %q, want %q", body.Field, tc.wantField)
			}
			if tc.wantErr != "" && !strings.Contains(body.Error, tc.wantErr) {
				t.Errorf("error %q missing %q", body.Error, tc.wantErr)
			}
		})
	}

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown job", func(t *testing.T) {
		resp := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status %d, want 404", resp.StatusCode)
		}
	})
}

// blockingServer wires the runFn seam so tests control job lifetimes.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, chan struct{}) {
	t.Helper()
	s, ts := newTestServer(t, cfg)
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-release:
			return []byte(`"done"`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, ts, started, release
}

func TestQueueFullReturns429(t *testing.T) {
	_, ts, started, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2, RetryAfter: 3 * time.Second})
	defer close(release)

	// One running + two queued fill the service.
	for i := 0; i < 3; i++ {
		var st JobStatus
		resp := postJob(t, ts, JobRequest{Experiment: "fig9"}, &st)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			<-started // the worker has picked up job 0; 1 and 2 occupy the queue
		}
	}
	var body errorBody
	resp := postJob(t, ts, JobRequest{Experiment: "fig9"}, &body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want 3", ra)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts, started, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})
	defer close(release)
	var st JobStatus
	postJob(t, ts, JobRequest{Experiment: "fig9"}, &st)
	<-started
	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	end := waitTerminal(t, ts, st.ID)
	if end.State != StateCanceled {
		t.Errorf("state %s, want canceled", end.State)
	}
	// Result of a canceled job is a 409 with the state in the error.
	r2 := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil)
	if r2.StatusCode != http.StatusConflict {
		t.Errorf("result status %d, want 409", r2.StatusCode)
	}
}

func TestJobDeadlineExpires(t *testing.T) {
	_, ts, started, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})
	defer close(release)
	var st JobStatus
	postJob(t, ts, JobRequest{Experiment: "fig9", TimeoutS: 0.05}, &st)
	<-started
	end := waitTerminal(t, ts, st.ID)
	if end.State != StateFailed {
		t.Fatalf("state %s, want failed", end.State)
	}
	if !strings.Contains(end.Error, "deadline") {
		t.Errorf("error %q, want deadline mention", end.Error)
	}
}

func TestDeadlineWhileQueuedNeverRuns(t *testing.T) {
	s, ts, started, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})
	var first JobStatus
	postJob(t, ts, JobRequest{Experiment: "fig9"}, &first)
	<-started
	// Queued behind the blocker with a deadline shorter than the block.
	var queued JobStatus
	postJob(t, ts, JobRequest{Experiment: "fig9", TimeoutS: 0.05}, &queued)
	time.Sleep(100 * time.Millisecond)
	close(release)
	end := waitTerminal(t, ts, queued.ID)
	if end.State != StateFailed || !strings.Contains(end.Error, "deadline") {
		t.Errorf("queued job ended %s (%q), want deadline failure", end.State, end.Error)
	}
	// The blocker itself finishes normally.
	if st := waitTerminal(t, ts, first.ID); st.State != StateDone {
		t.Errorf("blocker ended %s", st.State)
	}
	_ = s
}

func TestEventsStreamDeliversTransitions(t *testing.T) {
	_, ts, started, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})
	var st JobStatus
	postJob(t, ts, JobRequest{Experiment: "fig9"}, &st)
	<-started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	close(release)
	dec := json.NewDecoder(resp.Body)
	var states []State
	for {
		var ev JobStatus
		if err := dec.Decode(&ev); err != nil {
			break
		}
		states = append(states, ev.State)
		if ev.State.Terminal() {
			break
		}
	}
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("stream states %v, want trailing done", states)
	}
}

func TestHealthAndExperimentsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	var health struct {
		Status   string `json:"status"`
		Workers  int    `json:"workers"`
		Capacity int    `json:"capacity"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz %d %q", resp.StatusCode, health.Status)
	}
	if health.Workers != 2 || health.Capacity != 4 {
		t.Errorf("health reports workers=%d capacity=%d", health.Workers, health.Capacity)
	}
	var exp struct {
		Experiments []experimentInfo `json:"experiments"`
	}
	getJSON(t, ts.URL+"/v1/experiments", &exp)
	if len(exp.Experiments) != len(cocoa.Experiments()) {
		t.Errorf("experiments = %d, want %d", len(exp.Experiments), len(cocoa.Experiments()))
	}
	var telem struct {
		Counters []json.RawMessage `json:"counters"`
	}
	if resp := getJSON(t, ts.URL+"/v1/telemetry", &telem); resp.StatusCode != http.StatusOK {
		t.Errorf("telemetry %d", resp.StatusCode)
	}
}

func TestListJobsInSubmissionOrder(t *testing.T) {
	_, ts, _, release := blockingServer(t, Config{Workers: 1, QueueDepth: 4})
	defer close(release)
	var ids []string
	for i := 0; i < 3; i++ {
		var st JobStatus
		postJob(t, ts, JobRequest{Experiment: "fig9"}, &st)
		ids = append(ids, st.ID)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(list.Jobs))
	}
	for i, j := range list.Jobs {
		if j.ID != ids[i] {
			t.Errorf("position %d: %s, want %s", i, j.ID, ids[i])
		}
	}
}

// The drain contract: in-flight and queued jobs finish, later submissions
// are rejected with 503, and the process leaks no goroutines — the
// SIGTERM path of cmd/cocoad minus the signal itself.
func TestShutdownDrainsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	release := make(chan struct{})
	s.runFn = func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte(`"drained"`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	var ids []string
	for i := 0; i < 4; i++ {
		var st JobStatus
		postJob(t, ts, JobRequest{Experiment: "fig9"}, &st)
		ids = append(ids, st.ID)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Intake must reject while the drain is in progress.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var body errorBody
		resp := postJob(t, ts, JobRequest{Experiment: "fig9"}, &body)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never saw 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	var health struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Errorf("healthz during drain: %d %q", resp.StatusCode, health.Status)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s lost", id)
		}
		if st := j.Status(); st.State != StateDone {
			t.Errorf("job %s ended %s, want done (accepted jobs finish)", id, st.State)
		}
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	// Goroutine counts settle asynchronously (worker teardown, HTTP
	// keep-alives); poll before declaring a leak.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after drain: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	hang := make(chan struct{})
	defer close(hang)
	s.runFn = func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case <-hang:
			return nil, errors.New("never")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	j, err := s.Submit(JobRequest{Experiment: "fig9"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	// The straggler was hard-canceled and settled before Shutdown returned.
	st := j.Status()
	if !st.State.Terminal() {
		t.Errorf("job still %s after deadline-bounded drain", st.State)
	}
}

func TestSubmitAfterShutdownReturnsDraining(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobRequest{Experiment: "fig9"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

func TestTimeoutPolicyClamping(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, DefaultTimeout: time.Minute, MaxTimeout: 2 * time.Minute})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	cases := []struct {
		reqS float64
		want time.Duration
	}{
		{0, time.Minute},       // default applies
		{30, 30 * time.Second}, // explicit below cap
		{600, 2 * time.Minute}, // clamped to cap
		{0.5, 500 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := s.timeout(JobRequest{TimeoutS: tc.reqS}); got != tc.want {
			t.Errorf("timeout(%v) = %v, want %v", tc.reqS, got, tc.want)
		}
	}
}

func TestSmokeFamilyParsing(t *testing.T) {
	// The debug mux is part of this package's surface; start it on :0 to
	// cover the listener path alongside a vars probe.
	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug vars status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("telemetry")) {
		t.Error("/debug/vars missing telemetry variable")
	}
}
