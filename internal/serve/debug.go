package serve

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"cocoa/internal/obs"
	"cocoa/internal/telemetry"
)

// publishOnce guards expvar registration: expvar.Publish panics on a
// duplicate name, and tests start many debug servers in one process.
var publishOnce sync.Once

// publishTelemetryVar exposes the process-global registry as the expvar
// variable "telemetry", so /debug/vars serves a full snapshot alongside
// the standard memstats/cmdline variables.
func publishTelemetryVar() {
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return telemetry.Default.Snapshot()
		}))
	})
}

// DebugMux returns the private diagnostics mux: expvar under /debug/vars
// (including the telemetry snapshot), Prometheus exposition under
// /metrics (registry + runtime metrics; service-level job gauges live on
// the public handler's /metrics, which knows the Server), and the pprof
// suite under /debug/pprof/. It is deliberately separate from the public
// API handler so operators can bind it to a loopback-only address.
func DebugMux() *http.ServeMux {
	publishTelemetryVar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(telemetry.Default, nil))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves DebugMux on its own listener (never
// http.DefaultServeMux, which would leak handlers into importers) and
// returns the actual listen address so ":0" works in tests. The server
// runs for the remaining process lifetime; there is nothing to shut down
// cleanly mid-run.
func StartDebugServer(addr string) (string, error) {
	mux := DebugMux()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug server: %w", err)
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
