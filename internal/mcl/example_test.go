package mcl_test

import (
	"fmt"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
	"cocoa/internal/mcl"
	"cocoa/internal/sim"
)

// ExampleFilter localizes with Monte Carlo sampling using the same
// calibrated distance PDFs as the grid estimator.
func ExampleFilter() {
	f, err := mcl.New(mcl.DefaultConfig(geom.Square(200)), sim.NewRNG(1).Stream("example"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	truth := geom.Vec2{X: 70, Y: 120}
	for _, anchor := range []geom.Vec2{{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60}} {
		f.ApplyBeacon(anchor, caltable.GaussianPDF{Mu: truth.Dist(anchor), Sigma: 2})
	}
	fmt.Println("ready:", f.Ready())
	fmt.Println("error below 6 m:", f.Estimate().Dist(truth) < 6)
	// Output:
	// ready: true
	// error below 6 m: true
}
