package mcl

import (
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/checkpoint"
	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// HashState fingerprints the whole particle cloud: stable on equal
// states, moved by any reweight/resample.
func TestHashState(t *testing.T) {
	sum := func(f *Filter) uint64 {
		h := checkpoint.NewHasher()
		f.HashState(h)
		return h.Sum()
	}
	mk := func(seed int64) *Filter {
		f, err := New(DefaultConfig(geom.Square(200)), sim.NewRNG(seed).Stream("mcl"))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := mk(3), mk(3)
	if sum(a) != sum(b) {
		t.Fatal("identical fresh clouds hash differently")
	}
	a.ApplyBeacon(geom.Vec2{X: 40, Y: 40}, caltable.GaussianPDF{Mu: 25, Sigma: 3})
	if sum(a) == sum(b) {
		t.Fatal("beacon update did not change the digest")
	}
	b.ApplyBeacon(geom.Vec2{X: 40, Y: 40}, caltable.GaussianPDF{Mu: 25, Sigma: 3})
	if sum(a) != sum(b) {
		t.Fatal("same update sequence produced a different digest")
	}
}
