package mcl

import (
	"math"
	"testing"
	"testing/quick"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

func newFilter(t *testing.T, seed int64) *Filter {
	t.Helper()
	f, err := New(DefaultConfig(geom.Square(200)), sim.NewRNG(seed).Stream("mcl"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(geom.Square(200)).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Particles = 0 },
		func(c *Config) { c.Area = geom.Rect{} },
		func(c *Config) { c.ResampleESSFrac = 0 },
		func(c *Config) { c.ResampleESSFrac = 1.5 },
		func(c *Config) { c.JitterM = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(geom.Square(200))
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestUniformPriorEstimate(t *testing.T) {
	f := newFilter(t, 1)
	// The uniform prior's mean is near the area center.
	if got := f.Estimate().Dist(geom.Square(200).Center()); got > 5 {
		t.Errorf("uniform estimate off center by %.1f m", got)
	}
	if f.Ready() {
		t.Error("Ready before any beacons")
	}
	if got := f.ESS(); math.Abs(got-2000) > 1 {
		t.Errorf("initial ESS = %v, want ~N", got)
	}
}

func TestTrilateration(t *testing.T) {
	f := newFilter(t, 2)
	truth := geom.Vec2{X: 70, Y: 120}
	anchors := []geom.Vec2{{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60}}
	for _, a := range anchors {
		f.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 2})
	}
	if !f.Ready() {
		t.Fatal("not Ready after 3 beacons")
	}
	if err := f.Estimate().Dist(truth); err > 6 {
		t.Errorf("particle trilateration error = %.2f m, want < 6", err)
	}
}

func TestResetRestoresPrior(t *testing.T) {
	f := newFilter(t, 3)
	f.ApplyBeacon(geom.Vec2{X: 50, Y: 50}, caltable.GaussianPDF{Mu: 10, Sigma: 1})
	f.Reset()
	if f.BeaconCount() != 0 {
		t.Error("beacon count not cleared")
	}
	if got := f.Estimate().Dist(geom.Square(200).Center()); got > 5 {
		t.Errorf("post-reset estimate off center by %.1f m", got)
	}
}

func TestResamplingTriggers(t *testing.T) {
	f := newFilter(t, 4)
	// A very sharp beacon collapses the weights; ESS must recover via
	// resampling rather than degenerate toward 1.
	f.ApplyBeacon(geom.Vec2{X: 100, Y: 100}, caltable.GaussianPDF{Mu: 10, Sigma: 0.5})
	if f.ESS() < float64(f.cfg.Particles)/4 {
		t.Errorf("ESS = %.0f after sharp beacon; resampling should have restored it", f.ESS())
	}
}

func TestConflictingBeaconsStayFinite(t *testing.T) {
	f := newFilter(t, 5)
	f.ApplyBeacon(geom.Vec2{X: 10, Y: 10}, caltable.GaussianPDF{Mu: 5, Sigma: 0.5})
	f.ApplyBeacon(geom.Vec2{X: 190, Y: 190}, caltable.GaussianPDF{Mu: 5, Sigma: 0.5})
	est := f.Estimate()
	if math.IsNaN(est.X) || math.IsNaN(est.Y) {
		t.Fatal("NaN estimate after conflicting beacons")
	}
	if !geom.Square(200).Contains(est) {
		t.Errorf("estimate %v left the area", est)
	}
}

func TestParticlesStayInArea(t *testing.T) {
	f := newFilter(t, 6)
	area := geom.Square(200)
	// Beacons near a corner drive particles toward the boundary; the
	// clamp must hold them inside.
	for i := 0; i < 10; i++ {
		f.ApplyBeacon(geom.Vec2{X: 5, Y: 5}, caltable.GaussianPDF{Mu: 3, Sigma: 1})
	}
	for i := range f.xs {
		if !area.Contains(geom.Vec2{X: f.xs[i], Y: f.ys[i]}) {
			t.Fatalf("particle %d escaped: (%v, %v)", i, f.xs[i], f.ys[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() geom.Vec2 {
		f := newFilter(t, 42)
		truth := geom.Vec2{X: 70, Y: 120}
		for _, a := range []geom.Vec2{{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60}} {
			f.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 2})
		}
		return f.Estimate()
	}
	if run() != run() {
		t.Error("same seed produced different estimates")
	}
}

// Property: weights always sum to ~1 after each beacon and the estimate
// stays inside the area.
func TestInvariantProperty(t *testing.T) {
	f := newFilter(t, 7)
	area := geom.Square(200)
	prop := func(seeds []uint8) bool {
		f.Reset()
		for _, s := range seeds {
			pos := geom.Vec2{X: float64(s%200) + 0.5, Y: float64((s*13)%200) + 0.5}
			f.ApplyBeacon(pos, caltable.GaussianPDF{Mu: float64(s%60) + 1, Sigma: 3})
			var sum float64
			for _, w := range f.ws {
				sum += w
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return area.Contains(f.Estimate())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// More particles should not hurt accuracy (law of large numbers); compare
// 200 vs 5000 on the same beacon sequence.
func TestParticleCountAccuracy(t *testing.T) {
	errFor := func(n int, seed int64) float64 {
		cfg := DefaultConfig(geom.Square(200))
		cfg.Particles = n
		f, err := New(cfg, sim.NewRNG(seed).Stream("mcl"))
		if err != nil {
			t.Fatal(err)
		}
		truth := geom.Vec2{X: 130, Y: 60}
		anchors := []geom.Vec2{
			{X: 20, Y: 20}, {X: 180, Y: 30}, {X: 100, Y: 180}, {X: 60, Y: 90},
		}
		for _, a := range anchors {
			f.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 4})
		}
		return f.Estimate().Dist(truth)
	}
	var small, large float64
	const trials = 10
	for s := int64(0); s < trials; s++ {
		small += errFor(200, 100+s)
		large += errFor(5000, 100+s)
	}
	if large > small+1 {
		t.Errorf("5000 particles (%.2f m) worse than 200 (%.2f m)", large/trials, small/trials)
	}
}
