package mcl

import (
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// BenchmarkApplyBeacon measures the per-beacon particle reweighting at the
// default 2000-particle filter size.
func BenchmarkApplyBeacon(b *testing.B) {
	f, err := New(DefaultConfig(geom.Square(200)), sim.NewRNG(1).Stream("bench"))
	if err != nil {
		b.Fatal(err)
	}
	pdf := caltable.GaussianPDF{Mu: 40, Sigma: 5}
	pos := geom.Vec2{X: 70, Y: 120}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ApplyBeacon(pos, pdf)
		if i%16 == 15 {
			f.Reset()
		}
	}
}
