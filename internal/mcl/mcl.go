// Package mcl implements Monte Carlo localization (a particle filter) as
// an alternative RF localization backend for CoCoA. The paper's related
// work discusses Monte Carlo localization (Fox et al.) and stresses that
// "CoCoA is not tied to a specific localization technique ... other
// approaches could be integrated in CoCoA as well"; this package is that
// integration: it consumes the same calibrated RSSI distance PDFs as the
// grid estimator and plugs into the same coordination timeline.
package mcl

import (
	"cocoa/internal/checkpoint"
	"fmt"
	"math"

	"cocoa/internal/bayes"
	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// Config parameterizes the particle filter.
type Config struct {
	// Particles is the sample count; more particles cost CPU linearly
	// and improve the posterior approximation.
	Particles int
	// Area is the deployment area the uniform prior covers.
	Area geom.Rect
	// ResampleESSFrac triggers systematic resampling when the effective
	// sample size falls below this fraction of Particles.
	ResampleESSFrac float64
	// JitterM is the roughening noise added after resampling so the
	// particle set does not collapse to duplicates.
	JitterM float64
}

// DefaultConfig returns a filter configuration suited to the paper's
// 200 m x 200 m deployment area.
func DefaultConfig(area geom.Rect) Config {
	return Config{
		Particles:       2000,
		Area:            area,
		ResampleESSFrac: 0.5,
		JitterM:         1.0,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Particles <= 0:
		return fmt.Errorf("mcl: Particles must be positive")
	case c.Area.Width() <= 0 || c.Area.Height() <= 0:
		return fmt.Errorf("mcl: degenerate area")
	case c.ResampleESSFrac <= 0 || c.ResampleESSFrac > 1:
		return fmt.Errorf("mcl: ResampleESSFrac %v out of (0,1]", c.ResampleESSFrac)
	case c.JitterM < 0:
		return fmt.Errorf("mcl: negative jitter")
	}
	return nil
}

// weightFloor mirrors the grid estimator's constraint floor: one beacon
// can never zero a particle outright, keeping the filter robust to
// deep-faded observations.
const weightFloor = 1e-6

// Filter is a particle-filter position estimator. It satisfies the same
// estimator contract as bayes.Grid and slots into the CoCoA robot
// unchanged.
type Filter struct {
	cfg Config
	rng *sim.RNG

	xs, ys  []float64
	ws      []float64
	beacons int
}

// New builds a filter with a uniform prior over the area.
func New(cfg Config, rng *sim.RNG) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Filter{
		cfg: cfg,
		rng: rng,
		xs:  make([]float64, cfg.Particles),
		ys:  make([]float64, cfg.Particles),
		ws:  make([]float64, cfg.Particles),
	}
	f.Reset()
	return f, nil
}

// Reset scatters the particles uniformly — the paper's "equally likely to
// be in any position" initial estimate — and clears the beacon counter.
func (f *Filter) Reset() {
	for i := range f.xs {
		f.xs[i] = f.rng.Uniform(f.cfg.Area.Min.X, f.cfg.Area.Max.X)
		f.ys[i] = f.rng.Uniform(f.cfg.Area.Min.Y, f.cfg.Area.Max.Y)
		f.ws[i] = 1 / float64(len(f.ws))
	}
	f.beacons = 0
}

// BeaconCount returns the beacons applied since the last Reset.
func (f *Filter) BeaconCount() int { return f.beacons }

// Ready reports whether the paper's >=3 beacon rule is met.
func (f *Filter) Ready() bool { return f.beacons >= bayes.MinBeacons }

// ApplyBeacon reweights the particles by the beacon's distance likelihood
// (Equation 1's constraint, evaluated at particle positions) and resamples
// when the effective sample size degenerates.
func (f *Filter) ApplyBeacon(beaconPos geom.Vec2, pdf bayes.DistanceDensity) {
	var sum float64
	for i := range f.xs {
		dx := f.xs[i] - beaconPos.X
		dy := f.ys[i] - beaconPos.Y
		like := pdf.Density(math.Sqrt(dx*dx + dy*dy))
		if like < weightFloor {
			like = weightFloor
		}
		f.ws[i] *= like
		sum += f.ws[i]
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		f.Reset()
		f.beacons = 1
		return
	}
	var ess float64
	inv := 1 / sum
	for i := range f.ws {
		f.ws[i] *= inv
		ess += f.ws[i] * f.ws[i]
	}
	f.beacons++
	if 1/ess < f.cfg.ResampleESSFrac*float64(len(f.ws)) {
		f.resample()
	}
}

// resample performs systematic resampling followed by roughening jitter.
func (f *Filter) resample() {
	n := len(f.ws)
	nxs := make([]float64, n)
	nys := make([]float64, n)
	step := 1 / float64(n)
	u := f.rng.Uniform(0, step)
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+f.ws[j] < target && j < n-1 {
			cum += f.ws[j]
			j++
		}
		nxs[i] = f.xs[j] + f.rng.Normal(0, f.cfg.JitterM)
		nys[i] = f.ys[j] + f.rng.Normal(0, f.cfg.JitterM)
		p := f.cfg.Area.Clamp(geom.Vec2{X: nxs[i], Y: nys[i]})
		nxs[i], nys[i] = p.X, p.Y
	}
	f.xs, f.ys = nxs, nys
	w := step
	for i := range f.ws {
		f.ws[i] = w
	}
}

// Estimate returns the weighted particle mean (the analogue of Equation
// 3's posterior expectation).
func (f *Filter) Estimate() geom.Vec2 {
	var ex, ey float64
	for i := range f.xs {
		ex += f.ws[i] * f.xs[i]
		ey += f.ws[i] * f.ys[i]
	}
	return geom.Vec2{X: ex, Y: ey}
}

// ESS returns the current effective sample size, for diagnostics.
func (f *Filter) ESS() float64 {
	var s float64
	for _, w := range f.ws {
		s += w * w
	}
	if s == 0 {
		return 0
	}
	return 1 / s
}

// HashState folds the particle cloud — positions, weights, and the beacon
// count — into h, for checkpoint digests. The filter's RNG stream is
// digested separately through the run's stream tree.
func (f *Filter) HashState(h *checkpoint.Hasher) {
	h.Int(f.beacons)
	h.Int(len(f.xs))
	for i := range f.xs {
		h.F64(f.xs[i])
		h.F64(f.ys[i])
		h.F64(f.ws[i])
	}
}
