package radio

import (
	"testing"

	"cocoa/internal/sim"
)

func BenchmarkSampleRSSINear(b *testing.B) {
	m := DefaultModel()
	rng := sim.NewRNG(1).Stream("bench")
	for i := 0; i < b.N; i++ {
		_ = m.SampleRSSI(20, rng)
	}
}

func BenchmarkSampleRSSIFar(b *testing.B) {
	m := DefaultModel()
	rng := sim.NewRNG(1).Stream("bench")
	for i := 0; i < b.N; i++ {
		_ = m.SampleRSSI(120, rng)
	}
}
