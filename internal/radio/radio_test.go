package radio

import (
	"math"
	"testing"
	"testing/quick"

	"cocoa/internal/sim"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("DefaultModel invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero reference dist", func(m *Model) { m.ReferenceDist = 0 }},
		{"negative exponent", func(m *Model) { m.PathLossExp = -1 }},
		{"zero bitrate", func(m *Model) { m.BitrateBps = 0 }},
		{"negative sigma", func(m *Model) { m.ShadowSigmaDB = -1 }},
		{"fade prob > 1", func(m *Model) { m.DeepFadeProb = 1.5 }},
		{"inverted clamp", func(m *Model) { m.MinRSSIDBm, m.MaxRSSIDBm = -30, -100 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := DefaultModel()
			tt.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted bad model")
			}
		})
	}
}

// The paper's anchor points: -80 dBm at ~40 m, -52 dBm at single-digit
// meters, usable range beyond 150 m.
func TestPaperCalibrationAnchors(t *testing.T) {
	m := DefaultModel()
	at40 := m.MeanRSSI(40)
	if at40 > -75 || at40 < -85 {
		t.Errorf("MeanRSSI(40m) = %.1f dBm, want about -80", at40)
	}
	d52 := m.DistanceForRSSI(-52)
	if d52 < 2 || d52 > 10 {
		t.Errorf("distance for -52 dBm = %.1f m, want single digits", d52)
	}
	if r := m.MeanRange(); r < 150 {
		t.Errorf("MeanRange = %.1f m, want > 150 (802.11b outdoor)", r)
	}
}

func TestMeanRSSIMonotoneDecreasing(t *testing.T) {
	m := DefaultModel()
	prev := m.MeanRSSI(1)
	for d := 2.0; d <= 300; d += 1 {
		cur := m.MeanRSSI(d)
		if cur >= prev {
			t.Fatalf("MeanRSSI not decreasing at d=%v: %v >= %v", d, cur, prev)
		}
		prev = cur
	}
}

func TestMeanRSSIClampsBelowReference(t *testing.T) {
	m := DefaultModel()
	if got, want := m.MeanRSSI(0.1), m.MeanRSSI(m.ReferenceDist); got != want {
		t.Errorf("MeanRSSI(0.1) = %v, want clamped to %v", got, want)
	}
}

func TestDistanceForRSSIInvertsMean(t *testing.T) {
	m := DefaultModel()
	for _, d := range []float64{1, 5, 20, 40, 100, 160} {
		r := m.MeanRSSI(d)
		back := m.DistanceForRSSI(r)
		if math.Abs(back-d) > 1e-9*d {
			t.Errorf("round trip d=%v -> %v", d, back)
		}
	}
}

func TestFadeSigmaRegimes(t *testing.T) {
	m := DefaultModel()
	if got := m.FadeSigma(10); got != 0 {
		t.Errorf("near fade sigma = %v, want 0", got)
	}
	if got := m.FadeSigma(40); got != 0 {
		t.Errorf("fade sigma at boundary = %v, want 0", got)
	}
	if got := m.FadeSigma(80); got <= 0 {
		t.Errorf("far fade sigma = %v, want > 0", got)
	}
	if m.FadeSigma(120) <= m.FadeSigma(80) {
		t.Error("far fade sigma should grow with distance")
	}
	// The cap bounds fade growth.
	if got := m.FadeSigma(10000); got != m.MaxSigmaDB {
		t.Errorf("fade sigma at 10km = %v, want capped at %v", got, m.MaxSigmaDB)
	}
}

func TestMaxPlausibleRSSIEnvelope(t *testing.T) {
	m := DefaultModel()
	rng := sim.NewRNG(99).Stream("envelope")
	for _, d := range []float64{5, 40, 80, 160} {
		env := m.MaxPlausibleRSSI(d)
		for i := 0; i < 5000; i++ {
			if got := m.SampleRSSI(d, rng); got > env {
				t.Fatalf("sample %v at d=%v exceeds envelope %v", got, d, env)
			}
		}
	}
}

// Near-regime samples must look Gaussian around the mean; far-regime samples
// must show negative skew from deep fades (the Figure 1(b) effect).
func TestSampleRSSINoiseStructure(t *testing.T) {
	m := DefaultModel()
	rng := sim.NewRNG(42).Stream("radio-test")

	const n = 30000
	near := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		near = append(near, m.SampleRSSI(20, rng))
	}
	mean, std, skew := moments(near)
	if math.Abs(mean-m.MeanRSSI(20)) > 0.1 {
		t.Errorf("near mean = %v, want ~%v", mean, m.MeanRSSI(20))
	}
	if math.Abs(std-m.ShadowSigmaDB) > 0.15 {
		t.Errorf("near std = %v, want ~%v", std, m.ShadowSigmaDB)
	}
	if math.Abs(skew) > 0.1 {
		t.Errorf("near skew = %v, want ~0 (Gaussian)", skew)
	}

	// Widen the ADC clamp so the test observes the channel itself rather
	// than the card's reporting floor.
	wide := m
	wide.MinRSSIDBm = -200
	far := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		far = append(far, wide.SampleRSSI(80, rng))
	}
	_, _, farSkew := moments(far)
	if farSkew > -0.2 {
		t.Errorf("far skew = %v, want clearly negative (deep fades)", farSkew)
	}
}

func moments(xs []float64) (mean, std, skew float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	std = math.Sqrt(m2)
	skew = m3 / math.Pow(m2, 1.5)
	return mean, std, skew
}

func TestClampRSSI(t *testing.T) {
	m := DefaultModel()
	if got := m.ClampRSSI(-200); got != m.MinRSSIDBm {
		t.Errorf("ClampRSSI(-200) = %v", got)
	}
	if got := m.ClampRSSI(0); got != m.MaxRSSIDBm {
		t.Errorf("ClampRSSI(0) = %v", got)
	}
	if got := m.ClampRSSI(-60); got != -60 {
		t.Errorf("ClampRSSI(-60) = %v", got)
	}
}

func TestDecodable(t *testing.T) {
	m := DefaultModel()
	if !m.Decodable(m.SensitivityDBm) {
		t.Error("frame exactly at sensitivity must decode")
	}
	if m.Decodable(m.SensitivityDBm - 0.1) {
		t.Error("frame below sensitivity must not decode")
	}
}

func TestAirtime(t *testing.T) {
	m := DefaultModel()
	// A 250-byte frame at 2 Mbps takes 1 ms.
	if got := m.Airtime(250); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("Airtime(250B) = %v s, want 0.001", got)
	}
	if got := m.Airtime(0); got != 0 {
		t.Errorf("Airtime(0) = %v, want 0", got)
	}
}

func TestPropagationDelayTiny(t *testing.T) {
	d := PropagationDelay(200)
	if d <= 0 || d > 1e-5 {
		t.Errorf("PropagationDelay(200m) = %v, want sub-10us positive", d)
	}
}

// Property: sampled RSSI is always within the clamp range.
func TestSampleAlwaysClamped(t *testing.T) {
	m := DefaultModel()
	rng := sim.NewRNG(7).Stream("clamp")
	f := func(raw uint16) bool {
		d := 0.5 + float64(raw)/200 // up to ~328 m
		r := m.SampleRSSI(d, rng)
		return r >= m.MinRSSIDBm && r <= m.MaxRSSIDBm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distance inversion is monotone: weaker RSSI, larger distance.
func TestDistanceForRSSIMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint8) bool {
		r1 := -30 - float64(a%70)
		r2 := -30 - float64(b%70)
		if r1 == r2 {
			return true
		}
		if r1 > r2 {
			r1, r2 = r2, r1 // r1 weaker
		}
		return m.DistanceForRSSI(r1) > m.DistanceForRSSI(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
