// Package radio models the 802.11b physical layer used by CoCoA: a
// log-distance path-loss channel with distance-dependent noise, RSSI
// reporting in dBm, receive sensitivity, and frame airtime at the paper's
// 2 Mbps rate.
//
// The model is calibrated to reproduce the structure the paper measured on
// its Orinoco WaveLAN testbed (Figure 1):
//
//   - signal strength down to about -80 dBm corresponds to physical
//     distances of up to ~40 m, and in that regime the distance PDF for a
//     given RSSI is well approximated by a Gaussian;
//   - beyond ~40 m multipath and fading dominate, the fluctuation grows,
//     and the distance PDF is no longer Gaussian;
//   - the usable transmission range exceeds 150 m.
package radio

import (
	"fmt"
	"math"

	"cocoa/internal/sim"
)

// Model holds the channel parameters. Construct with DefaultModel and
// override fields as needed; the zero value is not usable.
type Model struct {
	// TxPowerDBm is the transmit power in dBm (WaveLAN-class: 15 dBm).
	TxPowerDBm float64
	// RefLossDB is the path loss at ReferenceDist meters.
	RefLossDB float64
	// ReferenceDist is the path-loss reference distance in meters.
	ReferenceDist float64
	// PathLossExp is the path-loss exponent (outdoor ground: ~3).
	PathLossExp float64
	// ShadowSigmaDB is the lognormal shadowing standard deviation (dB)
	// that applies symmetrically at all distances. Constructive
	// multipath gains are bounded by this term; destructive fades are
	// modeled separately because they can be much deeper.
	ShadowSigmaDB float64
	// MultipathDist is the distance (m) beyond which multipath fading
	// grows; the paper observed ~40 m.
	MultipathDist float64
	// MultipathSigmaDB is the per-MultipathDist growth slope (dB) of the
	// half-normal destructive fade component past MultipathDist.
	MultipathSigmaDB float64
	// MaxSigmaDB caps the fade component's standard deviation; real
	// channels do not fluctuate without bound.
	MaxSigmaDB float64
	// DeepFadeProb is the probability that a frame past MultipathDist
	// experiences an additional deep fade.
	DeepFadeProb float64
	// DeepFadeMeanDB is the mean depth (dB) of such a fade
	// (exponentially distributed).
	DeepFadeMeanDB float64
	// SensitivityDBm is the minimum RSSI at which a frame is decodable.
	SensitivityDBm float64
	// CaptureThresholdDB is the SIR margin required for the strongest of
	// overlapping frames to survive a collision.
	CaptureThresholdDB float64
	// BitrateBps is the channel bitrate (paper: 2 Mbps).
	BitrateBps float64
	// MinRSSIDBm / MaxRSSIDBm clamp reported RSSI to the ADC range of the
	// card, and bound the calibration table domain.
	MinRSSIDBm float64
	MaxRSSIDBm float64
}

// DefaultModel returns the channel calibrated against the paper's
// observations: RSSI(-52 dBm) at roughly 5 m, RSSI(-80 dBm) at roughly
// 40 m, and a decodable range of about 160 m.
func DefaultModel() Model {
	return Model{
		TxPowerDBm:         15,
		RefLossDB:          46.9,
		ReferenceDist:      1,
		PathLossExp:        3.0,
		ShadowSigmaDB:      3.0,
		MultipathDist:      40,
		MultipathSigmaDB:   4.0,
		MaxSigmaDB:         12.0,
		DeepFadeProb:       0.3,
		DeepFadeMeanDB:     6.0,
		SensitivityDBm:     -98,
		CaptureThresholdDB: 10,
		BitrateBps:         2e6,
		MinRSSIDBm:         -100,
		MaxRSSIDBm:         -30,
	}
}

// Validate reports whether the model parameters are physically sensible.
func (m Model) Validate() error {
	switch {
	case m.ReferenceDist <= 0:
		return fmt.Errorf("radio: ReferenceDist %v must be positive", m.ReferenceDist)
	case m.PathLossExp <= 0:
		return fmt.Errorf("radio: PathLossExp %v must be positive", m.PathLossExp)
	case m.BitrateBps <= 0:
		return fmt.Errorf("radio: BitrateBps %v must be positive", m.BitrateBps)
	case m.ShadowSigmaDB < 0 || m.MultipathSigmaDB < 0:
		return fmt.Errorf("radio: noise sigmas must be non-negative")
	case m.DeepFadeProb < 0 || m.DeepFadeProb > 1:
		return fmt.Errorf("radio: DeepFadeProb %v out of [0,1]", m.DeepFadeProb)
	case m.MinRSSIDBm >= m.MaxRSSIDBm:
		return fmt.Errorf("radio: RSSI clamp range inverted")
	}
	return nil
}

// MeanRSSI returns the deterministic (noise-free) received signal strength
// in dBm at distance d meters. Distances below the reference distance clamp
// to the reference.
func (m Model) MeanRSSI(d float64) float64 {
	if d < m.ReferenceDist {
		d = m.ReferenceDist
	}
	return m.TxPowerDBm - m.RefLossDB - 10*m.PathLossExp*math.Log10(d/m.ReferenceDist)
}

// FadeSigma returns the standard deviation in dB of the half-normal
// destructive multipath fade at distance d. It is zero up to MultipathDist
// and grows linearly beyond (capped at MaxSigmaDB), reflecting Figure 1's
// two regimes: Gaussian behaviour near, fade-dominated behaviour far.
func (m Model) FadeSigma(d float64) float64 {
	if d <= m.MultipathDist {
		return 0
	}
	sigma := m.MultipathSigmaDB * (d - m.MultipathDist) / m.MultipathDist
	if m.MaxSigmaDB > 0 && sigma > m.MaxSigmaDB {
		return m.MaxSigmaDB
	}
	return sigma
}

// SampleRSSI returns one noisy RSSI observation (dBm) at distance d:
// symmetric lognormal shadowing at all distances, plus — past
// MultipathDist — a downward-only half-normal fade and occasional deep
// fades. The asymmetry is physical: constructive multipath gains are
// small, destructive fades are deep, and it is exactly what destroys the
// Gaussian shape of the distance PDF for weak signals (Figure 1(b)).
// The result is clamped to the card's reporting range.
func (m Model) SampleRSSI(d float64, rng *sim.RNG) float64 {
	r := rng.Normal(m.MeanRSSI(d), m.ShadowSigmaDB)
	if fs := m.FadeSigma(d); fs > 0 {
		r -= math.Abs(rng.Normal(0, fs))
		if rng.Bool(m.DeepFadeProb) {
			r -= rng.Exp(m.DeepFadeMeanDB)
		}
	}
	return m.ClampRSSI(r)
}

// MaxPlausibleRSSI returns an upper envelope on any sampled RSSI at
// distance d (mean plus five shadowing sigmas); the MAC uses it as a hard
// out-of-range cutoff.
func (m Model) MaxPlausibleRSSI(d float64) float64 {
	return m.MeanRSSI(d) + 5*m.ShadowSigmaDB
}

// ClampRSSI clamps an RSSI value to the card's reporting range. The manual
// compares keep NaN propagation identical to the math.Min(math.Max(...))
// they replace (a NaN fails both compares and passes through) while
// avoiding two function calls on the MAC's per-reception path.
func (m Model) ClampRSSI(r float64) float64 {
	if r < m.MinRSSIDBm {
		return m.MinRSSIDBm
	}
	if r > m.MaxRSSIDBm {
		return m.MaxRSSIDBm
	}
	return r
}

// Decodable reports whether a frame received at the given RSSI is above the
// receiver sensitivity.
func (m Model) Decodable(rssiDBm float64) bool { return rssiDBm >= m.SensitivityDBm }

// MeanRange returns the distance at which the mean RSSI reaches the
// receiver sensitivity: the nominal transmission range.
func (m Model) MeanRange() float64 {
	return m.DistanceForRSSI(m.SensitivityDBm)
}

// DistanceForRSSI inverts the noise-free path-loss curve: it returns the
// distance at which MeanRSSI equals the given value.
func (m Model) DistanceForRSSI(rssiDBm float64) float64 {
	exp := (m.TxPowerDBm - m.RefLossDB - rssiDBm) / (10 * m.PathLossExp)
	return m.ReferenceDist * math.Pow(10, exp)
}

// Airtime returns the seconds needed to transmit a frame of the given total
// size (bytes) at the model bitrate.
func (m Model) Airtime(bytes int) sim.Time {
	return sim.Time(float64(bytes*8) / m.BitrateBps)
}

// PropagationDelay returns the speed-of-light delay over d meters. It is
// negligible at robot-team scales but kept for event-ordering fidelity.
func PropagationDelay(d float64) sim.Time {
	const c = 299792458.0
	return sim.Time(d / c)
}
