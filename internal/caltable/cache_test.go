package caltable

import (
	"reflect"
	"sync"
	"testing"

	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

func fastCacheOpts() Options {
	o := DefaultOptions()
	o.Samples = 20000
	return o
}

// Shared must be byte-for-byte interchangeable with the direct Calibrate
// call it replaces at the team-assembly sites.
func TestSharedMatchesDirectCalibrate(t *testing.T) {
	ResetShared()
	model := radio.DefaultModel()
	opts := fastCacheOpts()
	direct, err := Calibrate(model, opts, sim.NewRNG(7).Stream("calibration"))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Shared(model, opts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, shared) {
		t.Fatal("Shared table differs from direct Calibrate")
	}
}

func TestSharedReusesAndDiscriminates(t *testing.T) {
	ResetShared()
	model := radio.DefaultModel()
	opts := fastCacheOpts()
	a, err := Shared(model, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(model, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical key recomputed the table")
	}
	c, err := Shared(model, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different seed shared a table")
	}
	model2 := model
	model2.TxPowerDBm += 3
	d, err := Shared(model2, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different radio model shared a table")
	}
}

// Concurrent requesters for the same key must get one computation and the
// same table (exercised under -race).
func TestSharedConcurrent(t *testing.T) {
	ResetShared()
	model := radio.DefaultModel()
	opts := fastCacheOpts()
	const n = 8
	tables := make([]*Table, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tbl, err := Shared(model, opts, 3)
			if err != nil {
				t.Error(err)
				return
			}
			tables[i] = tbl
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if tables[i] != tables[0] {
			t.Fatal("concurrent callers got different tables")
		}
	}
}

func TestSharedInvalidOptions(t *testing.T) {
	ResetShared()
	bad := DefaultOptions()
	bad.Samples = 0
	if _, err := Shared(radio.DefaultModel(), bad, 1); err == nil {
		t.Fatal("invalid options accepted")
	}
}
