package caltable

import (
	"sync"

	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// The calibration phase is the single most expensive setup step of a run
// (hundreds of thousands of Monte-Carlo channel soundings), and every run
// of a sweep with the same radio model, calibration options, and seed
// produces bit-identical tables. The process-wide cache below computes each
// distinct table once and hands the same immutable *Table to every
// subsequent caller — Table is read-only after construction, so sharing one
// across concurrently executing teams is safe.

// cacheKey identifies one calibration outcome. radio.Model and Options are
// flat scalar structs, so the key is comparable and collision-free.
type cacheKey struct {
	model radio.Model
	opts  Options
	seed  int64
}

// cacheEntry computes its table at most once; concurrent requesters for
// the same key block on the same Once instead of duplicating the work.
type cacheEntry struct {
	once  sync.Once
	table *Table
	err   error
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*cacheEntry{}
)

// cacheLimit bounds the table cache. Tables are small (tens of KB), so the
// bound exists only to keep pathological many-config workloads from growing
// without limit; eviction picks an arbitrary entry because the choice only
// affects recomputation cost, never results.
const cacheLimit = 64

// Shared returns the calibration table for the given model, options, and
// experiment seed, computing it at most once per process. The RNG stream is
// derived exactly as the direct call sites do — sim.NewRNG(seed).
// Stream("calibration") — so Shared is byte-for-byte interchangeable with
// Calibrate and preserves run determinism at every parallelism level.
func Shared(m radio.Model, opts Options, seed int64) (*Table, error) {
	key := cacheKey{model: m, opts: opts, seed: seed}
	cacheMu.Lock()
	e, ok := cache[key]
	if !ok {
		if len(cache) >= cacheLimit {
			for k := range cache {
				delete(cache, k)
				break
			}
		}
		e = &cacheEntry{}
		cache[key] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() {
		e.table, e.err = Calibrate(m, opts, sim.NewRNG(seed).Stream("calibration"))
	})
	return e.table, e.err
}

// ResetShared empties the process-wide table cache (test isolation and
// memory reclamation; results never depend on cache state).
func ResetShared() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cache = map[cacheKey]*cacheEntry{}
}
