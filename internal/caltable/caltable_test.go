package caltable

import (
	"math"
	"testing"
	"testing/quick"

	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

func calibrated(t *testing.T) (*Table, radio.Model) {
	t.Helper()
	m := radio.DefaultModel()
	opts := DefaultOptions()
	opts.Samples = 150000 // enough for tests, faster than production
	tab, err := Calibrate(m, opts, sim.NewRNG(1).Stream("cal"))
	if err != nil {
		t.Fatal(err)
	}
	return tab, m
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.MaxDist = 0 },
		func(o *Options) { o.Samples = 0 },
		func(o *Options) { o.HistBinM = 0 },
		func(o *Options) { o.GaussianLimitM = 0 },
		func(o *Options) { o.MinBinSamples = 0 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid options", i)
		}
	}
}

func TestCalibrateRejectsBadModel(t *testing.T) {
	m := radio.DefaultModel()
	m.BitrateBps = 0
	if _, err := Calibrate(m, DefaultOptions(), sim.NewRNG(1)); err == nil {
		t.Fatal("accepted invalid model")
	}
	if _, err := Calibrate(radio.DefaultModel(), Options{}, sim.NewRNG(1)); err == nil {
		t.Fatal("accepted invalid options")
	}
}

func TestGaussianPDFBasics(t *testing.T) {
	g := GaussianPDF{Mu: 10, Sigma: 2}
	if !g.IsGaussian() {
		t.Error("IsGaussian false")
	}
	if g.Mean() != 10 {
		t.Error("Mean")
	}
	// Peak at the mean, symmetric, integrates to ~1.
	if g.Density(10) < g.Density(12) || g.Density(10) < g.Density(8) {
		t.Error("density not peaked at mean")
	}
	if math.Abs(g.Density(8)-g.Density(12)) > 1e-12 {
		t.Error("density not symmetric")
	}
	var integral float64
	for d := 0.0; d < 30; d += 0.01 {
		integral += g.Density(d) * 0.01
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("integral = %v, want ~1", integral)
	}
}

func TestEmpiricalPDFBasics(t *testing.T) {
	e := &EmpiricalPDF{BinWidth: 2, Bins: []float64{0.1, 0.3, 0.1}, mean: 2.5}
	if e.IsGaussian() {
		t.Error("IsGaussian true for empirical")
	}
	if e.Mean() != 2.5 {
		t.Error("Mean")
	}
	if got := e.Density(-1); got != 0 {
		t.Errorf("Density(-1) = %v", got)
	}
	if got := e.Density(3); got != 0.3 {
		t.Errorf("Density(3) = %v, want 0.3", got)
	}
	if got := e.Density(100); got != 0 {
		t.Errorf("Density beyond bins = %v", got)
	}
}

// The paper's Figure 1(a): a strong RSSI like -52 dBm maps to a Gaussian
// PDF whose mean is the distance that produces that mean RSSI.
func TestStrongRSSIGaussian(t *testing.T) {
	tab, m := calibrated(t)
	pdf, ok := tab.Lookup(-52)
	if !ok {
		t.Fatal("-52 dBm not calibrated")
	}
	if !pdf.IsGaussian() {
		t.Fatal("-52 dBm PDF not Gaussian (paper Figure 1(a))")
	}
	nominal := m.DistanceForRSSI(-52)
	if math.Abs(pdf.Mean()-nominal) > 0.25*nominal+1 {
		t.Errorf("PDF mean %v, nominal distance %v", pdf.Mean(), nominal)
	}
}

// The paper's Figure 1(b): a weak RSSI like -86 dBm (beyond 40 m) is no
// longer Gaussian.
func TestWeakRSSINotGaussian(t *testing.T) {
	tab, m := calibrated(t)
	pdf, ok := tab.Lookup(-86)
	if !ok {
		t.Fatal("-86 dBm not calibrated")
	}
	if pdf.IsGaussian() {
		t.Fatal("-86 dBm PDF is Gaussian; paper Figure 1(b) says it must not be")
	}
	if m.DistanceForRSSI(-86) <= DefaultOptions().GaussianLimitM {
		t.Fatal("test premise broken: -86 dBm should correspond to >40 m")
	}
}

func TestRegimeBoundaryNearPaper40m(t *testing.T) {
	tab, m := calibrated(t)
	// Every calibrated RSSI whose nominal distance is well inside 40 m
	// must be Gaussian; well outside must be empirical.
	lo, hi, ok := tab.CalibratedRange()
	if !ok {
		t.Fatal("empty table")
	}
	for r := lo; r <= hi; r++ {
		pdf, ok := tab.Lookup(float64(r))
		if !ok {
			continue
		}
		nominal := m.DistanceForRSSI(float64(r))
		if nominal < 35 && !pdf.IsGaussian() {
			t.Errorf("RSSI %d (nominal %.1f m) not Gaussian", r, nominal)
		}
		if nominal > 45 && pdf.IsGaussian() {
			t.Errorf("RSSI %d (nominal %.1f m) unexpectedly Gaussian", r, nominal)
		}
	}
}

func TestLookupQuantizes(t *testing.T) {
	tab, _ := calibrated(t)
	a, okA := tab.Lookup(-52.4)
	b, okB := tab.Lookup(-52.0)
	if !okA || !okB {
		t.Fatal("lookup failed")
	}
	if a != b {
		t.Error("lookup of -52.4 and -52.0 differ; want same integer bin")
	}
}

func TestLookupOutOfRange(t *testing.T) {
	tab, _ := calibrated(t)
	if _, ok := tab.Lookup(-500); ok {
		t.Error("lookup far below range succeeded")
	}
	if _, ok := tab.Lookup(+10); ok {
		t.Error("lookup above range succeeded")
	}
}

func TestPDFsIntegrateToOne(t *testing.T) {
	tab, _ := calibrated(t)
	lo, hi, _ := tab.CalibratedRange()
	step := 0.05
	for r := lo; r <= hi; r += 5 {
		pdf, ok := tab.Lookup(float64(r))
		if !ok {
			continue
		}
		var integral float64
		for d := 0.0; d < tab.MaxDist()+50; d += step {
			integral += pdf.Density(d) * step
		}
		if math.Abs(integral-1) > 0.05 {
			t.Errorf("RSSI %d: PDF integral = %v", r, integral)
		}
	}
}

// Stronger signal implies closer robot: PDF means must decrease (weakly)
// as RSSI increases.
func TestMeansMonotoneInRSSI(t *testing.T) {
	tab, _ := calibrated(t)
	lo, hi, _ := tab.CalibratedRange()
	prevMean := math.Inf(1)
	violations := 0
	count := 0
	for r := lo; r <= hi; r++ {
		pdf, ok := tab.Lookup(float64(r))
		if !ok {
			continue
		}
		count++
		if pdf.Mean() > prevMean+2 { // small sampling jitter allowed
			violations++
		}
		prevMean = pdf.Mean()
	}
	if count < 30 {
		t.Fatalf("too few calibrated bins: %d", count)
	}
	if violations > count/10 {
		t.Errorf("PDF means not monotone: %d violations out of %d bins", violations, count)
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	m := radio.DefaultModel()
	opts := DefaultOptions()
	opts.Samples = 20000
	a, err := Calibrate(m, opts, sim.NewRNG(5).Stream("cal"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(m, opts, sim.NewRNG(5).Stream("cal"))
	if err != nil {
		t.Fatal(err)
	}
	pa, okA := a.Lookup(-60)
	pb, okB := b.Lookup(-60)
	if okA != okB {
		t.Fatal("calibration determinism broken (presence)")
	}
	if okA && (pa.Mean() != pb.Mean()) {
		t.Error("calibration determinism broken (mean)")
	}
}

// Property: densities are never negative, for any calibrated RSSI and any
// distance.
func TestDensityNonNegativeProperty(t *testing.T) {
	tab, _ := calibrated(t)
	lo, hi, _ := tab.CalibratedRange()
	f := func(rRaw, dRaw uint16) bool {
		r := lo + int(rRaw)%(hi-lo+1)
		pdf, ok := tab.Lookup(float64(r))
		if !ok {
			return true
		}
		d := float64(dRaw) / 100 // 0 .. ~655 m
		return pdf.Density(d) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
