// Package caltable implements the offline calibration phase of the
// Sichitiu-Ramadurai localization algorithm as used by CoCoA: it builds the
// PDF Table, stored at each robot, mapping every (quantized) RSSI value to
// a probability distribution function of distance.
//
// The paper calibrated against outdoor WaveLAN measurements and found the
// distance PDF to be Gaussian for RSSI down to about -80 dBm (distances up
// to ~40 m) and non-Gaussian beyond, where multipath and fading dominate
// (Figure 1). This package reproduces that procedure by Monte-Carlo
// sounding of the same channel model the simulation uses: for each RSSI
// bin it fits a Gaussian when the bin's nominal distance is within the
// Gaussian regime and falls back to an empirical histogram otherwise.
package caltable

import (
	"fmt"
	"math"

	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// DistPDF is a probability density over distance in meters.
type DistPDF interface {
	// Density returns the probability density at distance d.
	Density(d float64) float64
	// Mean returns the distribution's mean distance.
	Mean() float64
	// Std returns the distribution's standard deviation, which parametric
	// estimators (e.g. an EKF) use as the range-measurement noise.
	Std() float64
	// IsGaussian reports whether the PDF was fit as a Gaussian.
	IsGaussian() bool
}

// GaussianPDF is a normal distance distribution, the near-regime fit.
type GaussianPDF struct {
	Mu    float64
	Sigma float64
}

var _ DistPDF = GaussianPDF{}

// Density implements DistPDF.
func (g GaussianPDF) Density(d float64) float64 {
	z := (d - g.Mu) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// Mean implements DistPDF.
func (g GaussianPDF) Mean() float64 { return g.Mu }

// Std implements DistPDF.
func (g GaussianPDF) Std() float64 { return g.Sigma }

// IsGaussian implements DistPDF.
func (g GaussianPDF) IsGaussian() bool { return true }

// EmpiricalPDF is a normalized histogram over distance, the far-regime
// representation where the Gaussian assumption breaks down.
type EmpiricalPDF struct {
	BinWidth float64
	// Density per bin; bin i covers [i*BinWidth, (i+1)*BinWidth).
	Bins []float64
	mean float64
	std  float64
}

var _ DistPDF = (*EmpiricalPDF)(nil)

// Density implements DistPDF.
func (e *EmpiricalPDF) Density(d float64) float64 {
	if d < 0 {
		return 0
	}
	i := int(d / e.BinWidth)
	if i >= len(e.Bins) {
		return 0
	}
	return e.Bins[i]
}

// Mean implements DistPDF.
func (e *EmpiricalPDF) Mean() float64 { return e.mean }

// Std implements DistPDF.
func (e *EmpiricalPDF) Std() float64 { return e.std }

// IsGaussian implements DistPDF.
func (e *EmpiricalPDF) IsGaussian() bool { return false }

// Options parameterizes the calibration phase.
type Options struct {
	// MaxDist is the maximum sounded distance in meters; it should cover
	// the radio range.
	MaxDist float64
	// Samples is the total number of Monte-Carlo channel soundings.
	Samples int
	// HistBinM is the histogram bin width for non-Gaussian PDFs.
	HistBinM float64
	// GaussianLimitM is the distance boundary of the Gaussian regime
	// (paper: 40 m).
	GaussianLimitM float64
	// MinBinSamples is the minimum soundings an RSSI bin needs before a
	// PDF is stored for it.
	MinBinSamples int
	// LUTStepM is the radial resolution, in meters, at which Gaussian PDFs
	// are tabulated for the grid filter's fast path (histograms tabulate
	// exactly at their own bin width). Zero disables tabulation and Lookup
	// returns the analytic PDFs.
	LUTStepM float64
	// LUTFloor is the constraint floor the tables' support bounds are
	// computed against; it must not exceed the consumer's clamp (the grid
	// filter checks this before trusting the bounds).
	LUTFloor float64
}

// DefaultOptions returns calibration options matched to the paper's setup.
func DefaultOptions() Options {
	return Options{
		MaxDist:        220,
		Samples:        400000,
		HistBinM:       2,
		GaussianLimitM: 40,
		MinBinSamples:  50,
		LUTStepM:       0.0625,
		LUTFloor:       1e-6,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.MaxDist <= 0:
		return fmt.Errorf("caltable: MaxDist must be positive")
	case o.Samples <= 0:
		return fmt.Errorf("caltable: Samples must be positive")
	case o.HistBinM <= 0:
		return fmt.Errorf("caltable: HistBinM must be positive")
	case o.GaussianLimitM <= 0:
		return fmt.Errorf("caltable: GaussianLimitM must be positive")
	case o.MinBinSamples <= 0:
		return fmt.Errorf("caltable: MinBinSamples must be positive")
	case o.LUTStepM < 0:
		return fmt.Errorf("caltable: LUTStepM must be non-negative")
	case o.LUTStepM > 0 && o.LUTFloor <= 0:
		return fmt.Errorf("caltable: LUTFloor must be positive when tabulation is on")
	}
	return nil
}

// Table is the PDF Table stored at each robot: quantized RSSI -> distance
// PDF.
type Table struct {
	minRSSI int
	pdfs    []DistPDF // index = rssi - minRSSI; nil where uncalibrated
	maxDist float64
}

// Lookup returns the distance PDF for an observed RSSI (dBm), quantized to
// the nearest integer as a real card reports it. The second return is
// false when the RSSI value was never calibrated.
func (t *Table) Lookup(rssiDBm float64) (DistPDF, bool) {
	i := int(math.Round(rssiDBm)) - t.minRSSI
	if i < 0 || i >= len(t.pdfs) || t.pdfs[i] == nil {
		return nil, false
	}
	return t.pdfs[i], true
}

// MaxDist returns the calibrated distance horizon.
func (t *Table) MaxDist() float64 { return t.maxDist }

// CalibratedRange returns the weakest and strongest RSSI values that have a
// PDF, for diagnostics and plotting (Figure 1).
func (t *Table) CalibratedRange() (minRSSI, maxRSSI int, ok bool) {
	lo, hi := -1, -1
	for i, p := range t.pdfs {
		if p == nil {
			continue
		}
		if lo == -1 {
			lo = i
		}
		hi = i
	}
	if lo == -1 {
		return 0, 0, false
	}
	return t.minRSSI + lo, t.minRSSI + hi, true
}

// Calibrate performs the offline calibration phase against the given
// channel model. This mirrors the paper's procedure of driving a robot to
// known distances and recording RSSI, except the channel is the simulated
// one — the same substitution the evaluation section of DESIGN.md records.
func Calibrate(m radio.Model, opts Options, rng *sim.RNG) (*Table, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	minRSSI := int(math.Floor(m.MinRSSIDBm))
	maxRSSI := int(math.Ceil(m.MaxRSSIDBm))
	nBins := maxRSSI - minRSSI + 1
	dists := make([][]float64, nBins)

	for i := 0; i < opts.Samples; i++ {
		d := rng.Uniform(0.5, opts.MaxDist)
		r := m.SampleRSSI(d, rng)
		bin := int(math.Round(r)) - minRSSI
		if bin < 0 || bin >= nBins {
			continue
		}
		dists[bin] = append(dists[bin], d)
	}

	t := &Table{minRSSI: minRSSI, pdfs: make([]DistPDF, nBins), maxDist: opts.MaxDist}
	for bin, ds := range dists {
		if len(ds) < opts.MinBinSamples {
			continue
		}
		mean, std := meanStd(ds)
		nominal := m.DistanceForRSSI(float64(minRSSI + bin))
		var pdf DistPDF
		if nominal <= opts.GaussianLimitM && std > 0 {
			pdf = GaussianPDF{Mu: mean, Sigma: std}
		} else {
			pdf = histogram(ds, opts.HistBinM, opts.MaxDist, mean, std)
		}
		if opts.LUTStepM > 0 {
			lut, err := Tabulate(pdf, opts.LUTFloor, opts.LUTStepM, opts.MaxDist)
			if err != nil {
				return nil, err
			}
			pdf = lut
		}
		t.pdfs[bin] = pdf
	}
	return t, nil
}

func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
	}
	if n > 1 {
		std = math.Sqrt(m2 / (n - 1))
	}
	return mean, std
}

func histogram(ds []float64, binW, maxDist, mean, std float64) *EmpiricalPDF {
	n := int(math.Ceil(maxDist/binW)) + 1
	bins := make([]float64, n)
	for _, d := range ds {
		i := int(d / binW)
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	// Normalize counts to a density: sum(bins)*binW == 1.
	total := float64(len(ds)) * binW
	for i := range bins {
		bins[i] /= total
	}
	return &EmpiricalPDF{BinWidth: binW, Bins: bins, mean: mean, std: std}
}
