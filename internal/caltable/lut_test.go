package caltable

import (
	"math"
	"testing"

	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

const (
	testFloor = 1e-6
	testStep  = 0.0625
)

// gaussLerpBound is the analytic worst-case linear-interpolation error for
// a Gaussian density sampled at the given step: step²·max|f″|/8 with
// max|f″| = 1/(σ³√2π) at the peak.
func gaussLerpBound(sigma, step float64) float64 {
	return step * step / (8 * sigma * sigma * sigma * math.Sqrt(2*math.Pi))
}

func TestTabulateEmpiricalExact(t *testing.T) {
	e := &EmpiricalPDF{
		BinWidth: 2,
		Bins:     []float64{0, 1e-9, 0.01, 0.2, 0.15, 3e-7, 0.1, 0.04, 1e-8, 0},
		mean:     8, std: 3,
	}
	lut, err := Tabulate(e, testFloor, testStep, 25)
	if err != nil {
		t.Fatal(err)
	}
	rIn, rOut := lut.Support()
	for d := -1.0; d < 30; d += 0.01 {
		got, want := lut.Density(d), e.Density(d)
		if d >= rIn && d < rOut {
			if got != want {
				t.Fatalf("d=%v: in-support density %v != analytic %v", d, got, want)
			}
		} else {
			if got != 0 {
				t.Fatalf("d=%v: outside support, got %v", d, got)
			}
			if want >= testFloor {
				t.Fatalf("d=%v: analytic %v >= floor outside support [%v,%v]", d, want, rIn, rOut)
			}
		}
	}
}

func TestTabulateGaussianAgreement(t *testing.T) {
	for _, sigma := range []float64{0.8, 2, 5, 12} {
		for _, mu := range []float64{3, 20, 40} {
			g := GaussianPDF{Mu: mu, Sigma: sigma}
			lut, err := Tabulate(g, testFloor, testStep, 220)
			if err != nil {
				t.Fatal(err)
			}
			rIn, rOut := lut.Support()
			bound := gaussLerpBound(sigma, testStep) * 1.001
			for d := 0.0; d < 220; d += 0.003 {
				got, want := lut.Density(d), g.Density(d)
				if d >= rIn && d < rOut {
					if math.Abs(got-want) > bound {
						t.Fatalf("mu=%v sigma=%v d=%v: |%v-%v| > %v", mu, sigma, d, got, want, bound)
					}
				} else if want >= testFloor {
					t.Fatalf("mu=%v sigma=%v d=%v: analytic %v >= floor outside support", mu, sigma, d, want)
				}
			}
		}
	}
}

// TestCalibratedTableAgreement exercises the satellite contract end to end:
// every PDF a calibrated table hands out is tabulated, and over the full
// calibrated RSSI range its table density agrees with the analytic base
// within the lerp bound (exactly, for histogram bins) across the distance
// support.
func TestCalibratedTableAgreement(t *testing.T) {
	opts := DefaultOptions()
	opts.Samples = 60000
	tab, err := Calibrate(radio.DefaultModel(), opts, sim.NewRNG(11).Stream("cal"))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := tab.CalibratedRange()
	if !ok {
		t.Fatal("no calibrated bins")
	}
	checked := 0
	for r := lo; r <= hi; r++ {
		pdf, ok := tab.Lookup(float64(r))
		if !ok {
			continue
		}
		lut, ok := pdf.(*TabulatedPDF)
		if !ok {
			t.Fatalf("RSSI %d: Lookup returned %T, want *TabulatedPDF", r, pdf)
		}
		checked++
		base := lut.Base()
		bound := 0.0
		if base.IsGaussian() {
			bound = gaussLerpBound(base.Std(), opts.LUTStepM) * 1.001
		}
		rIn, rOut := lut.Support()
		for d := 0.0; d < opts.MaxDist; d += 0.017 {
			got, want := lut.Density(d), base.Density(d)
			if d >= rIn && d < rOut {
				if math.Abs(got-want) > bound {
					t.Fatalf("RSSI %d d=%v: |%v-%v| > %v", r, d, got, want, bound)
				}
			} else if want >= opts.LUTFloor {
				t.Fatalf("RSSI %d d=%v: analytic %v >= floor outside support", r, d, want)
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d tabulated bins checked", checked)
	}
}

func TestTabulateRejectsBadArgs(t *testing.T) {
	g := GaussianPDF{Mu: 10, Sigma: 2}
	for _, c := range []struct{ floor, step, maxDist float64 }{
		{0, 1, 10}, {1e-6, 0, 10}, {1e-6, 1, 0},
	} {
		if _, err := Tabulate(g, c.floor, c.step, c.maxDist); err == nil {
			t.Errorf("Tabulate(%+v) accepted", c)
		}
	}
}

func TestTabulateEmptySupport(t *testing.T) {
	// A density everywhere below the floor must yield an empty support and
	// zero densities, not panic.
	g := GaussianPDF{Mu: 1000, Sigma: 1} // support far beyond maxDist
	lut, err := Tabulate(g, testFloor, testStep, 50)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0.0; d < 60; d += 0.5 {
		if lut.Density(d) != 0 {
			t.Fatalf("d=%v: density %v, want 0", d, lut.Density(d))
		}
	}
}

// FuzzTabulateAgreement drives random Gaussian shapes and probe distances
// through the table, asserting the lerp bound and support contract hold for
// every reachable parameter combination.
func FuzzTabulateAgreement(f *testing.F) {
	f.Add(20.0, 2.0, 15.0)
	f.Add(3.0, 0.6, 3.1)
	f.Add(100.0, 20.0, 140.0)
	f.Fuzz(func(t *testing.T, mu, sigma, d float64) {
		if !(mu > 0.1 && mu < 200) || !(sigma > 0.5 && sigma < 40) || !(d >= 0 && d < 250) {
			t.Skip()
		}
		const maxDist = 220.0
		g := GaussianPDF{Mu: mu, Sigma: sigma}
		lut, err := Tabulate(g, testFloor, testStep, maxDist)
		if err != nil {
			t.Fatal(err)
		}
		got, want := lut.Density(d), g.Density(d)
		rIn, rOut := lut.Support()
		if d >= rIn && d < rOut {
			if math.Abs(got-want) > gaussLerpBound(sigma, testStep)*1.001 {
				t.Fatalf("in-support disagreement: %v vs %v", got, want)
			}
		} else {
			if got != 0 {
				t.Fatalf("outside support density %v", got)
			}
			// The table is truncated at maxDist by construction, so the
			// "below floor outside support" guarantee only covers the
			// tabulated range; beyond it the analytic density may still
			// exceed the floor (e.g. mu near maxDist with a wide sigma).
			if want >= testFloor && d < maxDist {
				t.Fatalf("analytic %v >= floor outside support", want)
			}
		}
	})
}
