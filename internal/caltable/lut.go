package caltable

import (
	"fmt"
	"math"
)

// TabulatedPDF wraps a fitted distance PDF with a precomputed radial
// likelihood lookup table at sub-cell resolution. The grid filter's beacon
// update evaluates the PDF once per candidate cell — tens of thousands of
// times per beacon — so replacing Exp/branching with a table index is the
// single largest win in the whole pipeline.
//
// The table carries explicit support bounds [RInner, ROuter]: outside them
// the underlying density is below Floor, the constraint floor the consumer
// clamps at, so a consumer may treat every outside cell as "floor" without
// evaluating anything. Support is what extends the annulus fast path —
// previously available only to Gaussian PDFs via their moments — to
// EmpiricalPDF histograms.
//
// Two sampling modes, chosen by the base PDF:
//
//   - Histograms (EmpiricalPDF) use nearest-sample mode with the step equal
//     to the histogram bin width and bin-aligned origin, so Density is
//     *exactly* the base density at every distance in support.
//   - Gaussians are sampled at the configured step (default 1/16 m, 32× the
//     paper's 2 m cell side) and linearly interpolated. The lerp error is
//     bounded by step²·max|f″|/8 = step²/(8σ³√2π), about 1e-4 of the peak
//     density at σ = 1 m and quadratically smaller for wider bins.
type TabulatedPDF struct {
	base DistPDF

	dens    []float64 // samples; dens[i] at r0 + i*step (lerp) or covering [r0+i*step, r0+(i+1)*step) (nearest)
	r0, r1  float64   // support bounds: density < floor outside [r0, r1]
	step    float64
	invStep float64
	floor   float64
	nearest bool
}

var _ DistPDF = (*TabulatedPDF)(nil)

// Tabulate builds the lookup table for pdf. floor is the consumer's
// constraint floor (densities below it are indistinguishable from the
// clamp, so they bound the support); step is the Gaussian sampling
// resolution in meters. Empirical histograms ignore step and tabulate
// exactly at their own bin width.
func Tabulate(pdf DistPDF, floor, step, maxDist float64) (*TabulatedPDF, error) {
	if floor <= 0 || step <= 0 || maxDist <= 0 {
		return nil, fmt.Errorf("caltable: Tabulate needs positive floor/step/maxDist")
	}
	t := &TabulatedPDF{base: pdf, floor: floor}
	if e, ok := pdf.(*EmpiricalPDF); ok {
		t.nearest = true
		t.step = e.BinWidth
		lo, hi := -1, -1
		for i, b := range e.Bins {
			if b >= floor {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
		}
		if lo < 0 {
			lo, hi = 0, -1 // empty support: every cell takes the floor
		}
		t.dens = append([]float64(nil), e.Bins[lo:hi+1]...)
		t.r0 = float64(lo) * e.BinWidth
		t.r1 = float64(hi+1) * e.BinWidth
		t.invStep = 1 / t.step
		return t, nil
	}

	// Node-sampled + lerp. Scan analytic samples over [0, maxDist] for the
	// support, then keep one node of margin on each side so densities that
	// cross the floor between nodes stay inside the table.
	t.step = step
	n := int(math.Ceil(maxDist/step)) + 1
	samples := make([]float64, n+1)
	lo, hi := -1, -1
	for i := range samples {
		samples[i] = pdf.Density(float64(i) * step)
		if samples[i] >= floor {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		lo, hi = 0, -1
	}
	if lo > 0 {
		lo--
	}
	if hi < n {
		hi++
	}
	t.dens = append([]float64(nil), samples[lo:hi+1]...) // copy: drop the full scan array
	t.r0 = float64(lo) * step
	t.r1 = float64(hi) * step
	t.invStep = 1 / step
	return t, nil
}

// Density implements DistPDF by table lookup. Outside the support it
// returns 0: the true density there is below the tabulation floor, so
// consumers clamping at that floor observe identical behavior.
func (t *TabulatedPDF) Density(d float64) float64 {
	if d < t.r0 || d >= t.r1 {
		return 0
	}
	u := (d - t.r0) * t.invStep
	j := int(u)
	if t.nearest {
		if j >= len(t.dens) {
			j = len(t.dens) - 1
		}
		return t.dens[j]
	}
	if j >= len(t.dens)-1 {
		return t.dens[len(t.dens)-1]
	}
	return t.dens[j] + (u-float64(j))*(t.dens[j+1]-t.dens[j])
}

// Mean implements DistPDF by delegation.
func (t *TabulatedPDF) Mean() float64 { return t.base.Mean() }

// Std implements DistPDF by delegation.
func (t *TabulatedPDF) Std() float64 { return t.base.Std() }

// IsGaussian implements DistPDF by delegation.
func (t *TabulatedPDF) IsGaussian() bool { return t.base.IsGaussian() }

// Base returns the analytic PDF the table was built from.
func (t *TabulatedPDF) Base() DistPDF { return t.base }

// Support returns [rInner, rOuter]: outside it the density is below the
// tabulation floor. Consumers clamping at ≥ TableFloor may skip all work
// outside this annulus.
func (t *TabulatedPDF) Support() (rInner, rOuter float64) { return t.r0, t.r1 }

// TableFloor returns the constraint floor the support bounds were computed
// against.
func (t *TabulatedPDF) TableFloor() float64 { return t.floor }

// RadialTable exposes the raw samples for consumers that want to inline the
// index arithmetic (the grid filter's hot loop). The returned slice must be
// treated as immutable. nearest reports sampling mode: true means dens[i]
// covers [r0+i·step, r0+(i+1)·step) exactly; false means dens[i] samples
// r0+i·step and intermediate distances interpolate linearly.
func (t *TabulatedPDF) RadialTable() (dens []float64, r0, step float64, nearest bool) {
	return t.dens, t.r0, t.step, t.nearest
}
