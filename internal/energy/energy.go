// Package energy implements the wireless-interface energy model CoCoA
// adopts from Feeney & Nilsson's IEEE 802.11 measurements: per-state power
// draw for transmit, receive, idle, and sleep, plus the cost of powering the
// card on and off. The paper's key numbers are an idle draw of 900 mW
// versus a sleep draw of 50 mW — the gap CoCoA's coordination exploits.
package energy

import (
	"cocoa/internal/checkpoint"
	"fmt"

	"cocoa/internal/sim"
)

// State is the radio power state.
type State int

// Radio power states. Off consumes nothing; Sleep keeps the card powered
// but deaf; Idle listens; Rx and Tx are active reception and transmission.
const (
	Off State = iota + 1
	Sleep
	Idle
	Rx
	Tx
)

var stateNames = map[State]string{
	Off:   "off",
	Sleep: "sleep",
	Idle:  "idle",
	Rx:    "rx",
	Tx:    "tx",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Params holds the per-state power draw in watts and transition costs in
// joules.
type Params struct {
	TxW    float64 // transmit power draw
	RxW    float64 // receive power draw
	IdleW  float64 // idle listening draw (paper: 900 mW)
	SleepW float64 // sleep draw (paper: 50 mW)
	// TransitionJ is the energy cost of each sleep<->awake or on/off
	// power transition of the card.
	TransitionJ float64
}

// DefaultParams returns the Feeney & Nilsson–derived values the paper uses:
// idle 0.9 W, sleep 0.05 W, receive comparable to idle, transmit higher.
func DefaultParams() Params {
	return Params{
		TxW:         1.4,
		RxW:         1.0,
		IdleW:       0.9,
		SleepW:      0.05,
		TransitionJ: 0.02,
	}
}

// Validate reports whether the parameters are physically sensible.
func (p Params) Validate() error {
	if p.TxW < 0 || p.RxW < 0 || p.IdleW < 0 || p.SleepW < 0 || p.TransitionJ < 0 {
		return fmt.Errorf("energy: negative power or transition cost: %+v", p)
	}
	if p.SleepW > p.IdleW {
		return fmt.Errorf("energy: sleep draw %v exceeds idle draw %v", p.SleepW, p.IdleW)
	}
	return nil
}

// Power returns the draw in watts for the given state.
func (p Params) Power(s State) float64 {
	switch s {
	case Tx:
		return p.TxW
	case Rx:
		return p.RxW
	case Idle:
		return p.IdleW
	case Sleep:
		return p.SleepW
	default: // Off
		return 0
	}
}

// Meter accumulates the energy consumed by one radio as it moves through
// power states over virtual time. It is the per-node energy ledger behind
// the paper's Figure 9(b).
type Meter struct {
	params Params

	state  State
	lastAt sim.Time

	durations   map[State]sim.Time
	joules      float64
	transitions int
}

// NewMeter returns a meter whose radio starts in the given state at time
// start.
func NewMeter(params Params, start sim.Time, initial State) *Meter {
	return &Meter{
		params:    params,
		state:     initial,
		lastAt:    start,
		durations: make(map[State]sim.Time, 5),
	}
}

// State returns the current radio state.
func (m *Meter) State() State { return m.state }

// SetState accrues energy for the interval spent in the current state and
// switches to next. Transitions into or out of Sleep/Off pay the card
// transition cost. Setting the same state is a no-op (no transition cost).
func (m *Meter) SetState(now sim.Time, next State) {
	if next == m.state {
		m.accrue(now)
		return
	}
	m.accrue(now)
	if m.state == Sleep || m.state == Off || next == Sleep || next == Off {
		m.joules += m.params.TransitionJ
		m.transitions++
	}
	m.state = next
}

// accrue charges the elapsed time against the current state.
func (m *Meter) accrue(now sim.Time) {
	if now < m.lastAt {
		panic(fmt.Sprintf("energy: time went backwards: %v < %v", now, m.lastAt))
	}
	dt := now - m.lastAt
	m.durations[m.state] += dt
	m.joules += dt * m.params.Power(m.state)
	m.lastAt = now
}

// Flush accrues energy up to now without changing state. Call before
// reading totals.
func (m *Meter) Flush(now sim.Time) { m.accrue(now) }

// TotalJ returns the total energy consumed so far, in joules.
func (m *Meter) TotalJ() float64 { return m.joules }

// Duration returns the time spent in the given state so far.
func (m *Meter) Duration(s State) sim.Time { return m.durations[s] }

// Transitions returns the number of charged power transitions.
func (m *Meter) Transitions() int { return m.transitions }

// CounterfactualNoSleepJ returns the energy this radio would have consumed
// if every sleep interval had instead been spent idle and no sleep
// transitions had been paid. This is exactly the paper's "CoCoA without
// coordination" baseline in Figure 9(b), computed from the same run.
func (m *Meter) CounterfactualNoSleepJ() float64 {
	sleepT := m.durations[Sleep]
	return m.joules +
		sleepT*(m.params.IdleW-m.params.SleepW) -
		float64(m.transitions)*m.params.TransitionJ
}

// Breakdown returns a copy of the per-state duration table.
func (m *Meter) Breakdown() map[State]sim.Time {
	out := make(map[State]sim.Time, len(m.durations))
	for k, v := range m.durations {
		out[k] = v
	}
	return out
}

// HashState folds the meter's ledger — current radio state, accrual
// cursor, per-state durations, total energy, transition count — into h,
// for checkpoint digests. It does not accrue (no Flush): hashing must not
// move the ledger, and the un-accrued tail is a pure function of state
// and lastAt, which are both hashed.
func (m *Meter) HashState(h *checkpoint.Hasher) {
	h.Int(int(m.state))
	h.F64(float64(m.lastAt))
	for s := Off; s <= Tx; s++ {
		h.F64(float64(m.durations[s]))
	}
	h.F64(m.joules)
	h.Int(m.transitions)
}
