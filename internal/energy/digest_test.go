package energy

import (
	"testing"

	"cocoa/internal/checkpoint"
)

// HashState fingerprints the ledger without accruing: hashing twice is
// stable, and any state transition or accrual moves the digest.
func TestHashState(t *testing.T) {
	sum := func(m *Meter) uint64 {
		h := checkpoint.NewHasher()
		m.HashState(h)
		return h.Sum()
	}
	a := NewMeter(DefaultParams(), 0, Idle)
	b := NewMeter(DefaultParams(), 0, Idle)
	if sum(a) != sum(b) {
		t.Fatal("identical fresh meters hash differently")
	}
	if s := sum(a); s != sum(a) {
		t.Fatal("hashing is not deterministic")
	}
	a.SetState(10, Tx)
	if sum(a) == sum(b) {
		t.Fatal("state transition did not change the digest")
	}
	b.SetState(10, Tx)
	if sum(a) != sum(b) {
		t.Fatal("same transitions produced a different digest")
	}
	a.Flush(20)
	if sum(a) == sum(b) {
		t.Fatal("accrual did not change the digest")
	}
}
