package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's headline numbers: idle 900 mW, sleep 50 mW.
	if p.IdleW != 0.9 {
		t.Errorf("IdleW = %v, want 0.9", p.IdleW)
	}
	if p.SleepW != 0.05 {
		t.Errorf("SleepW = %v, want 0.05", p.SleepW)
	}
	if p.TxW <= p.RxW || p.RxW < p.IdleW {
		t.Errorf("want TxW > RxW >= IdleW, got %+v", p)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{"negative tx", Params{TxW: -1}},
		{"sleep above idle", Params{SleepW: 1, IdleW: 0.5}},
		{"negative transition", Params{TransitionJ: -0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Error("accepted invalid params")
			}
		})
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Off, "off"}, {Sleep, "sleep"}, {Idle, "idle"}, {Rx, "rx"}, {Tx, "tx"},
		{State(99), "State(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestPower(t *testing.T) {
	p := DefaultParams()
	if got := p.Power(Off); got != 0 {
		t.Errorf("Power(Off) = %v", got)
	}
	if got := p.Power(Tx); got != p.TxW {
		t.Errorf("Power(Tx) = %v", got)
	}
	if got := p.Power(Sleep); got != p.SleepW {
		t.Errorf("Power(Sleep) = %v", got)
	}
}

func TestMeterAccrual(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, 0, Idle)
	m.SetState(10, Tx)   // 10 s idle
	m.SetState(10.5, Rx) // 0.5 s tx
	m.SetState(12, Idle) // 1.5 s rx
	m.Flush(20)          // 8 s idle

	want := 10*p.IdleW + 0.5*p.TxW + 1.5*p.RxW + 8*p.IdleW
	if got := m.TotalJ(); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalJ = %v, want %v", got, want)
	}
	if got := m.Duration(Idle); got != 18 {
		t.Errorf("idle duration = %v, want 18", got)
	}
	if got := m.Transitions(); got != 0 {
		t.Errorf("transitions = %d, want 0 (no sleep involved)", got)
	}
}

func TestMeterSleepTransitionCost(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, 0, Idle)
	m.SetState(1, Sleep) // pays transition
	m.SetState(5, Idle)  // pays transition
	m.Flush(6)

	want := 1*p.IdleW + 4*p.SleepW + 1*p.IdleW + 2*p.TransitionJ
	if got := m.TotalJ(); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalJ = %v, want %v", got, want)
	}
	if got := m.Transitions(); got != 2 {
		t.Errorf("transitions = %d, want 2", got)
	}
}

func TestSetSameStateNoTransition(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p, 0, Sleep)
	m.SetState(5, Sleep)
	if got := m.Transitions(); got != 0 {
		t.Errorf("transitions = %d, want 0", got)
	}
	if got := m.TotalJ(); math.Abs(got-5*p.SleepW) > 1e-12 {
		t.Errorf("TotalJ = %v", got)
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	m := NewMeter(DefaultParams(), 10, Idle)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time reversal")
		}
	}()
	m.Flush(5)
}

// The paper: without coordination, radios idle instead of sleeping, costing
// 2.6x-8x more. The counterfactual must equal a meter that idled through
// the same schedule.
func TestCounterfactualNoSleep(t *testing.T) {
	p := DefaultParams()
	coord := NewMeter(p, 0, Idle)
	uncoord := NewMeter(p, 0, Idle)

	// 100 s schedule: 3 s awake window then 97 s sleep (coordinated) or
	// idle (uncoordinated), repeated 10 times.
	now := 0.0
	for i := 0; i < 10; i++ {
		coord.SetState(now+3, Sleep)
		uncoord.SetState(now+3, Idle)
		now += 100
		coord.SetState(now, Idle)
		uncoord.SetState(now, Idle)
	}
	coord.Flush(now)
	uncoord.Flush(now)

	if got, want := coord.CounterfactualNoSleepJ(), uncoord.TotalJ(); math.Abs(got-want) > 1e-9 {
		t.Errorf("counterfactual = %v, want %v", got, want)
	}
	ratio := uncoord.TotalJ() / coord.TotalJ()
	if ratio < 2.6 || ratio > 12 {
		t.Errorf("savings ratio = %.2f, want within the paper's 2.6x-8x band "+
			"(loosely) for a T=100 schedule", ratio)
	}
}

func TestBreakdownIsCopy(t *testing.T) {
	m := NewMeter(DefaultParams(), 0, Idle)
	m.SetState(2, Sleep)
	b := m.Breakdown()
	b[Idle] = 999
	if got := m.Duration(Idle); got != 2 {
		t.Errorf("mutating Breakdown() affected meter: %v", got)
	}
}

// Property: total energy is non-negative and monotonically non-decreasing
// under any sequence of state changes.
func TestEnergyMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	states := []State{Off, Sleep, Idle, Rx, Tx}
	f := func(steps []uint8) bool {
		m := NewMeter(p, 0, Idle)
		now := 0.0
		prev := 0.0
		for _, s := range steps {
			now += float64(s%50) / 10
			m.SetState(now, states[int(s)%len(states)])
			if m.TotalJ() < prev-1e-12 {
				return false
			}
			prev = m.TotalJ()
		}
		return m.TotalJ() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy equals sum over states of duration x power plus
// transition costs (conservation).
func TestEnergyConservationProperty(t *testing.T) {
	p := DefaultParams()
	states := []State{Off, Sleep, Idle, Rx, Tx}
	f := func(steps []uint8) bool {
		m := NewMeter(p, 0, Idle)
		now := 0.0
		for _, s := range steps {
			now += float64(s%30) / 7
			m.SetState(now, states[int(s)%len(states)])
		}
		m.Flush(now + 1)
		var want float64
		for st, d := range m.Breakdown() {
			want += d * p.Power(st)
		}
		want += float64(m.Transitions()) * p.TransitionJ
		return math.Abs(want-m.TotalJ()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
