// Package geounicast implements in-network unicast over the broadcast MAC
// using greedy geographic forwarding — the data path the paper's
// conclusion motivates: with CoCoA coordinates, "scalable geographic
// routing of messages and data among the robots or to a controller"
// becomes possible without any routing tables.
//
// Each robot runs an Agent that
//
//   - learns its neighborhood from periodic HELLO broadcasts carrying the
//     sender's *believed* position (plus any overheard unicast traffic);
//   - forwards unicast packets to the fresh neighbor whose believed
//     position is closest to the destination coordinates, requiring
//     strict progress (greedy mode; packets are dropped at voids — the
//     offline GFG recovery of internal/georouting shows what face routing
//     would add).
//
// Because the MAC is broadcast-only (as 802.11 fundamentally is), unicast
// frames carry an explicit next-hop ID and every other receiver discards
// them.
package geounicast

import (
	"fmt"

	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/network"
	"cocoa/internal/sim"
)

// Packet is one unicast message in flight.
type Packet struct {
	Src     int
	Seq     int // per-source sequence number; (Src, Seq) identifies the packet
	Dst     int
	DstPos  geom.Vec2 // destination's (believed) coordinates
	FromHop int       // the hop that transmitted this copy (ACK target)
	NextHop int
	Hops    int
	TTL     int
	Payload any
}

// ack acknowledges one hop of one packet.
type ack struct {
	Src int // packet origin
	Seq int
	To  int // the hop being acknowledged
}

// pkey identifies a packet end to end.
type pkey struct {
	src, seq int
}

// Sizes in bytes on the air.
const (
	helloBytes  = network.IPHeaderBytes + network.UDPHeaderBytes + network.CoordBytes
	headerBytes = network.IPHeaderBytes + network.UDPHeaderBytes + 2*network.CoordBytes + 16
	ackBytes    = network.IPHeaderBytes + network.UDPHeaderBytes + 12
)

// Config parameterizes an agent.
type Config struct {
	// NeighborTTLS is how long a neighbor entry stays fresh without
	// being re-heard. Stale entries are not used for forwarding.
	NeighborTTLS sim.Time
	// DefaultTTL bounds a packet's hop count.
	DefaultTTL int
	// PayloadBytes is the application payload size added to the header.
	PayloadBytes int
	// ForwardJitterMaxS decorrelates per-hop transmissions.
	ForwardJitterMaxS sim.Time
	// AckTimeoutS is the per-hop stop-and-wait retransmission timeout.
	AckTimeoutS sim.Time
	// MaxRetries bounds per-hop retransmissions; 0 disables the ARQ
	// entirely (fire-and-forget forwarding).
	MaxRetries int
}

// DefaultConfig suits the paper's deployment scale.
func DefaultConfig() Config {
	return Config{
		NeighborTTLS:      150,
		DefaultTTL:        16,
		PayloadBytes:      32,
		ForwardJitterMaxS: 0.02,
		AckTimeoutS:       0.05,
		MaxRetries:        2,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NeighborTTLS <= 0:
		return fmt.Errorf("geounicast: NeighborTTLS must be positive")
	case c.DefaultTTL <= 0:
		return fmt.Errorf("geounicast: DefaultTTL must be positive")
	case c.PayloadBytes < 0:
		return fmt.Errorf("geounicast: negative payload")
	case c.ForwardJitterMaxS < 0:
		return fmt.Errorf("geounicast: negative jitter")
	case c.AckTimeoutS < 0 || c.MaxRetries < 0:
		return fmt.Errorf("geounicast: negative ARQ parameter")
	case c.MaxRetries > 0 && c.AckTimeoutS == 0:
		return fmt.Errorf("geounicast: retries need a positive AckTimeoutS")
	}
	return nil
}

// Stats counts agent outcomes.
type Stats struct {
	Sent        int // packets originated here
	Delivered   int // packets delivered here (we were Dst)
	Forwarded   int // packets relayed
	NoRoute     int // drops: no fresh neighbor with progress
	TTLExpired  int // drops: hop budget exhausted
	HellosSent  int
	Retransmits int // ARQ retransmissions after ACK timeouts
	AcksSent    int
	DropsNoAck  int // drops: retries exhausted without an ACK
	Duplicates  int // retransmitted copies already processed
}

// hello is the neighbor-discovery payload.
type hello struct {
	Sender int
	Pos    geom.Vec2
}

// neighborEntry is one row of the neighbor table.
type neighborEntry struct {
	pos   geom.Vec2
	heard sim.Time
}

// DeliverFunc consumes packets that reached their destination.
type DeliverFunc func(p Packet)

// Agent is one robot's geographic-unicast endpoint.
type Agent struct {
	id  int
	sim *sim.Simulator
	nic *network.NIC
	cfg Config
	rng *sim.RNG

	// selfPos returns the robot's believed position — CoCoA's estimate,
	// not ground truth; routing quality inherits localization quality.
	selfPos func() geom.Vec2

	neighbors map[int]neighborEntry
	onDeliver DeliverFunc
	stats     Stats

	seq     int                 // origin sequence counter
	pending map[pkey]*sim.Event // ARQ timers for un-ACKed transmissions
	seen    map[pkey]bool       // packets already processed here (dedup)
}

// New attaches an agent to the NIC. selfPos must return the robot's
// believed position.
func New(s *sim.Simulator, nic *network.NIC, cfg Config, rng *sim.RNG,
	selfPos func() geom.Vec2) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Agent{
		id:        nic.ID(),
		sim:       s,
		nic:       nic,
		cfg:       cfg,
		rng:       rng,
		selfPos:   selfPos,
		neighbors: make(map[int]neighborEntry),
		pending:   make(map[pkey]*sim.Event),
		seen:      make(map[pkey]bool),
	}
	nic.Handle(network.KindHello, a.onHello)
	nic.Handle(network.KindUnicast, a.onUnicast)
	nic.Handle(network.KindAck, a.onAck)
	return a, nil
}

// OnDeliver registers the application's delivery callback.
func (a *Agent) OnDeliver(fn DeliverFunc) { a.onDeliver = fn }

// Stats returns a copy of the agent's counters.
func (a *Agent) Stats() Stats { return a.stats }

// NeighborCount returns the number of fresh neighbor entries.
func (a *Agent) NeighborCount() int {
	n := 0
	now := a.sim.Now()
	for _, e := range a.neighbors {
		if now-e.heard <= a.cfg.NeighborTTLS {
			n++
		}
	}
	return n
}

// SendHello broadcasts the robot's believed position. CoCoA calls this
// during transmit windows, when the team is awake.
func (a *Agent) SendHello() error {
	h := hello{Sender: a.id, Pos: a.selfPos()}
	if err := a.nic.Send(network.KindHello, helloBytes, h); err != nil {
		return err
	}
	a.stats.HellosSent++
	return nil
}

// Send originates a packet toward dst, believed to be at dstPos.
func (a *Agent) Send(dst int, dstPos geom.Vec2, payload any) {
	a.stats.Sent++
	a.seq++
	p := Packet{
		Src:     a.id,
		Seq:     a.seq,
		Dst:     dst,
		DstPos:  dstPos,
		TTL:     a.cfg.DefaultTTL,
		Payload: payload,
	}
	a.forward(p, 0)
}

// onHello refreshes the neighbor table.
func (a *Agent) onHello(f mac.Frame, _ float64) {
	h, ok := f.Payload.(hello)
	if !ok {
		return
	}
	a.neighbors[h.Sender] = neighborEntry{pos: h.Pos, heard: a.sim.Now()}
}

// onUnicast handles a frame addressed (at this hop) to anyone: only the
// named next hop processes it. Each accepted copy is acknowledged back to
// the transmitting hop; retransmitted duplicates are re-ACKed (the first
// ACK may have been lost) but not re-processed.
func (a *Agent) onUnicast(f mac.Frame, _ float64) {
	p, ok := f.Payload.(Packet)
	if !ok || p.NextHop != a.id {
		return
	}
	if a.cfg.MaxRetries > 0 {
		a.sendAck(p)
	}
	key := pkey{p.Src, p.Seq}
	if a.seen[key] {
		a.stats.Duplicates++
		return
	}
	a.seen[key] = true

	if p.Dst == a.id {
		a.stats.Delivered++
		if a.onDeliver != nil {
			a.onDeliver(p)
		}
		return
	}
	if p.TTL <= 0 {
		a.stats.TTLExpired++
		return
	}
	a.stats.Forwarded++
	a.forward(p, 0)
}

// sendAck acknowledges one received hop.
func (a *Agent) sendAck(p Packet) {
	if err := a.nic.Send(network.KindAck, ackBytes, ack{Src: p.Src, Seq: p.Seq, To: p.FromHop}); err == nil {
		a.stats.AcksSent++
	}
}

// onAck cancels the pending retransmission timer for the acknowledged
// packet.
func (a *Agent) onAck(f mac.Frame, _ float64) {
	k, ok := f.Payload.(ack)
	if !ok || k.To != a.id {
		return
	}
	key := pkey{k.Src, k.Seq}
	if e, pending := a.pending[key]; pending {
		a.sim.Cancel(e)
		delete(a.pending, key)
	}
}

// forward picks the next hop and transmits, with per-hop jitter to avoid
// synchronized relays. attempt counts ARQ retransmissions of this hop.
func (a *Agent) forward(p Packet, attempt int) {
	next, ok := a.nextHop(p.Dst, p.DstPos)
	if !ok {
		a.stats.NoRoute++
		return
	}
	p.FromHop = a.id
	p.NextHop = next
	if attempt == 0 {
		p.Hops++
		p.TTL--
	} else {
		a.stats.Retransmits++
	}
	delay := a.rng.Uniform(0, float64(a.cfg.ForwardJitterMaxS))
	a.sim.Schedule(delay, func() {
		_ = a.nic.Send(network.KindUnicast, headerBytes+a.cfg.PayloadBytes, p)
	})
	if a.cfg.MaxRetries == 0 {
		return
	}
	// Arm (or re-arm) the stop-and-wait timer. On expiry the whole
	// forwarding decision reruns, so a fresher neighbor may be picked.
	key := pkey{p.Src, p.Seq}
	if e, pending := a.pending[key]; pending {
		a.sim.Cancel(e)
	}
	a.pending[key] = a.sim.Schedule(delay+float64(a.cfg.AckTimeoutS), func() {
		delete(a.pending, key)
		if attempt >= a.cfg.MaxRetries {
			a.stats.DropsNoAck++
			return
		}
		retry := p
		a.forward(retry, attempt+1)
	})
}

// nextHop implements strict greedy selection over fresh neighbors: the
// destination itself wins outright; otherwise the neighbor closest to the
// destination, provided it makes strict progress over our own position.
func (a *Agent) nextHop(dst int, dstPos geom.Vec2) (int, bool) {
	now := a.sim.Now()
	bestID := -1
	bestD := a.selfPos().Dist(dstPos)
	for id, e := range a.neighbors {
		if now-e.heard > a.cfg.NeighborTTLS {
			continue
		}
		if id == dst {
			return id, true
		}
		// Ties break toward the lowest ID so runs stay deterministic
		// despite map iteration order.
		if d := e.pos.Dist(dstPos); d < bestD || (d == bestD && bestID != -1 && id < bestID) {
			bestD, bestID = d, id
		}
	}
	if bestID == -1 {
		return 0, false
	}
	return bestID, true
}
