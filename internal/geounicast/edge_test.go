package geounicast

import (
	"strings"
	"testing"

	"cocoa/internal/energy"
	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/network"
	"cocoa/internal/sim"
)

func TestValidateTable(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"default ok", DefaultConfig(), ""},
		{"zero ttl", mutate(func(c *Config) { c.NeighborTTLS = 0 }), "NeighborTTLS"},
		{"negative ttl", mutate(func(c *Config) { c.NeighborTTLS = -1 }), "NeighborTTLS"},
		{"zero hop ttl", mutate(func(c *Config) { c.DefaultTTL = 0 }), "DefaultTTL"},
		{"negative payload", mutate(func(c *Config) { c.PayloadBytes = -1 }), "payload"},
		{"negative jitter", mutate(func(c *Config) { c.ForwardJitterMaxS = -0.1 }), "jitter"},
		{"negative ack timeout", mutate(func(c *Config) { c.AckTimeoutS = -1 }), "ARQ"},
		{"negative retries", mutate(func(c *Config) { c.MaxRetries = -1 }), "ARQ"},
		{"retries without timeout", mutate(func(c *Config) { c.AckTimeoutS = 0 }), "AckTimeoutS"},
		{"no arq ok", mutate(func(c *Config) { c.MaxRetries = 0; c.AckTimeoutS = 0 }), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate() = %v, want error mentioning %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	s := sim.New()
	root := sim.NewRNG(1)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	nic := network.NewNIC(s, med, energy.DefaultParams(), 0, func() geom.Vec2 { return geom.Vec2{} })
	bad := DefaultConfig()
	bad.DefaultTTL = 0
	if _, err := New(s, nic, bad, root.Stream("uni"), func() geom.Vec2 { return geom.Vec2{} }); err == nil {
		t.Error("New accepted an invalid config")
	}
}

func TestSendHelloFailsWhilePoweredOff(t *testing.T) {
	b := newBed(t, 3, []geom.Vec2{{X: 0}, {X: 10}})
	b.agents[0].nic.PowerOff()
	if err := b.agents[0].SendHello(); err == nil {
		t.Error("SendHello succeeded on a powered-off radio")
	}
	if got := b.agents[0].Stats().HellosSent; got != 0 {
		t.Errorf("HellosSent = %d after failed send, want 0", got)
	}
}

// Handlers share the NIC dispatch table with other protocols; a frame
// whose payload is not ours must be ignored without side effects.
func TestHandlersIgnoreForeignPayloads(t *testing.T) {
	b := newBed(t, 3, []geom.Vec2{{X: 0}, {X: 10}})
	a := b.agents[0]
	for _, f := range []mac.Frame{
		{Kind: network.KindHello, Payload: "not a hello"},
		{Kind: network.KindUnicast, Payload: 42},
		{Kind: network.KindAck, Payload: struct{}{}},
	} {
		switch f.Kind {
		case network.KindHello:
			a.onHello(f, -60)
		case network.KindUnicast:
			a.onUnicast(f, -60)
		case network.KindAck:
			a.onAck(f, -60)
		}
	}
	if n := a.NeighborCount(); n != 0 {
		t.Errorf("foreign hello created %d neighbor entries", n)
	}
	if s := a.Stats(); s.Delivered != 0 || s.Duplicates != 0 {
		t.Errorf("foreign unicast moved counters: %+v", s)
	}
}

// A unicast naming a different next hop must not be accepted or ACKed.
func TestOnUnicastIgnoresOtherNextHop(t *testing.T) {
	b := newBed(t, 3, []geom.Vec2{{X: 0}, {X: 10}})
	a := b.agents[0]
	p := Packet{Src: 1, Seq: 1, Dst: a.id, NextHop: a.id + 1}
	a.onUnicast(mac.Frame{Kind: network.KindUnicast, Payload: p}, -60)
	if s := a.Stats(); s.Delivered != 0 {
		t.Errorf("packet for another hop delivered: %+v", s)
	}
}
