package geounicast

import (
	"testing"

	"cocoa/internal/energy"
	"cocoa/internal/geom"
	"cocoa/internal/mac"
	"cocoa/internal/network"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// bed wires N static agents over a short-range deterministic channel.
type bed struct {
	sim    *sim.Simulator
	agents []*Agent
}

func shortRangeModel() radio.Model {
	m := radio.DefaultModel()
	m.ShadowSigmaDB = 0.01
	m.DeepFadeProb = 0
	m.MultipathSigmaDB = 0
	m.SensitivityDBm = -75 // range ~27 m
	return m
}

func newBed(t *testing.T, seed int64, positions []geom.Vec2) *bed {
	t.Helper()
	s := sim.New()
	root := sim.NewRNG(seed)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	b := &bed{sim: s}
	for i, pos := range positions {
		pos := pos
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return pos })
		a, err := New(s, nic, DefaultConfig(), root.StreamN("uni", i),
			func() geom.Vec2 { return pos })
		if err != nil {
			t.Fatal(err)
		}
		b.agents = append(b.agents, a)
	}
	return b
}

// exchangeHellos floods neighbor tables.
func (b *bed) exchangeHellos(t *testing.T) {
	t.Helper()
	for i, a := range b.agents {
		a := a
		b.sim.Schedule(0.01*float64(i+1), func() {
			if err := a.SendHello(); err != nil {
				t.Error(err)
			}
		})
	}
	b.sim.RunUntil(1)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NeighborTTLS = 0 },
		func(c *Config) { c.DefaultTTL = 0 },
		func(c *Config) { c.PayloadBytes = -1 },
		func(c *Config) { c.ForwardJitterMaxS = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestHelloBuildsNeighborTables(t *testing.T) {
	b := newBed(t, 1, []geom.Vec2{{X: 0}, {X: 20}, {X: 40}})
	b.exchangeHellos(t)
	// Node 1 hears both ends; nodes 0 and 2 hear only node 1 (range 27 m).
	if got := b.agents[1].NeighborCount(); got != 2 {
		t.Errorf("middle node neighbors = %d, want 2", got)
	}
	if got := b.agents[0].NeighborCount(); got != 1 {
		t.Errorf("end node neighbors = %d, want 1", got)
	}
}

func TestMultiHopDelivery(t *testing.T) {
	b := newBed(t, 2, []geom.Vec2{{X: 0}, {X: 20}, {X: 40}, {X: 60}})
	b.exchangeHellos(t)

	var got []Packet
	b.agents[3].OnDeliver(func(p Packet) { got = append(got, p) })
	b.agents[0].Send(3, geom.Vec2{X: 60}, "report")
	b.sim.RunUntil(3)

	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1 (stats: %+v %+v)",
			len(got), b.agents[0].Stats(), b.agents[1].Stats())
	}
	p := got[0]
	if p.Src != 0 || p.Dst != 3 || p.Payload != "report" {
		t.Errorf("packet = %+v", p)
	}
	if p.Hops != 3 {
		t.Errorf("hops = %d, want 3", p.Hops)
	}
	if b.agents[1].Stats().Forwarded != 1 || b.agents[2].Stats().Forwarded != 1 {
		t.Error("relays did not forward exactly once each")
	}
}

func TestNonNextHopIgnores(t *testing.T) {
	b := newBed(t, 3, []geom.Vec2{{X: 0}, {X: 20}, {X: 15, Y: 10}})
	b.exchangeHellos(t)
	delivered := false
	b.agents[2].OnDeliver(func(Packet) { delivered = true })
	// 0 -> 1 directly; node 2 overhears but must not deliver or forward.
	b.agents[0].Send(1, geom.Vec2{X: 20}, "x")
	b.sim.RunUntil(2)
	if delivered {
		t.Error("bystander delivered a packet not addressed to it")
	}
	if b.agents[2].Stats().Forwarded != 0 {
		t.Error("bystander forwarded")
	}
	if b.agents[1].Stats().Delivered != 1 {
		t.Error("destination did not deliver")
	}
}

func TestNoRouteAtVoid(t *testing.T) {
	// Two disconnected clusters: sender has no neighbor with progress.
	b := newBed(t, 4, []geom.Vec2{{X: 0}, {X: 20}, {X: 500}, {X: 520}})
	b.exchangeHellos(t)
	b.agents[0].Send(3, geom.Vec2{X: 520}, "x")
	b.sim.RunUntil(2)
	// Node 1 is the only neighbor, but it makes no progress toward 520
	// versus... actually it does (20 < 0 distance-wise); the drop happens
	// at node 1, which has no forward neighbor.
	s0, s1 := b.agents[0].Stats(), b.agents[1].Stats()
	if s0.NoRoute+s1.NoRoute == 0 {
		t.Errorf("no NoRoute drop recorded: %+v %+v", s0, s1)
	}
	if b.agents[3].Stats().Delivered != 0 {
		t.Error("delivered across a partition")
	}
}

func TestTTLBoundsForwarding(t *testing.T) {
	positions := make([]geom.Vec2, 10)
	for i := range positions {
		positions[i] = geom.Vec2{X: float64(i) * 20}
	}
	s := sim.New()
	root := sim.NewRNG(5)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DefaultTTL = 3 // destination is 9 hops away
	var agents []*Agent
	for i, pos := range positions {
		pos := pos
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return pos })
		a, err := New(s, nic, cfg, root.StreamN("uni", i), func() geom.Vec2 { return pos })
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	for i, a := range agents {
		a := a
		s.Schedule(0.01*float64(i+1), func() { _ = a.SendHello() })
	}
	s.RunUntil(1)
	agents[0].Send(9, geom.Vec2{X: 180}, "x")
	s.RunUntil(5)
	if agents[9].Stats().Delivered != 0 {
		t.Error("delivered despite TTL 3 over 9 hops")
	}
	expired := 0
	for _, a := range agents {
		expired += a.Stats().TTLExpired
	}
	if expired != 1 {
		t.Errorf("TTLExpired = %d, want exactly 1", expired)
	}
}

func TestStaleNeighborsNotUsed(t *testing.T) {
	s := sim.New()
	root := sim.NewRNG(6)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NeighborTTLS = 10
	positions := []geom.Vec2{{X: 0}, {X: 20}}
	var agents []*Agent
	for i, pos := range positions {
		pos := pos
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return pos })
		a, err := New(s, nic, cfg, root.StreamN("uni", i), func() geom.Vec2 { return pos })
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	_ = agents[1].SendHello()
	s.RunUntil(1)
	if agents[0].NeighborCount() != 1 {
		t.Fatal("hello not received")
	}
	// 20 s later the entry is stale: no route.
	s.RunUntil(21)
	if agents[0].NeighborCount() != 0 {
		t.Error("stale neighbor still counted")
	}
	agents[0].Send(1, geom.Vec2{X: 20}, "x")
	s.RunUntil(25)
	if agents[0].Stats().NoRoute != 1 {
		t.Errorf("stale neighbor used for forwarding: %+v", agents[0].Stats())
	}
}

func TestDirectNeighborShortcut(t *testing.T) {
	b := newBed(t, 7, []geom.Vec2{{X: 0}, {X: 20}})
	b.exchangeHellos(t)
	delivered := 0
	b.agents[1].OnDeliver(func(Packet) { delivered++ })
	// Even if the destination's advertised coordinates are garbage, a
	// direct neighbor match must win.
	b.agents[0].Send(1, geom.Vec2{X: 9999}, "x")
	b.sim.RunUntil(2)
	if delivered != 1 {
		t.Error("direct-neighbor shortcut failed")
	}
}

// ARQ: when the next hop sleeps through the first transmission, the
// retransmission after the ACK timeout gets the packet through.
func TestARQRecoversLostHop(t *testing.T) {
	s := sim.New()
	root := sim.NewRNG(8)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	positions := []geom.Vec2{{X: 0}, {X: 20}}
	var agents []*Agent
	var nics []*network.NIC
	for i, pos := range positions {
		pos := pos
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return pos })
		a, err := New(s, nic, DefaultConfig(), root.StreamN("uni", i), func() geom.Vec2 { return pos })
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		nics = append(nics, nic)
	}
	// Build neighbor tables while both awake.
	for _, a := range agents {
		a := a
		s.Schedule(0.01, func() { _ = a.SendHello() })
	}
	s.RunUntil(1)

	// The receiver sleeps through the first copy and wakes before the
	// retransmission timeout expires.
	delivered := 0
	agents[1].OnDeliver(func(Packet) { delivered++ })
	s.Schedule(1.5, func() { nics[1].Sleep() })
	s.Schedule(2.0, func() { agents[0].Send(1, geom.Vec2{X: 20}, "x") })
	s.Schedule(2.03, func() { nics[1].Wake() })
	s.RunUntil(4)

	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 via retransmission (stats %+v)",
			delivered, agents[0].Stats())
	}
	if agents[0].Stats().Retransmits == 0 {
		t.Error("no retransmission recorded")
	}
}

// ARQ gives up after MaxRetries when the next hop never comes back.
func TestARQGivesUp(t *testing.T) {
	s := sim.New()
	root := sim.NewRNG(9)
	med, err := mac.NewMedium(s, mac.DefaultConfig(shortRangeModel()), root.Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	positions := []geom.Vec2{{X: 0}, {X: 20}}
	var agents []*Agent
	var nics []*network.NIC
	for i, pos := range positions {
		pos := pos
		nic := network.NewNIC(s, med, energy.DefaultParams(), i, func() geom.Vec2 { return pos })
		a, err := New(s, nic, DefaultConfig(), root.StreamN("uni", i), func() geom.Vec2 { return pos })
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		nics = append(nics, nic)
	}
	for _, a := range agents {
		a := a
		s.Schedule(0.01, func() { _ = a.SendHello() })
	}
	s.RunUntil(1)
	nics[1].Sleep() // gone for good
	agents[0].Send(1, geom.Vec2{X: 20}, "x")
	s.RunUntil(5)

	st := agents[0].Stats()
	if st.DropsNoAck != 1 {
		t.Errorf("DropsNoAck = %d, want 1 (stats %+v)", st.DropsNoAck, st)
	}
	if st.Retransmits != DefaultConfig().MaxRetries {
		t.Errorf("Retransmits = %d, want %d", st.Retransmits, DefaultConfig().MaxRetries)
	}
}

// Duplicate suppression: a lost ACK causes a retransmission that the
// receiver must re-ACK but not re-deliver.
func TestARQDuplicateSuppression(t *testing.T) {
	b := newBed(t, 10, []geom.Vec2{{X: 0}, {X: 20}, {X: 40}})
	b.exchangeHellos(t)
	count := 0
	b.agents[2].OnDeliver(func(Packet) { count++ })
	// Two distinct packets: each delivered exactly once even if ARQ
	// machinery retransmits internally.
	b.agents[0].Send(2, geom.Vec2{X: 40}, "a")
	b.sim.Schedule(0.5, func() { b.agents[0].Send(2, geom.Vec2{X: 40}, "b") })
	b.sim.RunUntil(3)
	if count != 2 {
		t.Fatalf("delivered %d, want 2", count)
	}
}

func TestARQDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("MaxRetries=0 must be a valid (fire-and-forget) config: %v", err)
	}
	cfg.MaxRetries = 2
	cfg.AckTimeoutS = 0
	if err := cfg.Validate(); err == nil {
		t.Error("retries without a timeout accepted")
	}
}
