package scenario

import (
	"cocoa/internal/cocoa"
	"cocoa/internal/faults"
)

// Summary is the pinned subset of cocoa.Result the golden regression
// suite compares byte-for-byte: the headline metrics each figure family
// reports, plus protocol counters sensitive to ordering bugs. Floats are
// stored at full precision — runs are bit-deterministic, so exact
// equality is the right bar. The service smoke test (cocoad -smoke)
// summarizes a result fetched over HTTP and compares it against the same
// checked-in testdata/golden_*.json files.
type Summary struct {
	MeanErrorM     float64 `json:"meanErrorM"`
	MaxAvgErrorM   float64 `json:"maxAvgErrorM"`
	FinalAvgErrorM float64 `json:"finalAvgErrorM"`
	Samples        int     `json:"samples"`

	Fixes          int `json:"fixes"`
	MissedWindows  int `json:"missedWindows"`
	BeaconsApplied int `json:"beaconsApplied"`
	SyncsReceived  int `json:"syncsReceived"`

	TotalEnergyJ   float64 `json:"totalEnergyJ"`
	NoSleepEnergyJ float64 `json:"noSleepEnergyJ"`

	MACSent         int `json:"macSent"`
	MACDelivered    int `json:"macDelivered"`
	MACCollided     int `json:"macCollided"`
	MACMissedAsleep int `json:"macMissedAsleep"`

	FaultDrops int `json:"faultDrops"`
	Crashes    int `json:"crashes"`
}

// Summarize reduces a run result to its golden Summary.
func Summarize(res *cocoa.Result) Summary {
	final := 0.0
	if n := len(res.AvgError); n > 0 {
		final = res.AvgError[n-1]
	}
	return Summary{
		MeanErrorM:      res.MeanError(),
		MaxAvgErrorM:    res.MaxAvgError(),
		FinalAvgErrorM:  final,
		Samples:         len(res.Times),
		Fixes:           res.Fixes,
		MissedWindows:   res.MissedWindows,
		BeaconsApplied:  res.BeaconsApplied,
		SyncsReceived:   res.SyncsReceived,
		TotalEnergyJ:    res.TotalEnergyJ,
		NoSleepEnergyJ:  res.NoSleepEnergyJ,
		MACSent:         res.MAC.Sent,
		MACDelivered:    res.MAC.Delivered,
		MACCollided:     res.MAC.Collided,
		MACMissedAsleep: res.MAC.MissedAsleep,
		FaultDrops:      res.FaultDrops,
		Crashes:         res.Crashes,
	}
}

// QuickFamilies returns one representative config per golden figure
// family at the quick scale (seed 1, 300 s, 12 robots) pinned by
// testdata/golden_<name>.json. The map keys are the file-name families.
func QuickFamilies() map[string]cocoa.Config {
	quick := Options{
		Seed:               1,
		DurationS:          300,
		NumRobots:          12,
		CalibrationSamples: 60000,
		GridCellM:          4,
	}
	base := func() cocoa.Config {
		cfg := cocoa.DefaultConfig()
		quick.apply(&cfg)
		return cfg
	}

	odo := base()
	odo.Mode = cocoa.ModeOdometryOnly // figure family 4/5: dead reckoning drift

	rf := base()
	rf.Mode = cocoa.ModeRFOnly // figure family 6/7/8: RF fixes alone

	combined := base() // figure family 6/7/8/10: full CoCoA

	energy := base() // figure family 9: coordination energy at T=50
	energy.BeaconPeriodS = 50

	flt := base() // rob-faults family: lossy bursty channel + crashes
	flt.Faults.GE = faults.Bursty(0.2, faults.DefaultBurstFrames)
	flt.Faults.CrashFraction = 0.2
	flt.Faults.CrashMeanDownS = 2 * float64(flt.BeaconPeriodS)

	return map[string]cocoa.Config{
		"odometry": odo,
		"rf-only":  rf,
		"cocoa":    combined,
		"energy":   energy,
		"faults":   flt,
	}
}
