package scenario

import (
	"context"
	"fmt"
	"testing"
)

func TestRegistryWellFormed(t *testing.T) {
	exps := Experiments()
	if len(exps) == 0 {
		t.Fatal("empty registry")
	}
	names := make(map[string]bool, len(exps))
	for _, d := range exps {
		if d.Name == "" || d.Flag == "" || d.Title == "" {
			t.Errorf("descriptor %+v has empty field", d)
		}
		if d.Run == nil {
			t.Errorf("descriptor %q has nil Run", d.Name)
		}
		if names[d.Name] {
			t.Errorf("duplicate experiment name %q", d.Name)
		}
		names[d.Name] = true
	}
	// The suite must cover every figure of the paper's evaluation.
	for _, want := range []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestExperimentsReturnsCopy(t *testing.T) {
	a := Experiments()
	a[0].Name = "clobbered"
	if b := Experiments(); b[0].Name == "clobbered" {
		t.Error("Experiments exposes the registry's backing array")
	}
}

// The registry's Run must execute the underlying runner; fig1 is the
// cheapest entry (calibration only, no simulation).
func TestRegistryRunFig1(t *testing.T) {
	for _, d := range Experiments() {
		if d.Name != "fig1" {
			continue
		}
		v, err := d.Run(context.Background(), Options{Seed: 7, CalibrationSamples: 60000})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := v.(*Fig1Result); !ok {
			t.Fatalf("fig1 descriptor returned %T, want *Fig1Result", v)
		}
		return
	}
	t.Fatal("fig1 not registered")
}

// Serial and parallel executions of the same seeded sweep must agree
// byte-for-byte: every run is deterministic in its Config, and the engine
// orders results by sweep index. Run under -race this also exercises the
// engine's synchronization on a real workload.
func TestSweepsDeterministicAcrossParallelism(t *testing.T) {
	serial := fastOpts()
	parallel := fastOpts()
	parallel.Parallelism = 4

	t.Run("failure-injection", func(t *testing.T) {
		s, err := RunFailureInjection(context.Background(), serial)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RunFailureInjection(context.Background(), parallel)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprintf("%#v", p), fmt.Sprintf("%#v", s); got != want {
			t.Errorf("parallel rows differ from serial:\nserial:   %s\nparallel: %s", want, got)
		}
	})

	t.Run("ablation-k", func(t *testing.T) {
		s, err := RunAblationK(context.Background(), serial)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RunAblationK(context.Background(), parallel)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprintf("%#v", p), fmt.Sprintf("%#v", s); got != want {
			t.Errorf("parallel rows differ from serial:\nserial:   %s\nparallel: %s", want, got)
		}
	})
}

// Progress must be reported once per run in monotone order even when the
// sweep itself fans out.
func TestSweepProgressCallback(t *testing.T) {
	opts := fastOpts()
	opts.Parallelism = 4
	var calls []int
	opts.Progress = func(done, total int) {
		if total != 3 {
			t.Errorf("total = %d, want 3", total)
		}
		calls = append(calls, done)
	}
	if _, err := RunFailureInjection(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 {
		t.Fatalf("progress called %d times, want 3", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress sequence %v not monotone", calls)
		}
	}
}
