package scenario

import (
	"context"
	"math"

	"cocoa/internal/cocoa"
)

// FailureRow is one failure-injection outcome: the configured number of
// equipped robots die a third of the way into the run.
type FailureRow struct {
	FailedEquipped int
	MeanBeforeM    float64
	MeanAfterM     float64
	FixRate        float64
}

// RunFailureInjection kills growing numbers of equipped robots mid-run —
// the paper's search-and-rescue setting makes anchor loss a first-class
// concern. CoCoA should degrade gracefully: survivors keep beaconing and
// accuracy settles at the level of the reduced anchor set (Figure 10's
// curve, reached dynamically).
func RunFailureInjection(ctx context.Context, opts Options) ([]FailureRow, error) {
	fracs := []float64{0, 0.4, 0.8}
	cfgs := make([]cocoa.Config, len(fracs))
	for i, frac := range fracs {
		cfg := cocoa.DefaultConfig()
		opts.apply(&cfg)
		cfg.FailEquippedCount = int(frac * float64(cfg.NumEquipped))
		cfg.FailAtS = cfg.DurationS / 3
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]FailureRow, len(results))
	for i, res := range results {
		cfg := cfgs[i]
		failAt := float64(cfg.FailAtS)
		settle := failAt + float64(cfg.BeaconPeriodS)
		var before, after float64
		nb, na := 0, 0
		for j, t := range res.Times {
			switch {
			case t < failAt:
				before += res.AvgError[j]
				nb++
			case t > settle:
				after += res.AvgError[j]
				na++
			}
		}
		row := FailureRow{FailedEquipped: cfg.FailEquippedCount, FixRate: res.FixRate()}
		if nb > 0 {
			row.MeanBeforeM = before / float64(nb)
		}
		if na > 0 {
			row.MeanAfterM = after / float64(na)
		}
		out[i] = row
	}
	return out, nil
}

// Replication holds cross-seed statistics of the headline metric,
// quantifying the run-to-run variance a single-seed figure hides.
type Replication struct {
	Seeds      int
	MeanErrorM float64 // mean of per-seed means
	StdErrorM  float64 // std of per-seed means
	MinM       float64
	MaxM       float64
}

// RunReplication repeats the default CoCoA deployment across seeds — the
// embarrassingly parallel workload the engine was built for: every seed is
// an independent run and cross-seed statistics need many of them.
func RunReplication(ctx context.Context, opts Options, seeds int) (Replication, error) {
	if seeds <= 0 {
		seeds = 5
	}
	cfgs := make([]cocoa.Config, seeds)
	for s := 0; s < seeds; s++ {
		cfg := cocoa.DefaultConfig()
		opts.apply(&cfg)
		cfg.Seed = opts.seed() + int64(s)
		cfgs[s] = cfg
	}
	// Each seed contributes one scalar, so the runs stream through the
	// full-reuse path: every Result's buffers are recycled into its
	// worker's scratch the moment the mean is extracted.
	vals := make([]float64, seeds)
	err := opts.runEach(ctx, cfgs, func(i int, res *cocoa.Result) error {
		vals[i] = res.MeanError()
		return nil
	})
	if err != nil {
		return Replication{}, err
	}
	rep := Replication{Seeds: seeds, MinM: math.Inf(1), MaxM: math.Inf(-1)}
	for _, v := range vals {
		rep.MeanErrorM += v
		rep.MinM = math.Min(rep.MinM, v)
		rep.MaxM = math.Max(rep.MaxM, v)
	}
	rep.MeanErrorM /= float64(seeds)
	var m2 float64
	for _, v := range vals {
		d := v - rep.MeanErrorM
		m2 += d * d
	}
	if seeds > 1 {
		rep.StdErrorM = math.Sqrt(m2 / float64(seeds-1))
	}
	return rep, nil
}

// TerrainRow compares smooth and rough ground for one localization mode.
type TerrainRow struct {
	Mode       string
	Amplitude  float64
	MeanErrorM float64
	FinalM     float64
}

// RunExtensionTerrain quantifies the paper's introduction claim that
// uneven surfaces exacerbate odometry error — and that CoCoA's periodic
// RF fixes neutralize it: odometry-only degrades with terrain roughness,
// CoCoA barely moves.
func RunExtensionTerrain(ctx context.Context, opts Options) ([]TerrainRow, error) {
	type point struct {
		mode cocoa.Mode
		amp  float64
	}
	var points []point
	for _, mode := range []cocoa.Mode{cocoa.ModeOdometryOnly, cocoa.ModeCombined} {
		for _, amp := range []float64{0, 3} {
			points = append(points, point{mode, amp})
		}
	}
	cfgs := make([]cocoa.Config, len(points))
	for i, p := range points {
		cfg := cocoa.DefaultConfig()
		cfg.Mode = p.mode
		cfg.TerrainAmplitude = p.amp
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]TerrainRow, len(results))
	for i, res := range results {
		out[i] = TerrainRow{
			Mode:       points[i].mode.String(),
			Amplitude:  points[i].amp,
			MeanErrorM: res.MeanError(),
			FinalM:     res.AvgError[len(res.AvgError)-1],
		}
	}
	return out, nil
}
