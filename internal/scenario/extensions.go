package scenario

import (
	"cocoa/internal/cocoa"
)

// AblationLocalizerRow compares RF estimation backends (DESIGN.md §5 and
// the paper's claim that CoCoA is not tied to one localization technique).
type AblationLocalizerRow struct {
	Backend    string
	MeanErrorM float64
	FixRate    float64
}

// RunAblationLocalizer runs the same deployment with the paper's grid
// estimator, with Monte Carlo localization, and with an EKF.
func RunAblationLocalizer(opts Options) ([]AblationLocalizerRow, error) {
	var out []AblationLocalizerRow
	for _, kind := range []cocoa.LocalizerKind{cocoa.LocalizerGrid, cocoa.LocalizerParticle, cocoa.LocalizerEKF} {
		cfg := cocoa.DefaultConfig()
		cfg.Localizer = kind
		opts.apply(&cfg)
		res, err := cocoa.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationLocalizerRow{
			Backend:    kind.String(),
			MeanErrorM: res.MeanError(),
			FixRate:    res.FixRate(),
		})
	}
	return out, nil
}

// PowerControlRow is one transmit-power outcome of the paper's future-work
// question: "how transmission power control can be used to increase the
// distance that nodes in the CoCoA architecture can cooperate".
type PowerControlRow struct {
	TxPowerDBm  float64
	MeanRangeM  float64
	MeanErrorM  float64
	FixRate     float64
	EnergyJ     float64
	BeaconsUsed int
}

// RunExtensionPowerControl sweeps the beacon transmit power in a
// coverage-limited deployment (few equipped robots), where range directly
// controls how many robots can cooperate.
func RunExtensionPowerControl(opts Options) ([]PowerControlRow, error) {
	var out []PowerControlRow
	for _, tx := range []float64{9, 12, 15, 18} {
		cfg := cocoa.DefaultConfig()
		cfg.NumEquipped = 5
		cfg.Radio.TxPowerDBm = tx
		opts.apply(&cfg)
		if opts.NumRobots > 0 {
			cfg.NumEquipped = 5 * cfg.NumRobots / 50
			if cfg.NumEquipped < 1 {
				cfg.NumEquipped = 1
			}
		}
		res, err := cocoa.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, PowerControlRow{
			TxPowerDBm:  tx,
			MeanRangeM:  cfg.Radio.MeanRange(),
			MeanErrorM:  res.MeanError(),
			FixRate:     res.FixRate(),
			EnergyJ:     res.TotalEnergyJ,
			BeaconsUsed: res.BeaconsApplied,
		})
	}
	return out, nil
}

// ClockSkewRow quantifies the value of the MRMM SYNC machinery under
// imperfect clocks.
type ClockSkewRow struct {
	DriftSigmaS float64
	SyncEnabled bool
	MeanErrorM  float64
	FixRate     float64
	MissedPkts  int
}

// RunExtensionClockSkew sweeps per-period clock drift with and without
// SYNC dissemination. Without SYNC the robots rely on a preprogrammed
// schedule, so their windows slide off the Sync robot's time base and
// beacons land on sleeping radios.
func RunExtensionClockSkew(opts Options) ([]ClockSkewRow, error) {
	var out []ClockSkewRow
	for _, drift := range []float64{0, 0.5, 1.5} {
		for _, syncOn := range []bool{true, false} {
			cfg := cocoa.DefaultConfig()
			cfg.ClockDriftSigmaS = drift
			cfg.DisableSync = !syncOn
			opts.apply(&cfg)
			res, err := cocoa.Run(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, ClockSkewRow{
				DriftSigmaS: drift,
				SyncEnabled: syncOn,
				MeanErrorM:  res.MeanError(),
				FixRate:     res.FixRate(),
				MissedPkts:  res.MAC.MissedAsleep,
			})
		}
	}
	return out, nil
}

// ReportingRow measures the controller-reporting data path at one beacon
// period: how reliably localized robots can unicast status reports to the
// Sync robot over their own CoCoA coordinates.
type ReportingRow struct {
	PeriodS      float64
	DeliveryRate float64
	MeanHops     float64
	ReportsSent  int
	MeanErrorM   float64
}

// RunExtensionReporting exercises the paper-conclusion application: with
// EnableReporting on, every localized unequipped robot sends one report
// per window toward the Sync robot by greedy geographic forwarding.
func RunExtensionReporting(opts Options) ([]ReportingRow, error) {
	var out []ReportingRow
	for _, T := range []float64{50, 100} {
		cfg := cocoa.DefaultConfig()
		cfg.EnableReporting = true
		cfg.BeaconPeriodS = T
		opts.apply(&cfg)
		res, err := cocoa.Run(cfg)
		if err != nil {
			return nil, err
		}
		row := ReportingRow{
			PeriodS:      T,
			DeliveryRate: res.ReportDeliveryRate(),
			ReportsSent:  res.ReportsSent,
			MeanErrorM:   res.MeanError(),
		}
		if res.ReportsDelivered > 0 {
			row.MeanHops = float64(res.ReportHopsTotal) / float64(res.ReportsDelivered)
		}
		out = append(out, row)
	}
	return out, nil
}
