package scenario

import (
	"context"

	"cocoa/internal/cocoa"
)

// AblationLocalizerRow compares RF estimation backends (DESIGN.md §5 and
// the paper's claim that CoCoA is not tied to one localization technique).
type AblationLocalizerRow struct {
	Backend    string
	MeanErrorM float64
	FixRate    float64
}

// RunAblationLocalizer runs the same deployment with the paper's grid
// estimator, with Monte Carlo localization, and with an EKF.
func RunAblationLocalizer(ctx context.Context, opts Options) ([]AblationLocalizerRow, error) {
	kinds := []cocoa.LocalizerKind{cocoa.LocalizerGrid, cocoa.LocalizerParticle, cocoa.LocalizerEKF}
	cfgs := make([]cocoa.Config, len(kinds))
	for i, kind := range kinds {
		cfg := cocoa.DefaultConfig()
		cfg.Localizer = kind
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]AblationLocalizerRow, len(results))
	for i, res := range results {
		out[i] = AblationLocalizerRow{
			Backend:    kinds[i].String(),
			MeanErrorM: res.MeanError(),
			FixRate:    res.FixRate(),
		}
	}
	return out, nil
}

// PowerControlRow is one transmit-power outcome of the paper's future-work
// question: "how transmission power control can be used to increase the
// distance that nodes in the CoCoA architecture can cooperate".
type PowerControlRow struct {
	TxPowerDBm  float64
	MeanRangeM  float64
	MeanErrorM  float64
	FixRate     float64
	EnergyJ     float64
	BeaconsUsed int
}

// RunExtensionPowerControl sweeps the beacon transmit power in a
// coverage-limited deployment (few equipped robots), where range directly
// controls how many robots can cooperate.
func RunExtensionPowerControl(ctx context.Context, opts Options) ([]PowerControlRow, error) {
	powers := []float64{9, 12, 15, 18}
	cfgs := make([]cocoa.Config, len(powers))
	for i, tx := range powers {
		cfg := cocoa.DefaultConfig()
		cfg.NumEquipped = 5
		cfg.Radio.TxPowerDBm = tx
		opts.apply(&cfg)
		if opts.NumRobots > 0 {
			cfg.NumEquipped = 5 * cfg.NumRobots / 50
			if cfg.NumEquipped < 1 {
				cfg.NumEquipped = 1
			}
		}
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]PowerControlRow, len(results))
	for i, res := range results {
		out[i] = PowerControlRow{
			TxPowerDBm:  powers[i],
			MeanRangeM:  cfgs[i].Radio.MeanRange(),
			MeanErrorM:  res.MeanError(),
			FixRate:     res.FixRate(),
			EnergyJ:     res.TotalEnergyJ,
			BeaconsUsed: res.BeaconsApplied,
		}
	}
	return out, nil
}

// ClockSkewRow quantifies the value of the MRMM SYNC machinery under
// imperfect clocks.
type ClockSkewRow struct {
	DriftSigmaS float64
	SyncEnabled bool
	MeanErrorM  float64
	FixRate     float64
	MissedPkts  int
}

// RunExtensionClockSkew sweeps per-period clock drift with and without
// SYNC dissemination. Without SYNC the robots rely on a preprogrammed
// schedule, so their windows slide off the Sync robot's time base and
// beacons land on sleeping radios.
func RunExtensionClockSkew(ctx context.Context, opts Options) ([]ClockSkewRow, error) {
	type point struct {
		drift  float64
		syncOn bool
	}
	var points []point
	for _, drift := range []float64{0, 0.5, 1.5} {
		for _, syncOn := range []bool{true, false} {
			points = append(points, point{drift, syncOn})
		}
	}
	cfgs := make([]cocoa.Config, len(points))
	for i, p := range points {
		cfg := cocoa.DefaultConfig()
		cfg.ClockDriftSigmaS = p.drift
		cfg.DisableSync = !p.syncOn
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]ClockSkewRow, len(results))
	for i, res := range results {
		out[i] = ClockSkewRow{
			DriftSigmaS: points[i].drift,
			SyncEnabled: points[i].syncOn,
			MeanErrorM:  res.MeanError(),
			FixRate:     res.FixRate(),
			MissedPkts:  res.MAC.MissedAsleep,
		}
	}
	return out, nil
}

// ReportingRow measures the controller-reporting data path at one beacon
// period: how reliably localized robots can unicast status reports to the
// Sync robot over their own CoCoA coordinates.
type ReportingRow struct {
	PeriodS      float64
	DeliveryRate float64
	MeanHops     float64
	ReportsSent  int
	MeanErrorM   float64
}

// RunExtensionReporting exercises the paper-conclusion application: with
// EnableReporting on, every localized unequipped robot sends one report
// per window toward the Sync robot by greedy geographic forwarding.
func RunExtensionReporting(ctx context.Context, opts Options) ([]ReportingRow, error) {
	periods := []float64{50, 100}
	cfgs := make([]cocoa.Config, len(periods))
	for i, T := range periods {
		cfg := cocoa.DefaultConfig()
		cfg.EnableReporting = true
		cfg.BeaconPeriodS = T
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]ReportingRow, len(results))
	for i, res := range results {
		row := ReportingRow{
			PeriodS:      periods[i],
			DeliveryRate: res.ReportDeliveryRate(),
			ReportsSent:  res.ReportsSent,
			MeanErrorM:   res.MeanError(),
		}
		if res.ReportsDelivered > 0 {
			row.MeanHops = float64(res.ReportHopsTotal) / float64(res.ReportsDelivered)
		}
		out[i] = row
	}
	return out, nil
}
