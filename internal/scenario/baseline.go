package scenario

import (
	"context"

	"cocoa/internal/cocoa"
	"cocoa/internal/coopos"
	"cocoa/internal/runner"
)

// BaselineRow compares localization systems on the same deployment scale.
// MobilityDutyPct is the fraction of time a robot is free to pursue its
// task: Cooperative Positioning parks half the team as landmarks at any
// moment, a cost CoCoA does not pay.
type BaselineRow struct {
	System          string
	MeanErrorM      float64
	FinalErrorM     float64
	MobilityDutyPct float64
	EquippedRobots  int
}

// RunBaselineCoopPos compares CoCoA against the Cooperative Positioning
// baseline (Kurazume et al., the paper's related-work Section 5) and the
// odometry-only floor, all at the same team size and duration. The three
// systems are independent simulations, so they run as one fan-out on the
// experiment engine — heterogeneous jobs each producing a finished row.
func RunBaselineCoopPos(ctx context.Context, opts Options) ([]BaselineRow, error) {
	// CoCoA, the paper's default setup; the other systems mirror its scale.
	cocoaCfg := cocoa.DefaultConfig()
	opts.apply(&cocoaCfg)

	jobs := []func(context.Context) (BaselineRow, error){
		func(jctx context.Context) (BaselineRow, error) {
			res, err := cocoa.RunContext(jctx, cocoaCfg)
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				System:          "cocoa",
				MeanErrorM:      res.MeanError(),
				FinalErrorM:     res.AvgError[len(res.AvgError)-1],
				MobilityDutyPct: 100,
				EquippedRobots:  cocoaCfg.NumEquipped,
			}, nil
		},
		func(jctx context.Context) (BaselineRow, error) {
			// Cooperative Positioning: no localization devices at all; half
			// the team is parked as landmarks at any instant.
			cpCfg := coopos.DefaultConfig()
			cpCfg.Seed = opts.seed()
			cpCfg.NumRobots = cocoaCfg.NumRobots
			cpCfg.VMax = cocoaCfg.VMax
			cpCfg.DurationS = cocoaCfg.DurationS
			cpCfg.GridCellM = cocoaCfg.GridCellM
			cpCfg.Calibration = cocoaCfg.Calibration
			res, err := coopos.Run(cpCfg)
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				System:          "cooperative-positioning",
				MeanErrorM:      res.MeanError(),
				FinalErrorM:     res.FinalError(),
				MobilityDutyPct: 50,
				EquippedRobots:  0,
			}, nil
		},
		func(jctx context.Context) (BaselineRow, error) {
			// Odometry-only floor.
			odoCfg := cocoa.DefaultConfig()
			odoCfg.Mode = cocoa.ModeOdometryOnly
			opts.apply(&odoCfg)
			res, err := cocoa.RunContext(jctx, odoCfg)
			if err != nil {
				return BaselineRow{}, err
			}
			return BaselineRow{
				System:          "odometry-only",
				MeanErrorM:      res.MeanError(),
				FinalErrorM:     res.AvgError[len(res.AvgError)-1],
				MobilityDutyPct: 100,
				EquippedRobots:  0,
			}, nil
		},
	}

	return runner.Map(ctx, runner.Options{
		Parallelism: opts.Parallelism,
		Progress:    opts.Progress,
	}, len(jobs), func(jctx context.Context, i int) (BaselineRow, error) {
		return jobs[i](jctx)
	})
}
