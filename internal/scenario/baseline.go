package scenario

import (
	"cocoa/internal/cocoa"
	"cocoa/internal/coopos"
)

// BaselineRow compares localization systems on the same deployment scale.
// MobilityDutyPct is the fraction of time a robot is free to pursue its
// task: Cooperative Positioning parks half the team as landmarks at any
// moment, a cost CoCoA does not pay.
type BaselineRow struct {
	System          string
	MeanErrorM      float64
	FinalErrorM     float64
	MobilityDutyPct float64
	EquippedRobots  int
}

// RunBaselineCoopPos compares CoCoA against the Cooperative Positioning
// baseline (Kurazume et al., the paper's related-work Section 5) and the
// odometry-only floor, all at the same team size and duration.
func RunBaselineCoopPos(opts Options) ([]BaselineRow, error) {
	var out []BaselineRow

	// CoCoA, the paper's default setup.
	cocoaCfg := cocoa.DefaultConfig()
	opts.apply(&cocoaCfg)
	cocoaRes, err := cocoa.Run(cocoaCfg)
	if err != nil {
		return nil, err
	}
	out = append(out, BaselineRow{
		System:          "cocoa",
		MeanErrorM:      cocoaRes.MeanError(),
		FinalErrorM:     cocoaRes.AvgError[len(cocoaRes.AvgError)-1],
		MobilityDutyPct: 100,
		EquippedRobots:  cocoaCfg.NumEquipped,
	})

	// Cooperative Positioning: no localization devices at all; half the
	// team is parked as landmarks at any instant.
	cpCfg := coopos.DefaultConfig()
	cpCfg.Seed = opts.seed()
	cpCfg.NumRobots = cocoaCfg.NumRobots
	cpCfg.VMax = cocoaCfg.VMax
	cpCfg.DurationS = cocoaCfg.DurationS
	cpCfg.GridCellM = cocoaCfg.GridCellM
	cpCfg.Calibration = cocoaCfg.Calibration
	cpRes, err := coopos.Run(cpCfg)
	if err != nil {
		return nil, err
	}
	out = append(out, BaselineRow{
		System:          "cooperative-positioning",
		MeanErrorM:      cpRes.MeanError(),
		FinalErrorM:     cpRes.FinalError(),
		MobilityDutyPct: 50,
		EquippedRobots:  0,
	})

	// Odometry-only floor.
	odoCfg := cocoa.DefaultConfig()
	odoCfg.Mode = cocoa.ModeOdometryOnly
	opts.apply(&odoCfg)
	odoRes, err := cocoa.Run(odoCfg)
	if err != nil {
		return nil, err
	}
	out = append(out, BaselineRow{
		System:          "odometry-only",
		MeanErrorM:      odoRes.MeanError(),
		FinalErrorM:     odoRes.AvgError[len(odoRes.AvgError)-1],
		MobilityDutyPct: 100,
		EquippedRobots:  0,
	})
	return out, nil
}
