package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// The Bayesian grid's incremental statistics accumulators (DESIGN.md §13)
// carry an equivalence contract with the retained eager full-scan reference:
// the two read paths agree within 1e-9 on every experiment outcome. Unlike
// the spatial index's byte-identity (the index changes nothing about the
// arithmetic), the accumulators legitimately round differently than a fresh
// scan, so the contract here is numeric closeness, not byte equality. This
// suite enforces it across the whole registry at UpdateWorkers 1 and 8;
// make check runs it under -race.

// statsEquivTol is the accumulator-vs-scan agreement bound from the
// acceptance criteria, applied relative to the value magnitude.
const statsEquivTol = 1e-9

// statsEquivOpts is the quick scale with the grid-stats read path and
// worker count pinned.
func statsEquivOpts(stats string, workers int) Options {
	return Options{
		Seed:               1,
		DurationS:          300,
		NumRobots:          12,
		CalibrationSamples: 60000,
		GridCellM:          4,
		GridStats:          stats,
		UpdateWorkers:      workers,
		Parallelism:        1,
	}
}

// numericallyClose walks two decoded JSON values in lockstep: numbers must
// agree within statsEquivTol (relative above magnitude 1), everything else
// must match exactly. The "GridStats" config field is the one key allowed
// (and required) to differ between the two runs.
func numericallyClose(path string, a, b any) error {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return fmt.Errorf("%s: shape mismatch", path)
		}
		for k, x := range av {
			if k == "GridStats" {
				continue
			}
			y, ok := bv[k]
			if !ok {
				return fmt.Errorf("%s.%s: missing in eager result", path, k)
			}
			if err := numericallyClose(path+"."+k, x, y); err != nil {
				return err
			}
		}
		return nil
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return fmt.Errorf("%s: length mismatch", path)
		}
		for i := range av {
			if err := numericallyClose(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); err != nil {
				return err
			}
		}
		return nil
	case float64:
		bvf, ok := b.(float64)
		if !ok {
			return fmt.Errorf("%s: type mismatch", path)
		}
		scale := math.Max(1, math.Max(math.Abs(av), math.Abs(bvf)))
		if d := math.Abs(av - bvf); !(d <= statsEquivTol*scale) {
			return fmt.Errorf("%s: %v vs %v differ by %v (tol %v)", path, av, bvf, d, statsEquivTol*scale)
		}
		return nil
	default:
		if a != b {
			return fmt.Errorf("%s: %v != %v", path, a, b)
		}
		return nil
	}
}

// TestGridStatsEquivalenceRegistry runs every registered experiment with
// the incremental accumulators and with the eager full-scan reference, at
// UpdateWorkers 1 and 8, and requires every numeric outcome to agree within
// 1e-9.
func TestGridStatsEquivalenceRegistry(t *testing.T) {
	for _, d := range Experiments() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				decode := func(stats string) any {
					res, err := d.Run(context.Background(), statsEquivOpts(stats, workers))
					if err != nil {
						t.Fatalf("gridstats=%s workers=%d: %v", stats, workers, err)
					}
					b, err := json.Marshal(res)
					if err != nil {
						t.Fatal(err)
					}
					var v any
					if err := json.Unmarshal(b, &v); err != nil {
						t.Fatal(err)
					}
					return v
				}
				inc := decode("incremental")
				eager := decode("eager")
				if err := numericallyClose("result", inc, eager); err != nil {
					t.Errorf("workers=%d: incremental and eager results diverge: %v", workers, err)
				}
			}
		})
	}
}
