package scenario

import (
	"context"
	"fmt"
	"math"
	"testing"

	"cocoa/internal/cocoa"
)

func TestFaultSweepShape(t *testing.T) {
	rows, err := RunFaultSweep(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := len(FaultLossRates) * len(FaultCrashFractions)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	// Row 0 is the clean cell: no fault machinery may have moved.
	r0 := rows[0]
	if r0.LossRate != 0 || r0.CrashFraction != 0 {
		t.Fatalf("first cell is not the clean one: %+v", r0)
	}
	if r0.FaultDrops != 0 || r0.Crashes != 0 {
		t.Errorf("clean cell has fault activity: %+v", r0)
	}
	for i, r := range rows {
		if math.IsNaN(r.MeanErrorM) || r.MeanErrorM <= 0 {
			t.Errorf("row %d: degenerate mean error %v", i, r.MeanErrorM)
		}
		if r.Uncovered < 0 || r.Uncovered > 1 {
			t.Errorf("row %d: uncovered %v out of [0,1]", i, r.Uncovered)
		}
	}
}

// The sweep's clean cell must be byte-identical to a plain run of the same
// scaled config: the fault layer is strictly opt-in.
func TestFaultSweepCleanCellMatchesPlainRun(t *testing.T) {
	opts := fastOpts()
	rows, err := RunFaultSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cocoa.DefaultConfig()
	opts.apply(&cfg)
	res, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MeanErrorM != res.MeanError() {
		t.Errorf("clean cell mean error %v != plain run %v", rows[0].MeanErrorM, res.MeanError())
	}
	if rows[0].FixRate != res.FixRate() {
		t.Errorf("clean cell fix rate %v != plain run %v", rows[0].FixRate, res.FixRate())
	}
}

// The acceptance property: along the loss axis (no crashes) and at the
// severest cell, degradation is monotone — more faults never help. Runs
// are pure functions of (config, seed), so exact comparisons are stable.
func TestFaultSweepMonotoneDegradation(t *testing.T) {
	rows, err := RunFaultSweep(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	byCell := map[[2]float64]FaultRow{}
	for _, r := range rows {
		byCell[[2]float64{r.LossRate, r.CrashFraction}] = r
	}
	// Loss axis, crash 0: uncovered fraction and mean error nondecreasing.
	for i := 1; i < len(FaultLossRates); i++ {
		lo := byCell[[2]float64{FaultLossRates[i-1], 0}]
		hi := byCell[[2]float64{FaultLossRates[i], 0}]
		if hi.Uncovered < lo.Uncovered {
			t.Errorf("uncovered dropped with loss %.2f -> %.2f: %v -> %v",
				lo.LossRate, hi.LossRate, lo.Uncovered, hi.Uncovered)
		}
		if hi.MeanErrorM < lo.MeanErrorM {
			t.Errorf("mean error dropped with loss %.2f -> %.2f: %v -> %v",
				lo.LossRate, hi.LossRate, lo.MeanErrorM, hi.MeanErrorM)
		}
	}
	// Crashes at fixed loss: uncovered never improves when a fifth of the
	// team goes dark.
	for _, loss := range FaultLossRates {
		clean := byCell[[2]float64{loss, 0}]
		crashed := byCell[[2]float64{loss, 0.2}]
		if crashed.Crashes == 0 {
			t.Errorf("loss %.2f: crash cell had no crashes", loss)
		}
		if crashed.Uncovered < clean.Uncovered {
			t.Errorf("loss %.2f: uncovered improved with crashes: %v -> %v",
				loss, clean.Uncovered, crashed.Uncovered)
		}
	}
	// The severest cell versus the clean one: both headline metrics worse.
	worst := byCell[[2]float64{0.5, 0.2}]
	clean := byCell[[2]float64{0, 0}]
	if worst.MeanErrorM <= clean.MeanErrorM {
		t.Errorf("severest cell error %v not above clean %v", worst.MeanErrorM, clean.MeanErrorM)
	}
	if worst.Uncovered <= clean.Uncovered {
		t.Errorf("severest cell uncovered %v not above clean %v", worst.Uncovered, clean.Uncovered)
	}
	if worst.FaultDrops == 0 {
		t.Error("severest cell dropped nothing")
	}
}

// The fault sweep must be byte-identical at any parallelism, like every
// other experiment: fault RNG streams are per-run, never shared.
func TestFaultSweepDeterministicAcrossParallelism(t *testing.T) {
	serial := fastOpts()
	parallel := fastOpts()
	parallel.Parallelism = 4

	s, err := RunFaultSweep(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunFaultSweep(context.Background(), parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", p), fmt.Sprintf("%#v", s); got != want {
		t.Errorf("parallel rows differ from serial:\nserial:   %s\nparallel: %s", want, got)
	}
}
