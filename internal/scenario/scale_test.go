package scenario

import (
	"testing"

	"cocoa/internal/cocoa"
	"cocoa/internal/telemetry"
)

func TestSwarmConfigShape(t *testing.T) {
	for _, n := range ScaleSizes {
		cfg := SwarmConfig(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("SwarmConfig(%d) invalid: %v", n, err)
		}
		if cfg.NumRobots != n || cfg.NumEquipped != max(1, n/2) {
			t.Errorf("SwarmConfig(%d): robots %d equipped %d", n, cfg.NumRobots, cfg.NumEquipped)
		}
		// Constant density: area per robot matches the paper's 50-robot
		// 200x200 baseline at every size.
		per := cfg.Area.Width() * cfg.Area.Height() / float64(n)
		if per < 799 || per > 801 {
			t.Errorf("SwarmConfig(%d): %.1f m^2 per robot, want 800", n, per)
		}
	}
}

// visitStats runs cfg with telemetry on and returns the MAC's receiver
// visits and sent-frame counters — both sim-deterministic.
func visitStats(t *testing.T, cfg cocoa.Config) (visits, sent int64) {
	t.Helper()
	wasEnabled := telemetry.Default.Enabled()
	defer telemetry.Default.SetEnabled(wasEnabled)
	telemetry.Default.SetEnabled(true)
	before := telemetry.Default.Snapshot()
	if _, err := cocoa.Run(cfg); err != nil {
		t.Fatal(err)
	}
	d := telemetry.Diff(before, telemetry.Default.Snapshot())
	for _, c := range d.Counters {
		switch c.Name {
		case "mac.receiver_visits":
			visits = c.Value
		case "mac.sent":
			sent = c.Value
		}
	}
	if sent == 0 {
		t.Fatal("run sent no frames")
	}
	return visits, sent
}

// TestIndexPruningFactor is the structural counterpart of BenchmarkSwarm:
// independent of wall clock, the grid must visit at least 5x fewer
// receivers per transmitted frame than the O(n) scan at swarm scale. The
// counters are sim-deterministic, so this is a hard floor, not a timing
// flake.
func TestIndexPruningFactor(t *testing.T) {
	base := SwarmConfig(1000)
	base.DurationS = 40
	base.Calibration.Samples = 60000

	run := func(index string) float64 {
		cfg := base
		cfg.NeighborIndex = index
		visits, sent := visitStats(t, cfg)
		return float64(visits) / float64(sent)
	}
	grid, scan := run("grid"), run("scan")
	t.Logf("visits per frame: grid %.1f, scan %.1f (%.1fx)", grid, scan, scan/grid)
	if scan < 5*grid {
		t.Errorf("grid visits %.1f receivers per frame, scan %.1f: pruning factor %.2f < 5",
			grid, scan, scan/grid)
	}
}

// TestCrashedSwarmVisitsDrop is the Medium.Detach regression test: before
// the crash path detached stations, powered-off robots stayed in the scan
// order and were visited on every frame forever. With half the team
// crashed permanently mid-run, the per-frame visit count must drop well
// below the healthy baseline — under both index settings.
func TestCrashedSwarmVisitsDrop(t *testing.T) {
	for _, index := range []string{"grid", "scan"} {
		t.Run(index, func(t *testing.T) {
			base := QuickFamilies()["cocoa"]
			base.NeighborIndex = index

			perFrame := func(crash float64) float64 {
				cfg := base
				cfg.Faults.CrashFraction = crash
				cfg.Faults.CrashMeanDownS = 0 // crashed robots never recover
				visits, sent := visitStats(t, cfg)
				return float64(visits) / float64(sent)
			}
			healthy := perFrame(0)
			crashed := perFrame(0.5)
			t.Logf("visits per frame: healthy %.1f, half-crashed %.1f", healthy, crashed)
			// Crash times are uniform over the middle of the run, so the
			// run-wide average lands well under the healthy rate but above
			// the fully compacted one (~0.86x here). Without Detach the
			// ratio is exactly 1.0 — every powered-off radio would still be
			// scanned every frame — so 0.93 separates the two cleanly.
			if crashed > 0.93*healthy {
				t.Errorf("half-crashed swarm still visits %.1f receivers per frame (healthy %.1f): Detach compaction not effective",
					crashed, healthy)
			}
		})
	}
}
