package scenario

import (
	"context"

	"cocoa/internal/cocoa"
	"cocoa/internal/faults"
)

// The robustness sweep stresses CoCoA with the unreliable regimes the
// paper's evaluation leaves out: bursty link loss (Gilbert–Elliott) and
// robot crash/recovery outages, crossed into a grid. The expected shape is
// graceful degradation — mean error and the uncovered-robot fraction rise
// with fault intensity, but every run completes and no metric collapses.

// FaultLossRates is the sweep's Gilbert–Elliott steady-state loss axis.
var FaultLossRates = []float64{0, 0.25, 0.5}

// FaultCrashFractions is the sweep's crashed-team-fraction axis.
var FaultCrashFractions = []float64{0, 0.2}

// FaultRow is one (loss rate, crash fraction) cell of the sweep.
type FaultRow struct {
	LossRate      float64
	CrashFraction float64
	MeanErrorM    float64
	MaxAvgErrorM  float64
	Uncovered     float64 // fraction of (robot, window) opportunities without a fix
	FixRate       float64
	FaultDrops    int
	Crashes       int
	NeverFixed    int
}

// RunFaultSweep crosses burst-loss rates with crash fractions on the
// default CoCoA deployment. Crashed robots stay down for about two beacon
// periods (exponentially distributed), so they miss windows and rejoin —
// the recovery path is exercised, not just the outage.
func RunFaultSweep(ctx context.Context, opts Options) ([]FaultRow, error) {
	type cell struct{ loss, crash float64 }
	var cells []cell
	for _, crash := range FaultCrashFractions {
		for _, loss := range FaultLossRates {
			cells = append(cells, cell{loss, crash})
		}
	}
	cfgs := make([]cocoa.Config, len(cells))
	for i, c := range cells {
		cfg := cocoa.DefaultConfig()
		opts.apply(&cfg)
		cfg.Faults.GE = faults.Bursty(c.loss, faults.DefaultBurstFrames)
		cfg.Faults.CrashFraction = c.crash
		cfg.Faults.CrashMeanDownS = 2 * float64(cfg.BeaconPeriodS)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]FaultRow, len(results))
	for i, res := range results {
		out[i] = FaultRow{
			LossRate:      cells[i].loss,
			CrashFraction: cells[i].crash,
			MeanErrorM:    res.MeanError(),
			MaxAvgErrorM:  res.MaxAvgError(),
			Uncovered:     res.UncoveredFraction(),
			FixRate:       res.FixRate(),
			FaultDrops:    res.FaultDrops,
			Crashes:       res.Crashes,
			NeverFixed:    res.NeverFixed,
		}
	}
	return out, nil
}
