package scenario

import (
	"context"
	"testing"
)

func TestAblationLocalizer(t *testing.T) {
	rows, err := RunAblationLocalizer(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].Backend != "grid" || rows[1].Backend != "particle" || rows[2].Backend != "ekf" {
		t.Fatalf("backends = %+v", rows)
	}
	for _, r := range rows {
		if r.MeanErrorM <= 0 || r.FixRate <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	// Same beacons, same regime: backends within a factor of each other
	// plus slack for the small test scale.
	if rows[1].MeanErrorM > 3*rows[0].MeanErrorM+10 {
		t.Errorf("particle %.1f m wildly above grid %.1f m",
			rows[1].MeanErrorM, rows[0].MeanErrorM)
	}
}

func TestExtensionPowerControl(t *testing.T) {
	rows, err := RunExtensionPowerControl(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	// Higher power means longer range, monotonic by construction.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanRangeM <= rows[i-1].MeanRangeM {
			t.Errorf("range not increasing with power: %+v", rows)
		}
	}
	// More power lets more beacons reach receivers.
	if rows[3].BeaconsUsed <= rows[0].BeaconsUsed {
		t.Errorf("18 dBm applied %d beacons, 9 dBm %d; want more with more power",
			rows[3].BeaconsUsed, rows[0].BeaconsUsed)
	}
}

func TestExtensionClockSkew(t *testing.T) {
	rows, err := RunExtensionClockSkew(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	byKey := map[[2]interface{}]ClockSkewRow{}
	for _, r := range rows {
		byKey[[2]interface{}{r.DriftSigmaS, r.SyncEnabled}] = r
	}
	// With zero drift, sync on/off must both work.
	if byKey[[2]interface{}{0.0, false}].FixRate < 0.9 {
		t.Errorf("zero drift without sync broke: %+v", byKey[[2]interface{}{0.0, false}])
	}
	// Under heavy drift, SYNC must outperform the preprogrammed schedule.
	withSync := byKey[[2]interface{}{1.5, true}]
	without := byKey[[2]interface{}{1.5, false}]
	if withSync.FixRate < without.FixRate {
		t.Errorf("SYNC did not help under drift: with=%.2f without=%.2f",
			withSync.FixRate, without.FixRate)
	}
}

func TestBaselineCoopPos(t *testing.T) {
	rows, err := RunBaselineCoopPos(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.System] = r
		if r.MeanErrorM <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	cp := byName["cooperative-positioning"]
	if cp.MobilityDutyPct != 50 || cp.EquippedRobots != 0 {
		t.Errorf("CP row misdescribed: %+v", cp)
	}
	if byName["cocoa"].EquippedRobots == 0 {
		t.Error("CoCoA row lost its equipped count")
	}
}

func TestFailureInjection(t *testing.T) {
	rows, err := RunFailureInjection(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].FailedEquipped != 0 {
		t.Fatalf("first row must be the no-failure control: %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FailedEquipped <= rows[i-1].FailedEquipped {
			t.Fatalf("failure sweep not increasing: %+v", rows)
		}
	}
	// Heavy anchor loss must cost accuracy relative to its own pre-failure
	// phase or the control run; and must never crash.
	heavy := rows[2]
	control := rows[0]
	if heavy.MeanAfterM+1 < heavy.MeanBeforeM && heavy.MeanAfterM+1 < control.MeanAfterM {
		t.Errorf("losing %d anchors improved accuracy: %+v", heavy.FailedEquipped, heavy)
	}
}

func TestReplication(t *testing.T) {
	rep, err := RunReplication(context.Background(), fastOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeds != 3 {
		t.Errorf("Seeds = %d", rep.Seeds)
	}
	if rep.MeanErrorM <= 0 || rep.StdErrorM < 0 {
		t.Errorf("degenerate replication %+v", rep)
	}
	if rep.MinM > rep.MeanErrorM || rep.MaxM < rep.MeanErrorM {
		t.Errorf("ordering broken: %+v", rep)
	}
	if rep.MinM == rep.MaxM {
		t.Error("different seeds produced identical results")
	}
}

func TestReplicationDefaultSeeds(t *testing.T) {
	opts := fastOpts()
	opts.DurationS = 60
	rep, err := RunReplication(context.Background(), opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeds != 5 {
		t.Errorf("default seeds = %d, want 5", rep.Seeds)
	}
}

func TestExtensionReporting(t *testing.T) {
	rows, err := RunExtensionReporting(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.ReportsSent == 0 {
			t.Errorf("T=%v: no reports sent", r.PeriodS)
		}
		if r.DeliveryRate < 0.3 {
			t.Errorf("T=%v: delivery rate %.2f implausibly low", r.PeriodS, r.DeliveryRate)
		}
	}
}

func TestExtensionTerrain(t *testing.T) {
	opts := fastOpts()
	opts.DurationS = 400
	rows, err := RunExtensionTerrain(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	byKey := map[[2]interface{}]TerrainRow{}
	for _, r := range rows {
		byKey[[2]interface{}{r.Mode, r.Amplitude}] = r
	}
	odoSmooth := byKey[[2]interface{}{"odometry-only", 0.0}]
	odoRough := byKey[[2]interface{}{"odometry-only", 3.0}]
	if odoRough.MeanErrorM <= odoSmooth.MeanErrorM {
		t.Errorf("rough terrain did not hurt odometry: smooth %.1f, rough %.1f",
			odoSmooth.MeanErrorM, odoRough.MeanErrorM)
	}
	cocoaRough := byKey[[2]interface{}{"cocoa", 3.0}]
	if cocoaRough.MeanErrorM >= odoRough.MeanErrorM {
		t.Errorf("CoCoA on rough terrain (%.1f) not better than odometry (%.1f)",
			cocoaRough.MeanErrorM, odoRough.MeanErrorM)
	}
}
