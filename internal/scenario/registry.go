package scenario

import "context"

// The experiment registry is the single place a new experiment plugs into:
// one Descriptor entry makes it reachable from cmd/cocoaexp (dispatch,
// -fig selection, section ordering) and from library users iterating
// Experiments(). Renderers stay with their callers; the registry owns the
// name, the grouping, the section title, and the runner itself.

// Descriptor describes one registered experiment runner.
type Descriptor struct {
	// Name uniquely identifies the experiment (e.g. "fig9",
	// "ablation-k"); callers key renderers by it.
	Name string
	// Flag is the CLI selector group: several experiments can share one
	// (all four ablations answer to -fig ablations).
	Flag string
	// Title is the human-readable section header.
	Title string
	// Run executes the experiment. The concrete result type is the one the
	// underlying Run* function returns (e.g. []Fig9Row for "fig9");
	// callers type-assert when rendering. Canceling ctx aborts queued and
	// in-flight simulation runs; a nil ctx means context.Background().
	Run func(ctx context.Context, opts Options) (any, error)
}

// Experiments returns every registered experiment in presentation order
// (the order cocoaexp prints the full suite in). The returned slice is a
// copy; callers may reorder or filter it freely.
func Experiments() []Descriptor {
	return append([]Descriptor(nil), registry...)
}

// replicationSeeds is the default cross-seed replication width, matching
// the repetition count credible multi-run averages need at reasonable cost.
const replicationSeeds = 5

var registry = []Descriptor{
	{
		Name: "fig1", Flag: "1",
		Title: "Figure 1 — RSSI -> distance PDFs from calibration",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig1(ctx, o) },
	},
	{
		Name: "fig4", Flag: "4",
		Title: "Figure 4 — localization error over time, odometry only",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig4(ctx, o) },
	},
	{
		Name: "fig5", Flag: "5",
		Title: "Figure 5 — an example of odometry error (one robot)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig5(ctx, o) },
	},
	{
		Name: "fig6", Flag: "6",
		Title: "Figure 6 — RF localization only, beacon-period sweep",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig6(ctx, o) },
	},
	{
		Name: "fig7", Flag: "7",
		Title: "Figure 7 — CoCoA vs odometry-only vs RF-only (T = 100 s)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig7(ctx, o) },
	},
	{
		Name: "fig8", Flag: "8",
		Title: "Figure 8 — error CDF at three time instances (T = 100 s)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig8(ctx, o) },
	},
	{
		Name: "fig9", Flag: "9",
		Title: "Figure 9 — impact of beacon period T on error and energy",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig9(ctx, o) },
	},
	{
		Name: "fig10", Flag: "10",
		Title: "Figure 10 — impact of the number of localization devices",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFig10(ctx, o) },
	},
	{
		Name: "ext-secondary", Flag: "ext",
		Title: "Extension — secondary beacons from localized unequipped robots",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunExtensionSecondary(ctx, o) },
	},
	{
		Name: "ext-power", Flag: "power",
		Title: "Extension — transmit power control (future work, Sec. 6)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunExtensionPowerControl(ctx, o) },
	},
	{
		Name: "ext-skew", Flag: "skew",
		Title: "Extension — clock drift vs SYNC (why coordination needs MRMM)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunExtensionClockSkew(ctx, o) },
	},
	{
		Name: "ext-terrain", Flag: "terrain",
		Title: "Extension — uneven terrain (paper introduction)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunExtensionTerrain(ctx, o) },
	},
	{
		Name: "ext-reports", Flag: "reports",
		Title: "Extension — status reports to the controller (geographic unicast)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunExtensionReporting(ctx, o) },
	},
	{
		Name: "rob-failures", Flag: "failures",
		Title: "Robustness — equipped-robot failures mid-run",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFailureInjection(ctx, o) },
	},
	{
		Name: "rob-replication", Flag: "failures",
		Title: "Robustness — cross-seed replication of the headline metric",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunReplication(ctx, o, replicationSeeds) },
	},
	{
		Name: "rob-faults", Flag: "faults",
		Title: "Robustness — graceful degradation under injected faults (loss x crashes)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunFaultSweep(ctx, o) },
	},
	{
		Name: "scale", Flag: "scale",
		Title: "Scale — swarm sweep at constant density (spatial MAC index)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunScale(ctx, o) },
	},
	{
		Name: "baseline", Flag: "baseline",
		Title: "Baseline — CoCoA vs Cooperative Positioning (Kurazume et al.)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunBaselineCoopPos(ctx, o) },
	},
	{
		Name: "ablation-pruning", Flag: "ablations",
		Title: "Ablation — MRMM mesh pruning vs plain ODMRP",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunAblationPruning(ctx, o) },
	},
	{
		Name: "ablation-k", Flag: "ablations",
		Title: "Ablation — beacon redundancy k",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunAblationK(ctx, o) },
	},
	{
		Name: "ablation-grid", Flag: "ablations",
		Title: "Ablation — Bayesian grid resolution",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunAblationGrid(ctx, o) },
	},
	{
		Name: "ablation-localizer", Flag: "ablations",
		Title: "Ablation — localization backend (grid vs Monte Carlo)",
		Run:   func(ctx context.Context, o Options) (any, error) { return RunAblationLocalizer(ctx, o) },
	},
}
