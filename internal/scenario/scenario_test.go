package scenario

import (
	"context"
	"math"
	"testing"
)

// fastOpts shrinks every scenario to test scale.
func fastOpts() Options {
	return Options{
		Seed:               7,
		DurationS:          240,
		NumRobots:          12,
		CalibrationSamples: 60000,
		GridCellM:          4,
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Label: "x", Times: []float64{0, 1, 2, 3}, Values: []float64{1, 2, 3, 10}}
	if got := s.Mean(); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Max(); got != 10 {
		t.Errorf("Max = %v", got)
	}
	if got := (Series{}).Mean(); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	neg := Series{Times: []float64{0, 1}, Values: []float64{-5, -2}}
	if got := neg.Max(); got != -2 {
		t.Errorf("all-negative Max = %v, want -2", got)
	}
	if got := (Series{}).Max(); got != 0 {
		t.Errorf("empty Max = %v", got)
	}
	if got := SteadyStateMean(s, 2); got != 6.5 {
		t.Errorf("SteadyStateMean = %v", got)
	}
	if got := SteadyStateMean(s, 99); got != 0 {
		t.Errorf("SteadyStateMean beyond data = %v", got)
	}
	sum := SummarizeTail(s, 1)
	if sum.N != 3 || sum.Max != 10 {
		t.Errorf("SummarizeTail = %+v", sum)
	}
}

// Figure 1: the strong-RSSI PDF must be Gaussian, the weak one must not
// be, and PDF means must order by distance.
func TestFig1(t *testing.T) {
	res, err := RunFig1(context.Background(), Options{Seed: 7, CalibrationSamples: 120000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Strong.IsGaussian {
		t.Error("-52 dBm PDF not Gaussian (paper Fig 1a)")
	}
	if res.Weak.IsGaussian {
		t.Error("-86 dBm PDF Gaussian (paper Fig 1b says non-Gaussian)")
	}
	if res.Strong.MeanDist >= res.Weak.MeanDist {
		t.Errorf("mean distances out of order: strong %.1f, weak %.1f",
			res.Strong.MeanDist, res.Weak.MeanDist)
	}
	if len(res.Strong.Dists) == 0 || len(res.Strong.Dists) != len(res.Strong.Densities) {
		t.Error("strong curve malformed")
	}
	// Densities are non-negative and integrate to roughly one.
	for _, curve := range []PDFCurve{res.Strong, res.Weak} {
		var integral float64
		for i, d := range curve.Densities {
			if d < 0 {
				t.Fatalf("negative density in %v dBm curve", curve.RSSIDBm)
			}
			if i > 0 {
				integral += d * (curve.Dists[i] - curve.Dists[i-1])
			}
		}
		if math.Abs(integral-1) > 0.1 {
			t.Errorf("%v dBm PDF integral = %v", curve.RSSIDBm, integral)
		}
	}
}

// Figure 4: odometry error grows over time for both speeds.
func TestFig4(t *testing.T) {
	series, err := RunFig4(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want 2 curves, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Times) == 0 {
			t.Fatalf("%s: empty curve", s.Label)
		}
		early := s.Values[len(s.Values)/10]
		late := s.Values[len(s.Values)-1]
		if late <= early {
			t.Errorf("%s: odometry error did not grow (%.2f -> %.2f)", s.Label, early, late)
		}
	}
}

// Figure 5: the estimated path diverges from the true path.
func TestFig5(t *testing.T) {
	res, err := RunFig5(context.Background(), Options{Seed: 7, DurationS: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.True) != len(res.Estimated) {
		t.Fatalf("path lengths differ: %d vs %d", len(res.True), len(res.Estimated))
	}
	if res.True[0] != res.Estimated[0] {
		t.Error("paths must start together (initial position provided)")
	}
	if res.FinalGapM <= 0 {
		t.Errorf("FinalGapM = %v, want positive drift", res.FinalGapM)
	}
}

// Figure 6: RF-only error for each T; larger T must not be more accurate
// than the smallest T in steady state (staleness grows with T).
func TestFig6(t *testing.T) {
	series, err := RunFig6(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(BeaconPeriods) {
		t.Fatalf("want %d curves, got %d", len(BeaconPeriods), len(series))
	}
	for _, s := range series {
		if SteadyStateMean(s, 60) > 90 {
			t.Errorf("%s: RF-only steady error %.1f m implausibly high", s.Label,
				SteadyStateMean(s, 60))
		}
	}
}

// Figure 7: CoCoA must beat RF-only in steady state for both speeds.
func TestFig7(t *testing.T) {
	results, err := RunFig7(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want 2 speeds, got %d", len(results))
	}
	for _, r := range results {
		warm := 120.0
		cocoaM := SteadyStateMean(r.CoCoA, warm)
		rfM := SteadyStateMean(r.RFOnly, warm)
		if cocoaM >= rfM {
			t.Errorf("vmax=%.1f: CoCoA %.1f m not better than RF-only %.1f m",
				r.VMax, cocoaM, rfM)
		}
	}
}

// Figure 8: three snapshots; localization is best right after the transmit
// window.
func TestFig8(t *testing.T) {
	snaps, err := RunFig8(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("want 3 snapshots, got %d", len(snaps))
	}
	for _, s := range snaps {
		if len(s.Errors) == 0 || len(s.Errors) != len(s.Probs) {
			t.Fatalf("%s: malformed CDF", s.Label)
		}
		if s.Probs[len(s.Probs)-1] != 1 {
			t.Errorf("%s: CDF does not reach 1", s.Label)
		}
	}
	afterWindow := snaps[1].P90
	beforeWindow := snaps[0].P90
	if afterWindow > beforeWindow+10 {
		t.Errorf("P90 after window (%.1f) much worse than before (%.1f)",
			afterWindow, beforeWindow)
	}
}

// Figure 9: energy savings must grow with T and stay above ~2x; error must
// stay bounded.
func TestFig9(t *testing.T) {
	rows, err := RunFig9(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BeaconPeriods) {
		t.Fatalf("want %d rows, got %d", len(BeaconPeriods), len(rows))
	}
	for i, row := range rows {
		if row.SavingsRatio <= 1 {
			t.Errorf("T=%v: savings %.2f <= 1", row.PeriodS, row.SavingsRatio)
		}
		if i > 0 && row.SavingsRatio <= rows[i-1].SavingsRatio {
			t.Errorf("savings not increasing in T: %v", rows)
		}
		if row.CoordEnergyJ >= row.NoCoordEnergyJ {
			t.Errorf("T=%v: coordination did not save energy", row.PeriodS)
		}
	}
	// The paper's qualitative claim: larger T costs accuracy eventually;
	// T=300 must be worse than T=50 in steady state.
	t50 := SteadyStateMean(rows[1].ErrorSeries, 60)
	t300 := SteadyStateMean(rows[3].ErrorSeries, 60)
	if t300 < t50 {
		t.Logf("note: T=300 steady error %.1f below T=50 %.1f (short run)", t300, t50)
	}
}

// Figure 10: more equipped robots must not hurt accuracy much; the fix
// rate must not decrease with more devices.
func TestFig10(t *testing.T) {
	rows, err := RunFig10(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(EquippedCounts) {
		t.Fatalf("want %d rows, got %d", len(EquippedCounts), len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Equipped <= first.Equipped {
		t.Fatalf("sweep not increasing: %+v", rows)
	}
	if last.MeanErrorM > first.MeanErrorM+5 {
		t.Errorf("more devices made error much worse: %+v", rows)
	}
}

func TestExtensionSecondary(t *testing.T) {
	rows, err := RunExtensionSecondary(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.BaselineMeanM <= 0 || r.SecondaryMeanM <= 0 {
			t.Errorf("degenerate means: %+v", r)
		}
		if r.ExtraBeaconsOnAir <= 0 {
			t.Errorf("secondary beaconing added no traffic: %+v", r)
		}
	}
}

func TestAblationPruning(t *testing.T) {
	rows, err := RunAblationPruning(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !rows[0].Pruning || rows[1].Pruning {
		t.Fatalf("rows malformed: %+v", rows)
	}
	for _, r := range rows {
		if r.SyncsReceived == 0 {
			t.Errorf("pruning=%v: SYNC never delivered", r.Pruning)
		}
	}
}

func TestAblationK(t *testing.T) {
	rows, err := RunAblationK(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].K != 1 || rows[2].K != 5 {
		t.Fatalf("k sweep wrong: %+v", rows)
	}
	if rows[2].BeaconsSent <= rows[0].BeaconsSent {
		t.Error("k=5 did not send more beacons than k=1")
	}
}

func TestAblationGrid(t *testing.T) {
	rows, err := RunAblationGrid(context.Background(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	if rows[0].WallSenseN <= rows[3].WallSenseN {
		t.Error("finer grid must have more cells")
	}
	// Coarsest grid (8 m cells) should not beat the finest by a lot.
	if rows[3].MeanErrorM+6 < rows[0].MeanErrorM {
		t.Errorf("8 m grid much better than 1 m grid: %+v", rows)
	}
}
