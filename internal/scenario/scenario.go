// Package scenario reproduces every figure of the paper's evaluation
// (Section 4). Each RunFigN function runs the exact workload the paper
// describes and returns the series/statistics the corresponding figure
// plots; cmd/cocoaexp renders them and EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// All runners accept Options so benchmarks can run shortened versions; the
// zero Options value reproduces the paper's full-scale setup (50 robots,
// 40000 m^2, 30 minutes). Every runner is context-first: canceling the
// context aborts queued and in-flight simulation runs. The context only
// gates execution — it never feeds the simulation, so results stay
// byte-identical whether a run raced a live deadline or none at all.
package scenario

import (
	"context"
	"fmt"
	"log/slog"

	"cocoa/internal/caltable"
	"cocoa/internal/cocoa"
	"cocoa/internal/geom"
	"cocoa/internal/metrics"
	"cocoa/internal/mobility"
	"cocoa/internal/obs"
	"cocoa/internal/odometry"
	"cocoa/internal/radio"
	"cocoa/internal/runner"
	"cocoa/internal/sim"
)

// Options scales a scenario without changing its structure.
type Options struct {
	// Seed for the whole experiment; 0 means 1.
	Seed int64
	// DurationS overrides the paper's 1800 s run length; 0 keeps it.
	DurationS sim.Time
	// NumRobots overrides the paper's 50-robot team; 0 keeps it. The
	// equipped count scales proportionally where a figure doesn't sweep it.
	NumRobots int
	// CalibrationSamples overrides the Monte-Carlo calibration effort.
	CalibrationSamples int
	// GridCellM overrides the Bayesian grid resolution.
	GridCellM float64

	// NeighborIndex overrides the MAC's receiver-candidate strategy for
	// every run of the experiment: "" keeps the config default (the spatial
	// grid), "grid" forces it, "scan" forces the O(n) reference path.
	// Either setting yields byte-identical results (DESIGN.md §12); the
	// differential-equivalence suite runs the whole registry under both.
	NeighborIndex string
	// UpdateWorkers overrides the per-run localizer worker pool; 0 keeps
	// the config default (GOMAXPROCS), 1 forces serial application.
	UpdateWorkers int
	// GridStats overrides the Bayesian grid's statistics read path for
	// every run of the experiment: "" keeps the config default (the
	// incremental accumulators), "incremental" forces it, "eager" forces
	// the full-scan reference. The two paths agree within 1e-9 (DESIGN.md
	// §13); the grid-stats equivalence suite runs the registry under both.
	GridStats string

	// Parallelism caps how many of an experiment's independent simulation
	// runs execute concurrently. Every run is seed-deterministic and
	// results are ordered by sweep index, so any value produces
	// byte-identical output; 0 or 1 preserves the historical serial
	// execution exactly.
	Parallelism int
	// Progress, when non-nil, is invoked after each completed run of the
	// current experiment with (done, total). Invocations are serialized.
	Progress func(done, total int)
	// Gauge, when non-nil, receives the experiment's live position with no
	// callback: completed runs via SetRun and the executing run's sampling
	// tick via the simulation loop (see obs.Progress). Write-only and
	// lock-free — it cannot perturb results.
	Gauge *obs.Progress
	// Logger, when non-nil, receives the engine's per-failure debug
	// records (runner.Options.Logger).
	Logger *slog.Logger

	// CheckpointDir, when non-empty, makes every simulation run of the
	// experiment persist resumable snapshots beneath it, one run-<index>/
	// subdirectory per sweep run (see cocoa.CheckpointSpec). Operational
	// only: results stay byte-identical with or without it.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in sampling ticks for
	// CheckpointDir; <= 0 means cocoa.DefaultCheckpointEveryTicks.
	CheckpointEvery int
}

// runAll executes prepared sweep configs on the experiment engine,
// returning results in config order. Cancellation of ctx aborts queued and
// in-flight runs; a nil ctx means context.Background().
func (o Options) runAll(ctx context.Context, cfgs []cocoa.Config) ([]*cocoa.Result, error) {
	return runner.Runs(ctx, runner.Options{
		Parallelism:     o.Parallelism,
		Progress:        o.Progress,
		Gauge:           o.Gauge,
		Logger:          o.Logger,
		CheckpointDir:   o.CheckpointDir,
		CheckpointEvery: o.CheckpointEvery,
	}, cfgs)
}

// runEach executes prepared sweep configs like runAll but streams each
// result to fn and recycles its buffers afterwards (runner.RunsEach): the
// full memory-reuse path for experiments that keep one scalar per run
// rather than the run's whole time series. fn may run concurrently up to
// the parallelism cap; distinct calls always carry distinct indices.
func (o Options) runEach(ctx context.Context, cfgs []cocoa.Config, fn func(i int, res *cocoa.Result) error) error {
	return runner.RunsEach(ctx, runner.Options{
		Parallelism:     o.Parallelism,
		Progress:        o.Progress,
		Gauge:           o.Gauge,
		Logger:          o.Logger,
		CheckpointDir:   o.CheckpointDir,
		CheckpointEvery: o.CheckpointEvery,
	}, cfgs, fn)
}

// ctxErr is the early-exit cancellation check for runners whose work does
// not pass through runAll (pure computation, calibration lookups).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// apply rescales a paper-default config.
func (o Options) apply(cfg *cocoa.Config) {
	cfg.Seed = o.seed()
	if o.DurationS > 0 {
		cfg.DurationS = o.DurationS
	}
	if o.NumRobots > 0 {
		ratio := float64(cfg.NumEquipped) / float64(cfg.NumRobots)
		cfg.NumRobots = o.NumRobots
		cfg.NumEquipped = int(ratio*float64(o.NumRobots) + 0.5)
		if cfg.NumEquipped < 1 {
			cfg.NumEquipped = 1
		}
	}
	if o.CalibrationSamples > 0 {
		cfg.Calibration.Samples = o.CalibrationSamples
	}
	if o.GridCellM > 0 {
		cfg.GridCellM = o.GridCellM
	}
	if o.NeighborIndex != "" {
		cfg.NeighborIndex = o.NeighborIndex
	}
	if o.UpdateWorkers > 0 {
		cfg.UpdateWorkers = o.UpdateWorkers
	}
	if o.GridStats != "" {
		cfg.GridStats = o.GridStats
	}
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Times  []float64
	Values []float64
}

// Mean returns the curve's time-averaged value.
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the curve's maximum value, or 0 for an empty curve.
func (s Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// seriesFrom converts a run result into a labeled curve.
func seriesFrom(label string, res *cocoa.Result) Series {
	return Series{Label: label, Times: res.Times, Values: res.AvgError}
}

// ---------------------------------------------------------------------------
// Figure 1 — calibration PDFs
// ---------------------------------------------------------------------------

// PDFCurve samples a calibrated distance PDF for plotting.
type PDFCurve struct {
	RSSIDBm    float64
	IsGaussian bool
	MeanDist   float64
	Dists      []float64
	Densities  []float64
}

// Fig1Result reproduces Figure 1: the distance PDF at a strong RSSI
// (Gaussian regime) and at a weak one (multipath regime).
type Fig1Result struct {
	Strong PDFCurve // paper: -52 dBm, Gaussian
	Weak   PDFCurve // paper: -86 dBm, non-Gaussian
}

// RunFig1 performs the offline calibration and extracts the two PDFs the
// paper plots.
func RunFig1(ctx context.Context, opts Options) (*Fig1Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	model := radio.DefaultModel()
	calOpts := caltable.DefaultOptions()
	if opts.CalibrationSamples > 0 {
		calOpts.Samples = opts.CalibrationSamples
	}
	table, err := caltable.Shared(model, calOpts, opts.seed())
	if err != nil {
		return nil, err
	}
	strong, err := sampleCurve(table, -52)
	if err != nil {
		return nil, err
	}
	weak, err := sampleCurve(table, -86)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{Strong: *strong, Weak: *weak}, nil
}

func sampleCurve(table *caltable.Table, rssi float64) (*PDFCurve, error) {
	pdf, ok := table.Lookup(rssi)
	if !ok {
		return nil, fmt.Errorf("scenario: RSSI %v dBm not calibrated", rssi)
	}
	c := &PDFCurve{RSSIDBm: rssi, IsGaussian: pdf.IsGaussian(), MeanDist: pdf.Mean()}
	for d := 0.0; d <= table.MaxDist(); d += 0.5 {
		c.Dists = append(c.Dists, d)
		c.Densities = append(c.Densities, pdf.Density(d))
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — localization error over time using only odometry
// ---------------------------------------------------------------------------

// RunFig4 reproduces Figure 4: odometry-only average error over time for
// maximum speeds 0.5 and 2.0 m/s.
func RunFig4(ctx context.Context, opts Options) ([]Series, error) {
	speeds := []float64{0.5, 2.0}
	cfgs := make([]cocoa.Config, len(speeds))
	for i, vmax := range speeds {
		cfg := cocoa.DefaultConfig()
		cfg.Mode = cocoa.ModeOdometryOnly
		cfg.VMax = vmax
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Series, len(results))
	for i, res := range results {
		out[i] = seriesFrom(fmt.Sprintf("vmax=%.1fm/s", speeds[i]), res)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 5 — an example of odometry error
// ---------------------------------------------------------------------------

// Fig5Result is a single robot's true and odometry-estimated paths.
type Fig5Result struct {
	True      []geom.Vec2
	Estimated []geom.Vec2
	FinalGapM float64
}

// RunFig5 reproduces Figure 5's illustration: one robot's real path versus
// the path its odometer believes it followed.
func RunFig5(ctx context.Context, opts Options) (*Fig5Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	root := sim.NewRNG(opts.seed())
	dur := 600.0
	if opts.DurationS > 0 {
		dur = float64(opts.DurationS)
	}
	way, err := mobility.NewWaypoint(mobility.DefaultConfig(2.0), root.Stream("mobility"))
	if err != nil {
		return nil, err
	}
	start := way.Position(0)
	reck, err := odometry.NewDeadReckoner(odometry.DefaultConfig(), root.Stream("odometry"), start)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{True: []geom.Vec2{start}, Estimated: []geom.Vec2{start}}
	prev := start
	for now := 1.0; now <= dur; now++ {
		cur := way.Position(now)
		reck.Step(cur.Sub(prev), 1)
		prev = cur
		res.True = append(res.True, cur)
		res.Estimated = append(res.Estimated, reck.Estimate())
	}
	res.FinalGapM = prev.Dist(reck.Estimate())
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 6 — RF localization alone, beacon-period sweep
// ---------------------------------------------------------------------------

// BeaconPeriods is the paper's T sweep (Figures 6 and 9).
var BeaconPeriods = []sim.Time{10, 50, 100, 300}

// RunFig6 reproduces Figure 6: RF-only localization error over time for
// each beacon period T.
func RunFig6(ctx context.Context, opts Options) ([]Series, error) {
	cfgs := make([]cocoa.Config, len(BeaconPeriods))
	for i, T := range BeaconPeriods {
		cfg := cocoa.DefaultConfig()
		cfg.Mode = cocoa.ModeRFOnly
		cfg.BeaconPeriodS = T
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Series, len(results))
	for i, res := range results {
		out[i] = seriesFrom(fmt.Sprintf("T=%.0fs", BeaconPeriods[i]), res)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 7 — CoCoA vs odometry-only vs RF-only
// ---------------------------------------------------------------------------

// Fig7Result compares the three approaches at T = 100 s for one speed.
type Fig7Result struct {
	VMax     float64
	Odometry Series
	RFOnly   Series
	CoCoA    Series
}

// RunFig7 reproduces Figures 7(a) and 7(b): the three approaches at the
// paper's two maximum speeds.
func RunFig7(ctx context.Context, opts Options) ([]Fig7Result, error) {
	speeds := []float64{0.5, 2.0}
	modes := []cocoa.Mode{cocoa.ModeOdometryOnly, cocoa.ModeRFOnly, cocoa.ModeCombined}
	var cfgs []cocoa.Config
	for _, vmax := range speeds {
		for _, mode := range modes {
			cfg := cocoa.DefaultConfig()
			cfg.Mode = mode
			cfg.VMax = vmax
			cfg.BeaconPeriodS = 100
			opts.apply(&cfg)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Result, len(speeds))
	for i, vmax := range speeds {
		r := Fig7Result{VMax: vmax}
		for j, mode := range modes {
			s := seriesFrom(mode.String(), results[i*len(modes)+j])
			switch mode {
			case cocoa.ModeOdometryOnly:
				r.Odometry = s
			case cocoa.ModeRFOnly:
				r.RFOnly = s
			default:
				r.CoCoA = s
			}
		}
		out[i] = r
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 8 — CDF of the localization error at three time instances
// ---------------------------------------------------------------------------

// CDFSnapshot is the error CDF at one instant.
type CDFSnapshot struct {
	Label  string
	TimeS  float64
	Errors []float64
	Probs  []float64
	P90    float64
}

// RunFig8 reproduces Figure 8: CoCoA error CDFs (T = 100 s) at the end of
// a beacon period, right after a transmit period, and mid-sleep.
func RunFig8(ctx context.Context, opts Options) ([]CDFSnapshot, error) {
	cfg := cocoa.DefaultConfig()
	cfg.BeaconPeriodS = 100
	opts.apply(&cfg)
	results, err := opts.runAll(ctx, []cocoa.Config{cfg})
	if err != nil {
		return nil, err
	}
	res := results[0]
	// Pick a window boundary w in the back half of the run, mirroring the
	// paper's choice of t=804s for a 1800s run (w=800, after the window
	// at 800..803).
	T := float64(cfg.BeaconPeriodS)
	tw := float64(cfg.TransmitPeriodS)
	w := T * float64(int(float64(cfg.DurationS)*0.45/T))
	if w < T {
		w = T
	}
	instants := []struct {
		label string
		at    float64
	}{
		{"end of beacon period", w - 1},
		{"end of transmit period", w + tw + 1},
		{"mid sleep (T/2 later)", w + tw + T/2},
	}
	var out []CDFSnapshot
	for _, inst := range instants {
		cdf, err := res.ErrorCDFAt(inst.at)
		if err != nil {
			return nil, err
		}
		xs, ps := cdf.Points()
		out = append(out, CDFSnapshot{
			Label:  inst.label,
			TimeS:  inst.at,
			Errors: xs,
			Probs:  ps,
			P90:    cdf.Quantile(0.9),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — impact of beacon period on error and energy
// ---------------------------------------------------------------------------

// Fig9Row is one beacon period's error and energy outcome.
type Fig9Row struct {
	PeriodS          float64
	ErrorSeries      Series
	MeanErrorM       float64
	MaxAvgErrorM     float64
	CoordEnergyJ     float64
	NoCoordEnergyJ   float64
	SavingsRatio     float64
	FixRate          float64
	MissedAsleepPkts int
}

// RunFig9 reproduces Figures 9(a) and 9(b): CoCoA error over time and team
// energy with/without coordination across the T sweep.
func RunFig9(ctx context.Context, opts Options) ([]Fig9Row, error) {
	cfgs := make([]cocoa.Config, len(BeaconPeriods))
	for i, T := range BeaconPeriods {
		cfg := cocoa.DefaultConfig()
		cfg.BeaconPeriodS = T
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Fig9Row, len(results))
	for i, res := range results {
		T := BeaconPeriods[i]
		out[i] = Fig9Row{
			PeriodS:          float64(T),
			ErrorSeries:      seriesFrom(fmt.Sprintf("T=%.0fs", T), res),
			MeanErrorM:       res.MeanError(),
			MaxAvgErrorM:     res.MaxAvgError(),
			CoordEnergyJ:     res.TotalEnergyJ,
			NoCoordEnergyJ:   res.NoSleepEnergyJ,
			SavingsRatio:     res.EnergySavings(),
			FixRate:          res.FixRate(),
			MissedAsleepPkts: res.MAC.MissedAsleep,
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — impact of the number of localization devices
// ---------------------------------------------------------------------------

// EquippedCounts is the paper's device sweep.
var EquippedCounts = []int{5, 15, 25, 35}

// Fig10Row is one equipped-count outcome.
type Fig10Row struct {
	Equipped     int
	MeanErrorM   float64
	MaxAvgErrorM float64
	FixRate      float64
	P90ErrorM    float64
}

// RunFig10 reproduces Figure 10: CoCoA localization error as the number of
// equipped robots varies, T = 100 s.
func RunFig10(ctx context.Context, opts Options) ([]Fig10Row, error) {
	cfgs := make([]cocoa.Config, len(EquippedCounts))
	for i, n := range EquippedCounts {
		cfg := cocoa.DefaultConfig()
		cfg.BeaconPeriodS = 100
		cfg.NumEquipped = n
		opts.apply(&cfg)
		if opts.NumRobots > 0 {
			// Preserve the sweep's absolute counts when the team shrinks:
			// scale the equipped count by the same ratio.
			cfg.NumEquipped = n * cfg.NumRobots / 50
			if cfg.NumEquipped < 1 {
				cfg.NumEquipped = 1
			}
		}
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]Fig10Row, len(results))
	for i, res := range results {
		var p90 float64
		if cdf, err := res.ErrorCDFAt(float64(cfgs[i].DurationS) * 0.9); err == nil {
			p90 = cdf.Quantile(0.9)
		}
		out[i] = Fig10Row{
			Equipped:     cfgs[i].NumEquipped,
			MeanErrorM:   res.MeanError(),
			MaxAvgErrorM: res.MaxAvgError(),
			FixRate:      res.FixRate(),
			P90ErrorM:    p90,
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Extensions and ablations (DESIGN.md Section 5)
// ---------------------------------------------------------------------------

// ExtensionRow compares CoCoA with and without the future-work secondary
// beaconing, at a given equipped count.
type ExtensionRow struct {
	Equipped          int
	BaselineMeanM     float64
	SecondaryMeanM    float64
	BaselineFixRate   float64
	SecondaryFixRate  float64
	ExtraBeaconsOnAir int
}

// RunExtensionSecondary evaluates the paper's Section 6 idea: localized
// unequipped robots also beacon. The interesting regime is few equipped
// robots, where coverage gaps make extra (noisier) anchors worthwhile.
func RunExtensionSecondary(ctx context.Context, opts Options) ([]ExtensionRow, error) {
	counts := []int{5, 15}
	var cfgs []cocoa.Config
	for _, n := range counts {
		for _, secondary := range []bool{false, true} {
			cfg := cocoa.DefaultConfig()
			cfg.BeaconPeriodS = 100
			cfg.NumEquipped = n
			cfg.SecondaryBeacons = secondary
			opts.apply(&cfg)
			if opts.NumRobots > 0 {
				cfg.NumEquipped = n * cfg.NumRobots / 50
				if cfg.NumEquipped < 1 {
					cfg.NumEquipped = 1
				}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]ExtensionRow, len(counts))
	for i := range counts {
		base, sec := results[2*i], results[2*i+1]
		out[i] = ExtensionRow{
			Equipped:          cfgs[2*i].NumEquipped,
			BaselineMeanM:     base.MeanError(),
			SecondaryMeanM:    sec.MeanError(),
			BaselineFixRate:   base.FixRate(),
			SecondaryFixRate:  sec.FixRate(),
			ExtraBeaconsOnAir: sec.MAC.Sent - base.MAC.Sent,
		}
	}
	return out, nil
}

// AblationPruningRow compares MRMM pruning against plain ODMRP.
type AblationPruningRow struct {
	Pruning       bool
	DataSent      int
	DataDelivered int
	QueriesSent   int
	Forwarders    int
	SyncsReceived int
	MeanErrorM    float64
}

// RunAblationPruning measures SYNC dissemination cost with MRMM's
// mobility-aware pruning versus plain ODMRP upstream selection.
func RunAblationPruning(ctx context.Context, opts Options) ([]AblationPruningRow, error) {
	variants := []bool{true, false}
	cfgs := make([]cocoa.Config, len(variants))
	for i, pruning := range variants {
		cfg := cocoa.DefaultConfig()
		cfg.MRMMPruning = pruning
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]AblationPruningRow, len(results))
	for i, res := range results {
		out[i] = AblationPruningRow{
			Pruning:       variants[i],
			DataSent:      res.MRMM.DataSent,
			DataDelivered: res.MRMM.DataDelivered,
			QueriesSent:   res.MRMM.QueriesSent,
			Forwarders:    res.MRMM.BecameForwarder,
			SyncsReceived: res.SyncsReceived,
			MeanErrorM:    res.MeanError(),
		}
	}
	return out, nil
}

// AblationKRow measures the beacon-redundancy tradeoff.
type AblationKRow struct {
	K            int
	MeanErrorM   float64
	FixRate      float64
	CoordEnergyJ float64
	BeaconsSent  int
}

// RunAblationK sweeps the per-window beacon count k in {1, 3, 5}: the
// paper fixes k=3 "for reliability"; this quantifies the choice.
func RunAblationK(ctx context.Context, opts Options) ([]AblationKRow, error) {
	ks := []int{1, 3, 5}
	cfgs := make([]cocoa.Config, len(ks))
	for i, k := range ks {
		cfg := cocoa.DefaultConfig()
		cfg.BeaconsPerWindow = k
		opts.apply(&cfg)
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]AblationKRow, len(results))
	for i, res := range results {
		out[i] = AblationKRow{
			K:            ks[i],
			MeanErrorM:   res.MeanError(),
			FixRate:      res.FixRate(),
			CoordEnergyJ: res.TotalEnergyJ,
			BeaconsSent:  res.MAC.Sent,
		}
	}
	return out, nil
}

// AblationGridRow measures the grid-resolution accuracy/cost tradeoff.
type AblationGridRow struct {
	CellM      float64
	MeanErrorM float64
	WallSenseN int // grid cells, a proxy for per-beacon CPU cost
}

// RunAblationGrid sweeps the Bayesian grid resolution.
func RunAblationGrid(ctx context.Context, opts Options) ([]AblationGridRow, error) {
	cells := []float64{1, 2, 4, 8}
	cfgs := make([]cocoa.Config, len(cells))
	for i, cell := range cells {
		cfg := cocoa.DefaultConfig()
		opts.apply(&cfg)
		cfg.GridCellM = cell // opts may override; the sweep wins
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]AblationGridRow, len(results))
	for i, res := range results {
		nx := int(cfgs[i].Area.Width() / cells[i])
		ny := int(cfgs[i].Area.Height() / cells[i])
		out[i] = AblationGridRow{
			CellM:      cells[i],
			MeanErrorM: res.MeanError(),
			WallSenseN: nx * ny,
		}
	}
	return out, nil
}

// SteadyStateMean averages a curve past the warm-up prefix (the first
// beacon period), isolating the paper's "average error over time" from the
// cold-start transient.
func SteadyStateMean(s Series, warmupS float64) float64 {
	var sum float64
	n := 0
	for i, t := range s.Times {
		if t >= warmupS {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SummarizeTail returns summary statistics of a curve past warmupS.
func SummarizeTail(s Series, warmupS float64) metrics.Summary {
	var tail []float64
	for i, t := range s.Times {
		if t >= warmupS {
			tail = append(tail, s.Values[i])
		}
	}
	return metrics.Summarize(tail)
}
