package scenario

import (
	"bytes"
	"testing"

	"cocoa/internal/cocoa"
	"cocoa/internal/obs"
)

// Every golden figure family must export a trace that survives the strict
// decoder: balanced begin/end spans, known phases, sane timestamps — the
// file a user hands to Perfetto is well-formed by construction.
func TestGoldenFamiliesTraceRoundTrip(t *testing.T) {
	for name, cfg := range QuickFamilies() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.Trace = obs.NewTrace()
			if _, err := cocoa.Run(cfg); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := cfg.Trace.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			events, err := obs.ReadTrace(&buf)
			if err != nil {
				t.Fatalf("trace fails the strict decoder: %v", err)
			}
			// Every family runs the sim loop; the run span must be there,
			// and all RF families must show windows and belief updates.
			names := map[string]int{}
			for _, ev := range events {
				names[ev.Name]++
			}
			if names["run"] == 0 {
				t.Error("no run span recorded")
			}
			if cfg.Mode != cocoa.ModeOdometryOnly {
				if names["sampling-window"] == 0 {
					t.Error("no sampling-window spans recorded")
				}
				if names["mac-frame"] == 0 {
					t.Error("no mac-frame events recorded")
				}
				if names["belief-update"] == 0 {
					t.Error("no belief-update events recorded")
				}
			}
		})
	}
}
