package scenario

import (
	"context"
	"math"

	"cocoa/internal/cocoa"
	"cocoa/internal/geom"
)

// The scale experiment stresses the dimension the paper's evaluation holds
// fixed: team size. CoCoA's per-frame MAC cost is the quantity that decides
// whether the architecture survives a swarm — every beacon historically
// visited all n-1 other radios, so a 1000-robot team paid 40x the paper's
// per-frame cost at 20x the team. The spatial neighbor index (DESIGN.md
// §12) bounds that visit set by the local neighborhood; this sweep measures
// localization quality staying flat while the swarm grows at constant
// density, and doubles as the workload BenchmarkSwarm* times.

// ScaleSizes is the swept team sizes, from the paper's 50-robot scale to a
// swarm.
var ScaleSizes = []int{25, 100, 250, 1000}

// SwarmConfig builds a constant-density deployment of n robots: the area
// grows with the team (the paper's 50 robots in 200 m x 200 m fixes the
// density), transmit power drops to -10 dBm so a swarm has a genuinely
// local neighborhood instead of one shared channel, and the EKF backend
// keeps per-beacon localization cost independent of the area (the Bayesian
// grid's cost grows with it). Half the team is equipped, as in the paper.
func SwarmConfig(n int) cocoa.Config {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = n
	cfg.NumEquipped = n / 2
	if cfg.NumEquipped < 1 {
		cfg.NumEquipped = 1
	}
	side := 200 * math.Sqrt(float64(n)/50)
	cfg.Area = geom.Square(side)
	cfg.Radio.TxPowerDBm = -10
	cfg.Localizer = cocoa.LocalizerEKF
	// Short, beacon-dense runs: the sweep measures MAC behavior at scale,
	// not long-horizon drift, and T=20 keeps radio traffic the dominant
	// cost at every size.
	cfg.DurationS = 120
	cfg.BeaconPeriodS = 20
	return cfg
}

// ScaleRow is one team size's outcome. Every field is simulation-
// deterministic (no wall-clock measurements), so the row is byte-identical
// across hosts, worker counts, and neighbor-index settings.
type ScaleRow struct {
	Robots         int
	Equipped       int
	AreaSideM      float64
	MeanErrorM     float64
	FinalErrorM    float64
	FixRate        float64
	BeaconsApplied int
	MACSent        int
	MACDelivered   int
	MACBelowSense  int
}

// RunScale sweeps SwarmConfig over ScaleSizes. Options.NumRobots, when
// set, caps the sweep (sizes above it are dropped) rather than rescaling
// each deployment — a size IS the variable here.
func RunScale(ctx context.Context, opts Options) ([]ScaleRow, error) {
	sizes := ScaleSizes
	if opts.NumRobots > 0 {
		sizes = nil
		for _, n := range ScaleSizes {
			if n <= opts.NumRobots {
				sizes = append(sizes, n)
			}
		}
		if len(sizes) == 0 {
			sizes = []int{opts.NumRobots}
		}
	}
	cfgs := make([]cocoa.Config, len(sizes))
	for i, n := range sizes {
		cfg := SwarmConfig(n)
		cfg.Seed = opts.seed()
		if opts.DurationS > 0 {
			cfg.DurationS = opts.DurationS
		}
		if opts.CalibrationSamples > 0 {
			cfg.Calibration.Samples = opts.CalibrationSamples
		}
		if opts.NeighborIndex != "" {
			cfg.NeighborIndex = opts.NeighborIndex
		}
		if opts.UpdateWorkers > 0 {
			cfg.UpdateWorkers = opts.UpdateWorkers
		}
		if opts.GridStats != "" {
			cfg.GridStats = opts.GridStats
		}
		cfgs[i] = cfg
	}
	results, err := opts.runAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]ScaleRow, len(results))
	for i, res := range results {
		final := 0.0
		if n := len(res.AvgError); n > 0 {
			final = res.AvgError[n-1]
		}
		out[i] = ScaleRow{
			Robots:         cfgs[i].NumRobots,
			Equipped:       cfgs[i].NumEquipped,
			AreaSideM:      cfgs[i].Area.Width(),
			MeanErrorM:     res.MeanError(),
			FinalErrorM:    final,
			FixRate:        res.FixRate(),
			BeaconsApplied: res.BeaconsApplied,
			MACSent:        res.MAC.Sent,
			MACDelivered:   res.MAC.Delivered,
			MACBelowSense:  res.MAC.BelowSense,
		}
	}
	return out, nil
}
