package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cocoa/internal/cocoa"
	"cocoa/internal/faults"
)

// The golden mini-suite pins one quick-scale replication per figure
// family. Every run is seed-deterministic, so the summaries must match
// the checked-in files byte for byte — any drift in the simulation,
// MAC, localization, or energy model shows up here as a diff against
// testdata/golden_<family>.json. Regenerate deliberately with
//
//	go test ./internal/scenario/ -run TestGolden -update

var update = flag.Bool("update", false, "rewrite the golden files in testdata/")

// goldenSummary is the pinned subset of cocoa.Result: the headline
// metrics each figure family reports, plus protocol counters sensitive
// to ordering bugs. Floats are stored at full precision — the runs are
// bit-deterministic, so exact equality is the right bar.
type goldenSummary struct {
	MeanErrorM     float64 `json:"meanErrorM"`
	MaxAvgErrorM   float64 `json:"maxAvgErrorM"`
	FinalAvgErrorM float64 `json:"finalAvgErrorM"`
	Samples        int     `json:"samples"`

	Fixes          int `json:"fixes"`
	MissedWindows  int `json:"missedWindows"`
	BeaconsApplied int `json:"beaconsApplied"`
	SyncsReceived  int `json:"syncsReceived"`

	TotalEnergyJ   float64 `json:"totalEnergyJ"`
	NoSleepEnergyJ float64 `json:"noSleepEnergyJ"`

	MACSent         int `json:"macSent"`
	MACDelivered    int `json:"macDelivered"`
	MACCollided     int `json:"macCollided"`
	MACMissedAsleep int `json:"macMissedAsleep"`

	FaultDrops int `json:"faultDrops"`
	Crashes    int `json:"crashes"`
}

func summarize(res *cocoa.Result) goldenSummary {
	final := 0.0
	if n := len(res.AvgError); n > 0 {
		final = res.AvgError[n-1]
	}
	return goldenSummary{
		MeanErrorM:      res.MeanError(),
		MaxAvgErrorM:    res.MaxAvgError(),
		FinalAvgErrorM:  final,
		Samples:         len(res.Times),
		Fixes:           res.Fixes,
		MissedWindows:   res.MissedWindows,
		BeaconsApplied:  res.BeaconsApplied,
		SyncsReceived:   res.SyncsReceived,
		TotalEnergyJ:    res.TotalEnergyJ,
		NoSleepEnergyJ:  res.NoSleepEnergyJ,
		MACSent:         res.MAC.Sent,
		MACDelivered:    res.MAC.Delivered,
		MACCollided:     res.MAC.Collided,
		MACMissedAsleep: res.MAC.MissedAsleep,
		FaultDrops:      res.FaultDrops,
		Crashes:         res.Crashes,
	}
}

// goldenFamilies builds one representative config per figure family at
// the quick scale (seed 1, 300 s, 12 robots) used across the suite.
func goldenFamilies() map[string]cocoa.Config {
	quick := Options{
		Seed:               1,
		DurationS:          300,
		NumRobots:          12,
		CalibrationSamples: 60000,
		GridCellM:          4,
	}
	base := func() cocoa.Config {
		cfg := cocoa.DefaultConfig()
		quick.apply(&cfg)
		return cfg
	}

	odo := base()
	odo.Mode = cocoa.ModeOdometryOnly // figure family 4/5: dead reckoning drift

	rf := base()
	rf.Mode = cocoa.ModeRFOnly // figure family 6/7/8: RF fixes alone

	combined := base() // figure family 6/7/8/10: full CoCoA

	energy := base() // figure family 9: coordination energy at T=50
	energy.BeaconPeriodS = 50

	flt := base() // rob-faults family: lossy bursty channel + crashes
	flt.Faults.GE = faults.Bursty(0.2, faults.DefaultBurstFrames)
	flt.Faults.CrashFraction = 0.2
	flt.Faults.CrashMeanDownS = 2 * float64(flt.BeaconPeriodS)

	return map[string]cocoa.Config{
		"odometry": odo,
		"rf-only":  rf,
		"cocoa":    combined,
		"energy":   energy,
		"faults":   flt,
	}
}

func TestGoldenRegression(t *testing.T) {
	for family, cfg := range goldenFamilies() {
		t.Run(family, func(t *testing.T) {
			res, err := cocoa.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden_"+family+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s drifted from golden file %s\ngot:\n%swant:\n%s",
					family, path, got, want)
			}
		})
	}
}
