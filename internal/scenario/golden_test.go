package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cocoa/internal/cocoa"
)

// The golden mini-suite pins one quick-scale replication per figure
// family. Every run is seed-deterministic, so the summaries must match
// the checked-in files byte for byte — any drift in the simulation,
// MAC, localization, or energy model shows up here as a diff against
// testdata/golden_<family>.json. Regenerate deliberately with
//
//	go test ./internal/scenario/ -run TestGolden -update

var update = flag.Bool("update", false, "rewrite the golden files in testdata/")

func TestGoldenRegression(t *testing.T) {
	for family, cfg := range QuickFamilies() {
		t.Run(family, func(t *testing.T) {
			res, err := cocoa.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(Summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden_"+family+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s drifted from golden file %s\ngot:\n%swant:\n%s",
					family, path, got, want)
			}
		})
	}
}
