package scenario

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"cocoa/internal/cocoa"
	"cocoa/internal/telemetry"
)

// The spatial neighbor index (DESIGN.md §12) is a performance device with a
// byte-identity contract: every experiment must produce the exact same
// bytes whether the MAC finds receivers through the grid or the O(n)
// reference scan, at any localizer worker count. This suite is the
// contract's enforcement — it runs the whole registry under both settings
// and fails on the first differing byte. make check runs it under -race,
// which additionally exercises the index against concurrent grid workers.

// equivOpts is the quick scale with index and worker count pinned.
func equivOpts(index string, workers int) Options {
	return Options{
		Seed:               1,
		DurationS:          300,
		NumRobots:          12,
		CalibrationSamples: 60000,
		GridCellM:          4,
		NeighborIndex:      index,
		UpdateWorkers:      workers,
		Parallelism:        1,
	}
}

// TestIndexEquivalenceRegistry runs every registered experiment with the
// grid index and with the reference scan, at UpdateWorkers 1 and 8, and
// requires byte-identical JSON-marshaled results.
func TestIndexEquivalenceRegistry(t *testing.T) {
	for _, d := range Experiments() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				marshal := func(index string) string {
					res, err := d.Run(context.Background(), equivOpts(index, workers))
					if err != nil {
						t.Fatalf("index=%s workers=%d: %v", index, workers, err)
					}
					b, err := json.Marshal(res)
					if err != nil {
						t.Fatal(err)
					}
					return string(b)
				}
				grid := marshal("grid")
				scan := marshal("scan")
				if grid != scan {
					t.Errorf("workers=%d: grid and scan results differ\ngrid: %.400s\nscan: %.400s",
						workers, grid, scan)
				}
			}
		})
	}
}

// volatileCounter reports instruments that legitimately differ between the
// two index settings or across scheduling: the index's own instruments,
// per-receiver visit counts (pruning is the index's whole point), frame
// pool hit rates (sync.Pool is GC-scheduling dependent), and process-level
// runner/arena bookkeeping. Everything else is simulation-deterministic
// and must match exactly.
func volatileCounter(name string) bool {
	for _, prefix := range []string{"mac.index_", "mac.pool_", "runner.", "serve."} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return name == "mac.receiver_visits" || name == "sim.arena_chunks"
}

// TestIndexEquivalenceTelemetry compares full telemetry snapshots of a
// fault-injected run (crashes exercise Detach/re-Attach compaction) under
// both index settings: every sim-deterministic counter must agree.
func TestIndexEquivalenceTelemetry(t *testing.T) {
	wasEnabled := telemetry.Default.Enabled()
	defer telemetry.Default.SetEnabled(wasEnabled)
	telemetry.Default.SetEnabled(true)

	snap := func(index string) map[string]int64 {
		cfg := QuickFamilies()["faults"]
		cfg.NeighborIndex = index
		before := telemetry.Default.Snapshot()
		if _, err := cocoa.Run(cfg); err != nil {
			t.Fatalf("index=%s: %v", index, err)
		}
		d := telemetry.Diff(before, telemetry.Default.Snapshot())
		out := map[string]int64{}
		for _, c := range d.Counters {
			if !volatileCounter(c.Name) {
				out[c.Name] = c.Value
			}
		}
		return out
	}

	grid := snap("grid")
	scan := snap("scan")
	if !reflect.DeepEqual(grid, scan) {
		for name, v := range grid {
			if scan[name] != v {
				t.Errorf("counter %s: grid=%d scan=%d", name, v, scan[name])
			}
		}
		for name, v := range scan {
			if _, ok := grid[name]; !ok {
				t.Errorf("counter %s: grid=absent scan=%d", name, v)
			}
		}
	}
}

// TestIndexEquivalenceHighCrash is the adversarial compaction case: half
// the team crashing and recovering churns Detach/re-Attach constantly, the
// regime where a stale grid bucket or a mis-ordered re-insertion would
// surface. The full Result must still be byte-identical.
func TestIndexEquivalenceHighCrash(t *testing.T) {
	run := func(index string) string {
		cfg := QuickFamilies()["faults"]
		cfg.Faults.CrashFraction = 0.5
		cfg.Faults.CrashMeanDownS = float64(cfg.BeaconPeriodS)
		cfg.NeighborIndex = index
		res, err := cocoa.Run(cfg)
		if err != nil {
			t.Fatalf("index=%s: %v", index, err)
		}
		// The Result embeds its Config; the index selector is the one field
		// allowed (and required) to differ between the two runs.
		res.Config.NeighborIndex = ""
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if grid, scan := run("grid"), run("scan"); grid != scan {
		t.Error("high-crash run differs between grid and scan")
	}
}
