// Package telemetry is the runtime observability layer of the CoCoA stack:
// a process-wide registry of named counters, gauges, fixed-bucket
// histograms, and spans that the simulation engine, the MAC, the NIC/fault
// layer, the Bayesian localizer, and the experiment runner all report into.
//
// Design constraints, in priority order:
//
//  1. Zero behavioral coupling. Telemetry only ever *records*; nothing in
//     the stack reads a telemetry value to make a decision, so simulation
//     results are byte-identical with telemetry enabled or disabled, at any
//     parallelism (an equivalence test in internal/cocoa pins this).
//  2. No-op when disabled. The registry starts disabled; every record
//     operation first loads one shared atomic flag and returns. Experiment
//     sweeps that never ask for telemetry pay one predictable branch per
//     instrumented site.
//  3. Allocation-free when enabled. Record operations are plain atomic
//     adds (CAS loops for float accumulators); no maps, no interface
//     boxing, no closures on the hot path. Benchmarks in this package
//     enforce 0 allocs/op for every instrument.
//
// Instruments are registered once (package-level vars in the instrumented
// packages, resolved against Default at init) and then shared by every
// concurrent run in the process: a parallel sweep aggregates into the same
// counters a serial one does. Snapshot returns a stable, name-sorted view
// suitable for JSON serialization, expvar publication, and delta tables.
//
// Spans support two clocks. Start/End measure wall time (worker queue
// waits, per-run wall time). StartSim/EndSim measure *virtual* time: the
// caller passes sim.Now() at both edges, so a span can report how much
// simulated time an activity covered (e.g. a beacon window) even though
// the engine executes it in microseconds of wall time.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds the process's named instruments. Metric registration
// (Counter, Gauge, ...) locks; recording never does.
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	spans      map[string]*Span
}

// Default is the process-wide registry every instrumented package reports
// into. cmd/cocoaexp enables it when -telemetry or -debug-addr is given.
var Default = NewRegistry()

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		spans:      map[string]*Span{},
	}
}

// SetEnabled turns recording on or off. Disabling does not clear recorded
// values; Reset does.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether recording is on.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named monotonic counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{on: &r.enabled}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{on: &r.enabled}
	r.gauges[name] = g
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given ascending upper bounds on first use (an implicit +Inf bucket is
// appended). Later calls ignore bounds and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{
		on:      &r.enabled,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Span returns the named span, creating it on first use.
func (r *Registry) Span(name string) *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.spans[name]; ok {
		return s
	}
	s := &Span{on: &r.enabled}
	r.spans[name] = s
	return s
}

// Reset zeroes every registered instrument. The instruments themselves
// stay registered (package-level holders remain valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
	for _, s := range r.spans {
		s.count.Store(0)
		s.totalNs.Store(0)
		s.maxNs.Store(0)
	}
}

// Counter is a monotonic event count.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c.on.Load() {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0; monotonicity is the caller's contract).
func (c *Counter) Add(n int64) {
	if c.on.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g.on.Load() {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g.on.Load() {
		g.v.Add(delta)
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: bounds[i] is the inclusive
// upper edge of bucket i, and one final bucket catches everything above
// the last bound. Sum accumulates the raw observations.
type Histogram struct {
	on      *atomic.Bool
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !h.on.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveInt records one integer value (sugar for depth-style metrics).
func (h *Histogram) ObserveInt(v int) { h.Observe(float64(v)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Span accumulates durations of a named activity: count, total, and max.
// Wall-clock timings come from Start/End; virtual-clock (sim-time) timings
// from StartSim/EndSim with the caller's sim.Now() values.
type Span struct {
	on      *atomic.Bool
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// Timing is an in-flight span measurement. The zero Timing (returned when
// the registry is disabled) makes End a no-op.
type Timing struct {
	s    *Span
	wall time.Time
	sim  float64
}

// Start begins a wall-clock timing.
func (s *Span) Start() Timing {
	if !s.on.Load() {
		return Timing{}
	}
	return Timing{s: s, wall: time.Now()}
}

// End completes a wall-clock timing.
func (t Timing) End() {
	if t.s == nil {
		return
	}
	t.s.record(time.Since(t.wall).Nanoseconds())
}

// StartSim begins a virtual-clock timing at the given sim time (seconds).
func (s *Span) StartSim(now float64) Timing {
	if !s.on.Load() {
		return Timing{}
	}
	return Timing{s: s, sim: now}
}

// EndSim completes a virtual-clock timing at the given sim time. Durations
// are stored in nanoseconds of simulated time.
func (t Timing) EndSim(now float64) {
	if t.s == nil {
		return
	}
	t.s.record(int64((now - t.sim) * 1e9))
}

// Observe records an externally measured wall duration.
func (s *Span) Observe(d time.Duration) {
	if s.on.Load() {
		s.record(d.Nanoseconds())
	}
}

func (s *Span) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s.count.Add(1)
	s.totalNs.Add(ns)
	for {
		cur := s.maxNs.Load()
		if ns <= cur || s.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of completed timings.
func (s *Span) Count() int64 { return s.count.Load() }

// TotalNs returns the accumulated duration in nanoseconds.
func (s *Span) TotalNs() int64 { return s.totalNs.Load() }

// atomicFloat is a CAS-accumulated float64 (allocation-free).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Snapshot is a stable-ordered view of a registry: every category sorted
// by name, so serializing the same state twice yields identical bytes.
type Snapshot struct {
	Enabled    bool             `json:"enabled"`
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Spans      []SpanValue      `json:"spans"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketValue is one histogram bucket: the count of observations at or
// below Le that fell above the previous bound. The last bucket's Le is
// +Inf, serialized as the string "+Inf".
type BucketValue struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders +Inf as a string (JSON has no Inf literal).
func (b BucketValue) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.Le, 1) {
		return json.Marshal(struct {
			Le    string `json:"le"`
			Count int64  `json:"count"`
		}{"+Inf", b.Count})
	}
	type plain BucketValue
	return json.Marshal(plain(b))
}

// UnmarshalJSON accepts both the numeric form and the "+Inf" string, so
// serialized snapshots round-trip.
func (b *BucketValue) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.Le, &s); err == nil {
		if s != "+Inf" {
			return fmt.Errorf("telemetry: bad bucket bound %q", s)
		}
		b.Le = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.Le, &b.Le)
}

// HistogramValue is one histogram's snapshot.
type HistogramValue struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketValue `json:"buckets"`
}

// SpanValue is one span's snapshot. Totals are nanoseconds — wall
// nanoseconds for Start/End spans, simulated nanoseconds for
// StartSim/EndSim spans.
type SpanValue struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// Snapshot captures every instrument's current value, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Enabled:    r.enabled.Load(),
		Counters:   make([]CounterValue, 0, len(r.counters)),
		Gauges:     make([]GaugeValue, 0, len(r.gauges)),
		Histograms: make([]HistogramValue, 0, len(r.histograms)),
		Spans:      make([]SpanValue, 0, len(r.spans)),
	}
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterValue{Name: name, Value: c.v.Load()})
	}
	for name, g := range r.gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: name, Value: g.v.Load()})
	}
	for name, h := range r.histograms {
		hv := HistogramValue{
			Name:    name,
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Buckets: make([]BucketValue, len(h.buckets)),
		}
		for i := range h.buckets {
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hv.Buckets[i] = BucketValue{Le: le, Count: h.buckets[i].Load()}
		}
		snap.Histograms = append(snap.Histograms, hv)
	}
	for name, s := range r.spans {
		snap.Spans = append(snap.Spans, SpanValue{
			Name:    name,
			Count:   s.count.Load(),
			TotalNs: s.totalNs.Load(),
			MaxNs:   s.maxNs.Load(),
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	sort.Slice(snap.Spans, func(i, j int) bool { return snap.Spans[i].Name < snap.Spans[j].Name })
	return snap
}

// Diff returns after minus before: counter values, histogram counts and
// span accumulators subtract; gauges keep their after value (a gauge is a
// level, not a flow). Instruments present only in after carry over whole.
// Both snapshots must come from the same registry for names to align.
func Diff(before, after Snapshot) Snapshot {
	out := Snapshot{Enabled: after.Enabled}
	prevC := map[string]int64{}
	for _, c := range before.Counters {
		prevC[c.Name] = c.Value
	}
	for _, c := range after.Counters {
		out.Counters = append(out.Counters, CounterValue{Name: c.Name, Value: c.Value - prevC[c.Name]})
	}
	out.Gauges = append(out.Gauges, after.Gauges...)
	prevH := map[string]HistogramValue{}
	for _, h := range before.Histograms {
		prevH[h.Name] = h
	}
	for _, h := range after.Histograms {
		d := HistogramValue{
			Name:    h.Name,
			Count:   h.Count,
			Sum:     h.Sum,
			Buckets: append([]BucketValue(nil), h.Buckets...),
		}
		if p, ok := prevH[h.Name]; ok && len(p.Buckets) == len(h.Buckets) {
			d.Count -= p.Count
			d.Sum -= p.Sum
			for i := range d.Buckets {
				d.Buckets[i].Count -= p.Buckets[i].Count
			}
		}
		out.Histograms = append(out.Histograms, d)
	}
	prevS := map[string]SpanValue{}
	for _, s := range before.Spans {
		prevS[s.Name] = s
	}
	for _, s := range after.Spans {
		p := prevS[s.Name]
		out.Spans = append(out.Spans, SpanValue{
			Name:    s.Name,
			Count:   s.Count - p.Count,
			TotalNs: s.TotalNs - p.TotalNs,
			MaxNs:   s.MaxNs, // max does not subtract; keep the running max
		})
	}
	return out
}
