package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2})
	s := r.Span("s")

	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(3)
	h.Observe(1.5)
	s.Start().End()
	s.StartSim(1).EndSim(2)
	s.Observe(time.Second)

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Count() != 0 {
		t.Fatalf("disabled registry recorded: c=%d g=%d h=%d s=%d",
			c.Value(), g.Value(), h.Count(), s.Count())
	}
}

func TestCounterGaugeEnabled(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	// Re-getting a name returns the same instrument.
	if r.Counter("c") != c || r.Gauge("g") != g {
		t.Error("re-registration returned a different instrument")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("depth", []float64{1, 4, 16})
	for _, v := range []float64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	if hv.Count != 6 {
		t.Errorf("count = %d, want 6", hv.Count)
	}
	if hv.Sum != 112 {
		t.Errorf("sum = %v, want 112", hv.Sum)
	}
	wantCounts := []int64{2, 2, 1, 1} // <=1, <=4, <=16, +Inf
	for i, want := range wantCounts {
		if hv.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, hv.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(hv.Buckets[3].Le, 1) {
		t.Errorf("last bucket le = %v, want +Inf", hv.Buckets[3].Le)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", []float64{2, 1})
}

func TestSpanWallAndSim(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	s := r.Span("win")
	tm := s.StartSim(100)
	tm.EndSim(103)
	if got := s.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := s.TotalNs(); got != 3e9 {
		t.Errorf("total = %d ns, want 3e9 (3 simulated seconds)", got)
	}
	w := r.Span("wall")
	wt := w.Start()
	wt.End()
	if w.Count() != 1 || w.TotalNs() < 0 {
		t.Errorf("wall span count=%d total=%d", w.Count(), w.TotalNs())
	}
	// Negative durations clamp to zero rather than corrupting totals.
	s.StartSim(10).EndSim(5)
	if got := s.TotalNs(); got != 3e9 {
		t.Errorf("total after negative duration = %d, want unchanged 3e9", got)
	}
}

func TestSnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	for _, name := range []string{"z", "a", "m"} {
		r.Counter(name).Inc()
		r.Gauge("g." + name).Set(1)
		r.Histogram("h."+name, []float64{1}).Observe(0)
		r.Span("s." + name).StartSim(0).EndSim(1)
	}
	snap := r.Snapshot()
	names := func(n int, get func(int) string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = get(i)
		}
		return out
	}
	for _, set := range [][]string{
		names(len(snap.Counters), func(i int) string { return snap.Counters[i].Name }),
		names(len(snap.Gauges), func(i int) string { return snap.Gauges[i].Name }),
		names(len(snap.Histograms), func(i int) string { return snap.Histograms[i].Name }),
		names(len(snap.Spans), func(i int) string { return snap.Spans[i].Name }),
	} {
		if !sort.StringsAreSorted(set) {
			t.Errorf("snapshot names not sorted: %v", set)
		}
		for i := 1; i < len(set); i++ {
			if set[i] == set[i-1] {
				t.Errorf("duplicate name %q", set[i])
			}
		}
	}
	// Serializing the same state twice must yield identical bytes.
	b1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(r.Snapshot())
	if string(b1) != string(b2) {
		t.Error("snapshot serialization not deterministic")
	}
	if !strings.Contains(string(b1), `"le":"+Inf"`) {
		t.Errorf("overflow bucket not serialized as +Inf string: %s", b1)
	}
	// Round trip: the "+Inf" string must parse back to the infinity bound.
	var back Snapshot
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	last := back.Histograms[0].Buckets
	if !math.IsInf(last[len(last)-1].Le, 1) {
		t.Errorf("round-tripped overflow bound = %v, want +Inf", last[len(last)-1].Le)
	}
	if err := json.Unmarshal([]byte(`{"le":"-garbage","count":1}`), &BucketValue{}); err == nil {
		t.Error("bad string bound accepted")
	}
}

func TestResetZeroesEverything(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	c.Add(9)
	g := r.Gauge("g")
	g.Set(4)
	h := r.Histogram("h", []float64{1})
	h.Observe(0.5)
	s := r.Span("s")
	s.StartSim(0).EndSim(2)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || s.Count() != 0 || s.TotalNs() != 0 {
		t.Error("Reset left residue")
	}
	// The instruments stay live after Reset.
	c.Inc()
	if c.Value() != 1 {
		t.Error("counter dead after Reset")
	}
}

func TestDiff(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{10})
	s := r.Span("s")
	c.Add(3)
	g.Set(5)
	h.Observe(4)
	s.StartSim(0).EndSim(1)
	before := r.Snapshot()
	c.Add(2)
	g.Set(9)
	h.Observe(20)
	s.StartSim(0).EndSim(2)
	d := Diff(before, r.Snapshot())
	if d.Counters[0].Value != 2 {
		t.Errorf("counter delta = %d, want 2", d.Counters[0].Value)
	}
	if d.Gauges[0].Value != 9 {
		t.Errorf("gauge in diff = %d, want the level 9", d.Gauges[0].Value)
	}
	if d.Histograms[0].Count != 1 || d.Histograms[0].Buckets[1].Count != 1 {
		t.Errorf("histogram delta = %+v", d.Histograms[0])
	}
	if d.Spans[0].Count != 1 || d.Spans[0].TotalNs != 2e9 {
		t.Errorf("span delta = %+v", d.Spans[0])
	}
}

// Recording from many goroutines must lose nothing (and stay race-free
// under -race, which make check runs).
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	h := r.Histogram("h", []float64{50})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per*49.5 {
		t.Errorf("histogram sum = %v, want %v", got, workers*per*49.5)
	}
}

// The hot-path contract: recording allocates nothing, enabled or not.
func TestRecordingDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{1, 2, 4})
	s := r.Span("s")
	for _, enabled := range []bool{false, true} {
		r.SetEnabled(enabled)
		if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
			t.Errorf("Counter.Inc enabled=%v allocates %v/op", enabled, n)
		}
		if n := testing.AllocsPerRun(100, func() { h.Observe(1.5) }); n != 0 {
			t.Errorf("Histogram.Observe enabled=%v allocates %v/op", enabled, n)
		}
		if n := testing.AllocsPerRun(100, func() { s.StartSim(1).EndSim(2) }); n != 0 {
			t.Errorf("Span sim timing enabled=%v allocates %v/op", enabled, n)
		}
		if n := testing.AllocsPerRun(100, func() { s.Start().End() }); n != 0 {
			t.Errorf("Span wall timing enabled=%v allocates %v/op", enabled, n)
		}
	}
}
