package telemetry

import "testing"

// The benchmarks below quantify the per-record cost in both registry
// states. DESIGN.md §10 quotes these numbers; re-measure with
//
//	go test -bench 'Benchmark(Counter|Histogram|Span)' -benchmem ./internal/telemetry/
//
// Every one of them must report 0 B/op and 0 allocs/op.

func BenchmarkCounterIncDisabled(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabledParallel(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	h := NewRegistry().Histogram("h", []float64{1, 8, 64, 512})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("h", []float64{1, 8, 64, 512})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func BenchmarkSpanSimDisabled(b *testing.B) {
	s := NewRegistry().Span("s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.StartSim(0).EndSim(1)
	}
}

func BenchmarkSpanSimEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	s := r.Span("s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.StartSim(0).EndSim(1)
	}
}

func BenchmarkSpanWallEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	s := r.Span("s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Start().End()
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	for i := 0; i < 32; i++ {
		r.Counter(string(rune('a' + i%26)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
