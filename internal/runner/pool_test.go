package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"cocoa/internal/cocoa"
)

func TestGoReturnsResult(t *testing.T) {
	h := Go(context.Background(), func(ctx context.Context) (int, error) {
		return 42, nil
	})
	v, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("Result = %d, want 42", v)
	}
	select {
	case <-h.Done():
	default:
		t.Error("Done not closed after Result returned")
	}
}

func TestGoNilContextAndError(t *testing.T) {
	boom := errors.New("boom")
	h := Go[int](nil, func(ctx context.Context) (int, error) {
		if ctx == nil {
			t.Error("nil ctx passed through to job")
		}
		return 0, boom
	})
	if _, err := h.Result(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestGoCancelStopsJob(t *testing.T) {
	started := make(chan struct{})
	h := Go(context.Background(), func(ctx context.Context) (int, error) {
		close(started)
		<-ctx.Done()
		return 0, ctx.Err()
	})
	<-started
	h.Cancel()
	if _, err := h.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPoolRunsSubmittedJobs(t *testing.T) {
	p := NewPool[int](2, 4)
	defer p.Close()
	handles := make([]*Handle[int], 8)
	for i := range handles {
		i := i
		var err error
		// The queue bound (workers 2 + depth 4) is smaller than 8 jobs, so
		// submit with retry: rejected submissions re-offer after a yield.
		for {
			handles[i], err = p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
				return i * i, nil
			})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i, h := range handles {
		v, err := h.Result()
		if err != nil {
			t.Fatal(err)
		}
		if v != i*i {
			t.Errorf("job %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool[int](1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker...
	running, err := p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
		close(started)
		<-block
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// ...fill the single queue slot...
	queued, err := p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...and the next submission must shed.
	if _, err := p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
		return 3, nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	st := p.Stats()
	if st.Queued != 1 || st.InFlight != 1 || st.Workers != 1 || st.Capacity != 1 {
		t.Errorf("Stats = %+v, want 1 queued / 1 inflight / 1 worker / cap 1", st)
	}
	close(block)
	if v, err := running.Result(); err != nil || v != 1 {
		t.Fatalf("running job = %d, %v", v, err)
	}
	if v, err := queued.Result(); err != nil || v != 2 {
		t.Fatalf("queued job = %d, %v", v, err)
	}
}

func TestPoolCancelWhileQueued(t *testing.T) {
	p := NewPool[int](1, 2)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if _, err := p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
		close(started)
		<-block
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	h, err := p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
		t.Error("canceled queued job still ran")
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	close(block)
	if _, err := h.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPoolCloseDrainsAcceptedJobs(t *testing.T) {
	p := NewPool[int](1, 4)
	handles := make([]*Handle[int], 3)
	for i := range handles {
		i := i
		var err error
		handles[i], err = p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
			time.Sleep(5 * time.Millisecond)
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Close() // blocks until all three settle
	for i, h := range handles {
		select {
		case <-h.Done():
		default:
			t.Fatalf("job %d not settled after Close", i)
		}
		if v, err := h.Result(); err != nil || v != i {
			t.Errorf("job %d = %d, %v", i, v, err)
		}
	}
	if _, err := p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
		return 0, nil
	}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-Close submit err = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolClampsDegenerateSizes(t *testing.T) {
	p := NewPool[int](0, -1)
	defer p.Close()
	st := p.Stats()
	if st.Workers != 1 || st.Capacity != 0 {
		t.Fatalf("Stats = %+v, want 1 worker / cap 0", st)
	}
	// With capacity 0 a submission only succeeds via worker handoff... which
	// an unbuffered channel's non-blocking send cannot do reliably, so a
	// zero-capacity pool may reject everything; just assert it never panics.
	if h, err := p.TrySubmit(context.Background(), func(ctx context.Context) (int, error) {
		return 7, nil
	}); err == nil {
		if v, jerr := h.Result(); jerr != nil || v != 7 {
			t.Fatalf("job = %d, %v", v, jerr)
		}
	} else if !errors.Is(err, ErrQueueFull) {
		t.Fatal(err)
	}
}

// Pool-run simulations must be byte-identical to direct runs: the pool adds
// scheduling, never semantics.
func TestPoolRunsDeterministicSimulations(t *testing.T) {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.DurationS = 60
	cfg.Calibration.Samples = 40000
	cfg.GridCellM = 8
	direct, err := cocoa.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool[*cocoa.Result](2, 4)
	defer p.Close()
	h, err := p.TrySubmit(context.Background(), func(ctx context.Context) (*cocoa.Result, error) {
		return cocoa.RunContext(ctx, cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(pooled.AvgError) != len(direct.AvgError) {
		t.Fatalf("sample count %d != %d", len(pooled.AvgError), len(direct.AvgError))
	}
	for i := range pooled.AvgError {
		if pooled.AvgError[i] != direct.AvgError[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, pooled.AvgError[i], direct.AvgError[i])
		}
	}
	if pooled.TotalEnergyJ != direct.TotalEnergyJ || pooled.Fixes != direct.Fixes {
		t.Error("pooled run diverged from direct run on energy/fix counters")
	}
}
