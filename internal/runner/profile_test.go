package runner

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesAllOutputs(t *testing.T) {
	dir := t.TempDir()
	cfg := ProfileConfig{
		CPUPath:   filepath.Join(dir, "cpu.pprof"),
		MemPath:   filepath.Join(dir, "mem.pprof"),
		TracePath: filepath.Join(dir, "trace.out"),
	}
	if !cfg.Enabled() {
		t.Fatal("Enabled() = false with all paths set")
	}
	stop, err := StartProfiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := 0.0
	for i := 0; i < 1_000_000; i++ {
		sink += float64(i % 7)
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.CPUPath, cfg.MemPath, cfg.TracePath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("missing profile %s: %v", p, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesZeroValueIsNoOp(t *testing.T) {
	var cfg ProfileConfig
	if cfg.Enabled() {
		t.Fatal("zero value reports Enabled")
	}
	stop, err := StartProfiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	_, err := StartProfiles(ProfileConfig{CPUPath: filepath.Join(t.TempDir(), "no", "such", "dir", "x")})
	if err == nil {
		t.Fatal("unwritable CPU path accepted")
	}
}
