// Package runner is the experiment execution engine: it fans independent,
// seed-deterministic simulation runs (sweep points x seeds) across a worker
// pool while preserving the exact semantics of a serial loop.
//
// The engine guarantees:
//
//   - deterministic result ordering: results land at their job index, never
//     in completion order, so a parallel sweep returns byte-identical output
//     to a serial one when every job is a pure function of its index;
//   - first-error propagation: the first failing job (lowest index among
//     observed failures) cancels all outstanding work and its error is
//     returned, mirroring a serial loop's early return;
//   - cooperative cancellation: a context cancels between jobs, and the
//     per-job context lets long jobs observe cancellation themselves;
//   - serialized progress reporting: the Progress callback is never invoked
//     concurrently, so callers need no locking to drive a counter or a
//     progress bar.
//
// Parallelism <= 1 degenerates to a plain inline loop on the calling
// goroutine — the zero value of Options reproduces serial behavior exactly,
// which is what keeps existing callers unchanged.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cocoa/internal/cocoa"
	"cocoa/internal/telemetry"
)

// Telemetry instruments: how long each job ran (wall clock), how long it
// sat queued before a worker picked it up, and how many jobs are in
// flight right now. Recording never influences scheduling, so parallel
// fan-outs stay byte-identical with telemetry on or off.
var (
	telJobs      = telemetry.Default.Counter("runner.jobs")
	telJobErrors = telemetry.Default.Counter("runner.job_errors")
	telJobWall   = telemetry.Default.Span("runner.job_wall")
	telQueueWait = telemetry.Default.Span("runner.queue_wait")
	telInflight  = telemetry.Default.Gauge("runner.inflight")
)

// runJob wraps one job execution with the telemetry spans shared by the
// serial and pooled paths. submitted is when the fan-out started — queue
// wait is the time a job spent waiting for an execution slot.
func runJob[T any](ctx context.Context, submitted time.Time, i int, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	telQueueWait.Observe(time.Since(submitted))
	telJobs.Inc()
	telInflight.Add(1)
	tm := telJobWall.Start()
	v, err := fn(ctx, i)
	tm.End()
	telInflight.Add(-1)
	if err != nil {
		telJobErrors.Inc()
	}
	return v, err
}

// Options configures one fan-out.
type Options struct {
	// Parallelism is the maximum number of concurrently executing jobs.
	// Values <= 1 run the jobs serially on the calling goroutine; the pool
	// never spawns more workers than there are jobs. Use MaxParallelism
	// for "as many as the hardware allows".
	Parallelism int
	// Progress, when non-nil, is invoked after each job completes with the
	// number of completed jobs and the total. Invocations are serialized;
	// done is strictly increasing from 1 to total on a fully successful
	// fan-out.
	Progress func(done, total int)
}

// MaxParallelism returns the worker count that saturates the hardware,
// GOMAXPROCS at the time of the call.
func MaxParallelism() int { return runtime.GOMAXPROCS(0) }

// Map executes fn(ctx, i) for every i in [0, n) and returns the results in
// index order. With opts.Parallelism > 1 the jobs run on a worker pool;
// otherwise they run inline. The first error cancels outstanding work and
// is returned wrapped with its job index (among concurrently observed
// failures, the lowest index wins, matching the job a serial loop would
// have failed on). A nil ctx means context.Background().
func Map[T any](ctx context.Context, opts Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	submitted := time.Now()
	workers := opts.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := runJob(ctx, submitted, i, fn)
			if err != nil {
				return nil, fmt.Errorf("runner: job %d: %w", i, err)
			}
			out[i] = v
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		done     int
		firstErr error
		errIdx   = -1
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				v, err := runJob(cctx, submitted, i, fn)
				mu.Lock()
				if err != nil {
					if errIdx == -1 || i < errIdx {
						firstErr = fmt.Errorf("runner: job %d: %w", i, err)
						errIdx = i
					}
					mu.Unlock()
					cancel()
					continue
				}
				out[i] = v
				done++
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Runs executes every configuration through cocoa.RunContext on the pool
// and returns the results in configuration order. Each run is fully
// deterministic in its Config (including Seed), so the output is identical
// at any parallelism level; the per-job context lets a canceled sweep abort
// in-flight simulations instead of letting them run to completion.
func Runs(ctx context.Context, opts Options, cfgs []cocoa.Config) ([]*cocoa.Result, error) {
	return Map(ctx, opts, len(cfgs), func(jctx context.Context, i int) (*cocoa.Result, error) {
		return cocoa.RunContext(jctx, cfgs[i])
	})
}
