// Package runner is the experiment execution engine: it fans independent,
// seed-deterministic simulation runs (sweep points x seeds) across a worker
// pool while preserving the exact semantics of a serial loop.
//
// The engine guarantees:
//
//   - deterministic result ordering: results land at their job index, never
//     in completion order, so a parallel sweep returns byte-identical output
//     to a serial one when every job is a pure function of its index;
//   - first-error propagation: the first failing job (lowest index among
//     observed failures) cancels all outstanding work and its error is
//     returned, mirroring a serial loop's early return;
//   - cooperative cancellation: a context cancels between jobs, and the
//     per-job context lets long jobs observe cancellation themselves;
//   - serialized progress reporting: the Progress callback is never invoked
//     concurrently, so callers need no locking to drive a counter or a
//     progress bar.
//
// Parallelism <= 1 degenerates to a plain inline loop on the calling
// goroutine — the zero value of Options reproduces serial behavior exactly,
// which is what keeps existing callers unchanged.
package runner

import (
	"context"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cocoa/internal/cocoa"
	"cocoa/internal/obs"
	"cocoa/internal/telemetry"
)

// Telemetry instruments: how long each job ran (wall clock), how long it
// sat queued before a worker picked it up, and how many jobs are in
// flight right now. Recording never influences scheduling, so parallel
// fan-outs stay byte-identical with telemetry on or off.
var (
	telJobs      = telemetry.Default.Counter("runner.jobs")
	telJobErrors = telemetry.Default.Counter("runner.job_errors")
	telJobWall   = telemetry.Default.Span("runner.job_wall")
	telQueueWait = telemetry.Default.Span("runner.queue_wait")
	telInflight  = telemetry.Default.Gauge("runner.inflight")
)

// runJob wraps one job execution with the telemetry spans shared by the
// serial and pooled paths. submitted is when the fan-out started — queue
// wait is the time a job spent waiting for an execution slot.
func runJob[T any](ctx context.Context, submitted time.Time, i int, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	telQueueWait.Observe(time.Since(submitted))
	telJobs.Inc()
	telInflight.Add(1)
	tm := telJobWall.Start()
	v, err := fn(ctx, i)
	tm.End()
	telInflight.Add(-1)
	if err != nil {
		telJobErrors.Inc()
	}
	return v, err
}

// Options configures one fan-out.
type Options struct {
	// Parallelism is the maximum number of concurrently executing jobs.
	// Values <= 1 run the jobs serially on the calling goroutine; the pool
	// never spawns more workers than there are jobs. Use MaxParallelism
	// for "as many as the hardware allows".
	Parallelism int
	// Progress, when non-nil, is invoked after each job completes with the
	// number of completed jobs and the total. Invocations are serialized;
	// done is strictly increasing from 1 to total on a fully successful
	// fan-out.
	Progress func(done, total int)
	// CheckpointDir, when non-empty, makes every run of a Runs/RunsEach
	// fan-out checkpoint into its own subdirectory run-<index>/ beneath it
	// (see cocoa.CheckpointSpec). Checkpointing is operational: it never
	// changes result bytes at any parallelism level.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in sampling ticks for
	// CheckpointDir; <= 0 means cocoa.DefaultCheckpointEveryTicks.
	CheckpointEvery int
	// Gauge, when non-nil, receives the fan-out's live position: SetRun
	// after each completed job, and (for Runs/RunsEach) the executing
	// run's tick position via cocoa's Config.Progress. Concurrent runs
	// share the gauge — the tick readout tracks whichever run published
	// last, which is the intended "what is the pool doing right now"
	// signal. Publication is write-only and lock-free, so it cannot
	// perturb results or scheduling.
	Gauge *obs.Progress
	// Logger, when non-nil, receives a debug record per failed job. The
	// engine never logs on the success path — sweeps run thousands of
	// jobs and the Progress/Gauge channels already carry liveness.
	Logger *slog.Logger
}

// withCheckpoint returns cfg with the fan-out's operational taps applied
// for job i: the checkpoint spec (a no-op without a CheckpointDir) and the
// shared progress gauge.
func (o Options) withCheckpoint(cfg cocoa.Config, i int) cocoa.Config {
	cfg.Progress = o.Gauge
	if o.CheckpointDir == "" {
		return cfg
	}
	cfg.Checkpoint = cocoa.CheckpointSpec{
		EveryTicks: o.CheckpointEvery,
		Dir:        filepath.Join(o.CheckpointDir, fmt.Sprintf("run-%04d", i)),
	}
	return cfg
}

// logJobError emits the per-failure debug record when a Logger is wired.
func (o Options) logJobError(i int, err error) {
	if o.Logger != nil {
		o.Logger.Debug("job failed", "run", i, "error", err.Error())
	}
}

// MaxParallelism returns the worker count that saturates the hardware,
// GOMAXPROCS at the time of the call.
func MaxParallelism() int { return runtime.GOMAXPROCS(0) }

// Map executes fn(ctx, i) for every i in [0, n) and returns the results in
// index order. With opts.Parallelism > 1 the jobs run on a worker pool;
// otherwise they run inline. The first error cancels outstanding work and
// is returned wrapped with its job index (among concurrently observed
// failures, the lowest index wins, matching the job a serial loop would
// have failed on). A nil ctx means context.Background().
func Map[T any](ctx context.Context, opts Options, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	submitted := time.Now()
	opts.Gauge.SetRun(0, n)
	workers := opts.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := runJob(ctx, submitted, i, fn)
			if err != nil {
				opts.logJobError(i, err)
				return nil, fmt.Errorf("runner: job %d: %w", i, err)
			}
			out[i] = v
			opts.Gauge.SetRun(i+1, n)
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		done     int
		firstErr error
		errIdx   = -1
		next     atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				v, err := runJob(cctx, submitted, i, fn)
				mu.Lock()
				if err != nil {
					if errIdx == -1 || i < errIdx {
						firstErr = fmt.Errorf("runner: job %d: %w", i, err)
						errIdx = i
					}
					mu.Unlock()
					opts.logJobError(i, err)
					cancel()
					continue
				}
				out[i] = v
				done++
				opts.Gauge.SetRun(done, n)
				if opts.Progress != nil {
					opts.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// The engine keeps a small process-wide free list of run slots so scratch
// reuse spans fan-out calls, not just the runs within one: an experiment
// suite that calls Runs per sweep still recycles the previous sweep's
// simulators, streams, and grids. The list is capped — each scratch
// retains its high-water memory, so hoarding one per historical worker
// would defeat the purpose.
var (
	scratchMu   sync.Mutex
	scratchFree []*cocoa.Scratch
)

// maxFreeScratches bounds the cross-sweep scratch free list. Sweeps with
// more workers than this still get one scratch per worker; the surplus is
// simply dropped for the GC when the sweep ends.
const maxFreeScratches = 4

// scratchPool hands one cocoa.Scratch per execution slot to the jobs of a
// fan-out, so consecutive runs on the same slot recycle their simulator,
// RNG streams, and belief grids (see cocoa.Scratch). Which scratch a job
// draws is scheduling-dependent, but scratch identity never influences
// results — scratch-built runs are byte-identical to fresh ones — so the
// fan-out's determinism guarantee is untouched. The returned release
// function parks the slots back on the process-wide free list.
func scratchPool(workers, n int) (pool chan *cocoa.Scratch, release func()) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	pool = make(chan *cocoa.Scratch, workers)
	scratchMu.Lock()
	for i := 0; i < workers; i++ {
		if k := len(scratchFree); k > 0 {
			pool <- scratchFree[k-1]
			scratchFree[k-1] = nil
			scratchFree = scratchFree[:k-1]
			continue
		}
		pool <- cocoa.NewScratch()
	}
	scratchMu.Unlock()
	release = func() {
		scratchMu.Lock()
		defer scratchMu.Unlock()
		for {
			select {
			case sc := <-pool:
				if len(scratchFree) < maxFreeScratches {
					scratchFree = append(scratchFree, sc)
				}
			default:
				return
			}
		}
	}
	return pool, release
}

// Runs executes every configuration through cocoa.RunContext on the pool
// and returns the results in configuration order. Each run is fully
// deterministic in its Config (including Seed), so the output is identical
// at any parallelism level; the per-job context lets a canceled sweep abort
// in-flight simulations instead of letting them run to completion.
//
// Consecutive runs on the same worker share a cocoa.Scratch, recycling the
// previous run's simulator, streams, and grids. Results are never recycled
// here — the returned slice stays valid indefinitely; callers that drop
// each Result after reading it can use RunsEach to recycle those buffers
// too.
func Runs(ctx context.Context, opts Options, cfgs []cocoa.Config) ([]*cocoa.Result, error) {
	pool, release := scratchPool(opts.Parallelism, len(cfgs))
	defer release()
	return Map(ctx, opts, len(cfgs), func(jctx context.Context, i int) (*cocoa.Result, error) {
		sc := <-pool
		defer func() { pool <- sc }()
		return cocoa.RunScratch(jctx, opts.withCheckpoint(cfgs[i], i), sc)
	})
}

// RunsEach executes every configuration like Runs but streams each Result
// to fn instead of retaining it: after fn(i, res) returns, res is recycled
// into the worker's scratch and must not be used again. fn may be invoked
// concurrently (up to opts.Parallelism calls at once) and in any order; i
// identifies the configuration. An fn error fails its job exactly as a run
// error does. This is the full-reuse path for aggregating sweeps — cross-
// seed statistics need one scalar per run, not the run's whole time series.
func RunsEach(ctx context.Context, opts Options, cfgs []cocoa.Config, fn func(i int, res *cocoa.Result) error) error {
	pool, release := scratchPool(opts.Parallelism, len(cfgs))
	defer release()
	_, err := Map(ctx, opts, len(cfgs), func(jctx context.Context, i int) (struct{}, error) {
		sc := <-pool
		defer func() { pool <- sc }()
		res, err := cocoa.RunScratch(jctx, opts.withCheckpoint(cfgs[i], i), sc)
		if err != nil {
			return struct{}{}, err
		}
		err = fn(i, res)
		sc.ReleaseResult(res)
		return struct{}{}, err
	})
	return err
}
