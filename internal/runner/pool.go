package runner

// Job handles and the bounded pool: the long-lived counterpart to Map's
// one-shot fan-out. Map serves batch sweeps ("run these n jobs, give me the
// slice"); the Pool serves services — callers submit jobs one at a time
// over the process lifetime, admission is bounded so overload turns into
// backpressure instead of unbounded queue growth, and every job returns a
// Handle the caller can wait on or cancel independently.

import (
	"context"
	"errors"
	"sync"
	"time"

	"cocoa/internal/telemetry"
)

// Pool admission errors.
var (
	// ErrQueueFull reports that the pool's waiting queue is at capacity;
	// the caller should shed load (an HTTP service maps it to 429).
	ErrQueueFull = errors.New("runner: job queue full")
	// ErrPoolClosed reports a submission after Close began draining.
	ErrPoolClosed = errors.New("runner: pool closed")
)

// Telemetry for the pool path (the one-shot Map path has its own
// instruments above). Recording never steers scheduling.
var (
	telPoolSubmitted = telemetry.Default.Counter("runner.pool_submitted")
	telPoolRejected  = telemetry.Default.Counter("runner.pool_rejected")
	telPoolQueued    = telemetry.Default.Gauge("runner.pool_queued")
	telPoolInflight  = telemetry.Default.Gauge("runner.pool_inflight")
)

// Handle is one asynchronously executing job: a future for its result plus
// a cancellation lever. The zero value is invalid; handles come from
// Pool.TrySubmit or Go.
type Handle[T any] struct {
	cancel context.CancelFunc
	done   chan struct{}

	val T
	err error
}

// Done returns a channel closed when the job has finished (successfully,
// with an error, or canceled before it started).
func (h *Handle[T]) Done() <-chan struct{} { return h.done }

// Result blocks until the job finishes and returns its outcome. A job
// canceled before starting returns its context's error.
func (h *Handle[T]) Result() (T, error) {
	<-h.done
	return h.val, h.err
}

// Cancel asks the job to stop: a queued job is abandoned before it runs, a
// running job observes cancellation through its context. Cancel never
// blocks; wait on Done for the job to actually settle.
func (h *Handle[T]) Cancel() { h.cancel() }

// complete settles the handle exactly once.
func (h *Handle[T]) complete(v T, err error) {
	h.val, h.err = v, err
	close(h.done)
}

// Go runs fn on its own goroutine and returns its handle — the unbounded
// sibling of Pool.TrySubmit for callers that manage admission themselves.
// A nil ctx means context.Background().
func Go[T any](ctx context.Context, fn func(ctx context.Context) (T, error)) *Handle[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	jctx, cancel := context.WithCancel(ctx)
	h := &Handle[T]{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer cancel()
		v, err := fn(jctx)
		h.complete(v, err)
	}()
	return h
}

// PoolStats is a point-in-time view of a pool's occupancy.
type PoolStats struct {
	// Queued is how many accepted jobs are waiting for a worker.
	Queued int
	// InFlight is how many jobs are executing right now.
	InFlight int
	// Workers is the pool's fixed worker count.
	Workers int
	// Capacity is the waiting-queue bound; Queued never exceeds it.
	Capacity int
}

// poolTask pairs a job function with its handle.
type poolTask[T any] struct {
	ctx      context.Context
	fn       func(ctx context.Context) (T, error)
	h        *Handle[T]
	enqueued time.Time
}

// Pool is a fixed set of workers pulling from a bounded queue. Accepted
// jobs always run to completion (or until their context cancels them);
// Close stops intake and drains.
type Pool[T any] struct {
	tasks chan *poolTask[T]
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	queued   int
	inflight int
	workers  int
}

// NewPool starts workers goroutines serving a queue of at most queueDepth
// waiting jobs. workers and queueDepth are clamped to at least 1 and 0.
func NewPool[T any](workers, queueDepth int) *Pool[T] {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &Pool[T]{
		tasks:   make(chan *poolTask[T], queueDepth),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool[T]) worker() {
	defer p.wg.Done()
	for task := range p.tasks {
		p.mu.Lock()
		p.queued--
		telPoolQueued.Add(-1)
		p.mu.Unlock()
		// A job canceled (or deadline-expired) while waiting never runs;
		// its handle settles with the context's error.
		if err := task.ctx.Err(); err != nil {
			var zero T
			task.h.complete(zero, err)
			continue
		}
		p.mu.Lock()
		p.inflight++
		telPoolInflight.Add(1)
		p.mu.Unlock()
		telQueueWait.Observe(time.Since(task.enqueued))
		v, err := task.fn(task.ctx)
		task.h.complete(v, err)
		p.mu.Lock()
		p.inflight--
		telPoolInflight.Add(-1)
		p.mu.Unlock()
	}
}

// TrySubmit offers fn to the pool without blocking. It returns ErrQueueFull
// when every queue slot is taken (shed load and retry later) and
// ErrPoolClosed after Close. The job runs under a context derived from ctx;
// Handle.Cancel or ctx's own cancellation stop it. A nil ctx means
// context.Background().
func (p *Pool[T]) TrySubmit(ctx context.Context, fn func(ctx context.Context) (T, error)) (*Handle[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jctx, cancel := context.WithCancel(ctx)
	h := &Handle[T]{cancel: cancel, done: make(chan struct{})}
	task := &poolTask[T]{ctx: jctx, fn: fn, h: h, enqueued: time.Now()}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		cancel()
		telPoolRejected.Inc()
		return nil, ErrPoolClosed
	}
	// Admission counts queue slots, not channel occupancy: a task handed to
	// an idle worker never sits in the channel, but it still transited the
	// queue accounting (the worker decrements immediately).
	select {
	case p.tasks <- task:
		p.queued++
		telPoolQueued.Add(1)
		telPoolSubmitted.Inc()
		return h, nil
	default:
		cancel()
		telPoolRejected.Inc()
		return nil, ErrQueueFull
	}
}

// Stats returns the pool's current occupancy.
func (p *Pool[T]) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Queued:   p.queued,
		InFlight: p.inflight,
		Workers:  p.workers,
		Capacity: cap(p.tasks),
	}
}

// Close stops intake and blocks until every accepted job has settled — the
// drain step of a graceful shutdown. Close is idempotent.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
