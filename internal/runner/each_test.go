package runner

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cocoa/internal/cocoa"
)

func smallSweep(n int) []cocoa.Config {
	cfgs := make([]cocoa.Config, n)
	for i := range cfgs {
		cfg := cocoa.DefaultConfig()
		cfg.NumRobots = 8
		cfg.NumEquipped = 4
		cfg.DurationS = 60
		cfg.BeaconPeriodS = 20
		cfg.GridCellM = 8
		cfg.Calibration.Samples = 20000
		cfg.Seed = int64(i + 1)
		cfgs[i] = cfg
	}
	return cfgs
}

// RunsEach must hand every config's result to fn exactly once, and the
// scalars extracted there must match what the retaining Runs path computes
// — recycling a result after fn returns must not corrupt a neighbor.
func TestRunsEachMatchesRuns(t *testing.T) {
	cfgs := smallSweep(4)
	retained, err := Runs(context.Background(), Options{}, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{0, 3} {
		var mu sync.Mutex
		seen := map[int]int{}
		got := make([]float64, len(cfgs))
		err := RunsEach(context.Background(), Options{Parallelism: par}, cfgs,
			func(i int, res *cocoa.Result) error {
				mu.Lock()
				seen[i]++
				mu.Unlock()
				got[i] = res.MeanError()
				return nil
			})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i := range cfgs {
			if seen[i] != 1 {
				t.Fatalf("parallelism %d: config %d streamed %d times", par, i, seen[i])
			}
			if got[i] != retained[i].MeanError() {
				t.Fatalf("parallelism %d: config %d mean %v, Runs says %v",
					par, i, got[i], retained[i].MeanError())
			}
		}
	}
}

// An fn error fails the sweep exactly like a run error, wrapped with its
// job index.
func TestRunsEachPropagatesFnError(t *testing.T) {
	boom := errors.New("boom")
	cfgs := smallSweep(2)
	err := RunsEach(context.Background(), Options{}, cfgs,
		func(i int, _ *cocoa.Result) error {
			if i == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
