package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cocoa/internal/cocoa"
	"cocoa/internal/faults"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, par := range []int{0, 1, 4, 16} {
		got, err := Map(context.Background(), Options{Parallelism: par}, 50,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), Options{Parallelism: 4}, 0,
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapFirstErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 4} {
		_, err := Map(context.Background(), Options{Parallelism: par}, 20,
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					return 0, boom
				}
				return i, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: err = %v, want wrapped boom", par, err)
		}
		if par == 1 && !strings.Contains(err.Error(), "job 3") {
			t.Fatalf("error lost job index: %v", err)
		}
	}
}

func TestMapSerialErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Map(context.Background(), Options{}, 10,
		func(_ context.Context, i int) (int, error) {
			calls++
			if i == 2 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("calls = %d, err = %v; want 3 calls and boom", calls, err)
	}
}

func TestMapParallelErrorCancelsOutstanding(t *testing.T) {
	boom := errors.New("boom")
	started := make(chan struct{}, 64)
	_, err := Map(context.Background(), Options{Parallelism: 2}, 64,
		func(ctx context.Context, i int) (int, error) {
			started <- struct{}{}
			return 0, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Cancellation keeps the pool from visiting all 64 jobs: at most the
	// two in-flight jobs plus the two picked before observing the cancel.
	if n := len(started); n > 8 {
		t.Errorf("%d jobs started after first error; cancellation ineffective", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		_, err := Map(ctx, Options{Parallelism: par}, 10,
			func(_ context.Context, i int) (int, error) { return i, nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
	}
}

func TestMapProgressSerializedAndComplete(t *testing.T) {
	for _, par := range []int{1, 4} {
		var dones []int
		_, err := Map(context.Background(), Options{
			Parallelism: par,
			// No locking here on purpose: the engine guarantees serialized
			// invocation, and -race verifies it.
			Progress: func(done, total int) {
				if total != 30 {
					t.Errorf("total = %d, want 30", total)
				}
				dones = append(dones, done)
			},
		}, 30, func(_ context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(dones) != 30 {
			t.Fatalf("parallelism %d: %d progress calls, want 30", par, len(dones))
		}
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("parallelism %d: progress not monotone: %v", par, dones)
			}
		}
	}
}

// faultHeavyConfig is a small but hostile workload: bursty loss, crashed
// robots, and RSSI outliers all active, so cancellation interrupts the
// engine while the fault machinery is mid-flight.
func faultHeavyConfig(seed int64) cocoa.Config {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 8
	cfg.NumEquipped = 4
	cfg.DurationS = 60
	cfg.BeaconPeriodS = 20
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 20000
	cfg.Seed = seed
	cfg.Faults.GE = faults.Bursty(0.5, faults.DefaultBurstFrames)
	cfg.Faults.CrashFraction = 0.25
	cfg.Faults.CrashMeanDownS = 30
	cfg.Faults.OutlierProb = 0.05
	return cfg
}

// waitForGoroutines polls until the goroutine count drops back to the
// bound or the deadline passes, returning the last observed count.
func waitForGoroutines(bound int, deadline time.Duration) int {
	start := time.Now()
	for {
		n := runtime.NumGoroutine()
		if n <= bound || time.Since(start) > deadline {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancellationMidSweepUnderFaultLoad cancels a parallel fault-heavy
// sweep partway through and checks the three things a caller relies on:
// the engine reports context.Canceled, every worker goroutine exits, and
// whatever jobs DID complete computed the result for their own index —
// cancellation must not scramble the index->config mapping.
func TestCancellationMidSweepUnderFaultLoad(t *testing.T) {
	const n = 24
	cfgs := make([]cocoa.Config, n)
	for i := range cfgs {
		cfgs[i] = faultHeavyConfig(int64(i + 1))
	}

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		mu        sync.Mutex
		partial   = make(map[int]*cocoa.Result)
		completed atomic.Int64
	)
	_, err := Map(ctx, Options{Parallelism: 4}, n,
		func(ctx context.Context, i int) (*cocoa.Result, error) {
			res, rerr := cocoa.Run(cfgs[i])
			if rerr != nil {
				return nil, rerr
			}
			mu.Lock()
			partial[i] = res
			mu.Unlock()
			if completed.Add(1) == 3 {
				cancel() // mid-sweep: several jobs done, many outstanding
			}
			return res, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	mu.Lock()
	got := len(partial)
	mu.Unlock()
	if got < 3 {
		t.Fatalf("only %d jobs completed before cancel; gate never fired", got)
	}
	if got == n {
		t.Fatalf("all %d jobs completed; cancellation did not interrupt the sweep", n)
	}

	// No goroutine leaks: the pool must wind down to the pre-sweep count
	// (plus slack for runtime background goroutines).
	if leaked := waitForGoroutines(baseline+2, 2*time.Second); leaked > baseline+2 {
		t.Errorf("goroutines = %d after cancelled sweep, baseline %d", leaked, baseline)
	}

	// Index consistency: each surviving partial result must be byte-for-byte
	// what a fresh serial run of that index's config produces.
	checked := 0
	for i, res := range partial {
		if checked == 3 {
			break
		}
		checked++
		want, rerr := cocoa.Run(cfgs[i])
		if rerr != nil {
			t.Fatalf("re-run of cfg %d: %v", i, rerr)
		}
		if res.MeanError() != want.MeanError() || res.Fixes != want.Fixes ||
			res.Crashes != want.Crashes || res.FaultDrops != want.FaultDrops {
			t.Errorf("partial result %d inconsistent with its config: got (err=%v fixes=%d crashes=%d drops=%d), want (err=%v fixes=%d crashes=%d drops=%d)",
				i, res.MeanError(), res.Fixes, res.Crashes, res.FaultDrops,
				want.MeanError(), want.Fixes, want.Crashes, want.FaultDrops)
		}
	}
}

// TestMapNoGoroutineLeakAfterError is the error-path twin: a failing job
// cancels the sweep, and the pool must still wind down completely.
func TestMapNoGoroutineLeakAfterError(t *testing.T) {
	boom := errors.New("boom")
	baseline := runtime.NumGoroutine()
	_, err := Map(context.Background(), Options{Parallelism: 8}, 64,
		func(_ context.Context, i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if leaked := waitForGoroutines(baseline+2, 2*time.Second); leaked > baseline+2 {
		t.Errorf("goroutines = %d after failed sweep, baseline %d", leaked, baseline)
	}
}

// TestRunsDeterministicAcrossParallelism is the engine-level determinism
// guarantee: the same seeded configs produce byte-identical results whether
// executed serially or on the pool.
func TestRunsDeterministicAcrossParallelism(t *testing.T) {
	cfgs := make([]cocoa.Config, 3)
	for i := range cfgs {
		cfg := cocoa.DefaultConfig()
		cfg.NumRobots = 10
		cfg.NumEquipped = 5
		cfg.DurationS = 60
		cfg.BeaconPeriodS = 20
		cfg.GridCellM = 8
		cfg.Calibration.Samples = 20000
		cfg.Seed = int64(i + 1)
		cfgs[i] = cfg
	}
	serial, err := Runs(context.Background(), Options{}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runs(context.Background(), Options{Parallelism: 4}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if len(serial[i].AvgError) != len(parallel[i].AvgError) {
			t.Fatalf("run %d: series lengths differ", i)
		}
		for j := range serial[i].AvgError {
			if serial[i].AvgError[j] != parallel[i].AvgError[j] {
				t.Fatalf("run %d: AvgError[%d] differs: %v vs %v",
					i, j, serial[i].AvgError[j], parallel[i].AvgError[j])
			}
		}
		if serial[i].TotalEnergyJ != parallel[i].TotalEnergyJ {
			t.Fatalf("run %d: energy differs", i)
		}
	}
}
