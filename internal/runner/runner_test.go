package runner

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cocoa/internal/cocoa"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, par := range []int{0, 1, 4, 16} {
		got, err := Map(context.Background(), Options{Parallelism: par}, 50,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), Options{Parallelism: 4}, 0,
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapFirstErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	for _, par := range []int{1, 4} {
		_, err := Map(context.Background(), Options{Parallelism: par}, 20,
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					return 0, boom
				}
				return i, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: err = %v, want wrapped boom", par, err)
		}
		if par == 1 && !strings.Contains(err.Error(), "job 3") {
			t.Fatalf("error lost job index: %v", err)
		}
	}
}

func TestMapSerialErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Map(context.Background(), Options{}, 10,
		func(_ context.Context, i int) (int, error) {
			calls++
			if i == 2 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("calls = %d, err = %v; want 3 calls and boom", calls, err)
	}
}

func TestMapParallelErrorCancelsOutstanding(t *testing.T) {
	boom := errors.New("boom")
	started := make(chan struct{}, 64)
	_, err := Map(context.Background(), Options{Parallelism: 2}, 64,
		func(ctx context.Context, i int) (int, error) {
			started <- struct{}{}
			return 0, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Cancellation keeps the pool from visiting all 64 jobs: at most the
	// two in-flight jobs plus the two picked before observing the cancel.
	if n := len(started); n > 8 {
		t.Errorf("%d jobs started after first error; cancellation ineffective", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		_, err := Map(ctx, Options{Parallelism: par}, 10,
			func(_ context.Context, i int) (int, error) { return i, nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
	}
}

func TestMapProgressSerializedAndComplete(t *testing.T) {
	for _, par := range []int{1, 4} {
		var dones []int
		_, err := Map(context.Background(), Options{
			Parallelism: par,
			// No locking here on purpose: the engine guarantees serialized
			// invocation, and -race verifies it.
			Progress: func(done, total int) {
				if total != 30 {
					t.Errorf("total = %d, want 30", total)
				}
				dones = append(dones, done)
			},
		}, 30, func(_ context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(dones) != 30 {
			t.Fatalf("parallelism %d: %d progress calls, want 30", par, len(dones))
		}
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("parallelism %d: progress not monotone: %v", par, dones)
			}
		}
	}
}

// TestRunsDeterministicAcrossParallelism is the engine-level determinism
// guarantee: the same seeded configs produce byte-identical results whether
// executed serially or on the pool.
func TestRunsDeterministicAcrossParallelism(t *testing.T) {
	cfgs := make([]cocoa.Config, 3)
	for i := range cfgs {
		cfg := cocoa.DefaultConfig()
		cfg.NumRobots = 10
		cfg.NumEquipped = 5
		cfg.DurationS = 60
		cfg.BeaconPeriodS = 20
		cfg.GridCellM = 8
		cfg.Calibration.Samples = 20000
		cfg.Seed = int64(i + 1)
		cfgs[i] = cfg
	}
	serial, err := Runs(context.Background(), Options{}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runs(context.Background(), Options{Parallelism: 4}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if len(serial[i].AvgError) != len(parallel[i].AvgError) {
			t.Fatalf("run %d: series lengths differ", i)
		}
		for j := range serial[i].AvgError {
			if serial[i].AvgError[j] != parallel[i].AvgError[j] {
				t.Fatalf("run %d: AvgError[%d] differs: %v vs %v",
					i, j, serial[i].AvgError[j], parallel[i].AvgError[j])
			}
		}
		if serial[i].TotalEnergyJ != parallel[i].TotalEnergyJ {
			t.Fatalf("run %d: energy differs", i)
		}
	}
}
