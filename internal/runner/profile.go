package runner

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileConfig names the diagnostic outputs of one process run. Empty
// paths disable the corresponding profile, so the zero value is a no-op.
type ProfileConfig struct {
	// CPUPath receives a pprof CPU profile covering Start..stop.
	CPUPath string
	// MemPath receives a pprof heap profile captured at stop time (after a
	// forced GC, so it reflects live objects, not transient garbage).
	MemPath string
	// TracePath receives a runtime execution trace covering Start..stop.
	TracePath string
}

// Enabled reports whether any profile output is requested.
func (c ProfileConfig) Enabled() bool {
	return c.CPUPath != "" || c.MemPath != "" || c.TracePath != ""
}

// StartProfiles starts the requested collectors and returns a stop function
// that finalizes every output file. The caller must invoke stop exactly
// once (typically via defer); it returns the first error encountered while
// finalizing. If StartProfiles itself fails, everything already started is
// shut down before returning and stop is nil.
func StartProfiles(cfg ProfileConfig) (stop func() error, err error) {
	var (
		cpuF   *os.File
		traceF *os.File
	)
	fail := func(err error) (func() error, error) {
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		return nil, err
	}

	if cfg.CPUPath != "" {
		cpuF, err = os.Create(cfg.CPUPath)
		if err != nil {
			return fail(fmt.Errorf("runner: cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			return fail(fmt.Errorf("runner: cpu profile: %w", err))
		}
	}
	if cfg.TracePath != "" {
		traceF, err = os.Create(cfg.TracePath)
		if err != nil {
			return fail(fmt.Errorf("runner: trace: %w", err))
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			return fail(fmt.Errorf("runner: trace: %w", err))
		}
	}

	memPath := cfg.MemPath
	return func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if traceF != nil {
			trace.Stop()
			keep(traceF.Close())
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			keep(cpuF.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				keep(fmt.Errorf("runner: mem profile: %w", err))
			} else {
				runtime.GC() // materialize live-object statistics
				keep(pprof.WriteHeapProfile(f))
				keep(f.Close())
			}
		}
		return firstErr
	}, nil
}
