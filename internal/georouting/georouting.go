// Package georouting implements geographic routing over robot positions —
// the application the paper's conclusion motivates: "CoCoA coordinates are
// good enough to enable scalable geographic routing of messages and data
// among the robots or to a controller", citing Bose et al.'s
// greedy-face-greedy (GFG) algorithm [23].
//
// Two strategies are provided:
//
//   - Greedy: forward to the neighbor geographically closest to the
//     destination; fails at local minima (voids).
//   - GFG: greedy with face-routing recovery on the Gabriel-graph
//     planarization, which guarantees delivery on connected unit-disk
//     graphs when positions are exact. With CoCoA's *estimated* positions
//     the guarantee softens — quantifying that gap is exactly the
//     experiment the paper proposes.
//
// The router deliberately separates the two position sets involved: the
// true positions define connectivity (radio reality), while the believed
// positions drive forwarding decisions (what the robots actually know).
package georouting

import (
	"fmt"
	"math"

	"cocoa/internal/geom"
)

// Graph is a connectivity + belief snapshot of the robot network.
type Graph struct {
	truth  []geom.Vec2
	belief []geom.Vec2
	rangeM float64

	neighbors [][]int // unit-disk adjacency from true positions
	gabriel   [][]int // Gabriel-graph subset, computed on beliefs
}

// NewGraph builds a routing snapshot. truth defines real connectivity
// (radio range rangeM); belief is what each robot thinks its position is —
// pass truth twice to model perfect localization.
func NewGraph(truth, belief []geom.Vec2, rangeM float64) (*Graph, error) {
	if len(truth) != len(belief) {
		return nil, fmt.Errorf("georouting: %d true positions vs %d beliefs",
			len(truth), len(belief))
	}
	if rangeM <= 0 {
		return nil, fmt.Errorf("georouting: non-positive range %v", rangeM)
	}
	g := &Graph{
		truth:  append([]geom.Vec2(nil), truth...),
		belief: append([]geom.Vec2(nil), belief...),
		rangeM: rangeM,
	}
	g.buildAdjacency()
	g.buildGabriel()
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.truth) }

// Neighbors returns node i's true radio neighbors.
func (g *Graph) Neighbors(i int) []int {
	return append([]int(nil), g.neighbors[i]...)
}

// Belief returns node i's believed position.
func (g *Graph) Belief(i int) geom.Vec2 { return g.belief[i] }

func (g *Graph) buildAdjacency() {
	n := len(g.truth)
	g.neighbors = make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.truth[i].Dist(g.truth[j]) <= g.rangeM {
				g.neighbors[i] = append(g.neighbors[i], j)
				g.neighbors[j] = append(g.neighbors[j], i)
			}
		}
	}
}

// buildGabriel keeps edge (u,v) only if no common radio neighbor w lies
// strictly inside the circle with diameter (u,v) — computed on believed
// positions, because that is all the robots know.
func (g *Graph) buildGabriel() {
	n := len(g.truth)
	g.gabriel = make([][]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.neighbors[u] {
			if g.keepGabriel(u, v) {
				g.gabriel[u] = append(g.gabriel[u], v)
			}
		}
	}
}

func (g *Graph) keepGabriel(u, v int) bool {
	mid := g.belief[u].Add(g.belief[v]).Scale(0.5)
	r2 := g.belief[u].Dist(g.belief[v]) / 2
	for _, w := range g.neighbors[u] {
		if w == v {
			continue
		}
		if g.belief[w].Dist(mid) < r2-1e-12 {
			return false
		}
	}
	return true
}

// Outcome describes one routing attempt.
type Outcome struct {
	Delivered bool
	Hops      int
	Path      []int
	// Recovered counts hops spent in face-routing recovery (GFG only).
	Recovered int
}

// Greedy routes from src to dst using pure greedy forwarding on believed
// positions over the true connectivity graph.
func (g *Graph) Greedy(src, dst int) (Outcome, error) {
	if err := g.check(src, dst); err != nil {
		return Outcome{}, err
	}
	out := Outcome{Path: []int{src}}
	cur := src
	target := g.belief[dst]
	for out.Hops = 0; out.Hops <= g.N(); out.Hops++ {
		if cur == dst {
			out.Delivered = true
			return out, nil
		}
		next, ok := g.greedyStep(cur, dst, target)
		if !ok {
			return out, nil // local minimum
		}
		cur = next
		out.Path = append(out.Path, cur)
	}
	return out, nil
}

// greedyStep picks the neighbor strictly closer (in belief space) to the
// target than the current node. The destination itself always wins.
func (g *Graph) greedyStep(cur, dst int, target geom.Vec2) (int, bool) {
	bestD := g.belief[cur].Dist(target)
	best := -1
	for _, nb := range g.neighbors[cur] {
		if nb == dst {
			return dst, true
		}
		if d := g.belief[nb].Dist(target); d < bestD {
			bestD, best = d, nb
		}
	}
	if best == -1 {
		return 0, false
	}
	return best, true
}

// GFG routes with greedy forwarding plus face-routing recovery (Bose et
// al. [23]): on a local minimum, the packet walks the Gabriel-planarized
// graph with the right-hand rule until it reaches a node closer to the
// destination than the minimum, then resumes greedy.
func (g *Graph) GFG(src, dst int) (Outcome, error) {
	if err := g.check(src, dst); err != nil {
		return Outcome{}, err
	}
	out := Outcome{Path: []int{src}}
	cur := src
	target := g.belief[dst]
	maxHops := 4*g.N() + 16 // face walks revisit nodes; bound generously

	recovering := false
	var minDist float64 // belief distance at the local minimum
	prev := -1          // previous node during a face walk

	for out.Hops = 0; out.Hops <= maxHops; out.Hops++ {
		if cur == dst {
			out.Delivered = true
			return out, nil
		}
		if !recovering {
			next, ok := g.greedyStep(cur, dst, target)
			if ok {
				cur = next
				out.Path = append(out.Path, cur)
				continue
			}
			// Enter recovery.
			recovering = true
			minDist = g.belief[cur].Dist(target)
			prev = -1
		}
		// Face walk step.
		next, ok := g.faceStep(cur, prev, target)
		if !ok {
			return out, nil // isolated on the planar graph
		}
		prev, cur = cur, next
		out.Path = append(out.Path, cur)
		out.Recovered++
		if g.belief[cur].Dist(target) < minDist {
			recovering = false // progress made; resume greedy
		}
	}
	return out, nil
}

// faceStep advances one hop along the current face using the right-hand
// rule on the Gabriel graph: take the neighbor that is the first
// counter-clockwise from the edge we arrived on.
func (g *Graph) faceStep(cur, prev int, target geom.Vec2) (int, bool) {
	nbrs := g.gabriel[cur]
	if len(nbrs) == 0 {
		return 0, false
	}
	// Reference direction: back along the arrival edge, or toward the
	// destination when entering recovery.
	var refAngle float64
	if prev >= 0 {
		refAngle = g.belief[prev].Sub(g.belief[cur]).Heading()
	} else {
		refAngle = target.Sub(g.belief[cur]).Heading()
	}
	best := -1
	bestDelta := math.Inf(1)
	for _, nb := range nbrs {
		if nb == prev && len(nbrs) > 1 {
			continue // only bounce back when there is no other option
		}
		a := g.belief[nb].Sub(g.belief[cur]).Heading()
		delta := math.Mod(a-refAngle+4*math.Pi, 2*math.Pi)
		if delta == 0 {
			delta = 2 * math.Pi
		}
		if delta < bestDelta {
			bestDelta, best = delta, nb
		}
	}
	if best == -1 {
		best = prev // dead end: bounce
	}
	return best, true
}

func (g *Graph) check(src, dst int) error {
	if src < 0 || src >= g.N() || dst < 0 || dst >= g.N() {
		return fmt.Errorf("georouting: node out of range (src=%d dst=%d n=%d)",
			src, dst, g.N())
	}
	return nil
}

// Stats aggregates outcomes over many routing attempts.
type Stats struct {
	Attempts   int
	Delivered  int
	TotalHops  int
	Recoveries int
}

// DeliveryRate returns the fraction of delivered packets.
func (s Stats) DeliveryRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Attempts)
}

// MeanHops returns the average hop count over delivered packets.
func (s Stats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Delivered)
}

// Record folds one outcome into the stats.
func (s *Stats) Record(o Outcome) {
	s.Attempts++
	if o.Delivered {
		s.Delivered++
		s.TotalHops += o.Hops
	}
	s.Recoveries += o.Recovered
}
