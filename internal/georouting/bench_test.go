package georouting

import (
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	rng := sim.NewRNG(42).Stream("bench")
	pts := make([]geom.Vec2, 50)
	for i := range pts {
		pts[i] = geom.Vec2{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
	}
	g, err := NewGraph(pts, pts, 50)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkGreedy(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Greedy(i%g.N(), (i*7+3)%g.N())
	}
}

func BenchmarkGFG(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.GFG(i%g.N(), (i*7+3)%g.N())
	}
}
