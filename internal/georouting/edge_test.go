package georouting

import (
	"testing"

	"cocoa/internal/geom"
)

func TestNewGraphValidationTable(t *testing.T) {
	two := []geom.Vec2{{X: 0}, {X: 10}}
	cases := []struct {
		name   string
		truth  []geom.Vec2
		belief []geom.Vec2
		rangeM float64
		ok     bool
	}{
		{"ok", two, two, 20, true},
		{"length mismatch", two, two[:1], 20, false},
		{"zero range", two, two, 0, false},
		{"negative range", two, two, -5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewGraph(tc.truth, tc.belief, tc.rangeM)
			if (err == nil) != tc.ok {
				t.Errorf("NewGraph err = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestBeliefAccessor(t *testing.T) {
	truth := []geom.Vec2{{X: 0}, {X: 10}}
	belief := []geom.Vec2{{X: 1, Y: 2}, {X: 9, Y: -1}}
	g, err := NewGraph(truth, belief, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range belief {
		if got := g.Belief(i); got != want {
			t.Errorf("Belief(%d) = %v, want %v", i, got, want)
		}
	}
}

// Both routers must reject out-of-range endpoints the same way.
func TestRoutersRejectBadEndpoints(t *testing.T) {
	pos := []geom.Vec2{{X: 0}, {X: 10}, {X: 20}}
	g, err := NewGraph(pos, pos, 15)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		src, dst int
	}{
		{"negative src", -1, 1},
		{"src too large", 3, 1},
		{"negative dst", 0, -1},
		{"dst too large", 0, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := g.Greedy(tc.src, tc.dst); err == nil {
				t.Error("Greedy accepted out-of-range endpoint")
			}
			if _, err := g.GFG(tc.src, tc.dst); err == nil {
				t.Error("GFG accepted out-of-range endpoint")
			}
		})
	}
}

// Routing to the current node is a zero-hop delivery for both routers.
func TestRouteToSelf(t *testing.T) {
	pos := []geom.Vec2{{X: 0}, {X: 10}}
	g, err := NewGraph(pos, pos, 15)
	if err != nil {
		t.Fatal(err)
	}
	for name, route := range map[string]func(int, int) (Outcome, error){
		"greedy": g.Greedy, "gfg": g.GFG,
	} {
		out, err := route(0, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Delivered || out.Hops != 0 {
			t.Errorf("%s to self: %+v, want 0-hop delivery", name, out)
		}
	}
}

// A destination outside everyone's radio range is undeliverable: greedy
// stops at a local minimum, GFG exhausts recovery — neither may loop
// forever or report success.
func TestUnreachableDestination(t *testing.T) {
	pos := []geom.Vec2{{X: 0}, {X: 10}, {X: 1000}}
	g, err := NewGraph(pos, pos, 15)
	if err != nil {
		t.Fatal(err)
	}
	for name, route := range map[string]func(int, int) (Outcome, error){
		"greedy": g.Greedy, "gfg": g.GFG,
	} {
		out, err := route(0, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Delivered {
			t.Errorf("%s delivered to an unreachable node: %+v", name, out)
		}
	}
}
