package georouting

import (
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// perfect builds a graph where beliefs equal truth.
func perfect(t *testing.T, pts []geom.Vec2, rangeM float64) *Graph {
	t.Helper()
	g, err := NewGraph(pts, pts, rangeM)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphValidation(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 1}}
	if _, err := NewGraph(pts, pts[:1], 10); err == nil {
		t.Error("accepted mismatched slices")
	}
	if _, err := NewGraph(pts, pts, 0); err == nil {
		t.Error("accepted zero range")
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 5}, {X: 11}, {X: 30}}
	g := perfect(t, pts, 10)
	// 0-1 (5m), 1-2 (6m) connected; 2-3 (19m) not.
	want := map[int][]int{0: {1}, 1: {0, 2}, 2: {1}, 3: nil}
	for i, w := range want {
		got := g.Neighbors(i)
		if len(got) != len(w) {
			t.Errorf("Neighbors(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 5}}
	g := perfect(t, pts, 10)
	n := g.Neighbors(0)
	if len(n) != 1 {
		t.Fatal("setup")
	}
	n[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Error("Neighbors leaks internal slice")
	}
}

func TestGreedyLine(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 8}, {X: 16}, {X: 24}}
	g := perfect(t, pts, 10)
	out, err := g.Greedy(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Hops != 3 {
		t.Fatalf("greedy line: %+v", out)
	}
	wantPath := []int{0, 1, 2, 3}
	for i, p := range wantPath {
		if out.Path[i] != p {
			t.Fatalf("path = %v, want %v", out.Path, wantPath)
		}
	}
}

func TestGreedySelfDelivery(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 5}}
	g := perfect(t, pts, 10)
	out, err := g.Greedy(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Hops != 0 {
		t.Errorf("self delivery: %+v", out)
	}
}

func TestGreedyOutOfRangeNodes(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 5}}
	g := perfect(t, pts, 10)
	if _, err := g.Greedy(-1, 1); err == nil {
		t.Error("accepted negative src")
	}
	if _, err := g.Greedy(0, 5); err == nil {
		t.Error("accepted dst out of range")
	}
}

// A classic void with radio range 24 m: node 1 is a cul-de-sac that greedy
// enters (it is closest to the destination among 0's neighbors) and cannot
// leave; the only route to the destination 2 goes over the northern ridge
// 3-4-5-6.
//
//	3(0,20) - 4(20,30) - 5(40,30) - 6(54,22)
//	   |                               |
//	0(0,0) --- 1(18,0)    void      2(54,0)
//
// Edge check at range 24: 0-1 (18), 0-3 (20), 3-4 (22.4), 4-5 (20),
// 5-6 (16.1), 6-2 (22); node 1 reaches only node 0 (all others > 24 m).
func voidTopology() []geom.Vec2 {
	return []geom.Vec2{
		{X: 0, Y: 0},   // 0: source
		{X: 18, Y: 0},  // 1: the dead end
		{X: 54, Y: 0},  // 2: destination
		{X: 0, Y: 20},  // 3
		{X: 20, Y: 30}, // 4
		{X: 40, Y: 30}, // 5
		{X: 54, Y: 22}, // 6
	}
}

func TestVoidTopologyIsAVoid(t *testing.T) {
	g := perfect(t, voidTopology(), 24)
	if got := g.Neighbors(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("node 1 neighbors = %v, want [0] only", got)
	}
	if !connected(g) {
		t.Fatal("void topology must still be connected")
	}
}

func TestGreedyStuckAtVoid(t *testing.T) {
	g := perfect(t, voidTopology(), 24)
	out, err := g.Greedy(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered {
		t.Fatalf("greedy crossed the void: %+v", out)
	}
	if last := out.Path[len(out.Path)-1]; last != 1 {
		t.Errorf("greedy stuck at %d, want the cul-de-sac 1", last)
	}
}

func TestGFGRecoversAroundVoid(t *testing.T) {
	g := perfect(t, voidTopology(), 24)
	out, err := g.GFG(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered {
		t.Fatalf("GFG failed to cross the void: %+v", out)
	}
	if out.Recovered == 0 {
		t.Error("GFG delivered without entering recovery; the topology should force it")
	}
}

func TestGFGOnLineMatchesGreedy(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 8}, {X: 16}, {X: 24}}
	g := perfect(t, pts, 10)
	out, err := g.GFG(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Hops != 3 || out.Recovered != 0 {
		t.Errorf("GFG on line: %+v", out)
	}
}

func TestDisconnectedUndeliverable(t *testing.T) {
	pts := []geom.Vec2{{X: 0}, {X: 5}, {X: 1000}}
	g := perfect(t, pts, 10)
	out, err := g.GFG(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered {
		t.Error("delivered across a partition")
	}
}

// On random connected networks with perfect positions, GFG must deliver
// (Bose et al.'s guarantee on unit-disk graphs); greedy may not.
func TestGFGDeliveryOnRandomNetworks(t *testing.T) {
	rng := sim.NewRNG(42).Stream("geo")
	const nodes = 40
	const rangeM = 45.0
	for trial := 0; trial < 10; trial++ {
		pts := make([]geom.Vec2, nodes)
		for i := range pts {
			pts[i] = geom.Vec2{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
		}
		g := perfect(t, pts, rangeM)
		if !connected(g) {
			continue
		}
		var gfg, greedy Stats
		for s := 0; s < nodes; s += 7 {
			for d := 3; d < nodes; d += 11 {
				if s == d {
					continue
				}
				o1, err := g.GFG(s, d)
				if err != nil {
					t.Fatal(err)
				}
				gfg.Record(o1)
				o2, err := g.Greedy(s, d)
				if err != nil {
					t.Fatal(err)
				}
				greedy.Record(o2)
			}
		}
		if gfg.DeliveryRate() < 1.0 {
			t.Errorf("trial %d: GFG delivery %.2f < 1.0 on connected graph",
				trial, gfg.DeliveryRate())
		}
		if gfg.DeliveryRate() < greedy.DeliveryRate() {
			t.Errorf("trial %d: GFG (%v) worse than greedy (%v)",
				trial, gfg.DeliveryRate(), greedy.DeliveryRate())
		}
	}
}

// connected checks graph connectivity by BFS over true adjacency.
func connected(g *Graph) bool {
	n := g.N()
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}

// Position error degrades routing gracefully: with mild noise the delivery
// rate stays high.
func TestRoutingWithNoisyBeliefs(t *testing.T) {
	rng := sim.NewRNG(7).Stream("noise")
	const nodes = 40
	const rangeM = 60.0
	truth := make([]geom.Vec2, nodes)
	belief := make([]geom.Vec2, nodes)
	for i := range truth {
		truth[i] = geom.Vec2{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
		// ~6 m CoCoA-scale error.
		belief[i] = truth[i].Add(geom.Vec2{X: rng.Normal(0, 5), Y: rng.Normal(0, 5)})
	}
	g, err := NewGraph(truth, belief, rangeM)
	if err != nil {
		t.Fatal(err)
	}
	if !connected(g) {
		t.Skip("random graph disconnected for this seed")
	}
	var st Stats
	for s := 0; s < nodes; s += 3 {
		for d := 1; d < nodes; d += 5 {
			if s == d {
				continue
			}
			o, err := g.GFG(s, d)
			if err != nil {
				t.Fatal(err)
			}
			st.Record(o)
		}
	}
	if st.DeliveryRate() < 0.85 {
		t.Errorf("GFG with 5 m noise delivered only %.0f%%", 100*st.DeliveryRate())
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.DeliveryRate() != 0 || s.MeanHops() != 0 {
		t.Error("empty stats not zero")
	}
	s.Record(Outcome{Delivered: true, Hops: 4})
	s.Record(Outcome{Delivered: false, Recovered: 2})
	if s.DeliveryRate() != 0.5 {
		t.Errorf("DeliveryRate = %v", s.DeliveryRate())
	}
	if s.MeanHops() != 4 {
		t.Errorf("MeanHops = %v", s.MeanHops())
	}
	if s.Recoveries != 2 {
		t.Errorf("Recoveries = %v", s.Recoveries)
	}
}
