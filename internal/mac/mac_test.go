package mac

import (
	"testing"
	"testing/quick"

	"cocoa/internal/geom"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// fakeEndpoint is a minimal Endpoint for MAC tests.
type fakeEndpoint struct {
	pos       geom.Vec2
	listening bool
	txDepth   int
	rxDepth   int
	got       []Frame
	rssis     []float64
}

var _ Endpoint = (*fakeEndpoint)(nil)

func (e *fakeEndpoint) Position() geom.Vec2 { return e.pos }
func (e *fakeEndpoint) Listening() bool     { return e.listening && e.txDepth == 0 }
func (e *fakeEndpoint) BeginTx()            { e.txDepth++ }
func (e *fakeEndpoint) EndTx()              { e.txDepth-- }
func (e *fakeEndpoint) BeginRx()            { e.rxDepth++ }
func (e *fakeEndpoint) EndRx()              { e.rxDepth-- }
func (e *fakeEndpoint) Deliver(f Frame, rssi float64) {
	e.got = append(e.got, f)
	e.rssis = append(e.rssis, rssi)
}

func newTestMedium(t *testing.T, seed int64) (*sim.Simulator, *Medium) {
	t.Helper()
	s := sim.New()
	cfg := DefaultConfig(radio.DefaultModel())
	med, err := NewMedium(s, cfg, sim.NewRNG(seed).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	return s, med
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(radio.DefaultModel()).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := DefaultConfig(radio.DefaultModel())
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero slot", func(c *Config) { c.SlotS = 0 }},
		{"bad cw", func(c *Config) { c.MinCW = 64; c.MaxCW = 32 }},
		{"zero attempts", func(c *Config) { c.MaxAttempts = 0 }},
		{"negative overhead", func(c *Config) { c.OverheadBytes = -1 }},
		{"bad radio", func(c *Config) { c.Model.BitrateBps = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := base
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("accepted invalid config")
			}
		})
	}
}

func TestUnknownSender(t *testing.T) {
	_, med := newTestMedium(t, 1)
	if err := med.Send(99, Frame{Bytes: 10}); err == nil {
		t.Fatal("expected error for unknown sender")
	}
}

func TestBroadcastDelivery(t *testing.T) {
	s, med := newTestMedium(t, 1)
	tx := &fakeEndpoint{pos: geom.Vec2{X: 0, Y: 0}, listening: true}
	rx1 := &fakeEndpoint{pos: geom.Vec2{X: 10, Y: 0}, listening: true}
	rx2 := &fakeEndpoint{pos: geom.Vec2{X: 0, Y: 25}, listening: true}
	med.Attach(0, tx)
	med.Attach(1, rx1)
	med.Attach(2, rx2)

	if err := med.Send(0, Frame{Kind: 7, Bytes: 56, Payload: "beacon"}); err != nil {
		t.Fatal(err)
	}
	s.Run()

	for i, rx := range []*fakeEndpoint{rx1, rx2} {
		if len(rx.got) != 1 {
			t.Fatalf("rx%d got %d frames, want 1", i+1, len(rx.got))
		}
		f := rx.got[0]
		if f.From != 0 || f.Kind != 7 || f.Payload != "beacon" {
			t.Errorf("rx%d frame = %+v", i+1, f)
		}
		if rx.rssis[0] < med.cfg.Model.SensitivityDBm {
			t.Errorf("rx%d delivered below sensitivity: %v", i+1, rx.rssis[0])
		}
	}
	if len(tx.got) != 0 {
		t.Error("sender received its own frame")
	}
	st := med.Stats()
	if st.Sent != 1 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	s, med := newTestMedium(t, 2)
	tx := &fakeEndpoint{pos: geom.Vec2{X: 0, Y: 0}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 5000, Y: 0}, listening: true}
	med.Attach(0, tx)
	med.Attach(1, rx)
	if err := med.Send(0, Frame{Bytes: 56}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(rx.got) != 0 {
		t.Fatalf("got %d frames at 5 km, want 0", len(rx.got))
	}
	if med.Stats().BelowSense != 1 {
		t.Errorf("stats = %+v, want BelowSense=1", med.Stats())
	}
}

func TestSleepingReceiverMissesFrame(t *testing.T) {
	s, med := newTestMedium(t, 3)
	tx := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: false} // asleep
	med.Attach(0, tx)
	med.Attach(1, rx)
	if err := med.Send(0, Frame{Bytes: 56}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(rx.got) != 0 {
		t.Fatal("sleeping receiver decoded a frame")
	}
	if med.Stats().MissedAsleep != 1 {
		t.Errorf("stats = %+v, want MissedAsleep=1", med.Stats())
	}
}

func TestSleepMidFrameLosesFrame(t *testing.T) {
	s, med := newTestMedium(t, 4)
	tx := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: true}
	med.Attach(0, tx)
	med.Attach(1, rx)
	if err := med.Send(0, Frame{Bytes: 1000}); err != nil {
		t.Fatal(err)
	}
	// Put the receiver to sleep in the middle of the frame airtime.
	s.Schedule(0.001, func() { rx.listening = false })
	s.Run()
	if len(rx.got) != 0 {
		t.Fatal("receiver that slept mid-frame decoded it")
	}
}

func TestCollisionBothLost(t *testing.T) {
	s, med := newTestMedium(t, 5)
	// Two senders equidistant from the receiver transmit simultaneously:
	// comparable RSSI, no capture, both lost.
	a := &fakeEndpoint{pos: geom.Vec2{X: -10}, listening: true}
	b := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
	med.Attach(0, a)
	med.Attach(1, b)
	med.Attach(2, rx)

	// Bypass carrier sensing race by scheduling both sends at t=0; the
	// second sender has not yet sensed the first (same instant), which is
	// the classic synchronized-collision case.
	if err := med.Send(0, Frame{Bytes: 56}); err != nil {
		t.Fatal(err)
	}
	if err := med.Send(1, Frame{Bytes: 56}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// The second Send sensed the first transmission (already in flight at
	// the same instant) and backed off, OR both were on air and collided.
	// Either way the receiver must end with at most 2 and at least 0
	// frames, and stats must be consistent.
	st := med.Stats()
	if st.Sent < 1 {
		t.Fatalf("no transmissions: %+v", st)
	}
	if got := len(rx.got); got != st.Delivered-deliveredTo(a, b) {
		t.Logf("rx got %d frames, stats %+v", got, st)
	}
}

func deliveredTo(eps ...*fakeEndpoint) int {
	n := 0
	for _, e := range eps {
		n += len(e.got)
	}
	return n
}

func TestForcedCollision(t *testing.T) {
	// Build a medium with zero shadowing so RSSI is deterministic, then
	// force two exactly-simultaneous transmissions by disabling carrier
	// sense via enormous sensitivity... instead, simpler: two senders far
	// from each other (hidden terminals) and a receiver in the middle.
	s := sim.New()
	model := radio.DefaultModel()
	model.ShadowSigmaDB = 0
	model.DeepFadeProb = 0
	// Shrink range so the two senders cannot hear each other, creating a
	// hidden-terminal collision at the middle receiver.
	model.SensitivityDBm = -75
	cfg := DefaultConfig(model)
	med, err := NewMedium(s, cfg, sim.NewRNG(6).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	rangeM := model.MeanRange()
	a := &fakeEndpoint{pos: geom.Vec2{X: 0}, listening: true}
	b := &fakeEndpoint{pos: geom.Vec2{X: 1.8 * rangeM}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 0.9 * rangeM}, listening: true}
	med.Attach(0, a)
	med.Attach(1, b)
	med.Attach(2, rx)

	if err := med.Send(0, Frame{Bytes: 256}); err != nil {
		t.Fatal(err)
	}
	if err := med.Send(1, Frame{Bytes: 256}); err != nil {
		t.Fatal(err)
	}
	s.Run()

	if len(rx.got) != 0 {
		t.Fatalf("hidden-terminal frames both decoded: %d", len(rx.got))
	}
	if med.Stats().Collided != 2 {
		t.Errorf("Collided = %d, want 2", med.Stats().Collided)
	}
}

func TestCaptureStrongFrameSurvives(t *testing.T) {
	s := sim.New()
	model := radio.DefaultModel()
	model.ShadowSigmaDB = 0
	model.DeepFadeProb = 0
	model.SensitivityDBm = -75 // hidden terminals again
	cfg := DefaultConfig(model)
	med, err := NewMedium(s, cfg, sim.NewRNG(7).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	rangeM := model.MeanRange()
	near := &fakeEndpoint{pos: geom.Vec2{X: 0}, listening: true}
	far := &fakeEndpoint{pos: geom.Vec2{X: 1.05 * rangeM}, listening: true}
	// Receiver very close to "near": its frame is >10 dB stronger.
	rx := &fakeEndpoint{pos: geom.Vec2{X: 5}, listening: true}
	med.Attach(0, near)
	med.Attach(1, far)
	med.Attach(2, rx)

	if err := med.Send(0, Frame{Kind: 1, Bytes: 256}); err != nil {
		t.Fatal(err)
	}
	if err := med.Send(1, Frame{Kind: 2, Bytes: 256}); err != nil {
		t.Fatal(err)
	}
	s.Run()

	if len(rx.got) != 1 || rx.got[0].Kind != 1 {
		t.Fatalf("capture failed: got %+v", rx.got)
	}
}

func TestCarrierSenseDefersSecondSend(t *testing.T) {
	s, med := newTestMedium(t, 8)
	a := &fakeEndpoint{pos: geom.Vec2{X: 0}, listening: true}
	b := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 20}, listening: true}
	med.Attach(0, a)
	med.Attach(1, b)
	med.Attach(2, rx)

	if err := med.Send(0, Frame{Kind: 1, Bytes: 1400}); err != nil {
		t.Fatal(err)
	}
	// b senses a's long frame shortly after it starts and must defer,
	// then deliver cleanly after backoff.
	s.Schedule(0.0005, func() {
		if err := med.Send(1, Frame{Kind: 2, Bytes: 56}); err != nil {
			t.Error(err)
		}
	})
	s.Run()

	if got := len(rx.got); got != 2 {
		t.Fatalf("rx got %d frames, want 2 (CSMA should avoid the collision): %+v",
			got, med.Stats())
	}
	if med.Stats().BackoffEvents == 0 {
		t.Error("expected at least one backoff event")
	}
}

func TestSelfBusyWhileTransmitting(t *testing.T) {
	s, med := newTestMedium(t, 9)
	a := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: true}
	med.Attach(0, a)
	med.Attach(1, rx)

	// Two back-to-back sends from the same node: the second must defer
	// until the first completes (own-transmission carrier sense).
	if err := med.Send(0, Frame{Kind: 1, Bytes: 1400}); err != nil {
		t.Fatal(err)
	}
	s.Schedule(0.0001, func() {
		if err := med.Send(0, Frame{Kind: 2, Bytes: 56}); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if got := len(rx.got); got != 2 {
		t.Fatalf("rx got %d frames, want 2; stats %+v", got, med.Stats())
	}
}

func TestDropAfterMaxAttempts(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(radio.DefaultModel())
	cfg.MaxAttempts = 2
	med, err := NewMedium(s, cfg, sim.NewRNG(10).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	a := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
	b := &fakeEndpoint{pos: geom.Vec2{X: 5}, listening: true}
	med.Attach(0, a)
	med.Attach(1, b)

	// Occupy the channel with a very long frame, then have b try to send:
	// with only 2 attempts and ~ms backoffs it gives up.
	if err := med.Send(0, Frame{Bytes: 100000}); err != nil {
		t.Fatal(err)
	}
	s.Schedule(0.001, func() {
		if err := med.Send(1, Frame{Bytes: 56}); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if med.Stats().DroppedBusy != 1 {
		t.Errorf("DroppedBusy = %d, want 1; stats %+v", med.Stats().DroppedBusy, med.Stats())
	}
}

func TestEnergyBracketsBalanced(t *testing.T) {
	s, med := newTestMedium(t, 11)
	eps := make([]*fakeEndpoint, 6)
	for i := range eps {
		eps[i] = &fakeEndpoint{pos: geom.Vec2{X: float64(i * 15)}, listening: true}
		med.Attach(i, eps[i])
	}
	for i := range eps {
		if err := med.Send(i, Frame{Bytes: 56}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, e := range eps {
		if e.txDepth != 0 || e.rxDepth != 0 {
			t.Errorf("endpoint %d has unbalanced brackets: tx=%d rx=%d",
				i, e.txDepth, e.rxDepth)
		}
	}
}

func TestAirtimeStats(t *testing.T) {
	s, med := newTestMedium(t, 12)
	a := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
	med.Attach(0, a)
	if err := med.Send(0, Frame{Bytes: 216}); err != nil { // 216+34 = 250B -> 1ms
		t.Fatal(err)
	}
	s.Run()
	st := med.Stats()
	if st.BytesOnAir != 250 {
		t.Errorf("BytesOnAir = %d, want 250", st.BytesOnAir)
	}
	wantAir := med.cfg.PreambleS + 0.001
	if diff := st.AirtimeS - wantAir; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("AirtimeS = %v, want %v", st.AirtimeS, wantAir)
	}
}

// Property: every (transmission, receiver) pair resolves to exactly one
// outcome — delivered, collided, below sensitivity, or missed asleep — so
// the counters conserve: their sum equals Sent * (stations - 1).
func TestMACAccountingConservation(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		s := sim.New()
		med, err := NewMedium(s, DefaultConfig(radio.DefaultModel()),
			sim.NewRNG(seed).Stream("mac"))
		if err != nil {
			return false
		}
		eps := make([]*fakeEndpoint, len(raw))
		for i, r := range raw {
			eps[i] = &fakeEndpoint{
				pos:       geom.Vec2{X: float64(r) * 2, Y: float64(r^0x5a) * 2},
				listening: r%5 != 0, // some stations asleep
			}
			med.Attach(i, eps[i])
		}
		// A burst of sends from varying stations at varying times.
		for i, r := range raw {
			i, r := i, r
			s.Schedule(float64(r)/100, func() {
				_ = med.Send(i, Frame{Bytes: 56 + int(r)})
			})
		}
		s.Run()
		st := med.Stats()
		want := st.Sent * (len(raw) - 1)
		got := st.Delivered + st.Collided + st.BelowSense + st.MissedAsleep
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: TxRequests always equals Sent plus DroppedBusy plus any
// requests still backing off — after the simulator drains, the first two
// must account for everything.
func TestMACRequestAccounting(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%12) + 2
		s := sim.New()
		med, err := NewMedium(s, DefaultConfig(radio.DefaultModel()),
			sim.NewRNG(seed).Stream("mac"))
		if err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			ep := &fakeEndpoint{pos: geom.Vec2{X: float64(i) * 3}, listening: true}
			med.Attach(i, ep)
		}
		for i := 0; i < count; i++ {
			i := i
			s.Schedule(float64(i)*1e-4, func() {
				_ = med.Send(i, Frame{Bytes: 700})
			})
		}
		s.Run()
		st := med.Stats()
		return st.TxRequests == st.Sent+st.DroppedBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
