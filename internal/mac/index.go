package mac

import (
	"math"
	"slices"

	"cocoa/internal/geom"
)

// This file implements the medium's optional spatial neighbor index: a
// uniform grid over station positions (and over in-flight transmission
// origins) that lets transmit and carrierBusy visit only the stations that
// can possibly matter, instead of every attached station.
//
// Correctness contract (the reason the index can be byte-identical to the
// O(n) scan, see DESIGN.md §12):
//
//   - The cell side is max(senseFar, plausFar) + Config.IndexSlackM, where
//     senseFar/plausFar are the PR 3 rssiGate far brackets. Any two points
//     in non-adjacent cells are at least one full cell side apart, so every
//     station outside the 3x3 neighborhood of a transmitter is — even after
//     drifting up to IndexSlackM from its indexed position — beyond
//     plausFar, exactly the population the scan path bulk-skips without
//     drawing noise. The candidates inside the 3x3 neighborhood are a
//     superset of all stations the scan would actually sample.
//   - Candidates are visited in ascending station ID, the same order the
//     scan uses, so the per-receiver draws from the MAC RNG stream land on
//     the same receivers in the same order.
//   - collect pre-prunes candidates whose indexed position proves them
//     beyond plausFar even after the maximal IndexSlackM drift. A pruned
//     station would take beginReception's distance-gate branch, which
//     draws no randomness, so folding it into transmit's bulk BelowSense
//     skip changes neither the RNG stream nor any non-volatile counter.
//   - carrierBusy needs only transmissions whose mean signal can reach
//     sensitivity (distance < senseFar <= cell side); transmissions are
//     bucketed by their frozen origin, so the same 3x3 query is complete.
//     The station's own in-flight transmissions are tracked separately
//     (station.own) because the scan reports them busy at any distance.

// gridKey addresses one cell of the uniform spatial grid.
type gridKey struct{ x, y int64 }

// maxCellCoord clamps cell coordinates so float->int conversion is always
// defined. Positions this far out (≥ 2^40 cell sides) collapse onto the
// boundary cell; merging cells only ever widens a 3x3 candidate set, so the
// superset property survives the clamp.
const maxCellCoord = 1 << 40

// denseSpanCap bounds each axis of a bucketGrid's dense window. A bounded
// deployment arena spans a few dozen cells, so the window comfortably holds
// every real position; adversarial coordinates (fuzzing, the clamp above)
// fall through to the overflow map instead of growing the array.
const denseSpanCap = 256

// bucketGrid stores per-cell buckets with two tiers: a dense row-major
// window covering the cells actually observed (grown on demand, the hot
// path is a bounds check plus an array load), and an overflow hash map for
// cells outside a cap-bounded window. Transmit-path queries probe 9 cells
// per frame, so avoiding a hash per probe is what makes the index cheap.
type bucketGrid[T any] struct {
	haveWin    bool
	minX, minY int64
	w, h       int64
	dense      [][]T
	overflow   map[gridKey][]T
}

// get returns the bucket for k (nil when empty).
func (bg *bucketGrid[T]) get(k gridKey) []T {
	x, y := k.x-bg.minX, k.y-bg.minY
	if bg.haveWin && x >= 0 && x < bg.w && y >= 0 && y < bg.h {
		return bg.dense[y*bg.w+x]
	}
	if bg.overflow == nil {
		return nil
	}
	return bg.overflow[k]
}

// put replaces the bucket for k, growing the dense window to include k when
// the resulting span stays within denseSpanCap per axis.
func (bg *bucketGrid[T]) put(k gridKey, b []T) {
	x, y := k.x-bg.minX, k.y-bg.minY
	if bg.haveWin && x >= 0 && x < bg.w && y >= 0 && y < bg.h {
		bg.dense[y*bg.w+x] = b
		return
	}
	if len(b) == 0 {
		// Clearing a cell that was never dense: it can only live in the
		// overflow map.
		if bg.overflow != nil {
			delete(bg.overflow, k)
		}
		return
	}
	if bg.grow(k) {
		bg.dense[(k.y-bg.minY)*bg.w+(k.x-bg.minX)] = b
		return
	}
	if bg.overflow == nil {
		bg.overflow = make(map[gridKey][]T)
	}
	bg.overflow[k] = b
}

// forEach calls fn for every non-empty bucket, dense window first.
func (bg *bucketGrid[T]) forEach(fn func(gridKey, []T)) {
	for i, b := range bg.dense {
		if len(b) > 0 {
			fn(gridKey{bg.minX + int64(i)%bg.w, bg.minY + int64(i)/bg.w}, b)
		}
	}
	for k, b := range bg.overflow {
		if len(b) > 0 {
			fn(k, b)
		}
	}
}

// grow widens the dense window to include k, reporting whether it could.
// Growth copies bucket headers only and adds a margin on the growing side,
// so stations drifting across the arena trigger O(1) amortized copies.
func (bg *bucketGrid[T]) grow(k gridKey) bool {
	const margin = 4
	minX, minY, maxX, maxY := k.x, k.y, k.x, k.y
	if bg.haveWin {
		minX = min(minX, bg.minX)
		minY = min(minY, bg.minY)
		maxX = max(maxX, bg.minX+bg.w-1)
		maxY = max(maxY, bg.minY+bg.h-1)
	}
	if k.x < bg.minX || !bg.haveWin {
		minX -= margin
	}
	if k.y < bg.minY || !bg.haveWin {
		minY -= margin
	}
	if !bg.haveWin || k.x >= bg.minX+bg.w {
		maxX += margin
	}
	if !bg.haveWin || k.y >= bg.minY+bg.h {
		maxY += margin
	}
	w, h := maxX-minX+1, maxY-minY+1
	if w > denseSpanCap || h > denseSpanCap {
		return false
	}
	dense := make([][]T, w*h)
	if bg.haveWin {
		for y := int64(0); y < bg.h; y++ {
			copy(dense[(y+bg.minY-minY)*w+(bg.minX-minX):], bg.dense[y*bg.w:(y+1)*bg.w])
		}
	}
	bg.haveWin, bg.minX, bg.minY, bg.w, bg.h, bg.dense = true, minX, minY, w, h, dense
	// Newly covered cells may already have overflow buckets: migrate them.
	for ok, ob := range bg.overflow {
		x, y := ok.x-minX, ok.y-minY
		if x >= 0 && x < w && y >= 0 && y < h {
			dense[y*w+x] = ob
			delete(bg.overflow, ok)
		}
	}
	return true
}

// cellEntry is one bucketed station. The ID and last-indexed position are
// stored inline so collect's distance filter and 9-way merge stream
// contiguous 32-byte records instead of dereferencing scattered station
// structs — at swarm scale the per-candidate cache miss, not the compare,
// was the dominant cost. Only surviving candidates dereference st.
type cellEntry struct {
	id   int
	ipos geom.Vec2
	st   *station
}

// gridIndex is the uniform spatial index over stations and in-flight
// transmissions. Station buckets are kept sorted ascending by ID
// (order-preserving insert and remove), so collect can merge the 3x3
// neighborhood's buckets instead of re-sorting candidates every frame.
type gridIndex struct {
	cellM float64 // cell side length in meters
	inv   float64 // 1 / cellM
	// cells buckets attached stations by their last indexed position;
	// txCells buckets in-flight transmissions by their frozen origin.
	cells   bucketGrid[cellEntry]
	txCells bucketGrid[*transmission]
	cand    []*station  // scratch: collect's merged output
	fbuf    []cellEntry // scratch: collect's filtered per-bucket runs
}

func newGridIndex(cellM float64) *gridIndex {
	return &gridIndex{cellM: cellM, inv: 1 / cellM}
}

// coord maps one coordinate to its cell index, clamped to the defined range.
func (g *gridIndex) coord(v float64) int64 {
	c := math.Floor(v * g.inv)
	if !(c >= -maxCellCoord) { // also catches NaN
		return -maxCellCoord
	}
	if c > maxCellCoord {
		return maxCellCoord
	}
	return int64(c)
}

func (g *gridIndex) keyOf(p geom.Vec2) gridKey {
	return gridKey{g.coord(p.X), g.coord(p.Y)}
}

// entryCmp orders bucket entries by station ID for binary search.
func entryCmp(e cellEntry, id int) int { return e.id - id }

// bucketInsert adds e to the bucket for key, keeping it ID-sorted.
func (g *gridIndex) bucketInsert(key gridKey, e cellEntry) {
	b := g.cells.get(key)
	i, _ := slices.BinarySearchFunc(b, e.id, entryCmp)
	g.cells.put(key, slices.Insert(b, i, e))
}

// insert buckets st at its current endpoint position.
func (g *gridIndex) insert(st *station) {
	p := st.ep.Position()
	st.key = g.keyOf(p)
	st.gridded = true
	g.bucketInsert(st.key, cellEntry{id: st.id, ipos: p, st: st})
}

// remove unbuckets st, preserving the bucket's ID order; a station not in
// the grid is left alone. IDs are unique among bucketed stations (Attach
// removes a replaced station before inserting its successor), so the entry
// is found by ID.
func (g *gridIndex) remove(st *station) {
	if !st.gridded {
		return
	}
	st.gridded = false
	b := g.cells.get(st.key)
	if i, ok := slices.BinarySearchFunc(b, st.id, entryCmp); ok {
		g.cells.put(st.key, slices.Delete(b, i, i+1))
	}
}

// update re-buckets st at its current endpoint position, reporting whether
// it changed cells. The indexed position is refreshed even when the cell is
// unchanged: collect's pre-prune bound (true position within IndexSlackM of
// the entry's ipos) holds exactly because ipos is as fresh as the last
// update sweep — the same cadence the cell-side slack already relies on.
func (g *gridIndex) update(st *station) bool {
	if !st.gridded {
		return false
	}
	p := st.ep.Position()
	key := g.keyOf(p)
	if key == st.key {
		b := g.cells.get(key)
		if i, ok := slices.BinarySearchFunc(b, st.id, entryCmp); ok {
			b[i].ipos = p
		}
		return false
	}
	g.remove(st)
	st.key = key
	st.gridded = true
	g.bucketInsert(key, cellEntry{id: st.id, ipos: p, st: st})
	return true
}

// collect gathers every station bucketed in the 3x3 cell neighborhood of p
// whose indexed position keeps it within pruneFar2 (squared meters) of p,
// sorted ascending by ID — the same visit order the O(n) scan uses. Pruned
// stations are provably beyond the plausibility gate (see the contract at
// the top of this file); the caller accounts for them with the same bulk
// BelowSense skip as the out-of-neighborhood population, via
// len(ordered) - len(candidates). Pass +Inf to disable pruning.
//
// Each bucket is already ID-sorted, so the neighborhood is assembled by
// filtering each bucket into a contiguous scratch run and 9-way merging the
// runs: no comparator calls, no per-transmission sort, and the merge's
// min-scan touches only inline entry records. The returned slice is scratch
// memory owned by the index, valid until the next collect call.
func (g *gridIndex) collect(p geom.Vec2, pruneFar2 float64) []*station {
	g.cand = g.cand[:0]
	g.fbuf = g.fbuf[:0]
	k := g.keyOf(p)
	// heads caches each run's front ID so the min-scan compares a small
	// stack array instead of re-loading entries every step.
	var runs [9][]cellEntry
	var heads [9]int
	n := 0
	for dy := int64(-1); dy <= 1; dy++ {
		for dx := int64(-1); dx <= 1; dx++ {
			b := g.cells.get(gridKey{k.x + dx, k.y + dy})
			if len(b) == 0 {
				continue
			}
			start := len(g.fbuf)
			for i := range b {
				if p.Dist2(b[i].ipos) < pruneFar2 {
					g.fbuf = append(g.fbuf, b[i])
				}
			}
			// A later bucket's append may grow fbuf and move earlier runs
			// to a stale backing array; their contents stay valid — runs
			// are read-only views consumed before the next collect call.
			if run := g.fbuf[start:]; len(run) > 0 {
				runs[n] = run
				heads[n] = run[0].id
				n++
			}
		}
	}
	for n > 1 {
		best := 0
		for i := 1; i < n; i++ {
			if heads[i] < heads[best] {
				best = i
			}
		}
		r := runs[best]
		g.cand = append(g.cand, r[0].st)
		if len(r) > 1 {
			runs[best] = r[1:]
			heads[best] = r[1].id
		} else {
			n--
			runs[best] = runs[n]
			heads[best] = heads[n]
			runs[n] = nil
		}
	}
	if n == 1 {
		for i := range runs[0] {
			g.cand = append(g.cand, runs[0][i].st)
		}
	}
	return g.cand
}

// addTx buckets an in-flight transmission by its frozen origin.
func (g *gridIndex) addTx(tx *transmission) {
	tx.cell = g.keyOf(tx.pos)
	g.txCells.put(tx.cell, append(g.txCells.get(tx.cell), tx))
}

// removeTx unbuckets a reaped transmission.
func (g *gridIndex) removeTx(tx *transmission) {
	b := g.txCells.get(tx.cell)
	for i, t := range b {
		if t == tx {
			b[i] = b[len(b)-1]
			b[len(b)-1] = nil
			g.txCells.put(tx.cell, b[:len(b)-1])
			return
		}
	}
}
