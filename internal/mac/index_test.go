package mac

import (
	"math"
	"reflect"
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
	"cocoa/internal/telemetry"
)

// swarmModel is the test radio: short-range enough that a spread-out
// deployment actually exercises the bulk-skip path.
func swarmModel() radio.Model {
	m := radio.DefaultModel()
	m.TxPowerDBm = -10
	return m
}

// workloadTrace captures everything observable about one workload run.
type workloadTrace struct {
	Stats  Stats
	Frames [][]Frame
	RSSIs  [][]float64
}

// runChurnWorkload drives one medium through a deterministic schedule of
// sends, bounded moves, detaches, and re-attaches. Every source of
// randomness outside the MAC itself comes from dedicated streams of the
// same seed, so two invocations differ only in the configured neighbor
// index.
func runChurnWorkload(t *testing.T, idx NeighborIndex, seed int64) workloadTrace {
	t.Helper()
	const (
		n      = 40
		side   = 600.0
		slackM = 4.0
		moveDt = 0.25
		sendDt = 0.02
		dur    = 6.0
	)
	s := sim.New()
	cfg := DefaultConfig(swarmModel())
	cfg.NeighborIndex = idx
	cfg.IndexSlackM = slackM
	med, err := NewMedium(s, cfg, sim.NewRNG(seed).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}

	posRng := sim.NewRNG(seed).Stream("positions")
	eps := make([]*fakeEndpoint, n)
	attached := make([]bool, n)
	for i := range eps {
		eps[i] = &fakeEndpoint{
			pos:       geom.Vec2{X: posRng.Float64() * side, Y: posRng.Float64() * side},
			listening: true,
		}
		med.Attach(i, eps[i])
		attached[i] = true
	}

	// Bounded random walk: each station moves at most slackM between
	// consecutive UpdatePositions sweeps — the index freshness contract.
	moveRng := sim.NewRNG(seed).Stream("moves")
	s.EachTick(moveDt, moveDt, func(now sim.Time) {
		for i, ep := range eps {
			ang := moveRng.Float64() * 2 * math.Pi
			r := moveRng.Float64() * slackM
			ep.pos.X += r * math.Cos(ang)
			ep.pos.Y += r * math.Sin(ang)
			// Detach/attach churn: every station cycles through an outage.
			switch {
			case attached[i] && int(now*4)%16 == i%16:
				med.Detach(i)
				attached[i] = false
			case !attached[i] && int(now*4+1)%8 == i%8:
				med.Attach(i, ep)
				attached[i] = true
			}
		}
		med.UpdatePositions()
	})

	frame := 0
	s.EachTick(sendDt, sendDt, func(now sim.Time) {
		from := (frame*7 + 3) % n
		frame++
		if attached[from] {
			if err := med.Send(from, Frame{Kind: 1, Bytes: 56}); err != nil {
				t.Fatalf("send from %d: %v", from, err)
			}
		}
	})

	s.RunUntil(dur)

	tr := workloadTrace{Stats: med.Stats()}
	for _, ep := range eps {
		tr.Frames = append(tr.Frames, ep.got)
		tr.RSSIs = append(tr.RSSIs, ep.rssis)
	}
	return tr
}

// TestGridScanEquivalence is the mac-level differential harness: under
// bounded motion, detach/attach churn, and CSMA contention, the spatial
// index must reproduce the scan path's stats, deliveries, and sampled RSSI
// values bit for bit.
func TestGridScanEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		scan := runChurnWorkload(t, IndexScan, seed)
		grid := runChurnWorkload(t, IndexGrid, seed)
		if !reflect.DeepEqual(scan.Stats, grid.Stats) {
			t.Errorf("seed %d: stats diverged\nscan: %+v\ngrid: %+v", seed, scan.Stats, grid.Stats)
		}
		if !reflect.DeepEqual(scan.Frames, grid.Frames) {
			t.Errorf("seed %d: delivered frames diverged", seed)
		}
		if !reflect.DeepEqual(scan.RSSIs, grid.RSSIs) {
			t.Errorf("seed %d: delivered RSSI values diverged", seed)
		}
		if scan.Stats.Delivered == 0 {
			t.Errorf("seed %d: degenerate workload, nothing delivered", seed)
		}
	}
}

// TestGridPrunesVisits asserts the index is not equivalence-by-doing-the-
// same-work: on a spread-out swarm the per-frame receiver visits must drop
// by a large factor. Deterministic counters, not wall time, prove the claim.
func TestGridPrunesVisits(t *testing.T) {
	wasEnabled := telemetry.Default.Enabled()
	telemetry.Default.SetEnabled(true)
	defer telemetry.Default.SetEnabled(wasEnabled)
	visits := telemetry.Default.Counter("mac.receiver_visits")
	skips := telemetry.Default.Counter("mac.index_bulk_skips")

	v0 := visits.Value()
	scan := runChurnWorkload(t, IndexScan, 5)
	scanVisits := visits.Value() - v0

	v0 = visits.Value()
	s0 := skips.Value()
	grid := runChurnWorkload(t, IndexGrid, 5)
	gridVisits := visits.Value() - v0
	gridSkips := skips.Value() - s0

	if !reflect.DeepEqual(scan.Stats, grid.Stats) {
		t.Fatalf("stats diverged\nscan: %+v\ngrid: %+v", scan.Stats, grid.Stats)
	}
	if gridVisits*3 > scanVisits {
		t.Errorf("index visited %d stations vs scan's %d; expected at least 3x pruning",
			gridVisits, scanVisits)
	}
	if gridSkips == 0 {
		t.Error("index never bulk-skipped; the workload does not exercise the grid")
	}
	if gridVisits+gridSkips < scanVisits {
		t.Errorf("visits (%d) + bulk skips (%d) < scan visits (%d): candidates went missing",
			gridVisits, gridSkips, scanVisits)
	}
}

// TestDetachCompacts pins the Detach fix: a detached station stops being
// visited (and stops consuming per-frame work) immediately, in both index
// modes, and the accounting conservation law holds against the live station
// count.
func TestDetachCompacts(t *testing.T) {
	for _, idx := range []NeighborIndex{IndexScan, IndexGrid} {
		s := sim.New()
		cfg := DefaultConfig(radio.DefaultModel())
		cfg.NeighborIndex = idx
		med, err := NewMedium(s, cfg, sim.NewRNG(1).Stream("mac"))
		if err != nil {
			t.Fatal(err)
		}
		const n = 10
		eps := make([]*fakeEndpoint, n)
		for i := range eps {
			eps[i] = &fakeEndpoint{pos: geom.Vec2{X: float64(i) * 5}, listening: true}
			med.Attach(i, eps[i])
		}
		// Half the swarm crashes.
		for i := n / 2; i < n; i++ {
			med.Detach(i)
		}
		if err := med.Send(0, Frame{Kind: 1, Bytes: 56}); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(1)

		st := med.Stats()
		if got := st.Delivered + st.Collided + st.BelowSense + st.MissedAsleep; got != n/2-1 {
			t.Errorf("idx %d: %d receiver outcomes for %d live receivers", idx, got, n/2-1)
		}
		for i := n / 2; i < n; i++ {
			if len(eps[i].got) != 0 || eps[i].rxDepth != 0 {
				t.Errorf("idx %d: detached station %d still reached", idx, i)
			}
		}
	}
}

// TestDetachVisitsDrop is the regression test for the crashed-swarm cost
// model: detaching half the stations must halve the per-frame visits.
func TestDetachVisitsDrop(t *testing.T) {
	wasEnabled := telemetry.Default.Enabled()
	telemetry.Default.SetEnabled(true)
	defer telemetry.Default.SetEnabled(wasEnabled)
	visits := telemetry.Default.Counter("mac.receiver_visits")

	perFrame := func(detachHalf bool) int64 {
		s := sim.New()
		med, err := NewMedium(s, DefaultConfig(radio.DefaultModel()), sim.NewRNG(1).Stream("mac"))
		if err != nil {
			t.Fatal(err)
		}
		const n = 20
		for i := 0; i < n; i++ {
			med.Attach(i, &fakeEndpoint{pos: geom.Vec2{X: float64(i)}, listening: true})
		}
		if detachHalf {
			for i := n / 2; i < n; i++ {
				med.Detach(i)
			}
		}
		v0 := visits.Value()
		if err := med.Send(0, Frame{Kind: 1, Bytes: 56}); err != nil {
			t.Fatal(err)
		}
		s.RunUntil(1)
		return visits.Value() - v0
	}

	full := perFrame(false)
	half := perFrame(true)
	if full != 19 || half != 9 {
		t.Errorf("visits per frame: full=%d half=%d, want 19 and 9", full, half)
	}
}

// TestDetachLifecycle covers the edge semantics: unknown ids, re-attach
// after detach, and replacement attach while indexed.
func TestDetachLifecycle(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(radio.DefaultModel())
	cfg.NeighborIndex = IndexGrid
	med, err := NewMedium(s, cfg, sim.NewRNG(1).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	a := &fakeEndpoint{pos: geom.Vec2{X: 0}, listening: true}
	b := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: true}
	med.Attach(0, a)
	med.Attach(1, b)

	med.Detach(99) // unknown: no-op
	med.Detach(1)
	med.Detach(1) // double detach: no-op
	if err := med.Send(0, Frame{Kind: 1, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1)
	if len(b.got) != 0 {
		t.Error("detached station received a frame")
	}
	if err := med.Send(1, Frame{Kind: 1, Bytes: 10}); err == nil {
		t.Error("detached station could send")
	}

	med.Attach(1, b) // recovery
	// Replacement attach while indexed: the new endpoint must take over the
	// grid slot (and the old one must never be visited again).
	b2 := &fakeEndpoint{pos: geom.Vec2{X: 12}, listening: true}
	med.Attach(1, b2)
	if err := med.Send(0, Frame{Kind: 1, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2)
	if len(b.got) != 0 {
		t.Error("replaced endpoint still receiving")
	}
	if len(b2.got) != 1 {
		t.Errorf("replacement endpoint got %d frames, want 1", len(b2.got))
	}
}

// TestGridFallsBackOnDegenerateModel: a radio model whose far bracket is
// unbounded cannot prune anything; requesting the grid must quietly keep
// the scan path rather than build useless buckets.
func TestGridFallsBackOnDegenerateModel(t *testing.T) {
	model := radio.DefaultModel()
	// An absurd shadowing sigma pushes the plausibility threshold so low
	// its crossing distance overflows: rssiGate returns an unbounded far
	// bracket and no cell size exists.
	model.ShadowSigmaDB = 1e6
	cfg := DefaultConfig(model)
	cfg.NeighborIndex = IndexGrid
	s := sim.New()
	med, err := NewMedium(s, cfg, sim.NewRNG(1).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	if med.grid != nil {
		t.Fatal("grid built over a degenerate model")
	}
	// And the no-op position maintenance entry points stay safe.
	med.Attach(0, &fakeEndpoint{listening: true})
	med.UpdatePositions()
	med.UpdatePosition(0)
}

func TestConfigValidateIndexFields(t *testing.T) {
	base := DefaultConfig(radio.DefaultModel())
	bad := base
	bad.NeighborIndex = NeighborIndex(7)
	if err := bad.Validate(); err == nil {
		t.Error("accepted unknown NeighborIndex")
	}
	bad = base
	bad.IndexSlackM = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative IndexSlackM")
	}
	bad = base
	bad.IndexSlackM = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Error("accepted infinite IndexSlackM")
	}
	ok := base
	ok.NeighborIndex = IndexGrid
	ok.IndexSlackM = 2.5
	if err := ok.Validate(); err != nil {
		t.Errorf("rejected valid grid config: %v", err)
	}
}

// TestUpdatePositionSingle exercises the one-station re-bucket entry point.
func TestUpdatePositionSingle(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig(swarmModel())
	cfg.NeighborIndex = IndexGrid
	med, err := NewMedium(s, cfg, sim.NewRNG(1).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	tx := &fakeEndpoint{pos: geom.Vec2{X: 0}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: true}
	med.Attach(0, tx)
	med.Attach(1, rx)

	// Teleport the receiver far outside the neighborhood and re-bucket it:
	// the next frame must bulk-skip it.
	rx.pos = geom.Vec2{X: 5000}
	med.UpdatePosition(1)
	med.UpdatePosition(99) // unknown: no-op
	if err := med.Send(0, Frame{Kind: 1, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1)
	st := med.Stats()
	if st.BelowSense != 1 || st.Delivered != 0 {
		t.Errorf("stats after teleport: %+v, want exactly one BelowSense", st)
	}

	// And back in range again.
	rx.pos = geom.Vec2{X: 10}
	med.UpdatePosition(1)
	if err := med.Send(0, Frame{Kind: 1, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2)
	if got := len(rx.got); got != 1 {
		t.Errorf("re-bucketed receiver got %d frames, want 1", got)
	}
}
