package mac

import (
	"testing"

	"cocoa/internal/checkpoint"
	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// HashState fingerprints the medium's aggregate counters, station set,
// and in-flight transmissions: stable on equal media, moved by topology
// changes and by traffic.
func TestHashState(t *testing.T) {
	sum := func(m *Medium) uint64 {
		h := checkpoint.NewHasher()
		m.HashState(h)
		return h.Sum()
	}
	sA, a := newTestMedium(t, 9)
	_, b := newTestMedium(t, 9)
	if sum(a) != sum(b) {
		t.Fatal("identical fresh media hash differently")
	}
	tx := &fakeEndpoint{pos: geom.Vec2{X: 0, Y: 0}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 10, Y: 0}, listening: true}
	a.Attach(0, tx)
	a.Attach(1, rx)
	if sum(a) == sum(b) {
		t.Fatal("attaching stations did not change the digest")
	}
	attached := sum(a)
	if err := a.Send(0, Frame{From: 0, Kind: 1, Bytes: 40}); err != nil {
		t.Fatal(err)
	}
	sA.Run()
	if sum(a) == attached {
		t.Fatal("delivered traffic did not change the digest")
	}
	// In-flight transmissions are part of the fingerprint: stepping a
	// transmission halfway must hash differently from the settled medium.
	s2 := sim.New()
	cfg := DefaultConfig(a.cfg.Model)
	c, err := NewMedium(s2, cfg, sim.NewRNG(9).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	c.Attach(0, &fakeEndpoint{pos: geom.Vec2{X: 0, Y: 0}, listening: true})
	c.Attach(1, &fakeEndpoint{pos: geom.Vec2{X: 10, Y: 0}, listening: true})
	if err := c.Send(0, Frame{From: 0, Kind: 1, Bytes: 40}); err != nil {
		t.Fatal(err)
	}
	mid := sum(c)
	s2.Run()
	if sum(c) == mid {
		t.Fatal("completing the transmission did not change the digest")
	}
}
