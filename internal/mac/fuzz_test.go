package mac

import (
	"math"
	"sort"
	"testing"

	"cocoa/internal/geom"
)

// refCoord is the test oracle's independent copy of the cell-coordinate
// mapping (floor at the cell side, clamped so the conversion is defined).
func refCoord(v, cellM float64) int64 {
	c := math.Floor(v / cellM)
	if !(c >= -maxCellCoord) {
		return -maxCellCoord
	}
	if c > maxCellCoord {
		return maxCellCoord
	}
	return int64(c)
}

// FuzzGridIndex churns a grid index with inserts, bounded and unbounded
// moves, removals, and queries, cross-checking every query against the O(n)
// reference: scan all stations, keep those whose indexed cell lies in the
// 3x3 neighborhood, sort ascending by ID. The index must return exactly
// that set in exactly that order — the property the MAC's byte-for-byte
// equivalence rests on.
func FuzzGridIndex(f *testing.F) {
	// Seeds: plain churn, cell-boundary walking, negative coordinates,
	// clamp-range extremes, and remove/re-insert cycling.
	f.Add([]byte{0, 1, 10, 10, 3, 1, 0, 0})
	f.Add([]byte{0, 1, 255, 255, 0, 2, 1, 1, 1, 2, 128, 0, 3, 0, 255, 255})
	f.Add([]byte{0, 5, 0, 0, 1, 5, 0, 1, 1, 5, 1, 0, 3, 5, 0, 0, 2, 5, 0, 0, 3, 5, 0, 0})
	f.Add([]byte{0, 9, 254, 254, 0, 8, 2, 2, 3, 9, 254, 254, 3, 8, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const cellM = 50.0
		g := newGridIndex(cellM)

		// Shadow model: id -> the position the station was last indexed at.
		type shadow struct {
			st  *station
			pos geom.Vec2
		}
		live := map[int]*shadow{}

		// decode maps two bytes to a coordinate. 255 selects an extreme
		// value beyond the clamp range; 254 a far negative one; everything
		// else spans a few dozen cells around the origin, densely enough
		// that boundary crossings and shared buckets both happen.
		decode := func(b byte) float64 {
			switch b {
			case 255:
				return 1e300
			case 254:
				return -1e300
			default:
				return (float64(b) - 100) * cellM / 7
			}
		}

		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 4
			id := int(data[i+1] % 32)
			p := geom.Vec2{X: decode(data[i+2]), Y: decode(data[i+3])}
			switch op {
			case 0: // insert (fresh ids only; the Medium replaces via remove+insert)
				if _, ok := live[id]; ok {
					continue
				}
				ep := &fakeEndpoint{pos: p, listening: true}
				st := &station{id: id, ep: ep}
				g.insert(st)
				live[id] = &shadow{st: st, pos: p}
			case 1: // move + re-bucket
				sh, ok := live[id]
				if !ok {
					continue
				}
				sh.st.ep.(*fakeEndpoint).pos = p
				g.update(sh.st)
				sh.pos = p
			case 2: // remove
				sh, ok := live[id]
				if !ok {
					continue
				}
				g.remove(sh.st)
				delete(live, id)
			case 3: // query: differential check against the O(n) scan
				// Pruning disabled (+Inf): this oracle checks the pure
				// 3x3-neighborhood set; the pruned variant is covered by
				// TestCollectPrunesByIndexedPosition and the scenario
				// byte-equivalence suite.
				got := g.collect(p, math.Inf(1))
				kx, ky := refCoord(p.X, cellM), refCoord(p.Y, cellM)
				var want []int
				for wid, sh := range live {
					sx, sy := refCoord(sh.pos.X, cellM), refCoord(sh.pos.Y, cellM)
					dx, dy := sx-kx, sy-ky
					if dx >= -1 && dx <= 1 && dy >= -1 && dy <= 1 {
						want = append(want, wid)
					}
				}
				sort.Ints(want)
				if len(got) != len(want) {
					t.Fatalf("query %v: got %d candidates, want %d", p, len(got), len(want))
				}
				for j, st := range got {
					if st.id != want[j] {
						t.Fatalf("query %v: candidate %d is id %d, want %d (order or set mismatch)",
							p, j, st.id, want[j])
					}
				}
			}
		}

		// Structural invariant after the churn: every live station is
		// bucketed exactly once, under the key of its last indexed position.
		seen := map[int]int{}
		g.cells.forEach(func(key gridKey, b []cellEntry) {
			for _, e := range b {
				seen[e.id]++
				if e.st.id != e.id {
					t.Fatalf("entry id %d disagrees with station id %d", e.id, e.st.id)
				}
				if e.st.key != key {
					t.Fatalf("station %d bucketed under %v but keyed %v", e.id, key, e.st.key)
				}
				if sh := live[e.id]; sh != nil && e.ipos != sh.pos {
					t.Fatalf("station %d entry position %v, last indexed at %v", e.id, e.ipos, sh.pos)
				}
			}
		})
		for id, sh := range live {
			wantKey := gridKey{refCoord(sh.pos.X, cellM), refCoord(sh.pos.Y, cellM)}
			if seen[id] != 1 {
				t.Fatalf("station %d bucketed %d times", id, seen[id])
			}
			if sh.st.key != wantKey {
				t.Fatalf("station %d keyed %v, want %v", id, sh.st.key, wantKey)
			}
		}
		if len(seen) != len(live) {
			t.Fatalf("%d stations bucketed, %d live", len(seen), len(live))
		}
	})
}
