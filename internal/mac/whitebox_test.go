package mac

import (
	"math"
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// newGridTestMedium is newTestMedium with the spatial index enabled.
func newGridTestMedium(t *testing.T, seed int64) (*sim.Simulator, *Medium) {
	t.Helper()
	s := sim.New()
	cfg := DefaultConfig(radio.DefaultModel())
	cfg.NeighborIndex = IndexGrid
	med, err := NewMedium(s, cfg, sim.NewRNG(seed).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	return s, med
}

func TestNewMediumRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(radio.DefaultModel())
	cfg.NeighborIndex = NeighborIndex(99)
	if _, err := NewMedium(sim.New(), cfg, sim.NewRNG(1).Stream("mac")); err == nil {
		t.Fatal("invalid NeighborIndex accepted")
	}
}

func TestMediumConfigAccessor(t *testing.T) {
	_, med := newGridTestMedium(t, 1)
	if med.Config().NeighborIndex != IndexGrid {
		t.Errorf("Config() = %+v, want the grid config back", med.Config())
	}
}

// rssiGate's bracket search must survive curves that never cross the
// threshold in either direction, and degenerate crossing estimates.
func TestRSSIGateSynthetic(t *testing.T) {
	always := func(float64) float64 { return 0 }    // forever above any threshold
	never := func(float64) float64 { return -1000 } // forever below

	for _, cross := range []float64{0, -5, math.Inf(1)} {
		near2, far2 := rssiGate(always, cross, -90)
		if near2 != -1 || !math.IsInf(far2, 1) {
			t.Errorf("cross=%v: got (%v, %v), want degenerate (-1, +Inf)", cross, near2, far2)
		}
	}

	// Curve below the threshold everywhere: the near probe halves to zero
	// and the far probe is accepted immediately.
	near2, far2 := rssiGate(never, 100, -90)
	if near2 != 0 {
		t.Errorf("never-curve near2 = %v, want 0", near2)
	}
	farProbe := 100.0 * 1.001
	if want := farProbe * farProbe; far2 != want {
		t.Errorf("never-curve far2 = %v, want %v", far2, want)
	}

	// Curve above the threshold everywhere: the far probe doubles until
	// the iteration cap and reports an unbounded bracket.
	near2, far2 = rssiGate(always, 100, -90)
	nearProbe := 100.0 * 0.999
	if want := nearProbe * nearProbe; near2 != want {
		t.Errorf("always-curve near2 = %v, want %v", near2, want)
	}
	if !math.IsInf(far2, 1) {
		t.Errorf("always-curve far2 = %v, want +Inf", far2)
	}

	// A real crossing: the brackets must tightly surround it.
	step := func(d float64) float64 {
		if d <= 50 {
			return -80
		}
		return -100
	}
	near2, far2 = rssiGate(step, 50, -90)
	if math.Sqrt(near2) > 50 || math.Sqrt(far2) <= 50 {
		t.Errorf("step crossing outside bracket [%v, %v]", math.Sqrt(near2), math.Sqrt(far2))
	}
}

// The index leaves stations it never bucketed alone: remove and update on
// an unindexed station are no-ops, and a double remove is harmless.
func TestGridIndexUnbucketedGuards(t *testing.T) {
	g := newGridIndex(10)
	st := &station{id: 1, ep: &fakeEndpoint{pos: geom.Vec2{X: 5}}}
	if g.update(st) {
		t.Error("update of an unindexed station reported a move")
	}
	g.remove(st)
	g.insert(st)
	g.remove(st)
	g.remove(st)
	if len(g.cells.get(g.keyOf(geom.Vec2{X: 5}))) != 0 {
		t.Error("station still bucketed after remove")
	}
}

// TestCollectPrunesByIndexedPosition pins collect's pre-prune: a neighbor
// whose indexed position lies at or beyond the prune radius is dropped from
// the candidate set, one inside it survives in ID order, and +Inf disables
// pruning entirely.
func TestCollectPrunesByIndexedPosition(t *testing.T) {
	g := newGridIndex(50)
	mk := func(id int, p geom.Vec2) *station {
		st := &station{id: id, ep: &fakeEndpoint{pos: p, listening: true}}
		g.insert(st)
		return st
	}
	self := mk(0, geom.Vec2{})
	near := mk(1, geom.Vec2{X: 10})
	mk(2, geom.Vec2{X: 40}) // same 3x3 neighborhood, beyond the prune radius

	got := g.collect(geom.Vec2{}, 20*20)
	if len(got) != 2 || got[0] != self || got[1] != near {
		t.Fatalf("pruned collect returned %d candidates, want [self, near]", len(got))
	}
	if n := len(g.collect(geom.Vec2{}, math.Inf(1))); n != 3 {
		t.Fatalf("unpruned collect returned %d candidates, want 3", n)
	}
}

// Expired transmissions linger in the candidate structures until their
// end-of-frame reap; carrier sensing must skip them in both modes.
func TestCarrierBusySkipsExpiredTransmissions(t *testing.T) {
	mk := func(med *Medium) {
		a := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
		b := &fakeEndpoint{pos: geom.Vec2{X: 5}, listening: true}
		med.Attach(0, a)
		med.Attach(1, b)
	}

	_, scan := newTestMedium(t, 31)
	mk(scan)
	sta, stb := scan.stations[0], scan.stations[1]
	expired := &transmission{from: stb, end: -1, pos: geom.Vec2{X: 5}}
	scan.inflight = append(scan.inflight, expired)
	if scan.carrierBusy(sta) {
		t.Error("scan: expired transmission sensed as busy")
	}

	_, grid := newGridTestMedium(t, 32)
	mk(grid)
	sta, stb = grid.stations[0], grid.stations[1]
	// An expired transmission of b's in the neighborhood, and an expired
	// own transmission of a's: neither may read as busy.
	expired = &transmission{from: stb, end: -1, pos: geom.Vec2{X: 5}}
	grid.inflight = append(grid.inflight, expired)
	grid.grid.addTx(expired)
	ownExpired := &transmission{from: sta, end: -1, pos: geom.Vec2{}}
	grid.inflight = append(grid.inflight, ownExpired)
	grid.grid.addTx(ownExpired)
	sta.own = append(sta.own, ownExpired)
	if grid.carrierBusy(sta) {
		t.Error("grid: expired transmissions sensed as busy")
	}
	// A live transmission of a's own is busy at any distance.
	ownLive := &transmission{from: sta, end: 1, pos: geom.Vec2{}}
	sta.own = append(sta.own, ownLive)
	if !grid.carrierBusy(sta) {
		t.Error("grid: own live transmission not sensed")
	}
}

// txAudible's mid-bracket branch evaluates the real curve between the
// squared-distance gates.
func TestTxAudibleMidBracket(t *testing.T) {
	_, med := newTestMedium(t, 33)
	ep := &fakeEndpoint{pos: geom.Vec2{}, listening: true}
	med.Attach(0, ep)
	st := med.stations[0]
	cross := med.cfg.Model.DistanceForRSSI(med.cfg.Model.SensitivityDBm)
	if inf := math.Inf(1); med.senseFar2 == inf {
		t.Fatalf("default model has an unbounded sense bracket")
	}
	// Just inside and just outside the crossing, both within the bracket.
	tx := &transmission{from: st, pos: geom.Vec2{X: cross * 0.9995}}
	if !med.txAudible(geom.Vec2{}, tx) {
		t.Error("mean signal just above sensitivity not audible")
	}
	tx.pos = geom.Vec2{X: cross * 1.0005}
	if med.txAudible(geom.Vec2{}, tx) {
		t.Error("mean signal just below sensitivity audible")
	}
}

// Grid-mode carrier sensing: a neighbor's in-flight frame defers the
// second sender exactly as the scan does.
func TestGridCarrierSenseDefersSecondSend(t *testing.T) {
	s, med := newGridTestMedium(t, 34)
	a := &fakeEndpoint{pos: geom.Vec2{X: 0}, listening: true}
	b := &fakeEndpoint{pos: geom.Vec2{X: 10}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 20}, listening: true}
	med.Attach(0, a)
	med.Attach(1, b)
	med.Attach(2, rx)

	if err := med.Send(0, Frame{Kind: 1, Bytes: 1400}); err != nil {
		t.Fatal(err)
	}
	s.Schedule(0.0005, func() {
		if err := med.Send(1, Frame{Kind: 2, Bytes: 56}); err != nil {
			t.Error(err)
		}
	})
	s.Run()

	if got := len(rx.got); got != 2 {
		t.Fatalf("rx got %d frames, want 2: %+v", got, med.Stats())
	}
	if med.Stats().BackoffEvents == 0 {
		t.Error("expected at least one backoff event")
	}
}

// A later-but-stronger frame corrupts an in-progress weak reception (the
// reverse capture direction of TestCaptureStrongFrameSurvives).
func TestCaptureLateStrongFrameWins(t *testing.T) {
	s := sim.New()
	model := radio.DefaultModel()
	model.ShadowSigmaDB = 0
	model.DeepFadeProb = 0
	model.SensitivityDBm = -75 // hidden terminals
	cfg := DefaultConfig(model)
	med, err := NewMedium(s, cfg, sim.NewRNG(35).Stream("mac"))
	if err != nil {
		t.Fatal(err)
	}
	rangeM := model.MeanRange()
	near := &fakeEndpoint{pos: geom.Vec2{X: 0}, listening: true}
	far := &fakeEndpoint{pos: geom.Vec2{X: 1.05 * rangeM}, listening: true}
	rx := &fakeEndpoint{pos: geom.Vec2{X: 5}, listening: true}
	med.Attach(0, near)
	med.Attach(1, far)
	med.Attach(2, rx)

	// Weak frame first, strong frame second: the strong one captures.
	if err := med.Send(1, Frame{Kind: 2, Bytes: 256}); err != nil {
		t.Fatal(err)
	}
	if err := med.Send(0, Frame{Kind: 1, Bytes: 256}); err != nil {
		t.Fatal(err)
	}
	s.Run()

	if len(rx.got) != 1 || rx.got[0].Kind != 1 {
		t.Fatalf("late capture failed: got %+v", rx.got)
	}
}
