package mac

import (
	"math"
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/mobility"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// BenchmarkBroadcast measures one full broadcast round over a 50-station
// medium, including per-receiver RSSI sampling and delivery scheduling.
func BenchmarkBroadcast(b *testing.B) {
	s := sim.New()
	med, err := NewMedium(s, DefaultConfig(radio.DefaultModel()), sim.NewRNG(1).Stream("bench"))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2).Stream("pos")
	for i := 0; i < 50; i++ {
		pos := geom.Vec2{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
		med.Attach(i, &benchEndpoint{pos: pos})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := med.Send(i%50, Frame{Bytes: 56}); err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

type benchEndpoint struct{ pos geom.Vec2 }

func (e *benchEndpoint) Position() geom.Vec2    { return e.pos }
func (e *benchEndpoint) Listening() bool        { return true }
func (e *benchEndpoint) BeginTx()               {}
func (e *benchEndpoint) EndTx()                 {}
func (e *benchEndpoint) BeginRx()               {}
func (e *benchEndpoint) EndRx()                 {}
func (e *benchEndpoint) Deliver(Frame, float64) {}

// swarmEndpoint backs a station with a live random-waypoint mobility
// process, the same position source network.NIC gives the medium in a real
// run (network itself would be an import cycle from here). Every position
// probe pays the waypoint advance, so the benchmark charges the scan what
// the full simulator pays per receiver visit.
type swarmEndpoint struct {
	s *sim.Simulator
	w *mobility.Waypoint
}

func (e *swarmEndpoint) Position() geom.Vec2    { return e.w.Position(e.s.Now()) }
func (e *swarmEndpoint) Listening() bool        { return true }
func (e *swarmEndpoint) BeginTx()               {}
func (e *swarmEndpoint) EndTx()                 {}
func (e *swarmEndpoint) BeginRx()               {}
func (e *swarmEndpoint) EndRx()                 {}
func (e *swarmEndpoint) Deliver(Frame, float64) {}

// benchmarkSwarm measures one full beacon round — a one-second mobility
// epoch, an incremental index refresh, then one 56-byte beacon from every
// station, chained 1 ms apart — over an n-station field at the paper's
// constant deployment density (one robot per 800 m2, the 50-robots-in-
// 200x200 baseline) with every robot moving under the paper's waypoint
// model at vmax 2 m/s. Beacon power is turned down to swarm level
// (-20 dBm): a thousand-robot network keeps the channel usable through
// spatial reuse, so each beacon only concerns a station's local
// neighborhood. The grid/scan pair is the spatial index's headline:
// identical traffic and identical deliveries, with per-beacon cost bounded
// by that neighborhood instead of the swarm size (DESIGN.md §12).
func benchmarkSwarm(b *testing.B, n int, index NeighborIndex) {
	s := sim.New()
	model := radio.DefaultModel()
	model.TxPowerDBm = -20
	cfg := DefaultConfig(model)
	cfg.NeighborIndex = index
	// One epoch between UpdatePositions calls is 1 s of beaconing; at
	// vmax 2 m/s no robot outruns a 3 m slack.
	cfg.IndexSlackM = 3
	med, err := NewMedium(s, cfg, sim.NewRNG(7).Stream("mac"))
	if err != nil {
		b.Fatal(err)
	}
	side := 200 * math.Sqrt(float64(n)/50)
	mcfg := mobility.DefaultConfig(2.0)
	mcfg.Area = geom.Square(side)
	rng := sim.NewRNG(11)
	for i := 0; i < n; i++ {
		w, err := mobility.NewWaypoint(mcfg, rng.StreamN("mob", i))
		if err != nil {
			b.Fatal(err)
		}
		med.Attach(i, &swarmEndpoint{s: s, w: w})
	}
	var sendErr error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		med.UpdatePositions()
		// Beacons chain (each schedules the next 1 ms out) so the event
		// queue holds in-flight frames, not a round's whole send plan.
		var kick func(id int)
		kick = func(id int) {
			if err := med.Send(id, Frame{Kind: 1, Bytes: 56}); err != nil {
				sendErr = err
			}
			if id+1 < n {
				s.Schedule(1e-3, func() { kick(id + 1) })
			}
		}
		s.Schedule(0, func() { kick(0) })
		s.Run()
	}
	b.StopTimer()
	if sendErr != nil {
		b.Fatal(sendErr)
	}
	b.ReportMetric(float64(med.Stats().Delivered)/float64(b.N), "delivered-per-round")
}

func BenchmarkSwarm100(b *testing.B) {
	b.Run("grid", func(b *testing.B) { benchmarkSwarm(b, 100, IndexGrid) })
	b.Run("scan", func(b *testing.B) { benchmarkSwarm(b, 100, IndexScan) })
}

func BenchmarkSwarm500(b *testing.B) {
	b.Run("grid", func(b *testing.B) { benchmarkSwarm(b, 500, IndexGrid) })
	b.Run("scan", func(b *testing.B) { benchmarkSwarm(b, 500, IndexScan) })
}

func BenchmarkSwarm1000(b *testing.B) {
	b.Run("grid", func(b *testing.B) { benchmarkSwarm(b, 1000, IndexGrid) })
	b.Run("scan", func(b *testing.B) { benchmarkSwarm(b, 1000, IndexScan) })
}
