package mac

import (
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// BenchmarkBroadcast measures one full broadcast round over a 50-station
// medium, including per-receiver RSSI sampling and delivery scheduling.
func BenchmarkBroadcast(b *testing.B) {
	s := sim.New()
	med, err := NewMedium(s, DefaultConfig(radio.DefaultModel()), sim.NewRNG(1).Stream("bench"))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2).Stream("pos")
	for i := 0; i < 50; i++ {
		pos := geom.Vec2{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
		med.Attach(i, &benchEndpoint{pos: pos})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := med.Send(i%50, Frame{Bytes: 56}); err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

type benchEndpoint struct{ pos geom.Vec2 }

func (e *benchEndpoint) Position() geom.Vec2    { return e.pos }
func (e *benchEndpoint) Listening() bool        { return true }
func (e *benchEndpoint) BeginTx()               {}
func (e *benchEndpoint) EndTx()                 {}
func (e *benchEndpoint) BeginRx()               {}
func (e *benchEndpoint) EndRx()                 {}
func (e *benchEndpoint) Deliver(Frame, float64) {}
