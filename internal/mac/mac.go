// Package mac implements a simplified IEEE 802.11-style broadcast MAC over
// the radio model: carrier sensing with binary-exponential backoff,
// per-receiver RSSI sampling, receiver-side collision resolution with
// physical-layer capture, and sleep-awareness (frames transmitted while a
// receiver sleeps are lost, which is exactly the behaviour CoCoA's
// coordination must work around).
//
// Broadcast frames are unacknowledged, as in real 802.11: the paper's
// beacons are UDP broadcasts and rely on k-fold repetition for reliability.
package mac

import (
	"cocoa/internal/checkpoint"
	"fmt"
	"math"
	"sort"

	"cocoa/internal/geom"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
	"cocoa/internal/telemetry"
)

// Telemetry instruments. These mirror (and extend) Stats process-wide:
// Stats stays the per-run result surface, the telemetry counters aggregate
// across every concurrent run for live observability.
var (
	telSent         = telemetry.Default.Counter("mac.sent")
	telDelivered    = telemetry.Default.Counter("mac.delivered")
	telCollided     = telemetry.Default.Counter("mac.collided")
	telBelowSense   = telemetry.Default.Counter("mac.below_sense")
	telMissedAsleep = telemetry.Default.Counter("mac.missed_asleep")
	telDroppedBusy  = telemetry.Default.Counter("mac.dropped_busy")
	telBackoffs     = telemetry.Default.Counter("mac.backoffs")
	// mac.rssi_gate_skips counts receivers skipped by the squared-distance
	// plausibility gate before any noise is drawn — the PR 3 fast path
	// whose rate explains why dense deployments stay cheap.
	telGateSkips  = telemetry.Default.Counter("mac.rssi_gate_skips")
	telPoolHits   = telemetry.Default.Counter("mac.pool_hits")
	telPoolMisses = telemetry.Default.Counter("mac.pool_misses")
	// mac.receiver_visits counts stations individually examined per frame
	// (the per-receiver loop body). With the spatial index enabled only the
	// 3x3-neighborhood candidates are visited, so this counter — not wall
	// time — is the deterministic measure of what the index saves.
	telVisits = telemetry.Default.Counter("mac.receiver_visits")
	// Spatial-index instruments (all zero under IndexScan). These counters
	// depend on which index is configured, so they are exempt from the
	// index-on/off telemetry-equality contract the mac.* counters above obey.
	telIndexCells   = telemetry.Default.Counter("mac.index_cells_scanned")
	telIndexCands   = telemetry.Default.Counter("mac.index_candidates")
	telIndexSkips   = telemetry.Default.Counter("mac.index_bulk_skips")
	telIndexMoves   = telemetry.Default.Counter("mac.index_moves")
	telIndexRebuild = telemetry.Default.Counter("mac.index_rebuilds")
)

// Frame is a broadcast MAC frame. Payload is opaque to the MAC.
type Frame struct {
	From    int // sender node ID
	Kind    int // application-defined frame type
	Bytes   int // payload size including IP/UDP headers
	Payload any
}

// Endpoint is the per-node attachment point the network layer implements.
// The MAC drives radio-state energy accounting through Begin/End callbacks.
type Endpoint interface {
	// Position returns the node's current true position.
	Position() geom.Vec2
	// Listening reports whether the radio can currently receive
	// (awake, powered, not transmitting).
	Listening() bool
	// BeginTx and EndTx bracket a transmission for energy accounting.
	BeginTx()
	EndTx()
	// BeginRx and EndRx bracket an incoming frame for energy accounting.
	BeginRx()
	EndRx()
	// Deliver hands a successfully decoded frame and its RSSI up the stack.
	Deliver(f Frame, rssiDBm float64)
}

// NeighborIndex selects the medium's receiver-candidate strategy.
type NeighborIndex int

const (
	// IndexScan examines every attached station for every frame — the O(n)
	// reference path. It needs no position maintenance and is the zero
	// value, so existing Medium users keep their exact behavior.
	IndexScan NeighborIndex = iota
	// IndexGrid buckets stations in a uniform spatial hash sized from the
	// radio model's far gate brackets, so each frame visits only the 3x3
	// cell neighborhood of its transmitter. Results are byte-identical to
	// IndexScan provided callers keep the index fresh: after stations move,
	// UpdatePositions (or UpdatePosition) must run before no station has
	// drifted more than Config.IndexSlackM from its last indexed position.
	// Radio models whose far brackets are unbounded fall back to the scan
	// silently (every station is always a candidate there anyway).
	IndexGrid
)

// Config holds MAC-layer parameters.
type Config struct {
	Model radio.Model
	// SlotS is the contention slot time in seconds (802.11b: 20 us).
	SlotS sim.Time
	// MinCW and MaxCW bound the contention window (slots).
	MinCW int
	MaxCW int
	// MaxAttempts bounds carrier-sense retries before the frame is dropped.
	MaxAttempts int
	// OverheadBytes is the MAC header + FCS added to every frame.
	OverheadBytes int
	// PreambleS is the fixed PLCP preamble time prepended to each frame.
	PreambleS sim.Time
	// NeighborIndex selects how transmit and carrierBusy find candidate
	// stations; the zero value is the brute-force scan.
	NeighborIndex NeighborIndex
	// IndexSlackM widens the spatial hash cells by the maximum distance a
	// station may move between position updates (IndexGrid only). Callers
	// typically set it to max speed times their update interval.
	IndexSlackM float64
}

// DefaultConfig returns 802.11b-like MAC parameters over the given radio
// model.
func DefaultConfig(m radio.Model) Config {
	return Config{
		Model:         m,
		SlotS:         20e-6,
		MinCW:         32,
		MaxCW:         1024,
		MaxAttempts:   7,
		OverheadBytes: 34,
		PreambleS:     192e-6,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.SlotS <= 0:
		return fmt.Errorf("mac: SlotS must be positive")
	case c.MinCW <= 0 || c.MaxCW < c.MinCW:
		return fmt.Errorf("mac: bad contention window [%d,%d]", c.MinCW, c.MaxCW)
	case c.MaxAttempts <= 0:
		return fmt.Errorf("mac: MaxAttempts must be positive")
	case c.OverheadBytes < 0 || c.PreambleS < 0:
		return fmt.Errorf("mac: negative overhead")
	case c.NeighborIndex < IndexScan || c.NeighborIndex > IndexGrid:
		return fmt.Errorf("mac: unknown NeighborIndex %d", int(c.NeighborIndex))
	case c.IndexSlackM < 0 || math.IsNaN(c.IndexSlackM) || math.IsInf(c.IndexSlackM, 0):
		return fmt.Errorf("mac: IndexSlackM must be finite and non-negative")
	}
	return nil
}

// Stats counts MAC-level outcomes across all stations. Forwarding
// efficiency for MRMM and beacon-delivery reliability both read from here.
type Stats struct {
	Sent          int // frames put on the air
	DroppedBusy   int // frames dropped after exhausting backoff attempts
	Delivered     int // (frame, receiver) successful deliveries
	Collided      int // (frame, receiver) losses due to collision
	BelowSense    int // (frame, receiver) losses due to weak signal
	MissedAsleep  int // (frame, receiver) losses because the radio slept
	BytesOnAir    int // total bytes transmitted including MAC overhead
	AirtimeS      sim.Time
	TxRequests    int
	BackoffEvents int
}

// transmission is one frame in flight on the shared medium.
type transmission struct {
	frame Frame
	from  *station
	start sim.Time
	end   sim.Time
	pos   geom.Vec2
	// cell is the spatial-hash bucket holding this transmission while it is
	// in flight (IndexGrid only), keyed from the frozen pos.
	cell gridKey
	// recs lists the receptions in progress for this frame, in the order
	// they began (ascending receiver ID). Every reception ends exactly at
	// tx.end, so one end-of-frame event walks this list instead of each
	// reception scheduling its own — the walk order matches the scheduling
	// order the per-reception events had, so outcomes are unchanged.
	recs []*reception
}

// reception tracks one (transmission, receiver) pair in progress.
type reception struct {
	tx        *transmission
	rcv       *station
	rssi      float64
	corrupted bool
}

// station is the Medium's view of one attached endpoint.
type station struct {
	id     int
	ep     Endpoint
	active []*reception // receptions in progress at this station
	// Spatial-index state (IndexGrid only): the cell the station is
	// bucketed in, whether it currently is bucketed, and its own in-flight
	// transmissions — the scan path reports a station busy on its own
	// transmission regardless of distance, so the indexed carrier sense
	// checks these directly instead of relying on a cell query.
	key     gridKey
	gridded bool
	own     []*transmission
}

// Medium is the shared broadcast channel all robots contend on.
type Medium struct {
	cfg      Config
	sim      *sim.Simulator
	rng      *sim.RNG
	stations map[int]*station
	// ordered lists stations in ascending ID order: per-receiver noise is
	// drawn in this order, keeping runs deterministic (map iteration
	// order would randomize the RNG stream).
	ordered  []*station
	inflight []*transmission
	stats    Stats
	// freeRec and freeTx recycle reception/transmission structs: a dense
	// deployment starts tens of thousands of receptions per run, and each
	// one is dead by end-of-frame.
	freeRec []*reception
	freeTx  []*transmission
	// Distance gates bracketing, in squared meters, where the monotone
	// mean path-loss curve crosses the carrier-sense and the
	// max-plausible-RSSI thresholds. Inside a bracket the exact dBm
	// comparison runs; outside, a squared-distance compare replaces the
	// Log10 — with identical outcomes, since MeanRSSI is non-increasing
	// in distance.
	senseNear2, senseFar2 float64
	plausNear2, plausFar2 float64
	// pruneFar2 (IndexGrid only) is (sqrt(plausFar2) + IndexSlackM)²:
	// an indexed-position distance this large proves the true distance is
	// at least plausFar even after maximal drift, so the receiver would
	// take beginReception's no-RNG gate branch — prunable in bulk.
	pruneFar2 float64
	// grid is the spatial neighbor index; nil selects the brute-force scan
	// (IndexScan, or IndexGrid over a radio model with unbounded brackets).
	grid *gridIndex
}

// NewMedium builds a medium over the given simulator. The RNG stream drives
// channel noise and backoff; it must be dedicated to the MAC.
func NewMedium(s *sim.Simulator, cfg Config, rng *sim.RNG) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Medium{
		cfg:      cfg,
		sim:      s,
		rng:      rng,
		stations: make(map[int]*station),
	}
	m.senseNear2, m.senseFar2 = rssiGate(
		cfg.Model.MeanRSSI,
		cfg.Model.DistanceForRSSI(cfg.Model.SensitivityDBm),
		cfg.Model.SensitivityDBm)
	// MaxPlausibleRSSI(d) < sensitivity iff MeanRSSI(d) < sensitivity-5*sigma.
	plausDBm := cfg.Model.SensitivityDBm - 5*cfg.Model.ShadowSigmaDB
	m.plausNear2, m.plausFar2 = rssiGate(
		cfg.Model.MeanRSSI,
		cfg.Model.DistanceForRSSI(plausDBm),
		plausDBm)
	if cfg.NeighborIndex == IndexGrid {
		// Cell side: beyond max(senseFar, plausFar) the scan path treats a
		// station identically to the bulk skip (transmit) or skips the
		// transmission outright (carrierBusy), so a 3x3 neighborhood of
		// cells this wide is a complete candidate set even after stations
		// drift up to IndexSlackM between updates. Unbounded brackets mean
		// nothing can ever be skipped; stay on the scan then.
		far2 := math.Max(m.plausFar2, m.senseFar2)
		if cell := math.Sqrt(far2) + cfg.IndexSlackM; !math.IsInf(cell, 1) && cell > 0 {
			m.grid = newGridIndex(cell)
			pf := math.Sqrt(m.plausFar2) + cfg.IndexSlackM
			m.pruneFar2 = pf * pf
		}
	}
	return m, nil
}

// rssiGate brackets the crossing distance of the monotone non-increasing
// curve f against threshold: d² <= near2 guarantees f(d) >= threshold and
// d² >= far2 guarantees f(d) < threshold, both verified by evaluating f at
// the bracket edges. Between the brackets callers must evaluate f, so gated
// decisions are everywhere identical to ungated ones.
func rssiGate(f func(float64) float64, cross, threshold float64) (near2, far2 float64) {
	if !(cross > 0) || math.IsInf(cross, 0) {
		return -1, math.Inf(1) // degenerate model: always evaluate f
	}
	near := cross * 0.999
	for i := 0; f(near) < threshold; i++ {
		if i == 60 || near == 0 {
			near = 0
			break
		}
		near *= 0.5
	}
	far := cross * 1.001
	for i := 0; f(far) >= threshold; i++ {
		if i == 60 || math.IsInf(far, 1) {
			return near * near, math.Inf(1)
		}
		far *= 2
	}
	return near * near, far * far
}

// Attach registers an endpoint under the given node ID. Attaching the same
// ID twice replaces the previous endpoint.
func (m *Medium) Attach(id int, ep Endpoint) {
	st := &station{id: id, ep: ep}
	if old, ok := m.stations[id]; ok {
		for i, s := range m.ordered {
			if s == old {
				m.ordered[i] = st
				break
			}
		}
		if m.grid != nil {
			m.grid.remove(old)
		}
	} else {
		pos := sort.Search(len(m.ordered), func(i int) bool { return m.ordered[i].id > id })
		m.ordered = append(m.ordered, nil)
		copy(m.ordered[pos+1:], m.ordered[pos:])
		m.ordered[pos] = st
	}
	m.stations[id] = st
	if m.grid != nil {
		m.grid.insert(st)
	}
}

// Detach removes the endpoint registered under id from every candidate
// structure: a detached station is never visited, counted, or charged again,
// which is how crashed or powered-off robots stop costing per-frame work.
// Receptions already in progress at the station still resolve at end of
// frame (a dead radio drops them exactly as before). Unknown ids are a
// no-op. Re-attaching the same id later restores the station as new.
func (m *Medium) Detach(id int) {
	st, ok := m.stations[id]
	if !ok {
		return
	}
	delete(m.stations, id)
	i := sort.Search(len(m.ordered), func(i int) bool { return m.ordered[i].id >= id })
	if i < len(m.ordered) && m.ordered[i] == st {
		m.ordered = append(m.ordered[:i], m.ordered[i+1:]...)
	}
	if m.grid != nil {
		m.grid.remove(st)
	}
}

// UpdatePositions re-buckets every attached station at its current endpoint
// position. Spatial-index users must call it (or UpdatePosition) often
// enough that no station moves more than Config.IndexSlackM between
// updates; under IndexScan it is a no-op. The sweep is deterministic
// (ascending ID) and consumes no randomness, so calling it never perturbs a
// run's results.
func (m *Medium) UpdatePositions() {
	if m.grid == nil {
		return
	}
	telIndexRebuild.Inc()
	for _, st := range m.ordered {
		if m.grid.update(st) {
			telIndexMoves.Inc()
		}
	}
}

// UpdatePosition re-buckets the single station registered under id; see
// UpdatePositions. Unknown ids are a no-op.
func (m *Medium) UpdatePosition(id int) {
	if m.grid == nil {
		return
	}
	if st, ok := m.stations[id]; ok && m.grid.update(st) {
		telIndexMoves.Inc()
	}
}

// Stats returns a copy of the MAC counters.
func (m *Medium) Stats() Stats { return m.stats }

// Config returns the medium's configuration.
func (m *Medium) Config() Config { return m.cfg }

// Send queues a broadcast frame from the given node, contending for the
// channel with CSMA. The frame is transmitted after carrier sensing
// succeeds or dropped after Config.MaxAttempts busy rounds.
func (m *Medium) Send(from int, f Frame) error {
	st, ok := m.stations[from]
	if !ok {
		return fmt.Errorf("mac: unknown sender %d", from)
	}
	f.From = from
	m.stats.TxRequests++
	m.attempt(st, f, 1, m.cfg.MinCW)
	return nil
}

// attempt performs one carrier-sense round.
func (m *Medium) attempt(st *station, f Frame, attempt, cw int) {
	if !m.carrierBusy(st) {
		m.transmit(st, f)
		return
	}
	if attempt >= m.cfg.MaxAttempts {
		m.stats.DroppedBusy++
		telDroppedBusy.Inc()
		return
	}
	m.stats.BackoffEvents++
	telBackoffs.Inc()
	backoff := sim.Time(m.rng.Intn(cw)+1) * m.cfg.SlotS
	next := cw * 2
	if next > m.cfg.MaxCW {
		next = m.cfg.MaxCW
	}
	m.sim.Schedule(backoff, func() { m.attempt(st, f, attempt+1, next) })
}

// carrierBusy reports whether station st senses energy on the channel.
// Any in-flight transmission whose mean signal at st exceeds the receiver
// sensitivity counts, including the station's own transmissions.
func (m *Medium) carrierBusy(st *station) bool {
	now := m.sim.Now()
	pos := st.ep.Position()
	if m.grid != nil {
		return m.carrierBusyGrid(st, pos, now)
	}
	for _, tx := range m.inflight {
		if tx.end <= now {
			continue
		}
		if tx.from == st {
			return true
		}
		if m.txAudible(pos, tx) {
			return true
		}
	}
	return false
}

// carrierBusyGrid is carrierBusy over the spatial index: the station's own
// transmissions count at any distance (matching the scan's tx.from check),
// and any other transmission loud enough to sense originates within
// senseFar < cell side of the station, so the 3x3 neighborhood query sees
// it. Both paths evaluate the same predicate over the same transmissions;
// only the visit order differs, which a boolean OR cannot observe.
func (m *Medium) carrierBusyGrid(st *station, pos geom.Vec2, now sim.Time) bool {
	for _, tx := range st.own {
		if tx.end > now {
			return true
		}
	}
	k := m.grid.keyOf(pos)
	telIndexCells.Add(9)
	for dy := int64(-1); dy <= 1; dy++ {
		for dx := int64(-1); dx <= 1; dx++ {
			for _, tx := range m.grid.txCells.get(gridKey{k.x + dx, k.y + dy}) {
				if tx.end <= now || tx.from == st {
					continue
				}
				if m.txAudible(pos, tx) {
					return true
				}
			}
		}
	}
	return false
}

// txAudible reports whether tx's mean signal at pos reaches the carrier
// sensitivity, through the PR 3 squared-distance gates.
func (m *Medium) txAudible(pos geom.Vec2, tx *transmission) bool {
	d2 := pos.Dist2(tx.pos)
	if d2 <= m.senseNear2 {
		return true
	}
	if d2 >= m.senseFar2 {
		return false
	}
	return m.cfg.Model.MeanRSSI(math.Sqrt(d2)) >= m.cfg.Model.SensitivityDBm
}

// transmit puts the frame on the air and schedules per-receiver outcomes.
func (m *Medium) transmit(st *station, f Frame) {
	now := m.sim.Now()
	totalBytes := f.Bytes + m.cfg.OverheadBytes
	dur := m.cfg.PreambleS + m.cfg.Model.Airtime(totalBytes)
	tx := m.newTransmission()
	tx.frame, tx.from, tx.start, tx.end, tx.pos = f, st, now, now+dur, st.ep.Position()
	m.inflight = append(m.inflight, tx)
	if m.grid != nil {
		m.grid.addTx(tx)
		st.own = append(st.own, tx)
	}
	m.stats.Sent++
	telSent.Inc()
	m.stats.BytesOnAir += totalBytes
	m.stats.AirtimeS += dur

	st.ep.BeginTx()
	m.sim.Schedule(dur, func() {
		st.ep.EndTx()
		m.reap(tx)
		m.finishReceptions(tx)
	})

	if m.grid == nil {
		for _, rcv := range m.ordered {
			if rcv == st {
				continue
			}
			m.beginReception(rcv, tx)
		}
		return
	}

	// Indexed path. Everything outside the 3x3 neighborhood — and every
	// neighbor whose indexed position proves it beyond plausFar even after
	// maximal IndexSlackM drift — is provably beyond the plausibility
	// gate, so it takes the same BelowSense branch the scan's per-station
	// loop would — in bulk, without being visited or drawing randomness.
	// The candidates (a superset of every station the scan would sample,
	// including the transmitter itself when attached) then run the ordinary
	// per-station decision in the same ascending-ID order as the scan.
	cands := m.grid.collect(tx.pos, m.pruneFar2)
	telIndexCells.Add(9)
	telIndexCands.Add(int64(len(cands)))
	if skipped := len(m.ordered) - len(cands); skipped > 0 {
		m.stats.BelowSense += skipped
		telBelowSense.Add(int64(skipped))
		telGateSkips.Add(int64(skipped))
		telIndexSkips.Add(int64(skipped))
	}
	for _, rcv := range cands {
		if rcv == st {
			continue
		}
		m.beginReception(rcv, tx)
	}
}

// beginReception decides the fate of tx at receiver rcv. Receptions that
// survive the begin-of-frame checks are resolved by finishReceptions when
// the frame leaves the air.
func (m *Medium) beginReception(rcv *station, tx *transmission) {
	telVisits.Inc()
	// Hard out-of-range cutoff: when even a +5-sigma fluctuation cannot
	// reach sensitivity, skip the receiver without drawing noise.
	d2 := rcv.ep.Position().Dist2(tx.pos)
	if d2 >= m.plausFar2 {
		m.stats.BelowSense++
		telBelowSense.Inc()
		telGateSkips.Inc()
		return
	}
	d := math.Sqrt(d2)
	if d2 > m.plausNear2 && m.cfg.Model.MaxPlausibleRSSI(d) < m.cfg.Model.SensitivityDBm {
		m.stats.BelowSense++
		telBelowSense.Inc()
		return
	}
	rssi := m.cfg.Model.SampleRSSI(d, m.rng)
	// Signals more than a margin below sensitivity neither decode nor
	// meaningfully interfere; skip them entirely.
	if rssi < m.cfg.Model.SensitivityDBm {
		m.stats.BelowSense++
		telBelowSense.Inc()
		return
	}
	if !rcv.ep.Listening() {
		m.stats.MissedAsleep++
		telMissedAsleep.Inc()
		return
	}

	rec := m.newReception()
	rec.tx, rec.rcv, rec.rssi = tx, rcv, rssi
	// Collision resolution against receptions already in progress.
	for _, other := range rcv.active {
		switch {
		case other.rssi >= rec.rssi+m.cfg.Model.CaptureThresholdDB:
			rec.corrupted = true
		case rec.rssi >= other.rssi+m.cfg.Model.CaptureThresholdDB:
			other.corrupted = true
		default:
			rec.corrupted = true
			other.corrupted = true
		}
	}
	rcv.active = append(rcv.active, rec)
	tx.recs = append(tx.recs, rec)
	rcv.ep.BeginRx()
}

// finishReceptions resolves every reception of tx at end-of-frame, in the
// order the receptions began. Interleaving EndRx and Deliver per receiver
// reproduces exactly what the former per-reception events did.
func (m *Medium) finishReceptions(tx *transmission) {
	for _, rec := range tx.recs {
		rcv := rec.rcv
		rcv.ep.EndRx()
		rcv.removeReception(rec)
		switch {
		case rec.corrupted:
			m.stats.Collided++
			telCollided.Inc()
		case !rcv.ep.Listening():
			// The radio went to sleep mid-frame.
			m.stats.MissedAsleep++
			telMissedAsleep.Inc()
		default:
			m.stats.Delivered++
			telDelivered.Inc()
			rcv.ep.Deliver(tx.frame, rec.rssi)
		}
		m.releaseReception(rec)
	}
	m.releaseTransmission(tx)
}

// newReception pops a recycled reception or allocates a fresh one.
func (m *Medium) newReception() *reception {
	if n := len(m.freeRec); n > 0 {
		rec := m.freeRec[n-1]
		m.freeRec = m.freeRec[:n-1]
		telPoolHits.Inc()
		return rec
	}
	telPoolMisses.Inc()
	return &reception{}
}

func (m *Medium) releaseReception(rec *reception) {
	*rec = reception{}
	m.freeRec = append(m.freeRec, rec)
}

// newTransmission pops a recycled transmission or allocates a fresh one.
func (m *Medium) newTransmission() *transmission {
	if n := len(m.freeTx); n > 0 {
		tx := m.freeTx[n-1]
		m.freeTx = m.freeTx[:n-1]
		telPoolHits.Inc()
		return tx
	}
	telPoolMisses.Inc()
	return &transmission{}
}

func (m *Medium) releaseTransmission(tx *transmission) {
	recs := tx.recs[:0]
	*tx = transmission{}
	tx.recs = recs
	m.freeTx = append(m.freeTx, tx)
}

func (s *station) removeReception(r *reception) {
	for i, rec := range s.active {
		if rec == r {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// reap removes a completed transmission from the in-flight list and, with
// the spatial index enabled, from its cell bucket and its sender's own list.
func (m *Medium) reap(tx *transmission) {
	if m.grid != nil {
		m.grid.removeTx(tx)
		own := tx.from.own
		for i, t := range own {
			if t == tx {
				own[i] = own[len(own)-1]
				own[len(own)-1] = nil
				tx.from.own = own[:len(own)-1]
				break
			}
		}
	}
	for i, t := range m.inflight {
		if t == tx {
			m.inflight = append(m.inflight[:i], m.inflight[i+1:]...)
			return
		}
	}
}

// HashState folds the medium's deterministic mid-run state into h, for
// checkpoint digests: the aggregate counters, every attached station's
// in-progress receptions, and the transmissions in flight. The MAC's RNG
// stream is digested through the run's stream tree.
func (m *Medium) HashState(h *checkpoint.Hasher) {
	h.Int(m.stats.Sent)
	h.Int(m.stats.DroppedBusy)
	h.Int(m.stats.Delivered)
	h.Int(m.stats.Collided)
	h.Int(m.stats.BelowSense)
	h.Int(m.stats.MissedAsleep)
	h.Int(m.stats.BytesOnAir)
	h.F64(float64(m.stats.AirtimeS))
	h.Int(m.stats.TxRequests)
	h.Int(m.stats.BackoffEvents)
	h.Int(len(m.ordered))
	for _, st := range m.ordered {
		h.Int(st.id)
		h.Int(len(st.active))
		for _, rc := range st.active {
			h.F64(rc.rssi)
			h.Bool(rc.corrupted)
		}
		h.Int(len(st.own))
	}
	h.Int(len(m.inflight))
	for _, tx := range m.inflight {
		h.Int(tx.frame.From)
		h.Int(tx.frame.Kind)
		h.Int(tx.frame.Bytes)
		h.F64(float64(tx.start))
		h.F64(float64(tx.end))
		h.F64(tx.pos.X)
		h.F64(tx.pos.Y)
	}
}
