// Package mac implements a simplified IEEE 802.11-style broadcast MAC over
// the radio model: carrier sensing with binary-exponential backoff,
// per-receiver RSSI sampling, receiver-side collision resolution with
// physical-layer capture, and sleep-awareness (frames transmitted while a
// receiver sleeps are lost, which is exactly the behaviour CoCoA's
// coordination must work around).
//
// Broadcast frames are unacknowledged, as in real 802.11: the paper's
// beacons are UDP broadcasts and rely on k-fold repetition for reliability.
package mac

import (
	"fmt"
	"sort"

	"cocoa/internal/geom"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

// Frame is a broadcast MAC frame. Payload is opaque to the MAC.
type Frame struct {
	From    int // sender node ID
	Kind    int // application-defined frame type
	Bytes   int // payload size including IP/UDP headers
	Payload any
}

// Endpoint is the per-node attachment point the network layer implements.
// The MAC drives radio-state energy accounting through Begin/End callbacks.
type Endpoint interface {
	// Position returns the node's current true position.
	Position() geom.Vec2
	// Listening reports whether the radio can currently receive
	// (awake, powered, not transmitting).
	Listening() bool
	// BeginTx and EndTx bracket a transmission for energy accounting.
	BeginTx()
	EndTx()
	// BeginRx and EndRx bracket an incoming frame for energy accounting.
	BeginRx()
	EndRx()
	// Deliver hands a successfully decoded frame and its RSSI up the stack.
	Deliver(f Frame, rssiDBm float64)
}

// Config holds MAC-layer parameters.
type Config struct {
	Model radio.Model
	// SlotS is the contention slot time in seconds (802.11b: 20 us).
	SlotS sim.Time
	// MinCW and MaxCW bound the contention window (slots).
	MinCW int
	MaxCW int
	// MaxAttempts bounds carrier-sense retries before the frame is dropped.
	MaxAttempts int
	// OverheadBytes is the MAC header + FCS added to every frame.
	OverheadBytes int
	// PreambleS is the fixed PLCP preamble time prepended to each frame.
	PreambleS sim.Time
}

// DefaultConfig returns 802.11b-like MAC parameters over the given radio
// model.
func DefaultConfig(m radio.Model) Config {
	return Config{
		Model:         m,
		SlotS:         20e-6,
		MinCW:         32,
		MaxCW:         1024,
		MaxAttempts:   7,
		OverheadBytes: 34,
		PreambleS:     192e-6,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.SlotS <= 0:
		return fmt.Errorf("mac: SlotS must be positive")
	case c.MinCW <= 0 || c.MaxCW < c.MinCW:
		return fmt.Errorf("mac: bad contention window [%d,%d]", c.MinCW, c.MaxCW)
	case c.MaxAttempts <= 0:
		return fmt.Errorf("mac: MaxAttempts must be positive")
	case c.OverheadBytes < 0 || c.PreambleS < 0:
		return fmt.Errorf("mac: negative overhead")
	}
	return nil
}

// Stats counts MAC-level outcomes across all stations. Forwarding
// efficiency for MRMM and beacon-delivery reliability both read from here.
type Stats struct {
	Sent          int // frames put on the air
	DroppedBusy   int // frames dropped after exhausting backoff attempts
	Delivered     int // (frame, receiver) successful deliveries
	Collided      int // (frame, receiver) losses due to collision
	BelowSense    int // (frame, receiver) losses due to weak signal
	MissedAsleep  int // (frame, receiver) losses because the radio slept
	BytesOnAir    int // total bytes transmitted including MAC overhead
	AirtimeS      sim.Time
	TxRequests    int
	BackoffEvents int
}

// transmission is one frame in flight on the shared medium.
type transmission struct {
	frame Frame
	from  *station
	start sim.Time
	end   sim.Time
	pos   geom.Vec2
}

// reception tracks one (transmission, receiver) pair in progress.
type reception struct {
	tx        *transmission
	rssi      float64
	corrupted bool
}

// station is the Medium's view of one attached endpoint.
type station struct {
	id     int
	ep     Endpoint
	active []*reception // receptions in progress at this station
}

// Medium is the shared broadcast channel all robots contend on.
type Medium struct {
	cfg      Config
	sim      *sim.Simulator
	rng      *sim.RNG
	stations map[int]*station
	// ordered lists stations in ascending ID order: per-receiver noise is
	// drawn in this order, keeping runs deterministic (map iteration
	// order would randomize the RNG stream).
	ordered  []*station
	inflight []*transmission
	stats    Stats
}

// NewMedium builds a medium over the given simulator. The RNG stream drives
// channel noise and backoff; it must be dedicated to the MAC.
func NewMedium(s *sim.Simulator, cfg Config, rng *sim.RNG) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Medium{
		cfg:      cfg,
		sim:      s,
		rng:      rng,
		stations: make(map[int]*station),
	}, nil
}

// Attach registers an endpoint under the given node ID. Attaching the same
// ID twice replaces the previous endpoint.
func (m *Medium) Attach(id int, ep Endpoint) {
	st := &station{id: id, ep: ep}
	if old, ok := m.stations[id]; ok {
		for i, s := range m.ordered {
			if s == old {
				m.ordered[i] = st
				break
			}
		}
	} else {
		pos := sort.Search(len(m.ordered), func(i int) bool { return m.ordered[i].id > id })
		m.ordered = append(m.ordered, nil)
		copy(m.ordered[pos+1:], m.ordered[pos:])
		m.ordered[pos] = st
	}
	m.stations[id] = st
}

// Stats returns a copy of the MAC counters.
func (m *Medium) Stats() Stats { return m.stats }

// Config returns the medium's configuration.
func (m *Medium) Config() Config { return m.cfg }

// Send queues a broadcast frame from the given node, contending for the
// channel with CSMA. The frame is transmitted after carrier sensing
// succeeds or dropped after Config.MaxAttempts busy rounds.
func (m *Medium) Send(from int, f Frame) error {
	st, ok := m.stations[from]
	if !ok {
		return fmt.Errorf("mac: unknown sender %d", from)
	}
	f.From = from
	m.stats.TxRequests++
	m.attempt(st, f, 1, m.cfg.MinCW)
	return nil
}

// attempt performs one carrier-sense round.
func (m *Medium) attempt(st *station, f Frame, attempt, cw int) {
	if !m.carrierBusy(st) {
		m.transmit(st, f)
		return
	}
	if attempt >= m.cfg.MaxAttempts {
		m.stats.DroppedBusy++
		return
	}
	m.stats.BackoffEvents++
	backoff := sim.Time(m.rng.Intn(cw)+1) * m.cfg.SlotS
	next := cw * 2
	if next > m.cfg.MaxCW {
		next = m.cfg.MaxCW
	}
	m.sim.Schedule(backoff, func() { m.attempt(st, f, attempt+1, next) })
}

// carrierBusy reports whether station st senses energy on the channel.
// Any in-flight transmission whose mean signal at st exceeds the receiver
// sensitivity counts, including the station's own transmissions.
func (m *Medium) carrierBusy(st *station) bool {
	now := m.sim.Now()
	pos := st.ep.Position()
	for _, tx := range m.inflight {
		if tx.end <= now {
			continue
		}
		if tx.from == st {
			return true
		}
		if m.cfg.Model.MeanRSSI(pos.Dist(tx.pos)) >= m.cfg.Model.SensitivityDBm {
			return true
		}
	}
	return false
}

// transmit puts the frame on the air and schedules per-receiver outcomes.
func (m *Medium) transmit(st *station, f Frame) {
	now := m.sim.Now()
	totalBytes := f.Bytes + m.cfg.OverheadBytes
	dur := m.cfg.PreambleS + m.cfg.Model.Airtime(totalBytes)
	tx := &transmission{frame: f, from: st, start: now, end: now + dur, pos: st.ep.Position()}
	m.inflight = append(m.inflight, tx)
	m.stats.Sent++
	m.stats.BytesOnAir += totalBytes
	m.stats.AirtimeS += dur

	st.ep.BeginTx()
	m.sim.Schedule(dur, func() {
		st.ep.EndTx()
		m.reap(tx)
	})

	for _, rcv := range m.ordered {
		if rcv == st {
			continue
		}
		m.beginReception(rcv, tx)
	}
}

// beginReception decides the fate of tx at receiver rcv and schedules the
// delivery (or loss) at end-of-frame.
func (m *Medium) beginReception(rcv *station, tx *transmission) {
	d := rcv.ep.Position().Dist(tx.pos)
	// Hard out-of-range cutoff: when even a +5-sigma fluctuation cannot
	// reach sensitivity, skip the receiver without drawing noise.
	if m.cfg.Model.MaxPlausibleRSSI(d) < m.cfg.Model.SensitivityDBm {
		m.stats.BelowSense++
		return
	}
	rssi := m.cfg.Model.SampleRSSI(d, m.rng)
	// Signals more than a margin below sensitivity neither decode nor
	// meaningfully interfere; skip them entirely.
	if rssi < m.cfg.Model.SensitivityDBm {
		m.stats.BelowSense++
		return
	}
	if !rcv.ep.Listening() {
		m.stats.MissedAsleep++
		return
	}

	rec := &reception{tx: tx, rssi: rssi}
	// Collision resolution against receptions already in progress.
	for _, other := range rcv.active {
		switch {
		case other.rssi >= rec.rssi+m.cfg.Model.CaptureThresholdDB:
			rec.corrupted = true
		case rec.rssi >= other.rssi+m.cfg.Model.CaptureThresholdDB:
			other.corrupted = true
		default:
			rec.corrupted = true
			other.corrupted = true
		}
	}
	rcv.active = append(rcv.active, rec)
	rcv.ep.BeginRx()

	dur := tx.end - m.sim.Now()
	m.sim.Schedule(dur, func() {
		rcv.ep.EndRx()
		rcv.removeReception(rec)
		switch {
		case rec.corrupted:
			m.stats.Collided++
		case !rcv.ep.Listening():
			// The radio went to sleep mid-frame.
			m.stats.MissedAsleep++
		default:
			m.stats.Delivered++
			rcv.ep.Deliver(tx.frame, rssi)
		}
	})
}

func (s *station) removeReception(r *reception) {
	for i, rec := range s.active {
		if rec == r {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// reap removes a completed transmission from the in-flight list.
func (m *Medium) reap(tx *transmission) {
	for i, t := range m.inflight {
		if t == tx {
			m.inflight = append(m.inflight[:i], m.inflight[i+1:]...)
			return
		}
	}
}
