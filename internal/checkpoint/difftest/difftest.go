// Package difftest is the differential replay harness behind the
// checkpoint/resume guarantee: for a given config it proves that
// interrupting the run at EVERY sampling tick and resuming from the
// snapshot yields a Result byte-identical to the uninterrupted run — and
// that the resumed runs leave the same telemetry deltas (counters and
// histograms; wall-clock spans are inherently nondeterministic and are
// excluded, matching the comparison the cocoaexp debug path uses).
//
// The harness runs the config three ways:
//
//  1. an oracle run, untouched by checkpointing;
//  2. one instrumented run that captures a wire-encoded snapshot at every
//     sampling tick and must still finish byte-identical to the oracle
//     (proof that observing the run does not perturb it);
//  3. one resume per captured snapshot — each decoded from its wire bytes
//     and continued to completion via ResumeFrom, modelling a process
//     that died right after persisting that checkpoint.
//
// The harness lives in its own package so any test — the suite here, the
// serve restart test, future scenario suites — can assert the same
// contract with one call.
package difftest

import (
	"context"
	"encoding/json"
	"testing"

	"cocoa/internal/checkpoint"
	"cocoa/internal/cocoa"
	"cocoa/internal/telemetry"
)

// Run asserts the checkpoint/resume contract for cfg: every sampling tick
// is a safe interruption point. It fails the test with the first tick (and
// diverged subsystems, when digest verification catches it) otherwise.
func Run(t testing.TB, cfg cocoa.Config) {
	t.Helper()
	ctx := context.Background()

	// Telemetry must be live so the resumed runs' instrument deltas can be
	// compared against the oracle's.
	wasEnabled := telemetry.Default.Enabled()
	telemetry.Default.SetEnabled(true)
	defer telemetry.Default.SetEnabled(wasEnabled)

	oracleBytes, oracleTel := oracleRun(t, ctx, cfg)

	// One instrumented pass captures the wire bytes of a snapshot at every
	// sampling tick; observing must not perturb the run.
	snaps, instrBytes, instrTel := capturePass(t, ctx, cfg)
	if string(instrBytes) != string(oracleBytes) {
		t.Fatalf("difftest: capturing checkpoints perturbed the run: result bytes differ from oracle")
	}
	if instrTel != oracleTel {
		t.Fatalf("difftest: capturing checkpoints perturbed telemetry:\noracle: %s\ncapture: %s", oracleTel, instrTel)
	}
	if len(snaps) == 0 {
		t.Fatalf("difftest: run produced no snapshots (config too short to sample?)")
	}

	for _, wire := range snaps {
		snap, err := checkpoint.Unmarshal(wire)
		if err != nil {
			t.Fatalf("difftest: decode captured snapshot: %v", err)
		}
		resBytes, resTel := resumeRun(t, ctx, snap)
		if string(resBytes) != string(oracleBytes) {
			t.Fatalf("difftest: resume from tick %d diverged from oracle result bytes", snap.TickIndex)
		}
		if resTel != oracleTel {
			t.Fatalf("difftest: resume from tick %d left different telemetry:\noracle: %s\nresumed: %s",
				snap.TickIndex, oracleTel, resTel)
		}
	}
}

// oracleRun executes cfg untouched and returns its result bytes and
// deterministic telemetry delta.
func oracleRun(t testing.TB, ctx context.Context, cfg cocoa.Config) ([]byte, string) {
	t.Helper()
	before := telemetry.Default.Snapshot()
	res, err := cocoa.RunContext(ctx, cfg)
	if err != nil {
		t.Fatalf("difftest: oracle run: %v", err)
	}
	return resultBytes(t, res), telDelta(t, before)
}

// capturePass executes cfg once with a snapshot captured at every
// sampling tick, returning the wire bytes per tick plus the run's result
// bytes and telemetry delta.
func capturePass(t testing.TB, ctx context.Context, cfg cocoa.Config) ([][]byte, []byte, string) {
	t.Helper()
	before := telemetry.Default.Snapshot()
	team, err := cocoa.NewTeam(cfg)
	if err != nil {
		t.Fatalf("difftest: build capture team: %v", err)
	}
	var snaps [][]byte
	team.SetCheckpointLabel("difftest")
	team.OnCheckpoint(1, func(s *checkpoint.Snapshot) error {
		b, err := checkpoint.Marshal(s)
		if err != nil {
			return err
		}
		snaps = append(snaps, b)
		return nil
	})
	res, err := team.RunContext(ctx)
	if err != nil {
		t.Fatalf("difftest: capture run: %v", err)
	}
	return snaps, resultBytes(t, res), telDelta(t, before)
}

// resumeRun continues snap to completion and returns the resumed run's
// result bytes and telemetry delta.
func resumeRun(t testing.TB, ctx context.Context, snap *checkpoint.Snapshot) ([]byte, string) {
	t.Helper()
	before := telemetry.Default.Snapshot()
	res, err := cocoa.ResumeFrom(ctx, snap)
	if err != nil {
		t.Fatalf("difftest: resume from tick %d: %v", snap.TickIndex, err)
	}
	return resultBytes(t, res), telDelta(t, before)
}

// resultBytes is the byte-identity standard: the canonical JSON encoding
// of the full Result.
func resultBytes(t testing.TB, res *cocoa.Result) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("difftest: encode result: %v", err)
	}
	return b
}

// telDelta renders the deterministic slice of the telemetry delta since
// before: counters and histograms, sorted by name by the registry. Spans
// measure wall time and gauges are levels, not per-run flows; both are
// excluded.
func telDelta(t testing.TB, before telemetry.Snapshot) string {
	t.Helper()
	d := telemetry.Diff(before, telemetry.Default.Snapshot())
	det := struct {
		Counters   []telemetry.CounterValue   `json:"counters"`
		Histograms []telemetry.HistogramValue `json:"histograms"`
	}{d.Counters, d.Histograms}
	b, err := json.Marshal(det)
	if err != nil {
		t.Fatalf("difftest: encode telemetry delta: %v", err)
	}
	return string(b)
}
