package difftest

import (
	"fmt"
	"testing"

	"cocoa/internal/cocoa"
	"cocoa/internal/scenario"
	"cocoa/internal/sim"
)

// suiteConfigs returns the configs the differential resume suite covers:
// the rob-faults family (lossy bursty channel + crashes), the swarm-scale
// MAC config, and two golden figure families (full CoCoA and
// odometry-only). Each is shrunk to a 120 s / 12-tick run so interrupting
// at every sampling tick stays affordable under -race.
func suiteConfigs() map[string]cocoa.Config {
	fams := scenario.QuickFamilies()
	configs := map[string]cocoa.Config{
		"rob-faults": fams["faults"],
		"cocoa":      fams["cocoa"],
		"odometry":   fams["odometry"],
		"scale":      scenario.SwarmConfig(40),
	}
	for name, cfg := range configs {
		cfg.DurationS = 120
		cfg.SampleIntervalS = 10
		configs[name] = cfg
	}
	return configs
}

// TestResumeEveryTick is the differential resume suite: for every config
// and worker-pool width, interrupting at every sampling tick and resuming
// must reproduce the uninterrupted run byte-for-byte (result and
// deterministic telemetry).
func TestResumeEveryTick(t *testing.T) {
	for name, cfg := range suiteConfigs() {
		for _, workers := range []int{1, 8} {
			cfg := cfg
			cfg.UpdateWorkers = workers
			// No t.Parallel(): the harness diffs the process-global
			// telemetry registry, so concurrent runs would pollute each
			// other's deltas.
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				Run(t, cfg)
			})
		}
	}
}

// TestSuiteTickCount pins the interruption density: the 120 s / 10 s
// configs must expose 12 sampling ticks, so the suite above really does
// cut the run at 12 distinct points, not a degenerate few.
func TestSuiteTickCount(t *testing.T) {
	for name, cfg := range suiteConfigs() {
		if cfg.DurationS != 120 || cfg.SampleIntervalS != sim.Time(10) {
			t.Fatalf("%s: suite config not shrunk: duration=%v sample=%v", name, cfg.DurationS, cfg.SampleIntervalS)
		}
	}
}
