package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample returns a well-formed snapshot for codec tests.
func sample() *Snapshot {
	return &Snapshot{
		TickIndex:  7,
		SimNowS:    70.5,
		Label:      "unit",
		ConfigJSON: []byte(`{"robots":4}`),
		ResultJSON: []byte(`{"avg_error":[0.5]}`),
		Digests: []Digest{
			{Name: "sim", Sum: 0xdeadbeef},
			{Name: "rng", Sum: 42},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	b, err := Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.TickIndex != s.TickIndex || got.SimNowS != s.SimNowS || got.Label != s.Label {
		t.Fatalf("header fields lost: got %+v want %+v", got, s)
	}
	if string(got.ConfigJSON) != string(s.ConfigJSON) || string(got.ResultJSON) != string(s.ResultJSON) {
		t.Fatalf("payload fields lost")
	}
	if len(got.Digests) != 2 || got.Digests[0] != s.Digests[0] || got.Digests[1] != s.Digests[1] {
		t.Fatalf("digests lost: %+v", got.Digests)
	}
	// Re-marshal must be deterministic.
	b2, err := Marshal(got)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if string(b) != string(b2) {
		t.Fatalf("Marshal not deterministic across a round trip")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := Marshal(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil snapshot: err=%v, want ErrCorrupt", err)
	}
	bad := sample()
	bad.TickIndex = 0
	if _, err := Marshal(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("invalid snapshot: err=%v, want ErrCorrupt", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		reason string
	}{
		{"tick zero", func(s *Snapshot) { s.TickIndex = 0 }, "tick index"},
		{"tick negative", func(s *Snapshot) { s.TickIndex = -3 }, "tick index"},
		{"nan clock", func(s *Snapshot) { s.SimNowS = nan() }, "sim clock"},
		{"negative clock", func(s *Snapshot) { s.SimNowS = -1 }, "sim clock"},
		{"no config", func(s *Snapshot) { s.ConfigJSON = nil }, "no config"},
		{"no digests", func(s *Snapshot) { s.Digests = nil }, "no digests"},
		{"unnamed digest", func(s *Snapshot) { s.Digests[1].Name = "" }, "unnamed"},
		{"duplicate digest", func(s *Snapshot) { s.Digests[1].Name = s.Digests[0].Name }, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sample()
			tc.mutate(s)
			err := s.Validate()
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err=%v, want ErrCorrupt", err)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Fatalf("err=%v, want reason containing %q", err, tc.reason)
			}
		})
	}
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	good, err := Marshal(sample())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	corrupt := func(name string, mutate func([]byte) []byte, reason string) {
		t.Run(name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			b = mutate(b)
			s, err := Unmarshal(b)
			if s != nil || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("snapshot=%v err=%v, want nil + ErrCorrupt", s, err)
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("err=%T, want *FormatError", err)
			}
			if !strings.Contains(err.Error(), reason) {
				t.Fatalf("err=%v, want reason containing %q", err, reason)
			}
		})
	}
	corrupt("empty", func(b []byte) []byte { return nil }, "truncated")
	corrupt("short header", func(b []byte) []byte { return b[:headerLen-1] }, "truncated")
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "bad magic")
	corrupt("future version", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[8:], Version+1)
		return b
	}, "unsupported snapshot version")
	corrupt("huge length", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[10:], maxPayload+1)
		return b
	}, "exceeds limit")
	corrupt("length mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[10:], uint32(len(b)-headerLen+1))
		return b
	}, "does not match")
	corrupt("truncated payload", func(b []byte) []byte { return b[:len(b)-2] }, "does not match")
	corrupt("bit flip in payload", func(b []byte) []byte { b[headerLen+3] ^= 0x10; return b }, "checksum")
	corrupt("bad crc field", func(b []byte) []byte { b[14] ^= 0x01; return b }, "checksum")
	corrupt("non-json payload", func(b []byte) []byte {
		payload := []byte("not json at all")
		return frame(payload)
	}, "decode payload")
	corrupt("valid json invalid snapshot", func(b []byte) []byte {
		payload := []byte(`{"tick":0}`)
		return frame(payload)
	}, "tick index")
}

// frame wraps payload in a correct header (right length and CRC), used to
// reach the post-checksum decode paths.
func frame(payload []byte) []byte {
	b := make([]byte, headerLen, headerLen+len(payload))
	copy(b, magic)
	binary.LittleEndian.PutUint16(b[8:], Version)
	binary.LittleEndian.PutUint32(b[10:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[14:], crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "latest.ckpt")
	s := sample()
	if err := WriteFile(path, s); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.TickIndex != s.TickIndex || string(got.ConfigJSON) != string(s.ConfigJSON) {
		t.Fatalf("round trip through file lost data: %+v", got)
	}
	// Overwrite replaces atomically (same path, new content).
	s.TickIndex = 8
	if err := WriteFile(path, s); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile after overwrite: %v", err)
	}
	if got.TickIndex != 8 {
		t.Fatalf("overwrite lost: tick=%d", got.TickIndex)
	}
}

func TestWriteFileRejectsInvalid(t *testing.T) {
	bad := sample()
	bad.Digests = nil
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := WriteFile(path, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("invalid snapshot still wrote a file")
	}
}

func TestWriteFileFsErrors(t *testing.T) {
	dir := t.TempDir()
	// Parent "directory" is a regular file: MkdirAll fails.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(blocker, "sub", "latest.ckpt"), sample()); err == nil {
		t.Fatalf("WriteFile under a regular file succeeded")
	}
	// Destination path is an existing directory: the final rename fails and
	// the temp file is cleaned up.
	asDir := filepath.Join(dir, "isdir")
	if err := os.MkdirAll(filepath.Join(asDir, "nested"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(asDir, sample()); err == nil {
		t.Fatalf("WriteFile over a non-empty directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Fatalf("temp file %s left behind after rename failure", e.Name())
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err=%v, want fs not-exist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file misclassified as corrupt")
	}
}

func TestReadFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestErrorStrings(t *testing.T) {
	fe := formatErrorf("because %d", 7)
	if fe.Error() != "checkpoint: because 7" {
		t.Fatalf("FormatError.Error() = %q", fe.Error())
	}
	de := &DivergenceError{Tick: 3, Subsystems: []string{"rng", "mac"}}
	msg := de.Error()
	if !strings.Contains(msg, "tick 3") || !strings.Contains(msg, "rng") || !strings.Contains(msg, "mac") {
		t.Fatalf("DivergenceError.Error() = %q", msg)
	}
}

func TestHasher(t *testing.T) {
	// Identical write sequences hash identically; any difference changes
	// the sum.
	base := func() uint64 {
		h := NewHasher()
		h.U64(1)
		h.I64(-2)
		h.Int(3)
		h.F64(4.5)
		h.Bool(true)
		h.Str("abc")
		return h.Sum()
	}
	if base() != base() {
		t.Fatalf("Hasher not deterministic")
	}
	variants := []func(*Hasher){
		func(h *Hasher) {
			h.U64(2)
			h.I64(-2)
			h.Int(3)
			h.F64(4.5)
			h.Bool(true)
			h.Str("abc")
		},
		func(h *Hasher) {
			h.U64(1)
			h.I64(2)
			h.Int(3)
			h.F64(4.5)
			h.Bool(true)
			h.Str("abc")
		},
		func(h *Hasher) {
			h.U64(1)
			h.I64(-2)
			h.Int(4)
			h.F64(4.5)
			h.Bool(true)
			h.Str("abc")
		},
		func(h *Hasher) {
			h.U64(1)
			h.I64(-2)
			h.Int(3)
			h.F64(4.6)
			h.Bool(true)
			h.Str("abc")
		},
		func(h *Hasher) {
			h.U64(1)
			h.I64(-2)
			h.Int(3)
			h.F64(4.5)
			h.Bool(false)
			h.Str("abc")
		},
		func(h *Hasher) {
			h.U64(1)
			h.I64(-2)
			h.Int(3)
			h.F64(4.5)
			h.Bool(true)
			h.Str("abd")
		},
	}
	for i, v := range variants {
		h := NewHasher()
		v(h)
		if h.Sum() == base() {
			t.Fatalf("variant %d collided with base", i)
		}
	}
	// -0.0 and +0.0 have different bit patterns and must hash differently.
	hp, hn := NewHasher(), NewHasher()
	hp.F64(0.0)
	hn.F64(negZero())
	if hp.Sum() == hn.Sum() {
		t.Fatalf("+0.0 and -0.0 hashed equal; bit-pattern hashing broken")
	}
	// Str is length-prefixed: "ab"+"c" vs "a"+"bc" must differ.
	h1, h2 := NewHasher(), NewHasher()
	h1.Str("ab")
	h1.Str("c")
	h2.Str("a")
	h2.Str("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatalf("Str concatenation ambiguity: length prefix not working")
	}
	// Empty hasher equals the FNV offset basis.
	if NewHasher().Sum() != uint64(fnvOffset) {
		t.Fatalf("empty hasher sum = %d, want offset basis", NewHasher().Sum())
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
