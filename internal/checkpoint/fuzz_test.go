// Fuzz coverage for the snapshot codec, in an external test package so it
// can drive the real resume path (internal/cocoa) against arbitrary
// snapshot bytes — the property under test is that hostile input produces
// typed errors, never a panic, and that anything that decodes also
// round-trips and resumes coherently.
package checkpoint_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"cocoa/internal/checkpoint"
	"cocoa/internal/cocoa"
)

// fuzzConfig is the canonical tiny run the oracle comparison keys on: six
// sampling ticks, small grid, full pipeline.
func fuzzConfig() cocoa.Config {
	cfg := cocoa.DefaultConfig()
	cfg.NumRobots = 6
	cfg.NumEquipped = 2
	cfg.DurationS = 60
	cfg.SampleIntervalS = 10
	cfg.GridCellM = 8
	cfg.Calibration.Samples = 20000
	return cfg
}

// fuzzOracle lazily runs the canonical config once: its result bytes, its
// embedded-config bytes, and one real mid-run snapshot per tick.
var fuzzOracle struct {
	once    sync.Once
	err     error
	cfgJSON []byte
	result  []byte
	wires   [][]byte
}

func fuzzSetup() error {
	fuzzOracle.once.Do(func() {
		cfg := fuzzConfig()
		b, err := json.Marshal(cfg)
		if err != nil {
			fuzzOracle.err = err
			return
		}
		fuzzOracle.cfgJSON = b
		team, err := cocoa.NewTeam(cfg)
		if err != nil {
			fuzzOracle.err = err
			return
		}
		team.OnCheckpoint(1, func(s *checkpoint.Snapshot) error {
			w, err := checkpoint.Marshal(s)
			if err != nil {
				return err
			}
			fuzzOracle.wires = append(fuzzOracle.wires, w)
			return nil
		})
		res, err := team.RunContext(context.Background())
		if err != nil {
			fuzzOracle.err = err
			return
		}
		fuzzOracle.result, fuzzOracle.err = json.Marshal(res)
	})
	return fuzzOracle.err
}

// FuzzCheckpointRoundTrip holds the codec to three properties on arbitrary
// bytes:
//
//  1. decoding never panics; failures are *FormatError wrapping
//     ErrCorrupt;
//  2. whatever decodes re-encodes and decodes again to the same snapshot
//     (marshal/unmarshal is a retraction);
//  3. a decoded snapshot whose embedded config is the canonical tiny run
//     either resumes to the oracle's exact result bytes or fails with a
//     typed error (divergence or format) — fuzzed digests cannot smuggle
//     a silently-wrong result past verification.
func FuzzCheckpointRoundTrip(f *testing.F) {
	if err := fuzzSetup(); err != nil {
		f.Fatalf("oracle setup: %v", err)
	}
	f.Add([]byte{})
	f.Add([]byte("cocoackp"))
	f.Add([]byte("not a snapshot at all"))
	for _, w := range fuzzOracle.wires {
		f.Add(w)
	}
	// A corrupted real snapshot: one flipped payload bit.
	flip := append([]byte(nil), fuzzOracle.wires[0]...)
	flip[len(flip)-3] ^= 0x04
	f.Add(flip)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := checkpoint.Unmarshal(b)
		if err != nil {
			if s != nil {
				t.Fatalf("Unmarshal returned both snapshot and error %v", err)
			}
			if !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("decode failure not classified corrupt: %v", err)
			}
			var fe *checkpoint.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode failure not a *FormatError: %T %v", err, err)
			}
			return
		}

		// Retraction: re-encode, decode, compare canonical JSON forms.
		w2, err := checkpoint.Marshal(s)
		if err != nil {
			t.Fatalf("re-Marshal of decoded snapshot failed: %v", err)
		}
		s2, err := checkpoint.Unmarshal(w2)
		if err != nil {
			t.Fatalf("decode of re-Marshal failed: %v", err)
		}
		j1, _ := json.Marshal(s)
		j2, _ := json.Marshal(s2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip not stable:\n%s\n%s", j1, j2)
		}

		// Resume-vs-oracle, only when the embedded config is the canonical
		// run (anything else would be an arbitrary-length simulation).
		if !bytes.Equal(s.ConfigJSON, fuzzOracle.cfgJSON) {
			return
		}
		res, err := cocoa.ResumeFrom(context.Background(), s)
		if err != nil {
			var de *checkpoint.DivergenceError
			if errors.As(err, &de) || errors.Is(err, checkpoint.ErrCorrupt) {
				return // typed rejection of a tampered snapshot
			}
			t.Fatalf("resume failed with untyped error: %v", err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fuzzOracle.result) {
			t.Fatalf("fuzzed snapshot resumed to a result that differs from the oracle")
		}
	})
}
