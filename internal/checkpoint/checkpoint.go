// Package checkpoint implements the versioned snapshot codec behind the
// simulator's checkpoint/resume subsystem.
//
// A Snapshot captures everything needed to continue a run mid-flight with
// byte-identical results: the full run configuration, the interruption
// point (sampling-tick index and virtual clock), the partial Result at
// that point, and one digest per deterministic subsystem (event engine,
// RNG stream tree, belief grids, MAC medium, mobility legs, fault chains,
// per-robot state). Resume replays the run deterministically from tick
// zero and checks the live digests against the snapshot's at the recorded
// tick — a mismatch is reported as a *DivergenceError naming the
// subsystems that differ, which is what makes long runs bisectable (see
// DESIGN.md §14 for the model and its compatibility rule).
//
// The package is a leaf: it depends only on the standard library, so every
// simulation layer can expose a HashState method without import cycles.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Wire format: an 8-byte magic, a version, a payload length, a CRC32
// (IEEE) of the payload, then the JSON payload. The binary framing exists
// so truncation and bit rot are detected before the JSON decoder runs.
const (
	magic = "cocoackp"
	// Version is the snapshot wire-format version this build reads and
	// writes. Decoding any other version fails with a *FormatError: a
	// snapshot is only meaningful to the code revision that wrote it
	// (digest layouts track the simulator's internals), so there is no
	// cross-version migration — see DESIGN.md §14.
	Version   = 1
	headerLen = len(magic) + 2 + 4 + 4

	// maxPayload bounds the decoded payload so a corrupt length field
	// cannot drive a huge allocation.
	maxPayload = 1 << 30
)

// ErrCorrupt is the sentinel wrapped by every decoding failure: truncated
// input, bad magic, length or checksum mismatch, malformed payload.
// errors.Is(err, ErrCorrupt) classifies an error as "this is not a valid
// snapshot" without string matching.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// ErrStop is the sentinel a checkpoint hook returns to stop the run at the
// snapshot just captured. The run's RunContext call returns an error
// wrapping ErrStop; the partial run is discarded (it lives on in the
// snapshot). The differential test harness uses this to model "the process
// died right after checkpointing".
var ErrStop = errors.New("checkpoint: run stopped at checkpoint")

// FormatError reports why input failed to decode as a snapshot. It wraps
// ErrCorrupt.
type FormatError struct {
	// Reason is the human-readable explanation.
	Reason string
}

// Error implements the error interface.
func (e *FormatError) Error() string { return "checkpoint: " + e.Reason }

// Unwrap ties every FormatError to the ErrCorrupt sentinel.
func (e *FormatError) Unwrap() error { return ErrCorrupt }

// formatErrorf builds a *FormatError with a formatted reason.
func formatErrorf(format string, args ...any) *FormatError {
	return &FormatError{Reason: fmt.Sprintf(format, args...)}
}

// DivergenceError reports that a resumed run's replayed state did not
// match the snapshot at the recorded tick: either the simulation code
// changed since the snapshot was written, or a source of nondeterminism
// crept in. Subsystems names the digests that differ — the starting point
// for bisection.
type DivergenceError struct {
	// Tick is the sampling-tick index at which verification ran.
	Tick int
	// Subsystems lists the digest names that mismatched, in digest order.
	// The pseudo-name "layout" reports a digest-set shape mismatch (the
	// snapshot was written by a different code revision).
	Subsystems []string
}

// Error implements the error interface.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("checkpoint: replay diverged from snapshot at tick %d: %v",
		e.Tick, e.Subsystems)
}

// Digest is one subsystem's state fingerprint (FNV-1a 64 over its
// deterministic fields, see Hasher).
type Digest struct {
	Name string `json:"name"`
	Sum  uint64 `json:"sum"`
}

// Snapshot is one mid-run capture point.
type Snapshot struct {
	// TickIndex is the 1-based sampling tick after which the snapshot was
	// taken; SimNowS is the virtual clock at that tick.
	TickIndex int     `json:"tick"`
	SimNowS   float64 `json:"sim_now_s"`
	// Label is free-form provenance (a job ID, an experiment name).
	Label string `json:"label,omitempty"`
	// ConfigJSON is the run's full configuration; resume replays it.
	ConfigJSON json.RawMessage `json:"config"`
	// ResultJSON is the partial result at the capture point, for offline
	// inspection; resume rebuilds it by replay and never reads it.
	ResultJSON json.RawMessage `json:"result,omitempty"`
	// Digests fingerprint every deterministic subsystem at the capture
	// point, in a fixed order.
	Digests []Digest `json:"digests"`
}

// Validate checks the invariants every well-formed snapshot satisfies.
// Violations are *FormatError (wrapping ErrCorrupt): a snapshot that
// decodes but fails Validate is still not a usable snapshot.
func (s *Snapshot) Validate() error {
	switch {
	case s.TickIndex < 1:
		return formatErrorf("tick index %d out of range", s.TickIndex)
	case math.IsNaN(s.SimNowS) || math.IsInf(s.SimNowS, 0) || s.SimNowS < 0:
		return formatErrorf("sim clock %v out of range", s.SimNowS)
	case len(s.ConfigJSON) == 0:
		return formatErrorf("snapshot carries no config")
	case len(s.Digests) == 0:
		return formatErrorf("snapshot carries no digests")
	}
	seen := make(map[string]bool, len(s.Digests))
	for _, d := range s.Digests {
		if d.Name == "" {
			return formatErrorf("unnamed digest")
		}
		if seen[d.Name] {
			return formatErrorf("duplicate digest %q", d.Name)
		}
		seen[d.Name] = true
	}
	return nil
}

// Marshal encodes the snapshot into the framed wire format.
func Marshal(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, formatErrorf("nil snapshot")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, formatErrorf("encode payload: %v", err)
	}
	b := make([]byte, headerLen+len(payload))
	copy(b, magic)
	binary.LittleEndian.PutUint16(b[8:], Version)
	binary.LittleEndian.PutUint32(b[10:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[14:], crc32.ChecksumIEEE(payload))
	copy(b[headerLen:], payload)
	return b, nil
}

// Unmarshal decodes a framed snapshot. Every failure — truncation, bad
// magic, unsupported version, checksum mismatch, malformed or invalid
// payload — is a *FormatError wrapping ErrCorrupt; Unmarshal never panics
// on hostile input.
func Unmarshal(b []byte) (*Snapshot, error) {
	if len(b) < headerLen {
		return nil, formatErrorf("truncated header: %d bytes", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, formatErrorf("bad magic %q", b[:len(magic)])
	}
	if v := binary.LittleEndian.Uint16(b[8:]); v != Version {
		return nil, formatErrorf("unsupported snapshot version %d (this build reads %d)", v, Version)
	}
	n := binary.LittleEndian.Uint32(b[10:])
	if n > maxPayload {
		return nil, formatErrorf("payload length %d exceeds limit", n)
	}
	if int(n) != len(b)-headerLen {
		return nil, formatErrorf("payload length %d does not match %d trailing bytes", n, len(b)-headerLen)
	}
	payload := b[headerLen:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(b[14:]) {
		return nil, formatErrorf("payload checksum mismatch")
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, formatErrorf("decode payload: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteFile atomically persists the snapshot at path: the bytes land in a
// temporary file in the same directory and replace path with a rename, so
// a reader (or a crash) never observes a half-written snapshot. Parent
// directories are created as needed.
func WriteFile(path string, s *Snapshot) error {
	b, err := Marshal(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFile loads a snapshot written by WriteFile. Decoding failures are
// *FormatError wrapping ErrCorrupt; missing files surface the fs error.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return Unmarshal(b)
}
