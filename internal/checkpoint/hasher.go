package checkpoint

import "math"

// FNV-1a 64 parameters.
const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// Hasher folds a subsystem's deterministic state into an FNV-1a 64
// fingerprint. Subsystems implement
//
//	HashState(h *checkpoint.Hasher)
//
// writing their raw fields in a fixed order; the methods must be
// side-effect free (no lazy readouts, no RNG draws) so that taking a
// snapshot can never perturb the run it observes. Floats are hashed by
// their IEEE 754 bit patterns, so two states hash equal exactly when they
// are bit-identical — the same standard the differential replay tests
// hold results to.
type Hasher struct {
	h uint64
}

// NewHasher returns a Hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Sum returns the current fingerprint.
func (h *Hasher) Sum() uint64 { return h.h }

func (h *Hasher) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= fnvPrime
}

// U64 folds a uint64 (little-endian bytes).
func (h *Hasher) U64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// I64 folds an int64.
func (h *Hasher) I64(v int64) { h.U64(uint64(v)) }

// Int folds an int.
func (h *Hasher) Int(v int) { h.U64(uint64(int64(v))) }

// F64 folds a float64 by its bit pattern (NaNs with different payloads
// hash differently; that is intentional — bit-identity is the standard).
func (h *Hasher) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bool folds a bool.
func (h *Hasher) Bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// Str folds a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}
