package obs

import (
	"sync"
	"testing"
	"time"
)

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.SetTicks(3, 10)
	p.SetRun(1, 2)
	p.Start(time.Now())
	if tick, total := p.Ticks(); tick != 0 || total != 0 {
		t.Fatalf("nil Ticks() = (%d, %d), want (0, 0)", tick, total)
	}
	if done, total := p.Run(); done != 0 || total != 0 {
		t.Fatalf("nil Run() = (%d, %d), want (0, 0)", done, total)
	}
	if f := p.Fraction(); f != 0 {
		t.Fatalf("nil Fraction() = %v, want 0", f)
	}
	if _, ok := p.ETA(time.Now()); ok {
		t.Fatal("nil ETA() reported ok")
	}
}

func TestProgressTicksRoundTrip(t *testing.T) {
	p := &Progress{}
	p.SetTicks(37, 120)
	if tick, total := p.Ticks(); tick != 37 || total != 120 {
		t.Fatalf("Ticks() = (%d, %d), want (37, 120)", tick, total)
	}
	p.SetRun(2, 5)
	if done, total := p.Run(); done != 2 || total != 5 {
		t.Fatalf("Run() = (%d, %d), want (2, 5)", done, total)
	}
}

func TestProgressPackClamps(t *testing.T) {
	p := &Progress{}
	p.SetTicks(-3, 1<<40)
	tick, total := p.Ticks()
	if tick != 0 {
		t.Fatalf("negative tick clamped to %d, want 0", tick)
	}
	if total != 1<<32-1 {
		t.Fatalf("oversized total clamped to %d, want %d", total, 1<<32-1)
	}
}

func TestProgressFraction(t *testing.T) {
	p := &Progress{}
	if f := p.Fraction(); f != 0 {
		t.Fatalf("empty Fraction() = %v, want 0", f)
	}
	p.SetTicks(25, 100)
	if f := p.Fraction(); f != 0.25 {
		t.Fatalf("tick-only Fraction() = %v, want 0.25", f)
	}
	// Run totals take over: 1 full run + a half-done run out of 4.
	p.SetTicks(50, 100)
	p.SetRun(1, 4)
	if f := p.Fraction(); f != 0.375 {
		t.Fatalf("run Fraction() = %v, want 0.375", f)
	}
	// Overshoot clamps to 1.
	p.SetTicks(200, 100)
	p.SetRun(4, 4)
	if f := p.Fraction(); f != 1 {
		t.Fatalf("overshoot Fraction() = %v, want 1", f)
	}
}

func TestProgressETA(t *testing.T) {
	p := &Progress{}
	now := time.Unix(1000, 0)
	if _, ok := p.ETA(now); ok {
		t.Fatal("ETA before Start reported ok")
	}
	p.Start(now)
	if _, ok := p.ETA(now.Add(time.Second)); ok {
		t.Fatal("ETA with zero progress reported ok")
	}
	p.SetTicks(50, 100)
	eta, ok := p.ETA(now.Add(10 * time.Second))
	if !ok {
		t.Fatal("ETA not ok with progress and elapsed time")
	}
	if eta != 10*time.Second {
		t.Fatalf("ETA = %v, want 10s (half done after 10s)", eta)
	}
	// First Start wins: re-anchoring later must not shrink elapsed.
	p.Start(now.Add(5 * time.Second))
	eta2, ok := p.ETA(now.Add(10 * time.Second))
	if !ok || eta2 != eta {
		t.Fatalf("ETA after second Start = (%v, %v), want (%v, true)", eta2, ok, eta)
	}
	// Zero or negative elapsed yields no estimate.
	if _, ok := p.ETA(now); ok {
		t.Fatal("ETA with zero elapsed reported ok")
	}
	// Done: remaining clamps at zero.
	p.SetTicks(100, 100)
	eta3, ok := p.ETA(now.Add(time.Minute))
	if !ok || eta3 != 0 {
		t.Fatalf("ETA at completion = (%v, %v), want (0, true)", eta3, ok)
	}
}

func TestProgressConcurrentReaders(t *testing.T) {
	p := &Progress{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetTicks(i%1000, 1000)
			p.SetRun(i%10, 10)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				tick, total := p.Ticks()
				if total != 0 && total != 1000 {
					t.Errorf("torn read: total = %d", total)
					return
				}
				if tick > 1000 {
					t.Errorf("torn read: tick = %d", tick)
					return
				}
				p.Fraction()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
