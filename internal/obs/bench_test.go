package obs

import (
	"testing"
	"time"
)

// The disabled path of every record site must stay free: a nil Progress
// or Trace pointer degenerates each call to a nil check, with zero
// allocations. These benchmarks pin that contract (alloc counts are
// asserted by the 0-allocs test below; timings feed BENCH_PR10.json).

func BenchmarkProgressSetTicksDisabled(b *testing.B) {
	var p *Progress
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.SetTicks(i, 1000)
	}
}

func BenchmarkProgressSetTicksEnabled(b *testing.B) {
	p := &Progress{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.SetTicks(i, 1000)
	}
}

func BenchmarkTraceInstantDisabled(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(0, "mac-frame", float64(i), nil)
	}
}

func BenchmarkTraceBeginEndDisabled(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin(0, "window", float64(i), nil)
		tr.End(0, float64(i)+0.5)
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	var p *Progress
	var tr *Trace
	cases := map[string]func(){
		"Progress.SetTicks": func() { p.SetTicks(1, 2) },
		"Progress.SetRun":   func() { p.SetRun(1, 2) },
		"Progress.Start":    func() { p.Start(time.Unix(1, 0)) },
		"Trace.Begin":       func() { tr.Begin(0, "x", 1, nil) },
		"Trace.End":         func() { tr.End(0, 1) },
		"Trace.Complete":    func() { tr.Complete(0, "x", 1, 1, nil) },
		"Trace.Instant":     func() { tr.Instant(0, "x", 1, nil) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s disabled path allocates %v allocs/op, want 0", name, allocs)
		}
	}
}
