package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Trace event phases (the Chrome trace-event subset this package emits).
const (
	PhaseBegin    = "B" // span start, paired with a later PhaseEnd on the same track
	PhaseEnd      = "E" // span end
	PhaseComplete = "X" // self-contained span with an explicit duration
	PhaseInstant  = "i" // point event
	PhaseMeta     = "M" // metadata (process/thread names)
)

// TraceEvent is one record in Chrome trace-event JSON ("JSON Array
// Format" / the traceEvents envelope), loadable in Perfetto and
// chrome://tracing. Timestamps and durations are microseconds; this
// package records them on the simulation's virtual clock, so a trace of a
// deterministic run is itself deterministic.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace accumulates the span timeline of one run: hierarchical B/E spans
// per track (tid), self-contained X spans, instants, and metadata. All
// record methods are nil-safe no-ops, so call sites need no enabled flag
// beyond the pointer itself — but sites that build an Args map must still
// guard on the pointer, or the map allocation leaks into the disabled
// path. Recording appends under a mutex; the simulation emits events from
// its single-threaded event loop, so insertion order is deterministic.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
	// open tracks the in-flight B spans per tid (a name stack), so an
	// aborted or duration-truncated run can be closed into balanced form.
	open map[int][]string
}

// NewTrace returns an empty recorder.
func NewTrace() *Trace {
	return &Trace{open: map[int][]string{}}
}

// Begin opens a span on track tid at simulation time atS (seconds).
func (t *Trace) Begin(tid int, name string, atS float64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: PhaseBegin, TsUs: atS * 1e6, TID: tid, Args: args,
	})
	t.open[tid] = append(t.open[tid], name)
}

// End closes the innermost open span on track tid at simulation time atS.
// Closing an empty track is a no-op (the Begin was never recorded).
func (t *Trace) End(tid int, atS float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	stack := t.open[tid]
	if len(stack) == 0 {
		return
	}
	name := stack[len(stack)-1]
	t.open[tid] = stack[:len(stack)-1]
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: PhaseEnd, TsUs: atS * 1e6, TID: tid,
	})
}

// Complete records a self-contained span of durS seconds starting at atS.
func (t *Trace) Complete(tid int, name string, atS, durS float64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: PhaseComplete, TsUs: atS * 1e6, DurUs: durS * 1e6,
		TID: tid, Args: args,
	})
}

// Instant records a point event at simulation time atS.
func (t *Trace) Instant(tid int, name string, atS float64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: PhaseInstant, TsUs: atS * 1e6, TID: tid,
		Scope: "t", Args: args,
	})
}

// SetProcessName attaches a process_name metadata record, which Perfetto
// renders as the track group's title (e.g. a job ID).
func (t *Trace) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{
		Name: "process_name", Phase: PhaseMeta, Args: map[string]any{"name": name},
	})
}

// SetThreadName titles track tid (e.g. "event-loop", "robot 7").
func (t *Trace) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Phase: PhaseMeta, TID: tid, Args: map[string]any{"name": name},
	})
}

// CloseOpen ends every still-open span at simulation time atS, innermost
// first per track. A window whose scheduled end falls past the run's
// DurationS leaves its Begin dangling; closing here keeps every exported
// trace balanced.
func (t *Trace) CloseOpen(atS float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tids := make([]int, 0, len(t.open))
	for tid := range t.open {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		stack := t.open[tid]
		for i := len(stack) - 1; i >= 0; i-- {
			t.events = append(t.events, TraceEvent{
				Name: stack[i], Phase: PhaseEnd, TsUs: atS * 1e6, TID: tid,
			})
		}
		delete(t.open, tid)
	}
}

// Len returns the number of recorded events; 0 on nil.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in insertion order.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// traceFile is the on-disk envelope ("JSON Object Format").
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// WriteJSON serializes the trace in Chrome trace-event JSON. Events keep
// insertion order — the deterministic order of the simulation's event
// loop — so identical runs serialize to identical bytes.
func (t *Trace) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ReadTrace is the strict decoder for WriteJSON's output: unknown fields,
// unknown phases, malformed values, and unbalanced B/E spans are all
// errors, so a trace that decodes cleanly is loadable and well-nested.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f traceFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: decode trace: %w", err)
	}
	open := map[[2]int][]string{}
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("obs: trace event %d: empty name", i)
		}
		switch ev.Phase {
		case PhaseBegin:
			key := [2]int{ev.PID, ev.TID}
			open[key] = append(open[key], ev.Name)
		case PhaseEnd:
			key := [2]int{ev.PID, ev.TID}
			stack := open[key]
			if len(stack) == 0 {
				return nil, fmt.Errorf("obs: trace event %d: E %q on pid=%d tid=%d with no open span",
					i, ev.Name, ev.PID, ev.TID)
			}
			if top := stack[len(stack)-1]; top != ev.Name {
				return nil, fmt.Errorf("obs: trace event %d: E %q does not match open span %q", i, ev.Name, top)
			}
			open[key] = stack[:len(stack)-1]
		case PhaseComplete:
			if ev.DurUs < 0 {
				return nil, fmt.Errorf("obs: trace event %d: X %q with negative duration", i, ev.Name)
			}
		case PhaseInstant, PhaseMeta:
		default:
			return nil, fmt.Errorf("obs: trace event %d: unknown phase %q", i, ev.Phase)
		}
		if ev.Phase != PhaseMeta && ev.TsUs < 0 {
			return nil, fmt.Errorf("obs: trace event %d: negative timestamp", i)
		}
	}
	for key, stack := range open {
		if len(stack) > 0 {
			return nil, fmt.Errorf("obs: unbalanced trace: %d span(s) still open on pid=%d tid=%d (innermost %q)",
				len(stack), key[0], key[1], stack[len(stack)-1])
		}
	}
	return f.TraceEvents, nil
}
