// Package obs is the operational observability layer of the CoCoA stack,
// built on top of internal/telemetry's instrument registry. Where
// telemetry answers "what did the run do" (counters, distributions,
// spans), obs answers "what is the process doing right now and how do I
// look at it from the outside":
//
//   - Prometheus text exposition: WriteMetrics renders a telemetry
//     Snapshot — every counter, gauge, histogram (_bucket/_sum/_count
//     with +Inf), and span — plus Go runtime metrics and caller-supplied
//     Samples in the text format any Prometheus scraper ingests; Handler
//     wraps it as GET /metrics. ParseExposition / Lint form the in-repo
//     parser the tests and the cocoad smoke path validate that output
//     with, so the format can never drift unchecked.
//   - Live progress: Progress is a lock-free gauge the simulation loop
//     publishes its tick position (and a sweep its run index) through —
//     one atomic store per tick, safe to read from any goroutine, with an
//     ETA derived at read time.
//   - Run tracing: Trace records hierarchical spans (run → window →
//     {mac-frame, belief-update, checkpoint}) on the simulation's virtual
//     clock and serializes them as Chrome trace-event JSON, loadable in
//     Perfetto or chrome://tracing. ReadTrace is the strict decoder that
//     round-trips the format and verifies begin/end balance.
//   - Structured logging: LogOptions/AddLogFlags give every CLI the same
//     -log-format/-log-level pair over log/slog.
//
// The layer inherits telemetry's prime directive: it records, it never
// steers. Nothing in the simulation reads a Progress or Trace value to
// make a decision, so results are byte-identical with every obs feature
// on or off, at any parallelism — and the disabled path of each record
// site stays at one atomic (or nil-pointer) load.
package obs
