package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogOptions is the shared -log-format/-log-level flag pair every CLI in
// the repo registers, so `-log-format json` means the same thing to
// cocoad, cocoasim, and cocoaexp.
type LogOptions struct {
	Format string // "text" or "json"
	Level  string // "debug", "info", "warn", or "error"
}

// AddLogFlags registers -log-format and -log-level on fs and returns the
// options they populate.
func AddLogFlags(fs *flag.FlagSet) *LogOptions {
	o := &LogOptions{Format: "text", Level: "info"}
	fs.StringVar(&o.Format, "log-format", o.Format, "log output format: text or json")
	fs.StringVar(&o.Level, "log-level", o.Level, "minimum log level: debug, info, warn, or error")
	return o
}

// NewLogger builds the slog.Logger the options describe, writing to w.
func (o *LogOptions) NewLogger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(o.Level) {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", o.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(o.Format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", o.Format)
}

// nopHandler drops every record. (slog.DiscardHandler is a go1.24
// addition; this module's language version predates it.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards everything — the default for
// library code when the caller wires no logger.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}
