package obs

import (
	"sync/atomic"
	"time"
)

// Progress is a lock-free live-position gauge for one job: the simulation
// loop publishes its current sampling tick, a sweep publishes its run
// index, and any goroutine can read both plus an ETA at any time.
//
// All methods are safe on a nil receiver (every write degenerates to a
// nil check) and safe for concurrent use: each field is one packed atomic
// word, so a reader always sees a consistent (position, total) pair even
// mid-write. Progress is strictly write-only for the simulation — nothing
// reads it back into the run — so publishing through it can never perturb
// results (the records-never-steers invariant, pinned by the on/off
// equivalence test in internal/cocoa).
type Progress struct {
	// ticks packs (current tick << 32 | total ticks) of the executing run.
	ticks atomic.Uint64
	// runs packs (completed runs << 32 | total runs) of the sweep.
	runs atomic.Uint64
	// startNs is the wall-clock start (UnixNano) recorded by Start; the
	// anchor for ETA. Zero until the job begins executing.
	startNs atomic.Int64
}

// pack clamps a (position, total) pair into one 64-bit word.
func pack(pos, total int) uint64 {
	clamp := func(v int) uint64 {
		if v < 0 {
			return 0
		}
		if v > 1<<32-1 {
			return 1<<32 - 1
		}
		return uint64(v)
	}
	return clamp(pos)<<32 | clamp(total)
}

func unpack(w uint64) (pos, total int) {
	return int(w >> 32), int(w & (1<<32 - 1))
}

// SetTicks publishes the executing run's position: tick sampling ticks
// completed out of total. One atomic store; nil-safe.
func (p *Progress) SetTicks(tick, total int) {
	if p == nil {
		return
	}
	p.ticks.Store(pack(tick, total))
}

// Ticks returns the last published (tick, total) pair; (0, 0) on nil.
func (p *Progress) Ticks() (tick, total int) {
	if p == nil {
		return 0, 0
	}
	return unpack(p.ticks.Load())
}

// SetRun publishes the sweep position: done runs completed out of total.
// One atomic store; nil-safe.
func (p *Progress) SetRun(done, total int) {
	if p == nil {
		return
	}
	p.runs.Store(pack(done, total))
}

// Run returns the last published (done, total) run pair; (0, 0) on nil.
func (p *Progress) Run() (done, total int) {
	if p == nil {
		return 0, 0
	}
	return unpack(p.runs.Load())
}

// Start anchors the ETA clock at now. The first call wins, so a resumed
// or retried caller cannot shrink the measured elapsed time; nil-safe.
func (p *Progress) Start(now time.Time) {
	if p == nil {
		return
	}
	p.startNs.CompareAndSwap(0, now.UnixNano())
}

// Fraction estimates completed work in [0, 1]: the run fraction when a
// sweep published run totals (plus the in-flight run's tick fraction),
// the tick fraction otherwise, and 0 when nothing has been published.
func (p *Progress) Fraction() float64 {
	if p == nil {
		return 0
	}
	tick, tickTotal := p.Ticks()
	done, runTotal := p.Run()
	var tickFrac float64
	if tickTotal > 0 {
		tickFrac = float64(tick) / float64(tickTotal)
		if tickFrac > 1 {
			tickFrac = 1
		}
	}
	if runTotal > 0 {
		f := (float64(done) + tickFrac) / float64(runTotal)
		if f > 1 {
			f = 1
		}
		return f
	}
	return tickFrac
}

// ETA projects the remaining wall time from the elapsed time and the
// published fraction: remaining = elapsed * (1-f)/f. It reports false
// until Start has been called and some progress exists — an estimate from
// zero information would be noise, not signal.
func (p *Progress) ETA(now time.Time) (time.Duration, bool) {
	if p == nil {
		return 0, false
	}
	start := p.startNs.Load()
	f := p.Fraction()
	if start == 0 || f <= 0 {
		return 0, false
	}
	elapsed := now.Sub(time.Unix(0, start))
	if elapsed <= 0 {
		return 0, false
	}
	rem := time.Duration(float64(elapsed) * (1 - f) / f)
	if rem < 0 {
		rem = 0
	}
	return rem, true
}
