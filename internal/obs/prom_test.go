package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"cocoa/internal/telemetry"
)

// testSnapshot builds a registry exercising every instrument kind and
// returns its snapshot.
func testSnapshot(t *testing.T) telemetry.Snapshot {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	c := reg.Counter("cocoa.sim.windows")
	c.Add(7)
	g := reg.Gauge("cocoa.pool.size")
	g.Set(3)
	h := reg.Histogram("cocoa.mac.backoff_slots", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 2, 2, 40} {
		h.Observe(v)
	}
	sp := reg.Span("cocoa.window.sim")
	sp.StartSim(0).EndSim(2)
	return reg.Snapshot()
}

func TestWriteMetricsRendersEveryKind(t *testing.T) {
	var buf bytes.Buffer
	extra := []Sample{
		{Name: "cocoad_jobs", Type: "gauge", Help: "Jobs by state.",
			Labels: []Label{{Key: "state", Value: "running"}}, Value: 1},
		{Name: "cocoad_jobs", Type: "gauge",
			Labels: []Label{{Key: "state", Value: "done"}}, Value: 4},
	}
	if err := WriteMetrics(&buf, testSnapshot(t), extra); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cocoa_sim_windows_total counter",
		"cocoa_sim_windows_total 7",
		"# TYPE cocoa_pool_size gauge",
		"cocoa_pool_size 3",
		"# TYPE cocoa_mac_backoff_slots histogram",
		`cocoa_mac_backoff_slots_bucket{le="1"} 1`,
		`cocoa_mac_backoff_slots_bucket{le="4"} 3`,
		`cocoa_mac_backoff_slots_bucket{le="16"} 3`,
		`cocoa_mac_backoff_slots_bucket{le="+Inf"} 4`,
		"cocoa_mac_backoff_slots_sum 44.5",
		"cocoa_mac_backoff_slots_count 4",
		"# TYPE cocoa_window_sim_ns summary",
		"cocoa_window_sim_ns_count 1",
		"# TYPE cocoa_window_sim_ns_max gauge",
		"# HELP cocoad_jobs Jobs by state.",
		"# TYPE cocoad_jobs gauge",
		`cocoad_jobs{state="running"} 1`,
		`cocoad_jobs{state="done"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q\n--- output ---\n%s", want, out)
		}
	}
	// The output must satisfy its own parser and linter.
	if _, err := LintReader(strings.NewReader(out)); err != nil {
		t.Fatalf("rendered exposition fails lint: %v", err)
	}
}

func TestWriteMetricsEscaping(t *testing.T) {
	var buf bytes.Buffer
	extra := []Sample{
		{Name: "weird", Type: "gauge", Help: "line\none \\ two",
			Labels: []Label{{Key: "path", Value: `a"b\c` + "\n"}}, Value: 1},
	}
	if err := WriteMetrics(&buf, telemetry.Snapshot{}, extra); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP weird line\none \\ two`) {
		t.Fatalf("HELP not escaped: %q", out)
	}
	if !strings.Contains(out, `weird{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label value not escaped: %q", out)
	}
	exp, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	got := exp.Families["weird"].Points[0].Labels["path"]
	if got != `a"b\c`+"\n" {
		t.Fatalf("label round-trip = %q", got)
	}
	if exp.Families["weird"].Help != `line\none \\ two` {
		t.Fatalf("help = %q", exp.Families["weird"].Help)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"cocoa.sim.windows": "cocoa_sim_windows",
		"ok_name:x9":        "ok_name:x9",
		"9leading":          "_9leading",
		"sp ace-dash":       "sp_ace_dash",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
		{1.5, "1.5"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRuntimeSamples(t *testing.T) {
	samples := RuntimeSamples()
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if s, ok := byName["go_goroutines"]; !ok || s.Value < 1 {
		t.Fatalf("go_goroutines = %+v", s)
	}
	if s, ok := byName["go_memstats_heap_alloc_bytes"]; !ok || s.Value <= 0 {
		t.Fatalf("go_memstats_heap_alloc_bytes = %+v", s)
	}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, telemetry.Snapshot{}, samples); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if _, err := LintReader(&buf); err != nil {
		t.Fatalf("runtime samples fail lint: %v", err)
	}
}

func TestHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("cocoa.test.hits").Add(2)
	h := Handler(reg, func() []Sample {
		return []Sample{{Name: "extra_gauge", Type: "gauge", Value: 9}}
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "cocoa_test_hits_total 2") {
		t.Fatalf("missing counter: %s", body)
	}
	if !strings.Contains(body, "extra_gauge 9") {
		t.Fatalf("missing extra sample: %s", body)
	}
	if !strings.Contains(body, "go_goroutines") {
		t.Fatalf("missing runtime samples: %s", body)
	}
	if _, err := LintReader(strings.NewReader(body)); err != nil {
		t.Fatalf("handler output fails lint: %v", err)
	}
}

func TestParseExpositionErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"malformed type", "# TYPE onlyname\n", "malformed TYPE"},
		{"bad metric name", "# TYPE 9bad counter\n", "invalid metric name"},
		{"unknown type", "# TYPE x widget\n", "unknown metric type"},
		{"duplicate type", "# TYPE x_total counter\n# TYPE x_total counter\n", "duplicate TYPE"},
		{"malformed help", "# HELP\n", "malformed HELP"},
		{"sample before type", "orphan 1\n", "precedes its TYPE"},
		{"no value", "# TYPE x gauge\nx\n", "sample without value"},
		{"bad value", "# TYPE x gauge\nx abc\n", "bad sample value"},
		{"bad timestamp", "# TYPE x gauge\nx 1 soon\n", "bad timestamp"},
		{"bad sample name", "# TYPE x gauge\n{a=\"b\"} 1\n", "invalid sample name"},
		{"unterminated labels", "# TYPE x gauge\nx{a=\"b\"\n", "unterminated label"},
		{"label no equals", "# TYPE x gauge\nx{ab} 1\n", "label without '='"},
		{"bad label name", "# TYPE x gauge\nx{9a=\"b\"} 1\n", "invalid label name"},
		{"duplicate label", "# TYPE x gauge\nx{a=\"1\",a=\"2\"} 1\n", "duplicate label"},
		{"unquoted label", "# TYPE x gauge\nx{a=b} 1\n", "not quoted"},
		{"bad escape", `# TYPE x gauge` + "\n" + `x{a="\t"} 1` + "\n", "invalid escape"},
		{"dangling escape", "# TYPE x gauge\nx{a=\"b\\", "dangling escape"},
		{"junk after label", "# TYPE x gauge\nx{a=\"b\"c=\"d\"} 1\n", "expected ',' or '}'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseExposition(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseExpositionHelpBeforeType(t *testing.T) {
	in := "# HELP x_total Counts things.\n# TYPE x_total counter\nx_total 1\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if exp.Families["x_total"].Help != "Counts things." {
		t.Fatalf("help = %q", exp.Families["x_total"].Help)
	}
	if len(exp.Order) != 1 || exp.Order[0] != "x_total" {
		t.Fatalf("order = %v", exp.Order)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"duplicate series", "# TYPE x gauge\nx 1\nx 2\n", "duplicate series"},
		{"duplicate labeled series", "# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate series"},
		{"counter without _total", "# TYPE hits counter\nhits 1\n", "does not end in _total"},
		{"negative counter", "# TYPE x_total counter\nx_total -1\n", "invalid value"},
		{"NaN counter", "# TYPE x_total counter\nx_total NaN\n", "invalid value"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n", "without le"},
		{"buckets out of order",
			"# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"increasing le order"},
		{"decreasing counts",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"counts decrease"},
		{"missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf"},
		{"+Inf != count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
			"!= _count"},
		{"foreign histogram sample", "# TYPE h histogram\nh 1\nh_sum 1\nh_count 1\n", "not valid for histogram"},
		{"summary without quantile", "# TYPE s summary\ns 1\ns_sum 1\ns_count 1\n", "lacks quantile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exp, err := ParseExposition(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("ParseExposition: %v", err)
			}
			errs := Lint(exp)
			if len(errs) == 0 {
				t.Fatalf("Lint passed %q", tc.in)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no lint error mentions %q in %v", tc.want, errs)
			}
		})
	}
}

func TestLintCleanSummaryWithQuantile(t *testing.T) {
	in := "# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\ns_count 3\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if errs := Lint(exp); len(errs) != 0 {
		t.Fatalf("Lint = %v, want clean", errs)
	}
}

func TestLintLabeledHistogramGroups(t *testing.T) {
	// Two label groups, each individually well-formed.
	in := "# TYPE h histogram\n" +
		"h_bucket{job=\"a\",le=\"1\"} 1\nh_bucket{job=\"a\",le=\"+Inf\"} 2\nh_count{job=\"a\"} 2\nh_sum{job=\"a\"} 3\n" +
		"h_bucket{job=\"b\",le=\"1\"} 0\nh_bucket{job=\"b\",le=\"+Inf\"} 1\nh_count{job=\"b\"} 1\nh_sum{job=\"b\"} 9\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if errs := Lint(exp); len(errs) != 0 {
		t.Fatalf("Lint = %v, want clean", errs)
	}
}
