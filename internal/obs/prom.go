package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"cocoa/internal/telemetry"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one exposition label pair.
type Label struct {
	Key   string
	Value string
}

// Sample is one externally contributed series: collectors (the serve
// layer's per-job-state gauges, the runtime collector) return Samples and
// WriteMetrics renders them alongside the telemetry registry. Samples
// sharing a Name form one metric family and must agree on Type; the
// writer groups them by first appearance.
type Sample struct {
	Name   string
	Type   string // "counter", "gauge", or "untyped"
	Help   string
	Labels []Label
	Value  float64
}

// sanitizeMetricName maps a telemetry instrument name onto the Prometheus
// metric-name alphabet: dots (the registry's namespacing convention) and
// any other invalid byte become underscores.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line's free text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value for the `name="value"` position.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: +Inf/-Inf/NaN spelled the way the
// exposition format expects, finite values in shortest form.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a histogram bucket bound for the le label.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promWriter accumulates exposition lines, tracking the first error.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// labels renders a {k="v",...} block, or "" for none.
func labels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteMetrics renders snap plus the extra samples as Prometheus text
// exposition. The mapping from telemetry instruments:
//
//	Counter   c        -> counter  <c>_total
//	Gauge     g        -> gauge    <g>
//	Histogram h        -> histogram <h> (_bucket cumulative with +Inf,
//	                      _sum, _count)
//	Span      s        -> summary  <s>_ns (_sum, _count) and
//	                      gauge    <s>_max_ns
//
// Telemetry buckets store per-bucket counts; the writer accumulates them
// into the cumulative form le-buckets require. Extra samples are grouped
// into families by first appearance, so a collector may interleave names.
func WriteMetrics(w io.Writer, snap telemetry.Snapshot, extra []Sample) error {
	p := &promWriter{w: w}
	for _, c := range snap.Counters {
		name := sanitizeMetricName(c.Name) + "_total"
		p.printf("# TYPE %s counter\n", name)
		p.printf("%s %d\n", name, c.Value)
	}
	for _, g := range snap.Gauges {
		name := sanitizeMetricName(g.Name)
		p.printf("# TYPE %s gauge\n", name)
		p.printf("%s %d\n", name, g.Value)
	}
	for _, h := range snap.Histograms {
		name := sanitizeMetricName(h.Name)
		p.printf("# TYPE %s histogram\n", name)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			p.printf("%s_bucket{le=\"%s\"} %d\n", name, formatLe(b.Le), cum)
		}
		p.printf("%s_sum %s\n", name, formatValue(h.Sum))
		p.printf("%s_count %d\n", name, h.Count)
	}
	for _, s := range snap.Spans {
		name := sanitizeMetricName(s.Name) + "_ns"
		p.printf("# TYPE %s summary\n", name)
		p.printf("%s_sum %d\n", name, s.TotalNs)
		p.printf("%s_count %d\n", name, s.Count)
		p.printf("# TYPE %s_max gauge\n", name)
		p.printf("%s_max %d\n", name, s.MaxNs)
	}
	// Group the extra samples into families by first appearance: one TYPE
	// line per family, all its samples contiguous.
	var order []string
	families := map[string][]Sample{}
	for _, s := range extra {
		if _, ok := families[s.Name]; !ok {
			order = append(order, s.Name)
		}
		families[s.Name] = append(families[s.Name], s)
	}
	for _, name := range order {
		fam := families[name]
		if fam[0].Help != "" {
			p.printf("# HELP %s %s\n", name, escapeHelp(fam[0].Help))
		}
		typ := fam[0].Type
		if typ == "" {
			typ = "untyped"
		}
		p.printf("# TYPE %s %s\n", name, typ)
		for _, s := range fam {
			p.printf("%s%s %s\n", name, labels(s.Labels), formatValue(s.Value))
		}
	}
	return p.err
}

// RuntimeSamples collects the process/runtime metrics the exposition
// serves alongside the simulation's instruments: goroutines, heap, and GC
// pause totals.
func RuntimeSamples() []Sample {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return []Sample{
		{Name: "go_goroutines", Type: "gauge",
			Help:  "Number of goroutines that currently exist.",
			Value: float64(runtime.NumGoroutine())},
		{Name: "go_memstats_heap_alloc_bytes", Type: "gauge",
			Help:  "Heap bytes allocated and still in use.",
			Value: float64(m.HeapAlloc)},
		{Name: "go_memstats_heap_objects", Type: "gauge",
			Help:  "Number of allocated heap objects.",
			Value: float64(m.HeapObjects)},
		{Name: "go_memstats_alloc_bytes_total", Type: "counter",
			Help:  "Cumulative bytes allocated on the heap.",
			Value: float64(m.TotalAlloc)},
		{Name: "go_gc_cycles_total", Type: "counter",
			Help:  "Completed GC cycles.",
			Value: float64(m.NumGC)},
		{Name: "go_gc_pause_seconds_total", Type: "counter",
			Help:  "Cumulative stop-the-world GC pause time.",
			Value: float64(m.PauseTotalNs) / 1e9},
	}
}

// Handler serves GET /metrics from reg plus RuntimeSamples plus the
// optional extra collector (invoked per scrape — the serve layer
// contributes per-job-state gauges and ETAs through it).
func Handler(reg *telemetry.Registry, extra func() []Sample) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		samples := RuntimeSamples()
		if extra != nil {
			samples = append(samples, extra()...)
		}
		var buf bytes.Buffer
		if err := WriteMetrics(&buf, reg.Snapshot(), samples); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = w.Write(buf.Bytes())
	})
}
