package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricPoint is one parsed sample line.
type MetricPoint struct {
	Name   string            // full sample name, e.g. "cocoa_sim_windows_total" or "x_bucket"
	Labels map[string]string // parsed label set, nil when none
	Value  float64
	Line   int // 1-based source line, for error reporting
}

// MetricFamily groups the samples belonging to one # TYPE declaration.
type MetricFamily struct {
	Name   string // family name as declared, e.g. "x" for histogram "x"
	Type   string // counter | gauge | histogram | summary | untyped
	Help   string
	Points []MetricPoint
}

// Exposition is a parsed /metrics payload.
type Exposition struct {
	Families map[string]*MetricFamily
	Order    []string // family names in declaration order
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// sampleFamily maps a sample name to the family it belongs to given the
// declared family names: histogram/summary samples carry the
// _bucket/_sum/_count suffixes of their family, counters carry _total.
func sampleFamily(families map[string]*MetricFamily, sample string) (*MetricFamily, bool) {
	if f, ok := families[sample]; ok {
		return f, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok {
			if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return f, true
			}
		}
	}
	return nil, false
}

// parseLabels parses the {k="v",...} block starting at s (which begins
// with '{'), returning the labels and the rest of the line.
func parseLabels(s string, line int) (map[string]string, string, error) {
	labels := map[string]string{}
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return nil, "", fmt.Errorf("obs: line %d: unterminated label block", line)
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("obs: line %d: label without '='", line)
		}
		name := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(name) {
			return nil, "", fmt.Errorf("obs: line %d: invalid label name %q", line, name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("obs: line %d: duplicate label %q", line, name)
		}
		s = strings.TrimLeft(s[eq+1:], " \t")
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("obs: line %d: label %q value is not quoted", line, name)
		}
		// Scan the quoted value honoring \\, \", \n escapes.
		var val strings.Builder
		i := 1
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("obs: line %d: unterminated label value for %q", line, name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("obs: line %d: dangling escape in label %q", line, name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("obs: line %d: invalid escape \\%c in label %q", line, s[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
		s = strings.TrimLeft(s[i:], " \t")
		if s == "" {
			return nil, "", fmt.Errorf("obs: line %d: unterminated label block", line)
		}
		if s[0] == ',' {
			s = s[1:]
			continue
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("obs: line %d: expected ',' or '}' after label %q", line, name)
	}
}

// parseSampleValue parses an exposition sample value ("+Inf", "-Inf",
// "NaN", or a Go float).
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParseExposition parses Prometheus text exposition format (version
// 0.0.4): # HELP / # TYPE comments and sample lines with optional labels
// and optional timestamps. Structural errors (malformed lines, invalid
// names, TYPE redeclaration, samples not covered by any declared family)
// fail the parse; semantic invariants are checked separately by Lint.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: map[string]*MetricFamily{}}
	// helpPending holds HELP text seen before its TYPE line.
	helpPending := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.SplitN(trimmed, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) < 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				if !metricNameRe.MatchString(name) {
					return nil, fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := exp.Families[name]; dup {
					return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, name)
				}
				f := &MetricFamily{Name: name, Type: typ, Help: helpPending[name]}
				delete(helpPending, name)
				exp.Families[name] = f
				exp.Order = append(exp.Order, name)
			case "HELP":
				if len(fields) < 3 {
					return nil, fmt.Errorf("obs: line %d: malformed HELP line", lineNo)
				}
				name := fields[2]
				help := ""
				if len(fields) == 4 {
					help = fields[3]
				}
				if f, ok := exp.Families[name]; ok {
					f.Help = help
				} else {
					helpPending[name] = help
				}
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp]
		i := strings.IndexAny(trimmed, "{ \t")
		if i < 0 {
			return nil, fmt.Errorf("obs: line %d: sample without value", lineNo)
		}
		name := trimmed[:i]
		if !metricNameRe.MatchString(name) {
			return nil, fmt.Errorf("obs: line %d: invalid sample name %q", lineNo, name)
		}
		rest := trimmed[i:]
		var lbls map[string]string
		if rest[0] == '{' {
			var err error
			lbls, rest, err = parseLabels(rest, lineNo)
			if err != nil {
				return nil, err
			}
			if len(lbls) == 0 {
				lbls = nil
			}
		}
		parts := strings.Fields(rest)
		if len(parts) < 1 || len(parts) > 2 {
			return nil, fmt.Errorf("obs: line %d: expected value [timestamp], got %q", lineNo, rest)
		}
		val, err := parseSampleValue(parts[0])
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: bad sample value %q", lineNo, parts[0])
		}
		if len(parts) == 2 {
			if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad timestamp %q", lineNo, parts[1])
			}
		}
		fam, ok := sampleFamily(exp.Families, name)
		if !ok {
			return nil, fmt.Errorf("obs: line %d: sample %q precedes its TYPE declaration", lineNo, name)
		}
		fam.Points = append(fam.Points, MetricPoint{Name: name, Labels: lbls, Value: val, Line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read exposition: %w", err)
	}
	return exp, nil
}

// seriesKey identifies a unique time series: sample name + sorted labels.
func seriesKey(p MetricPoint) string {
	if len(p.Labels) == 0 {
		return p.Name
	}
	keys := make([]string, 0, len(p.Labels))
	for k := range p.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(p.Name)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(p.Labels[k])
	}
	return b.String()
}

// Lint validates the semantic invariants of a parsed exposition:
// no duplicate series; counters named *_total, finite and non-negative;
// histograms with only _bucket/_sum/_count samples, le on every bucket,
// cumulative non-decreasing bucket counts, a +Inf bucket equal to _count;
// summaries with only quantile/_sum/_count samples. It returns all
// violations, not just the first.
func Lint(exp *Exposition) []error {
	var errs []error
	seen := map[string]int{}
	for _, name := range exp.Order {
		fam := exp.Families[name]
		for _, p := range fam.Points {
			key := seriesKey(p)
			if prev, dup := seen[key]; dup {
				errs = append(errs, fmt.Errorf("obs: line %d: duplicate series %q (first at line %d)", p.Line, key, prev))
				continue
			}
			seen[key] = p.Line
		}
		switch fam.Type {
		case "counter":
			if !strings.HasSuffix(fam.Name, "_total") {
				errs = append(errs, fmt.Errorf("obs: counter %q does not end in _total", fam.Name))
			}
			for _, p := range fam.Points {
				if math.IsNaN(p.Value) || p.Value < 0 {
					errs = append(errs, fmt.Errorf("obs: line %d: counter %q has invalid value %v", p.Line, p.Name, p.Value))
				}
			}
		case "histogram":
			errs = append(errs, lintHistogram(fam)...)
		case "summary":
			for _, p := range fam.Points {
				switch p.Name {
				case fam.Name + "_sum", fam.Name + "_count":
				case fam.Name:
					if _, ok := p.Labels["quantile"]; !ok {
						errs = append(errs, fmt.Errorf("obs: line %d: summary sample %q lacks quantile label", p.Line, p.Name))
					}
				default:
					errs = append(errs, fmt.Errorf("obs: line %d: sample %q not valid for summary %q", p.Line, p.Name, fam.Name))
				}
			}
		}
	}
	return errs
}

// lintHistogram checks one histogram family's bucket discipline. Buckets
// are grouped by their non-le labels so labeled histograms lint per
// series.
func lintHistogram(fam *MetricFamily) []error {
	var errs []error
	type group struct {
		buckets []MetricPoint
		count   *MetricPoint
	}
	groups := map[string]*group{}
	groupOf := func(p MetricPoint) *group {
		rest := make(map[string]string, len(p.Labels))
		for k, v := range p.Labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := seriesKey(MetricPoint{Name: fam.Name, Labels: rest})
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
		}
		return g
	}
	for i, p := range fam.Points {
		switch p.Name {
		case fam.Name + "_bucket":
			if _, ok := p.Labels["le"]; !ok {
				errs = append(errs, fmt.Errorf("obs: line %d: histogram bucket without le label", p.Line))
				continue
			}
			groupOf(p).buckets = append(groupOf(p).buckets, p)
		case fam.Name + "_sum":
			// no bucket discipline to check on _sum
		case fam.Name + "_count":
			groupOf(p).count = &fam.Points[i]
		default:
			errs = append(errs, fmt.Errorf("obs: line %d: sample %q not valid for histogram %q", p.Line, p.Name, fam.Name))
		}
	}
	for _, g := range groups {
		prev := math.Inf(-1)
		prevCount := -1.0
		sawInf := false
		for _, b := range g.buckets {
			le, err := parseSampleValue(b.Labels["le"])
			if err != nil {
				errs = append(errs, fmt.Errorf("obs: line %d: bad le %q", b.Line, b.Labels["le"]))
				continue
			}
			if le <= prev {
				errs = append(errs, fmt.Errorf("obs: line %d: histogram %q buckets not in increasing le order", b.Line, fam.Name))
			}
			prev = le
			if b.Value < prevCount {
				errs = append(errs, fmt.Errorf("obs: line %d: histogram %q bucket counts decrease", b.Line, fam.Name))
			}
			prevCount = b.Value
			if math.IsInf(le, 1) {
				sawInf = true
				if g.count != nil && b.Value != g.count.Value {
					errs = append(errs, fmt.Errorf("obs: line %d: histogram %q +Inf bucket %v != _count %v",
						b.Line, fam.Name, b.Value, g.count.Value))
				}
			}
		}
		if len(g.buckets) > 0 && !sawInf {
			errs = append(errs, fmt.Errorf("obs: histogram %q missing +Inf bucket", fam.Name))
		}
	}
	return errs
}

// LintReader parses and lints in one step, returning the parsed
// exposition for content assertions — the shape the cocoad smoke path
// and make check use against a live /metrics scrape.
func LintReader(r io.Reader) (*Exposition, error) {
	exp, err := ParseExposition(r)
	if err != nil {
		return nil, err
	}
	if errs := Lint(exp); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("obs: exposition lint: %s", strings.Join(msgs, "; "))
	}
	return exp, nil
}
