package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestAddLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := AddLogFlags(fs)
	if err := fs.Parse([]string{"-log-format", "json", "-log-level", "debug"}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if o.Format != "json" || o.Level != "debug" {
		t.Fatalf("options = %+v", o)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf bytes.Buffer
	log, err := (&LogOptions{Format: "text", Level: "info"}).NewLogger(&buf)
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	log.Debug("hidden")
	log.Info("visible", "job", "j1")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked at info level: %q", out)
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "job=j1") {
		t.Fatalf("text output = %q", out)
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	log, err := (&LogOptions{Format: "json", Level: "warn"}).NewLogger(&buf)
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	log.Info("hidden")
	log.Warn("careful", "run", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("output is not one JSON record: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "careful" || rec["run"] != 3.0 || rec["level"] != "WARN" {
		t.Fatalf("record = %v", rec)
	}
}

func TestNewLoggerDefaults(t *testing.T) {
	var buf bytes.Buffer
	log, err := (&LogOptions{}).NewLogger(&buf)
	if err != nil {
		t.Fatalf("empty options rejected: %v", err)
	}
	log.Info("hello")
	if !strings.Contains(buf.String(), "hello") {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestNewLoggerErrors(t *testing.T) {
	if _, err := (&LogOptions{Format: "xml"}).NewLogger(&bytes.Buffer{}); err == nil {
		t.Fatal("accepted format xml")
	}
	if _, err := (&LogOptions{Level: "loud"}).NewLogger(&bytes.Buffer{}); err == nil {
		t.Fatal("accepted level loud")
	}
}

func TestNopLogger(t *testing.T) {
	log := NopLogger()
	log.Error("dropped", "k", "v")
	log.With("a", 1).WithGroup("g").Info("also dropped")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
}
