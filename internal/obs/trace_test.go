package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Begin(0, "run", 0, nil)
	tr.End(0, 1)
	tr.Complete(1, "work", 0.5, 0.1, nil)
	tr.Instant(0, "tick", 0.25, nil)
	tr.SetProcessName("job")
	tr.SetThreadName(0, "loop")
	tr.CloseOpen(1)
	if tr.Len() != 0 {
		t.Fatalf("nil Len() = %d, want 0", tr.Len())
	}
	if tr.Events() != nil {
		t.Fatal("nil Events() != nil")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.SetProcessName("run 0")
	tr.SetThreadName(0, "event-loop")
	tr.Begin(0, "run", 0, map[string]any{"robots": 5.0})
	tr.Begin(0, "sampling-window", 1.0, nil)
	tr.Instant(0, "mac-frame", 1.25, map[string]any{"src": 3.0})
	tr.Complete(7, "belief-update", 1.5, 0.0, nil)
	tr.End(0, 2.0) // closes sampling-window
	tr.End(0, 3.0) // closes run
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len() = %d, want 8", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(events) != 8 {
		t.Fatalf("round-trip produced %d events, want 8", len(events))
	}
	// Spot-check the microsecond conversion and a phase.
	if events[2].Name != "run" || events[2].Phase != PhaseBegin || events[2].TsUs != 0 {
		t.Fatalf("event 2 = %+v, want B run at 0", events[2])
	}
	if events[3].TsUs != 1e6 {
		t.Fatalf("window begin ts = %v µs, want 1e6", events[3].TsUs)
	}
	// Re-serialize: byte-identical (insertion order is preserved).
	tr2 := NewTrace()
	tr2.mu.Lock()
	tr2.events = events
	tr2.mu.Unlock()
	var buf2 bytes.Buffer
	if err := tr2.WriteJSON(&buf2); err != nil {
		t.Fatalf("re-serialize: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("round-trip is not byte-identical")
	}
}

func TestTraceEndEmptyStackNoOp(t *testing.T) {
	tr := NewTrace()
	tr.End(0, 1.0)
	if tr.Len() != 0 {
		t.Fatalf("End on empty track recorded %d events, want 0", tr.Len())
	}
}

func TestTraceCloseOpen(t *testing.T) {
	tr := NewTrace()
	tr.Begin(2, "outer", 0, nil)
	tr.Begin(2, "inner", 1, nil)
	tr.Begin(0, "run", 0, nil)
	tr.CloseOpen(5)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if _, err := ReadTrace(&buf); err != nil {
		t.Fatalf("CloseOpen left an unbalanced trace: %v", err)
	}
	ev := tr.Events()
	// tids closed in sorted order; inner before outer within a tid.
	if ev[3].TID != 0 || ev[3].Name != "run" {
		t.Fatalf("first close = %+v, want run on tid 0", ev[3])
	}
	if ev[4].Name != "inner" || ev[5].Name != "outer" {
		t.Fatalf("tid 2 closed %q then %q, want inner then outer", ev[4].Name, ev[5].Name)
	}
	// Idempotent: nothing left open.
	n := tr.Len()
	tr.CloseOpen(6)
	if tr.Len() != n {
		t.Fatal("second CloseOpen recorded events")
	}
}

func TestTraceWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTrace().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace serialized as %q, want empty traceEvents array", buf.String())
	}
	if _, err := ReadTrace(&buf); err != nil {
		t.Fatalf("ReadTrace of empty trace: %v", err)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"not json", `{`, "decode trace"},
		{"unknown field", `{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":0,"tid":0,"bogus":1}]}`, "decode trace"},
		{"empty name", `{"traceEvents":[{"name":"","ph":"i","ts":0,"pid":0,"tid":0}]}`, "empty name"},
		{"unknown phase", `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`, "unknown phase"},
		{"end without begin", `{"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":0,"tid":0}]}`, "no open span"},
		{"end name mismatch", `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0},{"name":"b","ph":"E","ts":1,"pid":0,"tid":0}]}`, "does not match"},
		{"unbalanced", `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0}]}`, "still open"},
		{"negative duration", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`, "negative duration"},
		{"negative timestamp", `{"traceEvents":[{"name":"x","ph":"i","ts":-5,"pid":0,"tid":0}]}`, "negative timestamp"},
		{"cross-track end", `{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0},{"name":"a","ph":"E","ts":1,"pid":0,"tid":1}]}`, "no open span"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("ReadTrace accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
