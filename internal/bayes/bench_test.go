package bayes

import (
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
)

// BenchmarkApplyBeacon measures the per-beacon grid update — the hot path
// of the whole simulation (10,000 cells at the paper's 2 m resolution).
func BenchmarkApplyBeacon(b *testing.B) {
	g, err := NewGrid(geom.Square(200), 2)
	if err != nil {
		b.Fatal(err)
	}
	pdf := caltable.GaussianPDF{Mu: 40, Sigma: 5}
	pos := geom.Vec2{X: 70, Y: 120}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ApplyBeacon(pos, pdf)
		if i%16 == 15 {
			g.Reset()
		}
	}
}

func BenchmarkEstimate(b *testing.B) {
	g, err := NewGrid(geom.Square(200), 2)
	if err != nil {
		b.Fatal(err)
	}
	g.ApplyBeacon(geom.Vec2{X: 70, Y: 120}, caltable.GaussianPDF{Mu: 40, Sigma: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Estimate()
	}
}
