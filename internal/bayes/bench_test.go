package bayes

import (
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
)

// BenchmarkApplyBeacon measures the per-beacon grid update — the hot path
// of the whole simulation (10,000 cells at the paper's 2 m resolution).
func BenchmarkApplyBeacon(b *testing.B) {
	g, err := NewGrid(geom.Square(200), 2)
	if err != nil {
		b.Fatal(err)
	}
	// Box the value PDF once: callers hold DistPDF interfaces, so the
	// conversion is not part of ApplyBeacon's steady-state cost.
	var pdf DistanceDensity = caltable.GaussianPDF{Mu: 40, Sigma: 5}
	pos := geom.Vec2{X: 70, Y: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ApplyBeacon(pos, pdf)
		if i%16 == 15 {
			g.Reset()
		}
	}
}

// BenchmarkApplyBeaconTabulated is the production configuration: the same
// Gaussian, but routed through the radial lookup table as calibrated
// tables hand it out.
func BenchmarkApplyBeaconTabulated(b *testing.B) {
	g, err := NewGrid(geom.Square(200), 2)
	if err != nil {
		b.Fatal(err)
	}
	pdf, err := caltable.Tabulate(caltable.GaussianPDF{Mu: 40, Sigma: 5}, constraintFloor, 0.0625, 220)
	if err != nil {
		b.Fatal(err)
	}
	pos := geom.Vec2{X: 70, Y: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ApplyBeacon(pos, pdf)
		if i%16 == 15 {
			g.Reset()
		}
	}
}

// BenchmarkApplyBeaconEmpirical exercises the far-regime histogram path,
// which before the LUT had no annulus bound and scanned the whole grid.
func BenchmarkApplyBeaconEmpirical(b *testing.B) {
	g, err := NewGrid(geom.Square(200), 2)
	if err != nil {
		b.Fatal(err)
	}
	bins := make([]float64, 111)
	for i := 25; i < 60; i++ {
		bins[i] = 0.012
	}
	pdf, err := caltable.Tabulate(&caltable.EmpiricalPDF{BinWidth: 2, Bins: bins}, constraintFloor, 0.0625, 220)
	if err != nil {
		b.Fatal(err)
	}
	pos := geom.Vec2{X: 70, Y: 120}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ApplyBeacon(pos, pdf)
		if i%16 == 15 {
			g.Reset()
		}
	}
}

func BenchmarkEstimate(b *testing.B) {
	g, err := NewGrid(geom.Square(200), 2)
	if err != nil {
		b.Fatal(err)
	}
	g.ApplyBeacon(geom.Vec2{X: 70, Y: 120}, caltable.GaussianPDF{Mu: 40, Sigma: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Estimate()
	}
}

// BenchmarkGridStatsReadout isolates what the incremental accumulators buy:
// a per-sample readout (estimate + entropy, the sampling tick's read path)
// against a 100x100-cell grid. Incremental reads the running sums in O(1)
// between re-sum backstops; eager pays the full-grid scan every time.
func BenchmarkGridStatsReadout(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    StatsMode
	}{{"incremental", StatsIncremental}, {"eager", StatsEager}} {
		b.Run(mode.name, func(b *testing.B) {
			g, err := NewGrid(geom.Square(200), 2)
			if err != nil {
				b.Fatal(err)
			}
			g.SetStatsMode(mode.m)
			g.ApplyBeacon(geom.Vec2{X: 70, Y: 120}, caltable.GaussianPDF{Mu: 40, Sigma: 5})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = g.Estimate()
				_ = g.Entropy()
			}
		})
	}
}
