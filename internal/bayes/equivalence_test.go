package bayes

import (
	"fmt"
	"math"
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// Equivalence tests: the lazy/LUT fast path in ApplyBeacon must match the
// retained eager reference implementation (applyBeaconEager) cell-for-cell
// within 1e-9 relative tolerance, for every PDF shape the simulation can
// produce — analytic Gaussians, tabulated Gaussians, tabulated empirical
// histograms, and generic densities with no fast-path interface at all.

// plainDensity hides every optional interface, forcing the generic path.
type plainDensity struct{ inner DistanceDensity }

func (p plainDensity) Density(d float64) float64 { return p.inner.Density(d) }

func testPDFs(t *testing.T) map[string]DistanceDensity {
	t.Helper()
	gauss := caltable.GaussianPDF{Mu: 35, Sigma: 4}
	tabGauss, err := caltable.Tabulate(gauss, constraintFloor, 0.0625, 220)
	if err != nil {
		t.Fatal(err)
	}
	emp := empiricalFixture()
	tabEmp, err := caltable.Tabulate(emp, constraintFloor, 0.0625, 220)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]DistanceDensity{
		"gaussian-analytic":   gauss,
		"gaussian-tabulated":  tabGauss,
		"empirical-tabulated": tabEmp,
		"generic-no-fastpath": plainDensity{inner: tabEmp},
		"gaussian-narrow":     caltable.GaussianPDF{Mu: 8, Sigma: 0.6},
	}
}

func empiricalFixture() *caltable.EmpiricalPDF {
	bins := make([]float64, 110)
	for i := 40 / 2; i < 90/2; i++ {
		bins[i] = 0.01 + 0.0005*float64(i%7)
	}
	bins[30] = 1e-9 // a sub-floor dip inside the support
	return &caltable.EmpiricalPDF{BinWidth: 2, Bins: bins}
}

func maxRelDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if scale == 0 {
			continue
		}
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

func TestFastPathMatchesEagerReference(t *testing.T) {
	rng := sim.NewRNG(77).Stream("equiv")
	pdfs := testPDFs(t)
	for name, pdf := range pdfs {
		t.Run(name, func(t *testing.T) {
			fast, _ := NewGrid(geom.Square(200), 2)
			ref, _ := NewGrid(geom.Square(200), 2)
			for b := 0; b < 6; b++ {
				pos := geom.Vec2{X: rng.Uniform(-10, 210), Y: rng.Uniform(-10, 210)}
				fast.ApplyBeacon(pos, pdf)
				ref.applyBeaconEager(pos, pdf)
				if fast.BeaconCount() != ref.BeaconCount() {
					t.Fatalf("beacon %d: count %d vs %d", b, fast.BeaconCount(), ref.BeaconCount())
				}
			}
			fast.Renormalize()
			if worst := maxRelDiff(fast.p, ref.p); worst > 1e-9 {
				t.Fatalf("cells diverge: max relative diff %v", worst)
			}
			if d := fast.Estimate().Dist(ref.Estimate()); d > 1e-7 {
				t.Fatalf("estimates diverge by %v m", d)
			}
			if d := math.Abs(fast.Entropy() - ref.Entropy()); d > 1e-7 {
				t.Fatalf("entropies diverge by %v", d)
			}
		})
	}
}

// Mixed sequences with interleaved resets, many beacons per window, and
// every PDF shape in one run — the closest in-package analogue of a full
// scenario window.
func TestFastPathMatchesEagerMixedSequence(t *testing.T) {
	rng := sim.NewRNG(123).Stream("equiv-mixed")
	pdfs := testPDFs(t)
	names := make([]string, 0, len(pdfs))
	for n := range pdfs {
		names = append(names, n)
	}
	fast, _ := NewGrid(geom.Square(120), 4)
	ref, _ := NewGrid(geom.Square(120), 4)
	for step := 0; step < 200; step++ {
		if rng.Bool(0.05) {
			fast.Reset()
			ref.Reset()
			continue
		}
		pdf := pdfs[names[rng.Intn(len(names))]]
		pos := geom.Vec2{X: rng.Uniform(0, 120), Y: rng.Uniform(0, 120)}
		fast.ApplyBeacon(pos, pdf)
		ref.applyBeaconEager(pos, pdf)
		if step%20 == 19 {
			fast.Renormalize()
			if worst := maxRelDiff(fast.p, ref.p); worst > 1e-9 {
				t.Fatalf("step %d: max relative diff %v", step, worst)
			}
		}
	}
}

// TestLazyNormalizationDrift is the satellite property: however long the
// grid defers normalization, a forced Renormalize must bring
// TotalProbability back into [1-1e-6, 1+1e-6].
func TestLazyNormalizationDrift(t *testing.T) {
	for _, seed := range []int64{5, 99, 2024} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed).Stream("lazy-drift")
			g, _ := NewGrid(geom.Square(200), 2)
			tab, err := caltable.Tabulate(
				caltable.GaussianPDF{Mu: 30, Sigma: 2}, constraintFloor, 0.0625, 220)
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < 400; b++ {
				pos := geom.Vec2{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
				g.ApplyBeacon(pos, tab)
				// No readouts: mass grows freely until the overflow guard
				// renormalizes internally.
			}
			g.Renormalize()
			if tot := g.TotalProbability(); math.Abs(tot-1) > 1e-6 {
				t.Fatalf("TotalProbability drifted to %v after forced renormalization", tot)
			}
			if g.mass != 1 {
				t.Fatalf("mass %v after Renormalize, want 1", g.mass)
			}
		})
	}
}

// The overflow guard must fire before the mass leaves the representable
// range, keeping long no-readout windows finite.
func TestMassOverflowGuard(t *testing.T) {
	g, _ := NewGrid(geom.Square(40), 2)
	spiky := caltable.GaussianPDF{Mu: 10, Sigma: 0.6} // peak/floor ~ 6.6e5
	for b := 0; b < 5000; b++ {
		g.ApplyBeacon(geom.Vec2{X: 20, Y: 20}, spiky)
		if math.IsInf(g.mass, 0) || math.IsNaN(g.mass) || g.mass > massRenormHigh*1e10 {
			t.Fatalf("beacon %d: mass escaped to %v", b, g.mass)
		}
	}
	if tot := g.TotalProbability(); math.Abs(tot-1) > 1e-6 {
		t.Fatalf("TotalProbability = %v after guarded sequence", tot)
	}
}
