package bayes

import (
	"testing"

	"cocoa/internal/caltable"
	"cocoa/internal/checkpoint"
	"cocoa/internal/geom"
)

// HashState is the grid's checkpoint fingerprint: equal states must hash
// equal, and any belief update must move the digest.
func TestHashState(t *testing.T) {
	sum := func(g *Grid) uint64 {
		h := checkpoint.NewHasher()
		g.HashState(h)
		return h.Sum()
	}
	a := newGrid(t)
	b := newGrid(t)
	if sum(a) != sum(b) {
		t.Fatal("identical fresh grids hash differently")
	}
	again := sum(a)
	if again != sum(a) {
		t.Fatal("hashing is not deterministic")
	}
	a.ApplyBeacon(geom.Vec2{X: 50, Y: 100}, caltable.GaussianPDF{Mu: 40, Sigma: 2})
	if sum(a) == sum(b) {
		t.Fatal("belief update did not change the digest")
	}
	// Hashing reads raw fields only; it must not disturb the belief.
	before := sum(a)
	_ = a.Estimate()
	_ = a.Entropy()
	if got := a.TotalProbability(); got <= 0 {
		t.Fatalf("TotalProbability = %v", got)
	}
	b.ApplyBeacon(geom.Vec2{X: 50, Y: 100}, caltable.GaussianPDF{Mu: 40, Sigma: 2})
	if sum(b) != before {
		t.Fatal("same update sequence produced a different digest")
	}
}
