package bayes

import (
	"math"
	"testing"
	"testing/quick"

	"cocoa/internal/caltable"
	"cocoa/internal/geom"
	"cocoa/internal/radio"
	"cocoa/internal/sim"
)

func newGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(geom.Square(200), 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(geom.Rect{}, 2); err == nil {
		t.Error("accepted degenerate area")
	}
	if _, err := NewGrid(geom.Square(100), 0); err == nil {
		t.Error("accepted zero cell size")
	}
	if _, err := NewGrid(geom.Square(1e6), 0.1); err == nil {
		t.Error("accepted absurd grid size")
	}
}

func TestGridDims(t *testing.T) {
	g := newGrid(t)
	nx, ny := g.Dims()
	if nx != 100 || ny != 100 {
		t.Errorf("dims = %dx%d, want 100x100", nx, ny)
	}
	if g.CellSize() != 2 {
		t.Errorf("CellSize = %v", g.CellSize())
	}
	if g.Area() != geom.Square(200) {
		t.Errorf("Area = %+v", g.Area())
	}
}

func TestUniformPrior(t *testing.T) {
	g := newGrid(t)
	if got := g.TotalProbability(); math.Abs(got-1) > 1e-9 {
		t.Errorf("total probability = %v", got)
	}
	// Uniform prior: estimate is the area center.
	if got, want := g.Estimate(), geom.Square(200).Center(); got.Dist(want) > 1e-6 {
		t.Errorf("uniform estimate = %v, want %v", got, want)
	}
	wantH := math.Log(100 * 100)
	if got := g.Entropy(); math.Abs(got-wantH) > 1e-9 {
		t.Errorf("uniform entropy = %v, want %v", got, wantH)
	}
}

func TestApplyBeaconConcentratesBelief(t *testing.T) {
	g := newGrid(t)
	pdf := caltable.GaussianPDF{Mu: 20, Sigma: 2}
	h0 := g.Entropy()
	g.ApplyBeacon(geom.Vec2{X: 100, Y: 100}, pdf)
	if got := g.TotalProbability(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("posterior not normalized: %v", got)
	}
	if g.Entropy() >= h0 {
		t.Error("beacon did not reduce entropy")
	}
	if g.BeaconCount() != 1 {
		t.Errorf("BeaconCount = %d", g.BeaconCount())
	}
	// The belief should now live on a ring of radius ~20 around (100,100):
	// a point on the ring outranks both the center and a far corner.
	onRing := g.ProbabilityAt(geom.Vec2{X: 120, Y: 100})
	center := g.ProbabilityAt(geom.Vec2{X: 100, Y: 100})
	corner := g.ProbabilityAt(geom.Vec2{X: 5, Y: 5})
	if onRing <= center || onRing <= corner {
		t.Errorf("ring=%v center=%v corner=%v", onRing, center, corner)
	}
}

// Three well-placed beacons trilaterate: the estimate lands near the true
// position. This is the algorithm's core correctness property.
func TestThreeBeaconsTrilaterate(t *testing.T) {
	g := newGrid(t)
	truth := geom.Vec2{X: 70, Y: 120}
	anchors := []geom.Vec2{{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60}}
	for _, a := range anchors {
		g.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 2})
	}
	if !g.Ready() {
		t.Fatal("grid not Ready after 3 beacons")
	}
	if err := g.Estimate().Dist(truth); err > 5 {
		t.Errorf("trilateration error = %.2f m, want < 5", err)
	}
	if err := g.MAP().Dist(truth); err > 6 {
		t.Errorf("MAP error = %.2f m, want < 6", err)
	}
}

// With only two beacons the posterior is ambiguous (two ring
// intersections); the paper's >=3 beacon rule exists for this reason.
func TestTwoBeaconsAmbiguous(t *testing.T) {
	g := newGrid(t)
	// Anchors on the horizontal chord y=100; the truth at (100,140)
	// mirrors to (100,60) with identical distances to both anchors.
	truth := geom.Vec2{X: 100, Y: 140}
	mirror := geom.Vec2{X: 100, Y: 60}
	anchors := []geom.Vec2{{X: 50, Y: 100}, {X: 150, Y: 100}}
	for _, a := range anchors {
		g.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 2})
	}
	if g.Ready() {
		t.Error("Ready after only 2 beacons")
	}
	pm := g.ProbabilityAt(mirror)
	pt := g.ProbabilityAt(truth)
	if pm < pt/50 {
		t.Errorf("mirror mass %v vastly below truth %v; expected ambiguity", pm, pt)
	}
}

func TestMoreBeaconsImproveAccuracy(t *testing.T) {
	truth := geom.Vec2{X: 130, Y: 60}
	anchors := []geom.Vec2{
		{X: 20, Y: 20}, {X: 180, Y: 30}, {X: 100, Y: 180},
		{X: 60, Y: 90}, {X: 170, Y: 120}, {X: 40, Y: 160},
	}
	errAfter := func(n int) float64 {
		g := newGrid(t)
		for _, a := range anchors[:n] {
			g.ApplyBeacon(a, caltable.GaussianPDF{Mu: truth.Dist(a), Sigma: 4})
		}
		return g.Estimate().Dist(truth)
	}
	if e3, e6 := errAfter(3), errAfter(6); e6 > e3+1 {
		t.Errorf("accuracy degraded with more beacons: 3->%.2f m, 6->%.2f m", e3, e6)
	}
}

func TestResetRestoresUniform(t *testing.T) {
	g := newGrid(t)
	g.ApplyBeacon(geom.Vec2{X: 50, Y: 50}, caltable.GaussianPDF{Mu: 10, Sigma: 2})
	g.Reset()
	if g.BeaconCount() != 0 {
		t.Error("beacon count not cleared")
	}
	if got, want := g.Entropy(), math.Log(100*100); math.Abs(got-want) > 1e-9 {
		t.Errorf("entropy after reset = %v, want %v", got, want)
	}
}

// A conflicting beacon (PDF mass nowhere near the current belief) must not
// produce NaNs or a zero posterior thanks to the constraint floor.
func TestConflictingBeaconsStayFinite(t *testing.T) {
	g := newGrid(t)
	g.ApplyBeacon(geom.Vec2{X: 10, Y: 10}, caltable.GaussianPDF{Mu: 5, Sigma: 0.5})
	g.ApplyBeacon(geom.Vec2{X: 190, Y: 190}, caltable.GaussianPDF{Mu: 5, Sigma: 0.5})
	tot := g.TotalProbability()
	if math.IsNaN(tot) || math.Abs(tot-1) > 1e-6 {
		t.Fatalf("posterior degenerate: total=%v", tot)
	}
	est := g.Estimate()
	if !geom.Square(200).Contains(est) {
		t.Errorf("estimate %v left the area", est)
	}
}

// End-to-end with the real calibration table: a robot receiving beacons
// from three anchors at realistic distances localizes within a few meters
// — the scale of the paper's CoCoA accuracy (~5-7 m).
func TestWithCalibratedTable(t *testing.T) {
	m := radio.DefaultModel()
	opts := caltable.DefaultOptions()
	opts.Samples = 150000
	tab, err := caltable.Calibrate(m, opts, sim.NewRNG(3).Stream("cal"))
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.Vec2{X: 90, Y: 110}
	anchors := []geom.Vec2{{X: 70, Y: 100}, {X: 110, Y: 130}, {X: 95, Y: 80}, {X: 60, Y: 140}}
	const trials = 10
	var errSum float64
	for trial := 0; trial < trials; trial++ {
		rng := sim.NewRNG(int64(400 + trial)).Stream("chan")
		g := newGrid(t)
		applied := 0
		for _, a := range anchors {
			rssi := m.SampleRSSI(truth.Dist(a), rng)
			pdf, ok := tab.Lookup(rssi)
			if !ok {
				continue
			}
			g.ApplyBeacon(a, pdf)
			applied++
		}
		if applied < 3 {
			t.Fatalf("trial %d: only %d beacons applied", trial, applied)
		}
		errSum += g.Estimate().Dist(truth)
	}
	if avg := errSum / trials; avg > 10 {
		t.Errorf("avg calibrated localization error = %.2f m, want < 10", avg)
	}
}

// Property: normalization holds after any beacon sequence.
func TestNormalizationProperty(t *testing.T) {
	f := func(seeds []uint8) bool {
		g, err := NewGrid(geom.Square(200), 5)
		if err != nil {
			return false
		}
		for _, s := range seeds {
			pos := geom.Vec2{X: float64(s%200) + 0.5, Y: float64((s*7)%200) + 0.5}
			g.ApplyBeacon(pos, caltable.GaussianPDF{Mu: float64(s%60) + 1, Sigma: 2})
			if math.Abs(g.TotalProbability()-1) > 1e-6 {
				return false
			}
		}
		est := g.Estimate()
		return geom.Square(200).Contains(est)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProbabilityAtOutside(t *testing.T) {
	g := newGrid(t)
	if got := g.ProbabilityAt(geom.Vec2{X: -5, Y: 50}); got != 0 {
		t.Errorf("outside probability = %v", got)
	}
	// Boundary point maps into the last cell, not out of range.
	if got := g.ProbabilityAt(geom.Vec2{X: 200, Y: 200}); got <= 0 {
		t.Errorf("boundary probability = %v", got)
	}
}

// The annulus fast path must match a naive full-density evaluation.
func TestAnnulusMatchesNaive(t *testing.T) {
	naive := func(g *Grid, beaconPos geom.Vec2, pdf DistanceDensity) {
		// Reference implementation: evaluate the density at every cell.
		nx, ny := g.Dims()
		var sum float64
		i := 0
		for iy := 0; iy < ny; iy++ {
			cy := g.Area().Min.Y + (float64(iy)+0.5)*g.CellSize()
			for ix := 0; ix < nx; ix++ {
				cx := g.Area().Min.X + (float64(ix)+0.5)*g.CellSize()
				d := (geom.Vec2{X: cx, Y: cy}).Dist(beaconPos)
				c := pdf.Density(d)
				if c < constraintFloor {
					c = constraintFloor
				}
				g.p[i] *= c
				sum += g.p[i]
				i++
			}
		}
		inv := 1 / sum
		for j := range g.p {
			g.p[j] *= inv
		}
	}

	rng := sim.NewRNG(31).Stream("annulus")
	for trial := 0; trial < 10; trial++ {
		fast := newGrid(t)
		ref := newGrid(t)
		// naive writes ref.p directly, bypassing ApplyBeacon's accumulator
		// maintenance, so ref must read its statistics with full scans.
		ref.SetStatsMode(StatsEager)
		for b := 0; b < 4; b++ {
			pos := geom.Vec2{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
			pdf := caltable.GaussianPDF{Mu: rng.Uniform(3, 80), Sigma: rng.Uniform(0.5, 8)}
			fast.ApplyBeacon(pos, pdf)
			naive(ref, pos, pdf)
		}
		fast.Renormalize() // the lazy path stores unnormalized cells
		var maxDiff float64
		for i := range fast.p {
			if d := math.Abs(fast.p[i] - ref.p[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-9 {
			t.Fatalf("trial %d: fast path diverges from naive by %v", trial, maxDiff)
		}
		if est := fast.Estimate().Dist(ref.Estimate()); est > 1e-6 {
			t.Fatalf("trial %d: estimates diverge by %v m", trial, est)
		}
	}
}
