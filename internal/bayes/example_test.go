package bayes_test

import (
	"fmt"

	"cocoa/internal/bayes"
	"cocoa/internal/caltable"
	"cocoa/internal/geom"
)

// ExampleGrid trilaterates a robot from three beacons with known distance
// distributions — the core of the paper's Section 2.2 algorithm.
func ExampleGrid() {
	grid, err := bayes.NewGrid(geom.Square(200), 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	truth := geom.Vec2{X: 70, Y: 120}
	for _, anchor := range []geom.Vec2{{X: 40, Y: 100}, {X: 100, Y: 140}, {X: 80, Y: 60}} {
		grid.ApplyBeacon(anchor, caltable.GaussianPDF{Mu: truth.Dist(anchor), Sigma: 2})
	}
	fmt.Println("ready:", grid.Ready())
	fmt.Println("error below 5 m:", grid.Estimate().Dist(truth) < 5)
	// Output:
	// ready: true
	// error below 5 m: true
}
