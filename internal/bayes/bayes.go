// Package bayes implements the grid-based Bayesian position estimator at
// the heart of CoCoA's cooperative RF localization (Sichitiu & Ramadurai's
// algorithm, Section 2.2 of the paper).
//
// A robot maintains a discretized probability distribution over the
// deployment area. For every received beacon it looks up the distance PDF
// for the observed RSSI and imposes the constraint of Equation (1):
//
//	Constraint(x,y) = PDF_RSSI(d((x,y),(xB,yB)))
//
// then performs the Bayesian update of Equation (2):
//
//	NewPosEst = OldPosEst * Constraint / integral(OldPosEst * Constraint)
//
// After at least MinBeacons beacons, the position estimate is the
// expectation of Equation (3).
package bayes

import (
	"fmt"
	"math"

	"cocoa/internal/geom"
)

// DistanceDensity is the consumer-side view of a calibrated distance PDF
// (satisfied by caltable's PDF types).
type DistanceDensity interface {
	Density(d float64) float64
}

// MinBeacons is the paper's threshold: a robot computes its position from
// the estimate only after receiving at least three beacon packets.
const MinBeacons = 3

// constraintFloor caps the confidence of a single beacon: the constraint
// never drives a cell's probability fully to zero, which keeps the
// posterior well-conditioned when beacons disagree (e.g. a deep-faded
// beacon from a nearby robot).
const constraintFloor = 1e-6

// Grid is a discretized position belief over a rectangular area. Cells are
// square with side CellSize; probabilities sum to one.
type Grid struct {
	area     geom.Rect
	cellSize float64
	nx, ny   int
	p        []float64
	beacons  int
}

// NewGrid builds a uniform belief over the area with the given cell size
// in meters. The grid dimensions round up to cover the whole area.
func NewGrid(area geom.Rect, cellSize float64) (*Grid, error) {
	if area.Width() <= 0 || area.Height() <= 0 {
		return nil, fmt.Errorf("bayes: degenerate area %+v", area)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("bayes: cell size %v must be positive", cellSize)
	}
	nx := int(math.Ceil(area.Width() / cellSize))
	ny := int(math.Ceil(area.Height() / cellSize))
	if nx*ny > 4<<20 {
		return nil, fmt.Errorf("bayes: grid %dx%d too large", nx, ny)
	}
	g := &Grid{area: area, cellSize: cellSize, nx: nx, ny: ny, p: make([]float64, nx*ny)}
	g.Reset()
	return g, nil
}

// Reset returns the belief to uniform — the paper's initial estimate: "in
// the beginning, a robot is equally likely to be in any position in the
// deployment area". The beacon counter is cleared.
func (g *Grid) Reset() {
	u := 1 / float64(len(g.p))
	for i := range g.p {
		g.p[i] = u
	}
	g.beacons = 0
}

// Dims returns the grid dimensions in cells.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// CellSize returns the cell side length in meters.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Area returns the grid's coverage rectangle.
func (g *Grid) Area() geom.Rect { return g.area }

// BeaconCount returns the number of beacons applied since the last Reset.
func (g *Grid) BeaconCount() int { return g.beacons }

// Ready reports whether enough beacons (>= MinBeacons) have been applied
// for the estimate to be trustworthy per the paper's rule.
func (g *Grid) Ready() bool { return g.beacons >= MinBeacons }

// cellCenter returns the center coordinates of cell (ix, iy).
func (g *Grid) cellCenter(ix, iy int) geom.Vec2 {
	return geom.Vec2{
		X: g.area.Min.X + (float64(ix)+0.5)*g.cellSize,
		Y: g.area.Min.Y + (float64(iy)+0.5)*g.cellSize,
	}
}

// gaussianMoments is the optional parametric view of a distance PDF that
// unlocks the fast annulus update path.
type gaussianMoments interface {
	Mean() float64
	Std() float64
	IsGaussian() bool
}

// ApplyBeacon imposes one beacon's constraint (Equation 1) and renormalizes
// (Equation 2). beaconPos is the sender's advertised position; pdf is the
// calibrated distance PDF for the observed RSSI.
//
// This is the simulation's hot path (10,000 cells per beacon at the
// paper's resolution). For Gaussian PDFs the density is evaluated only
// inside the mu +/- 6 sigma annulus around the beacon; outside it the
// density is below the constraint floor, so cells take the floor without
// touching exp or sqrt.
func (g *Grid) ApplyBeacon(beaconPos geom.Vec2, pdf DistanceDensity) {
	rInner, rOuter := math.Inf(-1), math.Inf(1)
	if m, ok := pdf.(gaussianMoments); ok && m.IsGaussian() {
		rInner = m.Mean() - 6*m.Std()
		rOuter = m.Mean() + 6*m.Std()
	}
	rInner2 := rInner * rInner
	if rInner < 0 {
		rInner2 = -1 // the inner disk is empty
	}
	rOuter2 := rOuter * rOuter

	var sum float64
	i := 0
	for iy := 0; iy < g.ny; iy++ {
		cy := g.area.Min.Y + (float64(iy)+0.5)*g.cellSize
		dy := cy - beaconPos.Y
		dy2 := dy * dy
		for ix := 0; ix < g.nx; ix++ {
			cx := g.area.Min.X + (float64(ix)+0.5)*g.cellSize
			dx := cx - beaconPos.X
			d2 := dx*dx + dy2
			c := constraintFloor
			if d2 <= rOuter2 && d2 >= rInner2 {
				if dens := pdf.Density(math.Sqrt(d2)); dens > c {
					c = dens
				}
			}
			g.p[i] *= c
			sum += g.p[i]
			i++
		}
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		// Numerical collapse: fall back to uniform rather than emit NaNs.
		g.Reset()
		g.beacons = 1
		return
	}
	inv := 1 / sum
	for j := range g.p {
		g.p[j] *= inv
	}
	g.beacons++
}

// Estimate returns the posterior-mean position (Equation 3).
func (g *Grid) Estimate() geom.Vec2 {
	var ex, ey float64
	i := 0
	for iy := 0; iy < g.ny; iy++ {
		cy := g.area.Min.Y + (float64(iy)+0.5)*g.cellSize
		var rowSum float64
		for ix := 0; ix < g.nx; ix++ {
			pi := g.p[i]
			ex += pi * (g.area.Min.X + (float64(ix)+0.5)*g.cellSize)
			rowSum += pi
			i++
		}
		ey += rowSum * cy
	}
	return geom.Vec2{X: ex, Y: ey}
}

// MAP returns the highest-probability cell center, an alternative point
// estimate exposed for diagnostics and the examples.
func (g *Grid) MAP() geom.Vec2 {
	best, bi := -1.0, 0
	for i, pi := range g.p {
		if pi > best {
			best, bi = pi, i
		}
	}
	return g.cellCenter(bi%g.nx, bi/g.nx)
}

// ProbabilityAt returns the cell probability covering point pt, for tests
// and visualization. Points outside the area return 0.
func (g *Grid) ProbabilityAt(pt geom.Vec2) float64 {
	if !g.area.Contains(pt) {
		return 0
	}
	ix := int((pt.X - g.area.Min.X) / g.cellSize)
	iy := int((pt.Y - g.area.Min.Y) / g.cellSize)
	if ix >= g.nx {
		ix = g.nx - 1
	}
	if iy >= g.ny {
		iy = g.ny - 1
	}
	return g.p[iy*g.nx+ix]
}

// Entropy returns the Shannon entropy of the belief in nats — a measure of
// how concentrated the estimate is; uniform beliefs maximize it.
func (g *Grid) Entropy() float64 {
	var h float64
	for _, pi := range g.p {
		if pi > 0 {
			h -= pi * math.Log(pi)
		}
	}
	return h
}

// TotalProbability returns the belief mass (should always be ~1); exposed
// for invariant tests.
func (g *Grid) TotalProbability() float64 {
	var s float64
	for _, pi := range g.p {
		s += pi
	}
	return s
}
