// Package bayes implements the grid-based Bayesian position estimator at
// the heart of CoCoA's cooperative RF localization (Sichitiu & Ramadurai's
// algorithm, Section 2.2 of the paper).
//
// A robot maintains a discretized probability distribution over the
// deployment area. For every received beacon it looks up the distance PDF
// for the observed RSSI and imposes the constraint of Equation (1):
//
//	Constraint(x,y) = PDF_RSSI(d((x,y),(xB,yB)))
//
// then performs the Bayesian update of Equation (2):
//
//	NewPosEst = OldPosEst * Constraint / integral(OldPosEst * Constraint)
//
// After at least MinBeacons beacons, the position estimate is the
// expectation of Equation (3).
//
// # Performance model
//
// ApplyBeacon is the simulation's hot path (10,000 cells per beacon at the
// paper's resolution), and the implementation exploits three observations:
//
//  1. Normalization is a global scale, so it can be lazy: the grid stores
//     an unnormalized belief plus its tracked mass, and readouts divide on
//     demand instead of every beacon paying a second full-grid pass.
//  2. Because the posterior only depends on constraint *ratios*, cells
//     whose constraint equals the floor can simply keep their value: the
//     update multiplies in-support cells by density/floor and touches
//     nothing else. Per-beacon work is proportional to the constraint's
//     support annulus, not the grid.
//  3. Calibrated PDFs carry a radial lookup table with explicit support
//     bounds (caltable.TabulatedPDF); the per-cell density is then a table
//     index instead of an Exp, and the annulus fast path — classically
//     Gaussian-only via the moments — applies to empirical histograms too.
//
// The pre-overhaul eager implementation is retained as applyBeaconEager;
// equivalence tests pin the fast path to it cell-for-cell at 1e-9.
package bayes

import (
	"cocoa/internal/checkpoint"
	"fmt"
	"math"

	"cocoa/internal/geom"
	"cocoa/internal/telemetry"
)

// Telemetry instruments: beacon applications broken down by the density
// mode the cell loop specialized to, plus the lazy-normalization outcome
// (how many applies deferred the renorm vs forced one) and numerical
// collapse resets.
var (
	telApplyNearest  = telemetry.Default.Counter("bayes.apply.nearest")
	telApplyLerp     = telemetry.Default.Counter("bayes.apply.lerp")
	telApplyGeneric  = telemetry.Default.Counter("bayes.apply.generic")
	telRenormTaken   = telemetry.Default.Counter("bayes.renorm_taken")
	telRenormDefer   = telemetry.Default.Counter("bayes.renorm_deferred")
	telCollapseReset = telemetry.Default.Counter("bayes.collapse_resets")
	telStatsResum    = telemetry.Default.Counter("bayes.stats_resum")
)

// DistanceDensity is the consumer-side view of a calibrated distance PDF
// (satisfied by caltable's PDF types).
type DistanceDensity interface {
	Density(d float64) float64
}

// MinBeacons is the paper's threshold: a robot computes its position from
// the estimate only after receiving at least three beacon packets.
const MinBeacons = 3

// constraintFloor caps the confidence of a single beacon: the constraint
// never drives a cell's probability fully to zero, which keeps the
// posterior well-conditioned when beacons disagree (e.g. a deep-faded
// beacon from a nearby robot).
const constraintFloor = 1e-6

// invConstraintFloor converts a floored constraint into the ≥1 ratio the
// lazy update multiplies by.
const invConstraintFloor = 1 / constraintFloor

// Belief mass bounds that trigger an eager renormalization. Ratios are ≥1,
// so mass only grows between renormalizations — by at most the peak
// density over the floor (~4e5 for the sharpest calibrated bins) per
// beacon — and the high bound leaves >150 orders of magnitude of float64
// headroom above the largest single-beacon growth.
const (
	massRenormHigh = 1e120
	massRenormLow  = 1e-120
)

// StatsMode selects how the grid statistics readouts (Estimate, Entropy,
// TotalProbability) are computed.
type StatsMode int

const (
	// StatsIncremental reads running accumulators maintained in place by
	// ApplyBeacon's per-cell writes and rescaled analytically by
	// Renormalize, making the readouts O(touched cells) instead of
	// O(nx·ny). A drift-bounded full re-sum backstop (every
	// statsResumEvery beacons, counted by bayes.stats_resum) keeps the
	// accumulators within 1e-9 of the eager scans.
	StatsIncremental StatsMode = iota
	// StatsEager recomputes every readout with a full-grid scan — the
	// pre-incremental reference semantics, retained as the slow path the
	// equivalence tests check the accumulators against.
	StatsEager
)

// statsResumEvery is the drift bound: after this many ApplyBeacon calls the
// next incremental moment readout re-sums the accumulators from the cells
// (the same contract lazy normalization uses for mass). The floating-point
// drift per beacon is ~1 ulp of the accumulator, so 64 beacons keep the
// incremental readouts many orders of magnitude inside the 1e-9 budget.
const statsResumEvery = 64

// Grid is a discretized position belief over a rectangular area. Cells are
// square with side CellSize. Internally the belief is unnormalized: p sums
// to mass, not 1, and readouts normalize on demand.
type Grid struct {
	area     geom.Rect
	cellSize float64
	nx, ny   int
	p        []float64
	// cx, cy are the precomputed cell-center coordinates, shared by
	// ApplyBeacon, Estimate, and MAP; sumCx, sumCy are their totals, used
	// for the closed-form uniform accumulators on Reset.
	cx, cy       []float64
	sumCx, sumCy float64
	mass         float64
	beacons      int

	// Incremental statistics accumulators (StatsIncremental): the running
	// cell sum and first moments, updated by ApplyBeacon's per-cell
	// writes; statsOps counts beacons since the last full re-sum. The
	// Σp·log p accumulator is maintained lazily — ApplyBeacon only marks
	// it stale (per-cell logs would dominate the annulus loop), and
	// Entropy re-sums on demand, after which Renormalize keeps it fresh
	// analytically.
	statsMode  StatsMode
	sumP       float64 // running Σ p
	sumX, sumY float64 // running Σ p·x, Σ p·y over cell centers
	statsOps   int
	plogp      float64 // Σ p·log p at the last entropy re-sum / rescale
	plogpSum   float64 // Σ p over the same cells, for the entropy identity
	plogpOK    bool
}

// NewGrid builds a uniform belief over the area with the given cell size
// in meters. The grid dimensions round up to cover the whole area.
func NewGrid(area geom.Rect, cellSize float64) (*Grid, error) {
	if area.Width() <= 0 || area.Height() <= 0 {
		return nil, fmt.Errorf("bayes: degenerate area %+v", area)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("bayes: cell size %v must be positive", cellSize)
	}
	nx := int(math.Ceil(area.Width() / cellSize))
	ny := int(math.Ceil(area.Height() / cellSize))
	if nx*ny > 4<<20 {
		return nil, fmt.Errorf("bayes: grid %dx%d too large", nx, ny)
	}
	g := &Grid{area: area, cellSize: cellSize, nx: nx, ny: ny, p: make([]float64, nx*ny)}
	g.cx = make([]float64, nx)
	for ix := range g.cx {
		g.cx[ix] = area.Min.X + (float64(ix)+0.5)*cellSize
		g.sumCx += g.cx[ix]
	}
	g.cy = make([]float64, ny)
	for iy := range g.cy {
		g.cy[iy] = area.Min.Y + (float64(iy)+0.5)*cellSize
		g.sumCy += g.cy[iy]
	}
	g.Reset()
	return g, nil
}

// SetStatsMode selects the statistics read path; see StatsMode. The grid
// defaults to StatsIncremental.
func (g *Grid) SetStatsMode(m StatsMode) { g.statsMode = m }

// StatsModeOf returns the grid's current statistics mode.
func (g *Grid) StatsModeOf() StatsMode { return g.statsMode }

// Reset returns the belief to uniform — the paper's initial estimate: "in
// the beginning, a robot is equally likely to be in any position in the
// deployment area". The beacon counter is cleared and the statistics
// accumulators take their closed-form uniform values.
func (g *Grid) Reset() {
	u := 1 / float64(len(g.p))
	for i := range g.p {
		g.p[i] = u
	}
	g.mass = 1
	g.beacons = 0

	// Uniform closed forms: Σp = N·u, Σp·x = u·ny·Σcx (each column center
	// appears ny times), and Σp·log p = Σp·log u.
	g.sumP = float64(len(g.p)) * u
	g.sumX = u * float64(g.ny) * g.sumCx
	g.sumY = u * float64(g.nx) * g.sumCy
	g.statsOps = 0
	g.plogpSum = g.sumP
	g.plogp = g.sumP * math.Log(u)
	g.plogpOK = true
}

// Dims returns the grid dimensions in cells.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// CellSize returns the cell side length in meters.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Area returns the grid's coverage rectangle.
func (g *Grid) Area() geom.Rect { return g.area }

// BeaconCount returns the number of beacons applied since the last Reset.
func (g *Grid) BeaconCount() int { return g.beacons }

// Ready reports whether enough beacons (>= MinBeacons) have been applied
// for the estimate to be trustworthy per the paper's rule.
func (g *Grid) Ready() bool { return g.beacons >= MinBeacons }

// cellCenter returns the center coordinates of cell (ix, iy).
func (g *Grid) cellCenter(ix, iy int) geom.Vec2 {
	return geom.Vec2{X: g.cx[ix], Y: g.cy[iy]}
}

// gaussianMoments is the optional parametric view of a distance PDF that
// unlocks the fast annulus update path for analytic Gaussians.
type gaussianMoments interface {
	Mean() float64
	Std() float64
	IsGaussian() bool
}

// radialTable is the optional tabulated view of a distance PDF (satisfied
// by caltable.TabulatedPDF): raw radial density samples plus explicit
// support bounds. The support is only trusted when the table was built
// against a floor at most as large as ours; otherwise densities above our
// floor could hide outside the declared support.
type radialTable interface {
	RadialTable() (dens []float64, r0, step float64, nearest bool)
	Support() (rInner, rOuter float64)
	TableFloor() float64
}

// ApplyBeacon imposes one beacon's constraint (Equation 1) and folds in the
// Bayesian update of Equation (2) lazily: cells in the constraint's support
// are scaled by density/floor, everything else is untouched, and the belief
// mass is updated incrementally. Renormalization happens on readout, or
// eagerly when the mass approaches the float64 range limits.
func (g *Grid) ApplyBeacon(beaconPos geom.Vec2, pdf DistanceDensity) {
	var (
		dens    []float64
		r0, r1  float64
		invStep float64
		nearest bool
		haveLUT bool
	)
	rInner, rOuter := math.Inf(-1), math.Inf(1)
	if lt, ok := pdf.(radialTable); ok && lt.TableFloor() <= constraintFloor {
		var step float64
		dens, r0, step, nearest = lt.RadialTable()
		rInner, rOuter = lt.Support()
		r1 = rOuter
		invStep = 1 / step
		haveLUT = true
	} else if m, ok := pdf.(gaussianMoments); ok && m.IsGaussian() {
		// Beyond mu +/- 6 sigma a Gaussian density is below the floor.
		rInner = m.Mean() - 6*m.Std()
		rOuter = m.Mean() + 6*m.Std()
	}
	rInner2 := rInner * rInner
	if rInner < 0 {
		rInner2 = -1 // the inner disk is empty
	}
	rOuter2 := rOuter * rOuter

	bx, by := beaconPos.X, beaconPos.Y
	minX := g.area.Min.X
	bounded := !math.IsInf(rOuter, 1)
	// removed/added track the mass delta exactly as before the incremental
	// statistics existed (the mass arithmetic is pinned bitwise by the
	// eager-stats equivalence); sumDX/sumDY accumulate the first-moment
	// deltas per row so the moment accumulators stay O(touched cells).
	var removed, added, sumDX, sumDY float64
	for iy := 0; iy < g.ny; iy++ {
		dy := g.cy[iy] - by
		dy2 := dy * dy
		if dy2 > rOuter2 {
			continue // the whole row is outside the annulus
		}
		var rowD, rowDX float64
		lo, hi := 0, g.nx
		if bounded {
			// Conservative (+/- one cell) column interval where the row
			// can intersect the outer disk; the per-cell d² check below
			// stays authoritative.
			halfW := math.Sqrt(rOuter2 - dy2)
			lo = int((bx-halfW-minX)/g.cellSize) - 1
			hi = int((bx+halfW-minX)/g.cellSize) + 2
			if lo < 0 {
				lo = 0
			}
			if hi > g.nx {
				hi = g.nx
			}
		}
		// Inner-hole skip: where the row crosses the inner disk, the middle
		// columns satisfy |dx| < sqrt(rInner²-dy²) and would fail the d²
		// check below cell by cell. Conservative (±1 cell) integer bounds
		// excise that run; the per-cell check stays authoritative, so the
		// iteration set shrinks but the touched cells are identical.
		s1, s2 := hi, hi
		if rInner2 > 0 && dy2 < rInner2 {
			halfH := math.Sqrt(rInner2 - dy2)
			hLo := int((bx-halfH-minX)/g.cellSize-0.5) + 2
			hHi := int((bx+halfH-minX)/g.cellSize-0.5) - 1
			if hLo < lo {
				hLo = lo
			}
			if hHi > hi {
				hHi = hi
			}
			if hHi > hLo {
				s1, s2 = hLo, hHi
			}
		}
		row := g.p[iy*g.nx : (iy+1)*g.nx : (iy+1)*g.nx]
		for seg := 0; seg < 2; seg++ {
			start, end := lo, s1
			if seg == 1 {
				start, end = s2, hi
			}
			// The cell loop is specialized per density mode: the mode is
			// fixed for the whole call, and hoisting the dispatch out of
			// the innermost loop is worth a few percent of the whole
			// simulation. Each body inlines TabulatedPDF.Density
			// expression-for-expression (a density > floor multiplies the
			// cell, anything else leaves it untouched), so the three
			// variants and the Density-calling reference agree bitwise.
			switch {
			case haveLUT && nearest:
				for ix := start; ix < end; ix++ {
					dx := g.cx[ix] - bx
					d2 := dx*dx + dy2
					if d2 > rOuter2 || d2 < rInner2 {
						continue
					}
					d := math.Sqrt(d2)
					if d < r0 || d >= r1 {
						continue
					}
					j := int((d - r0) * invStep)
					if j >= len(dens) {
						j = len(dens) - 1
					}
					dv := dens[j]
					if !(dv > constraintFloor) { // negated so NaN densities also skip
						continue // ratio 1: multiplying would be a bitwise no-op
					}
					old := row[ix]
					nv := old * (dv * invConstraintFloor)
					row[ix] = nv
					removed += old
					added += nv
					dm := nv - old
					rowD += dm
					rowDX += dm * g.cx[ix]
				}
			case haveLUT:
				for ix := start; ix < end; ix++ {
					dx := g.cx[ix] - bx
					d2 := dx*dx + dy2
					if d2 > rOuter2 || d2 < rInner2 {
						continue
					}
					d := math.Sqrt(d2)
					if d < r0 || d >= r1 {
						continue
					}
					u := (d - r0) * invStep
					j := int(u)
					var dv float64
					if j >= len(dens)-1 {
						dv = dens[len(dens)-1]
					} else {
						dv = dens[j] + (u-float64(j))*(dens[j+1]-dens[j])
					}
					if !(dv > constraintFloor) {
						continue
					}
					old := row[ix]
					nv := old * (dv * invConstraintFloor)
					row[ix] = nv
					removed += old
					added += nv
					dm := nv - old
					rowD += dm
					rowDX += dm * g.cx[ix]
				}
			default:
				for ix := start; ix < end; ix++ {
					dx := g.cx[ix] - bx
					d2 := dx*dx + dy2
					if d2 > rOuter2 || d2 < rInner2 {
						continue
					}
					dv := pdf.Density(math.Sqrt(d2))
					if !(dv > constraintFloor) {
						continue
					}
					old := row[ix]
					nv := old * (dv * invConstraintFloor)
					row[ix] = nv
					removed += old
					added += nv
					dm := nv - old
					rowD += dm
					rowDX += dm * g.cx[ix]
				}
			}
		}
		sumDX += rowDX
		sumDY += rowD * g.cy[iy]
	}

	switch {
	case haveLUT && nearest:
		telApplyNearest.Inc()
	case haveLUT:
		telApplyLerp.Inc()
	default:
		telApplyGeneric.Inc()
	}

	mass := g.mass - removed + added
	if mass <= 0 || math.IsNaN(mass) || math.IsInf(mass, 0) {
		// Numerical collapse: fall back to uniform rather than emit NaNs.
		// Reset restores the closed-form uniform accumulators too.
		telCollapseReset.Inc()
		g.Reset()
		g.beacons = 1
		return
	}
	g.mass = mass
	g.sumP = g.sumP - removed + added
	g.sumX += sumDX
	g.sumY += sumDY
	g.statsOps++
	g.plogpOK = false
	g.beacons++
	if mass > massRenormHigh || mass < massRenormLow {
		telRenormTaken.Inc()
		g.Renormalize()
	} else {
		telRenormDefer.Inc()
	}
}

// applyBeaconEager is the retained pre-overhaul reference implementation:
// per-cell density evaluation (Gaussian-moments annulus only) followed by
// an eager full-grid renormalization. It exists so every change to the
// fast path can be pinned to the original semantics — the equivalence
// tests require ApplyBeacon to match it cell-for-cell within 1e-9
// relative tolerance for every PDF shape.
func (g *Grid) applyBeaconEager(beaconPos geom.Vec2, pdf DistanceDensity) {
	rInner, rOuter := math.Inf(-1), math.Inf(1)
	if m, ok := pdf.(gaussianMoments); ok && m.IsGaussian() {
		rInner = m.Mean() - 6*m.Std()
		rOuter = m.Mean() + 6*m.Std()
	}
	rInner2 := rInner * rInner
	if rInner < 0 {
		rInner2 = -1
	}
	rOuter2 := rOuter * rOuter

	var sum float64
	i := 0
	for iy := 0; iy < g.ny; iy++ {
		dy := g.cy[iy] - beaconPos.Y
		dy2 := dy * dy
		for ix := 0; ix < g.nx; ix++ {
			dx := g.cx[ix] - beaconPos.X
			d2 := dx*dx + dy2
			c := constraintFloor
			if d2 <= rOuter2 && d2 >= rInner2 {
				if dens := pdf.Density(math.Sqrt(d2)); dens > c {
					c = dens
				}
			}
			g.p[i] *= c
			sum += g.p[i]
			i++
		}
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		g.Reset()
		g.beacons = 1
		return
	}
	inv := 1 / sum
	for j := range g.p {
		g.p[j] *= inv
	}
	g.mass = 1
	g.beacons++
	// The eager path rewrote every cell; re-sum the accumulators from
	// scratch so incremental readouts stay valid after mixed use.
	g.resumMoments()
	g.plogpOK = false
}

// Renormalize rescales the belief so the cells sum to one and the tracked
// mass is exact again. Readouts do not require it — they normalize on the
// fly — but tests and serialization use it to obtain canonical cell
// values, and ApplyBeacon invokes it when the mass nears the float64
// range limits.
func (g *Grid) Renormalize() {
	var s float64
	for _, pi := range g.p {
		s += pi
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		g.Reset()
		return
	}
	inv := 1 / s
	for i := range g.p {
		g.p[i] *= inv
	}
	g.mass = 1
	// A renormalization is a global scale, so the accumulators rescale
	// analytically: Σ(p·inv)·x = inv·Σp·x, and for the entropy pair
	// Σ(p·inv)·log(p·inv) = inv·Σp·log p + inv·log(inv)·Σp. The per-cell
	// rounding this glosses over is exactly the drift the re-sum backstop
	// bounds.
	g.sumP = s * inv
	g.sumX *= inv
	g.sumY *= inv
	if g.plogpOK {
		g.plogp = inv*g.plogp + inv*math.Log(inv)*g.plogpSum
		g.plogpSum *= inv
	}
}

// resumMoments recomputes the cell-sum and first-moment accumulators from
// the cells, clearing the drift counter. The scan mirrors the eager
// Estimate's row-sum structure so both paths round alike.
func (g *Grid) resumMoments() {
	var sp, sx, sy float64
	i := 0
	for iy := 0; iy < g.ny; iy++ {
		var rowSum float64
		for ix := 0; ix < g.nx; ix++ {
			pi := g.p[i]
			sx += pi * g.cx[ix]
			rowSum += pi
			i++
		}
		sy += rowSum * g.cy[iy]
		sp += rowSum
	}
	g.sumP, g.sumX, g.sumY = sp, sx, sy
	g.statsOps = 0
}

// resumPlogp recomputes the entropy accumulator pair from the cells.
func (g *Grid) resumPlogp() {
	var pl, ps float64
	for _, pi := range g.p {
		if pi > 0 {
			pl += pi * math.Log(pi)
			ps += pi
		}
	}
	g.plogp, g.plogpSum, g.plogpOK = pl, ps, true
}

// Estimate returns the posterior-mean position (Equation 3), normalizing
// on the fly. In StatsIncremental mode it reads the running accumulators
// (O(touched cells) since the last re-sum); StatsEager recomputes the sums
// with a full-grid scan.
func (g *Grid) Estimate() geom.Vec2 {
	if g.statsMode == StatsEager {
		return g.estimateEager()
	}
	if g.statsOps >= statsResumEvery ||
		math.IsNaN(g.sumX) || math.IsInf(g.sumX, 0) ||
		math.IsNaN(g.sumY) || math.IsInf(g.sumY, 0) {
		telStatsResum.Inc()
		g.resumMoments()
	}
	tot := g.sumP
	if tot <= 0 || math.IsNaN(tot) || math.IsInf(tot, 0) {
		return g.area.Center()
	}
	return geom.Vec2{X: g.sumX / tot, Y: g.sumY / tot}
}

// estimateEager is the retained full-scan reference for Estimate.
func (g *Grid) estimateEager() geom.Vec2 {
	var ex, ey, tot float64
	i := 0
	for iy := 0; iy < g.ny; iy++ {
		cyw := g.cy[iy]
		var rowSum float64
		for ix := 0; ix < g.nx; ix++ {
			pi := g.p[i]
			ex += pi * g.cx[ix]
			rowSum += pi
			i++
		}
		ey += rowSum * cyw
		tot += rowSum
	}
	if tot <= 0 || math.IsNaN(tot) || math.IsInf(tot, 0) {
		return g.area.Center()
	}
	return geom.Vec2{X: ex / tot, Y: ey / tot}
}

// MAP returns the highest-probability cell center, an alternative point
// estimate exposed for diagnostics and the examples. It is scale-free, so
// lazy normalization needs no extra work here. Ties break toward the
// lowest cell index — the first maximal cell in row-major scan order wins —
// and that order is part of the contract (pinned by TestMAPTieBreak) so
// alternative read paths cannot silently change diagnostics.
func (g *Grid) MAP() geom.Vec2 {
	best, bi := -1.0, 0
	for i, pi := range g.p {
		if pi > best {
			best, bi = pi, i
		}
	}
	return g.cellCenter(bi%g.nx, bi/g.nx)
}

// ProbabilityAt returns the normalized cell probability covering point pt,
// for tests and visualization. Points outside the area return 0, as does a
// belief whose tracked mass is zero or non-finite (the same degenerate
// states Estimate guards against).
func (g *Grid) ProbabilityAt(pt geom.Vec2) float64 {
	if !g.area.Contains(pt) {
		return 0
	}
	if g.mass <= 0 || math.IsNaN(g.mass) || math.IsInf(g.mass, 0) {
		return 0
	}
	ix := int((pt.X - g.area.Min.X) / g.cellSize)
	iy := int((pt.Y - g.area.Min.Y) / g.cellSize)
	if ix >= g.nx {
		ix = g.nx - 1
	}
	if iy >= g.ny {
		iy = g.ny - 1
	}
	return g.p[iy*g.nx+ix] / g.mass
}

// Entropy returns the Shannon entropy of the normalized belief in nats — a
// measure of how concentrated the estimate is; uniform beliefs maximize it.
// A zero or non-finite tracked mass means the belief carries no usable
// information, so the guard returns the uniform maximum log(N) instead of
// propagating NaN/Inf. In StatsIncremental mode the entropy comes from the
// Σp·log p accumulator via H = (Σp·log M − Σp·log p)/M, re-summed on first
// use after any beacon (ApplyBeacon marks it stale rather than paying two
// logs per touched cell).
func (g *Grid) Entropy() float64 {
	if g.mass <= 0 || math.IsNaN(g.mass) || math.IsInf(g.mass, 0) {
		return math.Log(float64(len(g.p)))
	}
	if g.statsMode == StatsEager {
		return g.entropyEager()
	}
	if !g.plogpOK {
		telStatsResum.Inc()
		g.resumPlogp()
	}
	return (g.plogpSum*math.Log(g.mass) - g.plogp) / g.mass
}

// entropyEager is the retained full-scan reference for Entropy.
func (g *Grid) entropyEager() float64 {
	inv := 1 / g.mass
	var h float64
	for _, pi := range g.p {
		if q := pi * inv; q > 0 {
			h -= q * math.Log(q)
		}
	}
	return h
}

// TotalProbability returns the normalized belief mass: the cell sum over
// the tracked mass. It is ~1 up to the accumulation drift of the lazy
// updates; exposed for invariant tests. StatsIncremental reads the running
// cell-sum accumulator; StatsEager re-sums the cells.
func (g *Grid) TotalProbability() float64 {
	if g.statsMode == StatsEager {
		return g.totalProbabilityEager()
	}
	if g.statsOps >= statsResumEvery {
		telStatsResum.Inc()
		g.resumMoments()
	}
	return g.sumP / g.mass
}

// totalProbabilityEager is the retained full-scan reference for
// TotalProbability.
func (g *Grid) totalProbabilityEager() float64 {
	var s float64
	for _, pi := range g.p {
		s += pi
	}
	return s / g.mass
}

// HashState folds the grid's complete belief state — every cell plus the
// incremental statistics accumulators — into h, for checkpoint digests.
// It reads raw fields only (no lazy re-sum), so hashing never perturbs
// the incremental/eager equivalence the grid maintains.
func (g *Grid) HashState(h *checkpoint.Hasher) {
	h.Int(g.nx)
	h.Int(g.ny)
	h.Int(g.beacons)
	h.Int(int(g.statsMode))
	h.Int(g.statsOps)
	h.F64(g.mass)
	h.F64(g.sumP)
	h.F64(g.sumX)
	h.F64(g.sumY)
	h.F64(g.plogp)
	h.F64(g.plogpSum)
	h.Bool(g.plogpOK)
	for _, p := range g.p {
		h.F64(p)
	}
}
