package bayes

import (
	"fmt"
	"math"
	"testing"

	"cocoa/internal/geom"
	"cocoa/internal/sim"
)

// Tests for the incremental statistics accumulators (DESIGN.md §13): the
// StatsIncremental read path must agree with the retained eager full-scan
// reference within 1e-9 under adversarial ApplyBeacon/Renormalize/Reset
// sequences, and the degenerate-mass guards must hold in both modes.

// statsPair drives two grids with identical cell state through the same
// operations: one reading statistics incrementally, one eagerly. ApplyBeacon
// arithmetic is mode-independent, so the cells and tracked mass stay
// bit-identical and any readout disagreement is accumulator drift.
type statsPair struct {
	inc, eager *Grid
}

func newStatsPair(t testing.TB, side, cell float64) statsPair {
	t.Helper()
	inc, err := NewGrid(geom.Square(side), cell)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := NewGrid(geom.Square(side), cell)
	if err != nil {
		t.Fatal(err)
	}
	eager.SetStatsMode(StatsEager)
	if inc.StatsModeOf() != StatsIncremental {
		t.Fatal("grids must default to StatsIncremental")
	}
	return statsPair{inc: inc, eager: eager}
}

func (p statsPair) apply(pos geom.Vec2, pdf DistanceDensity) {
	p.inc.ApplyBeacon(pos, pdf)
	p.eager.ApplyBeacon(pos, pdf)
}

// check asserts every statistics readout of the incremental grid is within
// 1e-9 of the eager reference.
func (p statsPair) check(t testing.TB, step string) {
	t.Helper()
	const tol = 1e-9
	ei, ee := p.inc.Estimate(), p.eager.Estimate()
	if d := ei.Dist(ee); !(d <= tol) {
		t.Fatalf("%s: Estimate diverged by %v m (incremental %v, eager %v)", step, d, ei, ee)
	}
	hi, he := p.inc.Entropy(), p.eager.Entropy()
	if d := math.Abs(hi - he); !(d <= tol*math.Max(1, math.Abs(he))) {
		t.Fatalf("%s: Entropy diverged: incremental %v, eager %v", step, hi, he)
	}
	ti, te := p.inc.TotalProbability(), p.eager.TotalProbability()
	if d := math.Abs(ti - te); !(d <= tol) {
		t.Fatalf("%s: TotalProbability diverged: incremental %v, eager %v", step, ti, te)
	}
	// MAP is read-path independent by construction; any difference means an
	// accumulator path mutated cells.
	if mi, me := p.inc.MAP(), p.eager.MAP(); mi != me {
		t.Fatalf("%s: MAP diverged: incremental %v, eager %v", step, mi, me)
	}
}

// TestStatsIncrementalMatchesEager is the adversarial property test: long
// randomized sequences of beacon updates (outlier shapes included),
// renormalizations, and resets, with every readout cross-checked after
// every operation — including many uninterrupted beacons so the drift
// backstop's re-sum boundary (statsResumEvery) is crossed repeatedly.
func TestStatsIncrementalMatchesEager(t *testing.T) {
	for _, seed := range []int64{1, 7, 99, 31337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed).Stream("stats-equiv")
			p := newStatsPair(t, 120, 4)
			diag := geom.Square(120).Diagonal()
			for step := 0; step < 2*statsResumEvery+50; step++ {
				label := fmt.Sprintf("step %d", step)
				switch {
				case rng.Bool(0.04):
					p.inc.Reset()
					p.eager.Reset()
				case rng.Bool(0.04):
					p.inc.Renormalize()
					p.eager.Renormalize()
				default:
					pos := geom.Vec2{X: rng.Uniform(-30, 150), Y: rng.Uniform(-30, 150)}
					p.apply(pos, randomDensity(rng, diag))
				}
				p.check(t, label)
			}
		})
	}
}

// TestStatsResumBackstop pins the drift bound: the resum counter must fire
// once the uninterrupted beacon count crosses statsResumEvery, and the
// moments must still match the eager scans right at the boundary.
func TestStatsResumBackstop(t *testing.T) {
	p := newStatsPair(t, 100, 4)
	for i := 0; i < statsResumEvery+1; i++ {
		pos := geom.Vec2{X: 10 + float64(i%7)*12, Y: 20 + float64(i%5)*15}
		p.apply(pos, gaussDensity{mean: 25, std: 6})
	}
	if p.inc.statsOps <= statsResumEvery {
		t.Fatalf("statsOps = %d, expected to exceed backstop %d before a readout",
			p.inc.statsOps, statsResumEvery)
	}
	p.check(t, "past backstop")
	if p.inc.statsOps != 0 {
		t.Fatalf("statsOps = %d after readout, want 0 (re-sum taken)", p.inc.statsOps)
	}
}

// TestEntropyGuardsDegenerateMass: a zero or non-finite tracked mass must
// yield the uniform maximum log(N) in both modes, never NaN/Inf (the same
// guard Estimate has always had for its total).
func TestEntropyGuardsDegenerateMass(t *testing.T) {
	for _, mode := range []StatsMode{StatsIncremental, StatsEager} {
		for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
			g, err := NewGrid(geom.Square(80), 4)
			if err != nil {
				t.Fatal(err)
			}
			g.SetStatsMode(mode)
			g.ApplyBeacon(geom.Vec2{X: 40, Y: 40}, gaussDensity{mean: 10, std: 3})
			g.mass = bad
			got := g.Entropy()
			want := math.Log(float64(len(g.p)))
			if got != want {
				t.Errorf("mode %v mass=%v: Entropy() = %v, want uniform max %v", mode, bad, got, want)
			}
		}
	}
}

// TestProbabilityAtGuardsDegenerateMass: same poisoned-mass states must
// read as probability 0, not NaN/Inf.
func TestProbabilityAtGuardsDegenerateMass(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		g, err := NewGrid(geom.Square(80), 4)
		if err != nil {
			t.Fatal(err)
		}
		g.ApplyBeacon(geom.Vec2{X: 40, Y: 40}, gaussDensity{mean: 10, std: 3})
		g.mass = bad
		if got := g.ProbabilityAt(geom.Vec2{X: 40, Y: 40}); got != 0 {
			t.Errorf("mass=%v: ProbabilityAt = %v, want 0", bad, got)
		}
	}
}

// TestMAPTieBreak pins the documented tie-break: among equal-probability
// cells the lowest row-major index wins, both on a fully uniform belief
// (cell (0,0)) and when two interior cells share the maximum.
func TestMAPTieBreak(t *testing.T) {
	g, err := NewGrid(geom.Square(40), 4) // 10x10 cells
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.MAP(), g.cellCenter(0, 0); got != want {
		t.Fatalf("uniform MAP = %v, want first cell %v", got, want)
	}
	// Two equal peaks at indices 23 and 57: the lower index must win.
	g.p[23] = 5
	g.p[57] = 5
	if got, want := g.MAP(), g.cellCenter(23%10, 23/10); got != want {
		t.Fatalf("tied MAP = %v, want lower-index cell %v", got, want)
	}
	// Order of writes must not matter — scan order decides, not history.
	g2, err := NewGrid(geom.Square(40), 4)
	if err != nil {
		t.Fatal(err)
	}
	g2.p[57] = 5
	g2.p[23] = 5
	if got, want := g2.MAP(), g2.cellCenter(23%10, 23/10); got != want {
		t.Fatalf("tied MAP (reversed writes) = %v, want %v", got, want)
	}
}

// TestStatsAfterMixedEagerReference: interleaving the retained eager
// apply/renormalize reference paths with incremental readouts must keep the
// accumulators coherent (applyBeaconEager rewrites every cell).
func TestStatsAfterMixedEagerReference(t *testing.T) {
	p := newStatsPair(t, 100, 4)
	p.inc.applyBeaconEager(geom.Vec2{X: 20, Y: 30}, gaussDensity{mean: 15, std: 4})
	p.eager.applyBeaconEager(geom.Vec2{X: 20, Y: 30}, gaussDensity{mean: 15, std: 4})
	p.check(t, "after eager apply")
	p.apply(geom.Vec2{X: 70, Y: 60}, gaussDensity{mean: 30, std: 5})
	p.check(t, "after lazy apply on eager-applied state")
}
