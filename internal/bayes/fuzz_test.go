package bayes

import (
	"math"
	"testing"

	"cocoa/internal/geom"
)

// FuzzGridStats drives the incremental-statistics grid and the eager
// reference through the same operation sequence decoded from the fuzz
// input, asserting after every step that the two read paths agree within
// 1e-9 and that the belief invariants hold. Each operation consumes four
// bytes: an opcode selector and three operand bytes (position / density
// shape), so the fuzzer explores adversarial interleavings of beacon
// updates, renormalizations, and resets — including degenerate densities.
func FuzzGridStats(f *testing.F) {
	// Seed corpus: a plain beacon train, a renorm/reset interleave, a
	// degenerate-density mix, and a long run crossing the re-sum backstop.
	f.Add([]byte{0, 10, 20, 8, 0, 200, 120, 30, 0, 90, 250, 2})
	f.Add([]byte{0, 50, 50, 12, 1, 0, 0, 0, 0, 60, 70, 5, 2, 0, 0, 0, 0, 80, 10, 40})
	f.Add([]byte{3, 128, 128, 0, 4, 17, 200, 9, 5, 255, 255, 255, 0, 33, 44, 55})
	long := make([]byte, 4*(statsResumEvery+8))
	for i := range long {
		long[i] = byte(i*37 + 11)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 4*512 {
			return
		}
		inc, err := NewGrid(geom.Square(60), 4)
		if err != nil {
			t.Fatal(err)
		}
		eager, err := NewGrid(geom.Square(60), 4)
		if err != nil {
			t.Fatal(err)
		}
		eager.SetStatsMode(StatsEager)

		apply := func(pos geom.Vec2, pdf DistanceDensity) {
			inc.ApplyBeacon(pos, pdf)
			eager.ApplyBeacon(pos, pdf)
		}
		for off := 0; off+4 <= len(data); off += 4 {
			op, a, b, c := data[off], data[off+1], data[off+2], data[off+3]
			// Positions may fall outside the area, like real beacons from
			// robots just past the boundary.
			pos := geom.Vec2{
				X: float64(a)/2 - 30,
				Y: float64(b)/2 - 30,
			}
			switch op % 8 {
			case 1:
				inc.Renormalize()
				eager.Renormalize()
			case 2:
				inc.Reset()
				eager.Reset()
			case 3:
				apply(pos, spikeDensity{at: float64(c)})
			case 4:
				apply(pos, nanDensity{})
			case 5:
				apply(pos, infDensity{})
			case 6:
				apply(pos, flatDensity{v: float64(c) * 1e-9})
			default:
				apply(pos, gaussDensity{
					mean: 1 + float64(c)/2,
					std:  0.5 + float64(a%16),
				})
			}

			const tol = 1e-9
			ei, ee := inc.Estimate(), eager.Estimate()
			if d := ei.Dist(ee); !(d <= tol) {
				t.Fatalf("op %d: Estimate diverged by %v (incremental %v, eager %v)", off/4, d, ei, ee)
			}
			hi, he := inc.Entropy(), eager.Entropy()
			if d := math.Abs(hi - he); !(d <= tol*math.Max(1, math.Abs(he))) {
				t.Fatalf("op %d: Entropy diverged: incremental %v, eager %v", off/4, hi, he)
			}
			ti, te := inc.TotalProbability(), eager.TotalProbability()
			if d := math.Abs(ti - te); !(d <= tol) {
				t.Fatalf("op %d: TotalProbability diverged: incremental %v, eager %v", off/4, ti, te)
			}
			if math.Abs(ti-1) > 1e-6 {
				t.Fatalf("op %d: total probability %v drifted from 1", off/4, ti)
			}
		}
	})
}
